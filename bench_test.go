// Package squatphi's root benchmark harness: one benchmark per paper table
// and figure (regenerating the artifact through its experiment driver) plus
// the ablation benchmarks called out in DESIGN.md §4.
//
// The environment — world, DNS scan, crawl, ground truth, classifier,
// detection — is built once and shared; each benchmark then measures the
// artifact regeneration itself. Run with:
//
//	go test -bench=. -benchmem
package squatphi

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"squatphi/internal/confusables"
	"squatphi/internal/core"
	"squatphi/internal/crawler"
	"squatphi/internal/experiments"
	"squatphi/internal/features"
	"squatphi/internal/imghash"
	"squatphi/internal/ml"
	"squatphi/internal/punycode"
	"squatphi/internal/render"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// env returns the shared experiment environment, warming the expensive
// pipeline stages on first use so individual benchmarks measure artifact
// regeneration, not world construction.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(core.Config{
			World:           webworld.Config{SquattingDomains: 1500, NonSquattingPhish: 250, Seed: 2018},
			DNSNoiseRecords: 4000,
			ForestTrees:     15,
			CrawlWorkers:    16,
			Seed:            31,
		})
		if benchErr != nil {
			return
		}
		// Warm all lazy stages.
		if _, benchErr = benchEnv.Detection(); benchErr != nil {
			return
		}
		_, benchErr = benchEnv.ModelEvals()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// benchDriver measures one experiment driver end to end.
func benchDriver(b *testing.B, id string) {
	e := env(b)
	var driver experiments.Driver
	for _, d := range experiments.All() {
		if d.ID == id {
			driver = d
			break
		}
	}
	if driver.Run == nil {
		b.Fatalf("no driver for %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver.Run(e); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkTable1SquattingExamples(b *testing.B)  { benchDriver(b, "Table 1") }
func BenchmarkFigure2SquatScan(b *testing.B)         { benchDriver(b, "Figure 2") }
func BenchmarkFigure3BrandAccumulation(b *testing.B) { benchDriver(b, "Figure 3") }
func BenchmarkFigure4TopBrands(b *testing.B)         { benchDriver(b, "Figure 4") }
func BenchmarkTable2Crawl(b *testing.B)              { benchDriver(b, "Table 2") }
func BenchmarkTable3RedirectOriginal(b *testing.B)   { benchDriver(b, "Table 3") }
func BenchmarkTable4RedirectMarket(b *testing.B)     { benchDriver(b, "Table 4") }
func BenchmarkFigure5FeedAccumulation(b *testing.B)  { benchDriver(b, "Figure 5") }
func BenchmarkFigure6FeedAlexaRanks(b *testing.B)    { benchDriver(b, "Figure 6") }
func BenchmarkFigure7FeedSquatting(b *testing.B)     { benchDriver(b, "Figure 7") }
func BenchmarkTable5FeedReverify(b *testing.B)       { benchDriver(b, "Table 5") }
func BenchmarkFigure8LayoutExample(b *testing.B)     { benchDriver(b, "Figure 8") }
func BenchmarkFigure9ImageHash(b *testing.B)         { benchDriver(b, "Figure 9") }
func BenchmarkTable6Obfuscation(b *testing.B)        { benchDriver(b, "Table 6") }
func BenchmarkTable7Classifiers(b *testing.B)        { benchDriver(b, "Table 7") }
func BenchmarkFigure10ROC(b *testing.B)              { benchDriver(b, "Figure 10") }
func BenchmarkTable8Detection(b *testing.B)          { benchDriver(b, "Table 8") }
func BenchmarkTable9PerBrand(b *testing.B)           { benchDriver(b, "Table 9") }
func BenchmarkFigure11BrandCDF(b *testing.B)         { benchDriver(b, "Figure 11") }
func BenchmarkFigure12PhishSquatTypes(b *testing.B)  { benchDriver(b, "Figure 12") }
func BenchmarkFigure13TopTargets(b *testing.B)       { benchDriver(b, "Figure 13") }
func BenchmarkTable10Examples(b *testing.B)          { benchDriver(b, "Table 10") }
func BenchmarkFigure14CaseStudies(b *testing.B)      { benchDriver(b, "Figure 14") }
func BenchmarkFigure15Geolocation(b *testing.B)      { benchDriver(b, "Figure 15") }
func BenchmarkFigure16Registration(b *testing.B)     { benchDriver(b, "Figure 16") }
func BenchmarkFigure17Liveness(b *testing.B)         { benchDriver(b, "Figure 17") }
func BenchmarkTable11EvasionCompare(b *testing.B)    { benchDriver(b, "Table 11") }
func BenchmarkTable12Blacklists(b *testing.B)        { benchDriver(b, "Table 12") }
func BenchmarkTable13LivenessTimeline(b *testing.B)  { benchDriver(b, "Table 13") }

// --- ablation benchmarks (DESIGN.md §4) ---

// obfuscatedTrainingSet builds a corpus where positives and negatives are
// BOTH login pages with identical markup except for the logo image:
// phishing logos carry a protected brand name, benign logos a neutral
// service name. The brand exists only in pixels, so lexical and form
// features cannot separate the classes — only the OCR path can. This is
// the paper's headline design choice distilled to its purest form.
func obfuscatedTrainingSet(n int) ([]features.Sample, []int) {
	rng := simrand.New(77)
	var samples []features.Sample
	var labels []int
	phishLogos := []string{"Paypal", "Facebook", "Google", "Citibank"}
	benignLogos := []string{"Webmail", "Intranet", "Forum", "Portal"}
	for i := 0; i < n; i++ {
		label := i % 2
		logo := benignLogos[(i/2)%len(benignLogos)]
		if label == 1 {
			logo = phishLogos[(i/2)%len(phishLogos)]
		}
		html := fmt.Sprintf(`<html><head><title>Sign in</title></head><body>
<img src="/logo.png" alt=""><h1>Welcome back</h1>
<p>Enter your credentials to continue session %d</p>
<form><input type=email placeholder="Email"><input type=password placeholder="Password">
<input type=submit value="Sign In"></form></body></html>`, rng.Intn(1000))
		shot := render.Screenshot(html, render.Options{Assets: map[string]string{"/logo.png": logo}})
		samples = append(samples, features.Sample{HTML: html, Shot: shot})
		labels = append(labels, label)
	}
	return samples, labels
}

// ablationEval trains and cross-validates a forest under a feature option
// set, returning the AUC.
func ablationEval(samples []features.Sample, labels []int, opts features.Options) float64 {
	ex := features.NewExtractor(opts, samples, []string{"paypal", "facebook", "google", "citibank"}, 2)
	X := make([][]float64, len(samples))
	for i, s := range samples {
		X[i] = ex.Vector(s)
	}
	ev := ml.CrossValidate(func() ml.Classifier { return &ml.RandomForest{NTrees: 15, Seed: 5} }, X, labels, 5, 9)
	return ev.AUC
}

// BenchmarkAblationOCR compares the classifier with and without OCR
// features on a fully string-obfuscated corpus — the paper's headline
// design choice. The AUC of each variant is reported as a custom metric.
func BenchmarkAblationOCR(b *testing.B) {
	samples, labels := obfuscatedTrainingSet(60)
	var withOCR, withoutOCR float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withOCR = ablationEval(samples, labels, features.AllFeatures())
		withoutOCR = ablationEval(samples, labels, features.Options{UseLexical: true, UseForms: true})
	}
	b.ReportMetric(withOCR, "auc-with-ocr")
	b.ReportMetric(withoutOCR, "auc-without-ocr")
}

// BenchmarkAblationSpellcheck measures OCR token extraction with and
// without spell-checking on noisy captures.
func BenchmarkAblationSpellcheck(b *testing.B) {
	html := `<html><body><img src="/l.png"><form><input type=password placeholder="Password"><input type=submit value="Log In"></form></body></html>`
	shot := render.Screenshot(html, render.Options{Assets: map[string]string{"/l.png": "Paypal"}, NoiseLevel: 0.02, NoiseSeed: 3})
	corpus := []features.Sample{{HTML: html, Shot: shot}}
	for _, variant := range []struct {
		name string
		opts features.Options
	}{
		{"with-spellcheck", features.Options{UseOCR: true, Spellcheck: true}},
		{"without-spellcheck", features.Options{UseOCR: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			ex := features.NewExtractor(variant.opts, corpus, []string{"paypal"}, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ex.Tokens(corpus[0])
			}
		})
	}
}

// BenchmarkAblationForest sweeps the random-forest size, reporting AUC per
// configuration alongside the training cost.
func BenchmarkAblationForest(b *testing.B) {
	samples, labels := obfuscatedTrainingSet(60)
	ex := features.NewExtractor(features.AllFeatures(), samples, []string{"paypal"}, 2)
	X := make([][]float64, len(samples))
	for i, s := range samples {
		X[i] = ex.Vector(s)
	}
	for _, trees := range []int{5, 20, 80} {
		b.Run(fmt.Sprintf("trees-%d", trees), func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				ev := ml.CrossValidate(func() ml.Classifier { return &ml.RandomForest{NTrees: trees, Seed: 5} }, X, labels, 5, 9)
				auc = ev.AUC
			}
			b.ReportMetric(auc, "auc")
		})
	}
}

// BenchmarkAblationConfusables compares homograph recall of the full
// confusables table against a DNSTwist-style truncated table (the paper:
// DNSTwist knows 13 of 23 lookalikes for 'a').
func BenchmarkAblationConfusables(b *testing.B) {
	brand := squat.NewBrand("facebook.com")
	gen := squat.NewGenerator()
	planted := gen.Homographs(brand)
	full := squat.NewMatcher([]squat.Brand{brand})
	b.ResetTimer()
	var recall float64
	for i := 0; i < b.N; i++ {
		hit := 0
		for _, c := range planted {
			if _, ok := full.Match(c.Domain); ok {
				hit++
			}
		}
		recall = float64(hit) / float64(len(planted))
	}
	b.ReportMetric(recall, "homograph-recall")
	b.ReportMetric(float64(confusables.CountVariants('a')), "variants-of-a")
}

// BenchmarkAblationCrawlWorkers sweeps the crawler pool width against the
// shared world server.
func BenchmarkAblationCrawlWorkers(b *testing.B) {
	e := env(b)
	domains := e.P.CandidateDomains()
	if len(domains) > 150 {
		domains = domains[:150]
	}
	for _, workers := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			c := &crawler.Crawler{Client: e.P.Server.Client(), Workers: workers, SkipRender: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Crawl(e.Ctx, domains); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationImageHash compares the three perceptual hashes on the
// layout-obfuscation task: distance separation between identical and
// obfuscated renders.
func BenchmarkAblationImageHash(b *testing.B) {
	html := `<html><head><title>Bank Login</title></head><body><h1>Welcome</h1>
<p>Sign in to continue to your account dashboard and payments</p>
<form><input type=email placeholder="Email"><input type=password placeholder="Password">
<input type=submit value="Sign In"></form></body></html>`
	orig := render.Screenshot(html, render.Options{})
	same := render.Screenshot(html, render.Options{})
	obf := render.Screenshot(html, render.Options{Perturb: simrand.New(5)})
	for name, fn := range map[string]func(*render.Raster) imghash.Hash{
		"average": imghash.Average, "difference": imghash.Difference, "perceptual": imghash.Perceptual,
	} {
		b.Run(name, func(b *testing.B) {
			var sep float64
			for i := 0; i < b.N; i++ {
				dSame := imghash.Distance(fn(orig), fn(same))
				dObf := imghash.Distance(fn(orig), fn(obf))
				sep = float64(dObf - dSame)
			}
			b.ReportMetric(sep, "bit-separation")
		})
	}
}

// BenchmarkPunycodeRoundTrip measures the IDN translation hot path of the
// homograph matcher.
func BenchmarkPunycodeRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ace, _ := punycode.ToASCII("fàcebook.com")
		_ = punycode.ToUnicode(ace)
	}
}

// BenchmarkMatcherThroughput measures DNS-scale matching over the bench
// world's snapshot: the paper scans 224M records, so records/sec is the
// number that decides feasibility.
func BenchmarkMatcherThroughput(b *testing.B) {
	e := env(b)
	domains := e.P.DNSSnapshot().Domains()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range domains {
			e.P.Matcher.Match(d)
		}
	}
	b.ReportMetric(float64(len(domains)), "records/op")
}

// --- parallel-spine benchmarks (scan, scoring, forest training) ---

// scanWorkerCounts is the sweep ISSUE'd for BENCH_scan: serial, half the
// cores, all cores (deduplicated on small machines).
func scanWorkerCounts() []int {
	ncpu := runtime.GOMAXPROCS(0)
	counts := []int{1}
	if half := ncpu / 2; half > 1 {
		counts = append(counts, half)
	}
	if ncpu > 1 {
		counts = append(counts, ncpu)
	}
	return counts
}

// BenchmarkScanDNS measures the sharded candidate scan across worker
// counts; the parallel path must return a byte-identical candidate slice,
// so records/sec is the only thing that varies.
func BenchmarkScanDNS(b *testing.B) {
	e := env(b)
	snapshot := e.P.DNSSnapshot()
	records := float64(snapshot.Len())
	for _, workers := range scanWorkerCounts() {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ScanStore(snapshot, e.P.Matcher, workers, nil)
			}
			b.ReportMetric(records*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}

// BenchmarkDetect measures in-the-wild detection (crawl reuse + parallel
// classifier scoring of every capture) at serial and full-width scoring.
func BenchmarkDetect(b *testing.B) {
	e := env(b)
	clf, err := e.Classifier()
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("score-workers-%d", workers), func(b *testing.B) {
			prev := e.P.Cfg.ScoreWorkers
			e.P.Cfg.ScoreWorkers = workers
			defer func() { e.P.Cfg.ScoreWorkers = prev }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.P.DetectInWild(e.Ctx, clf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForestFit measures random-forest training at serial and
// full-width tree parallelism (identical ensembles either way).
func BenchmarkForestFit(b *testing.B) {
	rng := simrand.New(41)
	const n, dim = 300, 40
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if rng.Bool(0.5) {
			y[i] = 1
			row[0] += 2
		}
		X[i] = row
	}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rf := &ml.RandomForest{NTrees: 40, Seed: 11, Workers: workers}
				rf.Fit(X, y)
			}
		})
	}
}
