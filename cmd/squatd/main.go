// Command squatd is the verdict-serving daemon: the long-running
// deployment of SquatPhi's scanner (paper §7) that answers "is this
// domain a squatting domain" at lookup rates instead of batch-scanning
// snapshots.
//
// On boot it loads a DNS snapshot (a binary columnar -snap file, or a
// generated synthetic world with -gen), scans it through the
// incremental delta-scan engine — with -state, engine state recovered
// from the previous run's spill makes the boot scan incremental — and
// warms per-shard hot verdict state behind a coordinator that routes by
// the repository-wide domain-shard convention (dnsx.ShardIndex).
//
// The daemon serves on ONE hardened listener (internal/obs: header,
// read and idle timeouts, graceful drain):
//
//	GET  /verdict?domain=D    one verdict
//	POST /verdicts            bulk: JSON array of domains
//	POST /update              streaming record updates
//	GET  /healthz             shard health
//	/metrics /spans /debug/pprof   the obs debug surface
//
// Failure posture: a downed shard degrades to stateless matcher
// answers behind a circuit breaker (core.degraded.serve,
// serve.breaker.*) instead of failing lookups.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener drains
// in-flight requests, the delta-scan spill is saved atomically (so the
// next boot is incremental), and the final metrics snapshot is flushed.
//
// Usage:
//
//	squatd -gen 100000 -addr :8787 -state squatd.spill.gz paypal.com facebook.com
//	squatd -snap snapshot.snap -addr :8787 paypal.com
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"syscall"
	"time"

	"squatphi/internal/deltascan"
	"squatphi/internal/dnsx"
	"squatphi/internal/fsx"
	"squatphi/internal/obs"
	"squatphi/internal/retry"
	"squatphi/internal/serve"
	"squatphi/internal/snapfmt"
	"squatphi/internal/squat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("squatd: ")
	addr := flag.String("addr", ":8787", "serve verdicts and the debug surface on this address")
	snapPath := flag.String("snap", "", "load a binary columnar snapshot (internal/snapfmt)")
	gen := flag.Int("gen", 0, "serve a generated synthetic snapshot with N noise records")
	seed := flag.Uint64("seed", 1, "generation seed for -gen")
	shards := flag.Int("shards", 0, "shard count for -gen stores (0 = dnsx default)")
	statePath := flag.String("state", "", "delta-scan spill path: recovered on boot (incremental warm), saved atomically on shutdown")
	workers := flag.Int("workers", 0, "boot-scan parallelism (0 = all cores)")
	metricsPath := flag.String("metrics", "", "write the final metrics snapshot to this file on shutdown")
	grace := flag.Duration("grace", obs.ShutdownGrace, "how long shutdown waits for in-flight requests and flushes")
	smoke := flag.Bool("smoke", false, "boot, answer one self-lookup, then exit through the full graceful-shutdown path")
	pol := retry.RegisterFlags(nil) // -breaker-* flags shared with the other binaries
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("no brands given; usage: squatd [-snap FILE | -gen N] [-addr :8787] BRAND_DOMAIN...")
	}

	var brands []squat.Brand
	for _, arg := range flag.Args() {
		brands = append(brands, squat.NewBrand(arg))
	}
	matcher := squat.NewMatcher(brands)
	reg := obs.NewRegistry()
	matcher.InstrumentMetrics(reg)

	store, err := loadStore(*snapPath, *gen, *seed, *shards, brands)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("snapshot loaded: %d records in %d shards", store.Len(), store.NumShards())

	// Boot scan through the delta engine: with recovered spill state the
	// scan touches only shards whose checksums changed since last run.
	engine := deltascan.NewEngine()
	if *statePath != "" {
		var recovered bool
		engine, recovered, err = deltascan.Recover(*statePath)
		if err != nil {
			log.Printf("state %s unreadable (%v); falling back to a full boot scan", *statePath, err)
		} else if recovered {
			log.Printf("state recovered from %s (epoch %d)", *statePath, engine.Epoch())
		}
	}
	engine.InstrumentMetrics(reg)
	sw := obs.StartStopwatch()
	cands := engine.Scan(store, matcher, *workers)
	st := engine.LastStats()
	log.Printf("boot scan: %d candidates in %.1fms (full=%v, %d/%d shards rescanned)",
		len(cands), sw.Millis(), st.FullScan, st.ShardsRescanned, st.ShardsRescanned+st.ShardsSkipped)

	if pol.BreakerThreshold == 0 {
		pol.BreakerThreshold = 3
	}
	coord := serve.New(serve.Config{
		Shards:  store.NumShards(),
		Matcher: matcher,
		Metrics: reg,
		Breaker: *pol,
	})
	if err := coord.Warm(store, cands); err != nil {
		log.Fatal(err)
	}

	lc := serve.NewLifecycle()
	ctx := lc.Watch(context.Background(), os.Interrupt, syscall.SIGTERM)

	// Shutdown hooks run LIFO: the listener drains first, then the
	// delta state is spilled (reflecting every update the store
	// absorbed), then metrics flush last.
	if *metricsPath != "" {
		lc.OnShutdown("metrics", func(context.Context) error {
			return fsx.WriteFile(*metricsPath, func(w io.Writer) error {
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				return enc.Encode(reg.Snapshot())
			})
		})
	}
	if *statePath != "" {
		lc.OnShutdown("delta-state", func(context.Context) error {
			// Re-scan before spilling so the saved state covers records
			// streamed in since boot; unchanged shards make it cheap.
			engine.Scan(store, matcher, *workers)
			if err := engine.SaveFile(*statePath); err != nil {
				return err
			}
			log.Printf("delta state saved to %s (epoch %d)", *statePath, engine.Epoch())
			return nil
		})
	}

	dbg, err := obs.Serve(*addr, reg, nil, coord.Routes()...)
	if err != nil {
		log.Fatal(err)
	}
	lc.OnShutdown("listener-drain", dbg.Shutdown)
	reg.PublishExpvar("squatd")
	log.Printf("serving verdicts on http://%s (/verdict, /verdicts, /update, /healthz, /metrics)", dbg.Addr())

	if *smoke {
		go selfSmoke(dbg.Addr(), brands[0], lc)
	}

	<-ctx.Done()
	if sig := lc.Signal(); sig != nil {
		log.Printf("received %v; draining...", sig)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := lc.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	log.Printf("shutdown complete")
}

// loadStore resolves the snapshot source flags.
func loadStore(snapPath string, gen int, seed uint64, shards int, brands []squat.Brand) (*dnsx.Store, error) {
	switch {
	case snapPath != "" && gen > 0:
		return nil, fmt.Errorf("-snap and -gen are mutually exclusive")
	case snapPath != "":
		snap, err := snapfmt.Open(snapPath)
		if err != nil {
			return nil, err
		}
		defer snap.Close()
		return snap.ReadStore()
	case gen > 0:
		g := squat.NewGenerator()
		var planted []string
		for _, b := range brands {
			for i, c := range g.Generate(b) {
				if i%5 == 0 {
					planted = append(planted, c.Domain)
				}
			}
		}
		return dnsx.GenerateSnapshot(dnsx.SnapshotSpec{
			Planted: planted, NoiseRecords: gen, Seed: seed, Shards: shards,
		}), nil
	default:
		return nil, fmt.Errorf("need a snapshot source: -snap FILE or -gen N")
	}
}

// selfSmoke drives one verdict lookup and the health check against the
// daemon's own listener, then requests graceful shutdown — the boot →
// serve → drain → flush path in one command for make serve-smoke.
func selfSmoke(addr string, brand squat.Brand, lc *serve.Lifecycle) {
	cli := &http.Client{Timeout: 10 * time.Second}
	probe := "xn--" + brand.Name + "-test." + brand.TLD // a wrongish name; any answer proves the path
	for _, url := range []string{
		"http://" + addr + "/verdict?domain=" + probe,
		"http://" + addr + "/healthz",
	} {
		resp, err := cli.Get(url)
		if err != nil {
			log.Printf("smoke: %s: %v", url, err)
			os.Exit(1)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		log.Printf("smoke: %s -> %d %s", url, resp.StatusCode, string(body))
		if resp.StatusCode != http.StatusOK {
			os.Exit(1)
		}
	}
	lc.Deliver(syscall.SIGTERM)
}
