// Command squatscan scans a DNS snapshot for squatting domains of given
// brands — the offline half of SquatPhi, usable on any record dump.
//
// Input formats (auto-detected): RFC 1035 master files ("-zone") and the
// CSV snapshot format "domain,ip" ("-csv"). With "-gen N", a synthetic
// snapshot of N noise records with planted candidates is scanned instead,
// demonstrating the scanner without an input file.
//
// Usage:
//
//	squatscan -zone zonefile.db paypal.com facebook.com
//	squatscan -csv snapshot.csv -out hits.csv paypal.com
//	squatscan -gen 100000 paypal.com
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"squatphi/internal/dnsx"
	"squatphi/internal/squat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("squatscan: ")
	zonePath := flag.String("zone", "", "scan an RFC 1035 master file")
	csvPath := flag.String("csv", "", "scan a domain,ip snapshot file")
	gen := flag.Int("gen", 0, "scan a generated snapshot with N noise records")
	out := flag.String("out", "", "write hits as CSV to this file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: squatscan [-zone FILE | -csv FILE | -gen N] BRAND_DOMAIN...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var brands []squat.Brand
	for _, arg := range flag.Args() {
		brands = append(brands, squat.NewBrand(arg))
	}
	matcher := squat.NewMatcher(brands)

	store, err := loadStore(*zonePath, *csvPath, *gen, brands)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	hits := 0
	perType := map[squat.Type]int{}
	store.Range(func(rec dnsx.Record) bool {
		c, ok := matcher.Match(rec.Domain)
		if !ok {
			return true
		}
		hits++
		perType[c.Type]++
		fmt.Fprintf(w, "%s,%s,%s,%s\n", c.Domain, rec.IPString(), c.Type, c.Brand.Name)
		return true
	})
	elapsed := time.Since(start)
	log.Printf("%d records scanned in %s (%.0f records/sec), %d squatting hits",
		store.Len(), elapsed.Round(time.Millisecond), float64(store.Len())/elapsed.Seconds(), hits)
	for _, t := range squat.AllTypes {
		log.Printf("  %-10s %d", t, perType[t])
	}
}

func loadStore(zonePath, csvPath string, gen int, brands []squat.Brand) (*dnsx.Store, error) {
	switch {
	case zonePath != "":
		f, err := os.Open(zonePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := dnsx.ParseZone(f, "")
		if err != nil {
			return nil, err
		}
		return dnsx.StoreFromZone(recs)
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dnsx.ReadSnapshot(f)
	case gen > 0:
		g := squat.NewGenerator()
		var planted []string
		for _, b := range brands {
			for i, c := range g.Generate(b) {
				if i%5 == 0 { // a fifth of candidates are "registered"
					planted = append(planted, c.Domain)
				}
			}
		}
		return dnsx.GenerateSnapshot(dnsx.SnapshotSpec{Planted: planted, NoiseRecords: gen, Seed: 1035}), nil
	}
	return nil, fmt.Errorf("one of -zone, -csv or -gen is required")
}
