// Command squatscan scans a DNS snapshot for squatting domains of given
// brands — the offline half of SquatPhi, usable on any record dump.
//
// Input formats: RFC 1035 master files ("-zone"), the CSV snapshot format
// "domain,ip" ("-csv"), and the binary columnar snapshot format
// ("-snap"; internal/snapfmt). A -snap file is memory-mapped and scanned
// in place through the zero-allocation byte matcher — the paper-scale
// path, which never materializes records on the heap. With "-gen N", a
// synthetic snapshot of N noise records with planted candidates is
// scanned instead, demonstrating the scanner without an input file.
//
// With "-write-snap FILE" the loaded input is converted to the binary
// snapshot format instead of scanned, so a one-time conversion pays off
// over every later -snap scan of the same records.
//
// Usage:
//
//	squatscan -zone zonefile.db paypal.com facebook.com
//	squatscan -csv snapshot.csv -out hits.csv paypal.com
//	squatscan -gen 100000 paypal.com
//	squatscan -csv snapshot.csv -write-snap snapshot.snap paypal.com
//	squatscan -snap snapshot.snap paypal.com
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"squatphi/internal/dnsx"
	"squatphi/internal/snapfmt"
	"squatphi/internal/squat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("squatscan: ")
	zonePath := flag.String("zone", "", "scan an RFC 1035 master file")
	csvPath := flag.String("csv", "", "scan a domain,ip snapshot file")
	snapPath := flag.String("snap", "", "scan a binary columnar snapshot file via mmap (internal/snapfmt)")
	gen := flag.Int("gen", 0, "scan a generated snapshot with N noise records")
	out := flag.String("out", "", "write hits as CSV to this file (default stdout)")
	writeSnap := flag.String("write-snap", "", "convert the input to a binary snapshot at this path instead of scanning")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: squatscan [-zone FILE | -csv FILE | -snap FILE | -gen N] [-write-snap FILE] BRAND_DOMAIN...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var brands []squat.Brand
	for _, arg := range flag.Args() {
		brands = append(brands, squat.NewBrand(arg))
	}
	matcher := squat.NewMatcher(brands)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *snapPath != "" {
		if *writeSnap != "" {
			log.Fatal("-snap input is already in binary snapshot format; -write-snap needs -zone, -csv or -gen")
		}
		scanSnapshot(*snapPath, matcher, w)
		return
	}

	store, err := loadStore(*zonePath, *csvPath, *gen, brands)
	if err != nil {
		log.Fatal(err)
	}

	if *writeSnap != "" {
		f, err := os.Create(*writeSnap)
		if err != nil {
			log.Fatal(err)
		}
		n, err := snapfmt.WriteStore(f, store)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d records (%d bytes, %d shard segments) to %s",
			store.Len(), n, store.NumShards(), *writeSnap)
		return
	}

	start := time.Now()
	hits := 0
	perType := map[squat.Type]int{}
	store.Range(func(rec dnsx.Record) bool {
		c, ok := matcher.Match(rec.Domain)
		if !ok {
			return true
		}
		hits++
		perType[c.Type]++
		printHit(w, c, rec)
		return true
	})
	logScan(store.Len(), time.Since(start), hits, perType)
}

// scanSnapshot is the -snap path: the file is memory-mapped and every
// record is classified in place via the byte matcher, no per-record heap
// traffic outside the hits themselves.
func scanSnapshot(path string, matcher *squat.Matcher, w *os.File) {
	snap, err := snapfmt.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	start := time.Now()
	hits := 0
	perType := map[squat.Type]int{}
	var s squat.Scratch
	err = snap.Visit(func(domain []byte, ip [4]byte) bool {
		c, ok := matcher.MatchBytes(domain, &s)
		if !ok {
			return true
		}
		hits++
		perType[c.Type]++
		printHit(w, c, dnsx.Record{IP: ip})
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	logScan(int(snap.Len()), time.Since(start), hits, perType)
}

// printHit writes one CSV finding line. Hits are ~per-million events in a
// real snapshot, so the fmt and IPString allocations here live behind a
// cold boundary instead of pricing into the per-record scan closures.
//
//squat:cold
func printHit(w *os.File, c squat.Candidate, rec dnsx.Record) {
	fmt.Fprintf(w, "%s,%s,%s,%s\n", c.Domain, rec.IPString(), c.Type, c.Brand.Name)
}

// logScan prints the shared scan summary.
func logScan(records int, elapsed time.Duration, hits int, perType map[squat.Type]int) {
	log.Printf("%d records scanned in %s (%.0f records/sec), %d squatting hits",
		records, elapsed.Round(time.Millisecond), float64(records)/elapsed.Seconds(), hits)
	for _, t := range squat.AllTypes {
		log.Printf("  %-10s %d", t, perType[t])
	}
}

func loadStore(zonePath, csvPath string, gen int, brands []squat.Brand) (*dnsx.Store, error) {
	switch {
	case zonePath != "":
		f, err := os.Open(zonePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := dnsx.ParseZone(f, "")
		if err != nil {
			return nil, err
		}
		return dnsx.StoreFromZone(recs)
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dnsx.ReadSnapshot(f)
	case gen > 0:
		g := squat.NewGenerator()
		var planted []string
		for _, b := range brands {
			for i, c := range g.Generate(b) {
				if i%5 == 0 { // a fifth of candidates are "registered"
					planted = append(planted, c.Domain)
				}
			}
		}
		return dnsx.GenerateSnapshot(dnsx.SnapshotSpec{Planted: planted, NoiseRecords: gen, Seed: 1035}), nil
	}
	return nil, fmt.Errorf("one of -zone, -csv or -gen is required")
}
