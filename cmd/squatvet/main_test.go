package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCapture invokes run() with stdout/stderr redirected to temp files.
func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	ob, _ := os.ReadFile(outF.Name())
	eb, _ := os.ReadFile(errF.Name())
	return code, string(ob), string(eb)
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "hotalloc", "hotpath", "lifecycleleak", "errflow"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("-list output missing %s", name)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 10 {
		t.Errorf("-list printed %d lines, want 10", lines)
	}
}

// TestAnalyzerSubsetStalenessScoped: running a single analyzer over one
// directory must not flag the other analyzers' baseline entries as
// stale.
func TestAnalyzerSubsetStalenessScoped(t *testing.T) {
	code, _, stderr := runCapture(t, "-analyzers", "errflow", ".")
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "stale") {
		t.Errorf("subset run reported stale entries:\n%s", stderr)
	}
}

// TestBrokenPackageDegrades: a type-check failure downgrades the run to
// the intraprocedural analyzers instead of aborting.
func TestBrokenPackageDegrades(t *testing.T) {
	code, _, stderr := runCapture(t, "-baseline", "",
		filepath.Join("..", "..", "internal", "analysis", "testdata", "analysis", "broken", "brokenpkg"))
	if code != 0 {
		t.Fatalf("run = %d, want 0 (no findings, degraded); stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "failed to load") || !strings.Contains(stderr, "degrading to intraprocedural") {
		t.Errorf("missing degrade warnings:\n%s", stderr)
	}
}

// TestBrokenPackageWithOnlyCallGraphAnalyzers: when degrading drops every
// requested analyzer, the run must fail (exit 2) instead of going green
// having checked nothing.
func TestBrokenPackageWithOnlyCallGraphAnalyzers(t *testing.T) {
	for _, names := range []string{"hotpath", "hotpath,lifecycleleak"} {
		code, _, stderr := runCapture(t, "-baseline", "", "-analyzers", names,
			filepath.Join("..", "..", "internal", "analysis", "testdata", "analysis", "broken", "brokenpkg"))
		if code != 2 {
			t.Errorf("run(-analyzers %s, broken pkg) = %d, want 2; stderr:\n%s", names, code, stderr)
		}
		if !strings.Contains(stderr, "refusing to report a clean run") {
			t.Errorf("-analyzers %s: missing empty-set refusal message:\n%s", names, stderr)
		}
	}
}
