package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCapture invokes run() with stdout/stderr redirected to temp files.
func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	ob, _ := os.ReadFile(outF.Name())
	eb, _ := os.ReadFile(errF.Name())
	return code, string(ob), string(eb)
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "hotalloc", "hotpath", "lifecycleleak", "errflow"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("-list output missing %s", name)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 10 {
		t.Errorf("-list printed %d lines, want 10", lines)
	}
}

// TestAnalyzerSubsetStalenessScoped: running a single analyzer over one
// directory must not flag the other analyzers' baseline entries as
// stale.
func TestAnalyzerSubsetStalenessScoped(t *testing.T) {
	code, _, stderr := runCapture(t, "-analyzers", "errflow", ".")
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "stale") {
		t.Errorf("subset run reported stale entries:\n%s", stderr)
	}
}

// TestBrokenPackageDegrades: a type-check failure downgrades the run to
// the intraprocedural analyzers instead of aborting.
func TestBrokenPackageDegrades(t *testing.T) {
	code, _, stderr := runCapture(t, "-baseline", "",
		filepath.Join("..", "..", "internal", "analysis", "testdata", "analysis", "broken", "brokenpkg"))
	if code != 0 {
		t.Fatalf("run = %d, want 0 (no findings, degraded); stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "failed to load") || !strings.Contains(stderr, "degrading to intraprocedural") {
		t.Errorf("missing degrade warnings:\n%s", stderr)
	}
}
