// Command squatvet runs the repository's static-analysis suite
// (internal/analysis): stdlib-only go/parser + go/types checks that
// enforce the determinism, metric-naming, transport, retry-convention
// and lock-hygiene invariants the correctness story rests on.
//
// Usage:
//
//	squatvet [flags] [packages...]
//
// Packages are directories, optionally suffixed /... for subtrees
// (default ./...). Exit status is 0 when every finding is covered by the
// baseline, 1 when fresh findings exist, 2 on load/usage errors.
//
// The baseline workflow: `squatvet ./...` fails on any finding not in
// the committed squatvet.baseline at the module root. Intentional
// exemptions are added there (one justification comment per entry) and
// burned down over time; `-write-baseline` regenerates the file from the
// current findings so the diff can be reviewed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"squatphi/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("squatvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut       = fs.Bool("json", false, "emit fresh findings as a JSON array instead of text")
		baselinePath  = fs.String("baseline", "squatvet.baseline", "baseline file, relative to the module root (empty disables)")
		writeBaseline = fs.Bool("write-baseline", false, "write the current findings to the baseline file and exit")
		list          = fs.Bool("list", false, "list analyzers and exit")
		names         = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		noTests       = fs.Bool("no-tests", false, "skip _test.go files")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	loader.Tests = !*noTests

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "squatvet: -write-baseline requires -baseline")
			return 2
		}
		f, err := os.Create(filepath.Join(root, *baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "squatvet:", err)
			return 2
		}
		defer f.Close()
		if err := analysis.WriteBaseline(f, diags); err != nil {
			fmt.Fprintln(stderr, "squatvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "squatvet: wrote %d finding(s) to %s — review and justify each entry\n", len(diags), *baselinePath)
		return 0
	}

	fresh := diags
	if *baselinePath != "" {
		baseline, err := analysis.LoadBaselineFile(filepath.Join(root, *baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "squatvet:", err)
			return 2
		}
		// Stale entries are only meaningful for files that were actually
		// analyzed this run; a partial invocation must not flag entries
		// for packages it never looked at.
		analyzedDirs := map[string]bool{}
		for _, p := range pkgs {
			if rel, err := filepath.Rel(root, p.Dir); err == nil {
				analyzedDirs[filepath.ToSlash(rel)] = true
			}
		}
		inScope := func(path string) bool {
			return analyzedDirs[filepath.ToSlash(filepath.Dir(path))]
		}
		var stale []string
		fresh, stale = baseline.FilterScoped(diags, inScope)
		for _, s := range stale {
			fmt.Fprintf(stderr, "squatvet: stale baseline entry (fixed? remove it): %s\n", s)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []analysis.Diagnostic{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(stderr, "squatvet:", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(stderr, "squatvet: %d finding(s) not covered by baseline\n", len(fresh))
		return 1
	}
	return 0
}
