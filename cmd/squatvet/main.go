// Command squatvet runs the repository's static-analysis suite
// (internal/analysis): stdlib-only go/parser + go/types checks that
// enforce the determinism, metric-naming, transport, retry-convention,
// lock-hygiene, hot-path allocation, goroutine-lifecycle and error-flow
// invariants the correctness story rests on. Analyzers that declare
// NeedsCallGraph (hotpath, lifecycleleak) additionally see a whole-load
// call graph built once over every analyzed package, so their rules hold
// transitively across package boundaries.
//
// Usage:
//
//	squatvet [flags] [packages...]
//
// Packages are directories, optionally suffixed /... for subtrees
// (default ./...). Exit status is 0 when every finding is covered by the
// baseline, 1 when fresh findings exist, 2 on load/usage errors.
//
// Loading and checking are parallel (-workers, default GOMAXPROCS);
// output is byte-identical at any worker count. When a package fails to
// type-check the run degrades rather than dying: the broken package is
// reported as a warning, call-graph analyzers are skipped (a graph with
// holes would silently under-approximate), and the intraprocedural
// analyzers still run over everything that loaded.
//
// The baseline workflow: `squatvet ./...` fails on any finding not in
// the committed squatvet.baseline at the module root. Intentional
// exemptions are added there (one justification comment per entry) and
// burned down over time; `-write-baseline` regenerates the file from the
// current findings so the diff can be reviewed. Stale-entry warnings are
// scoped to the packages and analyzers that actually ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"squatphi/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("squatvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut       = fs.Bool("json", false, "emit fresh findings as a JSON array instead of text")
		baselinePath  = fs.String("baseline", "squatvet.baseline", "baseline file, relative to the module root (empty disables)")
		writeBaseline = fs.Bool("write-baseline", false, "write the current findings to the baseline file and exit")
		list          = fs.Bool("list", false, "list analyzers and exit")
		names         = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		noTests       = fs.Bool("no-tests", false, "skip _test.go files")
		workers       = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel load/check workers (1 = serial)")
		showTime      = fs.Bool("time", false, "print per-analyzer wall time and package count to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	loader.Tests = !*noTests
	loader.Workers = *workers

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, broken, err := loader.LoadAll(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintf(stderr, "squatvet: %s failed to load: %v\n", b.ImportPath, b.Err)
		}
		if dropped := len(analyzers) - len(analysis.Intraprocedural(analyzers)); dropped > 0 {
			fmt.Fprintf(stderr, "squatvet: degrading to intraprocedural analysis (%d call-graph analyzer(s) skipped; a partial graph would under-report)\n", dropped)
		}
		analyzers = analysis.Intraprocedural(analyzers)
		if len(analyzers) == 0 {
			fmt.Fprintln(stderr, "squatvet: every requested analyzer needs the call graph; refusing to report a clean run having checked nothing")
			return 2
		}
	}
	diags, timings, err := analysis.RunTimed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	if *showTime {
		fmt.Fprintf(stderr, "squatvet: %d package(s), %d worker(s)\n", len(pkgs), *workers)
		for _, t := range timings {
			fmt.Fprintf(stderr, "squatvet:   %-14s %s\n", t.Name, t.Duration.Round(10*time.Microsecond))
		}
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "squatvet: -write-baseline requires -baseline")
			return 2
		}
		f, err := os.Create(filepath.Join(root, *baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "squatvet:", err)
			return 2
		}
		defer f.Close()
		if err := analysis.WriteBaseline(f, diags); err != nil {
			fmt.Fprintln(stderr, "squatvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "squatvet: wrote %d finding(s) to %s — review and justify each entry\n", len(diags), *baselinePath)
		return 0
	}

	fresh := diags
	if *baselinePath != "" {
		baseline, err := analysis.LoadBaselineFile(filepath.Join(root, *baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "squatvet:", err)
			return 2
		}
		// Stale entries are only meaningful for files that were actually
		// analyzed this run by an analyzer that actually ran; a partial
		// invocation (path subset or -analyzers subset) must not flag
		// entries it never looked for.
		analyzedDirs := map[string]bool{}
		for _, p := range pkgs {
			if rel, err := filepath.Rel(root, p.Dir); err == nil {
				analyzedDirs[filepath.ToSlash(rel)] = true
			}
		}
		ranAnalyzer := map[string]bool{}
		for _, a := range analyzers {
			ranAnalyzer[a.Name] = true
		}
		inScope := func(analyzer, path string) bool {
			return ranAnalyzer[analyzer] && analyzedDirs[filepath.ToSlash(filepath.Dir(path))]
		}
		var stale []string
		fresh, stale = baseline.FilterScoped(diags, inScope)
		for _, s := range stale {
			fmt.Fprintf(stderr, "squatvet: stale baseline entry (fixed? remove it): %s\n", s)
		}
	}

	if *jsonOut {
		if err := analysis.RenderJSON(stdout, fresh); err != nil {
			fmt.Fprintln(stderr, "squatvet:", err)
			return 2
		}
	} else if err := analysis.RenderText(stdout, fresh); err != nil {
		fmt.Fprintln(stderr, "squatvet:", err)
		return 2
	}
	if len(fresh) > 0 {
		fmt.Fprintf(stderr, "squatvet: %d finding(s) not covered by baseline\n", len(fresh))
		return 1
	}
	return 0
}
