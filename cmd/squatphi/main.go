// Command squatphi runs the full SquatPhi pipeline end to end against a
// synthetic Internet: DNS scan for squatting domains, web+mobile crawl,
// classifier training on the crowdsourced feed, in-the-wild detection, and
// the summary tables.
//
// Usage:
//
//	squatphi [-domains 8000] [-phish 600] [-seed 1175] [-trees 40] [-delta]
//	         [-explain dom1,dom2] [-trace-out trace.gz] [-events log.jsonl]
//
// -delta routes the DNS scan through the incremental delta-scan engine
// (internal/deltascan): output is identical to the direct scan, and
// repeated scans of an evolving snapshot reuse unchanged shards and cached
// per-domain verdicts.
//
// -explain prints the verdict-provenance record for the named domains
// after detection; -trace-out persists the full trace store (flagged
// verdicts plus the 1-in-N head sample, adjustable with -trace-sample)
// for later inspection with squatexplain; -events writes the structured
// JSONL event log. With -debug-addr, /debug/verdict?domain=… serves the
// same records over HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"syscall"
	"time"

	"squatphi/internal/core"
	"squatphi/internal/domlm"
	"squatphi/internal/features"
	"squatphi/internal/obs"
	"squatphi/internal/obs/trace"
	"squatphi/internal/report"
	"squatphi/internal/retry"
	"squatphi/internal/serve"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("squatphi: ")
	domains := flag.Int("domains", 8000, "approximate squatting-domain population")
	phish := flag.Int("phish", 600, "non-squatting phishing population (feed size)")
	seed := flag.Uint64("seed", 1175, "world seed")
	trees := flag.Int("trees", 40, "random forest size")
	noise := flag.Int("dnsnoise", 30000, "background DNS records")
	scanWorkers := flag.Int("scan-workers", 0, "DNS scan/generation parallelism (0 = all cores, 1 = serial)")
	deltaScan := flag.Bool("delta", false, "route the DNS scan through the incremental delta-scan engine (same output; re-scans of an evolving snapshot reuse unchanged shards and cached verdicts)")
	scoreWorkers := flag.Int("score-workers", 0, "classifier scoring parallelism (0 = all cores, 1 = serial)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /spans and pprof on this address (e.g. :6060)")
	crawlRetries := flag.Int("crawl-retries", 0, "crawler retries per fetch (negative disables, 0 = default 1)")
	explain := flag.String("explain", "", "comma-separated domains to explain after detection (verdict provenance, human-readable)")
	traceOut := flag.String("trace-out", "", "write the provenance trace store (gzip+JSONL, readable with squatexplain) to this file")
	eventsOut := flag.String("events", "", "write the structured JSONL event log to this file (- for stderr)")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1-in-N scanned domains into the trace store (0 = default 64, negative disables)")
	useDomLM := flag.Bool("domlm", false, "train the brand-language model over the brand universe and attach it to the matcher (generated-squat detection) and the classifier features")
	domlmThreshold := flag.Float64("domlm-threshold", 0, "brand-likeness score above which an unmatched domain is flagged as a generated squat (0 = default)")
	domlmSave := flag.String("domlm-save", "", "write the trained brand-language model (versioned binary, self-fingerprinting) to this file")
	domlmLoad := flag.String("domlm-load", "", "score a few sample domains with a saved model and exit (decode smoke check)")
	genSquats := flag.Int("gen-squats", 0, "plant this many machine-generated squats that defeat the five rule types (requires -domlm to detect them)")
	pol := retry.RegisterFlags(nil) // -retry-* and -breaker-*
	flag.Parse()

	if *domlmLoad != "" {
		if err := inspectModel(*domlmLoad); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := core.Config{
		World:            webworld.Config{SquattingDomains: *domains, NonSquattingPhish: *phish, GeneratedSquats: *genSquats, Seed: *seed},
		DNSNoiseRecords:  *noise,
		DomLM:            *useDomLM,
		DomLMThreshold:   *domlmThreshold,
		ForestTrees:      *trees,
		ScanWorkers:      *scanWorkers,
		ScoreWorkers:     *scoreWorkers,
		Incremental:      *deltaScan,
		CrawlRetries:     *crawlRetries,
		Retry:            *pol,
		TraceSampleEvery: *traceSample,
		Seed:             *seed ^ 0x53517561, // decouple pipeline seed from world seed
	}
	if *eventsOut != "" {
		w := io.Writer(os.Stderr)
		if *eventsOut != "-" {
			f, err := os.Create(*eventsOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		cfg.Events = trace.NewLogger(w, trace.LevelDebug)
	}
	start := time.Now()
	p, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// SIGINT/SIGTERM cancel the pipeline context and flush what exists:
	// the trace store and the crawler/prober stages all observe ctx, so
	// an interrupted run still leaves its provenance on disk instead of
	// dying with artifacts buffered in memory.
	lc := serve.NewLifecycle()
	ctx := lc.Watch(context.Background(), os.Interrupt, syscall.SIGTERM)
	if *traceOut != "" {
		lc.OnShutdown("trace-store", func(context.Context) error {
			if err := p.Prov.WriteStoreFile(*traceOut); err != nil {
				return err
			}
			sampled, hits := p.Prov.ScanStats()
			log.Printf("trace store written to %s (%d records, %d scans sampled, %d sampled hits)",
				*traceOut, len(p.Prov.Records()), sampled, hits)
			return nil
		})
	}
	go func() {
		<-ctx.Done()
		sig := lc.Signal()
		if sig == nil {
			return
		}
		log.Printf("received %v; flushing partial artifacts", sig)
		shutCtx, cancel := context.WithTimeout(context.Background(), obs.ShutdownGrace)
		defer cancel()
		if err := lc.Shutdown(shutCtx); err != nil {
			log.Printf("flush: %v", err)
		}
		os.Exit(1)
	}()

	if *debugAddr != "" {
		dbg, err := obs.Serve(*debugAddr, p.Obs, p.Trace,
			obs.Route{Pattern: "/debug/verdict", Handler: trace.VerdictHandler(p.Lookup)})
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		p.Obs.PublishExpvar("squatphi")
		log.Printf("debug endpoint on http://%s (/metrics, /spans, /debug/verdict, /debug/pprof)", dbg.Addr())
	}

	log.Printf("world: %d squatting domains, %d brands", len(p.World.SquattingDomains), len(p.World.Brands.Brands))
	if p.LM != nil {
		log.Printf("domlm: model %016x over %d brands (%d generated squats planted)",
			p.LM.Fingerprint(), len(p.World.Brands.Brands), len(p.World.GeneratedSquats))
		if *domlmSave != "" {
			if err := p.LM.WriteFile(*domlmSave); err != nil {
				log.Fatal(err)
			}
			log.Printf("domlm: model written to %s", *domlmSave)
		}
	}

	cands := p.ScanDNS()
	log.Printf("DNS scan: %d records -> %d squatting candidates (%.0f records/sec)",
		p.DNSSnapshot().Len(), len(cands), p.Obs.Snapshot().Gauges["core.scan_dns.records_per_sec"])
	if e := p.DeltaEngine(); e != nil {
		st := e.LastStats()
		log.Printf("delta scan: epoch %d, %d/%d shards rescanned, %d cache hits / %d misses (full=%v)",
			st.Epoch, st.ShardsRescanned, st.ShardsRescanned+st.ShardsSkipped, st.CacheHits, st.CacheMisses, st.FullScan)
	}
	counts := map[squat.Type]int{}
	for _, c := range cands {
		counts[c.Type]++
	}
	for _, t := range squat.MatchTypes {
		if t == squat.Generated && p.LM == nil {
			continue // type 6 only exists with the language model attached
		}
		log.Printf("  %-10s %6d", t, counts[t])
	}

	log.Printf("building ground truth from the feed (%d verified reports)...", len(p.Feed.Verified()))
	gt, err := p.BuildGroundTruth(ctx, 600)
	if err != nil {
		log.Fatal(err)
	}
	pos, neg := gt.Counts()
	log.Printf("ground truth: %d phishing, %d benign", pos, neg)

	log.Printf("training random forest (%d trees, OCR+lexical+form features)...", *trees)
	clf := p.TrainClassifier(gt, features.AllFeatures())
	log.Printf("10-fold CV: FP=%.3f FN=%.3f AUC=%.3f ACC=%.3f",
		clf.Eval.Confusion.FPR(), clf.Eval.Confusion.FNR(), clf.Eval.AUC, clf.Eval.Confusion.Accuracy())

	log.Printf("crawling %d candidates (web + mobile) and classifying...", len(cands))
	det, err := p.DetectInWild(ctx, clf, 0)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable("Squatting phishing in the wild",
		"Profile", "Flagged", "Confirmed", "Brands")
	summarise := func(name string, fs []core.Flagged) {
		confirmed, brands := 0, map[string]bool{}
		for _, f := range fs {
			if f.Confirmed {
				confirmed++
				brands[f.Brand] = true
			}
		}
		tb.AddRow(name, len(fs), confirmed, len(brands))
	}
	summarise("web", det.FlaggedWeb)
	summarise("mobile", det.FlaggedMobile)
	tb.Render(os.Stdout)

	fmt.Println("\nConfirmed squatting phishing domains:")
	shown := 0
	for _, f := range append(det.FlaggedWeb, det.FlaggedMobile...) {
		if !f.Confirmed || shown >= 25 {
			continue
		}
		profile := "web"
		if f.Mobile {
			profile = "mobile"
		}
		fmt.Printf("  %-40s %-10s %-12s score=%.2f [%s]\n", f.Domain, f.SquatType, f.Brand, f.Score, profile)
		shown++
	}
	union := det.ConfirmedUnion()
	fmt.Printf("\n%d confirmed squatting phishing domains (%.2f%% of %d squatting domains) in %s\n",
		len(union), float64(len(union))/float64(len(cands))*100, len(cands), time.Since(start).Round(time.Second))

	if *explain != "" {
		for _, d := range strings.Split(*explain, ",") {
			d = strings.TrimSpace(d)
			if d == "" {
				continue
			}
			rec := p.Explain(d, clf, det, 0)
			p.Prov.Put(rec)
			fmt.Println()
			fmt.Print(rec.Render())
		}
	}
	// The trace store is written by the lifecycle hook — the same flush
	// whether the run completed or was signalled.
	shutCtx, cancel := context.WithTimeout(context.Background(), obs.ShutdownGrace)
	defer cancel()
	if err := lc.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}

	timings := p.StageTimings()
	stages := make([]string, 0, len(timings))
	for name := range timings {
		stages = append(stages, name)
	}
	sort.Slice(stages, func(i, j int) bool { return timings[stages[i]] > timings[stages[j]] })
	log.Printf("stage timings (last run of each):")
	for _, name := range stages {
		log.Printf("  %-14s %s", name, timings[name].Round(time.Millisecond))
	}
}

// inspectModel decodes a saved brand-language model (verifying its
// embedded fingerprint) and scores a few probe labels, so a persisted
// model can be sanity-checked without running the pipeline.
func inspectModel(path string) error {
	m, err := domlm.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("model %016x (order %d)\n", m.Fingerprint(), m.Config().Order)
	for _, probe := range []string{"paypal.com", "paypa1-login.net", "secure-account.online", "qzxvwkjh.biz"} {
		fmt.Printf("  %-24s %.4f\n", probe, m.Score(probe))
	}
	return nil
}
