// Command squatmond runs SquatPhi as a continuous monitor, the deployment
// mode of paper §7: it watches the DNS for newly registered domains, flags
// the squatting ones, crawls and classifies them, and appends alerts to a
// JSONL report. Against the synthetic world, "new registrations" arrive by
// evolving the DNS snapshot between rounds.
//
// Usage:
//
//	squatmond [-rounds 3] [-interval 0s] [-report alerts.jsonl]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"squatphi/internal/core"
	"squatphi/internal/crawler"
	"squatphi/internal/dnsx"
	"squatphi/internal/features"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// Alert is one monitor finding.
type Alert struct {
	Round     int     `json:"round"`
	Domain    string  `json:"domain"`
	Brand     string  `json:"brand"`
	SquatType string  `json:"squat_type"`
	Score     float64 `json:"score"`
	Profile   string  `json:"profile"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("squatmond: ")
	rounds := flag.Int("rounds", 3, "monitoring rounds to run")
	interval := flag.Duration("interval", 0, "pause between rounds")
	reportPath := flag.String("report", "", "append alerts as JSONL to this file (default stdout)")
	newPerRound := flag.Int("new", 400, "new registrations arriving per round")
	flag.Parse()

	p, err := core.New(core.Config{
		World:           webworld.Config{SquattingDomains: 3000, NonSquattingPhish: 300, Seed: 7},
		DNSNoiseRecords: 8000,
		ForestTrees:     25,
		Seed:            99,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	out := os.Stdout
	if *reportPath != "" {
		f, err := os.OpenFile(*reportPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)

	log.Printf("bootstrapping: training the classifier on the feed ground truth...")
	gt, err := p.BuildGroundTruth(ctx, 400)
	if err != nil {
		log.Fatal(err)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())
	log.Printf("classifier ready: CV AUC=%.3f FP=%.3f FN=%.3f",
		clf.Eval.AUC, clf.Eval.Confusion.FPR(), clf.Eval.Confusion.FNR())

	// The monitor's view of the DNS starts from the current snapshot; each
	// round a batch of "new registrations" (a shard of world domains it
	// has not seen yet plus fresh noise) lands.
	seen := dnsx.NewStore()
	worldDomains := p.World.DNSDomains()
	rng := simrand.New(1)
	cursor := 0
	c := &crawler.Crawler{Client: p.Server.Client(), Workers: 16}

	totalAlerts := 0
	for round := 1; round <= *rounds; round++ {
		next := dnsx.NewStore()
		seen.Range(func(rec dnsx.Record) bool {
			next.Add(rec.Domain, rec.IP)
			return true
		})
		for i := 0; i < *newPerRound && cursor < len(worldDomains); i++ {
			next.Add(worldDomains[cursor], dnsx.RandomIP(rng))
			cursor++
		}
		for i := 0; i < *newPerRound/2; i++ {
			next.Add(rng.Letters(10)+".com", dnsx.RandomIP(rng))
		}

		delta := dnsx.Diff(seen, next)
		seen = next
		var candidates []squat.Candidate
		for _, d := range delta.Added {
			if cand, ok := p.Matcher.Match(d); ok {
				candidates = append(candidates, cand)
			}
		}
		log.Printf("round %d: %d new registrations, %d squatting candidates",
			round, len(delta.Added), len(candidates))

		var domains []string
		byDomain := map[string]squat.Candidate{}
		for _, cand := range candidates {
			domains = append(domains, cand.Domain)
			byDomain[cand.Domain] = cand
		}
		results, err := c.Crawl(ctx, domains)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			for _, profile := range []struct {
				cap    crawler.Capture
				name   string
				mobile bool
			}{{res.Web, "web", false}, {res.Mobile, "mobile", true}} {
				if !profile.cap.Live || profile.cap.Redirected() {
					continue
				}
				score := core.ClassifyCapture(clf, profile.cap)
				if score < 0.5 {
					continue
				}
				cand := byDomain[res.Domain]
				if err := enc.Encode(Alert{
					Round: round, Domain: res.Domain, Brand: cand.Brand.Name,
					SquatType: cand.Type.String(), Score: score, Profile: profile.name,
				}); err != nil {
					log.Fatal(err)
				}
				totalAlerts++
			}
		}
		if *interval > 0 && round < *rounds {
			time.Sleep(*interval)
		}
	}
	fmt.Fprintf(os.Stderr, "squatmond: %d alerts over %d rounds\n", totalAlerts, *rounds)
}
