// Command squatmond runs SquatPhi as a continuous monitor, the deployment
// mode of paper §7: it watches the DNS for newly registered domains, flags
// the squatting ones, crawls and classifies them, and appends alerts to a
// JSONL report. Against the synthetic world, "new registrations" arrive by
// landing in an authoritative zone each round; the monitor confirms them by
// active probing (the ActiveDNS methodology) before matching.
//
// Every stage reports to the shared metrics registry, each round records a
// nested trace (round -> probe/match/crawl/classify), and -debug-addr
// serves /metrics, /spans and pprof live.
//
// Usage:
//
//	squatmond [-rounds 3] [-interval 0s] [-report alerts.jsonl] [-debug-addr :6060] [-delta]
//
// -delta switches the match stage to the incremental delta-scan engine:
// each round re-scans the whole accumulated zone, but unchanged shards are
// skipped by checksum and previously-seen domains answer from the verdict
// cache, so the round cost tracks the churn rather than the zone size.
// Alerts are identical to the per-batch match path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"syscall"
	"time"

	"squatphi/internal/core"
	"squatphi/internal/crawler"
	"squatphi/internal/deltascan"
	"squatphi/internal/dnsx"
	"squatphi/internal/features"
	"squatphi/internal/fsx"
	"squatphi/internal/obs"
	"squatphi/internal/retry"
	"squatphi/internal/serve"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// Alert is one monitor finding.
type Alert struct {
	Round     int     `json:"round"`
	Domain    string  `json:"domain"`
	Brand     string  `json:"brand"`
	SquatType string  `json:"squat_type"`
	Score     float64 `json:"score"`
	Profile   string  `json:"profile"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("squatmond: ")
	rounds := flag.Int("rounds", 3, "monitoring rounds to run")
	interval := flag.Duration("interval", 0, "pause between rounds")
	reportPath := flag.String("report", "", "append alerts as JSONL to this file (default stdout)")
	newPerRound := flag.Int("new", 400, "world registrations arriving per round (plus 50% random-noise names)")
	scanWorkers := flag.Int("scan-workers", 0, "DNS scan/generation parallelism (0 = all cores, 1 = serial)")
	deltaScan := flag.Bool("delta", false, "match via the incremental delta-scan engine: each round re-scans the whole zone but reuses unchanged shards and cached per-domain verdicts (same alerts, longitudinal cost)")
	deltaState := flag.String("delta-state", "", "with -delta: delta-engine spill path, recovered on boot and saved atomically on exit (including SIGINT/SIGTERM)")
	scoreWorkers := flag.Int("score-workers", 0, "classifier scoring parallelism (0 = all cores, 1 = serial)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /spans and pprof on this address (e.g. :6060)")
	metricsPath := flag.String("metrics", "", "write the final metrics snapshot to this file (default <report>.metrics.json when -report is set)")
	crawlRetries := flag.Int("crawl-retries", 0, "crawler retries per fetch (negative disables, 0 = default 1)")
	probeRetries := flag.Int("probe-retries", 0, "DNS probe re-sends per domain (negative disables, 0 = default 2)")
	pol := retry.RegisterFlags(nil) // -retry-* and -breaker-* (shared by crawler + prober)
	flag.Parse()

	reg := obs.NewRegistry()
	p, err := core.New(core.Config{
		World:           webworld.Config{SquattingDomains: 3000, NonSquattingPhish: 300, Seed: 7},
		DNSNoiseRecords: 8000,
		ForestTrees:     25,
		ScanWorkers:     *scanWorkers,
		ScoreWorkers:    *scoreWorkers,
		CrawlRetries:    *crawlRetries,
		Retry:           *pol,
		Seed:            99,
		Metrics:         reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// SIGINT/SIGTERM cancel the monitor context; the round loop exits at
	// the next stage boundary and the normal flush path (metrics
	// snapshot, delta-engine spill) still runs — a monitor killed from
	// the terminal leaves the same artifacts as one that ran to
	// completion.
	lc := serve.NewLifecycle()
	ctx := lc.Watch(obs.WithRecorder(context.Background(), p.Trace),
		os.Interrupt, syscall.SIGTERM)

	if *debugAddr != "" {
		dbg, err := obs.Serve(*debugAddr, reg, p.Trace)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		reg.PublishExpvar("squatphi")
		log.Printf("debug endpoint on http://%s (/metrics, /spans, /debug/pprof)", dbg.Addr())
	}

	out := os.Stdout
	if *reportPath != "" {
		f, err := os.OpenFile(*reportPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)

	log.Printf("bootstrapping: training the classifier on the feed ground truth...")
	gt, err := p.BuildGroundTruth(ctx, 400)
	if err != nil {
		log.Fatal(err)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())
	log.Printf("classifier ready: CV AUC=%.3f FP=%.3f FN=%.3f",
		clf.Eval.AUC, clf.Eval.Confusion.FPR(), clf.Eval.Confusion.FNR())

	// The monitor watches an authoritative zone; each round a batch of
	// "new registrations" (a shard of world domains it has not seen yet
	// plus fresh noise) lands there, and the monitor confirms them by
	// active probing against the zone's DNS server before matching.
	zone := dnsx.NewStore()
	srv, err := dnsx.NewServerObs(zone, reg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	prober := &dnsx.Prober{Addr: srv.Addr(), Retries: *probeRetries, Policy: *pol, Metrics: reg}

	worldDomains := p.World.DNSDomains()
	rng := simrand.New(1)
	cursor := 0
	c := &crawler.Crawler{Client: p.Server.Client(), Workers: 16, Retries: *crawlRetries, Policy: *pol, Metrics: reg}

	// With -delta the monitor re-scans the whole accumulated zone each
	// round through a persistent engine instead of matching just the new
	// batch: unchanged shards are skipped by checksum and previously seen
	// domains answer from the verdict cache, so the round cost tracks the
	// churn, not the zone size — the paper's §7 deployment posture.
	var engine *deltascan.Engine
	if *deltaScan {
		engine = deltascan.NewEngine()
		if *deltaState != "" {
			var recovered bool
			var rerr error
			engine, recovered, rerr = deltascan.Recover(*deltaState)
			if rerr != nil {
				log.Printf("delta state %s unreadable (%v); starting with a full scan", *deltaState, rerr)
			} else if recovered {
				log.Printf("delta state recovered from %s (epoch %d)", *deltaState, engine.Epoch())
			}
			lc.OnShutdown("delta-state", func(context.Context) error {
				return engine.SaveFile(*deltaState)
			})
		}
		engine.InstrumentMetrics(reg)
	} else if *deltaState != "" {
		log.Fatal("-delta-state needs -delta")
	}

	mRounds := reg.Counter("squatmond.rounds")
	mNew := reg.Counter("squatmond.new_registrations")
	mCandidates := reg.Counter("squatmond.candidates")
	mAlerts := reg.Counter("squatmond.alerts")
	hRound := reg.Histogram("squatmond.round_ms", obs.MillisBuckets)

monitor:
	for round := 1; round <= *rounds; round++ {
		if ctx.Err() != nil {
			break
		}
		roundCtx, span := obs.StartSpan(ctx, "round")
		span.SetAttr("round", strconv.Itoa(round))
		start := time.Now()

		var batch []string
		for i := 0; i < *newPerRound && cursor < len(worldDomains); i++ {
			d := worldDomains[cursor]
			cursor++
			if _, exists := zone.Lookup(d); exists {
				continue
			}
			zone.Add(d, dnsx.RandomIP(rng))
			batch = append(batch, d)
		}
		for i := 0; i < *newPerRound/2; i++ {
			d := rng.Letters(10) + ".com"
			if _, exists := zone.Lookup(d); exists {
				continue
			}
			zone.Add(d, dnsx.RandomIP(rng))
			batch = append(batch, d)
		}
		mNew.Add(int64(len(batch)))

		probeCtx, probeSpan := obs.StartSpan(roundCtx, "probe")
		records, err := prober.Probe(probeCtx, batch)
		probeSpan.SetAttr("resolved", strconv.Itoa(len(records)))
		probeSpan.EndWith(err)
		if err != nil {
			if ctx.Err() != nil { // interrupted mid-probe: flush, don't fatal
				span.End()
				break monitor
			}
			log.Fatal(err)
		}

		_, matchSpan := obs.StartSpan(roundCtx, "match")
		var domains []string
		byDomain := map[string]squat.Candidate{}
		if engine != nil {
			// Scan the whole zone incrementally, then keep only this
			// round's probe-confirmed batch. Batches are disjoint across
			// rounds (only domains absent from the zone are added), so the
			// filtered set — and therefore every alert — is identical to
			// the per-record match below. Iterating the probe records keeps
			// the candidate order identical too.
			inZone := map[string]squat.Candidate{}
			for _, cand := range engine.Scan(zone, p.Matcher, *scanWorkers) {
				inZone[cand.Domain] = cand
			}
			for _, rec := range records {
				if cand, ok := inZone[rec.Domain]; ok {
					domains = append(domains, cand.Domain)
					byDomain[cand.Domain] = cand
				}
			}
			st := engine.LastStats()
			matchSpan.SetAttr("shards_rescanned", strconv.Itoa(st.ShardsRescanned))
			matchSpan.SetAttr("cache_hits", strconv.Itoa(st.CacheHits))
		} else {
			for _, rec := range records {
				if cand, ok := p.Matcher.Match(rec.Domain); ok {
					domains = append(domains, cand.Domain)
					byDomain[cand.Domain] = cand
				}
			}
		}
		matchSpan.SetAttr("candidates", strconv.Itoa(len(domains)))
		matchSpan.End()
		mCandidates.Add(int64(len(domains)))

		// The crawler opens its own child span under the round.
		results, err := c.Crawl(roundCtx, domains)
		if err != nil {
			if ctx.Err() != nil { // interrupted mid-crawl: flush, don't fatal
				span.End()
				break monitor
			}
			log.Fatal(err)
		}

		_, classifySpan := obs.StartSpan(roundCtx, "classify")
		roundAlerts := 0
		for _, res := range results {
			for _, profile := range []struct {
				cap    crawler.Capture
				name   string
				mobile bool
			}{{res.Web, "web", false}, {res.Mobile, "mobile", true}} {
				if !profile.cap.Live || profile.cap.Redirected() {
					continue
				}
				score := core.ClassifyCapture(clf, profile.cap)
				if score < 0.5 {
					continue
				}
				cand := byDomain[res.Domain]
				if err := enc.Encode(Alert{
					Round: round, Domain: res.Domain, Brand: cand.Brand.Name,
					SquatType: cand.Type.String(), Score: score, Profile: profile.name,
				}); err != nil {
					log.Fatal(err)
				}
				roundAlerts++
			}
		}
		classifySpan.SetAttr("alerts", strconv.Itoa(roundAlerts))
		classifySpan.End()
		mAlerts.Add(int64(roundAlerts))
		mRounds.Inc()
		hRound.ObserveSince(start)
		span.SetAttr("alerts", strconv.Itoa(roundAlerts))
		span.End()

		rtt := reg.Histogram("dnsx.probe.rtt_ms", nil).Snapshot()
		log.Printf("round %d: %d new registrations, %d candidates, %d alerts (wall %s, probe RTT p50 %.2fms, alerts total %d)",
			round, len(batch), len(domains), roundAlerts,
			time.Since(start).Round(time.Millisecond), rtt.Quantile(0.5), mAlerts.Value())
		if engine != nil {
			st := engine.LastStats()
			log.Printf("round %d delta: %d/%d shards rescanned, %d cache hits / %d misses, %d candidates reused",
				round, st.ShardsRescanned, st.ShardsRescanned+st.ShardsSkipped,
				st.CacheHits, st.CacheMisses, st.CandidatesReused)
		}

		if *interval > 0 && round < *rounds {
			select {
			case <-time.After(*interval):
			case <-ctx.Done():
			}
		}
	}
	if sig := lc.Signal(); sig != nil {
		log.Printf("received %v; flushing artifacts before exit", sig)
	}

	snap := reg.Snapshot()
	fmt.Fprintf(os.Stderr, "squatmond: %d alerts over %d rounds (%d DNS queries served, %d candidates, %d pages fetched, %d fetch failures)\n",
		snap.Counters["squatmond.alerts"], *rounds,
		snap.Counters["dnsx.server.queries"], snap.Counters["squatmond.candidates"],
		snap.Counters["crawler.pages"], snap.Counters["crawler.fetch.failures"])

	// Flush the final snapshot next to the JSONL report.
	flushPath := *metricsPath
	if flushPath == "" && *reportPath != "" {
		flushPath = *reportPath + ".metrics.json"
	}
	if flushPath != "" {
		if err := fsx.WriteFile(flushPath, func(w io.Writer) error {
			me := json.NewEncoder(w)
			me.SetIndent("", "  ")
			return me.Encode(snap)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("metrics snapshot written to %s", flushPath)
	}

	// Run the registered flush hooks (delta-engine spill) — the same
	// path whether the monitor finished its rounds or was signalled.
	shutCtx, cancel := context.WithTimeout(context.Background(), obs.ShutdownGrace)
	defer cancel()
	if err := lc.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	if *deltaState != "" {
		log.Printf("delta state saved to %s", *deltaState)
	}
}
