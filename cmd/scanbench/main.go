// Command scanbench measures the sharded DNS scan at increasing worker
// counts and writes the BENCH_scan.json artifact: ns/op and records/sec at
// 1, NumCPU/2 and NumCPU workers, plus the parallel-vs-serial speedup and
// an equivalence check (the parallel candidate slice must be identical to
// the serial one).
//
// With -delta (default on) it also measures the warm-epoch incremental
// re-scan: a deltascan.Engine is warmed on one snapshot epoch, a second
// epoch with a small churn fraction is derived, and the engine's re-scan
// of the new epoch is timed against a cold full scan of the same store.
// The artifact records the speedup, shard-skip ratio, and cache hit rate,
// and the warm result is verified byte-identical to the cold scan.
// `make bench` runs it after the root benchmarks so the repo's perf
// trajectory is captured next to the paper artifacts.
//
// Usage:
//
//	scanbench [-records 200000] [-seed 1035] [-out BENCH_scan.json]
//	          [-delta] [-churn 0.005] [-warm-reps 5]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"squatphi/internal/core"
	"squatphi/internal/deltascan"
	"squatphi/internal/dnsx"
	"squatphi/internal/obs"
	"squatphi/internal/obs/trace"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

// benchBrands is the fixed brand set the synthetic haystack is seeded
// around; a handful of high-value brands matches the paper's skew.
var benchBrands = []string{"paypal.com", "facebook.com", "google.com", "citibank.com", "amazon.com"}

// entry is one measured worker count.
type entry struct {
	Workers       int     `json:"workers"`
	NsPerOp       int64   `json:"ns_per_op"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Speedup       float64 `json:"speedup_vs_serial"`
}

// warmEntry is one measured warm-epoch incremental re-scan.
type warmEntry struct {
	Workers        int     `json:"workers"`
	ColdNsPerOp    int64   `json:"cold_ns_per_op"`
	WarmNsPerOp    int64   `json:"warm_ns_per_op"`
	Speedup        float64 `json:"warm_speedup_vs_cold"`
	ShardSkipRatio float64 `json:"shard_skip_ratio"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// provEntry measures the verdict-provenance head-sampling overhead: the
// serial scan re-timed with a trace.Collector attached at 1-in-N
// sampling, against the uninstrumented serial baseline. The PR 6 target
// is < 5% overhead at the default 1-in-64.
type provEntry struct {
	SampleEvery    int     `json:"sample_every"`
	BaseNsPerOp    int64   `json:"base_ns_per_op"`
	SampledNsPerOp int64   `json:"sampled_ns_per_op"`
	Overhead       float64 `json:"overhead_fraction"`
	SampledScans   int64   `json:"sampled_scans"`
}

// artifact is the BENCH_scan.json schema.
type artifact struct {
	Kind       string  `json:"kind"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	Records    int     `json:"records"`
	Candidates int     `json:"candidates"`
	Identical  bool    `json:"parallel_identical_to_serial"`
	Entries    []entry `json:"entries"`

	// Provenance head-sampling overhead (serial scan).
	Provenance *provEntry `json:"provenance,omitempty"`

	// SLO is the latency-quantile rollup of one final instrumented scan
	// (untimed), so the artifact carries p50/p95/p99 per histogram.
	SLO []obs.SLOEntry `json:"slo,omitempty"`

	// Warm-epoch incremental scan (only with -delta).
	ChurnFraction  float64     `json:"churn_fraction,omitempty"`
	ChangedRecords int         `json:"changed_records,omitempty"`
	DeltaIdentical bool        `json:"delta_identical_to_cold,omitempty"`
	WarmEntries    []warmEntry `json:"warm_entries,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scanbench: ")
	records := flag.Int("records", 200000, "background DNS records in the synthetic haystack")
	seed := flag.Uint64("seed", 1035, "snapshot seed")
	out := flag.String("out", "BENCH_scan.json", "write the JSON artifact to this file")
	delta := flag.Bool("delta", true, "also measure the warm-epoch incremental re-scan (internal/deltascan)")
	churn := flag.Float64("churn", 0.005, "fraction of records changed between the two epochs of the -delta bench")
	warmReps := flag.Int("warm-reps", 5, "repetitions of the warm-epoch measurement (min is reported)")
	deltaShards := flag.Int("delta-shards", 2048, "shard count of the delta-bench snapshot stores (finer shards = finer skip granularity)")
	traceSample := flag.Int("trace-sample", 0, "provenance head-sampling rate for the overhead measurement (1-in-N; 0 = default 64)")
	flag.Parse()

	var brands []squat.Brand
	for _, b := range benchBrands {
		brands = append(brands, squat.NewBrand(b))
	}
	gen := squat.NewGenerator()
	var planted []string
	for _, b := range brands {
		for i, c := range gen.Generate(b) {
			if i%5 == 0 { // a fifth of candidates are "registered"
				planted = append(planted, c.Domain)
			}
		}
	}
	log.Printf("generating snapshot: %d noise records + %d planted squats...", *records, len(planted))
	store := dnsx.GenerateSnapshot(dnsx.SnapshotSpec{Planted: planted, NoiseRecords: *records, Seed: *seed})
	matcher := squat.NewMatcher(brands)

	ncpu := runtime.GOMAXPROCS(0)
	workerCounts := []int{1}
	if half := ncpu / 2; half > 1 {
		workerCounts = append(workerCounts, half)
	}
	if ncpu > 1 {
		workerCounts = append(workerCounts, ncpu)
	}

	serial := core.ScanStore(store, matcher, 1, nil)
	parallel := core.ScanStore(store, matcher, workerCounts[len(workerCounts)-1], nil)
	art := artifact{
		Kind:       "bench_scan",
		GOMAXPROCS: ncpu,
		Shards:     store.NumShards(),
		Records:    store.Len(),
		Candidates: len(serial),
		Identical:  reflect.DeepEqual(serial, parallel),
	}
	if !art.Identical {
		log.Fatalf("parallel scan diverged from serial: %d vs %d candidates", len(parallel), len(serial))
	}

	var serialNs int64
	for _, w := range workerCounts {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ScanStore(store, matcher, w, nil)
			}
		})
		e := entry{
			Workers:       w,
			NsPerOp:       res.NsPerOp(),
			RecordsPerSec: float64(store.Len()) / (float64(res.NsPerOp()) / 1e9),
		}
		if w == 1 {
			serialNs = e.NsPerOp
		}
		if serialNs > 0 {
			e.Speedup = float64(serialNs) / float64(e.NsPerOp)
		}
		art.Entries = append(art.Entries, e)
		log.Printf("workers=%-3d %12d ns/op %12.0f records/sec  %.2fx", w, e.NsPerOp, e.RecordsPerSec, e.Speedup)
	}

	benchProvenance(&art, store, matcher, *warmReps, *traceSample)

	if *delta {
		benchWarmEpoch(&art, store, matcher, workerCounts, *seed, *churn, *warmReps, *deltaShards)
	}

	// One final instrumented scan (untimed, after every benchmark) so the
	// artifact carries the latency-quantile rollup of a representative run.
	reg := obs.NewRegistry()
	matcher.InstrumentMetrics(reg)
	core.ScanStore(store, matcher, workerCounts[len(workerCounts)-1], reg)
	art.SLO = reg.Snapshot().SLORollup("")

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d candidates over %d records; artifact written to %s", art.Candidates, art.Records, *out)
}

// benchProvenance measures the provenance head-sampling overhead on the
// serial scan: alternating uninstrumented and collector-attached scans
// of the same store, taking the min of each (interleaving cancels drift
// that separate testing.Benchmark runs would fold into the delta; min
// filters scheduler noise, the way benchWarmEpoch does). The collector
// is detached before the delta benchmarks so nothing downstream is
// perturbed.
func benchProvenance(art *artifact, store *dnsx.Store, matcher *squat.Matcher, reps, sampleEvery int) {
	col := trace.NewCollector(sampleEvery)
	defer matcher.InstrumentTrace(nil)
	var baseBest, sampledBest time.Duration
	for rep := 0; rep < reps; rep++ {
		matcher.InstrumentTrace(nil)
		start := time.Now()
		core.ScanStore(store, matcher, 1, nil)
		if d := time.Since(start); rep == 0 || d < baseBest {
			baseBest = d
		}
		matcher.InstrumentTrace(col)
		start = time.Now()
		core.ScanStore(store, matcher, 1, nil)
		if d := time.Since(start); rep == 0 || d < sampledBest {
			sampledBest = d
		}
	}
	sampled, _ := col.ScanStats()
	pe := &provEntry{
		SampleEvery:    col.SampleEvery(),
		BaseNsPerOp:    baseBest.Nanoseconds(),
		SampledNsPerOp: sampledBest.Nanoseconds(),
		Overhead:       float64(sampledBest.Nanoseconds())/float64(baseBest.Nanoseconds()) - 1,
		SampledScans:   sampled / int64(reps),
	}
	art.Provenance = pe
	log.Printf("provenance 1-in-%d: base %12d ns/op  sampled %12d ns/op  overhead %+.2f%% (%d scans sampled/op)",
		pe.SampleEvery, pe.BaseNsPerOp, pe.SampledNsPerOp, pe.Overhead*100, pe.SampledScans)
}

// benchWarmEpoch measures the incremental re-scan of a churned second
// epoch. Each repetition warms a fresh engine on epoch 0 (untimed), then
// times exactly one Scan of epoch 1, so the measurement is the true
// "yesterday's cache, today's snapshot" cost and never degrades into the
// all-shards-skipped fast path.
//
// The epoch stores are re-sharded to deltaShards (a longitudinal store
// wants fine shards so a sparse churn leaves most of them checksum-equal);
// the cold reference scans a default-sharded copy of the same records, the
// layout a non-incremental deployment would use. Shard layout never
// changes the candidate output, only the cost.
func benchWarmEpoch(art *artifact, src *dnsx.Store, matcher *squat.Matcher, workerCounts []int, seed uint64, churn float64, reps, deltaShards int) {
	epoch0 := reshard(src, deltaShards)
	epoch1, changed := churnEpoch(epoch0, seed, churn)
	epoch1Cold := reshard(epoch1, dnsx.DefaultShards)
	art.ChurnFraction = churn
	art.ChangedRecords = changed

	cold := core.ScanStore(epoch1Cold, matcher, 1, nil)
	check := deltascan.NewEngine()
	check.Scan(epoch0, matcher, 0)
	warm := check.Scan(epoch1, matcher, 0)
	art.DeltaIdentical = reflect.DeepEqual(cold, warm)
	if !art.DeltaIdentical {
		log.Fatalf("warm incremental scan diverged from cold scan: %d vs %d candidates", len(warm), len(cold))
	}
	log.Printf("warm epoch: %d of %d records changed (%.2f%%), warm output identical to cold",
		changed, epoch1.Len(), float64(changed)/float64(epoch1.Len())*100)

	for _, w := range workerCounts {
		coldRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ScanStore(epoch1Cold, matcher, w, nil)
			}
		})
		var warmBest time.Duration
		var stats deltascan.Stats
		for rep := 0; rep < reps; rep++ {
			e := deltascan.NewEngine()
			e.Scan(epoch0, matcher, w) // warm-up epoch, untimed
			start := time.Now()
			e.Scan(epoch1, matcher, w)
			d := time.Since(start)
			if rep == 0 || d < warmBest {
				warmBest, stats = d, e.LastStats()
			}
		}
		we := warmEntry{
			Workers:        w,
			ColdNsPerOp:    coldRes.NsPerOp(),
			WarmNsPerOp:    warmBest.Nanoseconds(),
			Speedup:        float64(coldRes.NsPerOp()) / float64(warmBest.Nanoseconds()),
			ShardSkipRatio: stats.SkipRatio(),
		}
		if n := stats.CacheHits + stats.CacheMisses; n > 0 {
			we.CacheHitRate = float64(stats.CacheHits) / float64(n)
		}
		art.WarmEntries = append(art.WarmEntries, we)
		log.Printf("warm workers=%-3d cold %12d ns/op  warm %12d ns/op  %.1fx (skip %.0f%%, cache hit %.1f%%)",
			w, we.ColdNsPerOp, we.WarmNsPerOp, we.Speedup, we.ShardSkipRatio*100, we.CacheHitRate*100)
	}
}

// reshard copies a store into a new shard layout, preserving insertion
// order (and therefore all observable contents).
func reshard(s *dnsx.Store, shards int) *dnsx.Store {
	out := dnsx.NewShardedStore(shards)
	s.Range(func(r dnsx.Record) bool {
		out.Add(r.Domain, r.IP)
		return true
	})
	return out
}

// churnEpoch derives epoch 1 from epoch 0: a churn fraction of records is
// touched (half re-pointed to new IPs, a quarter removed, a quarter
// replaced by fresh registrations), the rest copied verbatim.
func churnEpoch(epoch0 *dnsx.Store, seed uint64, churn float64) (*dnsx.Store, int) {
	rng := simrand.New(seed ^ 0xde17a)
	next := dnsx.NewShardedStore(epoch0.NumShards())
	changed := 0
	epoch0.Range(func(r dnsx.Record) bool {
		switch {
		case rng.Float64() >= churn: // unchanged
			next.Add(r.Domain, r.IP)
		case rng.Bool(0.5): // re-pointed
			next.Add(r.Domain, dnsx.RandomIP(rng))
			changed++
		case rng.Bool(0.5): // removed (deregistered)
			changed++
		default: // replaced by a fresh registration
			next.Add(rng.Letters(12)+".com", dnsx.RandomIP(rng))
			changed++
		}
		return true
	})
	return next, changed
}
