// Command scanbench measures the sharded DNS scan at increasing worker
// counts and writes the BENCH_scan.json artifact: ns/op, records/sec and
// allocations per op at 1, 4, 8 and NumCPU workers, plus the
// parallel-vs-serial speedup and an equivalence check (the parallel
// candidate slice must be identical to the serial one). A match-miss
// micro entry pins the per-record classification cost and machine-checks
// the zero-allocation contract of the miss path — the artifact write
// fails if a miss allocates.
//
// With -delta (default on) it also measures the warm-epoch incremental
// re-scan: a deltascan.Engine is warmed on one snapshot epoch, a second
// epoch with a small churn fraction is derived, and the engine's re-scan
// of the new epoch is timed against a cold full scan of the same store.
// The artifact records the speedup, shard-skip ratio, and cache hit rate,
// and the warm result is verified byte-identical to the cold scan.
// `make bench` runs it after the root benchmarks so the repo's perf
// trajectory is captured next to the paper artifacts.
//
// With -paper the haystack is the paper's full measurement scale —
// 224,810,532 records (Table 2: the com/net/org/info zone-file universe) —
// streamed straight into an mmap-able columnar snapshot (internal/snapfmt)
// without ever holding a store in memory, then scanned in place through
// the file mapping. The artifact's "paper" section records the snapshot
// size, write and open cost, scan throughput per worker count, RSS, and —
// unless -paper-text=false — the cold-start and scan cost of the
// equivalent text snapshot loaded into a heap store, with the two scans'
// candidate slices verified identical.
//
// Usage:
//
//	scanbench [-records 200000] [-seed 1035] [-out BENCH_scan.json]
//	          [-delta] [-churn 0.005] [-warm-reps 5]
//	          [-paper] [-paper-records N] [-paper-dir DIR] [-paper-text]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"squatphi/internal/core"
	"squatphi/internal/deltascan"
	"squatphi/internal/dnsx"
	"squatphi/internal/obs"
	"squatphi/internal/obs/trace"
	"squatphi/internal/simrand"
	"squatphi/internal/snapfmt"
	"squatphi/internal/squat"
)

// paperRecords is the record count of the paper's scanned universe: the
// 224.8M com/net/org/info records of Table 2.
const paperRecords = 224_810_532

// benchBrands is the fixed brand set the synthetic haystack is seeded
// around; a handful of high-value brands matches the paper's skew.
var benchBrands = []string{"paypal.com", "facebook.com", "google.com", "citibank.com", "amazon.com"}

// entry is one measured worker count. AllocsPerOp and BytesPerOp are the
// allocation totals of one op (one full scan of the snapshot) — with the
// zero-allocation miss path they stay flat in the worker count and
// per-candidate costs, instead of growing with the record count.
type entry struct {
	Workers       int     `json:"workers"`
	NsPerOp       int64   `json:"ns_per_op"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Speedup       float64 `json:"speedup_vs_serial"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
}

// matchMicro is the per-record classification micro-benchmark over the
// match-miss corpus shapes. AllocsPerOp is machine-checked to be zero.
type matchMicro struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// paperScale is the artifact section of the -paper run: the full-universe
// snapshot streamed to the binary columnar format and scanned through the
// file mapping, with the text-format path measured for comparison.
type paperScale struct {
	Records       uint64  `json:"records"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	WriteSecs     float64 `json:"write_secs"`
	MmapOpenNs    int64   `json:"mmap_open_ns"`
	Candidates    int     `json:"candidates"`
	ScanEntries   []entry `json:"scan_entries"`
	RSSMB         float64 `json:"rss_mb,omitempty"`
	RSSPeakMB     float64 `json:"rss_peak_mb,omitempty"`

	// Text-format comparison (-paper-text): the same records written as
	// "domain,ip" lines, loaded into a heap store, and scanned there.
	TextBytes        int64   `json:"text_bytes,omitempty"`
	TextLoadSecs     float64 `json:"text_load_secs,omitempty"`
	TextScanSecs     float64 `json:"text_scan_secs,omitempty"`
	TextRSSPeakMB    float64 `json:"text_rss_peak_mb,omitempty"`
	IdenticalToStore bool    `json:"snapshot_scan_identical_to_store,omitempty"`
}

// warmEntry is one measured warm-epoch incremental re-scan.
type warmEntry struct {
	Workers        int     `json:"workers"`
	ColdNsPerOp    int64   `json:"cold_ns_per_op"`
	WarmNsPerOp    int64   `json:"warm_ns_per_op"`
	Speedup        float64 `json:"warm_speedup_vs_cold"`
	ShardSkipRatio float64 `json:"shard_skip_ratio"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// provEntry measures the verdict-provenance head-sampling overhead: the
// serial scan re-timed with a trace.Collector attached at 1-in-N
// sampling, against the uninstrumented serial baseline. The PR 6 target
// is < 5% overhead at the default 1-in-64.
type provEntry struct {
	SampleEvery    int     `json:"sample_every"`
	BaseNsPerOp    int64   `json:"base_ns_per_op"`
	SampledNsPerOp int64   `json:"sampled_ns_per_op"`
	Overhead       float64 `json:"overhead_fraction"`
	SampledScans   int64   `json:"sampled_scans"`
}

// artifact is the BENCH_scan.json schema.
type artifact struct {
	Kind       string  `json:"kind"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	Records    int     `json:"records"`
	Candidates int     `json:"candidates"`
	Identical  bool    `json:"parallel_identical_to_serial"`
	Entries    []entry `json:"entries"`

	// MatchMiss is the per-record classification cost with its
	// machine-checked zero-allocation guarantee.
	MatchMiss *matchMicro `json:"match_miss,omitempty"`

	// Paper is the full-universe mmap-scan measurement (-paper).
	Paper *paperScale `json:"paper,omitempty"`

	// Provenance head-sampling overhead (serial scan).
	Provenance *provEntry `json:"provenance,omitempty"`

	// SLO is the latency-quantile rollup of one final instrumented scan
	// (untimed), so the artifact carries p50/p95/p99 per histogram.
	SLO []obs.SLOEntry `json:"slo,omitempty"`

	// Warm-epoch incremental scan (only with -delta).
	ChurnFraction  float64     `json:"churn_fraction,omitempty"`
	ChangedRecords int         `json:"changed_records,omitempty"`
	DeltaIdentical bool        `json:"delta_identical_to_cold,omitempty"`
	WarmEntries    []warmEntry `json:"warm_entries,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scanbench: ")
	records := flag.Int("records", 200000, "background DNS records in the synthetic haystack")
	seed := flag.Uint64("seed", 1035, "snapshot seed")
	out := flag.String("out", "BENCH_scan.json", "write the JSON artifact to this file")
	delta := flag.Bool("delta", true, "also measure the warm-epoch incremental re-scan (internal/deltascan)")
	churn := flag.Float64("churn", 0.005, "fraction of records changed between the two epochs of the -delta bench")
	warmReps := flag.Int("warm-reps", 5, "repetitions of the warm-epoch measurement (min is reported)")
	deltaShards := flag.Int("delta-shards", 2048, "shard count of the delta-bench snapshot stores (finer shards = finer skip granularity)")
	traceSample := flag.Int("trace-sample", 0, "provenance head-sampling rate for the overhead measurement (1-in-N; 0 = default 64)")
	paper := flag.Bool("paper", false, "also run the paper-scale mmap-snapshot scan (224.8M records)")
	paperN := flag.Int("paper-records", paperRecords, "record count of the -paper run")
	paperDir := flag.String("paper-dir", "", "directory for the -paper snapshot files (default TMPDIR)")
	paperText := flag.Bool("paper-text", true, "measure the text-snapshot cold start and scan for comparison in the -paper run")
	paperKeep := flag.Bool("paper-keep", false, "keep the -paper snapshot files instead of deleting them")
	flag.Parse()

	var brands []squat.Brand
	for _, b := range benchBrands {
		brands = append(brands, squat.NewBrand(b))
	}
	gen := squat.NewGenerator()
	var planted []string
	for _, b := range brands {
		for i, c := range gen.Generate(b) {
			if i%5 == 0 { // a fifth of candidates are "registered"
				planted = append(planted, c.Domain)
			}
		}
	}
	log.Printf("generating snapshot: %d noise records + %d planted squats...", *records, len(planted))
	store := dnsx.GenerateSnapshot(dnsx.SnapshotSpec{Planted: planted, NoiseRecords: *records, Seed: *seed})
	matcher := squat.NewMatcher(brands)

	ncpu := runtime.GOMAXPROCS(0)
	workerCounts := benchWorkerCounts(ncpu)

	serial := core.ScanStore(store, matcher, 1, nil)
	parallel := core.ScanStore(store, matcher, workerCounts[len(workerCounts)-1], nil)
	art := artifact{
		Kind:       "bench_scan",
		GOMAXPROCS: ncpu,
		Shards:     store.NumShards(),
		Records:    store.Len(),
		Candidates: len(serial),
		Identical:  reflect.DeepEqual(serial, parallel),
	}
	if !art.Identical {
		log.Fatalf("parallel scan diverged from serial: %d vs %d candidates", len(parallel), len(serial))
	}

	var serialNs int64
	for _, w := range workerCounts {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ScanStore(store, matcher, w, nil)
			}
		})
		e := entry{
			Workers:       w,
			NsPerOp:       res.NsPerOp(),
			RecordsPerSec: float64(store.Len()) / (float64(res.NsPerOp()) / 1e9),
			AllocsPerOp:   res.AllocsPerOp(),
			BytesPerOp:    res.AllocedBytesPerOp(),
		}
		if w == 1 {
			serialNs = e.NsPerOp
		}
		if serialNs > 0 {
			e.Speedup = float64(serialNs) / float64(e.NsPerOp)
		}
		art.Entries = append(art.Entries, e)
		log.Printf("workers=%-3d %12d ns/op %12.0f records/sec  %.2fx  %d allocs/op",
			w, e.NsPerOp, e.RecordsPerSec, e.Speedup, e.AllocsPerOp)
	}

	benchMatchMiss(&art, matcher)
	benchProvenance(&art, store, matcher, *warmReps, *traceSample)

	if *paper {
		benchPaperScale(&art, matcher, planted, *seed, *paperN, *paperDir, *paperText, *paperKeep, workerCounts)
	}

	if *delta {
		benchWarmEpoch(&art, store, matcher, workerCounts, *seed, *churn, *warmReps, *deltaShards)
	}

	// One final instrumented scan (untimed, after every benchmark) so the
	// artifact carries the latency-quantile rollup of a representative run.
	reg := obs.NewRegistry()
	matcher.InstrumentMetrics(reg)
	core.ScanStore(store, matcher, workerCounts[len(workerCounts)-1], reg)
	art.SLO = reg.Snapshot().SLORollup("")

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d candidates over %d records; artifact written to %s", art.Candidates, art.Records, *out)
}

// benchProvenance measures the provenance head-sampling overhead on the
// serial scan: alternating uninstrumented and collector-attached scans
// of the same store, taking the min of each (interleaving cancels drift
// that separate testing.Benchmark runs would fold into the delta; min
// filters scheduler noise, the way benchWarmEpoch does). The collector
// is detached before the delta benchmarks so nothing downstream is
// perturbed.
func benchProvenance(art *artifact, store *dnsx.Store, matcher *squat.Matcher, reps, sampleEvery int) {
	col := trace.NewCollector(sampleEvery)
	defer matcher.InstrumentTrace(nil)
	var baseBest, sampledBest time.Duration
	for rep := 0; rep < reps; rep++ {
		matcher.InstrumentTrace(nil)
		start := time.Now()
		core.ScanStore(store, matcher, 1, nil)
		if d := time.Since(start); rep == 0 || d < baseBest {
			baseBest = d
		}
		matcher.InstrumentTrace(col)
		start = time.Now()
		core.ScanStore(store, matcher, 1, nil)
		if d := time.Since(start); rep == 0 || d < sampledBest {
			sampledBest = d
		}
	}
	sampled, _ := col.ScanStats()
	pe := &provEntry{
		SampleEvery:    col.SampleEvery(),
		BaseNsPerOp:    baseBest.Nanoseconds(),
		SampledNsPerOp: sampledBest.Nanoseconds(),
		Overhead:       float64(sampledBest.Nanoseconds())/float64(baseBest.Nanoseconds()) - 1,
		SampledScans:   sampled / int64(reps),
	}
	art.Provenance = pe
	log.Printf("provenance 1-in-%d: base %12d ns/op  sampled %12d ns/op  overhead %+.2f%% (%d scans sampled/op)",
		pe.SampleEvery, pe.BaseNsPerOp, pe.SampledNsPerOp, pe.Overhead*100, pe.SampledScans)
}

// benchWarmEpoch measures the incremental re-scan of a churned second
// epoch. Each repetition warms a fresh engine on epoch 0 (untimed), then
// times exactly one Scan of epoch 1, so the measurement is the true
// "yesterday's cache, today's snapshot" cost and never degrades into the
// all-shards-skipped fast path.
//
// The epoch stores are re-sharded to deltaShards (a longitudinal store
// wants fine shards so a sparse churn leaves most of them checksum-equal);
// the cold reference scans a default-sharded copy of the same records, the
// layout a non-incremental deployment would use. Shard layout never
// changes the candidate output, only the cost.
func benchWarmEpoch(art *artifact, src *dnsx.Store, matcher *squat.Matcher, workerCounts []int, seed uint64, churn float64, reps, deltaShards int) {
	epoch0 := reshard(src, deltaShards)
	epoch1, changed := churnEpoch(epoch0, seed, churn)
	epoch1Cold := reshard(epoch1, dnsx.DefaultShards)
	art.ChurnFraction = churn
	art.ChangedRecords = changed

	cold := core.ScanStore(epoch1Cold, matcher, 1, nil)
	check := deltascan.NewEngine()
	check.Scan(epoch0, matcher, 0)
	warm := check.Scan(epoch1, matcher, 0)
	art.DeltaIdentical = reflect.DeepEqual(cold, warm)
	if !art.DeltaIdentical {
		log.Fatalf("warm incremental scan diverged from cold scan: %d vs %d candidates", len(warm), len(cold))
	}
	log.Printf("warm epoch: %d of %d records changed (%.2f%%), warm output identical to cold",
		changed, epoch1.Len(), float64(changed)/float64(epoch1.Len())*100)

	for _, w := range workerCounts {
		coldRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ScanStore(epoch1Cold, matcher, w, nil)
			}
		})
		var warmBest time.Duration
		var stats deltascan.Stats
		for rep := 0; rep < reps; rep++ {
			e := deltascan.NewEngine()
			e.Scan(epoch0, matcher, w) // warm-up epoch, untimed
			start := time.Now()
			e.Scan(epoch1, matcher, w)
			d := time.Since(start)
			if rep == 0 || d < warmBest {
				warmBest, stats = d, e.LastStats()
			}
		}
		we := warmEntry{
			Workers:        w,
			ColdNsPerOp:    coldRes.NsPerOp(),
			WarmNsPerOp:    warmBest.Nanoseconds(),
			Speedup:        float64(coldRes.NsPerOp()) / float64(warmBest.Nanoseconds()),
			ShardSkipRatio: stats.SkipRatio(),
		}
		if n := stats.CacheHits + stats.CacheMisses; n > 0 {
			we.CacheHitRate = float64(stats.CacheHits) / float64(n)
		}
		art.WarmEntries = append(art.WarmEntries, we)
		log.Printf("warm workers=%-3d cold %12d ns/op  warm %12d ns/op  %.1fx (skip %.0f%%, cache hit %.1f%%)",
			w, we.ColdNsPerOp, we.WarmNsPerOp, we.Speedup, we.ShardSkipRatio*100, we.CacheHitRate*100)
	}
}

// reshard copies a store into a new shard layout, preserving insertion
// order (and therefore all observable contents).
func reshard(s *dnsx.Store, shards int) *dnsx.Store {
	out := dnsx.NewShardedStore(shards)
	s.Range(func(r dnsx.Record) bool {
		out.Add(r.Domain, r.IP)
		return true
	})
	return out
}

// churnEpoch derives epoch 1 from epoch 0: a churn fraction of records is
// touched (half re-pointed to new IPs, a quarter removed, a quarter
// replaced by fresh registrations), the rest copied verbatim.
func churnEpoch(epoch0 *dnsx.Store, seed uint64, churn float64) (*dnsx.Store, int) {
	rng := simrand.New(seed ^ 0xde17a)
	next := dnsx.NewShardedStore(epoch0.NumShards())
	changed := 0
	epoch0.Range(func(r dnsx.Record) bool {
		switch {
		case rng.Float64() >= churn: // unchanged
			next.Add(r.Domain, r.IP)
		case rng.Bool(0.5): // re-pointed
			next.Add(r.Domain, dnsx.RandomIP(rng))
			changed++
		case rng.Bool(0.5): // removed (deregistered)
			changed++
		default: // replaced by a fresh registration
			next.Add(rng.Letters(12)+".com", dnsx.RandomIP(rng))
			changed++
		}
		return true
	})
	return next, changed
}

// benchWorkerCounts is the measured worker-count ladder: serial, 4, 8 and
// NumCPU, deduplicated and sorted. Counts above NumCPU are still measured
// — on a narrow machine they document that the scan does not degrade when
// over-subscribed, and the equivalence check holds at every width.
func benchWorkerCounts(ncpu int) []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range []int{1, 4, 8, ncpu} {
		if w > 0 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// missShapes is the match-miss micro corpus: the domain shapes a real scan
// spends nearly all its time on, none of which match anything.
var missShapes = [][]byte{
	[]byte("example.com"),
	[]byte("somedomain.net"),
	[]byte("deep.sub.domain.org"),
	[]byte("shop-fresh-market.io"),
	[]byte("smartlabs42.co.uk"),
	[]byte("faceb00k-ish-but-not.xyz"),
}

// benchMatchMiss measures the per-record classification cost over the
// miss shapes and machine-checks the tentpole contract: the miss path
// must not allocate. A violation fails the artifact write outright, so a
// regression cannot slip into BENCH_scan.json unnoticed.
func benchMatchMiss(art *artifact, matcher *squat.Matcher) {
	var s squat.Scratch
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matcher.MatchBytes(missShapes[i%len(missShapes)], &s)
		}
	})
	mm := &matchMicro{
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	art.MatchMiss = mm
	log.Printf("match miss: %d ns/op, %d allocs/op, %d B/op", mm.NsPerOp, mm.AllocsPerOp, mm.BytesPerOp)
	if mm.AllocsPerOp != 0 {
		log.Fatalf("match-miss path allocated %d times per record; the zero-allocation contract is broken", mm.AllocsPerOp)
	}
}

// benchPaperScale streams a paper-scale snapshot (records total, planted
// squats included) into the binary columnar format, mmaps it back, and
// measures the in-place scan — the end-to-end run behind the headline
// records/sec number. With text enabled the identical record stream is
// also written as a "domain,ip" text snapshot and replayed through the
// heap-store path for the cold-start and memory comparison.
func benchPaperScale(art *artifact, matcher *squat.Matcher, planted []string, seed uint64, records int, dir string, text, keep bool, workerCounts []int) {
	if dir == "" {
		dir = os.TempDir()
	}
	if records <= len(planted) {
		log.Fatalf("-paper-records %d must exceed the %d planted squats", records, len(planted))
	}
	spec := dnsx.SnapshotSpec{Planted: planted, NoiseRecords: records - len(planted), Seed: seed}
	snapPath := filepath.Join(dir, "squatphi_paper.snap")
	textPath := filepath.Join(dir, "squatphi_paper.csv")
	if !keep {
		defer os.Remove(snapPath)
		defer os.Remove(textPath)
	}

	ps := &paperScale{Records: uint64(records)}
	art.Paper = ps
	log.Printf("paper scale: streaming %d records to %s ...", records, snapPath)
	start := time.Now()
	if err := writePaperFiles(spec, snapPath, textPath, text); err != nil {
		log.Fatal(err)
	}
	ps.WriteSecs = time.Since(start).Seconds()
	if fi, err := os.Stat(snapPath); err == nil {
		ps.SnapshotBytes = fi.Size()
	}
	if text {
		if fi, err := os.Stat(textPath); err == nil {
			ps.TextBytes = fi.Size()
		}
	}
	log.Printf("paper scale: wrote %.2f GB snapshot in %.1fs", float64(ps.SnapshotBytes)/1e9, ps.WriteSecs)

	start = time.Now()
	snap, err := snapfmt.Open(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	ps.MmapOpenNs = time.Since(start).Nanoseconds()
	if snap.Len() != uint64(records) {
		log.Fatalf("snapshot holds %d records, want %d", snap.Len(), records)
	}

	var mmapHits []squat.Candidate
	var serialSecs float64
	for _, w := range workerCounts {
		start = time.Now()
		hits, err := core.ScanSnapshot(snap, matcher, w, nil)
		if err != nil {
			log.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		e := entry{
			Workers:       w,
			NsPerOp:       int64(secs * 1e9),
			RecordsPerSec: float64(records) / secs,
		}
		if w == 1 {
			serialSecs = secs
		}
		if serialSecs > 0 {
			e.Speedup = serialSecs / secs
		}
		ps.ScanEntries = append(ps.ScanEntries, e)
		mmapHits = hits
		log.Printf("paper scan workers=%-3d %8.1fs %12.0f records/sec  %.2fx  (%d candidates)",
			w, secs, e.RecordsPerSec, e.Speedup, len(hits))
	}
	ps.Candidates = len(mmapHits)
	if ps.Candidates == 0 {
		log.Fatal("paper-scale scan found no candidates; the planted squats are missing")
	}
	ps.RSSMB, ps.RSSPeakMB = rssMB()

	if text {
		log.Printf("paper scale: loading text snapshot %s into a heap store ...", textPath)
		start = time.Now()
		f, err := os.Open(textPath)
		if err != nil {
			log.Fatal(err)
		}
		store, err := dnsx.ReadSnapshot(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		ps.TextLoadSecs = time.Since(start).Seconds()
		start = time.Now()
		storeHits := core.ScanStore(store, matcher, workerCounts[len(workerCounts)-1], nil)
		ps.TextScanSecs = time.Since(start).Seconds()
		ps.IdenticalToStore = reflect.DeepEqual(mmapHits, storeHits)
		_, ps.TextRSSPeakMB = rssMB()
		log.Printf("paper text: load %.1fs, scan %.1fs (%.0f records/sec), identical=%v, peak RSS %.0f MB",
			ps.TextLoadSecs, ps.TextScanSecs, float64(records)/ps.TextScanSecs, ps.IdenticalToStore, ps.TextRSSPeakMB)
		if !ps.IdenticalToStore {
			log.Fatal("paper-scale snapshot scan diverged from the heap-store scan")
		}
	}
}

// writePaperFiles streams the spec once, feeding the binary snapshot
// writer and (optionally) the text snapshot side by side, so both files
// hold the identical record sequence.
func writePaperFiles(spec dnsx.SnapshotSpec, snapPath, textPath string, text bool) error {
	w := snapfmt.NewWriter(0)
	var tf *os.File
	var tw *bufio.Writer
	if text {
		var err error
		tf, err = os.Create(textPath)
		if err != nil {
			return err
		}
		tw = bufio.NewWriterSize(tf, 1<<20)
	}
	line := make([]byte, 0, 64)
	dnsx.StreamSnapshot(spec, func(domain string, ip [4]byte) bool {
		w.Add(domain, ip)
		if tw != nil {
			line = append(line[:0], domain...)
			line = append(line, ',')
			line = strconv.AppendUint(line, uint64(ip[0]), 10)
			line = append(line, '.')
			line = strconv.AppendUint(line, uint64(ip[1]), 10)
			line = append(line, '.')
			line = strconv.AppendUint(line, uint64(ip[2]), 10)
			line = append(line, '.')
			line = strconv.AppendUint(line, uint64(ip[3]), 10)
			line = append(line, '\n')
			tw.Write(line)
		}
		return true
	})
	if tw != nil {
		if err := tw.Flush(); err != nil {
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(snapPath)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteTo(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rssMB reads the process's current and peak resident set from
// /proc/self/status (zeros where the file or fields are unavailable, e.g.
// off linux).
func rssMB() (rss, peak float64) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	parse := func(field string) float64 {
		i := strings.Index(string(data), field)
		if i < 0 {
			return 0
		}
		var kb float64
		fmt.Sscanf(string(data[i+len(field):]), "%f", &kb)
		return kb / 1024
	}
	return parse("VmRSS:"), parse("VmHWM:")
}
