// Command scanbench measures the sharded DNS scan at increasing worker
// counts and writes the BENCH_scan.json artifact: ns/op and records/sec at
// 1, NumCPU/2 and NumCPU workers, plus the parallel-vs-serial speedup and
// an equivalence check (the parallel candidate slice must be identical to
// the serial one). `make bench` runs it after the root benchmarks so the
// repo's perf trajectory is captured next to the paper artifacts.
//
// Usage:
//
//	scanbench [-records 200000] [-seed 1035] [-out BENCH_scan.json]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"reflect"
	"runtime"
	"testing"

	"squatphi/internal/core"
	"squatphi/internal/dnsx"
	"squatphi/internal/squat"
)

// benchBrands is the fixed brand set the synthetic haystack is seeded
// around; a handful of high-value brands matches the paper's skew.
var benchBrands = []string{"paypal.com", "facebook.com", "google.com", "citibank.com", "amazon.com"}

// entry is one measured worker count.
type entry struct {
	Workers       int     `json:"workers"`
	NsPerOp       int64   `json:"ns_per_op"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Speedup       float64 `json:"speedup_vs_serial"`
}

// artifact is the BENCH_scan.json schema.
type artifact struct {
	Kind       string  `json:"kind"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	Records    int     `json:"records"`
	Candidates int     `json:"candidates"`
	Identical  bool    `json:"parallel_identical_to_serial"`
	Entries    []entry `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scanbench: ")
	records := flag.Int("records", 200000, "background DNS records in the synthetic haystack")
	seed := flag.Uint64("seed", 1035, "snapshot seed")
	out := flag.String("out", "BENCH_scan.json", "write the JSON artifact to this file")
	flag.Parse()

	var brands []squat.Brand
	for _, b := range benchBrands {
		brands = append(brands, squat.NewBrand(b))
	}
	gen := squat.NewGenerator()
	var planted []string
	for _, b := range brands {
		for i, c := range gen.Generate(b) {
			if i%5 == 0 { // a fifth of candidates are "registered"
				planted = append(planted, c.Domain)
			}
		}
	}
	log.Printf("generating snapshot: %d noise records + %d planted squats...", *records, len(planted))
	store := dnsx.GenerateSnapshot(dnsx.SnapshotSpec{Planted: planted, NoiseRecords: *records, Seed: *seed})
	matcher := squat.NewMatcher(brands)

	ncpu := runtime.GOMAXPROCS(0)
	workerCounts := []int{1}
	if half := ncpu / 2; half > 1 {
		workerCounts = append(workerCounts, half)
	}
	if ncpu > 1 {
		workerCounts = append(workerCounts, ncpu)
	}

	serial := core.ScanStore(store, matcher, 1, nil)
	parallel := core.ScanStore(store, matcher, workerCounts[len(workerCounts)-1], nil)
	art := artifact{
		Kind:       "bench_scan",
		GOMAXPROCS: ncpu,
		Shards:     store.NumShards(),
		Records:    store.Len(),
		Candidates: len(serial),
		Identical:  reflect.DeepEqual(serial, parallel),
	}
	if !art.Identical {
		log.Fatalf("parallel scan diverged from serial: %d vs %d candidates", len(parallel), len(serial))
	}

	var serialNs int64
	for _, w := range workerCounts {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ScanStore(store, matcher, w, nil)
			}
		})
		e := entry{
			Workers:       w,
			NsPerOp:       res.NsPerOp(),
			RecordsPerSec: float64(store.Len()) / (float64(res.NsPerOp()) / 1e9),
		}
		if w == 1 {
			serialNs = e.NsPerOp
		}
		if serialNs > 0 {
			e.Speedup = float64(serialNs) / float64(e.NsPerOp)
		}
		art.Entries = append(art.Entries, e)
		log.Printf("workers=%-3d %12d ns/op %12.0f records/sec  %.2fx", w, e.NsPerOp, e.RecordsPerSec, e.Speedup)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d candidates over %d records; artifact written to %s", art.Candidates, art.Records, *out)
}
