// Command squatexplain prints human-readable verdict-provenance
// explanations from a trace store written by `squatphi -trace-out`:
// which matcher rule fired (and the skeleton / edit-distance evidence
// behind it), whether the verdict was computed fresh or served from the
// delta-scan cache, the per-profile crawl and classifier evidence, and
// any retry/fault events attributed to the domain.
//
// Usage:
//
//	squatexplain [-json] [-marks] store.gz [domain ...]
//
// With no domains every stored record is printed; with domains only
// those are printed, and a domain absent from the store is an error
// (exit 1). -json emits the raw records as indented JSON instead of the
// rendered text; -marks lists the head-sampled scan marks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"squatphi/internal/obs/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("squatexplain: ")
	asJSON := flag.Bool("json", false, "emit raw records as indented JSON instead of rendered text")
	marks := flag.Bool("marks", false, "also list the head-sampled scan marks (domain + matched)")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: squatexplain [-json] [-marks] store.gz [domain ...]")
	}

	st, err := trace.ReadStoreFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	records := st.Records
	if domains := flag.Args()[1:]; len(domains) > 0 {
		records = records[:0:0]
		for _, d := range domains {
			rec, ok := st.Lookup(d)
			if !ok {
				log.Fatalf("no provenance record for %q in %s (%d records)", d, flag.Arg(0), len(st.Records))
			}
			records = append(records, rec)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, rec := range records {
			if err := enc.Encode(rec); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		for i, rec := range records {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(rec.Render())
		}
	}

	if *marks {
		fmt.Printf("\nscan marks (1-in-%d head sample, %d domains):\n", st.SampleEvery, len(st.Marks))
		for _, m := range st.Marks {
			verdict := "no-match"
			if m.Matched {
				verdict = "MATCH"
			}
			fmt.Printf("  %-40s %s\n", m.Domain, verdict)
		}
	}
}
