// Command squatgen generates candidate squatting domains for a target
// brand — the repository's equivalent of DNSTwist/URLCrazy, extended per
// the paper with a complete homograph table, wrongTLD and combo modules.
//
// Usage:
//
//	squatgen [-type homograph|bits|typo|combo|wrongTLD|all] facebook.com
package main

import (
	"flag"
	"fmt"
	"os"

	"squatphi/internal/punycode"
	"squatphi/internal/squat"
)

func main() {
	typeFlag := flag.String("type", "all", "squatting type to generate (homograph, bits, typo, combo, wrongTLD, all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: squatgen [-type TYPE] DOMAIN\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	brand := squat.NewBrand(flag.Arg(0))
	gen := squat.NewGenerator()

	var cands []squat.Candidate
	switch *typeFlag {
	case "homograph":
		cands = gen.Homographs(brand)
	case "bits":
		cands = gen.BitFlips(brand)
	case "typo":
		cands = gen.Typos(brand)
	case "combo":
		cands = gen.Combos(brand)
	case "wrongTLD":
		cands = gen.WrongTLDs(brand)
	case "all":
		cands = gen.Generate(brand)
	default:
		fmt.Fprintf(os.Stderr, "squatgen: unknown type %q\n", *typeFlag)
		os.Exit(2)
	}

	for _, c := range cands {
		display := c.Domain
		if punycode.IsACE(c.Domain) {
			display = fmt.Sprintf("%s (displayed: %s)", c.Domain, punycode.ToUnicode(c.Domain))
		}
		fmt.Printf("%-10s %s\n", c.Type, display)
	}
	fmt.Fprintf(os.Stderr, "%d candidates for %s\n", len(cands), brand.Domain())
}
