// Command loadbench load-tests the verdict-serving layer
// (internal/serve): it warms a coordinator from a generated snapshot
// scan, then drives a deterministic mixed stream of lookup and update
// requests from concurrent workers and records latency quantiles and
// throughput into BENCH_serve.json.
//
// The request schedule is pure simrand: worker w draws from its own
// split of the seed, so the domain sequence — hits, misses and
// streaming updates — is identical run to run and independent of
// scheduling. Latency is measured per operation into the serve.*
// histograms the daemon itself reports, so the benchmark reads the
// same instruments an operator would.
//
// Usage:
//
//	loadbench -ops 1000000 -records 120000 -out BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"io"
	"log"
	"reflect"
	"runtime"
	"sync"
	"time"

	"squatphi/internal/core"
	"squatphi/internal/dnsx"
	"squatphi/internal/fsx"
	"squatphi/internal/obs"
	"squatphi/internal/serve"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

// benchBrands mirrors scanbench's fixed brand set so the two artifacts
// describe the same synthetic haystack.
var benchBrands = []string{"paypal.com", "facebook.com", "google.com", "citibank.com", "amazon.com"}

type artifact struct {
	Kind       string  `json:"kind"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	Records    int     `json:"records"`
	Candidates int     `json:"candidates"`
	Ops        int     `json:"ops"`
	UpdateFrac float64 `json:"update_frac"`
	MissFrac   float64 `json:"miss_frac"`
	Entries    []entry `json:"entries"`
	// SweepIdenticalToCold records the post-bench invariant: the hot
	// shard sweep equals a cold serial scan of the mutated store.
	SweepIdenticalToCold bool `json:"sweep_identical_to_cold"`
}

type entry struct {
	Workers     int     `json:"workers"`
	ElapsedSecs float64 `json:"elapsed_secs"`
	QPS         float64 `json:"qps"`
	LookupP50US float64 `json:"lookup_p50_us"`
	LookupP99US float64 `json:"lookup_p99_us"`
	UpdateP50US float64 `json:"update_p50_us"`
	UpdateP99US float64 `json:"update_p99_us"`
	Lookups     int64   `json:"lookups"`
	Updates     int64   `json:"updates"`
	Degraded    int64   `json:"degraded"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadbench: ")
	records := flag.Int("records", 120000, "noise records in the generated snapshot")
	ops := flag.Int("ops", 1_000_000, "total requests per workers entry")
	updateFrac := flag.Float64("update-frac", 0.05, "fraction of requests that are streaming updates")
	missFrac := flag.Float64("miss-frac", 0.15, "fraction of lookups for domains not in the snapshot")
	shards := flag.Int("shards", 0, "store shard count (0 = dnsx default)")
	seed := flag.Uint64("seed", 1, "seed for snapshot generation and the request schedule")
	out := flag.String("out", "BENCH_serve.json", "write the JSON artifact here")
	flag.Parse()

	var brands []squat.Brand
	for _, b := range benchBrands {
		brands = append(brands, squat.NewBrand(b))
	}
	gen := squat.NewGenerator()
	var planted []string
	for _, b := range brands {
		for i, c := range gen.Generate(b) {
			if i%5 == 0 {
				planted = append(planted, c.Domain)
			}
		}
	}
	matcher := squat.NewMatcher(brands)

	ncpu := runtime.GOMAXPROCS(0)
	workerCounts := []int{1}
	for _, w := range []int{4, ncpu} {
		if w > workerCounts[len(workerCounts)-1] {
			workerCounts = append(workerCounts, w)
		}
	}

	art := artifact{
		Kind:       "bench_serve",
		GoMaxProcs: ncpu,
		Records:    *records,
		Ops:        *ops,
		UpdateFrac: *updateFrac,
		MissFrac:   *missFrac,
	}
	sweepOK := true

	for _, w := range workerCounts {
		// A fresh world per entry: each run mutates its store with
		// streamed updates, and per-entry registries keep quantiles
		// from bleeding across runs.
		store := dnsx.GenerateSnapshot(dnsx.SnapshotSpec{
			Planted: planted, NoiseRecords: *records, Seed: *seed, Shards: *shards,
		})
		cands := core.ScanStore(store, matcher, ncpu, nil)
		reg := obs.NewRegistry()
		coord := serve.New(serve.Config{Shards: store.NumShards(), Matcher: matcher, Metrics: reg})
		if err := coord.Warm(store, cands); err != nil {
			log.Fatal(err)
		}
		art.Shards = store.NumShards()
		art.Candidates = len(cands)
		domains := store.Domains()

		log.Printf("workers=%d: driving %d requests (%.0f%% updates, %.0f%% misses)...",
			w, *ops, *updateFrac*100, *missFrac*100)
		elapsed := drive(coord, domains, w, *ops, *updateFrac, *missFrac, *seed)

		snap := reg.Snapshot()
		lk := snap.Histograms["serve.lookup_us"]
		up := snap.Histograms["serve.update_us"]
		e := entry{
			Workers:     w,
			ElapsedSecs: elapsed.Seconds(),
			QPS:         float64(*ops) / elapsed.Seconds(),
			LookupP50US: lk.Quantile(0.5),
			LookupP99US: lk.Quantile(0.99),
			UpdateP50US: up.Quantile(0.5),
			UpdateP99US: up.Quantile(0.99),
			Lookups:     snap.Counters["serve.lookups"],
			Updates:     snap.Counters["serve.updates"],
			Degraded:    snap.Counters["core.degraded.serve"],
		}
		art.Entries = append(art.Entries, e)
		log.Printf("workers=%d: %.0f req/s, lookup p50 %.1fus p99 %.1fus",
			w, e.QPS, e.LookupP50US, e.LookupP99US)

		// The serving invariant, checked on every entry: after the dust
		// settles the hot sweep matches a cold serial scan.
		if !reflect.DeepEqual(coord.Candidates(), core.ScanStore(store, matcher, 1, nil)) {
			sweepOK = false
			log.Printf("workers=%d: WARNING: hot sweep diverged from cold scan", w)
		}
	}
	art.SweepIdenticalToCold = sweepOK

	if err := fsx.WriteFile(*out, func(wr io.Writer) error {
		enc := json.NewEncoder(wr)
		enc.SetIndent("", "  ")
		return enc.Encode(art)
	}); err != nil {
		log.Fatal(err)
	}
	log.Printf("artifact written to %s", *out)
	if !sweepOK {
		log.Fatal("sweep/cold-scan divergence; see warnings above")
	}
}

// drive fires ops requests at the coordinator from w workers and
// returns the wall time. Worker i's schedule comes from split i of the
// seed, so the request stream is deterministic at every worker count.
func drive(coord *serve.Coordinator, domains []string, w, ops int, updateFrac, missFrac float64, seed uint64) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < w; i++ {
		share := ops / w
		if i < ops%w {
			share++
		}
		wg.Add(1)
		go func(i, share int) {
			defer wg.Done()
			rng := simrand.New(seed).Split("loadbench").SplitN(uint64(i))
			for n := 0; n < share; n++ {
				switch {
				case rng.Float64() < updateFrac:
					coord.Apply(rng.Letters(9)+".com", [4]byte{10, byte(i), byte(n >> 8), byte(n)})
				case rng.Float64() < missFrac:
					coord.Lookup(rng.Letters(12) + ".net")
				default:
					coord.Lookup(domains[rng.Intn(len(domains))])
				}
			}
		}(i, share)
	}
	wg.Wait()
	return time.Since(start)
}
