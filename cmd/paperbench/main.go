// Command paperbench regenerates every table and figure of the paper's
// evaluation from a single shared pipeline run and prints the artifacts
// with paper-vs-measured shape notes (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	paperbench [-domains 8000] [-phish 600] [-seed 2018] [-only "Table 7"]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"squatphi/internal/core"
	"squatphi/internal/experiments"
	"squatphi/internal/obs"
	"squatphi/internal/report"
	"squatphi/internal/retry"
	"squatphi/internal/webworld"
)

// metricsArtifact is the JSON line carrying the pipeline's observability
// snapshot: per-stage wall times plus every registry metric, so BENCH
// outputs record where the run spent its time.
type metricsArtifact struct {
	Kind           string             `json:"kind"`
	Title          string             `json:"title"`
	StageTimingsMS map[string]float64 `json:"stage_timings_ms"`
	// SLO is the latency-quantile rollup (p50/p95/p99/max per histogram),
	// the per-stage latency-objective view of the run.
	SLO     []obs.SLOEntry `json:"slo"`
	Metrics obs.Snapshot   `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	domains := flag.Int("domains", 8000, "approximate squatting-domain population")
	phish := flag.Int("phish", 600, "non-squatting phishing population")
	seed := flag.Uint64("seed", 2018, "world seed")
	noise := flag.Int("dnsnoise", 30000, "background DNS records")
	trees := flag.Int("trees", 40, "random forest size")
	scanWorkers := flag.Int("scan-workers", 0, "DNS scan/generation parallelism (0 = all cores, 1 = serial)")
	scoreWorkers := flag.Int("score-workers", 0, "classifier scoring parallelism (0 = all cores, 1 = serial)")
	only := flag.String("only", "", "run a single experiment by id (e.g. \"Table 7\")")
	shots := flag.String("shots", "", "write case-study screenshot PNGs (Figure 14) to this directory")
	jsonOut := flag.String("json", "", "additionally write artifacts as JSON lines to this file")
	crawlRetries := flag.Int("crawl-retries", 0, "crawler retries per fetch (negative disables, 0 = default 1)")
	pol := retry.RegisterFlags(nil) // -retry-* and -breaker-*
	flag.Parse()

	env, err := experiments.NewEnv(core.Config{
		World:           webworld.Config{SquattingDomains: *domains, NonSquattingPhish: *phish, Seed: *seed},
		DNSNoiseRecords: *noise,
		ForestTrees:     *trees,
		ScanWorkers:     *scanWorkers,
		ScoreWorkers:    *scoreWorkers,
		CrawlRetries:    *crawlRetries,
		Retry:           *pol,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	env.ShotsDir = *shots

	var jsonFile *os.File
	if *jsonOut != "" {
		jsonFile, err = os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		defer jsonFile.Close()
	}

	failures := 0
	for _, d := range experiments.All() {
		if *only != "" && d.ID != *only {
			continue
		}
		start := time.Now()
		res, err := d.Run(env)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s (%s): %v\n", d.ID, d.Name, err)
			continue
		}
		fmt.Println(res.String())
		if jsonFile != nil {
			for _, tb := range res.Tables {
				if err := report.WriteJSON(jsonFile, tb); err != nil {
					log.Fatal(err)
				}
			}
			for _, sr := range res.Series {
				if err := report.WriteJSON(jsonFile, sr); err != nil {
					log.Fatal(err)
				}
			}
		}
		log.Printf("%s done in %s", d.ID, time.Since(start).Round(time.Millisecond))
	}
	snap := env.P.Obs.Snapshot()
	slo := snap.SLORollup("")
	if len(slo) > 0 {
		log.Printf("SLO rollup (histogram latency quantiles):")
		for _, e := range slo {
			log.Printf("  %-28s n=%-7d p50=%-10.3g p95=%-10.3g p99=%-10.3g max=%.3g",
				e.Name, e.Count, e.P50, e.P95, e.P99, e.Max)
		}
	}
	if jsonFile != nil {
		art := metricsArtifact{
			Kind:           "metrics",
			Title:          "pipeline observability snapshot",
			StageTimingsMS: map[string]float64{},
			SLO:            slo,
			Metrics:        snap,
		}
		for name, d := range env.P.StageTimings() {
			art.StageTimingsMS[name] = float64(d) / float64(time.Millisecond)
		}
		if err := report.WriteJSON(jsonFile, art); err != nil {
			log.Fatal(err)
		}
	}
	if failures > 0 {
		log.Fatalf("%d experiments failed", failures)
	}
}
