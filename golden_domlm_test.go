package squatphi

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"squatphi/internal/experiments"
)

const goldenDomLMPath = "testdata/golden_domlm.json"

// TestGoldenDomLM pins the generated-squat evaluation (experiments
// Table 14): per scenario, precision/recall of the five-type matcher
// alone versus matcher+domlm, plus the model-score AUC. The numbers are
// fully deterministic, so any drift means the model, the generator
// family, or the matcher integration changed semantics. Regenerate with:
// go test -run TestGoldenDomLM -update .
func TestGoldenDomLM(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario worlds are slow")
	}
	var results []experiments.DomLMResult
	for _, sc := range experiments.DefaultDomLMScenarios() {
		results = append(results, experiments.EvalDomLMScenario(sc))
	}

	// The acceptance bar holds regardless of the pinned bytes: attaching
	// the model must strictly improve recall at equal-or-better precision.
	for _, res := range results {
		if res.MatcherLM.Recall <= res.MatcherOnly.Recall {
			t.Errorf("%s: matcher+domlm recall %.4f does not improve on %.4f",
				res.Name, res.MatcherLM.Recall, res.MatcherOnly.Recall)
		}
		if res.MatcherLM.Precision < res.MatcherOnly.Precision {
			t.Errorf("%s: matcher+domlm precision %.4f below matcher-only %.4f",
				res.Name, res.MatcherLM.Precision, res.MatcherOnly.Precision)
		}
		if res.AUC < 0.95 {
			t.Errorf("%s: model-score AUC %.4f, want >= 0.95 (generated squats must rank far above noise)",
				res.Name, res.AUC)
		}
	}

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := append(buf, '\n')

	if *updateGolden {
		if err := os.WriteFile(goldenDomLMPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d scenarios)", goldenDomLMPath, len(results))
	}

	want, err := os.ReadFile(goldenDomLMPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("domlm evaluation diverged from %s:\n%s\n(run with -update to regenerate)",
			goldenDomLMPath, firstDiff(want, got))
	}
}
