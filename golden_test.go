package squatphi

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"squatphi/internal/core"
	"squatphi/internal/features"
	"squatphi/internal/obs/trace"
	"squatphi/internal/retry"
	"squatphi/internal/webworld"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_pipeline.json from the current pipeline output")

const (
	goldenPath     = "testdata/golden_pipeline.json"
	goldenProvPath = "testdata/golden_provenance.json"
)

// goldenReport is the stable projection of one full pipeline run that the
// golden file pins: the scanned candidates, the ground-truth split, the CV
// evaluation, and every flagged domain with its score and verdict.
type goldenReport struct {
	Candidates    []goldenCandidate `json:"candidates"`
	GroundTruth   goldenCounts      `json:"ground_truth"`
	AUC           float64           `json:"auc"`
	FPR           float64           `json:"fpr"`
	FNR           float64           `json:"fnr"`
	FlaggedWeb    []goldenFlag      `json:"flagged_web"`
	FlaggedMobile []goldenFlag      `json:"flagged_mobile"`
}

type goldenCounts struct {
	Phishing int `json:"phishing"`
	Benign   int `json:"benign"`
}

type goldenCandidate struct {
	Domain string `json:"domain"`
	Type   string `json:"type"`
	Brand  string `json:"brand"`
}

type goldenFlag struct {
	Domain    string  `json:"domain"`
	SquatType string  `json:"squat_type"`
	Brand     string  `json:"brand"`
	Score     float64 `json:"score"`
	Confirmed bool    `json:"confirmed"`
}

// goldenProvenance pins one flagged domain's verdict-provenance record
// (PR 6): the structured evidence plus its human-readable rendering,
// which must be byte-identical across serial, parallel, and delta runs.
type goldenProvenance struct {
	Domain   string        `json:"domain"`
	Record   *trace.Record `json:"record"`
	Rendered string        `json:"rendered"`
}

// goldenConfig is the tiny fixed world every variant runs against. Backoff
// is disabled so no wall-clock timing can reach the captures. DomLM is on,
// with generated squats planted and brand-noise hard negatives in the
// snapshot, so every variant proves the language-model score path is
// byte-identical across serial, parallel, and delta scans too.
func goldenConfig(scanWorkers int, incremental bool) core.Config {
	return core.Config{
		World:           webworld.Config{SquattingDomains: 400, NonSquattingPhish: 100, GeneratedSquats: 80, Seed: 11},
		DNSNoiseRecords: 1200,
		DomLM:           true,
		DNSBrandNoise:   200,
		ForestTrees:     10,
		ScanWorkers:     scanWorkers,
		ScoreWorkers:    1,
		Incremental:     incremental,
		Retry:           retry.Policy{BaseDelay: -1},
		Seed:            12,
	}
}

// runGoldenPipeline executes generate -> scan -> crawl -> features ->
// classify -> detect and projects the outcome, plus the provenance
// record of one flagged domain.
func runGoldenPipeline(t *testing.T, cfg core.Config) (goldenReport, goldenProvenance) {
	t.Helper()
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	cands := p.ScanDNS()
	gt, err := p.BuildGroundTruth(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())
	det, err := p.DetectInWild(ctx, clf, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Provenance golden: the first confirmed (fallback: first) flagged web
	// domain's evidence record, read back from the always-on store that
	// DetectInWild fills. Captured before any re-scan bumps the engine
	// epoch, so delta and full runs render identical cache provenance.
	var prov goldenProvenance
	if len(det.FlaggedWeb) > 0 {
		f := det.FlaggedWeb[0]
		for _, c := range det.FlaggedWeb {
			if c.Confirmed {
				f = c
				break
			}
		}
		rec, ok := p.Prov.Get(f.Domain)
		if !ok {
			t.Fatalf("flagged domain %s has no record in the provenance store", f.Domain)
		}
		prov = goldenProvenance{Domain: f.Domain, Record: rec, Rendered: rec.Render()}
	}

	if cfg.Incremental {
		// Re-scanning the unchanged snapshot must reuse every shard and
		// reproduce the candidate list exactly (the warm delta path).
		if again := p.RescanDNS(); !reflect.DeepEqual(again, cands) {
			t.Fatalf("delta re-scan diverged: %d vs %d candidates", len(again), len(cands))
		}
		st := p.DeltaEngine().LastStats()
		if st.ShardsRescanned != 0 || st.CacheMisses != 0 {
			t.Fatalf("re-scan of unchanged snapshot did real work: %+v", st)
		}
	}

	var rep goldenReport
	for _, c := range cands {
		rep.Candidates = append(rep.Candidates, goldenCandidate{
			Domain: c.Domain, Type: c.Type.String(), Brand: c.Brand.Domain(),
		})
	}
	rep.GroundTruth.Phishing, rep.GroundTruth.Benign = gt.Counts()
	rep.AUC = clf.Eval.AUC
	rep.FPR = clf.Eval.Confusion.FPR()
	rep.FNR = clf.Eval.Confusion.FNR()
	rep.FlaggedWeb = goldenFlags(det.FlaggedWeb)
	rep.FlaggedMobile = goldenFlags(det.FlaggedMobile)
	return rep, prov
}

func goldenFlags(fs []core.Flagged) []goldenFlag {
	var out []goldenFlag
	for _, f := range fs {
		out = append(out, goldenFlag{
			Domain: f.Domain, SquatType: f.SquatType.String(),
			Brand: f.Brand, Score: f.Score, Confirmed: f.Confirmed,
		})
	}
	return out
}

func marshalGolden(t *testing.T, rep goldenReport) []byte {
	t.Helper()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

func marshalProvenance(t *testing.T, prov goldenProvenance) []byte {
	t.Helper()
	buf, err := json.MarshalIndent(prov, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

// TestGoldenPipeline pins the end-to-end pipeline output against
// testdata/golden_pipeline.json and proves the serial, parallel, and
// incremental scan paths are byte-identical at the report level. Regenerate
// with: go test -run TestGoldenPipeline -update .
func TestGoldenPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}

	base, baseProv := runGoldenPipeline(t, goldenConfig(1, false))
	got := marshalGolden(t, base)
	gotProv := marshalProvenance(t, baseProv)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenProvPath, gotProv, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d candidates, %d web + %d mobile flags) and %s (%s)",
			goldenPath, len(base.Candidates), len(base.FlaggedWeb), len(base.FlaggedMobile),
			goldenProvPath, baseProv.Domain)
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pipeline output diverged from %s:\n%s\n(run with -update to regenerate)",
			goldenPath, firstDiff(want, got))
	}
	wantProv, err := os.ReadFile(goldenProvPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(gotProv, wantProv) {
		t.Fatalf("provenance diverged from %s:\n%s\n(run with -update to regenerate)",
			goldenProvPath, firstDiff(wantProv, gotProv))
	}

	// Every other scan configuration must reproduce the same report and
	// the same provenance record, byte for byte.
	for _, v := range []struct {
		workers     int
		incremental bool
	}{{4, false}, {32, false}, {1, true}, {4, true}, {32, true}} {
		v := v
		name := fmt.Sprintf("workers=%d,delta=%v", v.workers, v.incremental)
		t.Run(name, func(t *testing.T) {
			rep, prov := runGoldenPipeline(t, goldenConfig(v.workers, v.incremental))
			if out := marshalGolden(t, rep); !bytes.Equal(out, want) {
				t.Fatalf("%s diverged from golden:\n%s", name, firstDiff(want, out))
			}
			if out := marshalProvenance(t, prov); !bytes.Equal(out, wantProv) {
				t.Fatalf("%s provenance diverged from golden:\n%s", name, firstDiff(wantProv, out))
			}
		})
	}
}

// TestGoldenProvenance is the focused provenance-golden check (`make
// provenance-check`): one serial run must reproduce
// testdata/golden_provenance.json byte for byte.
func TestGoldenProvenance(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	_, prov := runGoldenPipeline(t, goldenConfig(1, false))
	got := marshalProvenance(t, prov)
	if *updateGolden {
		if err := os.WriteFile(goldenProvPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%s)", goldenProvPath, prov.Domain)
		return
	}
	want, err := os.ReadFile(goldenProvPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("provenance diverged from %s:\n%s\n(run with -update to regenerate)",
			goldenProvPath, firstDiff(want, got))
	}
}

// firstDiff renders the first differing line between two JSON blobs.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}
