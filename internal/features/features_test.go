package features

import (
	"strings"
	"testing"

	"squatphi/internal/render"
)

const phishHTML = `<html><head><title>Log in to your account</title></head><body>
<img src="/logo.png" alt="">
<h1>Your account has been limited</h1>
<p>Please confirm your password to restore full access</p>
<form action="/submit" method="post">
<input type="email" name="user" placeholder="Email or phone">
<input type="password" name="pass" placeholder="Password">
<input type="submit" value="Log In">
</form></body></html>`

const benignHTML = `<html><head><title>Daily gardening tips</title></head><body>
<h1>Your source for gardening ideas</h1>
<p>Read the latest articles curated by our editors every morning</p>
<a href="/archive">Browse the archive</a>
</body></html>`

func sampleOf(html, logoText string) Sample {
	assets := map[string]string{}
	if logoText != "" {
		assets["/logo.png"] = logoText
	}
	return Sample{HTML: html, Shot: render.Screenshot(html, render.Options{Assets: assets})}
}

func trainExtractor(t testing.TB, opts Options) *Extractor {
	t.Helper()
	corpus := []Sample{sampleOf(phishHTML, "Paypal"), sampleOf(benignHTML, "")}
	return NewExtractor(opts, corpus, []string{"paypal", "facebook"}, 1)
}

func TestLexicalTokens(t *testing.T) {
	e := trainExtractor(t, Options{UseLexical: true})
	toks := strings.Join(e.Tokens(sampleOf(phishHTML, "")), " ")
	for _, want := range []string{"limited", "password", "restore", "access"} {
		if !strings.Contains(toks, want) {
			t.Errorf("lexical tokens missing %q: %v", want, toks)
		}
	}
}

func TestFormTokens(t *testing.T) {
	e := trainExtractor(t, Options{UseForms: true})
	toks := strings.Join(e.Tokens(sampleOf(phishHTML, "")), " ")
	for _, want := range []string{"password", "email", "phone", "log"} {
		if !strings.Contains(toks, want) {
			t.Errorf("form tokens missing %q: %v", want, toks)
		}
	}
}

func TestOCRTokensSeeImageOnlyBrand(t *testing.T) {
	// The brand appears only in the logo pixels; OCR features must carry
	// it while lexical features cannot.
	e := trainExtractor(t, Options{UseOCR: true, Spellcheck: true})
	s := sampleOf(phishHTML, "Paypal")
	toks := strings.Join(e.Tokens(s), " ")
	if !strings.Contains(toks, "paypal") {
		t.Errorf("OCR tokens missing image-only brand: %v", toks)
	}
	lex := trainExtractor(t, Options{UseLexical: true, UseForms: true})
	lexToks := strings.Join(lex.Tokens(s), " ")
	if strings.Contains(lexToks, "paypal") {
		t.Errorf("lexical tokens unexpectedly contain the brand: %v", lexToks)
	}
}

func TestExtras(t *testing.T) {
	e := trainExtractor(t, AllFeatures())
	s := sampleOf(phishHTML, "")
	extras := e.Extras(s, e.Tokens(s))
	if len(extras) != NumExtras {
		t.Fatalf("extras = %d values", len(extras))
	}
	if extras[0] != 1 { // forms
		t.Errorf("form count = %f", extras[0])
	}
	if extras[1] != 3 { // inputs
		t.Errorf("input count = %f", extras[1])
	}
	if extras[2] != 1 { // has password
		t.Errorf("password flag = %f", extras[2])
	}
	b := sampleOf(benignHTML, "")
	benign := e.Extras(b, e.Tokens(b))
	if benign[0] != 0 || benign[2] != 0 {
		t.Errorf("benign extras = %v", benign)
	}
}

func TestBrandTokenExtra(t *testing.T) {
	e := trainExtractor(t, AllFeatures())
	// The phishing sample shows "Paypal" only in the logo image: the
	// brand-token extra (last slot) must fire via the OCR path.
	withLogo := sampleOf(phishHTML, "Paypal")
	extras := e.Extras(withLogo, e.Tokens(withLogo))
	if extras[NumExtras-1] < 1 {
		t.Errorf("brand-token count = %f, want >= 1 (brand in logo pixels)", extras[NumExtras-1])
	}
	noBrand := sampleOf(benignHTML, "")
	extras = e.Extras(noBrand, e.Tokens(noBrand))
	if extras[NumExtras-1] != 0 {
		t.Errorf("benign brand-token count = %f, want 0", extras[NumExtras-1])
	}
}

func TestVectorShapeAndDeterminism(t *testing.T) {
	e := trainExtractor(t, AllFeatures())
	s := sampleOf(phishHTML, "Paypal")
	v1 := e.Vector(s)
	v2 := e.Vector(s)
	if len(v1) != e.Dim() {
		t.Fatalf("vector dim %d != %d", len(v1), e.Dim())
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("vectors not deterministic")
		}
	}
}

func TestVectorsSeparatePhishFromBenign(t *testing.T) {
	e := trainExtractor(t, AllFeatures())
	vp := e.Vector(sampleOf(phishHTML, "Paypal"))
	vb := e.Vector(sampleOf(benignHTML, ""))
	// The password-keyword dimension must differ.
	idx, ok := e.Vocab.Index("password")
	if !ok {
		t.Fatal("password not in vocabulary")
	}
	if vp[idx] <= vb[idx] {
		t.Errorf("password frequency phish=%f benign=%f", vp[idx], vb[idx])
	}
}

func TestBrandNamesAlwaysInVocabulary(t *testing.T) {
	e := trainExtractor(t, AllFeatures())
	if _, ok := e.Vocab.Index("facebook"); !ok {
		t.Fatal("brand name missing from vocabulary")
	}
}

func TestNilShotSafe(t *testing.T) {
	e := trainExtractor(t, AllFeatures())
	v := e.Vector(Sample{HTML: phishHTML})
	if len(v) != e.Dim() {
		t.Fatal("nil-shot vector wrong dim")
	}
}

func TestDictionaryCopy(t *testing.T) {
	d := Dictionary()
	d[0] = "mutated"
	if Dictionary()[0] == "mutated" {
		t.Fatal("Dictionary returns shared slice")
	}
}

func BenchmarkVector(b *testing.B) {
	corpus := []Sample{sampleOf(phishHTML, "Paypal"), sampleOf(benignHTML, "")}
	e := NewExtractor(AllFeatures(), corpus, []string{"paypal"}, 1)
	s := sampleOf(phishHTML, "Paypal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Vector(s)
	}
}
