// Package features implements the classifier's feature engineering
// (paper §5.1-5.2): image-based OCR features extracted from page
// screenshots, text-based lexical features from the HTML tags (h*, p, a,
// title), and form-based features (type/name/submit/placeholder attributes
// plus the form count), embedded as keyword-frequency vectors.
//
// All features are brand-independent: the classifier learns what "a
// phishing page" looks like (login prompts, credential forms, urgency
// copy), not what any specific brand's page looks like — the property that
// lets one model scan squatting domains of 702 different brands.
package features

import (
	"strings"

	"squatphi/internal/htmlx"
	"squatphi/internal/ocr"
	"squatphi/internal/render"
	"squatphi/internal/textproc"
)

// Options toggles feature families, for the paper-motivated ablations.
type Options struct {
	// UseOCR enables image-based OCR features (the paper's key novelty).
	UseOCR bool
	// UseLexical enables HTML text features.
	UseLexical bool
	// UseForms enables form-attribute features.
	UseForms bool
	// Spellcheck corrects OCR output against the dictionary.
	Spellcheck bool
	// UseDomLM appends the domain's brand-language-model score
	// (Sample.LMScore) as one extra numeric feature. Off by default so the
	// paper's original 987-dimension embedding — and every golden pinned to
	// it — is unchanged unless the pipeline runs with Config.DomLM.
	UseDomLM bool
}

// AllFeatures enables everything (the paper's full classifier).
func AllFeatures() Options {
	return Options{UseOCR: true, UseLexical: true, UseForms: true, Spellcheck: true}
}

// Extractor turns captured pages into feature vectors. Build it once from
// a training corpus; it is immutable and safe for concurrent use afterwards.
type Extractor struct {
	Opts  Options
	Vocab *textproc.Vocabulary

	engine   ocr.Engine
	speller  *ocr.Spellchecker
	brandSet map[string]bool
}

// dictionary is the spell-check lexicon: high-frequency phishing-page
// vocabulary (the paper corrects OCR output with a spell checker before
// embedding).
var dictionary = []string{
	"password", "email", "login", "log", "sign", "account", "username",
	"phone", "verify", "secure", "security", "submit", "continue",
	"welcome", "enter", "confirm", "update", "credit", "card", "payment",
	"bank", "transfer", "money", "prize", "gift", "claim", "support",
	"help", "service", "billing", "invoice", "payroll", "freight",
	"search", "download", "install", "click", "free", "offer", "limited",
	"access", "restore", "suspended", "unusual", "activity", "customer",
}

// Dictionary returns a copy of the spell-check lexicon.
func Dictionary() []string { return append([]string(nil), dictionary...) }

// NumExtras is the number of numeric features appended to the keyword
// vector: form count, input count, password-input flag, image count,
// script count, link count, and monitored-brand-token count.
//
// The brand-token count is brand-independent in the sense the paper needs:
// it fires when the page shows *any* monitored brand's name (in HTML text
// or, via OCR, in pixels), capturing the impersonation half of "brand
// keywords + credential form" without tying the model to one brand.
const NumExtras = 7

// Sample is one page ready for feature extraction.
type Sample struct {
	HTML string
	Shot *render.Raster
	// LMScore is the brand-language-model score of the page's domain in
	// [0, 1] (core.Pipeline.LMScore). Only embedded when Options.UseDomLM.
	LMScore float64
}

// NewExtractor builds an extractor whose vocabulary merges the frequent
// keywords of the training corpus with the given brand names (the paper's
// 987-dimension embedding).
func NewExtractor(opts Options, corpus []Sample, brandNames []string, minCount int) *Extractor {
	e := &Extractor{Opts: opts, brandSet: make(map[string]bool, len(brandNames))}
	for _, b := range brandNames {
		e.brandSet[strings.ToLower(b)] = true
	}
	if opts.Spellcheck {
		e.speller = ocr.NewSpellchecker(dictionary)
	}
	var tokenLists [][]string
	for _, s := range corpus {
		tokenLists = append(tokenLists, e.Tokens(s))
	}
	if minCount <= 0 {
		minCount = 3
	}
	e.Vocab = textproc.BuildVocabulary(tokenLists, minCount, brandNames)
	return e
}

// Tokens extracts the keyword stream of one page under the configured
// feature families.
func (e *Extractor) Tokens(s Sample) []string {
	var toks []string
	page := htmlx.Extract(s.HTML)

	if e.Opts.UseOCR && s.Shot != nil {
		words := e.engine.RecognizeWords(s.Shot)
		if e.speller != nil {
			words = e.speller.CorrectAll(words)
		}
		for _, w := range words {
			for _, t := range textproc.Tokenize(w) {
				toks = append(toks, t)
			}
		}
	}
	if e.Opts.UseLexical {
		var sb strings.Builder
		sb.WriteString(page.Title)
		for _, h := range page.Headings {
			sb.WriteByte(' ')
			sb.WriteString(h)
		}
		for _, p := range page.Paragraphs {
			sb.WriteByte(' ')
			sb.WriteString(p)
		}
		for _, a := range page.LinkTexts {
			sb.WriteByte(' ')
			sb.WriteString(a)
		}
		toks = append(toks, textproc.Tokenize(sb.String())...)
	}
	if e.Opts.UseForms {
		for _, kw := range page.FormKeywords() {
			toks = append(toks, textproc.Tokenize(kw)...)
		}
	}
	return toks
}

// Extras computes the numeric features of one page. tokens is the keyword
// stream of the page (brand-token counting spans both HTML and OCR text).
func (e *Extractor) Extras(s Sample, tokens []string) []float64 {
	page := htmlx.Extract(s.HTML)
	inputs := 0
	for _, f := range page.Forms {
		inputs += len(f.Inputs)
	}
	hasPw := 0.0
	if page.HasPasswordInput() {
		hasPw = 1
	}
	brandTokens := 0
	for _, t := range tokens {
		if e.brandSet[t] {
			brandTokens++
		}
	}
	extras := []float64{
		float64(len(page.Forms)),
		float64(inputs),
		hasPw,
		float64(len(page.Images)),
		float64(len(page.Scripts) + len(page.ScriptSrcs)),
		float64(len(page.LinkHrefs)),
		float64(brandTokens),
	}
	if e.Opts.UseDomLM {
		extras = append(extras, s.LMScore)
	}
	return extras
}

// Vector embeds one page as a feature vector (keyword frequencies plus
// extras). The extractor must have been built with NewExtractor.
func (e *Extractor) Vector(s Sample) []float64 {
	tokens := e.Tokens(s)
	return e.Vocab.Embed(tokens, e.Extras(s, tokens))
}

// Dim returns the feature-vector dimensionality.
func (e *Extractor) Dim() int {
	d := e.Vocab.Size() + NumExtras
	if e.Opts.UseDomLM {
		d++
	}
	return d
}
