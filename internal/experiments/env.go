// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver regenerates its artifact from the
// pipeline and returns it as formatted tables/series plus shape notes
// comparing against the paper's reported values (see EXPERIMENTS.md).
//
// Drivers share an Env whose expensive pipeline stages (DNS scan, crawl,
// ground truth, classifier, detection) are computed lazily and cached, so
// cmd/paperbench can run all experiments with a single world, crawl and
// training pass.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"squatphi/internal/core"
	"squatphi/internal/crawler"
	"squatphi/internal/features"
	"squatphi/internal/ml"
	"squatphi/internal/report"
	"squatphi/internal/webworld"
)

// Result is one regenerated experiment artifact.
type Result struct {
	// ID is the paper's artifact id, e.g. "Table 7" or "Figure 2".
	ID string
	// Name summarises what the artifact shows.
	Name   string
	Tables []*report.Table
	Series []*report.Series
	Notes  []string // paper-vs-measured shape observations
}

// Note appends a formatted shape note.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full artifact.
func (r *Result) String() string {
	out := fmt.Sprintf("### %s — %s\n", r.ID, r.Name)
	for _, t := range r.Tables {
		out += t.String()
	}
	for _, s := range r.Series {
		out += s.String()
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Env holds the lazily-computed pipeline stages shared by all drivers.
type Env struct {
	P   *core.Pipeline
	Ctx context.Context

	// ShotsDir, when non-empty, receives case-study screenshot PNGs
	// (Figure 14). Created on demand.
	ShotsDir string

	mu        sync.Mutex
	gt        *core.GroundTruth
	clf       *core.Classifier
	modelEval map[string]ml.Evaluation
	det       *core.Detection
	crawl0    []crawler.Result
}

// NewEnv builds a pipeline for the experiments.
func NewEnv(cfg core.Config) (*Env, error) {
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Env{P: p, Ctx: context.Background()}, nil
}

// Close releases the pipeline.
func (e *Env) Close() error { return e.P.Close() }

// GroundTruth lazily builds the training corpus.
func (e *Env) GroundTruth() (*core.GroundTruth, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gt == nil {
		gt, err := e.P.BuildGroundTruth(e.Ctx, 600)
		if err != nil {
			return nil, err
		}
		e.gt = gt
	}
	return e.gt, nil
}

// Classifier lazily trains the production random forest.
func (e *Env) Classifier() (*core.Classifier, error) {
	gt, err := e.GroundTruth()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.clf == nil {
		e.clf = e.P.TrainClassifier(gt, features.AllFeatures())
	}
	return e.clf, nil
}

// ModelEvals lazily cross-validates all three model families.
func (e *Env) ModelEvals() (map[string]ml.Evaluation, error) {
	gt, err := e.GroundTruth()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.modelEval == nil {
		e.modelEval = e.P.EvaluateModels(gt, features.AllFeatures())
	}
	return e.modelEval, nil
}

// Crawl0 lazily crawls all candidates at the first snapshot.
func (e *Env) Crawl0() ([]crawler.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crawl0 == nil {
		res, err := e.P.Crawl(e.Ctx, 0)
		if err != nil {
			return nil, err
		}
		e.crawl0 = res
	}
	return e.crawl0, nil
}

// Detection lazily runs the in-the-wild scan.
func (e *Env) Detection() (*core.Detection, error) {
	clf, err := e.Classifier()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.det == nil {
		det, err := e.P.DetectInWild(e.Ctx, clf, 0)
		if err != nil {
			return nil, err
		}
		e.det = det
	}
	return e.det, nil
}

// ConfirmedDomains returns the confirmed squatting phishing domains
// (union of profiles), sorted.
func (e *Env) ConfirmedDomains() ([]string, error) {
	det, err := e.Detection()
	if err != nil {
		return nil, err
	}
	set := det.ConfirmedUnion()
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

// ConfirmedSites resolves the confirmed domains to their ground truth.
func (e *Env) ConfirmedSites() ([]*webworld.Site, error) {
	domains, err := e.ConfirmedDomains()
	if err != nil {
		return nil, err
	}
	var out []*webworld.Site
	for _, d := range domains {
		if s, ok := e.P.World.Site(d); ok {
			out = append(out, s)
		}
	}
	return out, nil
}
