package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"squatphi/internal/core"
	"squatphi/internal/crawler"
	"squatphi/internal/geo"
	"squatphi/internal/render"
	"squatphi/internal/report"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
	"squatphi/internal/whois"
)

// writeShot saves one case-study screenshot under dir.
func writeShot(dir, domain string, shot *render.Raster) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.NewReplacer("/", "_", ".", "_").Replace(domain) + ".png"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return shot.WritePNG(f)
}

// ExpTable8 regenerates Table 8: flagged vs manually-confirmed squatting
// phishing pages, per profile and union.
func ExpTable8(e *Env) (*Result, error) {
	r := &Result{ID: "Table 8", Name: "Detected and confirmed squatting phishing pages"}
	det, err := e.Detection()
	if err != nil {
		return nil, err
	}
	squatTotal := len(e.P.ScanDNS())
	row := func(name string, flagged []core.Flagged) (int, int) {
		confirmed := 0
		brands := map[string]bool{}
		for _, f := range flagged {
			if f.Confirmed {
				confirmed++
				brands[f.Brand] = true
			}
		}
		return confirmed, len(brands)
	}
	webC, webB := row("Web", det.FlaggedWeb)
	mobC, mobB := row("Mobile", det.FlaggedMobile)
	union := det.ConfirmedUnion()
	unionBrands := map[string]bool{}
	for _, f := range append(det.FlaggedWeb, det.FlaggedMobile...) {
		if f.Confirmed {
			unionBrands[f.Brand] = true
		}
	}
	tb := report.NewTable("Detection in the wild", "Type", "Squatting Domains", "Classified as Phishing", "Manually Confirmed", "Related Brands")
	tb.AddRow("Web", squatTotal, len(det.FlaggedWeb), pct(webC, len(det.FlaggedWeb)), webB)
	tb.AddRow("Mobile", squatTotal, len(det.FlaggedMobile), pct(mobC, len(det.FlaggedMobile)), mobB)
	totalFlagged := len(det.FlaggedWeb) + len(det.FlaggedMobile)
	tb.AddRow("Union", squatTotal, totalFlagged, pct(len(union), totalFlagged), len(unionBrands))
	r.Tables = append(r.Tables, tb)
	if squatTotal > 0 {
		r.Note("phishing prevalence %.2f%% of squatting domains (paper: ~0.2%%)", float64(len(union))/float64(squatTotal)*100)
	}
	if totalFlagged > 0 {
		confirmRate := float64(webC+mobC) / float64(totalFlagged)
		r.Note("confirmation rate %.0f%% (paper: ~70%% — survey forms and brand plugins cause FPs)", confirmRate*100)
	}
	return r, nil
}

// confirmedByBrand tallies confirmed phishing pages per brand for one or
// both profiles.
func confirmedByBrand(flagged []core.Flagged) map[string]int {
	out := map[string]int{}
	for _, f := range flagged {
		if f.Confirmed {
			out[f.Brand]++
		}
	}
	return out
}

// ExpTable9 regenerates Table 9: per-brand predicted vs verified counts
// for the paper's 15 example brands.
func ExpTable9(e *Env) (*Result, error) {
	r := &Result{ID: "Table 9", Name: "Example brands: predicted vs verified phishing pages"}
	det, err := e.Detection()
	if err != nil {
		return nil, err
	}
	squatByBrand := map[string]int{}
	for _, c := range e.P.ScanDNS() {
		squatByBrand[c.Brand.Name]++
	}
	predWeb := map[string]int{}
	predMob := map[string]int{}
	for _, f := range det.FlaggedWeb {
		predWeb[f.Brand]++
	}
	for _, f := range det.FlaggedMobile {
		predMob[f.Brand]++
	}
	verWeb := confirmedByBrand(det.FlaggedWeb)
	verMob := confirmedByBrand(det.FlaggedMobile)

	paperBrands := []string{"google", "facebook", "apple", "bitcoin", "uber", "youtube", "paypal", "citi", "ebay", "microsoft", "twitter", "dropbox", "github", "adp", "santander"}
	tb := report.NewTable("Example brands", "Brand", "Squatting Domains", "Pred Web", "Pred Mobile", "Verified Web", "Verified Mobile")
	for _, b := range paperBrands {
		if predWeb[b]+predMob[b] == 0 && squatByBrand[b] == 0 {
			continue
		}
		tb.AddRow(b, squatByBrand[b], predWeb[b], predMob[b], verWeb[b], verMob[b])
	}
	r.Tables = append(r.Tables, tb)
	r.Note("paper Table 9: Google leads with 112 web / 97 mobile predictions")
	return r, nil
}

// ExpFigure11 regenerates Figure 11: CDF of verified phishing domains per
// brand.
func ExpFigure11(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 11", Name: "CDF of verified phishing domains per brand"}
	sites, err := e.ConfirmedSites()
	if err != nil {
		return nil, err
	}
	perBrand := map[string]int{}
	for _, s := range sites {
		perBrand[s.Brand.Name]++
	}
	var counts []int
	for _, c := range perBrand {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	s := report.NewSeries("Verified phishing domains per brand", "brand rank", "# domains")
	for i, c := range counts {
		if i >= 10 {
			break
		}
		s.Add(fmt.Sprintf("brand-%d", i+1), float64(c))
	}
	r.Series = append(r.Series, s)
	few := 0
	for _, c := range counts {
		if c < 10 {
			few++
		}
	}
	if len(counts) > 0 {
		r.Note("%.0f%% of brands have <10 phishing domains (paper: the vast majority)", float64(few)/float64(len(counts))*100)
	}
	return r, nil
}

// ExpFigure12 regenerates Figure 12: squatting-type distribution of the
// confirmed phishing domains, per profile.
func ExpFigure12(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 12", Name: "Squatting types of confirmed phishing domains"}
	det, err := e.Detection()
	if err != nil {
		return nil, err
	}
	count := func(flagged []core.Flagged) map[squat.Type]int {
		out := map[squat.Type]int{}
		for _, f := range flagged {
			if f.Confirmed {
				out[f.SquatType]++
			}
		}
		return out
	}
	web, mob := count(det.FlaggedWeb), count(det.FlaggedMobile)
	for name, m := range map[string]map[squat.Type]int{"web": web, "mobile": mob} {
		s := report.NewSeries("Confirmed phishing by squatting type ("+name+")", "type", "# domains")
		for _, t := range squat.AllTypes {
			s.Add(t.String(), float64(m[t]))
		}
		r.Series = append(r.Series, s)
	}
	comboDominates := web[squat.Combo] >= web[squat.Typo] && web[squat.Combo] >= web[squat.Bits]
	r.Note("combo squatting hosts the most phishing: %v (paper: combo largest, all five types present)", comboDominates)
	return r, nil
}

// ExpFigure13 regenerates Figure 13: the top brands targeted by confirmed
// squatting phishing.
func ExpFigure13(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 13", Name: "Top brands targeted by squatting phishing"}
	det, err := e.Detection()
	if err != nil {
		return nil, err
	}
	perBrand := map[string]int{}
	for _, f := range append(det.FlaggedWeb, det.FlaggedMobile...) {
		if f.Confirmed {
			perBrand[f.Brand]++
		}
	}
	type bc struct {
		b string
		c int
	}
	var list []bc
	for b, c := range perBrand {
		list = append(list, bc{b, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].b < list[j].b
	})
	s := report.NewSeries("Verified phishing pages per brand", "brand", "# pages")
	for i, e := range list {
		if i >= 15 {
			break
		}
		s.Add(e.b, float64(e.c))
	}
	r.Series = append(r.Series, s)
	if len(list) > 0 {
		r.Note("most-targeted brand: %s with %d pages (paper: google, 194 pages, far ahead)", list[0].b, list[0].c)
	}
	return r, nil
}

// ExpTable10 regenerates Table 10: example confirmed phishing domains per
// brand with their squatting types.
func ExpTable10(e *Env) (*Result, error) {
	r := &Result{ID: "Table 10", Name: "Example squatting phishing domains"}
	sites, err := e.ConfirmedSites()
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Confirmed examples", "Brand", "Domain", "Squatting Type", "Scam")
	perBrand := map[string]int{}
	for _, s := range sites {
		if perBrand[s.Brand.Name] >= 2 {
			continue
		}
		perBrand[s.Brand.Name]++
		tb.AddRow(s.Brand.Name, s.Domain, s.SquatType.String(), s.Scam.String())
		if len(tb.Rows) >= 20 {
			break
		}
	}
	r.Tables = append(r.Tables, tb)
	r.Note("paper Table 10: goog1e.nl (homograph), facecook.mobi (bits), mobile-adp.com (combo), ...")
	return r, nil
}

// ExpFigure14 regenerates Figure 14: case studies — renders the confirmed
// pages and tallies the scam flavours behind them.
func ExpFigure14(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 14", Name: "Case studies: scam flavours of squatting phishing"}
	sites, err := e.ConfirmedSites()
	if err != nil {
		return nil, err
	}
	scams := map[webworld.Scam]int{}
	rendered := 0
	for _, s := range sites {
		scams[s.Scam]++
		mobile := s.Cloak == webworld.CloakMobileOnly
		page, ok := e.P.World.PageFor(s, 0, mobile)
		if !ok {
			continue
		}
		shot := render.Screenshot(page.HTML, render.Options{Assets: page.Assets})
		rendered++
		if e.ShotsDir != "" && rendered <= 12 {
			if err := writeShot(e.ShotsDir, s.Domain, shot); err != nil {
				r.Note("screenshot export failed for %s: %v", s.Domain, err)
			}
		}
	}
	sr := report.NewSeries("Scam flavours among confirmed phishing", "scam", "# domains")
	for s := webworld.ScamLogin; s <= webworld.ScamPayment; s++ {
		sr.Add(s.String(), float64(scams[s]))
	}
	r.Series = append(r.Series, sr)
	r.Note("%d case-study pages rendered; paper's cases: fake search (goofle.com.ua), freight scam (go-uberfreight.com), payroll scam (mobile-adp.com), tech support (live-microsoftsupport.com), payment (securemail-citizenslc.com)", rendered)
	return r, nil
}

// ExpFigure15 regenerates Figure 15: IP geolocation of confirmed phishing.
func ExpFigure15(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 15", Name: "Geolocation of squatting phishing hosts"}
	sites, err := e.ConfirmedSites()
	if err != nil {
		return nil, err
	}
	var ips [][4]byte
	for _, s := range sites {
		ips = append(ips, s.IP)
	}
	hist := geo.Histogram(ips)
	type cc struct {
		c string
		n int
	}
	var list []cc
	for c, n := range hist {
		list = append(list, cc{c, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].c < list[j].c
	})
	s := report.NewSeries("Phishing hosts by country", "country", "# hosts")
	for i, e := range list {
		if i >= 10 {
			break
		}
		s.Add(e.c, float64(e.n))
	}
	r.Series = append(r.Series, s)
	if len(list) > 0 {
		r.Note("top country %s (paper: US 494, then DE 106); %d countries total (paper: 53)", list[0].c, len(hist))
	}
	return r, nil
}

// ExpFigure16 regenerates Figure 16: registration years of confirmed
// phishing domains, fetched over the RFC 3912 whois protocol from the
// world's registry server.
func ExpFigure16(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 16", Name: "Registration time of squatting phishing domains"}
	sites, err := e.ConfirmedSites()
	if err != nil {
		return nil, err
	}
	srv, err := whois.NewServer(e.P.World)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	// Lookups go through the deadline-bounded whois client reporting to
	// the pipeline registry; registries that fail after retries degrade
	// the artifact (core.degraded.whois) instead of silently shrinking it.
	client := &whois.Client{Metrics: e.P.Obs}
	failed := 0
	years := map[int]int{}
	registrars := map[string]int{}
	withRegistrar := 0
	for _, s := range sites {
		rec, err := client.Lookup(e.Ctx, srv.Addr(), s.Domain)
		if err != nil {
			if !errors.Is(err, whois.ErrNoMatch) {
				failed++
			}
			continue
		}
		years[rec.Created]++
		if rec.Registrar != "" {
			withRegistrar++
			registrars[rec.Registrar]++
		}
	}
	sr := report.NewSeries("Registrations per year", "year", "# domains")
	for y := 2005; y <= 2018; y++ {
		if years[y] > 0 {
			sr.Add(fmt.Sprintf("%d", y), float64(years[y]))
		}
	}
	r.Series = append(r.Series, sr)
	recent, total := 0, 0
	for y, n := range years {
		total += n
		if y >= 2014 {
			recent += n
		}
	}
	if total > 0 {
		r.Note("registered within recent 4 years: %.0f%% (paper: most)", float64(recent)/float64(total)*100)
	}
	topReg, topN := "", 0
	for reg, n := range registrars {
		if n > topN || n == topN && reg < topReg {
			topReg, topN = reg, n
		}
	}
	r.Note("registrar data for %d/%d domains (paper: 738/1175); top registrar %s (paper: godaddy.com)", withRegistrar, total, topReg)
	if failed > 0 {
		e.P.Degraded("whois", failed, len(sites))
		r.Note("degraded: %d/%d whois lookups failed after retries (partial artifact)", failed, len(sites))
	}
	return r, nil
}

// ExpFigure17 regenerates Figure 17: live phishing pages per snapshot.
func ExpFigure17(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 17", Name: "Liveness of confirmed phishing over the month"}
	clf, err := e.Classifier()
	if err != nil {
		return nil, err
	}
	confirmed, err := e.ConfirmedDomains()
	if err != nil {
		return nil, err
	}
	web, mobile, err := e.P.MonitorLiveness(e.Ctx, clf, confirmed)
	if err != nil {
		return nil, err
	}
	for name, series := range map[string][]int{"web": web, "mobile": mobile} {
		s := report.NewSeries("Live phishing pages ("+name+")", "snapshot", "# live")
		for i, c := range series {
			s.Add(crawler.SnapshotDates[i], float64(c))
		}
		r.Series = append(r.Series, s)
	}
	if len(confirmed) > 0 && web[0] > 0 {
		frac := float64(web[len(web)-1]) / float64(web[0])
		r.Note("%.0f%% of web phishing still live after the month (paper: ~80%%)", frac*100)
	}
	return r, nil
}

// ExpTable11 regenerates Table 11: evasion adoption, squatting vs
// non-squatting phishing.
func ExpTable11(e *Env) (*Result, error) {
	r := &Result{ID: "Table 11", Name: "Evasion: squatting vs non-squatting phishing"}
	confirmed, err := e.ConfirmedDomains()
	if err != nil {
		return nil, err
	}
	sqStats, err := e.P.EvasionStatsFor(e.Ctx, confirmed, 0)
	if err != nil {
		return nil, err
	}
	var nsDomains []string
	for _, d := range e.P.World.NonSquattingPhish {
		if s, ok := e.P.World.Site(d); ok && s.IsPhishingAt(0) {
			nsDomains = append(nsDomains, d)
		}
	}
	nsStats, err := e.P.EvasionStatsFor(e.Ctx, nsDomains, 0)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Evasion comparison", "Type", "Layout Obfuscation (mean±std)", "String Obfuscation", "Code Obfuscation")
	sqMean, sqStd := sqStats.LayoutMeanStd()
	nsMean, nsStd := nsStats.LayoutMeanStd()
	tb.AddRow("Squatting", fmt.Sprintf("%.1f ± %.1f", sqMean, sqStd), fmt.Sprintf("%.1f%%", sqStats.StringObfRate()*100), fmt.Sprintf("%.1f%%", sqStats.CodeObfRate()*100))
	tb.AddRow("Non-Squatting", fmt.Sprintf("%.1f ± %.1f", nsMean, nsStd), fmt.Sprintf("%.1f%%", nsStats.StringObfRate()*100), fmt.Sprintf("%.1f%%", nsStats.CodeObfRate()*100))
	r.Tables = append(r.Tables, tb)
	r.Note("squatting string-obfuscates more: %v (paper: 68%% vs 36%%); layout distance higher: %v (paper: 28 vs 21)",
		sqStats.StringObfRate() > nsStats.StringObfRate(), sqMean > nsMean)
	return r, nil
}

// ExpTable12 regenerates Table 12: blacklist coverage of the confirmed
// squatting phishing domains one month in.
func ExpTable12(e *Env) (*Result, error) {
	r := &Result{ID: "Table 12", Name: "Blacklist detection of squatting phishing"}
	confirmed, err := e.ConfirmedDomains()
	if err != nil {
		return nil, err
	}
	sum := e.P.BlacklistSummary(confirmed, 30)
	tb := report.NewTable("Blacklist coverage at day 30", "Blacklist", "Domains Detected", "Percent")
	tb.AddRow("PhishTank feed", sum.ByFeed, pctf(sum.ByFeed, sum.Total))
	tb.AddRow("VirusTotal (70 engines)", sum.ByVT, pctf(sum.ByVT, sum.Total))
	tb.AddRow("eCrimeX", sum.ByECrimeX, pctf(sum.ByECrimeX, sum.Total))
	tb.AddRow("Not Detected", sum.Undetect, pctf(sum.Undetect, sum.Total))
	r.Tables = append(r.Tables, tb)
	if sum.Total > 0 {
		r.Note("undetected after a month: %.1f%% (paper: 91.5%%)", float64(sum.Undetect)/float64(sum.Total)*100)
	}
	return r, nil
}

func pctf(n, total int) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", float64(n)/float64(total)*100)
}

// ExpTable13 regenerates Table 13: per-domain liveness timelines across
// the four snapshots for example confirmed domains.
func ExpTable13(e *Env) (*Result, error) {
	r := &Result{ID: "Table 13", Name: "Liveness of example phishing pages per snapshot"}
	sites, err := e.ConfirmedSites()
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Per-domain liveness", "Domain", crawler.SnapshotDates[0], crawler.SnapshotDates[1], crawler.SnapshotDates[2], crawler.SnapshotDates[3])
	comeback := 0
	for i, s := range sites {
		if i >= 8 {
			break
		}
		cells := make([]any, 0, 5)
		cells = append(cells, s.Domain)
		wasDown := false
		cameBack := false
		for snap := 0; snap < webworld.Snapshots; snap++ {
			if s.IsPhishingAt(snap) {
				cells = append(cells, "Live")
				if wasDown {
					cameBack = true
				}
			} else {
				cells = append(cells, "-")
				wasDown = true
			}
		}
		if cameBack {
			comeback++
		}
		tb.AddRow(cells...)
	}
	r.Tables = append(r.Tables, tb)
	r.Note("%d example domains resurfaced after a takedown (paper: tacebook.ga came back in snapshot 4)", comeback)
	return r, nil
}
