package experiments

// Driver regenerates one paper artifact from the shared environment.
type Driver struct {
	ID   string
	Name string
	Run  func(*Env) (*Result, error)
}

// All lists every experiment in the paper's presentation order.
func All() []Driver {
	return []Driver{
		{"Table 1", "Example squatting domains", ExpTable1},
		{"Figure 2", "Squatting domains per type", ExpFigure2},
		{"Figure 3", "Accumulated % per brand", ExpFigure3},
		{"Figure 4", "Top-5 squatted brands", ExpFigure4},
		{"Table 2", "Crawling statistics", ExpTable2},
		{"Table 3", "Redirects to original sites", ExpTable3},
		{"Table 4", "Redirects to marketplaces", ExpTable4},
		{"Figure 5", "Feed URL accumulation per brand", ExpFigure5},
		{"Figure 6", "Feed Alexa-rank distribution", ExpFigure6},
		{"Figure 7", "Feed squatting distribution", ExpFigure7},
		{"Table 5", "Feed re-verification", ExpTable5},
		{"Figure 8", "Layout obfuscation example", ExpFigure8},
		{"Figure 9", "Image-hash distance per brand", ExpFigure9},
		{"Table 6", "String/code obfuscation per brand", ExpTable6},
		{"Table 7", "Classifier performance", ExpTable7},
		{"Figure 10", "ROC curves", ExpFigure10},
		{"Table 8", "Detection in the wild", ExpTable8},
		{"Table 9", "Per-brand predictions", ExpTable9},
		{"Figure 11", "Verified domains per brand CDF", ExpFigure11},
		{"Figure 12", "Squat types of phishing domains", ExpFigure12},
		{"Figure 13", "Top targeted brands", ExpFigure13},
		{"Table 10", "Example phishing domains", ExpTable10},
		{"Figure 14", "Case-study scam flavours", ExpFigure14},
		{"Figure 15", "IP geolocation", ExpFigure15},
		{"Figure 16", "Registration time", ExpFigure16},
		{"Figure 17", "Liveness over snapshots", ExpFigure17},
		{"Table 11", "Evasion squat vs non-squat", ExpTable11},
		{"Table 12", "Blacklist coverage", ExpTable12},
		{"Table 13", "Per-domain liveness timeline", ExpTable13},
		{"Table 14", "Generated-squat detection (domlm)", ExpTable14},
	}
}
