package experiments

import (
	"fmt"
	"sort"

	"squatphi/internal/crawler"
	"squatphi/internal/report"
	"squatphi/internal/squat"
)

// ExpTable1 regenerates Table 1: example squatting domains of each type
// for the facebook brand, produced by the candidate generator.
func ExpTable1(e *Env) (*Result, error) {
	r := &Result{ID: "Table 1", Name: "Example squatting domains for facebook"}
	gen := squat.NewGenerator()
	brand := squat.NewBrand("facebook.com")
	tb := report.NewTable("Squatting examples (facebook)", "Domain", "Type")
	seen := map[squat.Type]int{}
	for _, c := range gen.Generate(brand) {
		if seen[c.Type] >= 2 {
			continue
		}
		seen[c.Type]++
		tb.AddRow(c.Domain, c.Type.String())
	}
	r.Tables = append(r.Tables, tb)
	if len(seen) == len(squat.AllTypes) {
		r.Note("all 5 squatting types exemplified (paper Table 1: homograph/bits/typo/combo/wrongTLD)")
	} else {
		r.Note("MISSING types: got %d of 5", len(seen))
	}
	return r, nil
}

// typeCounts tallies candidates per squatting type.
func typeCounts(cands []squat.Candidate) map[squat.Type]int {
	out := map[squat.Type]int{}
	for _, c := range cands {
		out[c.Type]++
	}
	return out
}

// ExpFigure2 regenerates Figure 2: number of squatting domains per type
// found by scanning the DNS snapshot.
func ExpFigure2(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 2", Name: "# of squatting domains per squatting type"}
	cands := e.P.ScanDNS()
	counts := typeCounts(cands)
	s := report.NewSeries("Squatting domains by type", "type", "# domains")
	for _, t := range squat.AllTypes {
		s.Add(t.String(), float64(counts[t]))
	}
	r.Series = append(r.Series, s)
	total := len(cands)
	comboFrac := float64(counts[squat.Combo]) / float64(total)
	r.Note("total squatting domains: %d (paper: 657,663 at full scale)", total)
	r.Note("combo share %.1f%% — paper: 56%%, combo dominates: %v", comboFrac*100, counts[squat.Combo] > counts[squat.Typo])
	return r, nil
}

// brandCandidateCounts tallies candidates per brand, sorted descending.
func brandCandidateCounts(cands []squat.Candidate) []struct {
	Brand string
	Count int
} {
	m := map[string]int{}
	for _, c := range cands {
		m[c.Brand.Name]++
	}
	type bc struct {
		Brand string
		Count int
	}
	var list []bc
	for b, c := range m {
		list = append(list, bc{b, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Count != list[j].Count {
			return list[i].Count > list[j].Count
		}
		return list[i].Brand < list[j].Brand
	})
	out := make([]struct {
		Brand string
		Count int
	}, len(list))
	for i, e := range list {
		out[i] = struct {
			Brand string
			Count int
		}{e.Brand, e.Count}
	}
	return out
}

// ExpFigure3 regenerates Figure 3: accumulated % of squatting domains
// against brand rank (sorted by squatting-domain count).
func ExpFigure3(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 3", Name: "Accumulated % of squatting domains from top brands"}
	list := brandCandidateCounts(e.P.ScanDNS())
	counts := make([]int, len(list))
	for i, b := range list {
		counts[i] = b.Count
	}
	cdf := report.CDF(counts)
	s := report.NewSeries("Accumulated % of squatting domains", "brand rank", "accumulated %")
	for _, idx := range []int{0, 4, 9, 19, 49, 99, 199} {
		if idx < len(cdf) {
			s.Add(fmt.Sprintf("top-%d", idx+1), cdf[idx])
		}
	}
	if len(cdf) > 0 {
		s.Add(fmt.Sprintf("all-%d", len(cdf)), cdf[len(cdf)-1])
	}
	r.Series = append(r.Series, s)
	if len(cdf) > 19 {
		r.Note("top-20 brands cover %.1f%% of squatting domains (paper: >30%%)", cdf[19])
	}
	return r, nil
}

// ExpFigure4 regenerates Figure 4: the top-5 brands by squatting domains.
func ExpFigure4(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 4", Name: "Top 5 brands with the most squatting domains"}
	list := brandCandidateCounts(e.P.ScanDNS())
	total := len(e.P.ScanDNS())
	tb := report.NewTable("Top brands by squatting domains", "Brand", "Squatting Domains", "Percent")
	for i := 0; i < 5 && i < len(list); i++ {
		tb.AddRow(list[i].Brand, list[i].Count, fmt.Sprintf("%.2f%%", float64(list[i].Count)/float64(total)*100))
	}
	r.Tables = append(r.Tables, tb)
	r.Note("paper's top-5: vice, porn, bt, apple, ford — short/generic names attract squats")
	return r, nil
}

// crawlStats summarises one profile's crawl (Table 2 row).
type crawlStats struct {
	Live, NoRedirect, ToOriginal, ToMarket, ToOther int
}

func (e *Env) statsForProfile(results []crawler.Result, mobile bool) crawlStats {
	markets := map[string]bool{}
	for _, m := range e.P.World.Marketplaces {
		markets[m] = true
	}
	var st crawlStats
	for _, res := range results {
		cap := res.Web
		if mobile {
			cap = res.Mobile
		}
		if !cap.Live {
			continue
		}
		st.Live++
		if !cap.Redirected() {
			st.NoRedirect++
			continue
		}
		site, _ := e.P.World.Site(res.Domain)
		switch {
		case site != nil && cap.FinalHost == site.Brand.Domain():
			st.ToOriginal++
		case markets[cap.FinalHost]:
			st.ToMarket++
		default:
			st.ToOther++
		}
	}
	return st
}

// ExpTable2 regenerates Table 2: crawl statistics with redirect
// destinations for web and mobile profiles.
func ExpTable2(e *Env) (*Result, error) {
	r := &Result{ID: "Table 2", Name: "Crawling statistics and redirection destinations"}
	results, err := e.Crawl0()
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Crawl statistics", "Type", "Live Domains", "No Redirect", "To Original", "To Market", "To Others")
	for _, mobile := range []bool{false, true} {
		st := e.statsForProfile(results, mobile)
		name := "Web"
		if mobile {
			name = "Mobile"
		}
		tb.AddRow(name, st.Live, pct(st.NoRedirect, st.Live), pct(st.ToOriginal, st.Live), pct(st.ToMarket, st.Live), pct(st.ToOther, st.Live))
	}
	r.Tables = append(r.Tables, tb)
	web := e.statsForProfile(results, false)
	liveFrac := float64(web.Live) / float64(len(results))
	r.Note("live fraction %.1f%% (paper: ~55%%); no-redirect %.1f%% of live (paper: 87%%)",
		liveFrac*100, float64(web.NoRedirect)/float64(web.Live)*100)
	return r, nil
}

func pct(n, total int) string {
	if total == 0 {
		return "0 (0.0%)"
	}
	return fmt.Sprintf("%d (%.1f%%)", n, float64(n)/float64(total)*100)
}

// redirectByBrand tallies, per brand, live domains with redirections and
// their destinations.
type brandRedirects struct {
	Brand                     string
	Redirects                 int
	Original, Market, Other   int
	LiveDomains, TotalDomains int
}

func (e *Env) redirectTable(results []crawler.Result) []brandRedirects {
	markets := map[string]bool{}
	for _, m := range e.P.World.Marketplaces {
		markets[m] = true
	}
	byBrand := map[string]*brandRedirects{}
	for _, res := range results {
		site, ok := e.P.World.Site(res.Domain)
		if !ok || site.Brand.Name == "" {
			continue
		}
		br := byBrand[site.Brand.Name]
		if br == nil {
			br = &brandRedirects{Brand: site.Brand.Name}
			byBrand[site.Brand.Name] = br
		}
		br.TotalDomains++
		cap := res.Web
		if !cap.Live {
			continue
		}
		br.LiveDomains++
		if !cap.Redirected() {
			continue
		}
		br.Redirects++
		switch {
		case cap.FinalHost == site.Brand.Domain():
			br.Original++
		case markets[cap.FinalHost]:
			br.Market++
		default:
			br.Other++
		}
	}
	var list []brandRedirects
	for _, br := range byBrand {
		list = append(list, *br)
	}
	return list
}

// ExpTable3 regenerates Table 3: top brands redirecting squatting traffic
// back to their own site (defensive registrations). Like the paper, brands
// rank by the *ratio* of redirections landing on the original site.
func ExpTable3(e *Env) (*Result, error) {
	return e.redirectTopTable("Table 3", "Top brands redirecting to the original site",
		func(br brandRedirects) int { return br.Original },
		"paper: Shutterfly/Alliancebank/Rabobank/Priceline/Carfax — defensive registrations lead")
}

// ExpTable4 regenerates Table 4: top brands whose squatting domains are
// parked on marketplaces, ranked by marketplace-redirect ratio.
func ExpTable4(e *Env) (*Result, error) {
	return e.redirectTopTable("Table 4", "Top brands redirecting to domain marketplaces",
		func(br brandRedirects) int { return br.Market },
		"paper: Zocdoc/Comerica/Verizon/Amazon/Paypal — resale-heavy brands lead")
}

func (e *Env) redirectTopTable(id, name string, key func(brandRedirects) int, note string) (*Result, error) {
	r := &Result{ID: id, Name: name}
	results, err := e.Crawl0()
	if err != nil {
		return nil, err
	}
	list := e.redirectTable(results)
	// Rank by the destination's share of the brand's redirects (minimum 3
	// hits so tiny brands with one lucky redirect don't top the table).
	ratio := func(br brandRedirects) float64 {
		if br.Redirects == 0 || key(br) < 3 {
			return -1
		}
		return float64(key(br)) / float64(br.Redirects)
	}
	sort.Slice(list, func(i, j int) bool {
		ri, rj := ratio(list[i]), ratio(list[j])
		if ri != rj {
			return ri > rj
		}
		if key(list[i]) != key(list[j]) {
			return key(list[i]) > key(list[j])
		}
		return list[i].Brand < list[j].Brand
	})
	tb := report.NewTable(name, "Brand", "Domains w/ Redirect", "To Original", "To Market", "To Others")
	for i := 0; i < 5 && i < len(list); i++ {
		br := list[i]
		if key(br) == 0 {
			break
		}
		tb.AddRow(br.Brand, pct(br.Redirects, br.LiveDomains), br.Original, br.Market, br.Other)
	}
	r.Tables = append(r.Tables, tb)
	r.Note(note)
	return r, nil
}
