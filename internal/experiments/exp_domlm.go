package experiments

import (
	"fmt"

	"squatphi/internal/dnsx"
	"squatphi/internal/domlm"
	"squatphi/internal/ml"
	"squatphi/internal/report"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// This file evaluates the brand-language model (internal/domlm) against
// the generated-squat family: worlds that plant machine-generated
// brand-flavoured domains none of the paper's five squatting types can
// describe, plus brand-noise hard negatives sampled from the same model
// but held below the promotion threshold. The evaluation is shared by
// the Table 14 paperbench driver and the root golden test
// (testdata/golden_domlm.json).

// DomLMScenario is one generated-squat evaluation world.
type DomLMScenario struct {
	Name string
	// World must set GeneratedSquats; its brand universe trains the model.
	World webworld.Config
	// NoiseRecords is the unrelated background population of the snapshot.
	NoiseRecords int
	// BrandNoiseRecords is the brand-adjacent hard-negative population.
	BrandNoiseRecords int
	// Seed drives the snapshot generation.
	Seed uint64
}

// DomLMMetrics scores one matcher variant over a snapshot against the
// world's planted squatting population (five-type squats plus generated
// squats).
type DomLMMetrics struct {
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// DomLMResult is one scenario's evaluated outcome.
type DomLMResult struct {
	Name string `json:"name"`
	// MatcherOnly is the paper's five-type matcher.
	MatcherOnly DomLMMetrics `json:"matcher_only"`
	// MatcherLM is the same matcher with the brand-language model attached.
	MatcherLM DomLMMetrics `json:"matcher_lm"`
	// AUC ranks generated squats against brand-noise and background
	// registrations by raw model score.
	AUC float64 `json:"auc"`
	// Generated and Planted size the scenario for the report.
	Generated int `json:"generated"`
	Planted   int `json:"planted"`
}

// DefaultDomLMScenarios are the committed evaluation worlds: a small and
// a mid-size world, both with brand-noise pressure on precision.
func DefaultDomLMScenarios() []DomLMScenario {
	return []DomLMScenario{
		{
			Name:              "small",
			World:             webworld.Config{SquattingDomains: 300, NonSquattingPhish: 50, GeneratedSquats: 120, Seed: 7},
			NoiseRecords:      3000,
			BrandNoiseRecords: 400,
			Seed:              21,
		},
		{
			Name:              "mid",
			World:             webworld.Config{SquattingDomains: 900, NonSquattingPhish: 120, GeneratedSquats: 250, Seed: 8},
			NoiseRecords:      8000,
			BrandNoiseRecords: 900,
			Seed:              22,
		},
	}
}

// matcherMetrics scans every snapshot domain with m and scores the
// verdicts against truth.
func matcherMetrics(m *squat.Matcher, domains []string, truth map[string]bool) DomLMMetrics {
	var met DomLMMetrics
	for _, d := range domains {
		_, hit := m.Match(d)
		switch {
		case hit && truth[d]:
			met.TP++
		case hit:
			met.FP++
		case truth[d]:
			met.FN++
		}
	}
	if met.TP+met.FP > 0 {
		met.Precision = float64(met.TP) / float64(met.TP+met.FP)
	}
	if met.TP+met.FN > 0 {
		met.Recall = float64(met.TP) / float64(met.TP+met.FN)
	}
	return met
}

// EvalDomLMScenario builds the scenario's world and snapshot, runs the
// five-type matcher with and without the brand-language model over every
// record, and ranks generated squats against the non-squat population by
// model score. Fully deterministic for a fixed scenario.
func EvalDomLMScenario(sc DomLMScenario) DomLMResult {
	w := webworld.Build(sc.World)
	var sb []squat.Brand
	var names []string
	for _, b := range w.Brands.Brands {
		sb = append(sb, b.Brand)
		names = append(names, b.Name)
	}
	model := domlm.Train(names, domlm.DefaultConfig())
	plain := squat.NewMatcher(sb)
	withLM := squat.NewMatcher(sb)
	withLM.AttachLM(model, 0)

	truth := map[string]bool{}
	for _, d := range w.SquattingDomains {
		truth[d] = true
	}
	for _, d := range w.GeneratedSquats {
		truth[d] = true
	}

	snap := dnsx.GenerateSnapshot(dnsx.SnapshotSpec{
		Planted:           w.DNSDomains(),
		NoiseRecords:      sc.NoiseRecords,
		BrandNoise:        model,
		BrandNoiseRecords: sc.BrandNoiseRecords,
		Seed:              sc.Seed,
	})
	domains := snap.Domains()

	res := DomLMResult{
		Name:        sc.Name,
		MatcherOnly: matcherMetrics(plain, domains, truth),
		MatcherLM:   matcherMetrics(withLM, domains, truth),
		Generated:   len(w.GeneratedSquats),
		Planted:     len(truth),
	}

	// AUC of the raw model score: generated squats (positives) against the
	// snapshot's noise (brand-adjacent hard negatives plus background
	// registrations). Other planted world domains — brand originals,
	// five-type squats, feed phishing — are out of scope for the ranking:
	// originals are the training vocabulary itself and score brand-like by
	// definition.
	gen := map[string]bool{}
	for _, d := range w.GeneratedSquats {
		gen[d] = true
	}
	planted := map[string]bool{}
	for _, d := range w.DNSDomains() {
		planted[d] = true
	}
	var truths []int
	var scores []float64
	for _, d := range domains {
		if planted[d] && !gen[d] {
			continue
		}
		y := 0
		if gen[d] {
			y = 1
		}
		truths = append(truths, y)
		scores = append(scores, model.Score(d))
	}
	res.AUC = ml.AUC(ml.ROC(truths, scores))
	return res
}

// ExpTable14 extends the paper's evaluation with the generated-squat
// detection table: per scenario, precision/recall of the five-type
// matcher alone versus matcher+domlm, plus the model-score AUC that
// separates generated squats from brand-adjacent and background noise.
func ExpTable14(e *Env) (*Result, error) {
	r := &Result{ID: "Table 14", Name: "Generated-squat detection: 5-type matcher vs matcher+domlm"}
	tb := report.NewTable("Generated-squat detection",
		"Scenario", "Planted", "Generated", "Matcher P", "Matcher R", "Matcher+LM P", "Matcher+LM R", "LM AUC")
	worse := 0
	for _, sc := range DefaultDomLMScenarios() {
		res := EvalDomLMScenario(sc)
		tb.AddRow(res.Name, res.Planted, res.Generated,
			fmt.Sprintf("%.4f", res.MatcherOnly.Precision), fmt.Sprintf("%.4f", res.MatcherOnly.Recall),
			fmt.Sprintf("%.4f", res.MatcherLM.Precision), fmt.Sprintf("%.4f", res.MatcherLM.Recall),
			fmt.Sprintf("%.4f", res.AUC))
		if res.MatcherLM.Recall <= res.MatcherOnly.Recall || res.MatcherLM.Precision < res.MatcherOnly.Precision {
			worse++
		}
	}
	r.Tables = append(r.Tables, tb)
	if worse == 0 {
		r.Note("matcher+domlm strictly improves recall at equal-or-better precision in every scenario")
	} else {
		r.Note("REGRESSION: %d scenarios where domlm did not improve recall at equal-or-better precision", worse)
	}
	r.Note("generated squats defeat all five rule types by construction; the language model recovers them (PhishReplicant-style detection)")
	return r, nil
}
