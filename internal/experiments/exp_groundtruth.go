package experiments

import (
	"fmt"
	"sort"

	"squatphi/internal/core"
	"squatphi/internal/evasion"
	"squatphi/internal/imghash"
	"squatphi/internal/ml"
	"squatphi/internal/render"
	"squatphi/internal/report"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

// ExpFigure5 regenerates Figure 5: accumulated % of feed phishing URLs
// against brand rank.
func ExpFigure5(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 5", Name: "Accumulated % of phishing URLs from top feed brands"}
	top := e.P.Feed.TopBrands(1 << 30)
	counts := make([]int, len(top))
	for i, b := range top {
		counts[i] = b.Count
	}
	cdf := report.CDF(counts)
	s := report.NewSeries("Accumulated % of feed URLs", "brand rank", "accumulated %")
	for _, idx := range []int{0, 3, 7, 19, 49} {
		if idx < len(cdf) {
			s.Add(fmt.Sprintf("top-%d", idx+1), cdf[idx])
		}
	}
	r.Series = append(r.Series, s)
	if len(cdf) > 7 {
		r.Note("top-8 brands cover %.1f%% of phishing URLs (paper: 59.1%%)", cdf[7])
	}
	r.Note("%d brands with reports (paper: 138 of 204)", len(top))
	return r, nil
}

// ExpFigure6 regenerates Figure 6: Alexa-rank distribution of feed URLs.
func ExpFigure6(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 6", Name: "Alexa ranking of feed phishing URLs"}
	buckets := []struct {
		label string
		lo    int
		hi    int
	}{
		{"(0-1000]", 1, 1000},
		{"(1000-1e4]", 1001, 10000},
		{"(1e4-1e5]", 10001, 100000},
		{"(1e5-1e6]", 100001, 1000000},
		{"1e6+", 0, 0}, // unranked
	}
	counts := make([]int, len(buckets))
	total := 0
	for _, rep := range e.P.Feed.Verified() {
		total++
		if rep.AlexaRank == 0 {
			counts[4]++
			continue
		}
		for i, b := range buckets[:4] {
			if rep.AlexaRank >= b.lo && rep.AlexaRank <= b.hi {
				counts[i]++
				break
			}
		}
	}
	s := report.NewSeries("Feed URLs by Alexa rank", "rank bucket", "# URLs")
	for i, b := range buckets {
		s.Add(b.label, float64(counts[i]))
	}
	r.Series = append(r.Series, s)
	r.Note("beyond-1M share %.1f%% (paper: 70%% — phishing lives on unpopular domains)", float64(counts[4])/float64(total)*100)
	return r, nil
}

// ExpFigure7 regenerates Figure 7: squatting-type distribution of feed
// URLs — most user-reported phishing is NOT squatting-based.
func ExpFigure7(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 7", Name: "Feed squatting-domain distribution"}
	dist := e.P.Feed.SquattingDistribution(e.P.Matcher)
	s := report.NewSeries("Feed URLs by squatting type", "type", "# URLs")
	for _, t := range squat.AllTypes {
		s.Add(t.String(), float64(dist[t]))
	}
	s.Add("none", float64(dist[squat.None]))
	r.Series = append(r.Series, s)
	total := 0
	for _, c := range dist {
		total += c
	}
	r.Note("non-squatting %.1f%% (paper: 91%%) — blacklists cannot cover squatting phishing", float64(dist[squat.None])/float64(total)*100)
	return r, nil
}

// ExpTable5 regenerates Table 5: top-8 feed brands with the fraction of
// pages still phishing at crawl time.
func ExpTable5(e *Env) (*Result, error) {
	r := &Result{ID: "Table 5", Name: "Top feed brands and re-verified phishing pages"}
	top := e.P.Feed.TopBrands(8)
	total := len(e.P.Feed.Verified())
	tb := report.NewTable("Top-8 feed brands", "Brand", "# of URLs", "Percent", "Valid Phishing")
	sumURLs, sumValid := 0, 0
	for _, b := range top {
		valid := 0
		for _, rep := range e.P.Feed.Verified() {
			if rep.Brand != b.Brand {
				continue
			}
			if site, ok := e.P.World.Site(rep.Domain); ok && site.IsPhishingAt(0) {
				valid++
			}
		}
		sumURLs += b.Count
		sumValid += valid
		tb.AddRow(b.Brand, b.Count, fmt.Sprintf("%.1f%%", float64(b.Count)/float64(total)*100), valid)
	}
	tb.AddRow("SubTotal", sumURLs, fmt.Sprintf("%.1f%%", float64(sumURLs)/float64(total)*100), sumValid)
	r.Tables = append(r.Tables, tb)
	if sumURLs > 0 {
		r.Note("still-phishing rate %.1f%% (paper: 43.2%% — pages die before the feed lists them)", float64(sumValid)/float64(sumURLs)*100)
	}
	return r, nil
}

// ExpFigure8 regenerates Figure 8: an original page and three phishing
// variants at increasing perceptual-hash distances.
func ExpFigure8(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 8", Name: "Layout obfuscation example (paypal)"}
	orig := e.P.OriginalShot(e.Ctx, "paypal")
	if orig == nil {
		r.Note("paypal original unavailable; skipped")
		return r, nil
	}
	origHash := imghash.Perceptual(orig)
	s := report.NewSeries("Image-hash distance of obfuscated variants", "variant", "hamming distance")
	s.Add("original", 0)
	html := `<html><head><title>Paypal - Log In</title></head><body><h1>Welcome to Paypal</h1>
<p>Sign in to your account to continue</p>
<form><input type=email placeholder="Email or phone"><input type=password placeholder="Password">
<input type=submit value="Log In"></form></body></html>`
	var dists []int
	for i, seed := range []uint64{3, 17, 51} {
		shot := render.Screenshot(html, render.Options{Perturb: simrand.New(seed)})
		d := imghash.Distance(origHash, imghash.Perceptual(shot))
		dists = append(dists, d)
		s.Add(fmt.Sprintf("phishing-%d", i+1), float64(d))
	}
	r.Series = append(r.Series, s)
	sort.Ints(dists)
	r.Note("variant distances %v — paper's example: 7, 24, 38; increasing obfuscation defeats visual matching", dists)
	return r, nil
}

// feedBrandEvasion computes per-brand evasion stats over the feed's pages
// that still serve phishing (the paper's ground-truth corpus).
func (e *Env) feedBrandEvasion(topN int) (map[string]*evasion.Stats, []string, error) {
	top := e.P.Feed.TopBrands(topN)
	wanted := map[string]bool{}
	var order []string
	for _, b := range top {
		wanted[b.Brand] = true
		order = append(order, b.Brand)
	}
	var domains []string
	brandOf := map[string]string{}
	seen := map[string]bool{}
	for _, rep := range e.P.Feed.Verified() {
		if !wanted[rep.Brand] || seen[rep.Domain] {
			continue
		}
		if site, ok := e.P.World.Site(rep.Domain); ok && site.IsPhishingAt(0) {
			seen[rep.Domain] = true
			domains = append(domains, rep.Domain)
			brandOf[rep.Domain] = rep.Brand
		}
	}
	results, err := e.P.CrawlDomains(e.Ctx, 0, domains)
	if err != nil {
		return nil, nil, err
	}
	stats := map[string]*evasion.Stats{}
	for _, res := range results {
		cap := res.Web
		if !cap.Live {
			cap = res.Mobile
		}
		if !cap.Live {
			continue
		}
		brand := brandOf[res.Domain]
		st := stats[brand]
		if st == nil {
			st = &evasion.Stats{}
			stats[brand] = st
		}
		orig := e.P.OriginalShot(e.Ctx, brand)
		st.Add(evasion.Analyze(cap.HTML, cap.Shot, brand, orig))
	}
	return stats, order, nil
}

// ExpFigure9 regenerates Figure 9: mean image-hash distance (with std) per
// brand for ground-truth phishing pages.
func ExpFigure9(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 9", Name: "Mean image-hash distance per brand (ground-truth phishing)"}
	stats, order, err := e.feedBrandEvasion(8)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Layout distance by brand", "Brand", "Mean", "Std", "Pages")
	allMean := 0.0
	n := 0
	for _, brand := range order {
		st := stats[brand]
		if st == nil || len(st.LayoutDistances) == 0 {
			continue
		}
		mean, std := st.LayoutMeanStd()
		tb.AddRow(brand, mean, std, len(st.LayoutDistances))
		allMean += mean
		n++
	}
	r.Tables = append(r.Tables, tb)
	if n > 0 {
		r.Note("mean layout distance across brands %.1f (paper: ~20+; no universal threshold works)", allMean/float64(n))
	}
	return r, nil
}

// ExpTable6 regenerates Table 6: string and code obfuscation rates per
// top feed brand.
func ExpTable6(e *Env) (*Result, error) {
	r := &Result{ID: "Table 6", Name: "String and code obfuscation per brand"}
	stats, order, err := e.feedBrandEvasion(8)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Obfuscation rates", "Brand", "String Obfuscated", "Code Obfuscated", "Pages")
	var agg evasion.Stats
	for _, brand := range order {
		st := stats[brand]
		if st == nil || st.N == 0 {
			continue
		}
		tb.AddRow(brand,
			fmt.Sprintf("%d (%.1f%%)", st.StringObfuscated, st.StringObfRate()*100),
			fmt.Sprintf("%d (%.1f%%)", st.CodeObfuscated, st.CodeObfRate()*100),
			st.N)
		agg.N += st.N
		agg.StringObfuscated += st.StringObfuscated
		agg.CodeObfuscated += st.CodeObfuscated
	}
	r.Tables = append(r.Tables, tb)
	if agg.N > 0 {
		r.Note("aggregate: string obf %.1f%%, code obf %.1f%% (paper ranges: 8.9-100%% and 1.5-46.6%% per brand)",
			agg.StringObfRate()*100, agg.CodeObfRate()*100)
	}
	return r, nil
}

// ExpTable7 regenerates Table 7: classifier performance under 10-fold CV.
func ExpTable7(e *Env) (*Result, error) {
	r := &Result{ID: "Table 7", Name: "Classifier performance on ground truth (10-fold CV)"}
	evals, err := e.ModelEvals()
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Classifier comparison", "Algorithm", "False Positive", "False Negative", "AUC", "ACC")
	for _, name := range []string{"NaiveBayes", "KNN", "RandomForest"} {
		ev := evals[name]
		tb.AddRow(name, ev.Confusion.FPR(), ev.Confusion.FNR(), ev.AUC, ev.Confusion.Accuracy())
	}
	r.Tables = append(r.Tables, tb)
	rf, knn := evals["RandomForest"], evals["KNN"]
	r.Note("RandomForest AUC %.3f (paper: 0.97); FP %.3f (paper: 0.03); FN %.3f (paper: 0.06)",
		rf.AUC, rf.Confusion.FPR(), rf.Confusion.FNR())
	r.Note("ordering RF >= KNN holds: %v (paper: RF 0.97 > KNN 0.92 > NB 0.64)", rf.AUC >= knn.AUC)

	// Which features the production forest actually uses (mean decrease
	// in impurity over the keyword + numeric embedding).
	if clf, err := e.Classifier(); err == nil {
		if forest, ok := clf.Model.(*ml.RandomForest); ok {
			imp := forest.FeatureImportance(clf.Extractor.Dim())
			names := featureNames(clf)
			top := ml.TopFeatures(imp, 5)
			desc := ""
			for i, fi := range top {
				if i > 0 {
					desc += ", "
				}
				desc += fmt.Sprintf("%s=%.2f", names(fi), imp[fi])
			}
			r.Note("top feature importances: %s", desc)
		}
	}
	return r, nil
}

// featureNames maps a feature index to a readable label: vocabulary words
// first, then the numeric extras.
func featureNames(clf *core.Classifier) func(int) string {
	words := clf.Extractor.Vocab.Words()
	extras := []string{"#forms", "#inputs", "has-password", "#images", "#scripts", "#links", "#brand-tokens"}
	return func(i int) string {
		if i < len(words) {
			return "kw:" + words[i]
		}
		if j := i - len(words); j < len(extras) {
			return extras[j]
		}
		return fmt.Sprintf("f%d", i)
	}
}

// ExpFigure10 regenerates Figure 10: ROC curves of the three models.
func ExpFigure10(e *Env) (*Result, error) {
	r := &Result{ID: "Figure 10", Name: "ROC curves (FPR vs TPR) of the three models"}
	evals, err := e.ModelEvals()
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"NaiveBayes", "KNN", "RandomForest"} {
		ev := evals[name]
		s := report.NewSeries("ROC "+name, "FPR", "TPR")
		for _, fpr := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
			s.Add(fmt.Sprintf("fpr<=%.2f", fpr), tprAt(ev, fpr))
		}
		r.Series = append(r.Series, s)
	}
	r.Note("RandomForest dominates at every operating point (paper Figure 10)")
	return r, nil
}

// tprAt returns the best TPR achievable at FPR <= limit.
func tprAt(ev ml.Evaluation, limit float64) float64 {
	best := 0.0
	for _, pt := range ev.ROC {
		if pt.FPR <= limit && pt.TPR > best {
			best = pt.TPR
		}
	}
	return best
}
