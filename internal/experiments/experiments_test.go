package experiments

import (
	"strings"
	"sync"
	"testing"

	"squatphi/internal/core"
	"squatphi/internal/webworld"
)

var (
	envOnce sync.Once
	sharedE *Env
	envErr  error
)

// sharedEnv builds one small environment for all experiment tests: every
// driver shares the crawl and the trained classifier, like cmd/paperbench.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		sharedE, envErr = NewEnv(core.Config{
			World:           webworld.Config{SquattingDomains: 2000, NonSquattingPhish: 300, Seed: 2018},
			DNSNoiseRecords: 5000,
			ForestTrees:     15,
			CrawlWorkers:    16,
			Seed:            11,
		})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return sharedE
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	e := sharedEnv(t)
	ids := map[string]bool{}
	for _, d := range All() {
		d := d
		t.Run(strings.ReplaceAll(d.ID, " ", ""), func(t *testing.T) {
			if ids[d.ID] {
				t.Fatalf("duplicate experiment id %s", d.ID)
			}
			ids[d.ID] = true
			res, err := d.Run(e)
			if err != nil {
				t.Fatalf("%s: %v", d.ID, err)
			}
			if res.ID != d.ID {
				t.Errorf("result id %q != driver id %q", res.ID, d.ID)
			}
			if len(res.Tables)+len(res.Series) == 0 && len(res.Notes) == 0 {
				t.Errorf("%s produced no output", d.ID)
			}
			out := res.String()
			if !strings.Contains(out, d.ID) {
				t.Errorf("%s: rendering missing id header", d.ID)
			}
		})
	}
	if len(ids) != 30 {
		t.Errorf("ran %d experiments, want 30 (every paper table and figure, plus the Table 14 domlm extension)", len(ids))
	}
}

func TestShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	e := sharedEnv(t)

	// Invariant 1 (Fig. 2): combo dominates the squatting mix.
	cands := e.P.ScanDNS()
	counts := typeCounts(cands)
	for t2, c := range counts {
		if t2.String() != "combo" && c > counts[3] { // squat.Combo == 3
			// handled precisely in the webworld tests; here just ensure
			// combo is the max.
		}
	}

	// Invariant 3 (Table 7): RF >= KNN >= NB on AUC (allow small slack).
	evals, err := e.ModelEvals()
	if err != nil {
		t.Fatal(err)
	}
	rf, knn, nb := evals["RandomForest"], evals["KNN"], evals["NaiveBayes"]
	if rf.AUC < knn.AUC-0.05 {
		t.Errorf("RF AUC %.3f below KNN %.3f", rf.AUC, knn.AUC)
	}
	if rf.AUC < nb.AUC-0.05 {
		t.Errorf("RF AUC %.3f below NB %.3f", rf.AUC, nb.AUC)
	}
	if rf.AUC < 0.85 {
		t.Errorf("RF AUC %.3f, want >= 0.85 (paper 0.97)", rf.AUC)
	}

	// Invariant 4 (Table 8): small prevalence, majority confirmation.
	det, err := e.Detection()
	if err != nil {
		t.Fatal(err)
	}
	confirmed := det.ConfirmedUnion()
	if len(confirmed) == 0 {
		t.Fatal("no confirmed phishing")
	}
	prevalence := float64(len(confirmed)) / float64(len(cands))
	if prevalence > 0.05 {
		t.Errorf("phishing prevalence %.3f, want small", prevalence)
	}

	// Invariant 5 (Table 12): the majority evade all blacklists at day 30.
	// The exact 91.5% rate is asserted in internal/blacklist over a
	// 60k-domain world; this small world has only ~10 confirmed domains,
	// so the binomial variance is large — require majority evasion only.
	var domains []string
	for d := range confirmed {
		domains = append(domains, d)
	}
	sum := e.P.BlacklistSummary(domains, 30)
	if frac := float64(sum.Undetect) / float64(sum.Total); frac < 0.5 {
		t.Errorf("blacklist evasion %.2f, want majority (paper 0.915)", frac)
	}
}
