package domlm

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"squatphi/internal/fsx"
)

// Binary model layout (all integers little-endian):
//
//	magic   [6]byte  "SQDLM\x01"          (the trailing byte is ModelVersion)
//	order   uint8
//	pad     uint8    (zero)
//	addK    uint64   (IEEE-754 bits of the smoothing constant)
//	brands  uint32   (distinct training labels)
//	setHash uint64   (order-invariant brand-set hash)
//	counts  order × (uint32 length + length × uint32 cells)
//	fp      uint64   (FNV-1a over every preceding byte)
//
// The layout is canonical: dense count arrays in order-ascending order,
// no maps, no floats except the smoothing constant's bit pattern. Two
// models over the same brand set and config serialize byte-identically,
// and the trailing fingerprint doubles as both an integrity check on
// Decode and the model identity the matcher folds into its own
// fingerprint.

var magic = [6]byte{'S', 'Q', 'D', 'L', 'M', ModelVersion}

// headerSize is the byte offset of the first count array.
const headerSize = 6 + 1 + 1 + 8 + 4 + 8

// encodedSize returns the total encoding size for an order.
func encodedSize(order int) int {
	n := headerSize
	for k := 1; k <= order; k++ {
		n += 4 + 4*ctxSize(k)*numEmit
	}
	return n + 8
}

// fnv1aBytes extends an FNV-1a state over b.
func fnv1aBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// appendEncoded serializes the model without its trailing fingerprint.
func appendEncoded(dst []byte, m *Model) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, byte(m.cfg.Order), 0)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.cfg.AddK))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.brandCount))
	dst = binary.LittleEndian.AppendUint64(dst, m.brandSetHash)
	for _, cs := range m.counts {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cs)))
		for _, c := range cs {
			dst = binary.LittleEndian.AppendUint32(dst, c)
		}
	}
	return dst
}

// fingerprintOf computes the model fingerprint: FNV-1a over the canonical
// encoding. Computed once at Train/Decode time.
func fingerprintOf(m *Model) uint64 {
	return fnv1aBytes(14695981039346656037, appendEncoded(make([]byte, 0, encodedSize(m.cfg.Order)-8), m))
}

// Encode serializes the model to its canonical binary form, fingerprint
// included. Byte-identical for equal models regardless of how (or with
// how many workers) they were trained.
func (m *Model) Encode() []byte {
	b := appendEncoded(make([]byte, 0, encodedSize(m.cfg.Order)), m)
	return binary.LittleEndian.AppendUint64(b, m.fp)
}

// Decode reconstructs a model from Encode bytes. Corrupt, truncated or
// version-mismatched input returns an error — never a panic and never a
// silently wrong model: the trailing fingerprint is recomputed over the
// payload and must match (FuzzModelDecode pins this).
func Decode(b []byte) (*Model, error) {
	if len(b) < headerSize+8 {
		return nil, fmt.Errorf("domlm: decode: %d bytes, want at least %d", len(b), headerSize+8)
	}
	var mg [6]byte
	copy(mg[:], b)
	if mg != magic {
		return nil, fmt.Errorf("domlm: decode: bad magic/version %q (want %q)", mg[:], magic[:])
	}
	order := int(b[6])
	if order < minOrder || order > maxOrder {
		return nil, fmt.Errorf("domlm: decode: order %d out of range [%d, %d]", order, minOrder, maxOrder)
	}
	if b[7] != 0 {
		return nil, fmt.Errorf("domlm: decode: nonzero pad byte %#x", b[7])
	}
	if len(b) != encodedSize(order) {
		return nil, fmt.Errorf("domlm: decode: %d bytes, want %d for order %d", len(b), encodedSize(order), order)
	}
	addK := math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	if !(addK > 0) || math.IsInf(addK, 0) {
		return nil, fmt.Errorf("domlm: decode: smoothing constant %v out of range", addK)
	}
	m := &Model{
		cfg:          Config{Order: order, AddK: addK},
		brandCount:   int(binary.LittleEndian.Uint32(b[16:])),
		brandSetHash: binary.LittleEndian.Uint64(b[20:]),
	}
	off := headerSize
	m.counts = make([][]uint32, order)
	for k := 1; k <= order; k++ {
		want := ctxSize(k) * numEmit
		got := int(binary.LittleEndian.Uint32(b[off:]))
		if got != want {
			return nil, fmt.Errorf("domlm: decode: order-%d count array has %d cells, want %d", k, got, want)
		}
		off += 4
		cs := make([]uint32, want)
		for i := range cs {
			cs[i] = binary.LittleEndian.Uint32(b[off:])
			off += 4
		}
		m.counts[k-1] = cs
	}
	fp := binary.LittleEndian.Uint64(b[off:])
	if want := fnv1aBytes(14695981039346656037, b[:off]); fp != want {
		return nil, fmt.Errorf("domlm: decode: fingerprint %016x does not match payload hash %016x", fp, want)
	}
	m.fp = fp
	m.buildDerived()
	return m, nil
}

// WriteFile persists the encoded model atomically (temp file + fsync +
// rename, the repo's fsx convention).
func (m *Model) WriteFile(path string) error {
	return fsx.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(m.Encode())
		return err
	})
}

// ReadFile loads a model written by WriteFile.
func ReadFile(path string) (*Model, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}
