package domlm

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"squatphi/internal/simrand"
)

var corpus = []string{
	"paypal", "facebook", "google", "microsoft", "amazon", "netflix",
	"dropbox", "linkedin", "spotify", "airbnb", "coinbase", "binance",
	"chase", "wellsfargo", "santander", "rabobank", "alibaba", "tencent",
	"youtube", "whatsapp", "instagram", "telegram", "shopify", "stripe",
}

// permuted returns a deterministic shuffle of names.
func permuted(names []string, seed uint64) []string {
	out := append([]string(nil), names...)
	r := simrand.New(seed)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestTrainInputOrderInvariant(t *testing.T) {
	cfg := Config{Order: 3, AddK: 0.1}
	want := Train(corpus, cfg).Encode()
	for seed := uint64(1); seed <= 8; seed++ {
		got := Train(permuted(corpus, seed), cfg).Encode()
		if !bytes.Equal(want, got) {
			t.Fatalf("model bytes differ after input permutation (seed %d)", seed)
		}
	}
}

func TestTrainWorkerCountInvariant(t *testing.T) {
	cfg := Config{Order: 3, AddK: 0.1}
	want := Train(corpus, cfg).Encode()
	for _, workers := range []int{2, 3, 4, 7, 16, 64} {
		got := TrainParallel(corpus, cfg, workers).Encode()
		if !bytes.Equal(want, got) {
			t.Fatalf("model bytes differ at workers=%d", workers)
		}
	}
}

func TestTrainSetSemantics(t *testing.T) {
	cfg := Config{Order: 3, AddK: 0.1}
	want := Train(corpus, cfg).Encode()
	// Duplicates and case folds are identities over the label set.
	doubled := append(append([]string(nil), corpus...), corpus...)
	if got := Train(doubled, cfg).Encode(); !bytes.Equal(want, got) {
		t.Error("duplicated input changed the model")
	}
	upper := append([]string(nil), corpus...)
	upper[0] = "PayPal"
	upper = append(upper, "GOOGLE")
	if got := Train(upper, cfg).Encode(); !bytes.Equal(want, got) {
		t.Error("case-folded duplicates changed the model")
	}
}

func TestFingerprintSemantics(t *testing.T) {
	cfg := Config{Order: 3, AddK: 0.1}
	base := Train(corpus, cfg)

	if got := Train(permuted(corpus, 3), cfg); got.Fingerprint() != base.Fingerprint() {
		t.Error("fingerprint changed under input permutation")
	}
	if got := TrainParallel(corpus, cfg, 5); got.Fingerprint() != base.Fingerprint() {
		t.Error("fingerprint changed under parallel training")
	}

	// ... and changes exactly when the model semantics change.
	if got := Train(corpus[:len(corpus)-1], cfg); got.Fingerprint() == base.Fingerprint() {
		t.Error("fingerprint unchanged after shrinking the brand set")
	}
	if got := Train(append([]string{"newbrand"}, corpus...), cfg); got.Fingerprint() == base.Fingerprint() {
		t.Error("fingerprint unchanged after growing the brand set")
	}
	if got := Train(corpus, Config{Order: 2, AddK: 0.1}); got.Fingerprint() == base.Fingerprint() {
		t.Error("fingerprint unchanged after changing the n-gram order")
	}
	if got := Train(corpus, Config{Order: 3, AddK: 0.5}); got.Fingerprint() == base.Fingerprint() {
		t.Error("fingerprint unchanged after changing the smoothing config")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := Train(corpus, Config{Order: 3, AddK: 0.1})
	enc := m.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fingerprint() != m.Fingerprint() {
		t.Fatalf("fingerprint changed across encode/decode: %016x vs %016x", dec.Fingerprint(), m.Fingerprint())
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("re-encode of decoded model differs")
	}
	for _, l := range []string{"paypal", "paypa1-login", "xzqwv", "", "a", "facebok"} {
		if a, b := m.ScoreLabel(l), dec.ScoreLabel(l); a != b {
			t.Fatalf("decoded model scores %q as %v, trainer scored %v", l, b, a)
		}
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	m := Train(corpus, Config{Order: 2, AddK: 0.1})
	enc := m.Encode()

	cases := map[string][]byte{
		"empty":     nil,
		"short":     enc[:10],
		"truncated": enc[:len(enc)-3],
		"badMagic":  append([]byte("NOPE!!"), enc[6:]...),
		"badOrder":  append(append([]byte{}, enc[:6]...), append([]byte{9}, enc[7:]...)...),
		"extra":     append(append([]byte{}, enc...), 0xff),
	}
	flipped := append([]byte(nil), enc...)
	flipped[headerSize+12] ^= 0x40 // corrupt a count cell: fingerprint must catch it
	cases["bitflip"] = flipped

	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(%s) accepted corrupt input", name)
		}
	}

	if _, err := Decode(enc); err != nil {
		t.Fatalf("Decode rejected pristine input: %v", err)
	}
}

func TestScoreProperties(t *testing.T) {
	m := Train(corpus, DefaultConfig())
	var s Scratch
	inputs := []string{
		"", ".", "...", "paypal.com", "PAYPAL.COM.", "xn--pypal-4ve.com",
		"zzqxwv.net", "a.b.c.d.e", "-", "\xff\xfe", "paypal-login-secure.com",
	}
	for _, in := range inputs {
		got := m.Score(in)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Fatalf("Score(%q) = %v, out of [0,1]", in, got)
		}
		if b := m.ScoreBytes([]byte(in), &s); b != got {
			t.Fatalf("ScoreBytes(%q) = %v, Score = %v", in, b, got)
		}
	}
	// Brand vocabulary must score far above random letters.
	brandish := m.ScoreLabel("paypal")
	random := m.ScoreLabel("qzxjwk")
	if brandish <= random {
		t.Fatalf("brand label %v <= random label %v", brandish, random)
	}
}

func TestSampleLabelValid(t *testing.T) {
	m := Train(corpus, DefaultConfig())
	r1 := simrand.New(77).Split("sample")
	r2 := simrand.New(77).Split("sample")
	for i := 0; i < 500; i++ {
		l := m.SampleLabel(r1)
		if l != m.SampleLabel(r2) {
			t.Fatal("sampling is not deterministic for a fixed seed")
		}
		if len(l) < sampleMinLen || len(l) > sampleMaxLen {
			t.Fatalf("sample %q length out of [%d, %d]", l, sampleMinLen, sampleMaxLen)
		}
		if l[0] == '-' || l[len(l)-1] == '-' {
			t.Fatalf("sample %q has a leading/trailing hyphen", l)
		}
		for j := 0; j < len(l); j++ {
			c := l[j]
			if !('a' <= c && c <= 'z' || '0' <= c && c <= '9' || c == '-') {
				t.Fatalf("sample %q contains invalid byte %q", l, c)
			}
		}
	}
}

func TestScoreBytesZeroAlloc(t *testing.T) {
	m := Train(corpus, DefaultConfig())
	var s Scratch
	domains := [][]byte{
		[]byte("cloudshop-media.com"),
		[]byte("qzuvxkwa.net"),
		[]byte("paypa1-secure-login.io"),
		[]byte("data-river.org"),
	}
	// Warm the scratch to steady-state capacity.
	for _, d := range domains {
		m.ScoreBytes(d, &s)
	}
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		for _, d := range domains {
			sink += m.ScoreBytes(d, &s)
		}
	})
	if allocs != 0 {
		t.Fatalf("ScoreBytes allocated %v times per run, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("scores were all zero")
	}
}

// TestConcurrentScoring exercises the shared-model contract under the
// race detector: one model, many workers with private scratch, identical
// scores everywhere.
func TestConcurrentScoring(t *testing.T) {
	m := Train(corpus, DefaultConfig())
	inputs := make([]string, 200)
	r := simrand.New(5).Split("conc")
	for i := range inputs {
		inputs[i] = m.SampleLabel(r) + ".com"
	}
	want := make([]float64, len(inputs))
	for i, in := range inputs {
		want[i] = m.Score(in)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			var s Scratch
			for i, in := range inputs {
				if got := m.ScoreBytes([]byte(in), &s); got != want[i] {
					done <- fmt.Errorf("worker scored %q as %v, serial %v", in, got, want[i])
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkScoreBytes(b *testing.B) {
	m := Train(corpus, DefaultConfig())
	var s Scratch
	d := []byte("cloudshop-media.com")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreBytes(d, &s)
	}
}
