// Package domlm implements the brand-language model that detects
// generated squatting domains — names minted by a generative process
// trained on brand vocabulary, which share no edit-distance or confusable
// relationship with any single brand and therefore defeat the paper's
// five rule-based squatting types (the gap PhishReplicant, ACSAC '23, and
// DomainLynx, CCNC '25, document in the wild).
//
// The model is a character n-gram interpolated Markov chain over the
// registrable labels of the monitored brand universe. It scores the
// "brand-likeness" of an unseen label in [0, 1]: the per-character
// cross-entropy of the label under the brand model, compared against a
// uniform background over the DNS label alphabet, squashed through a
// logistic. Labels sampled from brand vocabulary score near 1; random
// registrations and dictionary compounds score low.
//
// Everything is deterministic by construction. Training is pure counting —
// order-invariant and worker-count-invariant (integer accumulation
// commutes) — so the same brand set always produces a byte-identical
// serialized model whose trailing fingerprint hash identifies the full
// model configuration (brand set, n-gram order, smoothing). The matcher
// folds that fingerprint into its own (squat.Matcher.AttachLM), which is
// how deltascan verdict caches learn that a model change invalidates
// cached verdicts.
package domlm

import (
	"math"
	"sync"
)

// Symbol space. DNS labels are lowercase letters, digits and hyphens;
// anything else (a byte of a UTF-8 sequence, '_', ...) maps to one OOV
// symbol. The end marker is emitted, the start marker only ever appears
// in contexts.
const (
	symHyphen  = 36
	symOOV     = 37
	symEnd     = 38
	symStart   = 39
	numEmit    = 39 // emission classes: 0..38 (symStart is never emitted)
	symBase    = 40 // context radix: 0..39
	alphabet   = 37 // letters + digits + hyphen: the background support
	minOrder   = 2
	maxOrder   = 4
	maxLabelSz = 1 << 12 // scoring considers at most this many label bytes
)

// symTable maps an input byte to its symbol. Uppercase folds to the
// lowercase symbol so callers never need a normalization buffer.
var symTable [256]uint8

func init() {
	for i := range symTable {
		symTable[i] = symOOV
	}
	for c := byte('a'); c <= 'z'; c++ {
		symTable[c] = c - 'a'
		symTable[c-'a'+'A'] = c - 'a'
	}
	for c := byte('0'); c <= '9'; c++ {
		symTable[c] = 26 + c - '0'
	}
	symTable['-'] = symHyphen
}

// bgBits is the per-symbol information content of the uniform background
// model over the label alphabet: the reference against which brand-model
// cross-entropy is compared.
var bgBits = math.Log2(alphabet)

// scoreSharpness scales the logistic that maps the per-symbol bit
// advantage over the background to [0, 1]. Behavioural changes to the
// score mapping must bump ModelVersion.
const scoreSharpness = 1.0

// ModelVersion versions the scoring semantics and the binary model
// layout. It is part of the serialized header, so a version bump changes
// every model fingerprint and — through the matcher fingerprint —
// invalidates deltascan verdict caches, exactly like a brand-set change.
const ModelVersion = 1

// Config is the model shape. It is part of the fingerprint: changing
// Order or AddK produces a model with a different fingerprint even over
// an identical brand set.
type Config struct {
	// Order is the n-gram order (context length Order-1), clamped to
	// [2, 4]. The zero value means DefaultConfig's order.
	Order int
	// AddK is the add-k smoothing constant applied within each order.
	// The zero value means DefaultConfig's constant.
	AddK float64
}

// DefaultConfig returns the configuration the pipeline trains with:
// 4-grams with light smoothing. Calibrated so that at paper-bench noise
// scale (120k background registrations) the highest-scoring background
// domain stays ~0.02 below DefaultThreshold while brand vocabulary and
// model samples sit well above it.
func DefaultConfig() Config { return Config{Order: 4, AddK: 0.05} }

func (c Config) normalized() Config {
	def := DefaultConfig()
	if c.Order == 0 {
		c.Order = def.Order
	}
	if c.Order < minOrder {
		c.Order = minOrder
	}
	if c.Order > maxOrder {
		c.Order = maxOrder
	}
	if c.AddK <= 0 {
		c.AddK = def.AddK
	}
	return c
}

// ctxSize returns the number of contexts of order k (symBase^(k-1)).
func ctxSize(k int) int {
	n := 1
	for i := 1; i < k; i++ {
		n *= symBase
	}
	return n
}

// DefaultThreshold is the promotion threshold the pipeline attaches to
// the matcher: labels scoring at or above it (and long enough to carry
// signal) are flagged as Generated candidates. Calibrated on the
// synthetic world so that background noise — including the brand-adjacent
// hard negatives dnsx plants below the threshold — never crosses it at
// the pinned seeds, keeping scan precision intact.
const DefaultThreshold = 0.88

// MinLabelLen is the shortest label the promotion rule considers: very
// short labels carry too few n-grams to distinguish brand vocabulary
// from background noise.
const MinLabelLen = 6

// Model is a trained brand-language model. It is immutable after Train
// or Decode and safe for concurrent use by any number of scan workers.
type Model struct {
	cfg        Config
	brandCount int
	// brandSetHash is an order-invariant (commutative-sum) hash of the
	// deduplicated training labels: two models trained over the same label
	// set in any order share it.
	brandSetHash uint64
	// counts: for each order k in 1..cfg.Order, the dense emission counts
	// counts[k-1][ctx*numEmit+emit]. Dense arrays make serialization
	// canonical with no sorting step.
	counts [][]uint32
	// probs mirrors counts with the add-k-smoothed conditional
	// probabilities P_k(emit|ctx), precomputed so scoring never divides.
	probs [][]float64
	// lambda holds the interpolation weights per order (fixed scheme:
	// doubling weight per order, normalized).
	lambda []float64
	// fp is the model fingerprint: an FNV-1a hash over the canonical
	// serialization (version, order, smoothing, brand-set hash, counts).
	fp uint64
}

// Scratch holds the reusable buffers of one scoring worker. The zero
// value is ready to use; a Scratch must not be shared between concurrent
// goroutines. After a few calls the symbol buffer reaches steady-state
// capacity and ScoreBytes performs zero allocations (see
// TestScoreBytesZeroAlloc and the bench-check gate).
type Scratch struct {
	syms []uint8
}

// scratchPool backs the scratch-less convenience entry points (Score,
// ScoreLabel) so they stay allocation-light without forcing every caller
// to thread a Scratch.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Config returns the model's (normalized) configuration.
func (m *Model) Config() Config { return m.cfg }

// BrandCount returns the number of distinct labels the model was trained
// over.
func (m *Model) BrandCount() int { return m.brandCount }

// Fingerprint identifies the full model: brand set, n-gram order,
// smoothing and format version. Two models with equal fingerprints score
// every input identically.
func (m *Model) Fingerprint() uint64 { return m.fp }

// buildDerived computes probs and lambda from counts. Shared by Train
// and Decode so a decoded model scores byte-for-byte like the trainer's.
func (m *Model) buildDerived() {
	order := m.cfg.Order
	m.lambda = make([]float64, order)
	total := 0.0
	for k := 1; k <= order; k++ {
		m.lambda[k-1] = float64(uint64(1) << uint(k-1))
		total += m.lambda[k-1]
	}
	for k := range m.lambda {
		m.lambda[k] /= total
	}
	m.probs = make([][]float64, order)
	addK := m.cfg.AddK
	for k := 1; k <= order; k++ {
		cs := m.counts[k-1]
		ps := make([]float64, len(cs))
		for ctx := 0; ctx < len(cs); ctx += numEmit {
			var tot uint64
			for e := 0; e < numEmit; e++ {
				tot += uint64(cs[ctx+e])
			}
			denom := float64(tot) + addK*numEmit
			for e := 0; e < numEmit; e++ {
				ps[ctx+e] = (float64(cs[ctx+e]) + addK) / denom
			}
		}
		m.probs[k-1] = ps
	}
}

// startCtx returns the all-start context value for order k.
//
//squat:hot
func startCtx(k int) uint32 {
	v := uint32(0)
	for i := 1; i < k; i++ {
		v = v*symBase + symStart
	}
	return v
}

// ctxMod[k-1] is symBase^(k-2): the modulus that rolls a context of
// order k forward by one symbol.
var ctxMod = [maxOrder]uint32{1, 1, symBase, symBase * symBase}

// scoreLabel walks one label's symbols through the interpolated chain.
// Generic over both byte views so the string and []byte entry points
// share one implementation (and the fuzz parity target can hold them to
// bit-identical results).
//
//squat:hot
func scoreLabel[T string | []byte](m *Model, label T, s *Scratch) float64 {
	if len(label) > maxLabelSz {
		label = label[:maxLabelSz]
	}
	s.syms = s.syms[:0]
	for i := 0; i < len(label); i++ {
		s.syms = append(s.syms, symTable[label[i]])
	}
	s.syms = append(s.syms, symEnd)

	order := m.cfg.Order
	var ctx [maxOrder]uint32
	for k := 1; k <= order; k++ {
		ctx[k-1] = startCtx(k)
	}
	bits := 0.0
	for _, sym := range s.syms {
		p := 0.0
		for k := 1; k <= order; k++ {
			p += m.lambda[k-1] * m.probs[k-1][int(ctx[k-1])*numEmit+int(sym)]
		}
		bits -= math.Log2(p)
		for k := 2; k <= order; k++ {
			ctx[k-1] = (ctx[k-1]%ctxMod[k-1])*symBase + uint32(sym)
		}
	}
	avg := bits / float64(len(s.syms))
	// Logistic over the per-symbol bit advantage vs the uniform background.
	return 1 / (1 + math.Exp2(scoreSharpness*(avg-bgBits)))
}

// ScoreLabelBytes scores one registrable label (raw bytes, any case; no
// dot splitting) for brand-likeness in [0, 1]. This is the scan hot
// path: the matcher calls it for every miss when a model is attached, so
// it allocates nothing once the scratch buffer has warmed up.
//
//squat:hot
func (m *Model) ScoreLabelBytes(label []byte, s *Scratch) float64 {
	return scoreLabel(m, label, s)
}

// ScoreLabel is ScoreLabelBytes for string labels, borrowing pooled
// scratch — the convenience entry for callers off the scan hot path.
func (m *Model) ScoreLabel(label string) float64 {
	s := scratchPool.Get().(*Scratch)
	sc := scoreLabel(m, label, s)
	scratchPool.Put(s)
	return sc
}

// labelOf extracts the registrable label of a raw domain with the
// package's own minimal split: one trailing dot dropped, label = the
// second-to-last dot-separated field (the whole input when it has no
// dots). Callers that know the effective TLD — the squat matcher, the
// core pipeline — score the properly-split label directly via
// ScoreLabel/ScoreLabelBytes; this standalone split exists so Score can
// take full domains (CLI, fuzzing) without importing the suffix list.
//
//squat:hot
func labelOf[T string | []byte](domain T) T {
	n := len(domain)
	if n > 0 && domain[n-1] == '.' {
		n--
	}
	domain = domain[:n]
	last := -1
	for i := n - 1; i >= 0; i-- {
		if domain[i] == '.' {
			last = i
			break
		}
	}
	if last < 0 {
		return domain
	}
	prev := -1
	for i := last - 1; i >= 0; i-- {
		if domain[i] == '.' {
			prev = i
			break
		}
	}
	return domain[prev+1 : last]
}

// Score scores a full domain name in [0, 1], splitting off the last
// dot-separated field as the TLD (see labelOf). Any byte sequence is
// accepted; unknown bytes map to the OOV symbol.
func (m *Model) Score(domain string) float64 {
	return m.ScoreLabel(string(labelOf(domain)))
}

// ScoreBytes is Score over raw bytes with caller-owned scratch — the
// zero-allocation entry point for scan loops that hold domains as byte
// slices into an mmap'd snapshot. For any input, ScoreBytes(b) ==
// Score(string(b)) bit-for-bit (FuzzScoreBytes pins this).
//
//squat:hot
func (m *Model) ScoreBytes(domain []byte, s *Scratch) float64 {
	return scoreLabel(m, labelOf(domain), s)
}
