package domlm

import "squatphi/internal/simrand"

// Sampling limits: generated labels are plausible registrable labels, so
// the walk never emits OOV, never starts or ends on a hyphen, and is
// length-bounded. The end symbol is suppressed below sampleMinLen and
// forced at sampleMaxLen.
const (
	sampleMinLen = 6
	sampleMaxLen = 20
)

// SampleLabel draws one label from the model — the generative process a
// "generated squat" registrant runs: names statistically charged with
// brand vocabulary that match no single brand by edit distance. All
// randomness comes from r, so a fixed seed yields a fixed label sequence
// (the webworld generator scenario depends on this).
func (m *Model) SampleLabel(r *simrand.RNG) string {
	order := m.cfg.Order
	var ctx [maxOrder]uint32
	for k := 1; k <= order; k++ {
		ctx[k-1] = startCtx(k)
	}
	buf := make([]byte, 0, sampleMaxLen)
	for {
		// Interpolated emission distribution for the current context,
		// restricted to the symbols a label may continue with here.
		var p [numEmit]float64
		total := 0.0
		var prev byte
		if len(buf) > 0 {
			prev = buf[len(buf)-1]
		}
		for e := 0; e < numEmit; e++ {
			if !sampleAllowed(e, len(buf), prev) {
				continue
			}
			v := 0.0
			for k := 1; k <= order; k++ {
				v += m.lambda[k-1] * m.probs[k-1][int(ctx[k-1])*numEmit+e]
			}
			p[e] = v
			total += v
		}
		x := r.Float64() * total
		sym := -1
		for e := 0; e < numEmit; e++ {
			if p[e] <= 0 {
				continue
			}
			sym = e // rounding spill lands on the last allowed symbol
			x -= p[e]
			if x < 0 {
				break
			}
		}
		if sym < 0 || sym == symEnd {
			return string(buf)
		}
		buf = append(buf, symChar(sym))
		for k := 2; k <= order; k++ {
			ctx[k-1] = (ctx[k-1]%ctxMod[k-1])*symBase + uint32(sym)
		}
	}
}

// sampleAllowed reports whether symbol e may be emitted at position pos
// of a label under construction whose previous byte is prev.
func sampleAllowed(e, pos int, prev byte) bool {
	switch {
	case e == symOOV:
		return false
	case e == symEnd:
		return pos >= sampleMinLen && prev != '-'
	case pos >= sampleMaxLen:
		return false
	case e == symHyphen:
		return pos > 0 && pos < sampleMaxLen-1 && prev != '-'
	case pos == 0:
		return e < 26 // labels start with a letter
	default:
		return true
	}
}

// symChar maps an emittable non-end symbol back to its byte.
func symChar(e int) byte {
	switch {
	case e < 26:
		return 'a' + byte(e)
	case e < 36:
		return '0' + byte(e-26)
	default:
		return '-'
	}
}
