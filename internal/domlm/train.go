package domlm

import (
	"sort"
	"sync"
)

// labelKey lowercases a training label the way symTable folds input, so
// "PayPal" and "paypal" train the same n-grams and hash identically.
func labelKey(name string) string {
	needFold := false
	for i := 0; i < len(name); i++ {
		if c := name[i]; 'A' <= c && c <= 'Z' {
			needFold = true
			break
		}
	}
	if !needFold {
		return name
	}
	b := []byte(name)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// dedupe returns the sorted distinct fold of names. Training is defined
// over the label *set*: duplicates and ordering never change the model.
func dedupe(names []string) []string {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[labelKey(n)] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fnv1a hashes one string FNV-1a.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 finalizes a hash SplitMix64-style so the commutative sum below
// still has avalanche behaviour per element.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// setHash computes the order-invariant brand-set hash: the wrapping sum
// of the mixed per-label hashes. Addition commutes, so any permutation of
// the same label set hashes identically — and the set is deduplicated
// first, so repeated labels cannot cancel or double.
func setHash(labels []string) uint64 {
	var h uint64
	for _, l := range labels {
		h += mix64(fnv1a(l))
	}
	return h
}

// countInto accumulates the n-gram emission counts of one label into cs
// (cs[k-1] laid out as [ctx*numEmit+emit]). Pure integer accumulation:
// commutative across labels, which is what makes training input-order and
// worker-count invariant.
func countInto(cs [][]uint32, order int, label string) {
	var ctx [maxOrder]uint32
	for k := 1; k <= order; k++ {
		ctx[k-1] = startCtx(k)
	}
	n := len(label)
	if n > maxLabelSz {
		n = maxLabelSz
	}
	for i := 0; i <= n; i++ {
		sym := uint32(symEnd)
		if i < n {
			sym = uint32(symTable[label[i]])
		}
		for k := 1; k <= order; k++ {
			cs[k-1][int(ctx[k-1])*numEmit+int(sym)]++
		}
		for k := 2; k <= order; k++ {
			ctx[k-1] = (ctx[k-1]%ctxMod[k-1])*symBase + sym
		}
	}
}

// newCounts allocates the dense count arrays for an order.
func newCounts(order int) [][]uint32 {
	cs := make([][]uint32, order)
	for k := 1; k <= order; k++ {
		cs[k-1] = make([]uint32, ctxSize(k)*numEmit)
	}
	return cs
}

// Train builds a model from the registrable labels of the brand universe.
// The input is treated as a set: duplicates, ordering and case never
// affect the result, and the returned model's Encode bytes are identical
// for any permutation of the same labels (the determinism property tests
// pin this).
func Train(names []string, cfg Config) *Model {
	return TrainParallel(names, cfg, 1)
}

// TrainParallel is Train with the counting fanned out over workers.
// Output is byte-identical for every worker count: each worker
// accumulates into private dense arrays and the per-cell sums are
// reduced with commutative integer addition.
func TrainParallel(names []string, cfg Config, workers int) *Model {
	cfg = cfg.normalized()
	labels := dedupe(names)
	m := &Model{cfg: cfg, brandCount: len(labels), brandSetHash: setHash(labels)}

	if workers < 1 {
		workers = 1
	}
	if workers > len(labels) && len(labels) > 0 {
		workers = len(labels)
	}
	if workers <= 1 {
		m.counts = newCounts(cfg.Order)
		for _, l := range labels {
			countInto(m.counts, cfg.Order, l)
		}
	} else {
		locals := make([][][]uint32, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cs := newCounts(cfg.Order)
				for i := w; i < len(labels); i += workers {
					countInto(cs, cfg.Order, labels[i])
				}
				locals[w] = cs
			}(w)
		}
		wg.Wait()
		m.counts = locals[0]
		for w := 1; w < workers; w++ {
			for k := range m.counts {
				dst, src := m.counts[k], locals[w][k]
				for i := range dst {
					dst[i] += src[i]
				}
			}
		}
	}

	m.buildDerived()
	m.fp = fingerprintOf(m)
	return m
}
