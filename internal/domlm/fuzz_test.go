package domlm

import (
	"math"
	"testing"
)

// FuzzScoreBytes pins three score-path invariants for arbitrary input
// bytes: never panic, score ∈ [0, 1], and the zero-allocation byte path
// is bit-identical to the string path.
func FuzzScoreBytes(f *testing.F) {
	f.Add([]byte("paypal.com"))
	f.Add([]byte("PAYPAL.COM."))
	f.Add([]byte(""))
	f.Add([]byte("."))
	f.Add([]byte("xn--pypal-4ve.co.uk"))
	f.Add([]byte("a-b-c-9.\xff\x00weird"))

	m := Train(corpus, DefaultConfig())
	small := Train(corpus[:3], Config{Order: 2, AddK: 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		var s Scratch
		for _, mod := range []*Model{m, small} {
			got := mod.ScoreBytes(b, &s)
			if math.IsNaN(got) || got < 0 || got > 1 {
				t.Fatalf("ScoreBytes(%q) = %v, out of [0,1]", b, got)
			}
			if want := mod.Score(string(b)); got != want {
				t.Fatalf("ScoreBytes(%q) = %v, Score = %v", b, got, want)
			}
		}
	})
}

// FuzzModelDecode pins that Decode tolerates arbitrary bytes: corrupt or
// truncated input yields an error, never a panic, and anything it does
// accept re-encodes canonically and scores within range.
func FuzzModelDecode(f *testing.F) {
	// Seed with a real (tiny, order-2) model plus near-miss corruptions so
	// the fuzzer starts at the interesting boundaries.
	enc := Train([]string{"paypal", "google", "chase"}, Config{Order: 2, AddK: 0.5}).Encode()
	f.Add(enc)
	f.Add(enc[:len(enc)-1])
	f.Add(enc[:headerSize])
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 1
	f.Add(bad)
	f.Add([]byte("SQDLM\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		if got := m.ScoreLabel("paypal"); math.IsNaN(got) || got < 0 || got > 1 {
			t.Fatalf("decoded model scores out of range: %v", got)
		}
		re := m.Encode()
		if len(re) != len(b) {
			t.Fatalf("re-encode changed size: %d -> %d", len(b), len(re))
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encode of accepted model no longer decodes: %v", err)
		}
	})
}
