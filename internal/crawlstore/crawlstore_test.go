package crawlstore

import (
	"bytes"
	"io"
	"testing"

	"squatphi/internal/crawler"
	"squatphi/internal/render"
	"squatphi/internal/simrand"
)

func sampleCapture(domain string, live bool) crawler.Capture {
	cap := crawler.Capture{
		Domain:        domain,
		Live:          live,
		StatusCode:    200,
		RedirectChain: []string{domain, "final.example"},
		FinalHost:     "final.example",
		HTML:          "<html><body><h1>Hello</h1></body></html>",
		Assets:        map[string]string{"/logo.png": "Brand"},
	}
	if live {
		cap.Shot = render.Screenshot(cap.HTML, render.Options{})
	}
	return cap
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	caps := []crawler.Capture{
		sampleCapture("a.com", true),
		sampleCapture("b.com", false),
	}
	for i, c := range caps {
		if err := w.WriteCapture(i, i%2 == 1, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range caps {
		e, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if e.Snapshot != i || e.Mobile != (i%2 == 1) {
			t.Fatalf("entry meta = %+v", e)
		}
		got := e.Capture()
		if got.Domain != want.Domain || got.Live != want.Live || got.HTML != want.HTML ||
			got.FinalHost != want.FinalHost || got.Assets["/logo.png"] != want.Assets["/logo.png"] {
			t.Fatalf("capture mismatch: %+v vs %+v", got, want)
		}
		if want.Shot != nil {
			if got.Shot == nil || got.Shot.W != want.Shot.W || got.Shot.H != want.Shot.H {
				t.Fatal("shot dimensions lost")
			}
			for p := range want.Shot.Pix {
				if got.Shot.Pix[p] != want.Shot.Pix[p] {
					t.Fatal("shot pixels corrupted")
				}
			}
		} else if got.Shot != nil {
			t.Fatal("phantom shot appeared")
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriteResult(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	res := crawler.Result{Domain: "x.com", Web: sampleCapture("x.com", true), Mobile: sampleCapture("x.com", true)}
	if err := w.WriteResult(2, res); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	e1, err := r.Next()
	if err != nil || e1.Mobile {
		t.Fatalf("first entry = %+v, %v", e1, err)
	}
	e2, err := r.Next()
	if err != nil || !e2.Mobile {
		t.Fatalf("second entry = %+v, %v", e2, err)
	}
}

func TestRLERoundTripProperty(t *testing.T) {
	r := simrand.New(15)
	for trial := 0; trial < 50; trial++ {
		w, h := 1+r.Intn(40), 1+r.Intn(40)
		ra := render.NewRaster(w, h)
		for i := range ra.Pix {
			if r.Bool(0.3) {
				ra.Pix[i] = uint8(r.Intn(256))
			}
		}
		got := decodeRLE(w, h, encodeRLE(ra))
		for i := range ra.Pix {
			if got.Pix[i] != ra.Pix[i] {
				t.Fatalf("trial %d: RLE corrupted pixel %d", trial, i)
			}
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("NewReader accepted plain text")
	}
}

func TestCompressionIsEffective(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cap := sampleCapture("compress.example", true)
	raw := len(cap.HTML) + len(cap.Shot.Pix)
	for i := 0; i < 10; i++ {
		if err := w.WriteCapture(0, false, cap); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > raw {
		t.Fatalf("10 captures stored in %d bytes, raw single capture is %d — compression ineffective", buf.Len(), raw)
	}
}

func BenchmarkWriteCapture(b *testing.B) {
	cap := sampleCapture("bench.example", true)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.WriteCapture(0, false, cap)
	}
}
