// Package crawlstore persists crawl captures between pipeline stages and
// across runs. The paper's crawler stores 1.3M pages (HTML + screenshots)
// over four snapshots and re-analyses them offline; this package provides
// the equivalent archive: a gzip-compressed JSON-lines stream with one
// record per (domain, profile) capture, screenshots included as compact
// run-length-encoded bitmaps.
package crawlstore

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"squatphi/internal/crawler"
	"squatphi/internal/render"
)

// Entry is the serialised form of one capture.
type Entry struct {
	Domain        string            `json:"domain"`
	Snapshot      int               `json:"snapshot"`
	Mobile        bool              `json:"mobile"`
	Live          bool              `json:"live"`
	StatusCode    int               `json:"status,omitempty"`
	RedirectChain []string          `json:"redirects,omitempty"`
	FinalHost     string            `json:"final_host,omitempty"`
	HTML          string            `json:"html,omitempty"`
	Assets        map[string]string `json:"assets,omitempty"`
	ShotW         int               `json:"shot_w,omitempty"`
	ShotH         int               `json:"shot_h,omitempty"`
	ShotRLE       []int             `json:"shot_rle,omitempty"`
}

// Writer streams entries to a gzip JSONL archive.
type Writer struct {
	gz  *gzip.Writer
	buf *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w. Callers must Close to flush.
func NewWriter(w io.Writer) *Writer {
	gz := gzip.NewWriter(w)
	buf := bufio.NewWriter(gz)
	return &Writer{gz: gz, buf: buf, enc: json.NewEncoder(buf)}
}

// WriteCapture appends one capture.
func (w *Writer) WriteCapture(snapshot int, mobile bool, cap crawler.Capture) error {
	e := Entry{
		Domain:        cap.Domain,
		Snapshot:      snapshot,
		Mobile:        mobile,
		Live:          cap.Live,
		StatusCode:    cap.StatusCode,
		RedirectChain: cap.RedirectChain,
		FinalHost:     cap.FinalHost,
		HTML:          cap.HTML,
		Assets:        cap.Assets,
	}
	if cap.Shot != nil {
		e.ShotW, e.ShotH = cap.Shot.W, cap.Shot.H
		e.ShotRLE = encodeRLE(cap.Shot)
	}
	return w.enc.Encode(&e)
}

// WriteResult appends both profiles of one crawl result.
func (w *Writer) WriteResult(snapshot int, res crawler.Result) error {
	if err := w.WriteCapture(snapshot, false, res.Web); err != nil {
		return err
	}
	return w.WriteCapture(snapshot, true, res.Mobile)
}

// Close flushes and finalises the gzip stream.
func (w *Writer) Close() error {
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.gz.Close()
}

// Reader streams entries back.
type Reader struct {
	gz *gzip.Reader
	sc *bufio.Scanner
}

// NewReader wraps r.
func NewReader(r io.Reader) (*Reader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("crawlstore: %w", err)
	}
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	return &Reader{gz: gz, sc: sc}, nil
}

// Next returns the next entry, or io.EOF.
func (r *Reader) Next() (*Entry, error) {
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	var e Entry
	if err := json.Unmarshal(r.sc.Bytes(), &e); err != nil {
		return nil, fmt.Errorf("crawlstore: %w", err)
	}
	return &e, nil
}

// Close closes the gzip reader.
func (r *Reader) Close() error { return r.gz.Close() }

// Capture reconstructs the crawler capture from an entry.
func (e *Entry) Capture() crawler.Capture {
	cap := crawler.Capture{
		Domain:        e.Domain,
		Live:          e.Live,
		StatusCode:    e.StatusCode,
		RedirectChain: e.RedirectChain,
		FinalHost:     e.FinalHost,
		HTML:          e.HTML,
		Assets:        e.Assets,
	}
	if e.ShotW > 0 && e.ShotH > 0 {
		cap.Shot = decodeRLE(e.ShotW, e.ShotH, e.ShotRLE)
	}
	return cap
}

// encodeRLE run-length-encodes a raster as alternating (value, count)
// pairs. Page screenshots are dominated by long white runs, so this is
// compact even before gzip.
func encodeRLE(ra *render.Raster) []int {
	if len(ra.Pix) == 0 {
		return nil
	}
	var out []int
	cur := int(ra.Pix[0])
	count := 0
	for _, v := range ra.Pix {
		if int(v) == cur {
			count++
			continue
		}
		out = append(out, cur, count)
		cur, count = int(v), 1
	}
	return append(out, cur, count)
}

func decodeRLE(w, h int, rle []int) *render.Raster {
	ra := render.NewRaster(w, h)
	i := 0
	for p := 0; p+1 < len(rle); p += 2 {
		v, n := uint8(rle[p]), rle[p+1]
		for k := 0; k < n && i < len(ra.Pix); k++ {
			ra.Pix[i] = v
			i++
		}
	}
	return ra
}
