package dnsx

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"squatphi/internal/simrand"
)

func TestPackUnpackQuery(t *testing.T) {
	q := NewQuery(0x1234, "www.example.com", TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 0x1234 || !got.Header.RD || got.Header.QR {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.example.com" ||
		got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Fatalf("question mismatch: %+v", got.Questions)
	}
}

func TestPackUnpackResponse(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 7, QR: true, AA: true, RCode: RCodeSuccess},
		Questions: []Question{{Name: "facebook-login.com", Type: TypeA, Class: ClassIN}},
		Answers: []RR{
			A("facebook-login.com", 300, [4]byte{93, 184, 216, 34}),
			A("facebook-login.com", 300, [4]byte{93, 184, 216, 35}),
		},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.QR || !got.Header.AA || got.Header.ANCount != 2 {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	ip, ok := got.Answers[1].IPv4()
	if !ok || ip != [4]byte{93, 184, 216, 35} {
		t.Fatalf("answer mismatch: %+v", got.Answers)
	}
}

func TestNameCompressionSavesSpace(t *testing.T) {
	// A response repeating the same owner name must compress: the second
	// occurrence should be a 2-byte pointer, not a re-encoded name.
	long := "averyveryverylongsubdomainlabel.example.com"
	m := &Message{
		Header:    Header{ID: 1, QR: true},
		Questions: []Question{{Name: long, Type: TypeA, Class: ClassIN}},
		Answers:   []RR{A(long, 60, [4]byte{1, 2, 3, 4})},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	uncompressedSize := 12 + (len(long)+2+4)*2 + 10 + 4
	if len(wire) >= uncompressedSize {
		t.Fatalf("wire size %d, expected compression below %d", len(wire), uncompressedSize)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != long {
		t.Fatalf("decompressed name = %q", got.Answers[0].Name)
	}
}

func TestPackRejectsOversizeLabels(t *testing.T) {
	q := NewQuery(1, strings.Repeat("a", 64)+".com", TypeA)
	if _, err := q.Pack(); err == nil {
		t.Fatal("Pack accepted a 64-octet label")
	}
	q = NewQuery(1, strings.Repeat("a.", 130)+"com", TypeA)
	if _, err := q.Pack(); err == nil {
		t.Fatal("Pack accepted a >255-octet name")
	}
}

func TestUnpackTruncated(t *testing.T) {
	q := NewQuery(9, "example.org", TypeA)
	wire, _ := q.Pack()
	for cut := 1; cut < len(wire); cut++ {
		if _, err := Unpack(wire[:cut]); err == nil {
			t.Fatalf("Unpack accepted truncation at %d", cut)
		}
	}
}

func TestUnpackPointerLoop(t *testing.T) {
	// Header + a name that is a pointer to itself.
	msg := make([]byte, 12, 16)
	msg[5] = 1 // QDCount = 1
	msg = append(msg, 0xc0, 12, 0, 1, 0, 1)
	if _, err := Unpack(msg); err == nil {
		t.Fatal("Unpack accepted a self-referential compression pointer")
	}
}

func TestUnpackGarbage(t *testing.T) {
	r := simrand.New(99)
	for i := 0; i < 2000; i++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(r.Uint64())
		}
		// Must never panic; errors are fine.
		_, _ = Unpack(buf)
	}
}

func TestRoundTripProperty(t *testing.T) {
	r := simrand.New(5)
	if err := quick.Check(func(seed uint64) bool {
		rr := r.SplitN(seed)
		name := rr.Letters(3+rr.Intn(8)) + "." + rr.Letters(2+rr.Intn(4))
		m := &Message{
			Header:    Header{ID: uint16(rr.Uint64()), QR: rr.Bool(0.5), RD: rr.Bool(0.5), RCode: uint8(rr.Intn(6))},
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
		}
		if rr.Bool(0.7) {
			m.Answers = append(m.Answers, A(name, uint32(rr.Intn(86400)), RandomIP(rr)))
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		if got.Header.ID != m.Header.ID || got.Header.QR != m.Header.QR ||
			got.Header.RCode != m.Header.RCode || len(got.Answers) != len(m.Answers) {
			return false
		}
		if got.Questions[0].Name != name {
			return false
		}
		for i := range m.Answers {
			if !bytes.Equal(got.Answers[i].RData, m.Answers[i].RData) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRootName(t *testing.T) {
	m := &Message{Header: Header{ID: 2}, Questions: []Question{{Name: ".", Type: TypeNS, Class: ClassIN}}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "." {
		t.Fatalf("root name round-trip = %q", got.Questions[0].Name)
	}
}

func BenchmarkPack(b *testing.B) {
	m := NewQuery(1, "www.facebook-login.com", TypeA)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = m.Pack()
	}
}

func BenchmarkUnpack(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, QR: true},
		Questions: []Question{{Name: "www.facebook-login.com", Type: TypeA, Class: ClassIN}},
		Answers:   []RR{A("www.facebook-login.com", 300, [4]byte{1, 2, 3, 4})},
	}
	wire, _ := m.Pack()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Unpack(wire)
	}
}
