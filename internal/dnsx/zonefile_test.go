package dnsx

import (
	"bytes"
	"strings"
	"testing"
)

const sampleZone = `; squatting registrations observed 2018-04-01
$ORIGIN example.com.
$TTL 300
@	IN	A	93.184.216.34
www	600	IN	A	93.184.216.35
	IN	TXT	"v=spf1 -all; not a comment"
mail	IN	CNAME	www
ns1.provider.net.	IN	A	10.1.2.3
$ORIGIN squat.net.
paypal-login	IN	A	203.0.113.9
`

func TestParseZone(t *testing.T) {
	recs, err := ParseZone(strings.NewReader(sampleZone), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("parsed %d records, want 6: %+v", len(recs), recs)
	}
	if recs[0].Name != "example.com" || recs[0].Type != TypeA || recs[0].Data != "93.184.216.34" || recs[0].TTL != 300 {
		t.Errorf("@ record = %+v", recs[0])
	}
	if recs[1].Name != "www.example.com" || recs[1].TTL != 600 {
		t.Errorf("www record = %+v", recs[1])
	}
	// Blank owner inherits "www".
	if recs[2].Name != "www.example.com" || recs[2].Type != TypeTXT || !strings.Contains(recs[2].Data, "not a comment") {
		t.Errorf("TXT continuation = %+v", recs[2])
	}
	if recs[3].Type != TypeCNAME || recs[3].Data != "www.example.com" {
		t.Errorf("CNAME = %+v", recs[3])
	}
	if recs[4].Name != "ns1.provider.net" {
		t.Errorf("absolute owner = %+v", recs[4])
	}
	if recs[5].Name != "paypal-login.squat.net" {
		t.Errorf("post-$ORIGIN record = %+v", recs[5])
	}
}

func TestParseZoneErrors(t *testing.T) {
	cases := []string{
		"$ORIGIN\n",
		"$TTL abc\n",
		"a.com. IN A 999.1.1.1\n",
		"a.com. IN BOGUS data\n",
		"a.com. IN A\n",
		"\tIN A 1.2.3.4\n", // continuation with no previous owner
	}
	for _, in := range cases {
		if _, err := ParseZone(strings.NewReader(in), ""); err == nil {
			t.Errorf("ParseZone(%q) succeeded, want error", in)
		}
	}
}

func TestZoneRoundTrip(t *testing.T) {
	recs, err := ParseZone(strings.NewReader(sampleZone), "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteZone(&buf, "example.com", recs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseZone(bytes.NewReader(buf.Bytes()), "")
	if err != nil {
		t.Fatalf("reparse: %v\nzone:\n%s", err, buf.String())
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d != %d records", len(got), len(recs))
	}
	index := map[string]ZoneRecord{}
	for _, r := range got {
		index[r.Name+"|"+typeToString(r.Type)] = r
	}
	for _, want := range recs {
		gotRec, ok := index[want.Name+"|"+typeToString(want.Type)]
		if !ok {
			t.Fatalf("record %s/%s lost in round trip", want.Name, typeToString(want.Type))
		}
		if gotRec.Data != want.Data || gotRec.TTL != want.TTL {
			t.Errorf("record %s: got %+v want %+v", want.Name, gotRec, want)
		}
	}
}

func TestStoreFromZoneAndBack(t *testing.T) {
	recs, err := ParseZone(strings.NewReader(sampleZone), "")
	if err != nil {
		t.Fatal(err)
	}
	store, err := StoreFromZone(recs)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 4 { // four A records
		t.Fatalf("store len = %d, want 4", store.Len())
	}
	ip, ok := store.Lookup("paypal-login.squat.net")
	if !ok || ip != [4]byte{203, 0, 113, 9} {
		t.Fatalf("lookup = %v, %v", ip, ok)
	}
	back := ZoneFromStore(store, 120)
	if len(back) != 4 {
		t.Fatalf("ZoneFromStore = %d records", len(back))
	}
	for _, r := range back {
		if r.Type != TypeA || r.TTL != 120 {
			t.Fatalf("bad record %+v", r)
		}
	}
}

func TestZoneInteropWithSnapshotGenerator(t *testing.T) {
	// A generated snapshot must survive the zone format.
	s := GenerateSnapshot(SnapshotSpec{Planted: []string{"faceb00k.pw"}, NoiseRecords: 200, Seed: 4})
	var buf bytes.Buffer
	if err := WriteZone(&buf, "", ZoneFromStore(s, 300)); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseZone(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := StoreFromZone(recs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("zone interop lost records: %d != %d", got.Len(), s.Len())
	}
	if _, ok := got.Lookup("faceb00k.pw"); !ok {
		t.Fatal("planted domain lost")
	}
}

func TestWriteZoneRelativeNames(t *testing.T) {
	var buf bytes.Buffer
	err := WriteZone(&buf, "example.com", []ZoneRecord{
		{Name: "example.com", TTL: 60, Type: TypeA, Class: ClassIN, Data: "1.2.3.4"},
		{Name: "www.example.com", TTL: 60, Type: TypeA, Class: ClassIN, Data: "1.2.3.5"},
		{Name: "other.net", TTL: 60, Type: TypeA, Class: ClassIN, Data: "1.2.3.6"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@\t") {
		t.Error("origin name not abbreviated to @")
	}
	if !strings.Contains(out, "www\t") {
		t.Error("in-origin name not relativised")
	}
	if !strings.Contains(out, "other.net.\t") {
		t.Error("out-of-origin name not absolute")
	}
}

func BenchmarkParseZone(b *testing.B) {
	s := GenerateSnapshot(SnapshotSpec{NoiseRecords: 1000, Seed: 9})
	var buf bytes.Buffer
	_ = WriteZone(&buf, "", ZoneFromStore(s, 300))
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ParseZone(bytes.NewReader(data), "")
	}
}
