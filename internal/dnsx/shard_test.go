package dnsx

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"squatphi/internal/simrand"
)

// TestShardedStoreInsertionOrder checks that global insertion order
// survives sharding: Domains and Range iterate in the order records were
// added, whatever shard each domain hashed to.
func TestShardedStoreInsertionOrder(t *testing.T) {
	for _, shards := range []int{1, 4, 32} {
		s := NewShardedStore(shards)
		var want []string
		r := simrand.New(11)
		for i := 0; i < 500; i++ {
			d := fmt.Sprintf("%s-%d.com", r.Letters(6), i)
			want = append(want, d)
			s.Add(d, RandomIP(r))
		}
		if got := s.Domains(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: Domains() broke insertion order (got %d, first diff near %q)", shards, len(got), firstDiff(got, want))
		}
	}
}

func firstDiff(a, b []string) string {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return a[i]
		}
	}
	return ""
}

// TestShardLayoutInvariance checks that the shard count never changes the
// store's observable contents or order.
func TestShardLayoutInvariance(t *testing.T) {
	build := func(shards int) *Store {
		s := NewShardedStore(shards)
		r := simrand.New(7)
		for i := 0; i < 300; i++ {
			s.Add(r.Letters(8)+".net", RandomIP(r))
		}
		return s
	}
	a, b := build(1), build(64)
	if !reflect.DeepEqual(a.Domains(), b.Domains()) {
		t.Fatal("iteration order depends on shard count")
	}
}

// TestParallelRangeMatchesRange checks that ParallelRange visits exactly
// the record set of Range, at several worker counts.
func TestParallelRangeMatchesRange(t *testing.T) {
	s := GenerateSnapshot(SnapshotSpec{Planted: []string{"paypal-login.com"}, NoiseRecords: 2000, Seed: 3})
	want := map[string][4]byte{}
	s.Range(func(r Record) bool {
		want[r.Domain] = r.IP
		return true
	})
	for _, workers := range []int{1, 2, 8} {
		var mu sync.Mutex
		got := map[string][4]byte{}
		s.ParallelRange(workers, func(r Record) bool {
			mu.Lock()
			got[r.Domain] = r.IP
			mu.Unlock()
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: ParallelRange visited %d records, Range %d", workers, len(got), len(want))
		}
	}
}

// TestParallelRangeStops checks that a false return terminates the whole
// iteration without visiting every record.
func TestParallelRangeStops(t *testing.T) {
	s := GenerateSnapshot(SnapshotSpec{NoiseRecords: 5000, Seed: 4})
	var mu sync.Mutex
	visited := 0
	s.ParallelRange(4, func(Record) bool {
		mu.Lock()
		visited++
		mu.Unlock()
		return false
	})
	if visited == 0 || visited >= s.Len() {
		t.Fatalf("stop after first record visited %d of %d", visited, s.Len())
	}
}

// TestGenerateSnapshotWorkerInvariance is the determinism contract of the
// parallel generator: the same spec yields byte-identical snapshots (same
// records, same IPs, same order) at any worker count.
func TestGenerateSnapshotWorkerInvariance(t *testing.T) {
	base := SnapshotSpec{Planted: []string{"faceb00k.com", "paypal-cash.net"}, NoiseRecords: 3000, Seed: 99}
	specs := []SnapshotSpec{base, base, base}
	specs[0].Workers = 1
	specs[1].Workers = 3
	specs[2].Workers = 16
	ref := GenerateSnapshot(specs[0])
	refDomains := ref.Domains()
	for _, spec := range specs[1:] {
		s := GenerateSnapshot(spec)
		if !reflect.DeepEqual(s.Domains(), refDomains) {
			t.Fatalf("workers=%d: generated domain order differs from workers=1", spec.Workers)
		}
		s.Range(func(r Record) bool {
			ip, ok := ref.Lookup(r.Domain)
			if !ok || ip != r.IP {
				t.Fatalf("workers=%d: record %s differs from workers=1", spec.Workers, r.Domain)
			}
			return true
		})
	}
	if refDomains[0] != "faceb00k.com" || refDomains[1] != "paypal-cash.net" {
		t.Fatalf("planted domains not first in insertion order: %v", refDomains[:2])
	}
}

// TestStoreAddAfterGenerate checks that public Adds after generation land
// at the end of insertion order (the generator reserves its sequence range).
func TestStoreAddAfterGenerate(t *testing.T) {
	s := GenerateSnapshot(SnapshotSpec{NoiseRecords: 100, Seed: 1})
	s.Add("zzz-late.com", [4]byte{9, 9, 9, 9})
	d := s.Domains()
	if d[len(d)-1] != "zzz-late.com" {
		t.Fatalf("late Add not last in order: %q", d[len(d)-1])
	}
}

// TestStoreConcurrentAccess exercises Add/Lookup/ParallelRange/Len/
// WriteSnapshot concurrently; run under -race it is the store's
// thread-safety proof.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := simrand.New(uint64(g))
			for i := 0; i < 300; i++ {
				s.Add(fmt.Sprintf("w%d-%s.com", g, r.Letters(6)), RandomIP(r))
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := simrand.New(uint64(100 + g))
			for i := 0; i < 300; i++ {
				s.Lookup(r.Letters(6) + ".com")
				_ = s.Len()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			var n atomic.Int64
			s.ParallelRange(3, func(Record) bool {
				n.Add(1)
				return true
			})
		}
	}()
	wg.Wait()
	if s.Len() != 4*300 {
		// Collisions are possible but astronomically unlikely with the
		// per-writer prefixes; equality is the expected outcome.
		t.Fatalf("Len = %d after concurrent adds, want %d", s.Len(), 4*300)
	}
}
