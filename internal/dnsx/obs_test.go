package dnsx

import (
	"context"
	"net"
	"testing"
	"time"

	"squatphi/internal/obs"
)

// TestServerProbeMetrics checks the DNS-side instrumentation end to end:
// server query/NXDOMAIN counters and prober sent/resolved/RTT accounting
// through one probe round against a shared registry.
func TestServerProbeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewStore()
	store.Add("paypal-cash.com", [4]byte{8, 8, 8, 8})
	srv, err := NewServerObs(store, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := &Prober{Addr: srv.Addr(), Timeout: time.Second, Parallelism: 2, Metrics: reg}
	recs, err := p.Probe(context.Background(), []string{"paypal-cash.com", "missing.example"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("resolved %d, want 1", len(recs))
	}

	snap := reg.Snapshot()
	if got := snap.Counters["dnsx.server.queries"]; got != 2 {
		t.Errorf("server queries = %d, want 2", got)
	}
	if got := snap.Counters["dnsx.server.nxdomain"]; got != 1 {
		t.Errorf("server nxdomain = %d, want 1", got)
	}
	if got := snap.Counters["dnsx.probe.sent"]; got != 2 {
		t.Errorf("probe sent = %d, want 2", got)
	}
	if got := snap.Counters["dnsx.probe.resolved"]; got != 1 {
		t.Errorf("probe resolved = %d, want 1", got)
	}
	if got := snap.Counters["dnsx.probe.unresolved"]; got != 1 {
		t.Errorf("probe unresolved = %d, want 1", got)
	}
	if got := snap.Histograms["dnsx.probe.rtt_ms"].Count; got != 2 {
		t.Errorf("probe RTT observations = %d, want 2", got)
	}
	if got := snap.Histograms["dnsx.server.handle_us"].Count; got != 2 {
		t.Errorf("server handle observations = %d, want 2", got)
	}
}

// TestServerMalformedCounter sends a garbage datagram followed by a valid
// query on the same socket. The server handles datagrams sequentially, so
// once the valid query's reply arrives the garbage has been processed and
// the malformed counter must have ticked — no polling required.
func TestServerMalformedCounter(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServerObs(NewStore(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}

	query, err := NewQuery(7, "sync.test", TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(query); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("no reply to the flushing query: %v", err)
	}

	if got := reg.Counter("dnsx.server.malformed").Value(); got != 1 {
		t.Fatalf("malformed counter = %d after reply to later query, want 1", got)
	}
}
