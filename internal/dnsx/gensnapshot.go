package dnsx

import (
	"squatphi/internal/simrand"
)

// SnapshotSpec configures synthetic snapshot generation. The generator
// plays the role of the global DNS population that ActiveDNS sampled:
// planted domains (brand sites, squatting registrations from the web-world
// model) are mixed into a sea of unrelated background registrations.
type SnapshotSpec struct {
	// Planted domains are inserted verbatim (deduplicated against noise).
	Planted []string
	// NoiseRecords is the number of unrelated background domains.
	NoiseRecords int
	// Seed drives all randomness.
	Seed uint64
}

// noiseTLDs weights the TLD mix of background registrations.
var noiseTLDs = []string{
	"com", "com", "com", "com", "net", "net", "org", "org",
	"info", "de", "cn", "uk", "ru", "nl", "io", "co", "biz", "xyz",
}

// noiseWords seeds plausible multi-part background domains so the noise is
// not pure gibberish (real zone files contain dictionary compounds that can
// collide with combo rules; the matcher must not fire on them).
var noiseWords = []string{
	"cloud", "shop", "blue", "media", "tech", "data", "home", "world",
	"solutions", "digital", "group", "labs", "consulting", "travel",
	"garden", "photo", "design", "market", "fresh", "smart", "global",
	"river", "stone", "craft", "studio", "prime", "rapid", "nova",
}

// GenerateSnapshot builds a Store per spec. Generation is deterministic for
// a given spec. IPs are drawn uniformly from non-reserved space.
func GenerateSnapshot(spec SnapshotSpec) *Store {
	r := simrand.New(spec.Seed).Split("dns-snapshot")
	s := NewStore()
	for _, d := range spec.Planted {
		s.Add(d, RandomIP(r))
	}
	for i := 0; i < spec.NoiseRecords; i++ {
		s.Add(noiseDomain(r), RandomIP(r))
	}
	return s
}

// noiseDomain mints one background domain name.
func noiseDomain(r *simrand.RNG) string {
	tld := simrand.Pick(r, noiseTLDs)
	switch r.Intn(4) {
	case 0: // random letters
		return r.Letters(4+r.Intn(10)) + "." + tld
	case 1: // word + letters
		return simrand.Pick(r, noiseWords) + r.Letters(2+r.Intn(5)) + "." + tld
	case 2: // word-word compound with hyphen
		return simrand.Pick(r, noiseWords) + "-" + simrand.Pick(r, noiseWords) + "." + tld
	default: // two words concatenated
		return simrand.Pick(r, noiseWords) + simrand.Pick(r, noiseWords) + "." + tld
	}
}

// RandomIP draws a plausible public IPv4 address (avoids 0/8, 10/8,
// 127/8, 169.254/16, 172.16/12, 192.168/16, 224/4 and above).
func RandomIP(r *simrand.RNG) [4]byte {
	for {
		ip := [4]byte{byte(1 + r.Intn(222)), byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(254))}
		switch {
		case ip[0] == 10 || ip[0] == 127:
			continue
		case ip[0] == 172 && ip[1] >= 16 && ip[1] < 32:
			continue
		case ip[0] == 192 && ip[1] == 168:
			continue
		case ip[0] == 169 && ip[1] == 254:
			continue
		}
		return ip
	}
}
