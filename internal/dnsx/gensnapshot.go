package dnsx

import (
	"runtime"
	"sync"
	"sync/atomic"

	"squatphi/internal/domlm"
	"squatphi/internal/simrand"
)

// SnapshotSpec configures synthetic snapshot generation. The generator
// plays the role of the global DNS population that ActiveDNS sampled:
// planted domains (brand sites, squatting registrations from the web-world
// model) are mixed into a sea of unrelated background registrations.
type SnapshotSpec struct {
	// Planted domains are inserted verbatim (deduplicated against noise).
	Planted []string
	// NoiseRecords is the number of unrelated background domains.
	NoiseRecords int
	// BrandNoise, when non-nil, mixes in BrandNoiseRecords brand-adjacent
	// hard negatives: benign registrations sampled from the brand-language
	// model but accepted only below BrandNoiseMax, so they crowd the score
	// region just under the generated-squat promotion threshold without
	// crossing it. They stress the matcher+model precision measurement the
	// way organic brand-flavoured registrations do in a real zone file.
	BrandNoise *domlm.Model
	// BrandNoiseRecords is the number of brand-noise records (0 = none).
	BrandNoiseRecords int
	// BrandNoiseMax is the exclusive score ceiling for brand-noise labels;
	// <= 0 means domlm.DefaultThreshold - 0.02.
	BrandNoiseMax float64
	// Seed drives all randomness.
	Seed uint64
	// Workers is the generation parallelism (<= 0 means GOMAXPROCS). The
	// generated snapshot is identical for every Workers value: noise is
	// drawn from genStripes fixed sub-streams regardless of pool width.
	Workers int
	// Shards is the shard count of the generated store (<= 0 means
	// DefaultShards). Shard count never affects the store's contents or
	// iteration order; more shards buy finer-grained skipping for
	// longitudinal delta scans (internal/deltascan), at the price of a
	// wider K-way merge in serial Range.
	Shards int
}

// genStripes is the number of independent noise sub-streams. It is a fixed
// constant — not the worker count — so that a spec's output never depends
// on the machine or pool width that generated it.
const genStripes = 64

// noiseTLDs weights the TLD mix of background registrations.
var noiseTLDs = []string{
	"com", "com", "com", "com", "net", "net", "org", "org",
	"info", "de", "cn", "uk", "ru", "nl", "io", "co", "biz", "xyz",
}

// noiseWords seeds plausible multi-part background domains so the noise is
// not pure gibberish (real zone files contain dictionary compounds that can
// collide with combo rules; the matcher must not fire on them).
var noiseWords = []string{
	"cloud", "shop", "blue", "media", "tech", "data", "home", "world",
	"solutions", "digital", "group", "labs", "consulting", "travel",
	"garden", "photo", "design", "market", "fresh", "smart", "global",
	"river", "stone", "craft", "studio", "prime", "rapid", "nova",
}

// GenerateSnapshot builds a Store per spec. Generation is deterministic for
// a given spec (including across Workers values and shard layouts): every
// record carries a spec-defined sequence number, so insertion order and
// collision resolution match the serial semantics exactly. IPs are drawn
// uniformly from non-reserved space.
func GenerateSnapshot(spec SnapshotSpec) *Store {
	base := simrand.New(spec.Seed).Split("dns-snapshot")
	s := NewShardedStore(spec.Shards)

	// Planted domains occupy sequence numbers [0, len(Planted)): they come
	// first in insertion order, exactly as the serial generator inserted
	// them. The planted set is small relative to the noise, so it is added
	// on the calling goroutine from its own sub-stream.
	plantedRNG := base.Split("planted")
	for i, d := range spec.Planted {
		s.addAt(uint64(i), Normalize(d), RandomIP(plantedRNG))
	}

	// Brand-noise hard negatives sit between the planted set and the bulk
	// noise in sequence order. Like the planted set they are generated on
	// the calling goroutine from their own sub-stream: the population is
	// small, and rejection sampling consumes a data-dependent number of
	// draws that striping could not keep worker-invariant.
	bnRNG := base.Split("brandnoise")
	bnCount := spec.brandNoiseCount()
	bnMax := spec.brandNoiseMax()
	for i := 0; i < bnCount; i++ {
		s.addAt(uint64(len(spec.Planted)+i), brandNoiseDomain(bnRNG, spec.BrandNoise, bnMax), RandomIP(bnRNG))
	}

	// Noise records are striped into genStripes fixed sub-streams; workers
	// claim whole stripes. Record i keeps global sequence number
	// len(Planted)+brandNoise+i whichever worker generates it.
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > genStripes {
		workers = genStripes
	}
	noiseRNG := base.Split("noise")
	plantedCount := len(spec.Planted) + bnCount
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := int(next.Add(1)) - 1
				if g >= genStripes {
					return
				}
				r := noiseRNG.SplitN(uint64(g))
				start := g * spec.NoiseRecords / genStripes
				end := (g + 1) * spec.NoiseRecords / genStripes
				for i := start; i < end; i++ {
					s.addAt(uint64(plantedCount+i), noiseDomain(r), RandomIP(r))
				}
			}
		}()
	}
	wg.Wait()

	// Subsequent public Adds continue after the generated range.
	s.seq.Store(uint64(plantedCount + spec.NoiseRecords))
	return s
}

// StreamSnapshot delivers the exact record population GenerateSnapshot
// would build — same spec, same RNG sub-streams, same order (planted
// first, then the noise stripes in stripe order) — to fn, one record at a
// time, without materialising a Store. It exists for scan-scale snapshot
// writing (internal/snapfmt), where holding hundreds of millions of
// records as a map-backed store is the thing being avoided.
//
// Unlike the Store path, nothing deduplicates here: a domain the noise
// streams mint twice is delivered twice (a Store built from this stream
// by Add collapses them, reproducing GenerateSnapshot exactly). Domains
// are already normalised. fn is called on the calling goroutine;
// returning false stops the stream.
func StreamSnapshot(spec SnapshotSpec, fn func(domain string, ip [4]byte) bool) {
	base := simrand.New(spec.Seed).Split("dns-snapshot")
	plantedRNG := base.Split("planted")
	for _, d := range spec.Planted {
		if !fn(Normalize(d), RandomIP(plantedRNG)) {
			return
		}
	}
	bnRNG := base.Split("brandnoise")
	bnMax := spec.brandNoiseMax()
	for i := 0; i < spec.brandNoiseCount(); i++ {
		if !fn(brandNoiseDomain(bnRNG, spec.BrandNoise, bnMax), RandomIP(bnRNG)) {
			return
		}
	}
	noiseRNG := base.Split("noise")
	for g := 0; g < genStripes; g++ {
		r := noiseRNG.SplitN(uint64(g))
		start := g * spec.NoiseRecords / genStripes
		end := (g + 1) * spec.NoiseRecords / genStripes
		for i := start; i < end; i++ {
			if !fn(noiseDomain(r), RandomIP(r)) {
				return
			}
		}
	}
}

// brandNoiseCount returns the effective brand-noise population size.
func (spec SnapshotSpec) brandNoiseCount() int {
	if spec.BrandNoise == nil || spec.BrandNoiseRecords <= 0 {
		return 0
	}
	return spec.BrandNoiseRecords
}

// brandNoiseMax returns the effective brand-noise score ceiling.
func (spec SnapshotSpec) brandNoiseMax() float64 {
	if spec.BrandNoiseMax > 0 {
		return spec.BrandNoiseMax
	}
	return domlm.DefaultThreshold - 0.02
}

// brandNoiseDomain mints one brand-adjacent hard negative: a model sample
// that scores below max. Rejection is bounded — a model whose every
// sample clears max (tiny training sets) falls back to ordinary noise
// rather than looping.
func brandNoiseDomain(r *simrand.RNG, m *domlm.Model, max float64) string {
	for try := 0; try < 64; try++ {
		label := m.SampleLabel(r)
		if m.ScoreLabel(label) >= max {
			continue
		}
		return label + "." + simrand.Pick(r, noiseTLDs)
	}
	return noiseDomain(r)
}

// noiseDomain mints one background domain name (already normalised:
// lowercase, no trailing dot).
func noiseDomain(r *simrand.RNG) string {
	tld := simrand.Pick(r, noiseTLDs)
	switch r.Intn(4) {
	case 0: // random letters
		return r.Letters(4+r.Intn(10)) + "." + tld
	case 1: // word + letters
		return simrand.Pick(r, noiseWords) + r.Letters(2+r.Intn(5)) + "." + tld
	case 2: // word-word compound with hyphen
		return simrand.Pick(r, noiseWords) + "-" + simrand.Pick(r, noiseWords) + "." + tld
	default: // two words concatenated
		return simrand.Pick(r, noiseWords) + simrand.Pick(r, noiseWords) + "." + tld
	}
}

// RandomIP draws a plausible public IPv4 address (avoids 0/8, 10/8,
// 127/8, 169.254/16, 172.16/12, 192.168/16, 224/4 and above).
func RandomIP(r *simrand.RNG) [4]byte {
	for {
		ip := [4]byte{byte(1 + r.Intn(222)), byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(254))}
		switch {
		case ip[0] == 10 || ip[0] == 127:
			continue
		case ip[0] == 172 && ip[1] >= 16 && ip[1] < 32:
			continue
		case ip[0] == 192 && ip[1] == 168:
			continue
		case ip[0] == 169 && ip[1] == 254:
			continue
		}
		return ip
	}
}
