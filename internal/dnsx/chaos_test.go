package dnsx

import (
	"context"
	"net"
	"syscall"
	"testing"
	"time"

	"squatphi/internal/faultx"
	"squatphi/internal/obs"
	"squatphi/internal/retry"
)

// chaosDomains is the probe workload of the fault-injection tests. Each
// domain is planted in the store, so with no faults every probe resolves.
var chaosDomains = []string{
	"paypa1-login.com", "faceb00k-secure.net", "app1e-id.org",
	"amazom-verify.com", "g00gle-docs.net", "netfl1x-billing.org",
	"chase-onl1ne.com", "dropb0x-share.net",
}

func chaosStore() *Store {
	st := NewStore()
	for i, d := range chaosDomains {
		st.Add(d, [4]byte{10, 1, 2, byte(i + 1)})
	}
	return st
}

// probeCounts is the deterministic slice of a probe run's counter
// snapshot: prober accounting plus injected-fault tallies. Latency
// histograms are deliberately excluded.
type probeCounts struct {
	sent, retries, timeouts, neterrors, stale int64
	resolved, unresolved                      int64
	injDrops, injStale                        int64
}

func snapshotProbeCounts(reg *obs.Registry) probeCounts {
	s := reg.Snapshot()
	return probeCounts{
		sent:       s.Counters["dnsx.probe.sent"],
		retries:    s.Counters["dnsx.probe.retries"],
		timeouts:   s.Counters["dnsx.probe.timeouts"],
		neterrors:  s.Counters["dnsx.probe.neterrors"],
		stale:      s.Counters["dnsx.probe.stale_discarded"],
		resolved:   s.Counters["dnsx.probe.resolved"],
		unresolved: s.Counters["dnsx.probe.unresolved"],
		injDrops:   s.Counters["faultx.udp.drop"],
		injStale:   s.Counters["faultx.udp.stale_id"],
	}
}

// runChaosProbe probes chaosDomains against a live server through a
// fault-injecting UDP conn and returns the resolved records plus the
// counter snapshot. Backoff is disabled so runs are fast; budget and
// breaker come from pol (zero value: both off).
func runChaosProbe(t *testing.T, f faultx.Faults, parallelism, proberRetries int, pol retry.Policy) ([]Record, probeCounts) {
	t.Helper()
	srv, err := NewServer(chaosStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	if pol.BaseDelay == 0 {
		pol.BaseDelay = -1 // zero-delay retries keep the chaos runs fast
	}
	p := &Prober{
		Addr:        srv.Addr(),
		Timeout:     80 * time.Millisecond,
		Retries:     proberRetries,
		Parallelism: parallelism,
		Policy:      pol,
		Metrics:     reg,
		Dial: func(addr string) (net.Conn, error) {
			raw, err := net.Dial("udp", addr)
			if err != nil {
				return nil, err
			}
			return faultx.WrapConn(raw, f, nil, reg), nil
		},
	}
	recs, err := p.Probe(context.Background(), chaosDomains)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	return recs, snapshotProbeCounts(reg)
}

// TestProbeChaosDeterministicAcrossParallelism drives the prober through
// a probabilistic drop mix at several seeds and asserts the final counter
// snapshot is identical at any worker count: fault decisions are pure
// functions of (key, attempt), and each domain's attempt sequence lives
// on one worker, so scheduling cannot leak into the counters.
func TestProbeChaosDeterministicAcrossParallelism(t *testing.T) {
	n := int64(len(chaosDomains))
	for _, seed := range []uint64{1, 7, 42} {
		f := faultx.Faults{Seed: seed, DropProb: 0.5}
		_, base := runChaosProbe(t, f, 1, 0, retry.Policy{})
		for _, par := range []int{4, 8} {
			if _, got := runChaosProbe(t, f, par, 0, retry.Policy{}); got != base {
				t.Errorf("seed %d: counters at parallelism %d = %+v, want %+v (serial)", seed, par, got, base)
			}
		}
		if base.resolved+base.unresolved != n {
			t.Errorf("seed %d: resolved %d + unresolved %d != %d domains", seed, base.resolved, base.unresolved, n)
		}
		if base.sent != n+base.retries {
			t.Errorf("seed %d: sent %d != domains %d + retries %d", seed, base.sent, n, base.retries)
		}
		if base.timeouts != base.injDrops {
			t.Errorf("seed %d: timeouts %d != injected drops %d", seed, base.timeouts, base.injDrops)
		}
	}
}

// TestProbeDropThenResolve caps the drop fault at one per query: every
// first send is swallowed, every retry lands, so the exact counter values
// are computable — and identical at any parallelism.
func TestProbeDropThenResolve(t *testing.T) {
	n := int64(len(chaosDomains))
	f := faultx.Faults{Seed: 3, DropProb: 1, MaxFaultsPerKey: 1}
	for _, par := range []int{1, 4} {
		recs, c := runChaosProbe(t, f, par, 0, retry.Policy{})
		if int64(len(recs)) != n || c.resolved != n || c.unresolved != 0 {
			t.Fatalf("parallelism %d: resolved %d/%d (counters %+v)", par, len(recs), n, c)
		}
		if c.sent != 2*n || c.retries != n || c.timeouts != n || c.injDrops != n {
			t.Errorf("parallelism %d: counters %+v, want sent=%d retries=%d timeouts=%d drops=%d",
				par, c, 2*n, n, n, n)
		}
	}
}

// TestProbeStaleIDDoesNotBurnAttempt is the regression test for the
// prober re-read fix: a stale (mismatched-ID) datagram must be discarded
// and the read continued within the attempt's remaining deadline. The old
// loop fell through to the retry loop, re-sending the query and burning
// an attempt per stale answer.
func TestProbeStaleIDDoesNotBurnAttempt(t *testing.T) {
	n := int64(len(chaosDomains))
	recs, c := runChaosProbe(t, faultx.Faults{Seed: 5, StaleIDProb: 1}, 4, 0, retry.Policy{})
	if int64(len(recs)) != n {
		t.Fatalf("resolved %d/%d under stale-ID replay", len(recs), n)
	}
	if c.retries != 0 || c.timeouts != 0 {
		t.Errorf("stale replays burned attempts: retries=%d timeouts=%d, want 0/0", c.retries, c.timeouts)
	}
	if c.sent != n {
		t.Errorf("sent = %d, want %d (one send per domain)", c.sent, n)
	}
	if c.stale != n || c.injStale != n {
		t.Errorf("stale discards = %d (injected %d), want %d", c.stale, c.injStale, n)
	}
}

// TestProbeRetriesConvention is the regression test for the retry-count
// convention: negative disables retries entirely (the old prober treated
// any n <= 0 as "use the default of 2").
func TestProbeRetriesConvention(t *testing.T) {
	n := int64(len(chaosDomains))
	_, c := runChaosProbe(t, faultx.Faults{Seed: 9, DropProb: 1}, 2, -1, retry.Policy{})
	if c.sent != n || c.retries != 0 {
		t.Errorf("retries=-1: sent=%d retries=%d, want %d/0", c.sent, c.retries, n)
	}
	if c.resolved != 0 || c.unresolved != n {
		t.Errorf("retries=-1 under total drop: resolved=%d unresolved=%d", c.resolved, c.unresolved)
	}
}

// TestProbeBreakerOpensAndFastFails drops every datagram with the breaker
// armed at two consecutive failures: the first domain's two attempts open
// the circuit, and every remaining domain (and the first domain's third
// attempt) fast-fails without touching the wire.
func TestProbeBreakerOpensAndFastFails(t *testing.T) {
	srv, err := NewServer(chaosStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	f := faultx.Faults{Seed: 13, DropProb: 1}
	p := &Prober{
		Addr:        srv.Addr(),
		Timeout:     60 * time.Millisecond,
		Parallelism: 1, // breaker state is shared; serial keeps the trace exact
		Policy: retry.Policy{
			BaseDelay:        -1,
			BreakerThreshold: 2,
			BreakerCooldown:  time.Hour,
		},
		Metrics: reg,
		Dial: func(addr string) (net.Conn, error) {
			raw, err := net.Dial("udp", addr)
			if err != nil {
				return nil, err
			}
			return faultx.WrapConn(raw, f, nil, reg), nil
		},
	}
	recs, err := p.Probe(context.Background(), chaosDomains)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("resolved %d records through an open breaker", len(recs))
	}

	n := int64(len(chaosDomains))
	c := snapshotProbeCounts(reg)
	s := reg.Snapshot()
	if c.sent != 2 || c.timeouts != 2 {
		t.Errorf("wire attempts = %d (timeouts %d), want 2 before the circuit opened", c.sent, c.timeouts)
	}
	if got := s.Counters["dnsx.probe.breaker.opens"]; got != 1 {
		t.Errorf("breaker opens = %d, want 1", got)
	}
	// Rejections: the first domain's post-open retry plus every other domain.
	if got := s.Counters["dnsx.probe.breaker.rejected"]; got != n {
		t.Errorf("breaker rejections = %d, want %d", got, n)
	}
	if c.unresolved != n {
		t.Errorf("unresolved = %d, want %d", c.unresolved, n)
	}
	if st := p.Retrier().State(srv.Addr()); st != retry.Open {
		t.Errorf("breaker state = %v, want open", st)
	}
}

// refusedConn is a net.Conn whose reads fail with ECONNREFUSED, the
// kernel's answer when a UDP destination port is closed.
type refusedConn struct{}

func (refusedConn) Read(b []byte) (int, error) {
	return 0, &net.OpError{Op: "read", Net: "udp", Err: syscall.ECONNREFUSED}
}
func (refusedConn) Write(b []byte) (int, error) { return len(b), nil }
func (refusedConn) Close() error                { return nil }
func (refusedConn) LocalAddr() net.Addr         { return &net.UDPAddr{} }
func (refusedConn) RemoteAddr() net.Addr        { return &net.UDPAddr{} }
func (refusedConn) SetDeadline(time.Time) error { return nil }
func (refusedConn) SetReadDeadline(time.Time) error {
	return nil
}
func (refusedConn) SetWriteDeadline(time.Time) error { return nil }

// TestProbeClassifiesConnRefused is the regression test for read-error
// classification: a connection-level error (ECONNREFUSED from a dead
// resolver) must be accounted as a network error, not a timeout — the old
// prober counted every failed read as a timeout.
func TestProbeClassifiesConnRefused(t *testing.T) {
	reg := obs.NewRegistry()
	p := &Prober{
		Addr:        "127.0.0.1:9",
		Retries:     -1,
		Parallelism: 2,
		Metrics:     reg,
		Dial:        func(string) (net.Conn, error) { return refusedConn{}, nil },
	}
	domains := chaosDomains[:3]
	recs, err := p.Probe(context.Background(), domains)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("resolved %d records from a refused port", len(recs))
	}
	c := snapshotProbeCounts(reg)
	if c.neterrors != int64(len(domains)) {
		t.Errorf("neterrors = %d, want %d", c.neterrors, len(domains))
	}
	if c.timeouts != 0 {
		t.Errorf("timeouts = %d, want 0: connection refusal is not a timeout", c.timeouts)
	}
}

// TestIDBlocksDisjoint checks the per-worker partition of the 16-bit DNS
// ID space: blocks cover distinct ranges, so no worker can ever emit an
// ID that another worker has in flight.
func TestIDBlocksDisjoint(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 8, 16, 64} {
		type span struct{ lo, hi int }
		var spans []span
		for w := 0; w < workers; w++ {
			base, size := idBlock(w, workers)
			if size < 1 {
				t.Fatalf("workers=%d w=%d: empty block", workers, w)
			}
			if base < 0 || base+size > 1<<16 {
				t.Fatalf("workers=%d w=%d: block [%d,%d) outside the 16-bit space", workers, w, base, base+size)
			}
			for _, s := range spans {
				if base < s.hi && s.lo < base+size {
					t.Fatalf("workers=%d: block [%d,%d) overlaps [%d,%d)", workers, base, base+size, s.lo, s.hi)
				}
			}
			spans = append(spans, span{base, base + size})
		}
	}
}

// TestOldSharedIDStreamsCollide documents the bug the partition replaced:
// the old per-worker streams (seq starts at the worker index, advances by
// 257) each walk the entire 16-bit space, so two workers' in-flight IDs
// eventually coincide and a stale answer to one worker's query can
// satisfy another's. The new block streams never intersect.
func TestOldSharedIDStreamsCollide(t *testing.T) {
	seen := make(map[uint16]bool, 1<<16)
	seq0 := uint16(0)
	for n := 0; n < 1<<16; n++ {
		seq0 += 257
		seen[seq0] = true
	}
	collided := false
	seq1 := uint16(1)
	for n := 0; n < 1<<16; n++ {
		seq1 += 257
		if seen[seq1] {
			collided = true
			break
		}
	}
	if !collided {
		t.Fatal("old scheme: expected worker 0 and worker 1 ID streams to collide within 2^16 queries")
	}

	base0, size0 := idBlock(0, 2)
	base1, size1 := idBlock(1, 2)
	for n := 0; n < 1<<16; n++ {
		if uint16(base0+n%size0) == uint16(base1+n%size1) {
			t.Fatalf("new scheme: worker streams collide at query %d", n)
		}
	}
}
