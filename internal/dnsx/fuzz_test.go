package dnsx

import (
	"bytes"
	"testing"
)

// FuzzUnpack feeds arbitrary bytes to the wire-format decoder: it must
// never panic, and any message that unpacks successfully must re-pack.
func FuzzUnpack(f *testing.F) {
	queries := []string{"example.com", "a.b.c.d.e", "xn--fcebook-8va.com"}
	for _, q := range queries {
		wire, _ := NewQuery(1, q, TypeA).Pack()
		f.Add(wire)
	}
	resp := &Message{
		Header:    Header{ID: 9, QR: true, AA: true},
		Questions: []Question{{Name: "x.com", Type: TypeA, Class: ClassIN}},
		Answers:   []RR{A("x.com", 60, [4]byte{1, 2, 3, 4})},
	}
	wire, _ := resp.Pack()
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{0xc0, 0x0c})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		// Successfully unpacked messages must round-trip through Pack;
		// counts in the header may be normalised but sections must agree.
		out, err := m.Pack()
		if err != nil {
			// Names rebuilt from compressed form can exceed limits only if
			// the decoder let an over-long name through — that is a bug.
			for _, q := range m.Questions {
				if len(q.Name) <= 255 {
					continue
				}
				return
			}
			t.Fatalf("repack failed for valid message: %v", err)
		}
		m2, err := Unpack(out)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatal("sections changed across round trip")
		}
	})
}

// FuzzParseZone feeds arbitrary text to the master-file parser.
func FuzzParseZone(f *testing.F) {
	f.Add("$ORIGIN x.\na IN A 1.2.3.4\n")
	f.Add("; comment only\n")
	f.Add("$TTL 60\n@ IN TXT \"text ; quoted\"\n")
	f.Add("\tIN A 1.2.3.4\n")
	f.Fuzz(func(t *testing.T, src string) {
		recs, err := ParseZone(bytes.NewReader([]byte(src)), "fuzz.test")
		if err != nil {
			return
		}
		for _, rec := range recs {
			if rec.Name == "" {
				t.Fatal("record with empty name accepted")
			}
		}
	})
}
