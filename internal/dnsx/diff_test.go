package dnsx

import (
	"reflect"
	"testing"
)

func TestDiff(t *testing.T) {
	oldSnap := NewStore()
	oldSnap.Add("stays.com", [4]byte{1, 1, 1, 1})
	oldSnap.Add("repointed.com", [4]byte{2, 2, 2, 2})
	oldSnap.Add("dropped.com", [4]byte{3, 3, 3, 3})

	newSnap := NewStore()
	newSnap.Add("stays.com", [4]byte{1, 1, 1, 1})
	newSnap.Add("repointed.com", [4]byte{9, 9, 9, 9})
	newSnap.Add("brandnew.com", [4]byte{4, 4, 4, 4})

	d := Diff(oldSnap, newSnap)
	if !reflect.DeepEqual(d.Added, []string{"brandnew.com"}) {
		t.Errorf("Added = %v", d.Added)
	}
	if !reflect.DeepEqual(d.Removed, []string{"dropped.com"}) {
		t.Errorf("Removed = %v", d.Removed)
	}
	if !reflect.DeepEqual(d.Changed, []string{"repointed.com"}) {
		t.Errorf("Changed = %v", d.Changed)
	}
	if d.Empty() {
		t.Error("non-empty delta reported empty")
	}
}

func TestDiffIdentical(t *testing.T) {
	s := GenerateSnapshot(SnapshotSpec{NoiseRecords: 500, Seed: 1})
	if d := Diff(s, s); !d.Empty() {
		t.Fatalf("self-diff not empty: %+v", d)
	}
}

func TestDiffSorted(t *testing.T) {
	oldSnap := NewStore()
	newSnap := NewStore()
	for _, d := range []string{"zz.com", "aa.com", "mm.com"} {
		newSnap.Add(d, [4]byte{1, 2, 3, 4})
	}
	d := Diff(oldSnap, newSnap)
	for i := 1; i < len(d.Added); i++ {
		if d.Added[i] < d.Added[i-1] {
			t.Fatal("Added not sorted")
		}
	}
}
