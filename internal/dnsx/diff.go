package dnsx

import "sort"

// Delta is the difference between two DNS snapshots: the material a
// continuous squatting monitor consumes (paper §7: "keep monitoring the
// newly registered domain names to the DNS").
type Delta struct {
	// Added lists domains present only in the new snapshot.
	Added []string
	// Removed lists domains present only in the old snapshot.
	Removed []string
	// Changed lists domains whose address changed (re-pointed sites often
	// signal ownership changes or kit deployment).
	Changed []string
}

// Diff computes the delta from old to new. All slices are sorted.
func Diff(oldSnap, newSnap *Store) Delta {
	var d Delta
	newSnap.Range(func(rec Record) bool {
		oldIP, ok := oldSnap.Lookup(rec.Domain)
		switch {
		case !ok:
			d.Added = append(d.Added, rec.Domain)
		case oldIP != rec.IP:
			d.Changed = append(d.Changed, rec.Domain)
		}
		return true
	})
	oldSnap.Range(func(rec Record) bool {
		if _, ok := newSnap.Lookup(rec.Domain); !ok {
			d.Removed = append(d.Removed, rec.Domain)
		}
		return true
	})
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	return d
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}
