package dnsx

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a subset of the RFC 1035 §5 master-file format —
// the textual zone representation that DNS measurement projects exchange.
// Supported: $ORIGIN and $TTL directives, @ owner shorthand, blank-owner
// continuation (inherit the previous owner), relative and absolute names,
// comments, and A / AAAA / NS / CNAME / TXT records. This is richer than
// the CSV snapshot format in store.go and interoperates with standard
// tooling output.

// ZoneRecord is one parsed master-file record.
type ZoneRecord struct {
	Name  string // fully qualified, lower case, no trailing dot
	TTL   uint32
	Type  uint16
	Data  string // dotted-quad for A, target name for NS/CNAME, text for TXT
	Class uint16
}

// ParseZone reads a master file. origin seeds relative-name resolution and
// may be overridden by $ORIGIN directives; pass "" if the file is fully
// qualified.
func ParseZone(r io.Reader, origin string) ([]ZoneRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)

	origin = strings.TrimSuffix(strings.ToLower(origin), ".")
	var defaultTTL uint32 = 3600
	prevOwner := ""
	var out []ZoneRecord
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		if strings.TrimSpace(line) == "" {
			continue
		}

		// Directives.
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "$ORIGIN") {
			fields := strings.Fields(trimmed)
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnsx: zone line %d: malformed $ORIGIN", lineNo)
			}
			origin = strings.TrimSuffix(strings.ToLower(fields[1]), ".")
			continue
		}
		if strings.HasPrefix(trimmed, "$TTL") {
			fields := strings.Fields(trimmed)
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnsx: zone line %d: malformed $TTL", lineNo)
			}
			v, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dnsx: zone line %d: bad $TTL: %w", lineNo, err)
			}
			defaultTTL = uint32(v)
			continue
		}

		// A leading-whitespace line inherits the previous owner.
		owner := prevOwner
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		startsWithSpace := line[0] == ' ' || line[0] == '\t'
		if !startsWithSpace {
			owner = fields[0]
			fields = fields[1:]
		}
		if owner == "" {
			return nil, fmt.Errorf("dnsx: zone line %d: record with no owner", lineNo)
		}

		rec := ZoneRecord{TTL: defaultTTL, Class: ClassIN}
		rec.Name = qualify(owner, origin)
		if rec.Name == "" {
			// A root owner "." (or "@" with no origin) qualifies to the
			// empty name, which the store and matcher cannot represent.
			return nil, fmt.Errorf("dnsx: zone line %d: empty owner name", lineNo)
		}
		prevOwner = owner

		// Optional TTL and class, in either order, before the type.
		for len(fields) > 0 {
			f := strings.ToUpper(fields[0])
			if v, err := strconv.ParseUint(f, 10, 32); err == nil {
				rec.TTL = uint32(v)
				fields = fields[1:]
				continue
			}
			if f == "IN" {
				fields = fields[1:]
				continue
			}
			break
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("dnsx: zone line %d: missing type or data", lineNo)
		}
		typ, ok := typeFromString(strings.ToUpper(fields[0]))
		if !ok {
			return nil, fmt.Errorf("dnsx: zone line %d: unsupported type %q", lineNo, fields[0])
		}
		rec.Type = typ
		data := strings.Join(fields[1:], " ")
		switch typ {
		case TypeA:
			if _, err := parseIPv4(data); err != nil {
				return nil, fmt.Errorf("dnsx: zone line %d: %w", lineNo, err)
			}
			rec.Data = data
		case TypeNS, TypeCNAME:
			rec.Data = qualify(strings.Fields(data)[0], origin)
		case TypeTXT:
			rec.Data = strings.Trim(data, `"`)
		default:
			rec.Data = data
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteZone serialises records as a master file under the given origin:
// names inside the origin are written relative, with an $ORIGIN directive
// up front. Records are sorted by name then type for stable output.
func WriteZone(w io.Writer, origin string, records []ZoneRecord) error {
	origin = strings.TrimSuffix(strings.ToLower(origin), ".")
	bw := bufio.NewWriter(w)
	if origin != "" {
		fmt.Fprintf(bw, "$ORIGIN %s.\n", origin)
	}
	sorted := append([]ZoneRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return sorted[i].Type < sorted[j].Type
	})
	for _, rec := range sorted {
		name := rec.Name
		if origin != "" {
			if name == origin {
				name = "@"
			} else if strings.HasSuffix(name, "."+origin) {
				name = strings.TrimSuffix(name, "."+origin)
			} else {
				name += "."
			}
		} else {
			name += "."
		}
		data := rec.Data
		switch rec.Type {
		case TypeNS, TypeCNAME:
			data += "."
		case TypeTXT:
			data = `"` + data + `"`
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\tIN\t%s\t%s\n", name, rec.TTL, typeToString(rec.Type), data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// StoreFromZone loads the A records of a zone into a Store (the squatting
// scanner consumes (domain, IP) pairs only).
func StoreFromZone(records []ZoneRecord) (*Store, error) {
	s := NewStore()
	for _, rec := range records {
		if rec.Type != TypeA {
			continue
		}
		ip, err := parseIPv4(rec.Data)
		if err != nil {
			return nil, err
		}
		s.Add(rec.Name, ip)
	}
	return s, nil
}

// ZoneFromStore converts a Store to A zone records with the given TTL.
func ZoneFromStore(s *Store, ttl uint32) []ZoneRecord {
	var out []ZoneRecord
	s.Range(func(rec Record) bool {
		out = append(out, ZoneRecord{
			Name: rec.Domain, TTL: ttl, Type: TypeA, Class: ClassIN,
			Data: rec.IPString(),
		})
		return true
	})
	return out
}

func qualify(name, origin string) string {
	name = strings.ToLower(name)
	if name == "@" {
		return origin
	}
	if strings.HasSuffix(name, ".") {
		return strings.TrimSuffix(name, ".")
	}
	if origin == "" {
		return name
	}
	return name + "." + origin
}

// stripComment removes a ';' comment, respecting quoted strings.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

func typeFromString(s string) (uint16, bool) {
	switch s {
	case "A":
		return TypeA, true
	case "AAAA":
		return TypeAAAA, true
	case "NS":
		return TypeNS, true
	case "CNAME":
		return TypeCNAME, true
	case "TXT":
		return TypeTXT, true
	}
	return 0, false
}

func typeToString(t uint16) string {
	switch t {
	case TypeA:
		return "A"
	case TypeAAAA:
		return "AAAA"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeTXT:
		return "TXT"
	}
	return fmt.Sprintf("TYPE%d", t)
}
