package dnsx

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"squatphi/internal/simrand"
)

func TestStoreAddLookup(t *testing.T) {
	s := NewStore()
	s.Add("Example.COM.", [4]byte{1, 2, 3, 4})
	ip, ok := s.Lookup("example.com")
	if !ok || ip != [4]byte{1, 2, 3, 4} {
		t.Fatalf("Lookup = %v, %v", ip, ok)
	}
	if _, ok := s.Lookup("missing.com"); ok {
		t.Fatal("Lookup of missing domain succeeded")
	}
	s.Add("example.com", [4]byte{5, 6, 7, 8})
	if s.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", s.Len())
	}
	ip, _ = s.Lookup("example.com")
	if ip != [4]byte{5, 6, 7, 8} {
		t.Fatal("overwrite did not take effect")
	}
}

func TestStoreRangeOrderAndStop(t *testing.T) {
	s := NewStore()
	for _, d := range []string{"a.com", "b.com", "c.com"} {
		s.Add(d, [4]byte{1, 1, 1, 1})
	}
	var seen []string
	s.Range(func(r Record) bool {
		seen = append(seen, r.Domain)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != "a.com" || seen[1] != "b.com" {
		t.Fatalf("Range order/stop broken: %v", seen)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	r := simrand.New(1)
	for i := 0; i < 500; i++ {
		s.Add(r.Letters(8)+".com", RandomIP(r))
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip size %d != %d", got.Len(), s.Len())
	}
	s.Range(func(rec Record) bool {
		ip, ok := got.Lookup(rec.Domain)
		if !ok || ip != rec.IP {
			t.Fatalf("record %s lost in round trip", rec.Domain)
		}
		return true
	})
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	for _, in := range []string{"nocomma\n", "a.com,999.1.1.1\n", "a.com,1.2.3\n", "a.com,1.2.3.x\n"} {
		if _, err := ReadSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSnapshot(%q) succeeded", in)
		}
	}
}

func TestReadSnapshotSkipsCommentsAndBlanks(t *testing.T) {
	s, err := ReadSnapshot(strings.NewReader("# header\n\na.com,1.2.3.4\n"))
	if err != nil || s.Len() != 1 {
		t.Fatalf("ReadSnapshot = len %d, err %v", s.Len(), err)
	}
}

func TestRecordIPString(t *testing.T) {
	r := Record{Domain: "x.com", IP: [4]byte{10, 0, 0, 1}}
	if r.IPString() != "10.0.0.1" {
		t.Fatalf("IPString = %q", r.IPString())
	}
}

func TestGenerateSnapshotDeterministic(t *testing.T) {
	spec := SnapshotSpec{Planted: []string{"facebook-login.com"}, NoiseRecords: 1000, Seed: 42}
	a := GenerateSnapshot(spec)
	b := GenerateSnapshot(spec)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	a.Range(func(rec Record) bool {
		ip, ok := b.Lookup(rec.Domain)
		if !ok || ip != rec.IP {
			t.Fatalf("snapshot not deterministic at %s", rec.Domain)
		}
		return true
	})
	if _, ok := a.Lookup("facebook-login.com"); !ok {
		t.Fatal("planted domain missing")
	}
}

// TestStreamSnapshotMatchesGenerate pins StreamSnapshot's contract: adding
// its records to a store in delivery order reproduces GenerateSnapshot of
// the same spec exactly — contents, iteration order and shard checksums.
func TestStreamSnapshotMatchesGenerate(t *testing.T) {
	spec := SnapshotSpec{Planted: []string{"facebook-login.com", "PayPal.net."}, NoiseRecords: 5000, Seed: 7}
	want := GenerateSnapshot(spec)
	got := NewStore()
	streamed := 0
	StreamSnapshot(spec, func(domain string, ip [4]byte) bool {
		got.Add(domain, ip)
		streamed++
		return true
	})
	if streamed != len(spec.Planted)+spec.NoiseRecords {
		t.Fatalf("streamed %d records, want %d", streamed, len(spec.Planted)+spec.NoiseRecords)
	}
	if got.Len() != want.Len() {
		t.Fatalf("store sizes differ: streamed %d vs generated %d", got.Len(), want.Len())
	}
	for i, cs := range want.Checksums() {
		if got.ShardChecksum(i) != cs {
			t.Fatalf("shard %d checksum differs", i)
		}
	}
	wantRecs, gotRecs := want.Domains(), got.Domains()
	for i := range wantRecs {
		if wantRecs[i] != gotRecs[i] {
			t.Fatalf("iteration order differs at %d: %q vs %q", i, gotRecs[i], wantRecs[i])
		}
	}
}

func TestGenerateSnapshotSeedsDiffer(t *testing.T) {
	a := GenerateSnapshot(SnapshotSpec{NoiseRecords: 100, Seed: 1})
	b := GenerateSnapshot(SnapshotSpec{NoiseRecords: 100, Seed: 2})
	shared := 0
	a.Range(func(rec Record) bool {
		if _, ok := b.Lookup(rec.Domain); ok {
			shared++
		}
		return true
	})
	if shared > 10 {
		t.Fatalf("%d/100 noise domains shared across seeds", shared)
	}
}

func TestRandomIPAvoidsReserved(t *testing.T) {
	r := simrand.New(3)
	for i := 0; i < 20000; i++ {
		ip := RandomIP(r)
		if ip[0] == 0 || ip[0] == 10 || ip[0] == 127 || ip[0] >= 224 ||
			(ip[0] == 172 && ip[1] >= 16 && ip[1] < 32) ||
			(ip[0] == 192 && ip[1] == 168) ||
			(ip[0] == 169 && ip[1] == 254) {
			t.Fatalf("reserved IP generated: %v", ip)
		}
	}
}

func TestServerAnswersQueries(t *testing.T) {
	store := NewStore()
	store.Add("paypal-cash.com", [4]byte{8, 8, 8, 8})
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := &Prober{Addr: srv.Addr(), Timeout: time.Second, Parallelism: 2}
	recs, err := p.Probe(context.Background(), []string{"paypal-cash.com", "missing.example"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Domain != "paypal-cash.com" || recs[0].IP != [4]byte{8, 8, 8, 8} {
		t.Fatalf("Probe = %+v", recs)
	}
}

func TestProberBulk(t *testing.T) {
	store := NewStore()
	r := simrand.New(8)
	var domains []string
	for i := 0; i < 300; i++ {
		d := r.Letters(10) + ".com"
		domains = append(domains, d)
		if i%2 == 0 {
			store.Add(d, RandomIP(r))
		}
	}
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := &Prober{Addr: srv.Addr(), Timeout: time.Second, Parallelism: 16}
	recs, err := p.Probe(context.Background(), domains)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 150 {
		t.Fatalf("resolved %d domains, want 150", len(recs))
	}
	for _, rec := range recs {
		want, ok := store.Lookup(rec.Domain)
		if !ok || want != rec.IP {
			t.Fatalf("wrong answer for %s", rec.Domain)
		}
	}
}

func TestProberContextCancel(t *testing.T) {
	store := NewStore()
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	domains := make([]string, 1000)
	for i := range domains {
		domains[i] = "missing.example"
	}
	p := &Prober{Addr: srv.Addr(), Timeout: 50 * time.Millisecond, Parallelism: 4}
	if _, err := p.Probe(ctx, domains); err == nil {
		t.Fatal("Probe with cancelled context returned nil error")
	}
}

func TestServerIgnoresResponsesAndGarbage(t *testing.T) {
	store := NewStore()
	store.Add("x.com", [4]byte{1, 1, 1, 1})
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if resp := srv.handle([]byte{1, 2, 3}); resp != nil {
		t.Fatal("handle answered garbage")
	}
	m := &Message{Header: Header{ID: 1, QR: true}, Questions: []Question{{Name: "x.com", Type: TypeA, Class: ClassIN}}}
	wire, _ := m.Pack()
	if resp := srv.handle(wire); resp != nil {
		t.Fatal("handle answered a response message")
	}
}

func TestServerNXDomain(t *testing.T) {
	store := NewStore()
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wire, _ := NewQuery(3, "nope.example", TypeA).Pack()
	resp, err := Unpack(srv.handle(wire))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != RCodeNXDomain {
		t.Fatalf("RCode = %d, want NXDOMAIN", resp.Header.RCode)
	}
}

func BenchmarkServerHandle(b *testing.B) {
	store := NewStore()
	store.Add("paypal-cash.com", [4]byte{8, 8, 8, 8})
	srv, err := NewServer(store)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	wire, _ := NewQuery(1, "paypal-cash.com", TypeA).Pack()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = srv.handle(wire)
	}
}

func BenchmarkSnapshotGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GenerateSnapshot(SnapshotSpec{NoiseRecords: 10000, Seed: uint64(i)})
	}
}
