package dnsx

import (
	"strings"
	"testing"

	"squatphi/internal/domlm"
)

func brandNoiseSpec(records int) SnapshotSpec {
	model := domlm.Train([]string{
		"paypal", "facebook", "google", "microsoft", "amazon", "netflix",
		"dropbox", "linkedin", "spotify", "airbnb", "coinbase", "chase",
		"wellsfargo", "santander", "alibaba", "youtube", "whatsapp",
		"instagram", "telegram", "shopify",
	}, domlm.DefaultConfig())
	return SnapshotSpec{
		Planted:           []string{"paypal.com"},
		NoiseRecords:      2000,
		BrandNoise:        model,
		BrandNoiseRecords: records,
		Seed:              91,
	}
}

// TestBrandNoiseBelowThreshold pins the hard-negative contract: every
// brand-noise label scores strictly below the generated-squat promotion
// threshold, so the family pressures precision without ever crossing into
// detection range.
func TestBrandNoiseBelowThreshold(t *testing.T) {
	spec := brandNoiseSpec(500)
	s := GenerateSnapshot(spec)
	if want := len(spec.Planted) + spec.BrandNoiseRecords + spec.NoiseRecords; s.Len() > want {
		t.Fatalf("store holds %d records, want at most %d", s.Len(), want)
	}
	// The brand-noise range sits right after the planted set in order.
	domains := s.Domains()[len(spec.Planted) : len(spec.Planted)+spec.BrandNoiseRecords]
	over := 0
	for _, d := range domains {
		label := d[:strings.IndexByte(d, '.')]
		if score := spec.BrandNoise.ScoreLabel(label); score >= domlm.DefaultThreshold {
			over++
			t.Errorf("brand-noise domain %s scores %.3f, at or above the threshold %.2f",
				d, score, domlm.DefaultThreshold)
		}
	}
	if over > 0 {
		t.Fatalf("%d/%d brand-noise records cross the threshold", over, len(domains))
	}
}

// TestBrandNoiseDeterministic pins that the family is part of the spec's
// deterministic output: same spec → same records, and the stream path
// delivers the identical population.
func TestBrandNoiseDeterministic(t *testing.T) {
	spec := brandNoiseSpec(300)
	a, b := GenerateSnapshot(spec), GenerateSnapshot(spec)
	ad, bd := a.Domains(), b.Domains()
	if len(ad) != len(bd) {
		t.Fatalf("sizes differ: %d vs %d", len(ad), len(bd))
	}
	for i := range ad {
		if ad[i] != bd[i] {
			t.Fatalf("iteration order differs at %d: %q vs %q", i, ad[i], bd[i])
		}
	}

	got := NewStore()
	streamed := 0
	StreamSnapshot(spec, func(domain string, ip [4]byte) bool {
		got.Add(domain, ip)
		streamed++
		return true
	})
	if want := len(spec.Planted) + spec.BrandNoiseRecords + spec.NoiseRecords; streamed != want {
		t.Fatalf("streamed %d records, want %d", streamed, want)
	}
	if got.Len() != a.Len() {
		t.Fatalf("stream-built store holds %d records, generate built %d", got.Len(), a.Len())
	}
	for i, cs := range a.Checksums() {
		if got.ShardChecksum(i) != cs {
			t.Fatalf("shard %d checksum differs between stream and generate", i)
		}
	}

	// Worker count must not leak into the population.
	spec1, spec4 := spec, spec
	spec1.Workers, spec4.Workers = 1, 4
	w1, w4 := GenerateSnapshot(spec1), GenerateSnapshot(spec4)
	for i, cs := range w1.Checksums() {
		if w4.ShardChecksum(i) != cs {
			t.Fatalf("shard %d checksum differs between 1 and 4 workers", i)
		}
	}
}
