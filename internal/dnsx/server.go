package dnsx

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"squatphi/internal/obs"
)

// Server is an authoritative DNS server over UDP answering A queries from a
// Store. It plays the role of the zone infrastructure that the ActiveDNS
// prober measures.
type Server struct {
	store *Store
	conn  net.PacketConn

	mu     sync.Mutex
	closed bool

	// Queries counts answered queries (for tests and throughput benches).
	queries int64

	// Metric handles, resolved once at construction (nil-registry safe).
	mQueries   *obs.Counter
	mMalformed *obs.Counter
	mNXDomain  *obs.Counter
	mHandleUS  *obs.Histogram
}

// NewServer starts an authoritative server on a free localhost UDP port
// without metrics. Callers must Close it.
func NewServer(store *Store) (*Server, error) {
	return NewServerObs(store, nil)
}

// NewServerObs starts an authoritative server reporting to the given
// metrics registry (which may be nil): queries served, malformed packets,
// NXDOMAIN responses, and per-query handling time.
func NewServerObs(store *Store, reg *obs.Registry) (*Server, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dnsx: listen: %w", err)
	}
	s := &Server{
		store:      store,
		conn:       conn,
		mQueries:   reg.Counter("dnsx.server.queries"),
		mMalformed: reg.Counter("dnsx.server.malformed"),
		mNXDomain:  reg.Counter("dnsx.server.nxdomain"),
		mHandleUS:  reg.Histogram("dnsx.server.handle_us", obs.MicrosBuckets),
	}
	go s.serve()
	return s, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Queries returns the number of queries answered so far.
func (s *Server) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}

func (s *Server) serve() {
	buf := make([]byte, 4096)
	for {
		n, addr, err := s.conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		resp := s.handle(buf[:n])
		if resp != nil {
			_, _ = s.conn.WriteTo(resp, addr)
		}
	}
}

// handle produces the wire response for one query datagram.
func (s *Server) handle(req []byte) []byte {
	start := time.Now()
	defer func() { s.mHandleUS.Observe(float64(time.Since(start)) / float64(time.Microsecond)) }()
	q, err := Unpack(req)
	if err != nil || q.Header.QR || len(q.Questions) == 0 {
		s.mMalformed.Inc()
		return nil
	}
	resp := &Message{
		Header: Header{
			ID: q.Header.ID, QR: true, AA: true,
			RD: q.Header.RD, Opcode: q.Header.Opcode,
		},
		Questions: q.Questions,
	}
	if q.Header.Opcode != 0 {
		resp.Header.RCode = RCodeNotImpl
	} else {
		for _, question := range q.Questions {
			if question.Class != ClassIN || question.Type != TypeA {
				continue
			}
			if ip, ok := s.store.Lookup(question.Name); ok {
				resp.Answers = append(resp.Answers, A(question.Name, 300, ip))
			}
		}
		if len(resp.Answers) == 0 {
			resp.Header.RCode = RCodeNXDomain
			s.mNXDomain.Inc()
		}
	}
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
	s.mQueries.Inc()
	out, err := resp.Pack()
	if err != nil {
		return nil
	}
	return out
}

// Prober performs active DNS measurement: it resolves batches of candidate
// domains against an authoritative server and collects (domain, IP) records,
// reproducing the ActiveDNS collection methodology.
type Prober struct {
	// Addr is the server address ("host:port").
	Addr string
	// Timeout bounds each query round trip. Default 2s.
	Timeout time.Duration
	// Retries is the number of re-sends after a timeout. Default 2.
	Retries int
	// Parallelism is the number of concurrent workers. Default 8.
	Parallelism int
	// Metrics, when set, receives probe accounting: queries sent, retries,
	// timeouts, resolved/unresolved splits, and an RTT histogram.
	Metrics *obs.Registry
}

// probeMetrics bundles the handles resolved once per Probe call.
type probeMetrics struct {
	sent, retries, timeouts, resolved, unresolved *obs.Counter
	rttMS                                         *obs.Histogram
}

func (p *Prober) metrics() *probeMetrics {
	reg := p.Metrics // nil registry yields live, unregistered handles
	return &probeMetrics{
		sent:       reg.Counter("dnsx.probe.sent"),
		retries:    reg.Counter("dnsx.probe.retries"),
		timeouts:   reg.Counter("dnsx.probe.timeouts"),
		resolved:   reg.Counter("dnsx.probe.resolved"),
		unresolved: reg.Counter("dnsx.probe.unresolved"),
		rttMS:      reg.Histogram("dnsx.probe.rtt_ms", obs.MillisBuckets),
	}
}

// Probe resolves the given domains and returns the records that resolved.
// Unresolvable domains (NXDOMAIN, timeouts after retries) are skipped.
func (p *Prober) Probe(ctx context.Context, domains []string) ([]Record, error) {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	retries := p.Retries
	if retries <= 0 {
		retries = 2
	}
	workers := p.Parallelism
	if workers <= 0 {
		workers = 8
	}
	if workers > len(domains) && len(domains) > 0 {
		workers = len(domains)
	}

	met := p.metrics()
	jobs := make(chan string)
	results := make(chan Record, len(domains))
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			conn, err := net.Dial("udp", p.Addr)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			defer conn.Close()
			seq := id
			for domain := range jobs {
				if ctx.Err() != nil {
					return
				}
				seq += 257 // distinct IDs per worker stream
				if ip, ok := p.query(conn, seq, domain, timeout, retries, met); ok {
					met.resolved.Inc()
					results <- Record{Domain: domain, IP: ip}
				} else {
					met.unresolved.Inc()
				}
			}
		}(uint16(w))
	}

	go func() {
		defer close(jobs)
		for _, d := range domains {
			select {
			case jobs <- d:
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Wait()
	close(results)
	var out []Record
	for r := range results {
		out = append(out, r)
	}
	if ctx.Err() != nil {
		return out, ctx.Err()
	}
	return out, firstErr
}

func (p *Prober) query(conn net.Conn, id uint16, domain string, timeout time.Duration, retries int, met *probeMetrics) ([4]byte, bool) {
	req, err := NewQuery(id, domain, TypeA).Pack()
	if err != nil {
		return [4]byte{}, false
	}
	buf := make([]byte, 4096)
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			met.retries.Inc()
		}
		met.sent.Inc()
		start := time.Now()
		if _, err := conn.Write(req); err != nil {
			return [4]byte{}, false
		}
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		n, err := conn.Read(buf)
		if err != nil {
			met.timeouts.Inc()
			continue // timeout: retry
		}
		met.rttMS.ObserveSince(start)
		resp, err := Unpack(buf[:n])
		if err != nil || resp.Header.ID != id || !resp.Header.QR {
			continue
		}
		if resp.Header.RCode != RCodeSuccess {
			return [4]byte{}, false
		}
		for _, rr := range resp.Answers {
			if ip, ok := rr.IPv4(); ok {
				return ip, true
			}
		}
		return [4]byte{}, false
	}
	return [4]byte{}, false
}
