package dnsx

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"squatphi/internal/obs"
	"squatphi/internal/retry"
)

// Server is an authoritative DNS server over UDP answering A queries from a
// Store. It plays the role of the zone infrastructure that the ActiveDNS
// prober measures.
type Server struct {
	store *Store
	conn  net.PacketConn

	mu     sync.Mutex
	closed bool

	// Queries counts answered queries (for tests and throughput benches).
	queries int64

	// Metric handles, resolved once at construction (nil-registry safe).
	mQueries   *obs.Counter
	mMalformed *obs.Counter
	mNXDomain  *obs.Counter
	mHandleUS  *obs.Histogram
}

// NewServer starts an authoritative server on a free localhost UDP port
// without metrics. Callers must Close it.
func NewServer(store *Store) (*Server, error) {
	return NewServerObs(store, nil)
}

// NewServerObs starts an authoritative server reporting to the given
// metrics registry (which may be nil): queries served, malformed packets,
// NXDOMAIN responses, and per-query handling time.
func NewServerObs(store *Store, reg *obs.Registry) (*Server, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dnsx: listen: %w", err)
	}
	s := &Server{
		store:      store,
		conn:       conn,
		mQueries:   reg.Counter("dnsx.server.queries"),
		mMalformed: reg.Counter("dnsx.server.malformed"),
		mNXDomain:  reg.Counter("dnsx.server.nxdomain"),
		mHandleUS:  reg.Histogram("dnsx.server.handle_us", obs.MicrosBuckets),
	}
	go s.serve()
	return s, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Queries returns the number of queries answered so far.
func (s *Server) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}

func (s *Server) serve() {
	buf := make([]byte, 4096)
	for {
		n, addr, err := s.conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		resp := s.handle(buf[:n])
		if resp != nil {
			_, _ = s.conn.WriteTo(resp, addr)
		}
	}
}

// handle produces the wire response for one query datagram.
func (s *Server) handle(req []byte) []byte {
	start := time.Now()
	defer func() { s.mHandleUS.Observe(float64(time.Since(start)) / float64(time.Microsecond)) }()
	q, err := Unpack(req)
	if err != nil || q.Header.QR || len(q.Questions) == 0 {
		s.mMalformed.Inc()
		return nil
	}
	resp := &Message{
		Header: Header{
			ID: q.Header.ID, QR: true, AA: true,
			RD: q.Header.RD, Opcode: q.Header.Opcode,
		},
		Questions: q.Questions,
	}
	if q.Header.Opcode != 0 {
		resp.Header.RCode = RCodeNotImpl
	} else {
		for _, question := range q.Questions {
			if question.Class != ClassIN || question.Type != TypeA {
				continue
			}
			if ip, ok := s.store.Lookup(question.Name); ok {
				resp.Answers = append(resp.Answers, A(question.Name, 300, ip))
			}
		}
		if len(resp.Answers) == 0 {
			resp.Header.RCode = RCodeNXDomain
			s.mNXDomain.Inc()
		}
	}
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
	s.mQueries.Inc()
	out, err := resp.Pack()
	if err != nil {
		return nil
	}
	return out
}

// Prober performs active DNS measurement: it resolves batches of candidate
// domains against an authoritative server and collects (domain, IP) records,
// reproducing the ActiveDNS collection methodology.
type Prober struct {
	// Addr is the server address ("host:port").
	Addr string
	// Timeout bounds each query round trip. Default 2s.
	Timeout time.Duration
	// Retries is the number of re-sends after a timed-out attempt,
	// following the repository retry convention: negative disables
	// retries entirely, 0 selects the default of 2, positive as given.
	Retries int
	// Parallelism is the number of concurrent workers. Default 8. Each
	// worker owns a disjoint block of the 16-bit DNS ID space, so a stale
	// answer to one worker's query can never match another worker's.
	Parallelism int
	// Policy configures backoff between retries, the retry budget, and
	// the circuit breaker for the probed server (see internal/retry).
	Policy retry.Policy
	// Dial opens the worker UDP connections; nil selects net.Dial("udp",
	// Addr). Chaos tests wrap the returned conn with faultx injection.
	Dial func(addr string) (net.Conn, error)
	// Metrics, when set, receives probe accounting: queries sent, retries,
	// timeouts vs non-timeout network errors, stale/malformed datagrams
	// discarded, resolved/unresolved splits, and an RTT histogram; the
	// retry layer reports under dnsx.probe.retry.* and
	// dnsx.probe.breaker.*.
	Metrics *obs.Registry

	retrierOnce sync.Once
	rt          *retry.Retrier
}

// probeMetrics bundles the handles resolved once per Probe call.
type probeMetrics struct {
	sent, retries, timeouts, neterrors, stale, resolved, unresolved *obs.Counter
	rttMS                                                           *obs.Histogram
}

func (p *Prober) metrics() *probeMetrics {
	reg := p.Metrics // nil registry yields live, unregistered handles
	return &probeMetrics{
		sent:       reg.Counter("dnsx.probe.sent"),
		retries:    reg.Counter("dnsx.probe.retries"),
		timeouts:   reg.Counter("dnsx.probe.timeouts"),
		neterrors:  reg.Counter("dnsx.probe.neterrors"),
		stale:      reg.Counter("dnsx.probe.stale_discarded"),
		resolved:   reg.Counter("dnsx.probe.resolved"),
		unresolved: reg.Counter("dnsx.probe.unresolved"),
		rttMS:      reg.Histogram("dnsx.probe.rtt_ms", obs.MillisBuckets),
	}
}

// Retrier returns the prober's shared retry/breaker state, built lazily
// from Policy.
func (p *Prober) Retrier() *retry.Retrier {
	p.retrierOnce.Do(func() { p.rt = retry.New(p.Policy, "dnsx.probe", p.Metrics) })
	return p.rt
}

// idBlock partitions the 16-bit DNS ID space into equal per-worker
// blocks: worker w of n draws IDs from [base, base+size). Blocks are
// disjoint, so no worker can mistake another worker's (possibly stale)
// answer for its own — the old shared seq += 257 streams overlapped mod
// 65536 on large batches.
func idBlock(worker, workers int) (base, size int) {
	if workers < 1 {
		workers = 1
	}
	if workers > 1<<16 {
		workers = 1 << 16
	}
	blk := (1 << 16) / workers
	return worker * blk, blk
}

// Probe resolves the given domains and returns the records that resolved.
// Unresolvable domains (NXDOMAIN, timeouts after retries) are skipped.
// Records are returned in input order regardless of which worker resolved
// them or when, so downstream stages (matching, crawling) see a
// deterministic sequence.
func (p *Prober) Probe(ctx context.Context, domains []string) ([]Record, error) {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	retries := retry.Resolve(p.Retries, 2)
	workers := p.Parallelism
	if workers <= 0 {
		workers = 8
	}
	if workers > len(domains) && len(domains) > 0 {
		workers = len(domains)
	}

	met := p.metrics()
	jobs := make(chan int)
	// Each worker writes only the slots it claimed, so the per-index
	// results need no lock; compacting in index order afterwards makes the
	// output independent of completion order.
	recs := make([]Record, len(domains))
	resolved := make([]bool, len(domains))
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	rt := p.Retrier()
	dial := p.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("udp", addr) }
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := dial(p.Addr)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			defer conn.Close()
			base, size := idBlock(w, workers)
			n := 0
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				domain := domains[i]
				id := uint16(base + n%size)
				n++
				if ip, ok := p.query(ctx, conn, id, domain, timeout, retries, met, rt); ok {
					met.resolved.Inc()
					recs[i] = Record{Domain: domain, IP: ip}
					resolved[i] = true
				} else {
					met.unresolved.Inc()
				}
			}
		}(w)
	}

	go func() {
		defer close(jobs)
		for i := range domains {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Wait()
	var out []Record
	for i, ok := range resolved {
		if ok {
			out = append(out, recs[i])
		}
	}
	if ctx.Err() != nil {
		return out, ctx.Err()
	}
	return out, firstErr
}

// query resolves one domain over conn with up to retries re-sends. Each
// attempt gets one read deadline; datagrams that fail to parse or carry a
// mismatched (stale) ID are discarded and the read continues within the
// remaining deadline instead of burning the attempt. Read errors are
// classified: only genuine deadline expiries count as timeouts, other
// network errors (e.g. connection refused) are accounted separately. Both
// feed the server's circuit breaker.
func (p *Prober) query(ctx context.Context, conn net.Conn, id uint16, domain string, timeout time.Duration, retries int, met *probeMetrics, rt *retry.Retrier) ([4]byte, bool) {
	req, err := NewQuery(id, domain, TypeA).Pack()
	if err != nil {
		return [4]byte{}, false
	}
	buf := make([]byte, 4096)
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if !rt.GrantRetry(p.Addr) {
				break
			}
			met.retries.Inc()
			if rt.Wait(ctx, domain, attempt) != nil {
				break // context cancelled during backoff
			}
		}
		if rt.Allow(p.Addr) != nil {
			break // circuit open: fast-fail the remaining attempts
		}
		met.sent.Inc()
		start := time.Now()
		if _, err := conn.Write(req); err != nil {
			met.neterrors.Inc()
			rt.Report(p.Addr, false)
			continue
		}
		deadline := time.Now().Add(timeout)
		_ = conn.SetReadDeadline(deadline)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				if retry.IsTimeout(err) {
					met.timeouts.Inc()
				} else {
					met.neterrors.Inc()
				}
				rt.Report(p.Addr, false)
				break // next attempt
			}
			resp, uerr := Unpack(buf[:n])
			if uerr != nil || resp.Header.ID != id || !resp.Header.QR {
				// Stale, mismatched, or malformed datagram: discard and
				// keep reading within the remaining deadline.
				met.stale.Inc()
				continue
			}
			met.rttMS.ObserveSince(start)
			rt.Report(p.Addr, true)
			drainConn(conn, buf, met)
			if resp.Header.RCode != RCodeSuccess {
				return [4]byte{}, false
			}
			for _, rr := range resp.Answers {
				if ip, ok := rr.IPv4(); ok {
					return ip, true
				}
			}
			return [4]byte{}, false
		}
	}
	return [4]byte{}, false
}

// drainConn discards datagrams that are already deliverable without
// waiting (late duplicates of the accepted answer), leaving the socket
// clean for the next query on this conn. The expired deadline makes the
// drain free when nothing is pending.
func drainConn(conn net.Conn, buf []byte, met *probeMetrics) {
	_ = conn.SetReadDeadline(time.Now())
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
		met.stale.Inc()
	}
}
