// Package dnsx implements the DNS substrate of the reproduction: an
// RFC 1035 wire-format codec, an in-memory record store with a snapshot
// serialisation format, a UDP authoritative server, and an active prober.
//
// The paper consumes a 224M-record snapshot from the ActiveDNS project,
// which runs active DNS probing from multiple seeds (Kountouras et al.,
// RAID 2016). This package reproduces that substrate end to end: the
// snapshot generator plants squatting domains among background noise, the
// server answers authoritatively for the synthetic zone, and the prober
// performs the active measurement that produces (domain, IP) records for
// the squatting scanner.
package dnsx

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// Record and query type codes (RFC 1035 §3.2.2).
const (
	TypeA     uint16 = 1
	TypeNS    uint16 = 2
	TypeCNAME uint16 = 5
	TypeTXT   uint16 = 16
	TypeAAAA  uint16 = 28
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeSuccess  = 0
	RCodeFormErr  = 1
	RCodeServFail = 2
	RCodeNXDomain = 3
	RCodeNotImpl  = 4
	RCodeRefused  = 5
)

// Errors returned by the codec.
var (
	ErrTruncated   = errors.New("dnsx: message truncated")
	ErrBadPointer  = errors.New("dnsx: bad compression pointer")
	ErrNameTooLong = errors.New("dnsx: name exceeds 255 octets")
	ErrLabelLength = errors.New("dnsx: label exceeds 63 octets")
)

// Header is the fixed 12-octet DNS message header.
type Header struct {
	ID      uint16
	QR      bool  // response flag
	Opcode  uint8 // 0 = standard query
	AA      bool  // authoritative answer
	TC      bool  // truncated
	RD      bool  // recursion desired
	RA      bool  // recursion available
	RCode   uint8
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// Question is a single query.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is a resource record. RData holds the uncompressed record payload:
// 4 bytes for A, 16 for AAAA, a packed name for NS/CNAME, a length-prefixed
// string for TXT.
type RR struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	RData []byte
}

// A constructs an address record for a dotted-quad IPv4 address.
func A(name string, ttl uint32, ip [4]byte) RR {
	return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, RData: ip[:]}
}

// IPv4 returns the record's address for TypeA records.
func (r RR) IPv4() ([4]byte, bool) {
	var ip [4]byte
	if r.Type != TypeA || len(r.RData) != 4 {
		return ip, false
	}
	copy(ip[:], r.RData)
	return ip, true
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// lowerNameASCII lowercases A-Z only. DNS case-insensitivity (RFC 1035
// §2.3.3) is defined on ASCII letters; Unicode-aware lowering would
// rewrite arbitrary octets — and can lengthen them (invalid UTF-8 bytes
// become the 3-byte replacement rune), pushing a wire-legal label past
// the 63-octet limit on repack (found by FuzzUnpack).
func lowerNameASCII(name string) string {
	for i := 0; i < len(name); i++ {
		if c := name[i]; 'A' <= c && c <= 'Z' {
			b := []byte(name)
			for j := i; j < len(b); j++ {
				if 'A' <= b[j] && b[j] <= 'Z' {
					b[j] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return name
}

// packName appends the wire encoding of a domain name to buf, using the
// compression map (name suffix -> offset) when a suffix was already packed.
func packName(buf []byte, name string, compress map[string]int) ([]byte, error) {
	name = strings.TrimSuffix(lowerNameASCII(name), ".")
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		suffix := strings.Join(labels[i:], ".")
		if off, ok := compress[suffix]; ok && off < 0x3fff {
			return append(buf, byte(0xc0|off>>8), byte(off)), nil
		}
		if len(labels[i]) > 63 {
			return nil, ErrLabelLength
		}
		if len(labels[i]) == 0 {
			return nil, fmt.Errorf("dnsx: empty label in %q", name)
		}
		if compress != nil && len(buf) < 0x3fff {
			compress[suffix] = len(buf)
		}
		buf = append(buf, byte(len(labels[i])))
		buf = append(buf, labels[i]...)
	}
	return append(buf, 0), nil
}

// unpackName decodes a possibly-compressed name starting at off, returning
// the name and the offset just past its in-place encoding.
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	next := -1
	hops := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				next = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, next, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(b&0x3f)<<8 | int(msg[off+1])
			if !jumped {
				next = off + 2
			}
			if ptr >= off && !jumped || ptr >= len(msg) {
				return "", 0, ErrBadPointer
			}
			if hops++; hops > 64 {
				return "", 0, ErrBadPointer
			}
			off = ptr
			jumped = true
		case b&0xc0 != 0:
			return "", 0, fmt.Errorf("dnsx: reserved label type %#x", b&0xc0)
		default:
			if off+1+int(b) > len(msg) {
				return "", 0, ErrTruncated
			}
			label := msg[off+1 : off+1+int(b)]
			// A literal '.' inside a label would be ambiguous in the
			// dotted string representation this package uses for names;
			// hostnames never contain one, so reject rather than alias.
			if bytes.IndexByte(label, '.') >= 0 {
				return "", 0, fmt.Errorf("dnsx: label contains '.': %w", ErrBadPointer)
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(label)
			off += 1 + int(b)
			if sb.Len() > 255 {
				return "", 0, ErrNameTooLong
			}
		}
	}
}

func put16(buf []byte, v uint16) []byte { return append(buf, byte(v>>8), byte(v)) }
func put32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func get16(msg []byte, off int) (uint16, int, error) {
	if off+2 > len(msg) {
		return 0, 0, ErrTruncated
	}
	return uint16(msg[off])<<8 | uint16(msg[off+1]), off + 2, nil
}

func get32(msg []byte, off int) (uint32, int, error) {
	if off+4 > len(msg) {
		return 0, 0, ErrTruncated
	}
	return uint32(msg[off])<<24 | uint32(msg[off+1])<<16 | uint32(msg[off+2])<<8 | uint32(msg[off+3]), off + 4, nil
}

// Pack serialises the message with name compression.
func (m *Message) Pack() ([]byte, error) {
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authority))
	h.ARCount = uint16(len(m.Additional))

	buf := make([]byte, 0, 512)
	buf = put16(buf, h.ID)
	var flags uint16
	if h.QR {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xf) << 11
	if h.AA {
		flags |= 1 << 10
	}
	if h.TC {
		flags |= 1 << 9
	}
	if h.RD {
		flags |= 1 << 8
	}
	if h.RA {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode & 0xf)
	buf = put16(buf, flags)
	buf = put16(buf, h.QDCount)
	buf = put16(buf, h.ANCount)
	buf = put16(buf, h.NSCount)
	buf = put16(buf, h.ARCount)

	compress := map[string]int{}
	var err error
	for _, q := range m.Questions {
		if buf, err = packName(buf, q.Name, compress); err != nil {
			return nil, err
		}
		buf = put16(buf, q.Type)
		buf = put16(buf, q.Class)
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if buf, err = packName(buf, rr.Name, compress); err != nil {
				return nil, err
			}
			buf = put16(buf, rr.Type)
			buf = put16(buf, rr.Class)
			buf = put32(buf, rr.TTL)
			buf = put16(buf, uint16(len(rr.RData)))
			buf = append(buf, rr.RData...)
		}
	}
	return buf, nil
}

// Unpack parses a wire-format message.
func Unpack(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrTruncated
	}
	var m Message
	m.Header.ID = uint16(msg[0])<<8 | uint16(msg[1])
	flags := uint16(msg[2])<<8 | uint16(msg[3])
	m.Header.QR = flags&(1<<15) != 0
	m.Header.Opcode = uint8(flags >> 11 & 0xf)
	m.Header.AA = flags&(1<<10) != 0
	m.Header.TC = flags&(1<<9) != 0
	m.Header.RD = flags&(1<<8) != 0
	m.Header.RA = flags&(1<<7) != 0
	m.Header.RCode = uint8(flags & 0xf)
	m.Header.QDCount = uint16(msg[4])<<8 | uint16(msg[5])
	m.Header.ANCount = uint16(msg[6])<<8 | uint16(msg[7])
	m.Header.NSCount = uint16(msg[8])<<8 | uint16(msg[9])
	m.Header.ARCount = uint16(msg[10])<<8 | uint16(msg[11])

	off := 12
	var err error
	for i := 0; i < int(m.Header.QDCount); i++ {
		var q Question
		if q.Name, off, err = unpackName(msg, off); err != nil {
			return nil, err
		}
		if q.Type, off, err = get16(msg, off); err != nil {
			return nil, err
		}
		if q.Class, off, err = get16(msg, off); err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []struct {
		count uint16
		dst   *[]RR
	}{
		{m.Header.ANCount, &m.Answers},
		{m.Header.NSCount, &m.Authority},
		{m.Header.ARCount, &m.Additional},
	}
	for _, sec := range sections {
		for i := 0; i < int(sec.count); i++ {
			var rr RR
			if rr.Name, off, err = unpackName(msg, off); err != nil {
				return nil, err
			}
			if rr.Type, off, err = get16(msg, off); err != nil {
				return nil, err
			}
			if rr.Class, off, err = get16(msg, off); err != nil {
				return nil, err
			}
			if rr.TTL, off, err = get32(msg, off); err != nil {
				return nil, err
			}
			var rdlen uint16
			if rdlen, off, err = get16(msg, off); err != nil {
				return nil, err
			}
			if off+int(rdlen) > len(msg) {
				return nil, ErrTruncated
			}
			rr.RData = append([]byte(nil), msg[off:off+int(rdlen)]...)
			off += int(rdlen)
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return &m, nil
}

// NewQuery builds a standard recursion-desired A query for name.
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{
		Header:    Header{ID: id, RD: true},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}
