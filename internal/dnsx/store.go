package dnsx

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Record is one entry of an ActiveDNS-style snapshot: a domain name paired
// with the IPv4 address it resolved to. This is the unit the squatting
// scanner consumes (paper §3.1: "each record is characterized by a domain
// and an IP address").
type Record struct {
	Domain string
	IP     [4]byte
}

// IPString returns the dotted-quad form of the record's address.
func (r Record) IPString() string {
	return fmt.Sprintf("%d.%d.%d.%d", r.IP[0], r.IP[1], r.IP[2], r.IP[3])
}

// DefaultShards is the shard count of NewStore. It is fixed (rather than
// derived from GOMAXPROCS) so a snapshot's iteration behaviour never
// depends on the machine that built it; raise it via NewShardedStore for
// stores that must absorb very wide concurrent write loads.
const DefaultShards = 32

// entry is one stored record plus the bookkeeping that keeps sharded
// iteration deterministic: firstSeq fixes the record's position in global
// insertion order, lastSeq arbitrates overwrites (the highest sequence
// number's IP wins, reproducing serial last-write-wins semantics no matter
// in which order concurrent writers actually reach the shard).
type entry struct {
	domain   string
	ip       [4]byte
	firstSeq uint64
	lastSeq  uint64
}

// storeShard is one lock domain of the store.
type storeShard struct {
	mu      sync.RWMutex
	records map[string]*entry
	order   []*entry // insertion entries; sorted by firstSeq when sorted
	sorted  bool
	// csum is the shard's rolling content checksum: the wrapping sum of
	// RecordHash over the shard's current records. It is maintained
	// incrementally on every write, so reading it is O(1), and it depends
	// only on the shard's (domain, IP) set — never on insertion order,
	// sequence numbers, or write interleaving. Two shards holding the same
	// records report the same checksum, which is what lets a delta scanner
	// skip unchanged shards between snapshot epochs.
	csum uint64
}

// ensureSorted restores the order-by-firstSeq invariant after out-of-order
// sequence numbers landed in the shard (concurrent generation).
func (sh *storeShard) ensureSorted() {
	sh.mu.RLock()
	ok := sh.sorted
	sh.mu.RUnlock()
	if ok {
		return
	}
	sh.mu.Lock()
	if !sh.sorted {
		sort.Slice(sh.order, func(i, j int) bool { return sh.order[i].firstSeq < sh.order[j].firstSeq })
		sh.sorted = true
	}
	sh.mu.Unlock()
}

// Store is an in-memory authoritative record set: the synthetic equivalent
// of the DNS snapshot the paper obtained from the ActiveDNS project.
//
// The store is sharded by an FNV-1a hash of the domain, with a per-shard
// mutex, so concurrent Add/Lookup traffic from many goroutines scales with
// cores instead of serialising on one lock. Iteration order is still the
// global insertion order (tracked by per-record sequence numbers), and it
// is identical whatever the shard count or write interleaving, so results
// computed over a store are reproducible.
type Store struct {
	shards []storeShard
	seq    atomic.Uint64 // next insertion sequence number
	length atomic.Int64
}

// NewStore returns an empty store with DefaultShards shards.
func NewStore() *Store { return NewShardedStore(DefaultShards) }

// NewShardedStore returns an empty store with n shards (n <= 0 falls back
// to DefaultShards). The shard count affects only contention, never the
// store's observable contents or iteration order.
func NewShardedStore(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Store{shards: make([]storeShard, n)}
	for i := range s.shards {
		s.shards[i].records = make(map[string]*entry)
		s.shards[i].sorted = true
	}
	return s
}

// ShardIndex is the repository-wide domain-sharding convention: an FNV-1a
// hash of the already-normalised domain, mod the shard count. The store,
// the delta-scan engine's per-shard caches, and the serving layer's shard
// workers (internal/serve) all partition the domain space with this exact
// function, so "the shard a domain lives in" means the same thing in every
// subsystem and state can be handed between them shard by shard.
func ShardIndex(domain string, shards int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= 1099511628211
	}
	return int(h % uint64(shards))
}

// shardOf hashes a normalised domain to its shard (ShardIndex).
func (s *Store) shardOf(domain string) *storeShard {
	return &s.shards[ShardIndex(domain, len(s.shards))]
}

// Add inserts or overwrites a record. Domains are normalised to lower case
// without a trailing dot. Add is safe for concurrent use with Lookup and
// other Adds.
func (s *Store) Add(domain string, ip [4]byte) {
	s.addAt(s.seq.Add(1)-1, Normalize(domain), ip)
}

// addAt inserts an already-normalised domain under an explicit sequence
// number. Concurrent callers with distinct sequence numbers converge on
// the same store state regardless of arrival order: a record's position is
// its smallest sequence number, its IP the one written with the largest.
func (s *Store) addAt(seq uint64, domain string, ip [4]byte) {
	sh := s.shardOf(domain)
	sh.mu.Lock()
	if e := sh.records[domain]; e != nil {
		if seq < e.firstSeq {
			e.firstSeq = seq
			sh.sorted = false
		}
		if seq >= e.lastSeq {
			e.lastSeq = seq
			if e.ip != ip {
				sh.csum += RecordHash(domain, ip) - RecordHash(domain, e.ip)
				e.ip = ip
			}
		}
		sh.mu.Unlock()
		return
	}
	sh.csum += RecordHash(domain, ip)
	e := &entry{domain: domain, ip: ip, firstSeq: seq, lastSeq: seq}
	sh.records[domain] = e
	if sh.sorted && len(sh.order) > 0 && sh.order[len(sh.order)-1].firstSeq > seq {
		sh.sorted = false
	}
	sh.order = append(sh.order, e)
	sh.mu.Unlock()
	s.length.Add(1)
}

// RecordHash is the per-record content hash feeding the shard checksums:
// FNV-1a over the normalised domain, mixed with the address through a
// SplitMix64-style finaliser so single-byte IP changes flip about half the
// output bits. It is a pure function of (domain, IP).
func RecordHash(domain string, ip [4]byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= 1099511628211
	}
	h ^= uint64(ip[0])<<24 | uint64(ip[1])<<16 | uint64(ip[2])<<8 | uint64(ip[3])
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// RecordHashBytes is RecordHash over a domain held as raw bytes (e.g. a
// slice into an mmap'd snapshot arena), avoiding the string conversion.
//
//squat:hot
func RecordHashBytes(domain []byte, ip [4]byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= 1099511628211
	}
	h ^= uint64(ip[0])<<24 | uint64(ip[1])<<16 | uint64(ip[2])<<8 | uint64(ip[3])
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// ShardChecksum returns the rolling content checksum of one shard: a
// commutative sum of RecordHash over the shard's current records. Equal
// checksums mean (up to hash collision) equal record sets, independent of
// how and in which order the records were written — the key a delta
// scanner uses to skip unchanged shards between epochs. Reading is O(1):
// the checksum is maintained incrementally by Add.
func (s *Store) ShardChecksum(shard int) uint64 {
	sh := &s.shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.csum
}

// Checksums returns all per-shard checksums. The slice is a copy.
func (s *Store) Checksums() []uint64 {
	out := make([]uint64, len(s.shards))
	for i := range s.shards {
		out[i] = s.ShardChecksum(i)
	}
	return out
}

// ShardOf returns the shard index a domain maps to, so callers that keep
// per-shard state of their own (e.g. a delta-scan cache) can mirror the
// store's partitioning exactly.
func (s *Store) ShardOf(domain string) int {
	return ShardIndex(Normalize(domain), len(s.shards))
}

// Lookup returns the address for a domain.
func (s *Store) Lookup(domain string) ([4]byte, bool) {
	d := Normalize(domain)
	sh := s.shardOf(d)
	sh.mu.RLock()
	e := sh.records[d]
	if e == nil {
		sh.mu.RUnlock()
		return [4]byte{}, false
	}
	ip := e.ip
	sh.mu.RUnlock()
	return ip, true
}

// Len returns the number of records.
func (s *Store) Len() int { return int(s.length.Load()) }

// NumShards returns the shard count, the natural unit of work for callers
// that distribute a scan themselves via RangeShard.
func (s *Store) NumShards() int { return len(s.shards) }

// Range calls fn for every record in insertion order, stopping if fn
// returns false. Range holds every shard's read lock for the duration of
// the iteration, so it is safe against concurrent Adds (they block), but
// fn must not itself mutate the store.
func (s *Store) Range(fn func(Record) bool) {
	for i := range s.shards {
		s.shards[i].ensureSorted()
	}
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.RUnlock()
		}
	}()
	// K-way merge of the per-shard sequences; with a few dozen shards a
	// linear min-scan per record beats heap bookkeeping.
	heads := make([]int, len(s.shards))
	for {
		best := -1
		var bestSeq uint64
		for i := range s.shards {
			if heads[i] >= len(s.shards[i].order) {
				continue
			}
			if e := s.shards[i].order[heads[i]]; best == -1 || e.firstSeq < bestSeq {
				best, bestSeq = i, e.firstSeq
			}
		}
		if best == -1 {
			return
		}
		e := s.shards[best].order[heads[best]]
		heads[best]++
		if !fn(Record{Domain: e.domain, IP: e.ip}) {
			return
		}
	}
}

// RangeShard calls fn for every record of one shard in insertion order,
// stopping if fn returns false. The shard's read lock is held for the
// duration; fn must not mutate the store.
func (s *Store) RangeShard(shard int, fn func(Record) bool) {
	sh := &s.shards[shard]
	sh.ensureSorted()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, e := range sh.order {
		if !fn(Record{Domain: e.domain, IP: e.ip}) {
			return
		}
	}
}

// ParallelRange calls fn for every record, distributing shards over up to
// workers goroutines (workers <= 0 means GOMAXPROCS). fn may be called
// concurrently and observes no particular order; returning false stops the
// whole iteration promptly (records already in flight may still be
// delivered). fn must be safe for concurrent calls and must not mutate the
// store.
func (s *Store) ParallelRange(workers int, fn func(Record) bool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				s.RangeShard(i, func(r Record) bool {
					if stop.Load() {
						return false
					}
					if !fn(r) {
						stop.Store(true)
						return false
					}
					return true
				})
			}
		}()
	}
	wg.Wait()
}

// Domains returns all domain names in insertion order.
func (s *Store) Domains() []string {
	out := make([]string, 0, s.Len())
	s.Range(func(r Record) bool {
		out = append(out, r.Domain)
		return true
	})
	return out
}

// WriteSnapshot serialises the store as "domain,ip" lines sorted by domain,
// the on-disk snapshot format shared with ReadSnapshot. Records are copied
// out under one read-lock pass per shard (no per-record lock round trips).
func (s *Store) WriteSnapshot(w io.Writer) error {
	recs := make([]Record, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.order {
			recs = append(recs, Record{Domain: e.domain, IP: e.ip})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Domain < recs[j].Domain })
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%s,%d.%d.%d.%d\n", r.Domain, r.IP[0], r.IP[1], r.IP[2], r.IP[3]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot parses the snapshot format produced by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		comma := strings.LastIndexByte(text, ',')
		if comma < 0 {
			return nil, fmt.Errorf("dnsx: snapshot line %d: missing comma", line)
		}
		ip, err := parseIPv4(text[comma+1:])
		if err != nil {
			return nil, fmt.Errorf("dnsx: snapshot line %d: %w", line, err)
		}
		s.Add(text[:comma], ip)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseIPv4(s string) ([4]byte, error) {
	var ip [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("bad IPv4 %q", s)
	}
	for i, p := range parts {
		v := 0
		if p == "" || len(p) > 3 {
			return ip, fmt.Errorf("bad IPv4 %q", s)
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return ip, fmt.Errorf("bad IPv4 %q", s)
			}
			v = v*10 + int(c-'0')
		}
		if v > 255 {
			return ip, fmt.Errorf("bad IPv4 %q", s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// Normalize is the canonical domain form every keyed structure in the
// repository indexes by: lower case, no trailing dot.
func Normalize(domain string) string {
	return strings.ToLower(strings.TrimSuffix(domain, "."))
}
