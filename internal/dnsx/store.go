package dnsx

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Record is one entry of an ActiveDNS-style snapshot: a domain name paired
// with the IPv4 address it resolved to. This is the unit the squatting
// scanner consumes (paper §3.1: "each record is characterized by a domain
// and an IP address").
type Record struct {
	Domain string
	IP     [4]byte
}

// IPString returns the dotted-quad form of the record's address.
func (r Record) IPString() string {
	return fmt.Sprintf("%d.%d.%d.%d", r.IP[0], r.IP[1], r.IP[2], r.IP[3])
}

// Store is an in-memory authoritative record set: the synthetic equivalent
// of the DNS snapshot the paper obtained from the ActiveDNS project.
// It is safe for concurrent readers once populated; Add must not race with
// lookups unless the caller serialises them.
type Store struct {
	mu      sync.RWMutex
	records map[string][4]byte
	order   []string // insertion order for deterministic iteration
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{records: make(map[string][4]byte)}
}

// Add inserts or overwrites a record. Domains are normalised to lower case
// without a trailing dot.
func (s *Store) Add(domain string, ip [4]byte) {
	d := normalize(domain)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.records[d]; !exists {
		s.order = append(s.order, d)
	}
	s.records[d] = ip
}

// Lookup returns the address for a domain.
func (s *Store) Lookup(domain string) ([4]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ip, ok := s.records[normalize(domain)]
	return ip, ok
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Range calls fn for every record in insertion order, stopping if fn
// returns false. The store must not be mutated during iteration.
func (s *Store) Range(fn func(Record) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.order {
		if !fn(Record{Domain: d, IP: s.records[d]}) {
			return
		}
	}
}

// Domains returns all domain names in insertion order.
func (s *Store) Domains() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// WriteSnapshot serialises the store as "domain,ip" lines sorted by domain,
// the on-disk snapshot format shared with ReadSnapshot.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	domains := append([]string(nil), s.order...)
	s.mu.RUnlock()
	sort.Strings(domains)
	bw := bufio.NewWriter(w)
	for _, d := range domains {
		ip, _ := s.Lookup(d)
		if _, err := fmt.Fprintf(bw, "%s,%d.%d.%d.%d\n", d, ip[0], ip[1], ip[2], ip[3]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot parses the snapshot format produced by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		comma := strings.LastIndexByte(text, ',')
		if comma < 0 {
			return nil, fmt.Errorf("dnsx: snapshot line %d: missing comma", line)
		}
		ip, err := parseIPv4(text[comma+1:])
		if err != nil {
			return nil, fmt.Errorf("dnsx: snapshot line %d: %w", line, err)
		}
		s.Add(text[:comma], ip)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseIPv4(s string) ([4]byte, error) {
	var ip [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("bad IPv4 %q", s)
	}
	for i, p := range parts {
		v := 0
		if p == "" || len(p) > 3 {
			return ip, fmt.Errorf("bad IPv4 %q", s)
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return ip, fmt.Errorf("bad IPv4 %q", s)
			}
			v = v*10 + int(c-'0')
		}
		if v > 255 {
			return ip, fmt.Errorf("bad IPv4 %q", s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

func normalize(domain string) string {
	return strings.ToLower(strings.TrimSuffix(domain, "."))
}
