// Package imghash implements perceptual image hashing — average hash,
// difference hash, and DCT-based perceptual hash — with Hamming distance
// comparison.
//
// The paper measures layout obfuscation by comparing the "Image hash" of
// phishing screenshots against the brands' original pages (§4.2, Figures 8
// and 9): visually-similar pages hash within a small Hamming distance,
// while layout-obfuscated pages drift to distances of 20+ out of 64 bits.
// This package provides the same metric for the reproduction's rasters.
package imghash

import (
	"math"
	"math/bits"

	"squatphi/internal/render"
)

// Hash is a 64-bit perceptual hash.
type Hash uint64

// Distance returns the Hamming distance between two hashes (0..64).
func Distance(a, b Hash) int { return bits.OnesCount64(uint64(a) ^ uint64(b)) }

// hashGrid is the downsampling resolution: 8x8 = 64 bits.
const hashGrid = 8

// downsample shrinks a raster to a w x h mean-intensity grid.
func downsample(ra *render.Raster, w, h int) []float64 {
	out := make([]float64, w*h)
	if ra.W == 0 || ra.H == 0 {
		return out
	}
	for gy := 0; gy < h; gy++ {
		y0, y1 := gy*ra.H/h, (gy+1)*ra.H/h
		if y1 == y0 {
			y1 = y0 + 1
		}
		for gx := 0; gx < w; gx++ {
			x0, x1 := gx*ra.W/w, (gx+1)*ra.W/w
			if x1 == x0 {
				x1 = x0 + 1
			}
			sum, n := 0.0, 0
			for y := y0; y < y1 && y < ra.H; y++ {
				for x := x0; x < x1 && x < ra.W; x++ {
					sum += float64(ra.At(x, y))
					n++
				}
			}
			if n > 0 {
				out[gy*w+gx] = sum / float64(n)
			}
		}
	}
	return out
}

// Average computes the aHash: each of the 8x8 cells is compared to the
// global mean intensity.
func Average(ra *render.Raster) Hash {
	grid := downsample(ra, hashGrid, hashGrid)
	mean := 0.0
	for _, v := range grid {
		mean += v
	}
	mean /= float64(len(grid))
	var h Hash
	for i, v := range grid {
		if v < mean { // darker than average = 1 (content present)
			h |= 1 << uint(i)
		}
	}
	return h
}

// Difference computes the dHash: each cell is compared to its right
// neighbour on a 9x8 grid, capturing horizontal gradients.
func Difference(ra *render.Raster) Hash {
	grid := downsample(ra, hashGrid+1, hashGrid)
	var h Hash
	i := 0
	for y := 0; y < hashGrid; y++ {
		for x := 0; x < hashGrid; x++ {
			if grid[y*(hashGrid+1)+x] < grid[y*(hashGrid+1)+x+1] {
				h |= 1 << uint(i)
			}
			i++
		}
	}
	return h
}

// pGrid is the pHash working resolution before the DCT.
const pGrid = 32

// Perceptual computes the pHash: a 32x32 downsample, a 2-D DCT-II, and the
// sign of the top-left 8x8 low-frequency coefficients (excluding DC)
// against their median.
func Perceptual(ra *render.Raster) Hash {
	grid := downsample(ra, pGrid, pGrid)
	coef := dct2d(grid, pGrid)

	// Collect the 8x8 low-frequency block, skipping the DC term.
	var lows []float64
	for y := 0; y < hashGrid; y++ {
		for x := 0; x < hashGrid; x++ {
			if x == 0 && y == 0 {
				continue
			}
			lows = append(lows, coef[y*pGrid+x])
		}
	}
	med := median(lows)
	var h Hash
	i := 0
	for y := 0; y < hashGrid; y++ {
		for x := 0; x < hashGrid; x++ {
			if x == 0 && y == 0 {
				continue
			}
			if coef[y*pGrid+x] > med {
				h |= 1 << uint(i)
			}
			i++
		}
	}
	return h
}

// dct2d computes a 2-D DCT-II of an n x n grid (rows, then columns).
func dct2d(grid []float64, n int) []float64 {
	tmp := make([]float64, n*n)
	out := make([]float64, n*n)
	// Precompute the cosine basis.
	cosTab := make([]float64, n*n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			cosTab[k*n+i] = math.Cos(math.Pi * float64(k) * (float64(i) + 0.5) / float64(n))
		}
	}
	for y := 0; y < n; y++ {
		for k := 0; k < n; k++ {
			sum := 0.0
			for x := 0; x < n; x++ {
				sum += grid[y*n+x] * cosTab[k*n+x]
			}
			tmp[y*n+k] = sum
		}
	}
	for x := 0; x < n; x++ {
		for k := 0; k < n; k++ {
			sum := 0.0
			for y := 0; y < n; y++ {
				sum += tmp[y*n+x] * cosTab[k*n+y]
			}
			out[k*n+x] = sum
		}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	// Insertion sort: n is 63, not worth importing sort for floats here.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
