package imghash

import (
	"testing"
	"testing/quick"

	"squatphi/internal/render"
	"squatphi/internal/simrand"
)

// pageRaster renders a small login-style page, optionally perturbed.
func pageRaster(seed uint64, perturb bool) *render.Raster {
	html := `<html><head><title>Bank Login</title></head><body>
		<h1>Welcome Back</h1>
		<p>Sign in to your account to manage payments and transfers securely</p>
		<form><input type=email placeholder="Email"><input type=password placeholder="Password">
		<input type=submit value="Sign In"></form></body></html>`
	opts := render.Options{}
	if perturb {
		opts.Perturb = simrand.New(seed)
	}
	return render.Screenshot(html, opts)
}

func TestDistanceBasics(t *testing.T) {
	if Distance(0, 0) != 0 {
		t.Fatal("Distance(0,0) != 0")
	}
	if Distance(0, ^Hash(0)) != 64 {
		t.Fatal("Distance(0,~0) != 64")
	}
	if Distance(0b1011, 0b0001) != 2 {
		t.Fatal("Distance(1011,0001) != 2")
	}
}

func TestIdenticalImagesZeroDistance(t *testing.T) {
	a, b := pageRaster(1, false), pageRaster(1, false)
	for name, fn := range map[string]func(*render.Raster) Hash{
		"average": Average, "difference": Difference, "perceptual": Perceptual,
	} {
		if d := Distance(fn(a), fn(b)); d != 0 {
			t.Errorf("%s: identical renders at distance %d", name, d)
		}
	}
}

func TestSmallNoiseSmallDistance(t *testing.T) {
	a := pageRaster(1, false)
	b := a.Clone()
	b.AddNoise(simrand.New(3), 0.01)
	// aHash and pHash must be noise-robust. dHash compares near-equal
	// neighbouring cells on a mostly-white page, so sparse noise legally
	// flips many of its bits — only sanity-check it.
	if d := Distance(Average(a), Average(b)); d > 12 {
		t.Errorf("average: 1%% noise moved hash by %d bits", d)
	}
	if d := Distance(Perceptual(a), Perceptual(b)); d > 12 {
		t.Errorf("perceptual: 1%% noise moved hash by %d bits", d)
	}
	if d := Distance(Difference(a), Difference(b)); d > 40 {
		t.Errorf("difference: 1%% noise moved hash by %d bits", d)
	}
}

func TestLayoutObfuscationIncreasesDistance(t *testing.T) {
	// The paper's core observation (Fig. 8/9): layout-obfuscated phishing
	// pages land far from the original, while faithful copies land close.
	orig := pageRaster(0, false)
	copyD := Distance(Perceptual(orig), Perceptual(pageRaster(0, false)))
	obfD := 0
	for seed := uint64(1); seed <= 5; seed++ {
		obfD += Distance(Perceptual(orig), Perceptual(pageRaster(seed, true)))
	}
	obfD /= 5
	if copyD != 0 {
		t.Fatalf("faithful copy at distance %d", copyD)
	}
	if obfD <= 4 {
		t.Fatalf("mean obfuscated distance %d, want > 4", obfD)
	}
}

func TestDifferentPagesDiffer(t *testing.T) {
	a := pageRaster(1, false)
	other := render.Screenshot(`<h1>Totally different page</h1><p>news weather sports and a very long article body goes here</p>`, render.Options{})
	if d := Distance(Perceptual(a), Perceptual(other)); d < 5 {
		t.Fatalf("unrelated pages at perceptual distance %d", d)
	}
}

func TestHashDeterministic(t *testing.T) {
	a := pageRaster(7, true)
	if Average(a) != Average(a) || Difference(a) != Difference(a) || Perceptual(a) != Perceptual(a) {
		t.Fatal("hashing is not deterministic")
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	// Symmetry, identity, triangle inequality on random hash values.
	if err := quick.Check(func(a, b, c uint64) bool {
		ha, hb, hc := Hash(a), Hash(b), Hash(c)
		if Distance(ha, hb) != Distance(hb, ha) {
			return false
		}
		if Distance(ha, ha) != 0 {
			return false
		}
		return Distance(ha, hc) <= Distance(ha, hb)+Distance(hb, hc)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndTinyRasters(t *testing.T) {
	// Degenerate sizes must not panic.
	for _, dims := range [][2]int{{1, 1}, {3, 2}, {8, 8}, {640, 1}} {
		ra := render.NewRaster(dims[0], dims[1])
		_ = Average(ra)
		_ = Difference(ra)
		_ = Perceptual(ra)
	}
}

func TestScaleInvariance(t *testing.T) {
	// pHash of the same content at 2x canvas scale should stay close:
	// downsampling normalises resolution.
	small := render.NewRaster(64, 64)
	render.DrawText(small, 4, 4, "LOGIN", 1)
	small.FillRect(4, 30, 50, 10, 0)
	big := render.NewRaster(128, 128)
	render.DrawText(big, 8, 8, "LOGIN", 2)
	big.FillRect(8, 60, 100, 20, 0)
	if d := Distance(Perceptual(small), Perceptual(big)); d > 16 {
		t.Fatalf("2x scaled content at perceptual distance %d", d)
	}
}

func BenchmarkPerceptual(b *testing.B) {
	ra := pageRaster(1, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Perceptual(ra)
	}
}

func BenchmarkAverage(b *testing.B) {
	ra := pageRaster(1, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Average(ra)
	}
}
