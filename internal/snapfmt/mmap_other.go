//go:build !linux

package snapfmt

import (
	"io"
	"os"
)

// mapFile on non-linux platforms reads the file into memory; the
// Snapshot API is identical, only cold start pays a full read.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size < 0 || size != int64(int(size)) {
		return nil, nil, corruptf("file size %d not readable", size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
