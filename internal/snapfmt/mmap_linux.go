//go:build linux

package snapfmt

import (
	"io"
	"os"
	"syscall"
)

// mapFile maps a file read-only via mmap. Cold start on a paper-scale
// snapshot is then a few syscalls: the 5+GB of columns are faulted in by
// the scan itself, sequentially, at page-cache speed. The returned
// closer unmaps.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		// mmap of length 0 is EINVAL; an empty file is simply not a
		// snapshot, and OpenBytes reports that uniformly.
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size != int64(int(size)) {
		return nil, nil, corruptf("file size %d not mappable", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some fuse mounts) fall back
		// to a plain read.
		return readFile(f, size)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// readFile is the portable fallback: read the whole file into memory.
func readFile(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
