package snapfmt

import (
	"bufio"
	"io"
	"sort"

	"squatphi/internal/dnsx"
)

// Writer accumulates records into per-shard columns and serialises them
// as one snapfmt file. It is the streaming successor of
// dnsx.Store.WriteSnapshot for scan-scale data: records are bucketed by
// the store-compatible shard hash as they arrive, held as flat columns
// (no per-record boxing), and flushed sequentially.
//
// Writer does not deduplicate: callers feeding it must present each
// domain once (the snapshot generator does by construction; WriteStore
// iterates a store, whose records are unique). Writer is not safe for
// concurrent use.
type Writer struct {
	shards []writerShard
	n      uint64
	sorted bool
}

type writerShard struct {
	offs  []uint32 // arena end offset of each record
	ips   []byte   // packed IPv4, 4 bytes per record
	arena []byte
	csum  uint64
}

// NewWriter builds a writer partitioning records over numShards segments
// (<= 0 selects dnsx.DefaultShards).
func NewWriter(numShards int) *Writer {
	if numShards <= 0 {
		numShards = dnsx.DefaultShards
	}
	return &Writer{shards: make([]writerShard, numShards)}
}

// Add buckets one record. The domain must already be normalized (lower
// case, no trailing dot) — the generator and dnsx.Store both emit that
// form — so the segment checksums stay byte-compatible with
// dnsx.Store.ShardChecksum over the same records.
func (w *Writer) Add(domain string, ip [4]byte) {
	sh := &w.shards[shardOf(domain, len(w.shards))]
	sh.arena = append(sh.arena, domain...)
	sh.offs = append(sh.offs, uint32(len(sh.arena)))
	sh.ips = append(sh.ips, ip[0], ip[1], ip[2], ip[3])
	sh.csum += dnsx.RecordHash(domain, ip)
	w.n++
}

// Len returns the number of records added so far.
func (w *Writer) Len() uint64 { return w.n }

// MarkSorted declares that records were added in an order that leaves
// every segment sorted by domain, setting FlagSorted on the output.
// WriteStore uses it; streaming producers normally cannot.
func (w *Writer) MarkSorted() { w.sorted = true }

// WriteTo serialises the accumulated records in the snapfmt layout.
func (w *Writer) WriteTo(dst io.Writer) (int64, error) {
	for i := range w.shards {
		if uint64(len(w.shards[i].arena)) > maxSegmentArena {
			return 0, corruptf("segment %d arena exceeds 4GB", i)
		}
	}
	bw := bufio.NewWriterSize(dst, 1<<20)
	var written int64
	put := func(b []byte) error {
		n, err := bw.Write(b)
		written += int64(n)
		return err
	}

	var scratch [32]byte
	hdr := scratch[:headerSize]
	copy(hdr, Magic)
	le.PutUint32(hdr[8:], Version)
	var flags uint32
	if w.sorted {
		flags |= FlagSorted
	}
	le.PutUint32(hdr[12:], flags)
	le.PutUint32(hdr[16:], uint32(len(w.shards)))
	le.PutUint32(hdr[20:], 0)
	le.PutUint64(hdr[24:], w.n)
	if err := put(hdr); err != nil {
		return written, err
	}

	// Segment table: offsets are computable up front from the column sizes.
	segOff := align8(headerSize + uint64(len(w.shards))*tableEntSize)
	segOffs := make([]uint64, len(w.shards))
	for i := range w.shards {
		segOffs[i] = segOff
		segOff = align8(segOff + w.segmentSize(i))
	}
	for i := range w.shards {
		sh := &w.shards[i]
		ent := scratch[:tableEntSize]
		le.PutUint64(ent[0:], segOffs[i])
		le.PutUint64(ent[8:], uint64(len(sh.offs)))
		le.PutUint64(ent[16:], uint64(len(sh.arena)))
		le.PutUint64(ent[24:], sh.csum)
		if err := put(ent); err != nil {
			return written, err
		}
	}

	var pad [8]byte
	for i := range w.shards {
		if n := segOffs[i] - uint64(written); n > 0 {
			if err := put(pad[:n]); err != nil {

				return written, err
			}
		}
		sh := &w.shards[i]
		// Offsets column: leading 0, then each record's arena end.
		le.PutUint32(scratch[:4], 0)
		if err := put(scratch[:4]); err != nil {
			return written, err
		}
		for _, o := range sh.offs {
			le.PutUint32(scratch[:4], o)
			if err := put(scratch[:4]); err != nil {
				return written, err
			}
		}
		if err := put(sh.ips); err != nil {
			return written, err
		}
		if err := put(sh.arena); err != nil {
			return written, err
		}
	}
	if n := align8(uint64(written)) - uint64(written); n > 0 {
		if err := put(pad[:n]); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// segmentSize returns the unpadded byte size of segment i.
func (w *Writer) segmentSize(i int) uint64 {
	sh := &w.shards[i]
	return uint64(len(sh.offs)+1)*4 + uint64(len(sh.ips)) + uint64(len(sh.arena))
}

// WriteStore serialises a dnsx.Store in the snapfmt layout, the binary
// successor of Store.WriteSnapshot. Each store shard becomes one segment,
// sorted by domain and carrying the store's shard checksum, so
// ReadStore(Open(file)) rebuilds a store with exactly the iteration order
// of the text round trip (ReadSnapshot of WriteSnapshot: global
// insertion order = sorted by domain).
func WriteStore(dst io.Writer, s *dnsx.Store) (int64, error) {
	w := NewWriter(s.NumShards())
	w.MarkSorted()
	recs := make([]dnsx.Record, 0, 1024)
	for i := 0; i < s.NumShards(); i++ {
		recs = recs[:0]
		s.RangeShard(i, func(r dnsx.Record) bool {
			recs = append(recs, r)
			return true
		})
		sort.Slice(recs, func(a, b int) bool { return recs[a].Domain < recs[b].Domain })
		for _, r := range recs {
			w.Add(r.Domain, r.IP)
		}
	}
	return w.WriteTo(dst)
}
