// Package snapfmt implements the binary DNS-snapshot format: a flat,
// versioned, little-endian columnar layout designed to be mmap'd and
// scanned in place at paper scale (224.8M records) without parsing a
// single line of text.
//
// The text snapshot (dnsx.WriteSnapshot, "domain,ip" lines) is the
// interchange format; this package is the scan format. Cold start on a
// text snapshot is a full parse — every domain re-allocated, every IP
// re-parsed. Cold start here is a file map: the scanner walks domain
// bytes directly out of the page cache and never materializes a string
// on the miss path.
//
// # Layout
//
// All integers are little-endian. The file is:
//
//	header (32 bytes)
//	  magic      [8]byte  "sqphsnp1"
//	  version    uint32   (currently 1)
//	  flags      uint32   (bit 0: every segment is sorted by domain)
//	  numShards  uint32
//	  reserved   uint32   (zero)
//	  numRecords uint64
//	segment table (numShards × 32 bytes)
//	  offset     uint64   absolute file offset of the segment, 8-aligned
//	  count      uint64   records in the segment
//	  arenaLen   uint64   domain-arena bytes in the segment
//	  checksum   uint64   commutative RecordHash sum over the segment's
//	                      records — byte-compatible with
//	                      dnsx.Store.ShardChecksum, so a delta scanner
//	                      can diff snapshots from headers alone
//	segments (each 8-aligned, zero-padded)
//	  offsets    (count+1) × uint32   domain-arena offsets; offsets[0] = 0,
//	                                  offsets[count] = arenaLen
//	  ips        count × 4 bytes      packed IPv4 addresses
//	  arena      arenaLen bytes       concatenated domain names
//
// Records are partitioned into segments by the same FNV-1a domain hash
// dnsx.Store shards by, so segment i of a snapshot written from a store
// holds exactly the records of store shard i and carries its checksum.
package snapfmt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies a snapfmt file; the trailing digit is the major
// layout generation (bump on incompatible relayout, alongside Version).
const Magic = "sqphsnp1"

// Version is the current format version.
const Version = 1

const (
	headerSize   = 32
	tableEntSize = 32

	// FlagSorted marks a file whose every segment is sorted by domain.
	// Only sorted files can be rebuilt into a dnsx.Store with the exact
	// text-round-trip iteration order; unsorted files are scan-only.
	FlagSorted = 1 << 0

	// maxSegmentArena bounds one segment's domain arena: offsets are
	// uint32. At the paper's 224.8M records over 32 shards a segment
	// arena is ~170MB, comfortably under the 4GB ceiling.
	maxSegmentArena = 1<<32 - 1
)

// ErrCorrupt is wrapped by every structural-validation failure of a
// snapshot file, from a bad magic to a non-monotonic offsets column.
var ErrCorrupt = errors.New("snapfmt: corrupt snapshot")

// corruptf is error-path only: reaching it means the scan is already
// aborting, so its fmt allocations never price into the hot loop.
//
//squat:cold
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// shardOf replicates dnsx.Store's FNV-1a domain-to-shard mapping over an
// already-normalized domain.
func shardOf(domain string, numShards int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= 1099511628211
	}
	return int(h % uint64(numShards))
}

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

var le = binary.LittleEndian
