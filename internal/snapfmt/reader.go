package snapfmt

import (
	"os"

	"squatphi/internal/dnsx"
)

// Snapshot is a read-only view over one snapfmt file. Open maps the file
// into memory (mmap on linux, a plain read elsewhere), so constructing a
// Snapshot is O(header + segment table) regardless of record count: the
// columns are faulted in lazily by the kernel as the scan touches them.
//
// All accessors are safe for concurrent use; the underlying data is
// immutable until Close.
type Snapshot struct {
	data  []byte
	close func() error
	flags uint32
	n     uint64
	segs  []segmentView
}

// segmentView holds the decoded table entry plus bounds-checked column
// subslices of one segment.
type segmentView struct {
	count    int
	checksum uint64
	offsets  []byte // (count+1) × uint32, little-endian
	ips      []byte // count × 4
	arena    []byte
}

// Open maps the snapshot file at path. The returned Snapshot must be
// Closed to release the mapping.
func Open(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, closer, err := mapFile(f, fi.Size())
	if err != nil {
		return nil, err
	}
	s, err := OpenBytes(data)
	if err != nil {
		closer()
		return nil, err
	}
	s.close = closer
	return s, nil
}

// OpenBytes parses and structurally validates a snapshot held in memory.
// Validation covers everything reachable without touching the columns —
// magic, version, table bounds, column extents, record totals — so a
// truncated or corrupt file errors here or in Visit, never panics.
func OpenBytes(data []byte) (*Snapshot, error) {
	if len(data) < headerSize {
		return nil, corruptf("file shorter than header: %d bytes", len(data))
	}
	if string(data[:8]) != Magic {
		return nil, corruptf("bad magic %q", data[:8])
	}
	if v := le.Uint32(data[8:]); v != Version {
		return nil, corruptf("unsupported version %d", v)
	}
	flags := le.Uint32(data[12:])
	numShards := le.Uint32(data[16:])
	numRecords := le.Uint64(data[24:])
	if numShards == 0 || numShards > 1<<20 {
		return nil, corruptf("implausible shard count %d", numShards)
	}
	tableEnd := headerSize + uint64(numShards)*tableEntSize
	if tableEnd > uint64(len(data)) {
		return nil, corruptf("segment table extends past EOF")
	}
	s := &Snapshot{data: data, flags: flags, n: numRecords, segs: make([]segmentView, numShards)}
	var total uint64
	for i := range s.segs {
		ent := data[headerSize+uint64(i)*tableEntSize:]
		off := le.Uint64(ent[0:])
		count := le.Uint64(ent[8:])
		arenaLen := le.Uint64(ent[16:])
		if count > uint64(len(data))/4 {
			return nil, corruptf("segment %d: implausible record count %d", i, count)
		}
		if arenaLen > maxSegmentArena {
			return nil, corruptf("segment %d: arena length %d exceeds offset range", i, arenaLen)
		}
		if off%8 != 0 {
			return nil, corruptf("segment %d: misaligned offset %d", i, off)
		}
		offsLen := (count + 1) * 4
		ipsLen := count * 4
		end := off + offsLen + ipsLen + arenaLen
		if off < tableEnd || end > uint64(len(data)) || end < off {
			return nil, corruptf("segment %d: extent [%d, %d) out of file bounds", i, off, end)
		}
		sv := &s.segs[i]
		sv.count = int(count)
		sv.checksum = le.Uint64(ent[24:])
		sv.offsets = data[off : off+offsLen]
		sv.ips = data[off+offsLen : off+offsLen+ipsLen]
		sv.arena = data[off+offsLen+ipsLen : end]
		if first := le.Uint32(sv.offsets); first != 0 {
			return nil, corruptf("segment %d: offsets column starts at %d, want 0", i, first)
		}
		if last := le.Uint32(sv.offsets[offsLen-4:]); uint64(last) != arenaLen {
			return nil, corruptf("segment %d: offsets column ends at %d, want arena length %d", i, last, arenaLen)
		}
		total += count
	}
	if total != numRecords {
		return nil, corruptf("record total %d != header numRecords %d", total, numRecords)
	}
	return s, nil
}

// Close releases the file mapping. The Snapshot and every domain slice
// handed out by Visit are invalid afterwards.
func (s *Snapshot) Close() error {
	if s.close != nil {
		err := s.close()
		s.close = nil
		return err
	}
	return nil
}

// Len returns the record count.
func (s *Snapshot) Len() uint64 { return s.n }

// NumShards returns the segment count.
func (s *Snapshot) NumShards() int { return len(s.segs) }

// Sorted reports whether every segment is sorted by domain (FlagSorted).
func (s *Snapshot) Sorted() bool { return s.flags&FlagSorted != 0 }

// Checksum returns the stored checksum of one segment —
// dnsx.Store.ShardChecksum over the segment's records.
func (s *Snapshot) Checksum(shard int) uint64 { return s.segs[shard].checksum }

// Checksums returns all segment checksums, index-compatible with
// dnsx.Store.Checksums over the same records and shard count.
func (s *Snapshot) Checksums() []uint64 {
	out := make([]uint64, len(s.segs))
	for i := range s.segs {
		out[i] = s.segs[i].checksum
	}
	return out
}

// VisitShard calls fn for every record of one segment, in segment order,
// stopping early if fn returns false. The domain slice aliases the file
// mapping: it is valid only for the duration of the call and must not be
// written to. The offsets column is bounds-checked record by record, so a
// corrupt column yields an error, never a panic or an out-of-range read.
//
//squat:hot
func (s *Snapshot) VisitShard(shard int, fn func(domain []byte, ip [4]byte) bool) error {
	sv := &s.segs[shard]
	offs, ips, arena := sv.offsets, sv.ips, sv.arena
	prev := uint32(0)
	for i := 0; i < sv.count; i++ {
		next := le.Uint32(offs[(i+1)*4:])
		if next < prev || next > uint32(len(arena)) {
			return corruptf("segment %d: record %d offsets [%d, %d) not monotonic in arena of %d", shard, i, prev, next, len(arena))
		}
		ip := [4]byte{ips[i*4], ips[i*4+1], ips[i*4+2], ips[i*4+3]}
		if !fn(arena[prev:next], ip) {
			return nil
		}
		prev = next
	}
	return nil
}

// VisitShardDomains is VisitShard without the IP column: fn sees only the
// domain of each record, and the scan never touches (or faults in) the
// packed IPv4 column. It is the matcher-scan fast path — classification
// ignores IPs, and skipping the per-record 4-byte load is measurable at
// paper scale. Aliasing and error contract as VisitShard.
//
//squat:hot
func (s *Snapshot) VisitShardDomains(shard int, fn func(domain []byte) bool) error {
	sv := &s.segs[shard]
	offs, arena := sv.offsets, sv.arena
	prev := uint32(0)
	for i := 0; i < sv.count; i++ {
		next := le.Uint32(offs[(i+1)*4:])
		if next < prev || next > uint32(len(arena)) {
			return corruptf("segment %d: record %d offsets [%d, %d) not monotonic in arena of %d", shard, i, prev, next, len(arena))
		}
		if !fn(arena[prev:next]) {
			return nil
		}
		prev = next
	}
	return nil
}

// Visit calls fn for every record, segment by segment. See VisitShard for
// the aliasing and error contract.
func (s *Snapshot) Visit(fn func(domain []byte, ip [4]byte) bool) error {
	for i := range s.segs {
		stopped := false
		err := s.VisitShard(i, func(domain []byte, ip [4]byte) bool {
			if !fn(domain, ip) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil || stopped {
			return err
		}
	}
	return nil
}

// VerifyShard recomputes one segment's commutative record checksum and
// compares it to the header. It reads the full segment, so verifying all
// shards costs one pass over the file.
func (s *Snapshot) VerifyShard(shard int) error {
	var sum uint64
	err := s.VisitShard(shard, func(domain []byte, ip [4]byte) bool {
		sum += dnsx.RecordHashBytes(domain, ip)
		return true
	})
	if err != nil {
		return err
	}
	if sum != s.segs[shard].checksum {
		return corruptf("segment %d: checksum %#x, header says %#x", shard, sum, s.segs[shard].checksum)
	}
	return nil
}

// ReadStore rebuilds a dnsx.Store from a sorted snapshot, inserting
// records in globally domain-sorted order via a k-way merge over the
// segments — exactly the insertion order of the text round trip
// (dnsx.ReadSnapshot of Store.WriteSnapshot). Unsorted snapshots are
// scan-only and error here.
func (s *Snapshot) ReadStore() (*dnsx.Store, error) {
	if !s.Sorted() {
		return nil, corruptf("snapshot is not sorted; scan it in place instead")
	}
	st := dnsx.NewShardedStore(len(s.segs))
	type cursor struct {
		domain []byte
		ip     [4]byte
		idx    int
		live   bool
	}
	heads := make([]cursor, len(s.segs))
	advance := func(i int) error {
		c := &heads[i]
		sv := &s.segs[i]
		if c.idx >= sv.count {
			c.live = false
			return nil
		}
		c.live = true
		prev := le.Uint32(sv.offsets[c.idx*4:])
		next := le.Uint32(sv.offsets[(c.idx+1)*4:])
		if next < prev || next > uint32(len(sv.arena)) {
			return corruptf("segment %d: record %d offsets [%d, %d) not monotonic", i, c.idx, prev, next)
		}
		c.domain = sv.arena[prev:next]
		copy(c.ip[:], sv.ips[c.idx*4:c.idx*4+4])
		c.idx++
		return nil
	}
	for i := range heads {
		if err := advance(i); err != nil {
			return nil, err
		}
	}
	for {
		best := -1
		for i := range heads {
			if !heads[i].live {
				continue
			}
			if best == -1 || string(heads[i].domain) < string(heads[best].domain) {
				best = i
			}
		}
		if best == -1 {
			return st, nil
		}
		st.Add(string(heads[best].domain), heads[best].ip)
		if err := advance(best); err != nil {
			return nil, err
		}
	}
}
