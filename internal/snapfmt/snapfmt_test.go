package snapfmt

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"squatphi/internal/dnsx"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

// randomStore builds a store with a deterministic pseudo-random record
// population: background noise, squatting shapes, IDN labels, multi-label
// TLDs, case/trailing-dot dirt (which Store.Add normalizes away).
func randomStore(seed uint64, n int) *dnsx.Store {
	rng := simrand.New(seed)
	s := dnsx.NewStore()
	tlds := []string{"com", "net", "org", "io", "co.uk", "com.br"}
	words := []string{"cloud", "shop", "secure", "login", "mail", "paypal", "facebook", "paypa1", "xn--fcebook-8va", "a", ""}
	for i := 0; i < n; i++ {
		var d string
		switch rng.Intn(5) {
		case 0:
			d = fmt.Sprintf("%s-%s.%s", words[rng.Intn(len(words))], words[rng.Intn(len(words))], tlds[rng.Intn(len(tlds))])
		case 1:
			d = fmt.Sprintf("host%d.%s", rng.Intn(1<<20), tlds[rng.Intn(len(tlds))])
		case 2:
			d = fmt.Sprintf("%s%d.%s", words[rng.Intn(len(words))], rng.Intn(100), tlds[rng.Intn(len(tlds))])
		case 3:
			d = fmt.Sprintf("Sub.%s.%s.", words[rng.Intn(len(words))], tlds[rng.Intn(len(tlds))])
		default:
			d = fmt.Sprintf("%s.%s", words[rng.Intn(len(words))], tlds[rng.Intn(len(tlds))])
		}
		s.Add(d, dnsx.RandomIP(rng))
	}
	return s
}

// storeRecords flattens a store in its deterministic iteration order.
func storeRecords(s *dnsx.Store) []dnsx.Record {
	var out []dnsx.Record
	s.Range(func(r dnsx.Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// TestRoundTripMatchesText is the round-trip property of the issue:
// for random stores, text WriteSnapshot→ReadSnapshot and binary
// WriteStore→ReadStore produce identical store contents (records,
// iteration order, checksums) and identical scan verdicts.
func TestRoundTripMatchesText(t *testing.T) {
	m := squat.NewMatcher([]squat.Brand{
		squat.NewBrand("paypal.com"),
		squat.NewBrand("facebook.com"),
	})
	for seed := uint64(1); seed <= 8; seed++ {
		n := int(seed-1) * 97 // includes the empty store
		src := randomStore(seed, n)

		var text bytes.Buffer
		if err := src.WriteSnapshot(&text); err != nil {
			t.Fatal(err)
		}
		fromText, err := dnsx.ReadSnapshot(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatal(err)
		}

		var bin bytes.Buffer
		if _, err := WriteStore(&bin, src); err != nil {
			t.Fatal(err)
		}
		snap, err := OpenBytes(bin.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !snap.Sorted() {
			t.Fatal("WriteStore output not marked sorted")
		}
		if snap.Len() != uint64(src.Len()) {
			t.Fatalf("seed %d: snapshot has %d records, store %d", seed, snap.Len(), src.Len())
		}
		fromBin, err := snap.ReadStore()
		if err != nil {
			t.Fatal(err)
		}

		if got, want := storeRecords(fromBin), storeRecords(fromText); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: binary round trip records differ from text round trip\nbinary: %v\ntext:   %v", seed, got, want)
		}
		if got, want := fromBin.Checksums(), fromText.Checksums(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: round-trip checksums differ", seed)
		}
		// Segment headers must carry the source store's shard checksums —
		// the invariant a delta scanner relies on.
		if got, want := snap.Checksums(), src.Checksums(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: segment checksums %v != store shard checksums %v", seed, got, want)
		}
		for i := 0; i < snap.NumShards(); i++ {
			if err := snap.VerifyShard(i); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}

		// Scan verdicts: classifying every record of the mapped snapshot
		// must flag exactly the same candidates as scanning the store.
		var want []squat.Candidate
		fromText.Range(func(r dnsx.Record) bool {
			if c, ok := m.Match(r.Domain); ok {
				want = append(want, c)
			}
			return true
		})
		var got []squat.Candidate
		var sc squat.Scratch
		if err := snap.Visit(func(domain []byte, ip [4]byte) bool {
			if c, ok := m.MatchBytes(domain, &sc); ok {
				got = append(got, c)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		sortCandidates(got)
		sortCandidates(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: snapshot scan verdicts differ\nsnapshot: %v\nstore:    %v", seed, got, want)
		}
	}
}

func sortCandidates(cs []squat.Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Domain < cs[j-1].Domain; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// TestOpenFile exercises the mmap (or fallback) file path end to end.
func TestOpenFile(t *testing.T) {
	src := randomStore(42, 500)
	path := filepath.Join(t.TempDir(), "snap.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteStore(f, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.Len() != uint64(src.Len()) {
		t.Fatalf("mapped snapshot has %d records, store %d", snap.Len(), src.Len())
	}
	count := 0
	if err := snap.Visit(func(domain []byte, ip [4]byte) bool {
		if got, ok := src.Lookup(string(domain)); !ok || got != ip {
			t.Fatalf("record %q/%v not in source store", domain, ip)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != src.Len() {
		t.Fatalf("visited %d records, want %d", count, src.Len())
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingWriterChecksums pins the unsorted streaming path: a Writer
// fed the same records as a store produces the same segment checksums and
// record count, but is scan-only (ReadStore refuses).
func TestStreamingWriterChecksums(t *testing.T) {
	src := randomStore(7, 300)
	w := NewWriter(src.NumShards())
	src.Range(func(r dnsx.Record) bool {
		w.Add(r.Domain, r.IP)
		return true
	})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Sorted() {
		t.Fatal("streaming writer output unexpectedly marked sorted")
	}
	if got, want := snap.Checksums(), src.Checksums(); !reflect.DeepEqual(got, want) {
		t.Fatalf("segment checksums %v != store shard checksums %v", got, want)
	}
	if _, err := snap.ReadStore(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadStore on unsorted snapshot: err = %v, want ErrCorrupt", err)
	}
}

// TestOpenBytesRejectsCorruption flips bytes and truncates a valid file at
// every prefix length: OpenBytes+Visit must error or succeed, never panic,
// and structural damage to the header or table must be detected.
func TestOpenBytesRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteStore(&buf, randomStore(3, 100)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := OpenBytes(nil); err == nil {
		t.Error("OpenBytes(nil) succeeded")
	}
	for cut := 0; cut < len(valid); cut += 7 {
		if snap, err := OpenBytes(valid[:cut]); err == nil {
			// A truncation that still parses must at least visit cleanly
			// or error — exercised for panics either way.
			for i := 0; i < snap.NumShards(); i++ {
				_ = snap.VisitShard(i, func([]byte, [4]byte) bool { return true })
			}
			t.Errorf("OpenBytes of %d-byte truncation succeeded", cut)
		}
	}
	// Header field corruption.
	for _, off := range []int{0, 8, 12, 16, 24} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		if snap, err := OpenBytes(mut); err == nil {
			// flags (12) may flip benignly; everything else must fail.
			if off != 12 {
				t.Errorf("OpenBytes with header byte %d flipped succeeded", off)
			}
			_ = snap
		}
	}
	// Segment-table corruption: offsets, counts, arena lengths.
	for off := headerSize; off < headerSize+tableEntSize; off += 4 {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		snap, err := OpenBytes(mut)
		if err != nil {
			continue
		}
		for i := 0; i < snap.NumShards(); i++ {
			_ = snap.VisitShard(i, func([]byte, [4]byte) bool { return true })
			_ = snap.VerifyShard(i)
		}
	}
}

// FuzzOpenBytes is the binary-reader fuzz target of the issue: arbitrary
// input must open-and-visit without panicking or reading out of bounds.
func FuzzOpenBytes(f *testing.F) {
	var buf bytes.Buffer
	if _, err := WriteStore(&buf, randomStore(5, 60)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	trunc := bytes.Clone(valid[:len(valid)/2])
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := OpenBytes(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenBytes error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		n := uint64(0)
		for i := 0; i < snap.NumShards(); i++ {
			if err := snap.VisitShard(i, func(domain []byte, ip [4]byte) bool {
				n++
				return true
			}); err != nil {
				return
			}
			_ = snap.VerifyShard(i)
		}
		if n != snap.Len() {
			t.Fatalf("visited %d records, header says %d", n, snap.Len())
		}
		if snap.Sorted() {
			_, _ = snap.ReadStore()
		}
	})
}
