package evasion

import (
	"math"
	"testing"

	"squatphi/internal/render"
	"squatphi/internal/simrand"
)

const copycatHTML = `<html><head><title>Paypal - Log In</title></head><body>
<h1>Welcome to Paypal</h1>
<form><input type=email placeholder="Email"><input type=password placeholder="Password">
<input type=submit value="Log In"></form></body></html>`

const obfuscatedHTML = `<html><head><title>Log in to your account</title>
<meta name="layout-seed" content="99991"></head><body>
<img src="/logo.png" alt="">
<h1>Your account has been limited</h1>
<script>var c=[104,105];var s="";for(var i=0;i<c.length;i++){s+=String.fromCharCode(c[i]);}eval(s);</script>
<form><input type=email placeholder="Email"><input type=password placeholder="Password">
<input type=submit value="Continue"></form></body></html>`

func TestStringObfuscated(t *testing.T) {
	if StringObfuscated(copycatHTML, "paypal") {
		t.Error("copycat flagged as string obfuscated")
	}
	if !StringObfuscated(obfuscatedHTML, "paypal") {
		t.Error("obfuscated page not flagged")
	}
	if StringObfuscated(obfuscatedHTML, "") {
		t.Error("empty brand flagged")
	}
	// Case-insensitive.
	if StringObfuscated(copycatHTML, "PAYPAL") {
		t.Error("case sensitivity broke detection")
	}
}

func TestAnalyzeCopycat(t *testing.T) {
	orig := render.Screenshot(copycatHTML, render.Options{})
	shot := render.Screenshot(copycatHTML, render.Options{})
	rep := Analyze(copycatHTML, shot, "paypal", orig)
	if rep.LayoutDistance != 0 {
		t.Errorf("copycat layout distance = %d", rep.LayoutDistance)
	}
	if rep.StringObfuscated || rep.CodeObfuscated {
		t.Errorf("copycat evasion flags: %+v", rep)
	}
}

func TestAnalyzeObfuscated(t *testing.T) {
	orig := render.Screenshot(copycatHTML, render.Options{})
	shot := render.Screenshot(obfuscatedHTML, render.Options{Assets: map[string]string{"/logo.png": "Paypal"}})
	rep := Analyze(obfuscatedHTML, shot, "paypal", orig)
	if !rep.StringObfuscated {
		t.Error("string obfuscation missed")
	}
	if !rep.CodeObfuscated {
		t.Errorf("code obfuscation missed: %+v", rep.JS)
	}
	if rep.LayoutDistance <= 0 {
		t.Errorf("layout distance = %d, want > 0", rep.LayoutDistance)
	}
}

func TestAnalyzeNilShots(t *testing.T) {
	rep := Analyze(copycatHTML, nil, "paypal", nil)
	if rep.LayoutDistance != -1 {
		t.Errorf("nil-shot distance = %d, want -1", rep.LayoutDistance)
	}
}

func TestStatsAggregation(t *testing.T) {
	var s Stats
	s.Add(Report{StringObfuscated: true, CodeObfuscated: false, LayoutDistance: 10})
	s.Add(Report{StringObfuscated: true, CodeObfuscated: true, LayoutDistance: 30})
	s.Add(Report{StringObfuscated: false, CodeObfuscated: false, LayoutDistance: -1})
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	if got := s.StringObfRate(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("StringObfRate = %f", got)
	}
	if got := s.CodeObfRate(); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("CodeObfRate = %f", got)
	}
	mean, std := s.LayoutMeanStd()
	if mean != 20 || std != 10 {
		t.Errorf("layout mean/std = %f/%f, want 20/10", mean, std)
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.StringObfRate() != 0 || s.CodeObfRate() != 0 {
		t.Error("empty stats rates non-zero")
	}
	mean, std := s.LayoutMeanStd()
	if mean != 0 || std != 0 {
		t.Error("empty stats layout non-zero")
	}
}

func TestLayoutObfuscationIncreasesDistance(t *testing.T) {
	// Rendering the same content with different layout seeds should move
	// the perceptual hash away from the canonical render (paper Fig. 8).
	orig := render.Screenshot(copycatHTML, render.Options{})
	distSum := 0
	for seed := uint64(1); seed <= 5; seed++ {
		shot := render.Screenshot(copycatHTML, render.Options{Perturb: simrand.New(seed)})
		rep := Analyze(copycatHTML, shot, "paypal", orig)
		distSum += rep.LayoutDistance
	}
	if distSum/5 <= 2 {
		t.Errorf("mean perturbed distance = %d, want > 2", distSum/5)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	orig := render.Screenshot(copycatHTML, render.Options{})
	shot := render.Screenshot(obfuscatedHTML, render.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze(obfuscatedHTML, shot, "paypal", orig)
	}
}
