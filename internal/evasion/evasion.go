// Package evasion implements the evasion measurement of paper §4.2 and
// §6.3: layout obfuscation (perceptual-hash distance between a phishing
// page's screenshot and the brand's real page), string obfuscation (the
// target brand name absent from the HTML text), and code obfuscation
// (JavaScript obfuscation indicators).
package evasion

import (
	"math"
	"strings"

	"squatphi/internal/htmlx"
	"squatphi/internal/imghash"
	"squatphi/internal/jsx"
	"squatphi/internal/render"
)

// Report is the evasion profile of one page against its target brand.
type Report struct {
	// LayoutDistance is the perceptual-hash Hamming distance to the
	// brand's original page screenshot (0-64); -1 when either raster is
	// unavailable.
	LayoutDistance int
	// StringObfuscated reports that the brand name does not occur in any
	// HTML-level text (tags, attributes, title).
	StringObfuscated bool
	// CodeObfuscated reports JavaScript obfuscation indicators.
	CodeObfuscated bool
	// JS is the merged script analysis backing CodeObfuscated.
	JS jsx.Report
}

// Analyze builds the report for one page.
//
// html is the page source, shot its screenshot (may be nil), brandName the
// impersonated brand's registrable name, and originalShot the screenshot
// of the brand's real page (may be nil).
func Analyze(html string, shot *render.Raster, brandName string, originalShot *render.Raster) Report {
	var rep Report
	rep.LayoutDistance = -1
	if shot != nil && originalShot != nil {
		rep.LayoutDistance = imghash.Distance(imghash.Perceptual(shot), imghash.Perceptual(originalShot))
	}
	rep.StringObfuscated = StringObfuscated(html, brandName)
	page := htmlx.Extract(html)
	rep.JS, rep.CodeObfuscated = jsx.AnalyzeAll(page.Scripts)
	return rep
}

// StringObfuscated reports whether brandName is missing from every text
// surface of the HTML: visible text, title, link targets, form attributes
// and image alt text. Matching is case-insensitive on the raw source —
// attackers who keep the brand anywhere in markup are not string
// obfuscated (paper: "extract all the texts from the HTML source; if the
// target brand name is not within the texts, the page is string
// obfuscated").
func StringObfuscated(html, brandName string) bool {
	if brandName == "" {
		return false
	}
	return !strings.Contains(strings.ToLower(html), strings.ToLower(brandName))
}

// Stats aggregates reports into the percentages the paper tabulates
// (Tables 6 and 11).
type Stats struct {
	N                int
	StringObfuscated int
	CodeObfuscated   int
	// LayoutDistances collects the valid distances for mean/stddev.
	LayoutDistances []int
}

// Add folds one report into the aggregate.
func (s *Stats) Add(r Report) {
	s.N++
	if r.StringObfuscated {
		s.StringObfuscated++
	}
	if r.CodeObfuscated {
		s.CodeObfuscated++
	}
	if r.LayoutDistance >= 0 {
		s.LayoutDistances = append(s.LayoutDistances, r.LayoutDistance)
	}
}

// StringObfRate returns the fraction of string-obfuscated pages.
func (s *Stats) StringObfRate() float64 { return rate(s.StringObfuscated, s.N) }

// CodeObfRate returns the fraction of code-obfuscated pages.
func (s *Stats) CodeObfRate() float64 { return rate(s.CodeObfuscated, s.N) }

// LayoutMeanStd returns the mean and standard deviation of the layout
// distances.
func (s *Stats) LayoutMeanStd() (mean, std float64) {
	if len(s.LayoutDistances) == 0 {
		return 0, 0
	}
	for _, d := range s.LayoutDistances {
		mean += float64(d)
	}
	mean /= float64(len(s.LayoutDistances))
	for _, d := range s.LayoutDistances {
		diff := float64(d) - mean
		std += diff * diff
	}
	std /= float64(len(s.LayoutDistances))
	return mean, math.Sqrt(std)
}

func rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
