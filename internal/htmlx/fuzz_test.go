package htmlx

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzExtract drives the tokenizer, parser, and extractor with arbitrary
// bytes: they must never panic, and parsing must preserve basic sanity.
func FuzzExtract(f *testing.F) {
	seeds := []string{
		"",
		"<p>hello</p>",
		"<form><input type=password></form>",
		"<script>if (a<b) x();</script>",
		"<!doctype html><html><head><title>t</title></head><body></body></html>",
		"<<<>>>",
		"<a href='x' broken",
		"&amp;&#65;&#x41;&bogus;",
		"<img src=/logo.png alt=\"brand\">",
		"<meta http-equiv=refresh content='0;url=http://x'>",
		strings.Repeat("<div>", 200),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		page := Extract(src)
		if page == nil {
			t.Fatal("Extract returned nil")
		}
		for _, form := range page.Forms {
			if len(form.Inputs) < 0 {
				t.Fatal("impossible")
			}
		}
		// DecodeEntities output must be valid UTF-8 for valid input.
		if utf8.ValidString(src) && !utf8.ValidString(DecodeEntities(src)) {
			t.Fatalf("DecodeEntities produced invalid UTF-8 from %q", src)
		}
	})
}
