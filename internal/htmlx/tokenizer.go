// Package htmlx implements the HTML-processing substrate: a tokenizer and a
// lightweight DOM parser for the HTML subset produced and analysed in this
// reproduction, plus the extraction helpers the classifier's feature
// engineering needs (paper §5.1): per-tag text (h*, p, a, title), form
// attributes (type, name, submit, placeholder), image metadata, and inline
// script bodies.
//
// It intentionally implements tag-soup recovery rather than the full HTML5
// tree-construction algorithm: phishing kits in the wild emit sloppy markup,
// and the extractor must degrade gracefully rather than reject pages.
package htmlx

import "strings"

// TokenType identifies a lexical token in an HTML byte stream.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is <name attr=...>.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingToken is <name ... />.
	SelfClosingToken
	// CommentToken is <!-- ... --> (also covers <!doctype>).
	CommentToken
)

// Attr is a single name="value" attribute. Names are lower-cased.
type Attr struct {
	Key, Val string
}

// Token is one lexical token. Data holds text content for TextToken and
// CommentToken, and the lower-cased tag name otherwise.
type Token struct {
	Type  TokenType
	Data  string
	Attrs []Attr
}

// rawTextTags switch the tokenizer into raw-text mode: content runs until
// the matching end tag without tag interpretation.
var rawTextTags = map[string]bool{"script": true, "style": true, "textarea": true, "title": true}

// Tokenize lexes an HTML document into tokens. It never fails: malformed
// markup degrades to text tokens.
func Tokenize(src string) []Token {
	var toks []Token
	i := 0
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			toks = appendText(toks, src[i:])
			break
		}
		if lt > 0 {
			toks = appendText(toks, src[i:i+lt])
			i += lt
		}
		tok, n, ok := lexTag(src[i:])
		if !ok {
			// A lone '<' that opens no tag is literal text.
			toks = appendText(toks, "<")
			i++
			continue
		}
		i += n
		toks = append(toks, tok)
		// Raw-text elements: swallow everything up to the closing tag.
		if tok.Type == StartTagToken && rawTextTags[tok.Data] {
			end := "</" + tok.Data
			idx := indexFold(src[i:], end)
			if idx < 0 {
				toks = appendText(toks, src[i:])
				break
			}
			toks = appendText(toks, src[i:i+idx])
			i += idx
			if tok2, n2, ok2 := lexTag(src[i:]); ok2 {
				toks = append(toks, tok2)
				i += n2
			}
		}
	}
	return toks
}

func appendText(toks []Token, s string) []Token {
	if s == "" {
		return toks
	}
	return append(toks, Token{Type: TextToken, Data: DecodeEntities(s)})
}

// lexTag lexes one tag starting at src[0] == '<'. It returns the token, the
// number of bytes consumed, and whether a tag was recognised.
func lexTag(src string) (Token, int, bool) {
	if len(src) < 2 {
		return Token{}, 0, false
	}
	// Comments and declarations.
	if strings.HasPrefix(src, "<!--") {
		end := strings.Index(src[4:], "-->")
		if end < 0 {
			return Token{Type: CommentToken, Data: src[4:]}, len(src), true
		}
		return Token{Type: CommentToken, Data: src[4 : 4+end]}, 4 + end + 3, true
	}
	if src[1] == '!' || src[1] == '?' {
		end := strings.IndexByte(src, '>')
		if end < 0 {
			return Token{Type: CommentToken, Data: src[2:]}, len(src), true
		}
		return Token{Type: CommentToken, Data: src[2:end]}, end + 1, true
	}

	closing := false
	j := 1
	if src[j] == '/' {
		closing = true
		j++
	}
	nameStart := j
	for j < len(src) && isNameByte(src[j]) {
		j++
	}
	if j == nameStart {
		return Token{}, 0, false
	}
	name := strings.ToLower(src[nameStart:j])

	var attrs []Attr
	selfClose := false
	for j < len(src) {
		for j < len(src) && isSpace(src[j]) {
			j++
		}
		if j >= len(src) {
			break
		}
		if src[j] == '>' {
			j++
			typ := StartTagToken
			if closing {
				typ = EndTagToken
			} else if selfClose {
				typ = SelfClosingToken
			}
			return Token{Type: typ, Data: name, Attrs: attrs}, j, true
		}
		if src[j] == '/' {
			selfClose = true
			j++
			continue
		}
		// Attribute name.
		aStart := j
		for j < len(src) && !isSpace(src[j]) && src[j] != '=' && src[j] != '>' && src[j] != '/' {
			j++
		}
		key := strings.ToLower(src[aStart:j])
		val := ""
		for j < len(src) && isSpace(src[j]) {
			j++
		}
		if j < len(src) && src[j] == '=' {
			j++
			for j < len(src) && isSpace(src[j]) {
				j++
			}
			if j < len(src) && (src[j] == '"' || src[j] == '\'') {
				q := src[j]
				j++
				vStart := j
				for j < len(src) && src[j] != q {
					j++
				}
				val = src[vStart:j]
				if j < len(src) {
					j++
				}
			} else {
				vStart := j
				for j < len(src) && !isSpace(src[j]) && src[j] != '>' {
					j++
				}
				val = src[vStart:j]
			}
		}
		if key != "" {
			attrs = append(attrs, Attr{Key: key, Val: DecodeEntities(val)})
		}
	}
	// Unterminated tag: treat the rest as consumed.
	typ := StartTagToken
	if closing {
		typ = EndTagToken
	}
	return Token{Type: typ, Data: name, Attrs: attrs}, len(src), true
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// entities covers the named references that appear in generated and
// real-world phishing markup; numeric references are decoded generally.
var entities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "trade": '™', "mdash": '—',
	"ndash": '–', "hellip": '…', "laquo": '«', "raquo": '»',
}

// DecodeEntities resolves &name; and &#NNN; / &#xHH; references. Unknown
// references pass through verbatim.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 12 {
			b.WriteByte('&')
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if r, ok := decodeRef(ref); ok {
			b.WriteRune(r)
			i += semi + 1
			continue
		}
		b.WriteByte('&')
		i++
	}
	return b.String()
}

func decodeRef(ref string) (rune, bool) {
	if ref == "" {
		return 0, false
	}
	if ref[0] == '#' {
		num := ref[1:]
		base := 10
		if len(num) > 1 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		v := 0
		for _, c := range num {
			d := digitVal(c, base)
			if d < 0 {
				return 0, false
			}
			v = v*base + d
			if v > 0x10ffff {
				return 0, false
			}
		}
		if v == 0 {
			return 0, false
		}
		return rune(v), true
	}
	r, ok := entities[strings.ToLower(ref)]
	return r, ok
}

func digitVal(c rune, base int) int {
	switch {
	case c >= '0' && c <= '9':
		v := int(c - '0')
		if v < base {
			return v
		}
	case base == 16 && c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case base == 16 && c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// indexFold finds the first case-insensitive occurrence of needle in s.
func indexFold(s, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], needle) {
			return i
		}
	}
	return -1
}
