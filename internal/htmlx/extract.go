package htmlx

import "strings"

// Page is the structured view of an HTML document that the classifier's
// feature extractors consume (paper §5.1: lexical features from h/p/a/title
// tags, form-based features from type/name/submit/placeholder attributes).
type Page struct {
	Title       string
	Headings    []string // text of h1..h6
	Paragraphs  []string // text of p
	LinkTexts   []string // text of a
	LinkHrefs   []string
	Forms       []Form
	Images      []Image
	Scripts     []string // inline script bodies
	ScriptSrcs  []string // external script URLs
	MetaRefresh string   // redirect target of <meta http-equiv=refresh>
	Meta        map[string]string
	FullText    string // all visible text
}

// Form is one data-submission form with the attributes the paper's
// form-based features use.
type Form struct {
	Action string
	Method string
	Inputs []Input
}

// Input is one form control.
type Input struct {
	Type        string
	Name        string
	Placeholder string
	Value       string
}

// Image is an <img> element.
type Image struct {
	Src string
	Alt string
}

// Extract parses src and pulls out the classifier-relevant structure.
func Extract(src string) *Page {
	root := Parse(src)
	p := &Page{FullText: root.InnerText()}

	root.Walk(func(n *Node) bool {
		if n.Type != ElementNode {
			return true
		}
		switch n.Tag {
		case "title":
			if p.Title == "" {
				p.Title = strings.TrimSpace(n.InnerText())
			}
		case "h1", "h2", "h3", "h4", "h5", "h6":
			if t := n.InnerText(); t != "" {
				p.Headings = append(p.Headings, t)
			}
		case "p":
			if t := n.InnerText(); t != "" {
				p.Paragraphs = append(p.Paragraphs, t)
			}
		case "a":
			if t := n.InnerText(); t != "" {
				p.LinkTexts = append(p.LinkTexts, t)
			}
			if href, ok := n.Attr("href"); ok {
				p.LinkHrefs = append(p.LinkHrefs, href)
			}
		case "form":
			p.Forms = append(p.Forms, extractForm(n))
			return false // inputs collected by extractForm
		case "img":
			src, _ := n.Attr("src")
			alt, _ := n.Attr("alt")
			p.Images = append(p.Images, Image{Src: src, Alt: alt})
		case "script":
			if src, ok := n.Attr("src"); ok && src != "" {
				p.ScriptSrcs = append(p.ScriptSrcs, src)
			} else if body := rawText(n); strings.TrimSpace(body) != "" {
				p.Scripts = append(p.Scripts, body)
			}
		case "meta":
			if eq, _ := n.Attr("http-equiv"); strings.EqualFold(eq, "refresh") {
				if content, ok := n.Attr("content"); ok {
					p.MetaRefresh = parseMetaRefresh(content)
				}
			}
			if name, ok := n.Attr("name"); ok {
				if content, ok := n.Attr("content"); ok {
					if p.Meta == nil {
						p.Meta = map[string]string{}
					}
					p.Meta[strings.ToLower(name)] = content
				}
			}
		}
		return true
	})
	return p
}

func extractForm(n *Node) Form {
	f := Form{}
	f.Action, _ = n.Attr("action")
	f.Method, _ = n.Attr("method")
	n.Walk(func(c *Node) bool {
		if c.Type != ElementNode {
			return true
		}
		switch c.Tag {
		case "input", "button", "select", "textarea":
			in := Input{}
			in.Type, _ = c.Attr("type")
			in.Name, _ = c.Attr("name")
			in.Placeholder, _ = c.Attr("placeholder")
			in.Value, _ = c.Attr("value")
			if in.Type == "" && c.Tag == "button" {
				in.Type = "submit"
			}
			if c.Tag == "button" && in.Value == "" {
				in.Value = c.InnerText()
			}
			f.Inputs = append(f.Inputs, in)
		}
		return true
	})
	return f
}

// rawText returns the concatenated raw text children of a node without
// whitespace normalisation (script bodies are whitespace-sensitive).
func rawText(n *Node) string {
	var b strings.Builder
	for _, c := range n.Children {
		if c.Type == TextNode {
			b.WriteString(c.Text)
		}
	}
	return b.String()
}

// parseMetaRefresh extracts the URL from a refresh content value like
// "0; url=https://example.com".
func parseMetaRefresh(content string) string {
	for _, part := range strings.Split(content, ";") {
		part = strings.TrimSpace(part)
		if len(part) > 4 && strings.EqualFold(part[:4], "url=") {
			return strings.Trim(part[4:], "'\" ")
		}
	}
	return ""
}

// HasPasswordInput reports whether any form collects a password — the core
// structural hint of a credential-phishing page.
func (p *Page) HasPasswordInput() bool {
	for _, f := range p.Forms {
		for _, in := range f.Inputs {
			if strings.EqualFold(in.Type, "password") {
				return true
			}
		}
	}
	return false
}

// FormKeywords returns all lexical material from the page's forms: input
// types, names, placeholders, and button values. These are the paper's
// form-based features.
func (p *Page) FormKeywords() []string {
	var out []string
	for _, f := range p.Forms {
		for _, in := range f.Inputs {
			for _, s := range []string{in.Type, in.Name, in.Placeholder, in.Value} {
				if s != "" {
					out = append(out, strings.ToLower(s))
				}
			}
		}
	}
	return out
}
