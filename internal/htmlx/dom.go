package htmlx

import "strings"

// NodeType distinguishes DOM node kinds.
type NodeType int

const (
	// ElementNode is a tag with children.
	ElementNode NodeType = iota
	// TextNode is character data.
	TextNode
)

// Node is a DOM-subset node.
type Node struct {
	Type     NodeType
	Tag      string // element tag name, lower case
	Text     string // text content for TextNode
	Attrs    []Attr
	Children []*Node
	Parent   *Node
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// voidTags never have children (HTML void elements).
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Parse builds a DOM tree from HTML source using tag-soup recovery: a
// mismatched end tag closes the nearest matching open element, or is
// dropped if none is open.
func Parse(src string) *Node {
	root := &Node{Type: ElementNode, Tag: "#root"}
	stack := []*Node{root}
	top := func() *Node { return stack[len(stack)-1] }

	for _, tok := range Tokenize(src) {
		switch tok.Type {
		case TextToken:
			top().append(&Node{Type: TextNode, Text: tok.Data})
		case CommentToken:
			// dropped
		case SelfClosingToken:
			top().append(&Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs})
		case StartTagToken:
			n := &Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs}
			top().append(n)
			if !voidTags[tok.Data] {
				stack = append(stack, n)
			}
		case EndTagToken:
			for i := len(stack) - 1; i > 0; i-- {
				if stack[i].Tag == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return root
}

func (n *Node) append(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// Walk visits n and its descendants depth-first, stopping if fn returns
// false for any node (its subtree is still skipped as a unit).
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns all descendant elements with the given tag.
func (n *Node) Find(tag string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// InnerText concatenates all descendant text, whitespace-normalised.
func (n *Node) InnerText() string {
	var parts []string
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && (c.Tag == "script" || c.Tag == "style") {
			return false
		}
		if c.Type == TextNode {
			if t := strings.TrimSpace(c.Text); t != "" {
				parts = append(parts, collapseSpace(t))
			}
		}
		return true
	})
	return strings.Join(parts, " ")
}

func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
