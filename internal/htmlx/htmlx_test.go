package htmlx

import (
	"strings"
	"testing"

	"squatphi/internal/simrand"
)

const samplePage = `<!doctype html>
<html>
<head><title>PayPal &mdash; Log In</title>
<meta http-equiv="refresh" content="5; url=https://market.example/park">
<script src="/static/app.js"></script>
<script>var x = eval("1+1");</script>
</head>
<body>
<h1>Welcome to PayPal</h1>
<p>Enter your credentials to continue. &amp; stay safe</p>
<a href="/help">Need help?</a>
<form action="/login" method="post">
  <input type="email" name="user" placeholder="Email or phone">
  <input type='password' name=pass placeholder="Password">
  <button type="submit">Log In</button>
</form>
<img src="/logo.png" alt="paypal logo">
</body>
</html>`

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize(`<p class="x">hi</p>`)
	if len(toks) != 3 {
		t.Fatalf("tokens = %d, want 3", len(toks))
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "p" || toks[0].Attrs[0] != (Attr{"class", "x"}) {
		t.Fatalf("start tag = %+v", toks[0])
	}
	if toks[1].Type != TextToken || toks[1].Data != "hi" {
		t.Fatalf("text = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "p" {
		t.Fatalf("end tag = %+v", toks[2])
	}
}

func TestTokenizeAttributeStyles(t *testing.T) {
	toks := Tokenize(`<input type=text name='user' placeholder="your name" disabled>`)
	if len(toks) != 1 {
		t.Fatalf("tokens = %d", len(toks))
	}
	want := map[string]string{"type": "text", "name": "user", "placeholder": "your name", "disabled": ""}
	for _, a := range toks[0].Attrs {
		if want[a.Key] != a.Val {
			t.Errorf("attr %s = %q, want %q", a.Key, a.Val, want[a.Key])
		}
		delete(want, a.Key)
	}
	if len(want) != 0 {
		t.Errorf("missing attrs: %v", want)
	}
}

func TestTokenizeComments(t *testing.T) {
	toks := Tokenize(`a<!-- hidden secret -->b`)
	if len(toks) != 3 || toks[1].Type != CommentToken || !strings.Contains(toks[1].Data, "hidden secret") {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := Tokenize(`<script>if (a < b) { x("</div>"); }</script>`)
	// Script content must be one raw text token; the "<" inside must not
	// open a tag. Note real HTML would end at the inner </div ... raw text
	// mode ends at the first matching close of the same tag only.
	if toks[0].Data != "script" {
		t.Fatalf("first token = %+v", toks[0])
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, "if (a < b)") {
		t.Fatalf("script body = %+v", toks[1])
	}
}

func TestTokenizeLoneLT(t *testing.T) {
	toks := Tokenize(`5 < 6 but > 2`)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type == TextToken {
			text.WriteString(tok.Data)
		}
	}
	if got := text.String(); got != "5 < 6 but > 2" {
		t.Fatalf("text = %q", got)
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a &amp; b", "a & b"},
		{"&lt;tag&gt;", "<tag>"},
		{"&#65;&#x42;", "AB"},
		{"&unknown; stays", "&unknown; stays"},
		{"&copy; 2018", "© 2018"},
		{"no refs", "no refs"},
		{"&", "&"},
	}
	for _, c := range cases {
		if got := DecodeEntities(c.in); got != c.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseNesting(t *testing.T) {
	root := Parse(`<div><p>one</p><p>two <b>bold</b></p></div>`)
	ps := root.Find("p")
	if len(ps) != 2 {
		t.Fatalf("found %d <p>, want 2", len(ps))
	}
	if ps[1].InnerText() != "two bold" {
		t.Fatalf("InnerText = %q", ps[1].InnerText())
	}
}

func TestParseTagSoupRecovery(t *testing.T) {
	// Mismatched and unclosed tags must not lose text.
	root := Parse(`<div><p>alpha<span>beta</div>gamma</p>`)
	text := root.InnerText()
	for _, want := range []string{"alpha", "beta", "gamma"} {
		if !strings.Contains(text, want) {
			t.Errorf("InnerText %q lost %q", text, want)
		}
	}
}

func TestParseVoidElements(t *testing.T) {
	root := Parse(`<p>a<br>b<img src="x.png">c</p>`)
	if len(root.Find("p")) != 1 {
		t.Fatal("void elements broke <p> tree")
	}
	if got := root.Find("p")[0].InnerText(); got != "a b c" {
		t.Fatalf("InnerText = %q", got)
	}
}

func TestInnerTextSkipsScriptStyle(t *testing.T) {
	root := Parse(`<body>visible<script>var hidden = "nope";</script><style>.x{}</style></body>`)
	text := root.InnerText()
	if strings.Contains(text, "hidden") || strings.Contains(text, ".x") {
		t.Fatalf("InnerText leaked script/style content: %q", text)
	}
}

func TestExtractSamplePage(t *testing.T) {
	p := Extract(samplePage)
	if p.Title != "PayPal — Log In" {
		t.Errorf("Title = %q", p.Title)
	}
	if len(p.Headings) != 1 || p.Headings[0] != "Welcome to PayPal" {
		t.Errorf("Headings = %v", p.Headings)
	}
	if len(p.Paragraphs) != 1 || !strings.Contains(p.Paragraphs[0], "& stay safe") {
		t.Errorf("Paragraphs = %v", p.Paragraphs)
	}
	if len(p.LinkTexts) != 1 || p.LinkTexts[0] != "Need help?" {
		t.Errorf("LinkTexts = %v", p.LinkTexts)
	}
	if len(p.Forms) != 1 {
		t.Fatalf("Forms = %d, want 1", len(p.Forms))
	}
	f := p.Forms[0]
	if f.Action != "/login" || !strings.EqualFold(f.Method, "post") {
		t.Errorf("Form = %+v", f)
	}
	if len(f.Inputs) != 3 {
		t.Fatalf("Inputs = %+v", f.Inputs)
	}
	if f.Inputs[1].Type != "password" || f.Inputs[1].Name != "pass" || f.Inputs[1].Placeholder != "Password" {
		t.Errorf("password input = %+v", f.Inputs[1])
	}
	if f.Inputs[2].Type != "submit" || f.Inputs[2].Value != "Log In" {
		t.Errorf("submit button = %+v", f.Inputs[2])
	}
	if !p.HasPasswordInput() {
		t.Error("HasPasswordInput = false")
	}
	if len(p.Images) != 1 || p.Images[0].Alt != "paypal logo" {
		t.Errorf("Images = %+v", p.Images)
	}
	if len(p.Scripts) != 1 || !strings.Contains(p.Scripts[0], "eval") {
		t.Errorf("Scripts = %v", p.Scripts)
	}
	if len(p.ScriptSrcs) != 1 || p.ScriptSrcs[0] != "/static/app.js" {
		t.Errorf("ScriptSrcs = %v", p.ScriptSrcs)
	}
	if p.MetaRefresh != "https://market.example/park" {
		t.Errorf("MetaRefresh = %q", p.MetaRefresh)
	}
}

func TestFormKeywords(t *testing.T) {
	p := Extract(samplePage)
	kws := p.FormKeywords()
	joined := strings.Join(kws, " ")
	for _, want := range []string{"password", "email or phone", "log in", "user"} {
		if !strings.Contains(joined, want) {
			t.Errorf("FormKeywords missing %q in %v", want, kws)
		}
	}
}

func TestExtractNoForms(t *testing.T) {
	p := Extract(`<html><body><h1>Just content</h1></body></html>`)
	if len(p.Forms) != 0 || p.HasPasswordInput() {
		t.Fatalf("unexpected forms: %+v", p.Forms)
	}
}

func TestExtractMultipleForms(t *testing.T) {
	p := Extract(`<form><input type=text name=a></form><form><input type=password name=b></form>`)
	if len(p.Forms) != 2 {
		t.Fatalf("Forms = %d, want 2", len(p.Forms))
	}
}

func TestNodeAttr(t *testing.T) {
	root := Parse(`<a href="/x" id=z>t</a>`)
	a := root.Find("a")[0]
	if v, ok := a.Attr("href"); !ok || v != "/x" {
		t.Fatalf("Attr(href) = %q, %v", v, ok)
	}
	if _, ok := a.Attr("missing"); ok {
		t.Fatal("Attr(missing) found")
	}
}

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	r := simrand.New(77)
	pieces := []string{"<", ">", "<div", "</", "\"", "'", "=", "<!--", "-->", "<script>", "</script>", "text", "&#", "&amp;", "<input type="}
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		for j := 0; j < r.Intn(20); j++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
		}
		_ = Extract(b.String()) // must not panic
	}
}

func TestMetaRefreshVariants(t *testing.T) {
	cases := []struct{ in, want string }{
		{`<meta http-equiv="refresh" content="0;url=http://a.com">`, "http://a.com"},
		{`<meta http-equiv="Refresh" content="3; URL='http://b.com'">`, "http://b.com"},
		{`<meta http-equiv="refresh" content="5">`, ""},
	}
	for _, c := range cases {
		if got := Extract(c.in).MetaRefresh; got != c.want {
			t.Errorf("MetaRefresh(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Extract(samplePage)
	}
}

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(samplePage)
	}
}
