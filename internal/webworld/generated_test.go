package webworld

import (
	"testing"

	"squatphi/internal/domlm"
	"squatphi/internal/squat"
)

func generatedWorld(t testing.TB) *World {
	t.Helper()
	return Build(Config{SquattingDomains: 800, NonSquattingPhish: 100, GeneratedSquats: 200, Seed: 7})
}

// TestGeneratedSquatsDefeatMatcher pins the family's defining property:
// every planted generated squat misses all five rule-based types, but a
// matcher with the brand-language model attached flags each one as
// Generated at the default threshold.
func TestGeneratedSquatsDefeatMatcher(t *testing.T) {
	w := generatedWorld(t)
	if got := len(w.GeneratedSquats); got < w.Cfg.GeneratedSquats*9/10 {
		t.Fatalf("only %d/%d generated squats planted", got, w.Cfg.GeneratedSquats)
	}

	var sb []squat.Brand
	var names []string
	for _, b := range w.Brands.Brands {
		sb = append(sb, b.Brand)
		names = append(names, b.Name)
	}
	plain := squat.NewMatcher(sb)
	lm := squat.NewMatcher(sb)
	lm.AttachLM(domlm.Train(names, domlm.DefaultConfig()), 0)

	for _, d := range w.GeneratedSquats {
		site := w.Sites[d]
		if site == nil || site.SquatType != squat.Generated {
			t.Fatalf("generated squat %s has ground truth %+v, want SquatType generated", d, site)
		}
		if c, ok := plain.Match(d); ok {
			t.Errorf("five-type matcher caught generated squat %s as %s", d, c.Type)
		}
		if c, ok := lm.Match(d); !ok || c.Type != squat.Generated {
			t.Errorf("matcher+LM verdict for %s = (%+v, %v), want a Generated hit", d, c, ok)
		}
	}
}

// TestGeneratedSquatsPopulation pins the family's bookkeeping: disjoint
// from the five-type squatting population, deterministic across builds,
// phishing-heavy, and part of the DNS universe.
func TestGeneratedSquatsPopulation(t *testing.T) {
	w := generatedWorld(t)
	inSquatting := map[string]bool{}
	for _, d := range w.SquattingDomains {
		inSquatting[d] = true
	}
	phishing := 0
	dns := map[string]bool{}
	for _, d := range w.DNSDomains() {
		dns[d] = true
	}
	for _, d := range w.GeneratedSquats {
		if inSquatting[d] {
			t.Errorf("generated squat %s also listed in SquattingDomains", d)
		}
		if !dns[d] {
			t.Errorf("generated squat %s missing from DNSDomains", d)
		}
		if w.Sites[d].Kind == Phishing {
			phishing++
		}
	}
	if n := len(w.GeneratedSquats); phishing < n*2/5 {
		t.Errorf("only %d/%d generated squats are phishing, want a phishing-heavy mix", phishing, n)
	}

	again := generatedWorld(t)
	if len(again.GeneratedSquats) != len(w.GeneratedSquats) {
		t.Fatalf("generated populations differ across identical builds: %d vs %d",
			len(again.GeneratedSquats), len(w.GeneratedSquats))
	}
	for i := range w.GeneratedSquats {
		if w.GeneratedSquats[i] != again.GeneratedSquats[i] {
			t.Fatalf("generated squat %d differs across identical builds: %q vs %q",
				i, w.GeneratedSquats[i], again.GeneratedSquats[i])
		}
	}

	// A world with the family disabled plants none and is unchanged by the
	// feature existing.
	off := Build(Config{SquattingDomains: 800, NonSquattingPhish: 100, Seed: 7})
	if len(off.GeneratedSquats) != 0 {
		t.Fatalf("GeneratedSquats=0 still planted %d domains", len(off.GeneratedSquats))
	}
	for _, d := range w.SquattingDomains {
		if off.Sites[d] == nil {
			t.Fatalf("enabling generated squats changed the squatting population (%s missing)", d)
		}
	}
}
