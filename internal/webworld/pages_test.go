package webworld

import (
	"strings"
	"testing"

	"squatphi/internal/htmlx"
	"squatphi/internal/simrand"
)

// scamSiteOf builds a minimal phishing site of the given scam kind.
func scamSiteOf(w *World, scam Scam, brandName string) *Site {
	b, _ := w.Brands.Lookup(brandName)
	return &Site{
		Domain: "test-" + brandName + ".example", Kind: Phishing, Brand: b,
		Scam: scam, Alive: allAlive(), ReplacedAt: -1, ReplacedFrom: -1,
	}
}

func TestScamPagesCarryTheirMarkers(t *testing.T) {
	w := Build(Config{SquattingDomains: 50, NonSquattingPhish: 10, Seed: 3})
	cases := []struct {
		scam   Scam
		brand  string
		marker string
	}{
		{ScamFakeSearch, "google", "Search"},
		{ScamTechSupport, "microsoft", "1-888"},
		{ScamPayroll, "adp", "payslips"},
		{ScamFreight, "uber", "freight"},
		{ScamPrize, "apple", "gift card"},
		{ScamPayment, "citi", "card"},
	}
	for _, c := range cases {
		site := scamSiteOf(w, c.scam, c.brand)
		page, ok := w.PageFor(site, 0, false)
		if !ok {
			t.Fatalf("%v page not served", c.scam)
		}
		if !strings.Contains(strings.ToLower(page.HTML), strings.ToLower(c.marker)) {
			t.Errorf("%v page missing marker %q", c.scam, c.marker)
		}
	}
}

func TestFakeSearchHasNoPasswordField(t *testing.T) {
	w := Build(Config{SquattingDomains: 50, NonSquattingPhish: 10, Seed: 3})
	site := scamSiteOf(w, ScamFakeSearch, "google")
	page, _ := w.PageFor(site, 0, false)
	if htmlx.Extract(page.HTML).HasPasswordInput() {
		t.Error("fake search engine asks for a password")
	}
}

func TestPaymentScamCollectsCard(t *testing.T) {
	w := Build(Config{SquattingDomains: 50, NonSquattingPhish: 10, Seed: 3})
	site := scamSiteOf(w, ScamPayment, "citi")
	page, _ := w.PageFor(site, 0, false)
	p := htmlx.Extract(page.HTML)
	kws := strings.Join(p.FormKeywords(), " ")
	if !strings.Contains(kws, "card") || !p.HasPasswordInput() {
		t.Errorf("payment scam form incomplete: %v", p.FormKeywords())
	}
}

func TestPhishingLogoAlwaysCarriesBrand(t *testing.T) {
	// Even under string obfuscation the logo asset shows the real brand —
	// the page must still deceive the user.
	w := Build(Config{SquattingDomains: 2000, NonSquattingPhish: 200, Seed: 5})
	checked := 0
	for _, s := range w.PhishingSites() {
		if s.Scam != ScamLogin || !s.Alive[0] {
			continue
		}
		mobile := s.Cloak == CloakMobileOnly
		page, ok := w.PageFor(s, 0, mobile)
		if !ok {
			continue
		}
		if logo, hasLogo := page.Assets["/logo.png"]; hasLogo {
			if !strings.EqualFold(logo, s.Brand.Name) {
				t.Errorf("%s logo = %q, want brand %q", s.Domain, logo, s.Brand.Name)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no logo-bearing phishing pages in sample")
	}
}

func TestMemberLoginTemplateShared(t *testing.T) {
	// The benign member login and the generic credential trap draw from
	// the same generator; same seed means identical bytes.
	a := memberLoginPage(simrand.New(9).Split("x"))
	b := memberLoginPage(simrand.New(9).Split("x"))
	if a.HTML != b.HTML {
		t.Fatal("memberLoginPage not deterministic per seed")
	}
	p := htmlx.Extract(a.HTML)
	if !p.HasPasswordInput() {
		t.Fatal("member login has no password input")
	}
}

func TestObfuscateBrandNeverReturnsOriginal(t *testing.T) {
	r := simrand.New(31)
	for _, name := range []string{"Paypal", "Google", "Citi", "Bt", "Adp"} {
		for i := 0; i < 50; i++ {
			got := obfuscateBrand(r, name)
			if strings.EqualFold(got, name) {
				t.Fatalf("obfuscateBrand(%q) returned the original", name)
			}
		}
	}
}

func TestGenericBenignVariantsCovered(t *testing.T) {
	// Across many benign squatting domains all page variants must appear,
	// including the hard negatives with password forms.
	w := Build(Config{SquattingDomains: 3000, NonSquattingPhish: 100, Seed: 9})
	withPassword, plain := 0, 0
	for _, d := range w.SquattingDomains {
		s := w.Sites[d]
		if s.Kind != Benign {
			continue
		}
		page, ok := w.PageFor(s, 0, false)
		if !ok {
			continue
		}
		if htmlx.Extract(page.HTML).HasPasswordInput() {
			withPassword++
		} else {
			plain++
		}
	}
	if withPassword == 0 {
		t.Error("no benign login pages generated (hard negatives missing)")
	}
	if plain == 0 {
		t.Error("no plain benign pages generated")
	}
	frac := float64(withPassword) / float64(withPassword+plain)
	if frac < 0.2 || frac > 0.7 {
		t.Errorf("benign login share = %.2f, want moderate", frac)
	}
}
