package webworld

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// AssetContentType marks image responses whose body is the text painted
// inside the image (the reproduction's stand-in for binary image bytes:
// the crawler hands these to the layout engine, which rasterises the text
// so it exists only in pixels).
const AssetContentType = "text/x-imagetext"

// Server serves the world over real HTTP on a loopback listener. Every
// domain of the world is addressed via the Host header; pair it with
// Transport (or the crawler's dialer) so any URL resolves to the listener.
type Server struct {
	World *World

	// snapshot is the current measurement date (atomic; see SetSnapshot).
	snapshot atomic.Int64

	httpSrv  *http.Server
	listener net.Listener
}

// NewServer starts a world server on a free loopback port.
func NewServer(w *World) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("webworld: listen: %w", err)
	}
	s := &Server{World: w, listener: ln}
	s.httpSrv = &http.Server{Handler: s, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}

// SetSnapshot moves the world to measurement date snap (0..Snapshots-1),
// affecting liveness and page churn.
func (s *Server) SetSnapshot(snap int) { s.snapshot.Store(int64(snap)) }

// Snapshot returns the current measurement date.
func (s *Server) Snapshot() int { return int(s.snapshot.Load()) }

// ServeHTTP routes by Host header: the synthetic Internet's virtual
// hosting. Unknown hosts and dead sites return 404/502 respectively.
func (s *Server) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	host := strings.ToLower(req.Host)
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	site, ok := s.World.Site(host)
	if !ok {
		http.NotFound(rw, req)
		return
	}
	snap := s.Snapshot()
	mobile := isMobileUA(req.UserAgent())

	// Marketplace hosts serve their listing page for any path.
	for _, m := range s.World.Marketplaces {
		if host == m {
			s.writePage(rw, req, s.World.marketListingPage(host))
			return
		}
	}

	switch site.Kind {
	case Dead:
		http.Error(rw, "bad gateway", http.StatusBadGateway)
		return
	case RedirectOriginal, RedirectMarket, RedirectOther:
		if !aliveAt(site, snap) {
			http.Error(rw, "bad gateway", http.StatusBadGateway)
			return
		}
		http.Redirect(rw, req, "http://"+site.RedirectTo+"/", http.StatusFound)
		return
	}

	page, live := s.World.PageFor(site, snap, mobile)
	if !live {
		http.Error(rw, "bad gateway", http.StatusBadGateway)
		return
	}
	s.writePage(rw, req, page)
}

// writePage serves the HTML document at "/" and image assets at their
// src paths.
func (s *Server) writePage(rw http.ResponseWriter, req *http.Request, page PageContent) {
	if text, ok := page.Assets[req.URL.Path]; ok {
		rw.Header().Set("Content-Type", AssetContentType)
		_, _ = rw.Write([]byte(text))
		return
	}
	if req.URL.Path == "/" || req.URL.Path == "" {
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = rw.Write([]byte(page.HTML))
		return
	}
	// Other paths under a live site: minimal filler so link-following
	// crawlers get a valid response.
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = rw.Write([]byte("<html><body><p>ok</p></body></html>"))
}

func aliveAt(site *Site, snap int) bool {
	if snap < 0 || snap >= Snapshots {
		return true
	}
	return site.Alive[snap]
}

func isMobileUA(ua string) bool {
	ua = strings.ToLower(ua)
	return strings.Contains(ua, "iphone") || strings.Contains(ua, "mobile") || strings.Contains(ua, "android")
}

// Transport returns an http.RoundTripper that dials every host to this
// server, so URLs like http://faceb00k.pw/ work unmodified — the
// reproduction's stand-in for global DNS + routing.
func (s *Server) Transport() http.RoundTripper {
	addr := s.Addr()
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	return &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, addr)
		},
		MaxIdleConnsPerHost: 64,
	}
}

// Client returns an http.Client wired to this server that does NOT follow
// redirects (the crawler records and follows them itself).
func (s *Server) Client() *http.Client {
	return &http.Client{
		Transport: s.Transport(),
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
		Timeout: 10 * time.Second,
	}
}
