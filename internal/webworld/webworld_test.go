package webworld

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"squatphi/internal/squat"
)

// smallWorld builds a reduced world shared across tests.
func smallWorld(t testing.TB) *World {
	t.Helper()
	return Build(Config{SquattingDomains: 2500, NonSquattingPhish: 200, Seed: 7})
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(Config{SquattingDomains: 500, NonSquattingPhish: 50, Seed: 3})
	b := Build(Config{SquattingDomains: 500, NonSquattingPhish: 50, Seed: 3})
	if len(a.Sites) != len(b.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(a.Sites), len(b.Sites))
	}
	for d, sa := range a.Sites {
		sb, ok := b.Sites[d]
		if !ok || sa.Kind != sb.Kind || sa.StringObf != sb.StringObf || sa.IP != sb.IP {
			t.Fatalf("site %s differs across identical builds", d)
		}
	}
}

func TestSquattingTypeMix(t *testing.T) {
	w := smallWorld(t)
	counts := map[squat.Type]int{}
	for _, d := range w.SquattingDomains {
		counts[w.Sites[d].SquatType]++
	}
	total := len(w.SquattingDomains)
	if total < 1500 {
		t.Fatalf("only %d squatting domains generated", total)
	}
	comboFrac := float64(counts[squat.Combo]) / float64(total)
	if comboFrac < 0.45 || comboFrac > 0.75 {
		t.Errorf("combo fraction = %f, want ~0.56", comboFrac)
	}
	// Combo must dominate every other type (Figure 2).
	for _, typ := range squat.AllTypes {
		if typ != squat.Combo && counts[typ] >= counts[squat.Combo] {
			t.Errorf("type %v count %d >= combo %d", typ, counts[typ], counts[squat.Combo])
		}
	}
}

func TestSquattingDomainsMatchable(t *testing.T) {
	// Generated squatting domains must be recognised by the squat matcher
	// (they feed the DNS-scan experiment).
	w := smallWorld(t)
	m := squat.NewMatcher(w.Brands.SquatBrands())
	missed := 0
	for _, d := range w.SquattingDomains {
		if _, ok := m.Match(d); !ok {
			missed++
		}
	}
	if frac := float64(missed) / float64(len(w.SquattingDomains)); frac > 0.02 {
		t.Errorf("matcher missed %.1f%% of planted squatting domains", frac*100)
	}
}

func TestPhishingPrevalenceSmall(t *testing.T) {
	w := smallWorld(t)
	phish := len(w.PhishingSites())
	frac := float64(phish) / float64(len(w.SquattingDomains))
	if phish == 0 {
		t.Fatal("no squatting phishing sites generated")
	}
	// Paper: ~0.2%; allow generous band for small worlds.
	if frac > 0.02 {
		t.Errorf("phishing fraction = %f, want small (~0.002)", frac)
	}
}

func TestEvasionRatesCalibrated(t *testing.T) {
	w := Build(Config{SquattingDomains: 20000, NonSquattingPhish: 2000, Seed: 11})
	var sq, sqStr, sqCode int
	for _, s := range w.PhishingSites() {
		sq++
		if s.StringObf {
			sqStr++
		}
		if s.CodeObf {
			sqCode++
		}
	}
	var ns, nsStr int
	for _, d := range w.NonSquattingPhish {
		ns++
		if w.Sites[d].StringObf {
			nsStr++
		}
	}
	if sq < 20 || ns < 100 {
		t.Fatalf("too few phishing sites: squat %d nonsquat %d", sq, ns)
	}
	sqFrac, nsFrac := float64(sqStr)/float64(sq), float64(nsStr)/float64(ns)
	if sqFrac < nsFrac {
		t.Errorf("squatting string obfuscation %.2f not higher than non-squatting %.2f (Table 11)", sqFrac, nsFrac)
	}
	if sqFrac < 0.5 || sqFrac > 0.85 {
		t.Errorf("squatting string obfuscation = %.2f, want ~0.68", sqFrac)
	}
}

func TestLivenessChurn(t *testing.T) {
	w := Build(Config{SquattingDomains: 20000, NonSquattingPhish: 500, Seed: 13})
	sites := w.PhishingSites()
	aliveAll := 0
	for _, s := range sites {
		all := true
		for i := 0; i < Snapshots; i++ {
			if !s.Alive[i] {
				all = false
			}
		}
		if all {
			aliveAll++
		}
	}
	frac := float64(aliveAll) / float64(len(sites))
	if frac < 0.65 || frac > 0.95 {
		t.Errorf("squatting phishing alive-all-month = %.2f, want ~0.80 (Fig. 17)", frac)
	}
	// Non-squatting dies fast.
	nsAlive := 0
	for _, d := range w.NonSquattingPhish {
		if w.Sites[d].Alive[Snapshots-1] {
			nsAlive++
		}
	}
	if f := float64(nsAlive) / float64(len(w.NonSquattingPhish)); f > 0.45 {
		t.Errorf("non-squatting phishing still alive at month end = %.2f, want low", f)
	}
}

func TestPageForStringObfuscation(t *testing.T) {
	w := smallWorld(t)
	checked := 0
	for _, s := range w.PhishingSites() {
		if !s.StringObf || s.Cloak == CloakMobileOnly {
			continue
		}
		page, ok := w.PageFor(s, 0, false)
		if !ok {
			continue
		}
		lower := strings.ToLower(page.HTML)
		if strings.Contains(lower, strings.ToLower(s.Brand.Name)) {
			t.Errorf("string-obfuscated page for %s contains brand %q in HTML", s.Domain, s.Brand.Name)
		}
		if page.Assets["/logo.png"] == "" {
			t.Errorf("obfuscated page for %s lost its logo asset", s.Domain)
		}
		checked++
		if checked > 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no string-obfuscated phishing pages found to check")
	}
}

func TestPageForCloaking(t *testing.T) {
	w := smallWorld(t)
	var site *Site
	for _, s := range w.PhishingSites() {
		if s.Cloak == CloakMobileOnly && s.Alive[0] {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no mobile-only cloaked site in this small world")
	}
	mobilePage, ok := w.PageFor(site, 0, true)
	if !ok {
		t.Fatal("mobile page missing")
	}
	webPage, ok := w.PageFor(site, 0, false)
	if !ok {
		t.Fatal("web filler missing")
	}
	if !strings.Contains(mobilePage.HTML, "form") {
		t.Error("mobile page has no form")
	}
	if strings.Contains(webPage.HTML, "password") {
		t.Error("web profile saw the phishing form despite cloaking")
	}
}

func TestPhishingPagesHaveForms(t *testing.T) {
	w := smallWorld(t)
	for i, s := range w.PhishingSites() {
		mobile := s.Cloak == CloakMobileOnly
		page, ok := w.PageFor(s, 0, mobile)
		if !ok {
			continue
		}
		if !strings.Contains(page.HTML, "<form") {
			t.Errorf("phishing page %s has no form", s.Domain)
		}
		if i > 40 {
			break
		}
	}
}

func TestDeadSitesServeNothing(t *testing.T) {
	w := smallWorld(t)
	for _, d := range w.SquattingDomains {
		s := w.Sites[d]
		if s.Kind == Dead {
			if _, ok := w.PageFor(s, 0, false); ok {
				t.Fatalf("dead site %s served a page", d)
			}
			return
		}
	}
	t.Fatal("no dead squatting domains generated")
}

func TestServerEndToEnd(t *testing.T) {
	w := smallWorld(t)
	srv, err := NewServer(w)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := srv.Client()

	// 1) Brand original page.
	resp, err := client.Get("http://paypal.com/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Paypal") {
		t.Fatalf("paypal.com status %d body %.80q", resp.StatusCode, body)
	}

	// 2) Logo asset fetch.
	resp, err = client.Get("http://paypal.com/logo.png")
	if err != nil {
		t.Fatal(err)
	}
	asset, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Type") != AssetContentType || string(asset) != "Paypal" {
		t.Fatalf("asset = %q (%s)", asset, resp.Header.Get("Content-Type"))
	}

	// 3) Redirect site returns 302 with Location.
	var redirectDomain, target string
	for _, d := range w.SquattingDomains {
		if s := w.Sites[d]; s.Kind == RedirectOriginal {
			redirectDomain, target = d, s.RedirectTo
			break
		}
	}
	if redirectDomain == "" {
		t.Fatal("no redirect-original domain generated")
	}
	resp, err = client.Get("http://" + redirectDomain + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound || !strings.Contains(resp.Header.Get("Location"), target) {
		t.Fatalf("redirect status %d location %q, want 302 -> %s", resp.StatusCode, resp.Header.Get("Location"), target)
	}

	// 4) Unknown host 404s.
	resp, err = client.Get("http://no-such-host.example/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown host status = %d", resp.StatusCode)
	}
}

func TestServerCloakingByUserAgent(t *testing.T) {
	w := smallWorld(t)
	srv, err := NewServer(w)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := srv.Client()

	var site *Site
	for _, s := range w.PhishingSites() {
		if s.Cloak == CloakWebOnly && s.Alive[0] && s.ReplacedAt != 0 {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no web-only cloaked site in this world")
	}
	get := func(ua string) string {
		req, _ := http.NewRequest("GET", "http://"+site.Domain+"/", nil)
		req.Header.Set("User-Agent", ua)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	webBody := get("Mozilla/5.0 Chrome/65.0")
	mobileBody := get("Mozilla/5.0 (iPhone; CPU iPhone OS 11_0) Mobile")
	if !strings.Contains(webBody, "password") {
		t.Error("web profile did not get the phishing page")
	}
	if strings.Contains(mobileBody, "password") {
		t.Error("mobile profile saw the web-only phishing page")
	}
}

func TestServerSnapshotLiveness(t *testing.T) {
	w := smallWorld(t)
	srv, err := NewServer(w)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := srv.Client()

	var site *Site
	for _, s := range w.PhishingSites() {
		if s.Alive[0] && !s.Alive[Snapshots-1] {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no churning phishing site in this world")
	}
	srv.SetSnapshot(0)
	resp, err := client.Get("http://" + site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot 0 status = %d", resp.StatusCode)
	}
	srv.SetSnapshot(Snapshots - 1)
	resp, err = client.Get("http://" + site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("dead-by-month-end site still serving at final snapshot")
	}
}

func TestNonSquattingPhishTopBrandSkew(t *testing.T) {
	w := Build(Config{SquattingDomains: 500, NonSquattingPhish: 2000, Seed: 17})
	perBrand := map[string]int{}
	for _, d := range w.NonSquattingPhish {
		perBrand[w.Sites[d].Brand.Name]++
	}
	type bc struct {
		n string
		c int
	}
	var list []bc
	for n, c := range perBrand {
		list = append(list, bc{n, c})
	}
	// Top-8 brands should cover a majority of reports (Fig. 5: 59%).
	top := 0
	for i := 0; i < 8 && i < len(list); i++ {
		maxI := i
		for j := i + 1; j < len(list); j++ {
			if list[j].c > list[maxI].c {
				maxI = j
			}
		}
		list[i], list[maxI] = list[maxI], list[i]
		top += list[i].c
	}
	if frac := float64(top) / float64(len(w.NonSquattingPhish)); frac < 0.4 {
		t.Errorf("top-8 brand coverage = %.2f, want majority", frac)
	}
}

func TestRegistrationYears(t *testing.T) {
	w := smallWorld(t)
	recent, total := 0, 0
	for _, s := range w.PhishingSites() {
		total++
		if s.RegYear >= 2014 {
			recent++
		}
	}
	if total > 0 && float64(recent)/float64(total) < 0.9 {
		t.Errorf("recent registrations = %d/%d, want dominant (Fig. 16)", recent, total)
	}
}

func BenchmarkBuildWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Build(Config{SquattingDomains: 2000, NonSquattingPhish: 100, Seed: uint64(i)})
	}
}
