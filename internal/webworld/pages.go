package webworld

import (
	"fmt"
	"strings"

	"squatphi/internal/confusables"
	"squatphi/internal/simrand"
)

// PageContent is the material a domain serves to one crawler profile: the
// HTML document plus the text content of each referenced image asset
// (keyed by src path). Image text exists only in pixels after rendering —
// it is never part of the HTML.
type PageContent struct {
	HTML   string
	Assets map[string]string
}

// PageFor produces the content a site serves in the given snapshot to the
// given profile ("web" or "mobile"). The bool result is false when the
// site serves nothing (dead, or not alive in this snapshot).
func (w *World) PageFor(site *Site, snapshot int, mobile bool) (PageContent, bool) {
	if site == nil || site.Kind == Dead {
		return PageContent{}, false
	}
	if snapshot >= 0 && snapshot < Snapshots && !site.Alive[snapshot] {
		return PageContent{}, false
	}
	switch site.Kind {
	case Benign:
		if site.Brand.Name != "" && w.Sites[site.Brand.Domain()] == site {
			return w.originalPage(site), true
		}
		return w.genericBenignPage(site), true
	case Parked:
		return w.parkedPage(site), true
	case Phishing:
		if site.ReplacedAt == snapshot || site.ReplacedFrom >= 0 && snapshot >= site.ReplacedFrom {
			return w.genericBenignPage(site), true
		}
		if site.Cloak == CloakMobileOnly && !mobile || site.Cloak == CloakWebOnly && mobile {
			// Cloaked away: serve an innocuous filler page.
			return w.cloakFillerPage(site), true
		}
		return w.phishingPage(site, mobile), true
	default:
		// Redirect kinds are handled at the HTTP layer; if asked for a
		// body anyway, serve a stub.
		return PageContent{HTML: "<html><body>moved</body></html>"}, true
	}
}

// displayName returns the brand's display capitalisation.
func displayName(name string) string {
	if name == "" {
		return ""
	}
	return strings.ToUpper(name[:1]) + name[1:]
}

// originalPage is the brand's real login page: brand name everywhere, a
// canonical layout, a logo image, and a login form.
func (w *World) originalPage(site *Site) PageContent {
	name := displayName(site.Brand.Name)
	html := fmt.Sprintf(`<!doctype html><html><head><title>%s - Log In</title></head><body>
<img src="/logo.png" alt="%s">
<h1>Welcome to %s</h1>
<p>Sign in to your %s account to manage your profile and settings</p>
<form action="/login" method="post">
<input type="email" name="email" placeholder="Email or phone">
<input type="password" name="password" placeholder="Password">
<input type="submit" value="Log In">
</form>
<a href="/help">Forgot password?</a>
<p>New to %s? Create an account today</p>
</body></html>`, name, site.Brand.Name, name, name, name)
	return PageContent{HTML: html, Assets: map[string]string{"/logo.png": name}}
}

// obfuscateBrand returns a confusable spelling of the brand name whose
// skeleton still matches — "PayPaI"-style string obfuscation (§4.2).
func obfuscateBrand(r *simrand.RNG, name string) string {
	runes := []rune(name)
	lower := func(c rune) rune {
		if c >= 'A' && c <= 'Z' {
			return c - 'A' + 'a'
		}
		return c
	}
	sub := func(i int) (string, bool) {
		vars := confusables.Variants(lower(runes[i]))
		if len(vars) == 0 {
			return "", false
		}
		out := append([]rune(nil), runes...)
		out[i] = vars[r.Intn(len(vars))]
		return string(out), true
	}
	for attempt := 0; attempt < 10; attempt++ {
		if s, ok := sub(r.Intn(len(runes))); ok {
			return s
		}
	}
	for i := range runes { // deterministic fallback
		if s, ok := sub(i); ok {
			return s
		}
	}
	return "" // no substitutable characters: hide the brand entirely
}

// scamCopy returns the headline and body text for a scam flavour.
func scamCopy(s Scam, brand string) (headline, body, button string) {
	switch s {
	case ScamFakeSearch:
		return "Search the web", "Search billions of pages images and videos", "Search"
	case ScamTechSupport:
		return "Security alert: your computer may be infected",
			"Call our certified support team now at 1-888-555-0199 or sign in so a technician can assist you. A service fee may apply", "Get Help"
	case ScamPayroll:
		return "Payroll portal login",
			"Access your payslips tax statements and direct deposit settings. Enter your employee credentials to continue", "Access Payroll"
	case ScamFreight:
		return "Drive and deliver with us",
			"Connect with shippers and book loads today. Log in with your driver account to see available freight", "Book Loads"
	case ScamPrize:
		return "Congratulations! You have been selected",
			"You are today's lucky visitor. Claim your 1000 dollar gift card by verifying your account now", "Claim Prize"
	case ScamPayment:
		return "Secure payment center",
			"Verify your billing information to avoid service interruption. Enter your card details below", "Verify Now"
	default:
		return "Log in to " + brand,
			"Your account has been limited. Please confirm your password to restore full access", "Log In"
	}
}

// loginBodies are alternative phrasings used by credential-harvesting
// pages. Benign login pages draw from the same pool (benignLoginBodies
// overlaps heavily): like real websites, phishing and legitimate login
// pages share most of their vocabulary, so no single keyword separates the
// classes — the classifier must learn conjunctions (brand impersonation
// AND credential form).
var loginBodies = []string{
	"Your account has been limited. Please confirm your password to restore full access",
	"We noticed unusual activity on your account. Sign in to review recent sessions",
	"Your session has expired for security reasons. Enter your credentials to continue",
	"Action required: confirm your details within 24 hours to keep your account active",
	"Sign in to your account to continue to the dashboard",
	"Enter your email and password below to access your account",
}

// benignLoginBodies shares most phrasings with loginBodies.
var benignLoginBodies = []string{
	"Your session has expired for security reasons. Enter your credentials to continue",
	"Sign in to your account to continue to the dashboard",
	"Enter your email and password below to access your account",
	"We noticed unusual activity on your account. Sign in to review recent sessions",
	"Sign in to your member account to continue to the forum",
	"Enter your mailbox credentials below. Sessions expire after 30 minutes",
}

// loginTitles are shared page titles for login pages of both classes.
var loginTitles = []string{
	"Log in to your account", "Sign in", "Account login", "Secure login", "Member login",
}

// obfuscatedJS builds a packed-looking script with the indicators the
// code-obfuscation detector looks for.
func obfuscatedJS(r *simrand.RNG) string {
	var parts []string
	for i := 0; i < 6+r.Intn(6); i++ {
		parts = append(parts, fmt.Sprintf("%d", 97+r.Intn(26)))
	}
	return fmt.Sprintf(`var _0x%s=[%s];var s="";for(var i=0;i<_0x%s.length;i++){s+=String.fromCharCode(_0x%s[i]);}eval(s);`,
		r.Letters(4), strings.Join(parts, ","), r.Letters(4), r.Letters(4))
}

// phishingPage builds the phishing content for a site, applying its
// evasion attributes. With StringObf the brand appears only inside the
// logo image (and optionally as a confusable spelling); otherwise the page
// is a close copy of the original.
func (w *World) phishingPage(site *Site, mobile bool) PageContent {
	r := simrand.New(site.LayoutSeed ^ hashDomain(site.Domain)).Split("phish-page")
	name := displayName(site.Brand.Name)

	// A slice of login-scam kits are generic credential traps: no brand
	// content at all — the squatting domain itself performs the
	// impersonation (the user typed faceb00k.pw; the page just asks for
	// credentials). These pages are feature-identical to benign member
	// logins, the irreducible ambiguity that keeps classifier accuracy
	// below 1.0 on real data (paper Table 7: FP 0.03, FN 0.06).
	if site.Scam == ScamLogin && r.Bool(0.15) {
		return memberLoginPage(r)
	}

	brandText := name
	if site.StringObf {
		if r.Bool(0.5) {
			brandText = obfuscateBrand(r, name)
		} else {
			brandText = "" // brand only in the logo image
		}
	}
	headlineBrand := brandText
	if headlineBrand == "" {
		headlineBrand = "your account"
	}
	headline, body, button := scamCopy(site.Scam, headlineBrand)
	if site.Scam == ScamLogin {
		body = simrand.Pick(r, loginBodies)
	}

	var sb strings.Builder
	title := headline
	if brandText != "" {
		title = brandText + " - " + headline
	}
	fmt.Fprintf(&sb, `<!doctype html><html><head><title>%s</title>`, title)
	if site.LayoutSeed != 0 {
		// The page's own "obfuscated stylesheet": the rendering engine
		// randomises margins/ordering from this seed (layout obfuscation).
		fmt.Fprintf(&sb, `<meta name="layout-seed" content="%d">`, site.LayoutSeed)
	}
	sb.WriteString(`</head><body>`)
	fmt.Fprintf(&sb, `<img src="/logo.png" alt="">`)
	fmt.Fprintf(&sb, `<h1>%s</h1>`, headline)
	if brandText != "" {
		fmt.Fprintf(&sb, `<p>%s %s</p>`, brandText, body)
	} else {
		fmt.Fprintf(&sb, `<p>%s</p>`, body)
	}
	if site.CodeObf {
		fmt.Fprintf(&sb, `<script>%s</script>`, obfuscatedJS(r))
	}
	sb.WriteString(`<form action="/submit" method="post">`)
	if site.Scam == ScamFakeSearch {
		sb.WriteString(`<input type="text" name="q" placeholder="Search or type URL">`)
	} else {
		userPrompt := simrand.Pick(r, []string{"Email or phone", "Email address", "Username", "Phone email or username"})
		fmt.Fprintf(&sb, `<input type="email" name="user" placeholder="%s">`, userPrompt)
		fmt.Fprintf(&sb, `<input type="password" name="pass" placeholder="Password">`)
		if site.Scam == ScamPayment {
			sb.WriteString(`<input type="text" name="card" placeholder="Card number">`)
			sb.WriteString(`<input type="text" name="cvv" placeholder="Security code">`)
		}
	}
	fmt.Fprintf(&sb, `<input type="submit" value="%s">`, button)
	sb.WriteString(`</form>`)
	fmt.Fprintf(&sb, `<a href="/terms">Terms of service</a>`)
	sb.WriteString(`</body></html>`)

	// The logo image always carries the real brand name: the page must
	// still *look* like the brand to deceive users (the paper's core
	// insight on why OCR features work).
	return PageContent{HTML: sb.String(), Assets: map[string]string{"/logo.png": name}}
}

// parkedPage is a domain-for-sale page with no form.
func (w *World) parkedPage(site *Site) PageContent {
	html := fmt.Sprintf(`<!doctype html><html><head><title>%s is for sale</title></head><body>
<h1>This domain is for sale</h1>
<p>The domain %s is available for purchase. Contact the owner for pricing and transfer details</p>
<p>Premium domains sell fast. Make an offer today</p>
<a href="/offer">Make an offer</a>
</body></html>`, site.Domain, site.Domain)
	return PageContent{HTML: html}
}

// cloakFillerPage is what a cloaked phishing domain serves to the profile
// it is hiding from.
func (w *World) cloakFillerPage(site *Site) PageContent {
	html := `<!doctype html><html><head><title>Welcome</title></head><body>
<h1>Under construction</h1>
<p>This page is being updated. Please check back soon</p>
</body></html>`
	return PageContent{HTML: html}
}

// genericBenignPage is a non-brand content page under a squatting domain.
// A slice of them are "hard negatives" for the classifier: survey forms
// and brand payment plugins (the paper's observed false-positive causes,
// §6.1).
func (w *World) genericBenignPage(site *Site) PageContent {
	r := simrand.New(hashDomain(site.Domain)).Split("benign-page")
	switch r.Intn(7) {
	case 4: // benign members-area login: a password form with no brand
		// impersonation, phrased like any other login page. Generic
		// credential-trap phishing kits clone this exact template, so the
		// two classes genuinely overlap here (the paper's irreducible
		// classifier error).
		return memberLoginPage(r)
	case 5: // benign webmail login
		html := fmt.Sprintf(`<!doctype html><html><head><title>%s</title></head><body>
<img src="/mail.png" alt="">
<h1>%s webmail</h1>
<p>%s</p>
<form action="/login" method="post">
<input type="email" name="address" placeholder="Email address">
<input type="password" name="secret" placeholder="Password">
<input type="submit" value="Open Mailbox">
</form>
</body></html>`, simrand.Pick(r, loginTitles), site.Domain, simrand.Pick(r, benignLoginBodies))
		return PageContent{HTML: html, Assets: map[string]string{"/mail.png": "Webmail"}}
	case 6: // brand fan community with a member login: shows the brand
		// name AND a password form yet is benign — the irreducible hard
		// negative behind the paper's ~30% manual-rejection rate.
		brand := displayName(site.Brand.Name)
		if brand == "" {
			brand = "Gaming"
		}
		html := fmt.Sprintf(`<!doctype html><html><head><title>%s fan community</title></head><body>
<h1>The unofficial %s fan forum</h1>
<p>%s</p>
<form action="/session" method="post">
<input type="text" name="nick" placeholder="Nickname">
<input type="password" name="password" placeholder="Password">
<input type="submit" value="Sign In">
</form>
<p>This community is not affiliated with %s</p>
</body></html>`, brand, brand, simrand.Pick(r, benignLoginBodies), brand)
		return PageContent{HTML: html}
	}
	switch r.Intn(4) {
	case 0: // plain content page
		topic := simrand.Pick(r, []string{"travel tips", "healthy recipes", "local news", "gardening ideas", "car reviews"})
		html := fmt.Sprintf(`<!doctype html><html><head><title>Daily %s</title></head><body>
<h1>Your source for %s</h1>
<p>Read the latest articles curated by our editors every morning</p>
<a href="/archive">Browse the archive</a>
</body></html>`, topic, topic)
		return PageContent{HTML: html}
	case 1: // survey form: a form but no password (hard negative)
		html := `<!doctype html><html><head><title>Customer feedback</title></head><body>
<h1>Tell us what you think</h1>
<p>Your feedback helps us improve our service</p>
<form action="/feedback" method="post">
<input type="text" name="name" placeholder="Your name">
<input type="text" name="comments" placeholder="Comments">
<input type="submit" value="Send Feedback">
</form>
</body></html>`
		return PageContent{HTML: html}
	case 2: // brand payment plugin (hard negative: brand keyword + form)
		brand := site.Brand.Name
		if brand == "" {
			brand = "paypal"
		}
		html := fmt.Sprintf(`<!doctype html><html><head><title>Checkout</title></head><body>
<h1>Complete your order</h1>
<p>Total: 24 dollars. Choose a payment method below</p>
<form action="/pay" method="post">
<input type="text" name="qty" placeholder="Quantity">
<input type="submit" value="Pay with %s">
</form>
<p>Share this store on facebook and twitter</p>
</body></html>`, displayName(brand))
		return PageContent{HTML: html}
	default: // small-business page
		html := fmt.Sprintf(`<!doctype html><html><head><title>Welcome to %s</title></head><body>
<h1>Family business since %d</h1>
<p>We provide quality services to our local community. Call us to schedule an appointment</p>
</body></html>`, site.Domain, 1980+r.Intn(30))
		return PageContent{HTML: html}
	}
}

// memberLoginPage is the shared members-area login template: served by
// benign community sites AND cloned by generic credential-trap phishing
// kits. The two uses are byte-for-byte indistinguishable by construction.
func memberLoginPage(r *simrand.RNG) PageContent {
	org := simrand.Pick(r, []string{"book club", "alumni network", "chess league", "garden society", "cycling group"})
	html := fmt.Sprintf(`<!doctype html><html><head><title>%s</title></head><body>
<h1>Welcome back to the %s</h1>
<p>%s</p>
<form action="/session" method="post">
<input type="text" name="member" placeholder="Member name">
<input type="password" name="password" placeholder="Password">
<input type="submit" value="Sign In">
</form>
<a href="/join">Become a member</a>
</body></html>`, simrand.Pick(r, loginTitles), org, simrand.Pick(r, benignLoginBodies))
	return PageContent{HTML: html}
}

// marketListingPage is what marketplaces serve.
func (w *World) marketListingPage(host string) PageContent {
	html := fmt.Sprintf(`<!doctype html><html><head><title>Domain marketplace</title></head><body>
<h1>Buy and sell premium domains</h1>
<p>Welcome to %s. Thousands of domains listed daily with escrow protection</p>
<a href="/listings">View listings</a>
</body></html>`, host)
	return PageContent{HTML: html}
}

// hashDomain derives a stable per-domain seed.
func hashDomain(d string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(d); i++ {
		h ^= uint64(d[i])
		h *= 1099511628211
	}
	return h
}
