package webworld

import "squatphi/internal/whois"

// WhoisRecord implements whois.Directory over the world's ground truth.
// Mirroring the paper's data quality, a deterministic ~37% of domains
// redact the registrar field (738 of 1,175 phishing domains exposed one).
func (w *World) WhoisRecord(domain string) (whois.Record, bool) {
	site, ok := w.Site(domain)
	if !ok {
		return whois.Record{}, false
	}
	rec := whois.Record{Domain: site.Domain, Created: site.RegYear, Registrar: site.Registrar}
	if hashDomain(site.Domain)%100 < 37 {
		rec.Registrar = ""
	}
	return rec, true
}
