// Package webworld models the synthetic Internet that replaces the live web
// in this reproduction: the population of squatting domains and their sites
// (benign, parked, redirecting, phishing), non-squatting phishing pages,
// evasion behaviour, cloaking, liveness churn over the measurement month,
// and an HTTP server that serves it all to the crawler.
//
// The population statistics are calibrated to the paper's measurements so
// the reproduction's tables and figures have the same shape:
//
//   - squatting-type mix: combo 56%, typo 25%, bits 7%, wrongTLD 6%,
//     homograph 5% (Figure 2);
//   - ~55% of squatting domains live; 87% of live domains serve content,
//     1.7% redirect to the original brand, 3% to domain marketplaces, 8%
//     elsewhere (Table 2);
//   - ~0.2% of squatting domains host phishing (Table 8), cloaked mobile-
//     only/web-only/both (§6.1), with string obfuscation 68%, code
//     obfuscation 34%, and strong layout obfuscation (Table 11);
//   - non-squatting phishing (the PhishTank population) obfuscates less
//     (Table 11) and dies faster (§6.3).
package webworld

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"squatphi/internal/brands"
	"squatphi/internal/dnsx"
	"squatphi/internal/domlm"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

// Kind classifies what a domain serves.
type Kind int

// Site kinds.
const (
	Dead Kind = iota
	Benign
	Parked
	RedirectOriginal
	RedirectMarket
	RedirectOther
	Phishing
)

var kindNames = [...]string{"dead", "benign", "parked", "redirect-original", "redirect-market", "redirect-other", "phishing"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "invalid"
	}
	return kindNames[k]
}

// Cloak describes which crawler profiles see the phishing content.
type Cloak int

// Cloaking modes with the paper's §6.1 split: of 1175 phishing domains, 590
// served both, 318 mobile-only, 267 web-only.
const (
	CloakNone Cloak = iota // both web and mobile see the page
	CloakMobileOnly
	CloakWebOnly
)

// Scam is the attack flavour of a phishing page (paper §6.2 case studies).
type Scam int

// Scam kinds.
const (
	ScamLogin Scam = iota // credential harvesting (default)
	ScamFakeSearch
	ScamTechSupport
	ScamPayroll
	ScamFreight
	ScamPrize
	ScamPayment
)

var scamNames = [...]string{"login", "fake-search", "tech-support", "payroll", "freight", "prize", "payment"}

func (s Scam) String() string {
	if s < 0 || int(s) >= len(scamNames) {
		return "invalid"
	}
	return scamNames[s]
}

// Snapshots is the number of crawl snapshots over the measurement month
// (April 01, 08, 22, 29 in the paper).
const Snapshots = 4

// Site is one domain's ground truth.
type Site struct {
	Domain    string
	Kind      Kind
	Brand     brands.Brand // impersonated brand (squatting / phishing sites)
	SquatType squat.Type   // None for non-squatting domains
	Cloak     Cloak
	Scam      Scam

	// Evasion attributes for phishing sites.
	StringObf  bool   // brand text only in images / confusable spellings
	CodeObf    bool   // obfuscated JavaScript on the page
	LayoutSeed uint64 // non-zero: perturbed layout (layout obfuscation)

	// RedirectTo is the destination host for redirect kinds.
	RedirectTo string

	// Alive[s] reports whether the site serves content in snapshot s.
	Alive [Snapshots]bool
	// ReplacedAt, if >= 0, is a snapshot where the phishing page is
	// temporarily replaced with a benign page (the tacebook.ga case).
	ReplacedAt int
	// ReplacedFrom, if >= 0, is the snapshot from which the phishing page
	// is permanently replaced with a benign page — the fate of most
	// user-reported phishing URLs by the time they are crawled (Table 5).
	ReplacedFrom int

	IP        [4]byte
	RegYear   int
	Registrar string
}

// IsPhishingAt reports whether the site serves phishing content in
// snapshot s (alive and not temporarily or permanently replaced).
func (s *Site) IsPhishingAt(snap int) bool {
	if s.Kind != Phishing || snap < 0 || snap >= Snapshots || !s.Alive[snap] {
		return false
	}
	if s.ReplacedAt == snap {
		return false
	}
	return s.ReplacedFrom < 0 || snap < s.ReplacedFrom
}

// Config controls world generation.
type Config struct {
	// Brands is the monitored universe; nil selects brands.DefaultConfig().
	Brands *brands.Universe
	// SquattingDomains is the approximate squatting population size
	// (paper: 657,663; default 8,000 for laptop-scale runs).
	SquattingDomains int
	// NonSquattingPhish is the size of the PhishTank-style population
	// (paper: 6,755 URLs; default 600).
	NonSquattingPhish int
	// GeneratedSquats is the size of the generated-squat population:
	// domains minted by a brand-language model (internal/domlm) trained on
	// the same brand universe the matcher monitors. They are rejection-
	// sampled to defeat all five rule-based squatting types while scoring
	// above the model's promotion threshold — the adversary PhishReplicant
	// (ACSAC '23) documents. 0 (the default) plants none.
	GeneratedSquats int
	// Seed drives all generation.
	Seed uint64
}

// DefaultConfig returns a laptop-scale world.
func DefaultConfig() Config {
	return Config{SquattingDomains: 8000, NonSquattingPhish: 600, Seed: 1175}
}

// World is the generated synthetic Internet.
type World struct {
	Cfg    Config
	Brands *brands.Universe

	// Sites maps domain -> ground truth, covering brand originals,
	// squatting domains, non-squatting phishing hosts, marketplaces, and
	// miscellaneous redirect targets.
	Sites map[string]*Site

	// SquattingDomains lists the squatting population in generation order.
	SquattingDomains []string
	// GeneratedSquats lists the generated-squat population in generation
	// order. It is deliberately not part of SquattingDomains: the five-type
	// matcher cannot (by construction) match these, and the experiments
	// that assert matcher coverage of SquattingDomains pin that contract.
	GeneratedSquats []string
	// NonSquattingPhish lists the PhishTank-style population.
	NonSquattingPhish []string
	// Marketplaces lists the domain-marketplace hosts.
	Marketplaces []string
}

// squat-type mix calibrated to Figure 2 (combo 371354/657663 etc.).
var typeMix = []struct {
	t squat.Type
	p float64
}{
	{squat.Combo, 0.565},
	{squat.Typo, 0.253},
	{squat.Bits, 0.073},
	{squat.WrongTLD, 0.060},
	{squat.Homograph, 0.049},
}

// comboWords extends the generator's affix list so the combo population is
// effectively unbounded, like real registrations.
var comboWords = []string{
	"deals", "shop", "center", "zone", "plus", "direct", "express", "hub",
	"world", "point", "now", "today", "best", "top", "free", "win",
	"club", "network", "digital", "cloud", "data", "care", "life",
	"market", "trade", "invest", "capital", "funds", "credit", "loans",
}

// Build generates the world deterministically from cfg.
func Build(cfg Config) *World {
	if cfg.Brands == nil {
		cfg.Brands = brands.Select(brands.DefaultConfig())
	}
	if cfg.SquattingDomains <= 0 {
		cfg.SquattingDomains = DefaultConfig().SquattingDomains
	}
	if cfg.NonSquattingPhish <= 0 {
		cfg.NonSquattingPhish = DefaultConfig().NonSquattingPhish
	}
	w := &World{Cfg: cfg, Brands: cfg.Brands, Sites: map[string]*Site{}}
	root := simrand.New(cfg.Seed).Split("webworld")

	w.buildMarketplaces(root.Split("markets"))
	w.buildOriginals(root.Split("originals"))
	w.buildSquatting(root.Split("squatting"))
	w.buildGeneratedSquats(root.Split("generated"))
	w.buildNonSquattingPhish(root.Split("nonsquat"))
	return w
}

// buildGeneratedSquats plants the generated-squat population. Each
// domain is drawn from a brand-language model trained over the monitored
// brand universe, then rejection-sampled until it (a) scores with margin
// above domlm.DefaultThreshold — the attacker optimizes for brand flavour
// — and (b) misses all five rule-based squatting types, so only a
// matcher with the model attached can flag it. The population is
// phishing-heavy: these are purpose-built attack domains, not the mixed
// parked/resale economy of ordinary squatting.
func (w *World) buildGeneratedSquats(r *simrand.RNG) {
	if w.Cfg.GeneratedSquats <= 0 {
		return
	}
	universe := w.Brands.Brands
	names := make([]string, len(universe))
	sb := make([]squat.Brand, len(universe))
	for i, b := range universe {
		names[i] = b.Name
		sb[i] = b.Brand
	}
	model := domlm.Train(names, domlm.DefaultConfig())
	matcher := squat.NewMatcher(sb)
	// Margin above the promotion threshold: every planted domain is
	// detectable by matcher+model at the default threshold, making recall
	// on this family exactly measurable (cmd/paperbench).
	const minScore = domlm.DefaultThreshold + 0.015
	tlds := []string{"com", "com", "com", "net", "org", "io", "online", "xyz"}

	for g := 0; g < w.Cfg.GeneratedSquats; g++ {
		var domain string
		for try := 0; try < 400; try++ {
			label := model.SampleLabel(r)
			if len(label) < domlm.MinLabelLen || model.ScoreLabel(label) < minScore {
				continue
			}
			d := label + "." + simrand.Pick(r, tlds)
			if w.Sites[d] != nil {
				continue
			}
			if _, hit := matcher.Match(d); hit {
				continue // one of the five types would catch it: not "generated"
			}
			domain = d
			break
		}
		if domain == "" {
			continue // deterministic shortfall; callers size populations loosely
		}
		b := universe[r.Intn(len(universe))]
		site := &Site{Domain: domain, Brand: b, SquatType: squat.Generated,
			IP: dnsx.RandomIP(r), Registrar: pickRegistrar(r)}
		switch x := r.Float64(); {
		case x < 0.60:
			w.makePhishing(r, site, true)
		case x < 0.85:
			site.Kind = Parked
			site.Alive = allAlive()
			site.RegYear = 2014 + r.Intn(5)
		default:
			site.Kind = Benign
			site.Alive = allAlive()
			site.RegYear = 2014 + r.Intn(5)
		}
		w.Sites[domain] = site
		w.GeneratedSquats = append(w.GeneratedSquats, domain)
	}
}

func (w *World) buildMarketplaces(r *simrand.RNG) {
	// Paper §3.2: a manually-compiled list of 22 known marketplaces.
	for i := 0; i < 22; i++ {
		d := fmt.Sprintf("market%s.com", r.Letters(4))
		if i == 0 {
			d = "marketmonitor.com" // named in the paper
		}
		w.Marketplaces = append(w.Marketplaces, d)
		w.Sites[d] = &Site{Domain: d, Kind: Benign, IP: dnsx.RandomIP(r),
			RegYear: 2005 + r.Intn(8), Registrar: pickRegistrar(r), Alive: allAlive()}
	}
}

func (w *World) buildOriginals(r *simrand.RNG) {
	for _, b := range w.Brands.Brands {
		d := b.Domain()
		w.Sites[d] = &Site{Domain: d, Kind: Benign, Brand: b, IP: dnsx.RandomIP(r),
			RegYear: 1995 + r.Intn(15), Registrar: pickRegistrar(r), Alive: allAlive()}
	}
}

// protectiveBrands redirect squatting traffic back to themselves at high
// rates (paper Table 3); marketHeavyBrands are squatted for resale
// (Table 4).
var protectiveBrands = map[string]bool{
	"shutterfly": true, "alliancebank": true, "rabobank": true,
	"priceline": true, "carfax": true,
}

var marketHeavyBrands = map[string]bool{
	"zocdoc": true, "comerica": true, "verizon": true, "amazon": true, "paypal": true,
}

// phishAttractive brands host disproportionately many squatting phishing
// pages (Figure 13: google far first, then ford/facebook/bitcoin/...).
var phishAttractive = map[string]float64{
	"google": 22, "ford": 2.5, "facebook": 2.4, "bitcoin": 2.3, "archive": 2.2,
	"amazon": 2.1, "europa": 2.0, "cisco": 1.9, "discover": 1.8, "apple": 1.8,
	"uber": 1.6, "citi": 1.6, "youtube": 1.5, "paypal": 1.5, "ebay": 1.3,
	"microsoft": 1.2, "twitter": 1.2, "dropbox": 1.1, "github": 1.1, "adp": 1.1,
	"santander": 1.0,
}

func (w *World) buildSquatting(r *simrand.RNG) {
	universe := w.Brands.Brands
	gen := squat.NewGenerator()

	// Squat attractiveness is its own skew, decoupled from Alexa rank
	// (paper: "the top brands here are not necessarily the most popular
	// websites"). A mild Zipf over a shuffled order gives the long tail;
	// the paper's top-5 (vice 5.98%, porn 2.76%, bt 2.46%, apple 2.05%,
	// ford 1.85% — Figure 4) are pinned above it.
	attract := make([]float64, len(universe))
	order := r.Perm(len(universe))
	for i, bi := range order {
		attract[bi] = math.Pow(float64(i+2), -0.6)
	}
	// Pinned attract weights: the paper's Figure 4 top-5 plus the Table 9
	// example brands, scaled so vice's weight corresponds to its 5.98%
	// share of the squatting population.
	pinned := map[string]float64{
		"vice": 2.40, "porn": 1.12, "bt": 1.00, "apple": 0.84, "ford": 0.76,
		"google": 0.42, "uber": 0.37, "citi": 0.31, "facebook": 0.23,
		"youtube": 0.19, "ebay": 0.19, "microsoft": 0.19, "adp": 0.20,
		"amazon": 0.21, "paypal": 0.14, "bitcoin": 0.085, "twitter": 0.085,
		"santander": 0.035, "dropbox": 0.032, "github": 0.031,
	}
	for i, b := range universe {
		if w, ok := pinned[b.Name]; ok {
			attract[i] = w
		}
	}
	total := 0.0
	for _, a := range attract {
		total += a
	}

	// Per-brand quotas.
	quota := make([]int, len(universe))
	for i := range universe {
		quota[i] = int(float64(w.Cfg.SquattingDomains) * attract[i] / total)
	}

	for bi, b := range universe {
		br := r.SplitN(uint64(bi))
		w.mintBrandSquats(br, gen, b, quota[bi])
	}
}

// mintBrandSquats creates n squatting domains for one brand.
func (w *World) mintBrandSquats(r *simrand.RNG, gen *squat.Generator, b brands.Brand, n int) {
	// Pre-generate bounded candidate pools per type.
	pools := map[squat.Type][]squat.Candidate{
		squat.Typo:      gen.Typos(b.Brand),
		squat.Bits:      gen.BitFlips(b.Brand),
		squat.WrongTLD:  gen.WrongTLDs(b.Brand),
		squat.Homograph: gen.Homographs(b.Brand),
	}
	// Shuffle pools in a fixed type order: map iteration order would make
	// the PRNG consumption — and hence the whole world — nondeterministic.
	for _, t := range []squat.Type{squat.Typo, squat.Bits, squat.WrongTLD, squat.Homograph} {
		pool := pools[t]
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	used := map[squat.Type]int{}

	for i := 0; i < n; i++ {
		// Sample a squatting type from the calibrated mix.
		x := r.Float64()
		t := squat.Combo
		acc := 0.0
		for _, m := range typeMix {
			acc += m.p
			if x < acc {
				t = m.t
				break
			}
		}
		var domain string
		if t == squat.Combo {
			domain = w.mintCombo(r, b)
		} else {
			pool := pools[t]
			if used[t] >= len(pool) {
				domain = w.mintCombo(r, b) // pool exhausted: spill to combo
				t = squat.Combo
			} else {
				domain = pool[used[t]].Domain
				used[t]++
			}
		}
		if domain == "" || w.Sites[domain] != nil {
			continue
		}
		site := w.mintSquatSite(r, b, domain, t)
		w.Sites[domain] = site
		w.SquattingDomains = append(w.SquattingDomains, domain)
	}
}

func (w *World) mintCombo(r *simrand.RNG, b brands.Brand) string {
	for attempt := 0; attempt < 8; attempt++ {
		word := simrand.Pick(r, comboWords)
		if r.Bool(0.3) {
			word = simrand.Pick(r, comboWords) + word
		}
		tld := simrand.Pick(r, []string{"com", "com", "net", "org", "de", "online", "eu", "in", "co"})
		var d string
		if r.Bool(0.5) {
			d = b.Name + "-" + word + "." + tld
		} else {
			d = word + "-" + b.Name + "." + tld
		}
		if w.Sites[d] == nil {
			return d
		}
	}
	return ""
}

// mintSquatSite assigns the domain's fate per the calibrated Table 2/8 mix.
func (w *World) mintSquatSite(r *simrand.RNG, b brands.Brand, domain string, t squat.Type) *Site {
	site := &Site{Domain: domain, Brand: b, SquatType: t, IP: dnsx.RandomIP(r),
		RegYear: regYear(r), Registrar: pickRegistrar(r)}

	if r.Bool(0.45) {
		site.Kind = Dead
		return site
	}
	site.Alive = allAlive()

	pOriginal, pMarket, pOther := 0.017, 0.030, 0.080
	if protectiveBrands[b.Name] {
		pOriginal = 0.30
	}
	if marketHeavyBrands[b.Name] {
		pMarket = 0.35
	}
	pPhish := 0.0036 // ~0.2% of all squatting = ~0.36% of the live 55%
	if boost, ok := phishAttractive[b.Name]; ok {
		pPhish *= boost
	}

	x := r.Float64()
	switch {
	case x < pPhish:
		w.makePhishing(r, site, true)
	case x < pPhish+pOriginal:
		site.Kind = RedirectOriginal
		site.RedirectTo = b.Domain()
	case x < pPhish+pOriginal+pMarket:
		site.Kind = RedirectMarket
		site.RedirectTo = simrand.Pick(r, w.Marketplaces)
	case x < pPhish+pOriginal+pMarket+pOther:
		site.Kind = RedirectOther
		site.RedirectTo = simrand.Pick(r, w.Marketplaces[1:]) // reuse hosts; kind matters, not target
		other := "misc" + r.Letters(5) + ".net"
		if w.Sites[other] == nil {
			w.Sites[other] = &Site{Domain: other, Kind: Benign, IP: dnsx.RandomIP(r),
				RegYear: regYear(r), Registrar: pickRegistrar(r), Alive: allAlive()}
		}
		site.RedirectTo = other
	case r.Bool(0.55):
		site.Kind = Parked
	default:
		site.Kind = Benign
	}
	return site
}

// makePhishing fills in phishing attributes. squatting selects the
// squatting (heavier evasion) or non-squatting (lighter) profile, per
// Table 11.
func (w *World) makePhishing(r *simrand.RNG, site *Site, squatting bool) {
	site.Kind = Phishing
	site.ReplacedAt = -1
	site.ReplacedFrom = -1

	// Cloaking split from §6.1: 590 both / 318 mobile-only / 267 web-only.
	x := r.Float64()
	switch {
	case x < 0.50:
		site.Cloak = CloakNone
	case x < 0.77:
		site.Cloak = CloakMobileOnly
	default:
		site.Cloak = CloakWebOnly
	}

	if squatting {
		site.StringObf = r.Bool(0.68)
		site.CodeObf = r.Bool(0.345)
		if r.Bool(0.85) { // layout obfuscation is near-universal (28 +/- 12)
			site.LayoutSeed = r.Uint64() | 1
		}
	} else {
		site.StringObf = r.Bool(0.359)
		site.CodeObf = r.Bool(0.375)
		if r.Bool(0.60) {
			site.LayoutSeed = r.Uint64() | 1
		}
	}

	site.Scam = pickScam(r, site.Brand)

	// Liveness over the month (Fig. 17): ~80% alive in all snapshots.
	switch {
	case r.Bool(0.80):
		site.Alive = allAlive()
		if r.Bool(0.02) {
			site.ReplacedAt = 2 // benign page mid-month, back later
		}
	case r.Bool(0.5):
		site.Alive = [Snapshots]bool{true, true, true, false}
	default:
		site.Alive = [Snapshots]bool{true, true, false, false}
	}
	// Recent registrations (Fig. 16).
	site.RegYear = 2014 + r.Intn(5)
}

// pickScam selects the scam flavour using the brand's domain.
func pickScam(r *simrand.RNG, b brands.Brand) Scam {
	switch b.Name {
	case "google", "bing":
		if r.Bool(0.5) {
			return ScamFakeSearch
		}
	case "uber":
		if r.Bool(0.6) {
			return ScamFreight
		}
	case "adp":
		return ScamPayroll
	case "microsoft":
		if r.Bool(0.5) {
			return ScamTechSupport
		}
	case "apple", "amazon":
		if r.Bool(0.4) {
			return ScamPrize
		}
	}
	if b.Category == "finance" && r.Bool(0.5) {
		return ScamPayment
	}
	return ScamLogin
}

func (w *World) buildNonSquattingPhish(r *simrand.RNG) {
	// Hosting mix from §4.1: web-hosting services dominate
	// (000webhostapp, sites.google, drive.google analogues).
	hosts := []string{"000webhostapp.com", "sites-hosting.com", "drive-share.com", "freepages.net", "webnode.io"}
	targets := w.Brands.PhishTargetBrands()
	// Top-8 brands cover ~59% of reports (Fig. 5): Zipf over target list.
	for i := 0; i < w.Cfg.NonSquattingPhish; i++ {
		b := targets[r.Zipf(len(targets), 1.25)]
		var domain string
		if r.Bool(0.25) { // hosting-service share (paper §4.1: ~1/6 on 000webhostapp alone)
			domain = b.Name + r.Letters(4) + "." + simrand.Pick(r, hosts)
		} else {
			domain = r.Letters(8) + "." + simrand.Pick(r, []string{"com", "net", "org", "info"})
		}
		if w.Sites[domain] != nil {
			continue
		}
		site := &Site{Domain: domain, Brand: b, SquatType: squat.None,
			IP: dnsx.RandomIP(r), RegYear: regYear(r), Registrar: pickRegistrar(r)}
		w.makePhishing(r, site, false)
		// User-reported phishing has a very short life (Table 5: only
		// 43.2% still phishing when crawled; §6.3: hosted pages last <10
		// days). 57%: taken down before the first crawl — half replaced
		// with a benign page, half dead. The remainder mostly dies within
		// the month.
		switch {
		case r.Bool(0.285):
			site.ReplacedFrom = 0
		case r.Bool(0.399): // 0.285 of the remaining 0.715
			site.Alive = [Snapshots]bool{}
		case r.Bool(0.75):
			site.Alive = [Snapshots]bool{true, false, false, false}
		}
		w.Sites[domain] = site
		w.NonSquattingPhish = append(w.NonSquattingPhish, domain)
	}
}

// registrars with godaddy most common (Fig. 16 discussion).
var registrars = []string{
	"godaddy.com", "godaddy.com", "godaddy.com", "namecheap.com",
	"enom.com", "tucows.com", "publicdomainregistry.com", "namesilo.com",
	"gandi.net", "ovh.com", "alibaba-inc.com", "regru.ru",
}

func pickRegistrar(r *simrand.RNG) string { return simrand.Pick(r, registrars) }

func regYear(r *simrand.RNG) int {
	// Mass concentrated in the recent 4 years, long tail back to 2005.
	if r.Bool(0.7) {
		return 2014 + r.Intn(5)
	}
	return 2005 + r.Intn(10)
}

func allAlive() [Snapshots]bool {
	var a [Snapshots]bool
	for i := range a {
		a[i] = true
	}
	return a
}

// Site returns the ground truth for a domain.
func (w *World) Site(domain string) (*Site, bool) {
	s, ok := w.Sites[strings.ToLower(strings.TrimSuffix(domain, "."))]
	return s, ok
}

// DNSDomains returns every domain that resolves (all sites including dead
// ones — DNS records outlive web servers), sorted for determinism.
func (w *World) DNSDomains() []string {
	out := make([]string, 0, len(w.Sites))
	for d := range w.Sites {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// PhishingSites returns all squatting phishing sites.
func (w *World) PhishingSites() []*Site {
	var out []*Site
	for _, d := range w.SquattingDomains {
		if s := w.Sites[d]; s.Kind == Phishing {
			out = append(out, s)
		}
	}
	return out
}
