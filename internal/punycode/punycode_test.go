package punycode

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// RFC 3492 §7.1 sample strings and well-known IDN examples.
var encodeCases = []struct {
	unicode, ace string
}{
	{"bücher", "bcher-kva"},
	{"münchen", "mnchen-3ya"},
	{"fàcebook", "fcebook-8va"}, // paper Table 1 homograph example
	{"пример", "e1afmkfd"},
	{"παράδειγμα", "hxajbheg2az3al"},
	{"例え", "r8jz45g"},
	{"abc", "abc-"}, // all-basic input keeps trailing delimiter
}

func TestEncodeKnown(t *testing.T) {
	for _, c := range encodeCases {
		got, err := Encode(c.unicode)
		if err != nil {
			t.Errorf("Encode(%q) error: %v", c.unicode, err)
			continue
		}
		if got != c.ace {
			t.Errorf("Encode(%q) = %q, want %q", c.unicode, got, c.ace)
		}
	}
}

func TestDecodeKnown(t *testing.T) {
	for _, c := range encodeCases {
		got, err := Decode(c.ace)
		if err != nil {
			t.Errorf("Decode(%q) error: %v", c.ace, err)
			continue
		}
		if got != c.unicode {
			t.Errorf("Decode(%q) = %q, want %q", c.ace, got, c.unicode)
		}
	}
}

func TestDecodeCaseInsensitiveDigits(t *testing.T) {
	// Extended digits are case-insensitive; basic code points keep their case.
	got, err := Decode("BCHER-KVA")
	if err != nil || got != "BüCHER" {
		t.Fatalf("Decode uppercase = %q, %v", got, err)
	}
}

func TestDecodeTrailingDelimiterForms(t *testing.T) {
	// A trailing delimiter with an empty extended part is the canonical
	// encoding of an all-basic string (RFC 3492 §3.1).
	if got, err := Decode("kva-"); err != nil || got != "kva" {
		t.Fatalf("Decode(\"kva-\") = %q, %v; want \"kva\"", got, err)
	}
	if got, err := Decode("-"); err != nil || got != "" {
		t.Fatalf("Decode(\"-\") = %q, %v; want \"\"", got, err)
	}
}

func TestDecodeInvalid(t *testing.T) {
	for _, s := range []string{"!!!", "abc-€", "a-b-ü", "zz "} {
		if _, err := Decode(s); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", s)
		}
	}
}

func TestDecodeOverflow(t *testing.T) {
	if _, err := Decode(strings.Repeat("z", 64)); err == nil {
		t.Error("Decode of overflowing input succeeded")
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(s string) bool {
		if !utf8.ValidString(s) {
			return true // skip invalid UTF-8 inputs
		}
		enc, err := Encode(s)
		if err != nil {
			return true // overflow on adversarial input is acceptable
		}
		dec, err := Decode(enc)
		return err == nil && dec == s
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestToASCII(t *testing.T) {
	cases := []struct{ in, want string }{
		{"fàcebook.com", "xn--fcebook-8va.com"},
		{"facebook.com", "facebook.com"},
		{"bücher.example.de", "xn--bcher-kva.example.de"},
		{"FÀCEBOOK.COM", "xn--fcebook-8va.com"},
	}
	for _, c := range cases {
		got, err := ToASCII(c.in)
		if err != nil {
			t.Errorf("ToASCII(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ToASCII(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestToASCIIRejectsOverlongLabel(t *testing.T) {
	long := strings.Repeat("ü", 60) + ".com"
	if _, err := ToASCII(long); err == nil {
		t.Error("ToASCII accepted a label that encodes to >63 octets")
	}
}

func TestToUnicode(t *testing.T) {
	cases := []struct{ in, want string }{
		{"xn--fcebook-8va.com", "fàcebook.com"},
		{"facebook.com", "facebook.com"},
		{"XN--FCEBOOK-8VA.com", "fàcebook.com"},
		{"xn--!!!.com", "xn--!!!.com"}, // invalid ACE passes through
	}
	for _, c := range cases {
		if got := ToUnicode(c.in); got != c.want {
			t.Errorf("ToUnicode(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestToASCIIToUnicodeRoundTrip(t *testing.T) {
	domains := []string{"fàcebook.com", "gооgle.com", "пример.испытание", "mixed.bücher.org"}
	for _, d := range domains {
		ace, err := ToASCII(d)
		if err != nil {
			t.Fatalf("ToASCII(%q): %v", d, err)
		}
		if got := ToUnicode(ace); got != strings.ToLower(d) {
			t.Errorf("round trip %q -> %q -> %q", d, ace, got)
		}
	}
}

func TestIsACE(t *testing.T) {
	if !IsACE("xn--fcebook-8va.com") {
		t.Error("IsACE missed an ACE domain")
	}
	if IsACE("facebook.com") {
		t.Error("IsACE false positive on plain ASCII domain")
	}
	if !IsACE("mail.XN--BCHER-KVA.de") {
		t.Error("IsACE missed ACE in middle label with upper case")
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Encode("fàcebook")
	}
}

func BenchmarkDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Decode("fcebook-8va")
	}
}
