// Package punycode implements the Punycode bootstring encoding of RFC 3492
// and the thin slice of IDNA (RFC 5890) needed to convert internationalized
// domain names to and from their "xn--" ASCII-compatible form.
//
// Homograph squatting domains in the wild are registered as IDNs: the domain
// the user sees (fàcebook.com) and the domain in DNS (xn--fcebook-8va.com)
// differ, and squatting detection must translate between the two (paper §3.1,
// Figure 1). The standard library does not expose punycode, so this package
// implements it from scratch.
package punycode

import (
	"errors"
	"fmt"
	"strings"
	"unicode/utf8"
)

// Bootstring parameters for Punycode (RFC 3492 §5).
const (
	base        = 36
	tmin        = 1
	tmax        = 26
	skew        = 38
	damp        = 700
	initialBias = 72
	initialN    = 128
	delimiter   = '-'
)

// ErrInvalid reports malformed punycode input.
var ErrInvalid = errors.New("punycode: invalid input")

// ErrOverflow reports input whose decoded form exceeds representable bounds.
var ErrOverflow = errors.New("punycode: overflow")

// adapt is the bias adaptation function of RFC 3492 §6.1.
func adapt(delta, numPoints int, firstTime bool) int {
	if firstTime {
		delta /= damp
	} else {
		delta /= 2
	}
	delta += delta / numPoints
	k := 0
	for delta > ((base-tmin)*tmax)/2 {
		delta /= base - tmin
		k += base
	}
	return k + (base-tmin+1)*delta/(delta+skew)
}

// encodeDigit converts a digit value in [0, 36) to its basic code point.
func encodeDigit(d int) byte {
	switch {
	case d < 26:
		return byte('a' + d)
	case d < 36:
		return byte('0' + d - 26)
	}
	panic("punycode: internal error: digit out of range")
}

// decodeDigit converts a basic code point to its digit value, or -1.
func decodeDigit(c byte) int {
	switch {
	case '0' <= c && c <= '9':
		return int(c-'0') + 26
	case 'a' <= c && c <= 'z':
		return int(c - 'a')
	case 'A' <= c && c <= 'Z':
		return int(c - 'A')
	}
	return -1
}

// Encode converts a Unicode string to its punycode form (without any
// "xn--" prefix). Pure-ASCII input is returned with a trailing delimiter
// per RFC 3492; callers that want IDNA semantics should use ToASCII.
func Encode(s string) (string, error) {
	var out strings.Builder
	runes := []rune(s)

	basicCount := 0
	for _, r := range runes {
		if r < 0x80 {
			out.WriteByte(byte(r))
			basicCount++
		}
	}
	h := basicCount
	if basicCount > 0 {
		out.WriteByte(delimiter)
	}

	n, delta, bias := initialN, 0, initialBias
	for h < len(runes) {
		// Find the smallest non-basic code point >= n.
		m := rune(0x7fffffff)
		for _, r := range runes {
			if r >= rune(n) && r < m {
				m = r
			}
		}
		if int(m)-n > (1<<31-1-delta)/(h+1) {
			return "", ErrOverflow
		}
		delta += (int(m) - n) * (h + 1)
		n = int(m)
		for _, r := range runes {
			if r < rune(n) {
				delta++
				if delta == 1<<31-1 {
					return "", ErrOverflow
				}
			}
			if r == rune(n) {
				q := delta
				for k := base; ; k += base {
					t := k - bias
					if t < tmin {
						t = tmin
					} else if t > tmax {
						t = tmax
					}
					if q < t {
						break
					}
					out.WriteByte(encodeDigit(t + (q-t)%(base-t)))
					q = (q - t) / (base - t)
				}
				out.WriteByte(encodeDigit(q))
				bias = adapt(delta, h+1, h == basicCount)
				delta = 0
				h++
			}
		}
		delta++
		n++
	}
	return out.String(), nil
}

// Decode converts a punycode string (without "xn--" prefix) back to Unicode.
func Decode(s string) (string, error) {
	var output []rune
	pos := 0
	if i := strings.LastIndexByte(s, delimiter); i >= 0 {
		for _, c := range s[:i] {
			if c >= 0x80 {
				return "", ErrInvalid
			}
			output = append(output, c)
		}
		pos = i + 1
	}

	n, i, bias := initialN, 0, initialBias
	for pos < len(s) {
		oldi, w := i, 1
		for k := base; ; k += base {
			if pos >= len(s) {
				return "", ErrInvalid
			}
			d := decodeDigit(s[pos])
			pos++
			if d < 0 {
				return "", ErrInvalid
			}
			if d > (1<<31-1-i)/w {
				return "", ErrOverflow
			}
			i += d * w
			t := k - bias
			if t < tmin {
				t = tmin
			} else if t > tmax {
				t = tmax
			}
			if d < t {
				break
			}
			if w > (1<<31-1)/(base-t) {
				return "", ErrOverflow
			}
			w *= base - t
		}
		bias = adapt(i-oldi, len(output)+1, oldi == 0)
		if i/(len(output)+1) > 1<<31-1-n {
			return "", ErrOverflow
		}
		n += i / (len(output) + 1)
		i %= len(output) + 1
		if n > utf8.MaxRune || !utf8.ValidRune(rune(n)) {
			return "", ErrInvalid
		}
		output = append(output, 0)
		copy(output[i+1:], output[i:])
		output[i] = rune(n)
		i++
	}
	return string(output), nil
}

// acePrefix is the IDNA ASCII-compatible-encoding prefix.
const acePrefix = "xn--"

// ToASCII converts a (possibly internationalized) domain name to its
// ASCII-compatible encoding, label by label. ASCII labels pass through
// unchanged. It applies simple lowercasing but no full IDNA2008 mapping,
// which is sufficient for squatting-domain generation and matching.
func ToASCII(domain string) (string, error) {
	labels := strings.Split(strings.ToLower(domain), ".")
	for li, label := range labels {
		if label == "" || isASCII(label) {
			continue
		}
		enc, err := Encode(label)
		if err != nil {
			return "", fmt.Errorf("label %q: %w", label, err)
		}
		labels[li] = acePrefix + enc
		if len(labels[li]) > 63 {
			return "", fmt.Errorf("label %q: %w: encoded label exceeds 63 octets", label, ErrInvalid)
		}
	}
	return strings.Join(labels, "."), nil
}

// ToUnicode converts an ASCII-compatible-encoded domain back to Unicode,
// label by label. Labels that are not valid punycode are passed through
// unchanged, mirroring lenient browser behaviour.
func ToUnicode(domain string) string {
	labels := strings.Split(domain, ".")
	for li, label := range labels {
		lower := strings.ToLower(label)
		if !strings.HasPrefix(lower, acePrefix) {
			continue
		}
		dec, err := Decode(lower[len(acePrefix):])
		if err != nil {
			continue
		}
		labels[li] = dec
	}
	return strings.Join(labels, ".")
}

// IsACE reports whether any label of domain carries the "xn--" prefix.
func IsACE(domain string) bool {
	for _, label := range strings.Split(strings.ToLower(domain), ".") {
		if strings.HasPrefix(label, acePrefix) {
			return true
		}
	}
	return false
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}
