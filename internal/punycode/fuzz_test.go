package punycode

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzDecode feeds arbitrary strings to the bootstring decoder: it must
// never panic, and anything it accepts must survive a re-encode/re-decode
// round trip (the decoded rune sequence is canonical even when the input
// spelling is not, e.g. uppercase digits).
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		"-",
		"fcebook-8va",
		"egbpdaj6bu4bxfgehfvwxn",   // RFC 3492 sample (Arabic)
		"ihqwcrb4cv8a8dqg056pqjye", // RFC 3492 sample (Chinese)
		"abc-",
		"a-b-c-9999",
		"ZZZZ",
		"0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		dec, err := Decode(s)
		if err != nil {
			return
		}
		enc, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-encode of decoded %q (%q) failed: %v", s, dec, err)
		}
		dec2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of %q failed: %v", enc, err)
		}
		if dec2 != dec {
			t.Fatalf("round trip changed value: %q -> %q -> %q -> %q", s, dec, enc, dec2)
		}
	})
}

// FuzzEncodeRoundTrip checks Encode/Decode are inverses on arbitrary valid
// Unicode input.
func FuzzEncodeRoundTrip(f *testing.F) {
	seeds := []string{
		"",
		"plain",
		"fàcebook",
		"bücher",
		"правда",
		"日本語",
		"a-b.c",
		"--",
		"mix0f-ascii-アンド-more",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if !utf8.ValidString(s) {
			return
		}
		enc, err := Encode(s)
		if err != nil {
			return // overflow on adversarial input is a valid outcome
		}
		for i := 0; i < len(enc); i++ {
			if enc[i] >= 0x80 {
				t.Fatalf("Encode(%q) produced non-ASCII output %q", s, enc)
			}
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%q)) = Decode(%q) failed: %v", s, enc, err)
		}
		if dec != s {
			t.Fatalf("round trip changed value: %q -> %q -> %q", s, enc, dec)
		}
	})
}

// FuzzToUnicode exercises the lenient IDNA layer: ToUnicode never panics
// and ToASCII/ToUnicode are inverses (modulo lowercasing) for domains that
// do not already carry an ACE prefix.
func FuzzToUnicode(f *testing.F) {
	seeds := []string{
		"example.com",
		"xn--fcebook-8va.com",
		"xn--.com",
		"xn--a.xn--b",
		"fàcebook.com",
		"..",
		"XN--FCEBOOK-8VA.COM",
		"xn--\x80.com",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, domain string) {
		_ = ToUnicode(domain) // must not panic on anything
		if !utf8.ValidString(domain) || IsACE(domain) {
			return
		}
		ascii, err := ToASCII(domain)
		if err != nil {
			return // over-long or overflowing labels are a valid rejection
		}
		if got, want := ToUnicode(ascii), strings.ToLower(domain); got != want {
			t.Fatalf("ToUnicode(ToASCII(%q)) = %q, want %q", domain, got, want)
		}
	})
}
