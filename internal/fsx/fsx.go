// Package fsx holds the repository's durable-file conventions. Long-running
// processes (squatd, squatmond -delta) periodically spill state — deltascan
// verdict caches, trace stores, metrics snapshots — and a crash mid-write
// must never poison the artifact a restart will Load: a truncated gzip or a
// half-encoded JSONL stream is strictly worse than no file at all, because
// the next process trusts it, fails, and loses the graceful-degrade path.
//
// WriteFile is the one sanctioned way to persist such state: the content is
// streamed to a temporary file in the destination directory, fsynced, and
// renamed over the destination. On POSIX filesystems the rename is atomic,
// so a reader (or a restarted process) observes either the complete old
// file or the complete new file — never a torn intermediate.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes that write produces.
// The content is written to a temporary sibling file (same directory, so
// the final rename cannot cross filesystems), flushed to stable storage
// with fsync, and renamed over path. If write or any syscall fails, the
// temporary file is removed and path is left untouched.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsx: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on must not leave the temp file behind.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fsx: write %s: %w", path, err)
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsx: write %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsx: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsx: write %s: %w", path, err)
	}
	return nil
}
