package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.gz")

	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}

	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
}

// TestWriteFileFailureLeavesOldContent is the crash-safety contract: a
// writer that fails mid-stream must leave the previous file intact and no
// temp litter behind.
func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.gz")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "good" {
		t.Fatalf("old content clobbered: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFilePermissions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out")
	if err := WriteFile(path, func(w io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", info.Mode().Perm())
	}
}
