package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Please enter your Password, then click LOG-IN!")
	want := []string{"please", "enter", "password", "click", "log"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDropsStopwordsAndShortTokens(t *testing.T) {
	got := Tokenize("a an I to x yz account")
	want := []string{"yz", "account"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDigitsKept(t *testing.T) {
	got := Tokenize("win 500 dollars code ab12")
	want := []string{"win", "500", "dollars", "code", "ab12"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("!!! ... ???"); len(got) != 0 {
		t.Fatalf("Tokenize(punct) = %v", got)
	}
}

func TestTokenizeNoStopwordsProperty(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		for _, tok := range Tokenize(s) {
			if IsStopword(tok) || len(tok) < 2 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildVocabularyOrderAndMinCount(t *testing.T) {
	corpus := [][]string{
		{"password", "login", "password"},
		{"password", "login", "rare"},
	}
	v := BuildVocabulary(corpus, 2, []string{"paypal"})
	// mustInclude first, then by frequency: password(3), login(2); rare(1) dropped.
	want := []string{"paypal", "password", "login"}
	if !reflect.DeepEqual(v.Words(), want) {
		t.Fatalf("Words = %v, want %v", v.Words(), want)
	}
	if _, ok := v.Index("rare"); ok {
		t.Fatal("below-threshold token kept")
	}
}

func TestBuildVocabularyDeduplicates(t *testing.T) {
	v := BuildVocabulary([][]string{{"paypal", "paypal"}}, 1, []string{"PayPal", "paypal"})
	if v.Size() != 1 {
		t.Fatalf("Size = %d, want 1", v.Size())
	}
}

func TestBuildVocabularyDeterministic(t *testing.T) {
	corpus := [][]string{{"aa", "bb", "cc"}, {"bb", "cc", "dd"}, {"cc", "dd", "aa"}}
	a := BuildVocabulary(corpus, 1, nil)
	b := BuildVocabulary(corpus, 1, nil)
	if !reflect.DeepEqual(a.Words(), b.Words()) {
		t.Fatalf("vocabulary order unstable: %v vs %v", a.Words(), b.Words())
	}
}

func TestEmbed(t *testing.T) {
	v := BuildVocabulary([][]string{{"password", "login"}}, 1, nil)
	vec := v.Embed([]string{"password", "password", "unknown"}, []float64{2, 0.5})
	if len(vec) != v.Size()+2 {
		t.Fatalf("vector length = %d", len(vec))
	}
	pi, _ := v.Index("password")
	if vec[pi] != 2 {
		t.Fatalf("password count = %f", vec[pi])
	}
	li, _ := v.Index("login")
	if vec[li] != 0 {
		t.Fatalf("login count = %f", vec[li])
	}
	if vec[v.Size()] != 2 || vec[v.Size()+1] != 0.5 {
		t.Fatalf("extras = %v", vec[v.Size():])
	}
}

func TestEmbedCaseFoldOnIndexOnly(t *testing.T) {
	v := BuildVocabulary(nil, 1, []string{"Brand"})
	if i, ok := v.Index("BRAND"); !ok || i != 0 {
		t.Fatal("Index not case-insensitive")
	}
}

func BenchmarkTokenize(b *testing.B) {
	s := "Please enter your email address and password to sign in to your PayPal account securely 2018"
	for i := 0; i < b.N; i++ {
		_ = Tokenize(s)
	}
}

func BenchmarkEmbed(b *testing.B) {
	var corpus [][]string
	for i := 0; i < 50; i++ {
		corpus = append(corpus, Tokenize("password login account secure verify email bank transfer money"))
	}
	v := BuildVocabulary(corpus, 1, []string{"paypal", "facebook", "google"})
	toks := Tokenize("enter password to login to your paypal account")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Embed(toks, []float64{1})
	}
}
