// Package textproc implements the NLP substrate of the classifier pipeline:
// tokenization, stopword removal, vocabulary construction, and sparse
// keyword-frequency feature embedding (paper §5.2).
//
// The paper tokenizes extracted text with NLTK, removes stopwords, applies
// spell checking (see internal/ocr), and embeds pages as keyword-frequency
// vectors over the union of frequent ground-truth keywords and brand names
// (987 dimensions in their data). This package reproduces that embedding.
package textproc

import (
	"sort"
	"strings"
	"unicode"
)

// stopwords is a standard English stopword list (short function words that
// carry no phishing signal).
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`
		a an and are as at be by for from has have he her his i in is it its
		of on or that the their them they this to was were will with you your
		we our us she him hers ours yours theirs me my mine do does did done
		not no nor so if then else when where which who whom what why how all
		any both each few more most other some such than too very can just
		also am been being but had having into itself once only own same
		there these those through under until up down out off over again
		further about above below after before between during`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether w (already lower case) is a stopword.
func IsStopword(w string) bool { return stopwords[w] }

// Tokenize splits free text into lower-cased word tokens: runs of letters
// and digits, dropping single characters and stopwords.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() >= 2 {
			w := cur.String()
			if !stopwords[w] {
				out = append(out, w)
			}
		}
		cur.Reset()
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Vocabulary maps keywords to feature-vector indices. It is immutable once
// built and safe for concurrent use.
type Vocabulary struct {
	index map[string]int
	words []string
}

// BuildVocabulary constructs a vocabulary from token frequency counts:
// tokens appearing at least minCount times across the corpus, merged with
// the mustInclude list (the paper merges frequent phishing keywords with
// all brand names). Order is deterministic: mustInclude first, then corpus
// tokens by descending frequency (ties alphabetical).
func BuildVocabulary(corpus [][]string, minCount int, mustInclude []string) *Vocabulary {
	freq := map[string]int{}
	for _, doc := range corpus {
		for _, tok := range doc {
			freq[tok]++
		}
	}
	v := &Vocabulary{index: map[string]int{}}
	add := func(w string) {
		if w == "" {
			return
		}
		if _, ok := v.index[w]; !ok {
			v.index[w] = len(v.words)
			v.words = append(v.words, w)
		}
	}
	for _, w := range mustInclude {
		add(strings.ToLower(w))
	}
	type wc struct {
		w string
		c int
	}
	var sorted []wc
	for w, c := range freq {
		if c >= minCount {
			sorted = append(sorted, wc{w, c})
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].c != sorted[j].c {
			return sorted[i].c > sorted[j].c
		}
		return sorted[i].w < sorted[j].w
	})
	for _, e := range sorted {
		add(e.w)
	}
	return v
}

// Size returns the number of keyword dimensions.
func (v *Vocabulary) Size() int { return len(v.words) }

// Words returns the keywords in index order. Callers must not modify it.
func (v *Vocabulary) Words() []string { return v.words }

// Index returns the feature index of a word.
func (v *Vocabulary) Index(w string) (int, bool) {
	i, ok := v.index[strings.ToLower(w)]
	return i, ok
}

// Embed converts token lists plus numeric extras into a dense feature
// vector: keyword frequencies first, then the extras appended. The layout
// matches the paper's embedding (keyword counts + numeric features such as
// the number of forms).
func (v *Vocabulary) Embed(tokens []string, extras []float64) []float64 {
	vec := make([]float64, len(v.words)+len(extras))
	for _, tok := range tokens {
		if i, ok := v.index[tok]; ok {
			vec[i]++
		}
	}
	copy(vec[len(v.words):], extras)
	return vec
}
