// Package phishtank simulates the crowdsourced phishing feed the paper
// uses as ground truth (§4.1): user-submitted URLs, community verification,
// brand tags, and the Alexa-rank context of the reported domains.
//
// Calibration targets from the paper: 6,755 unique phishing URLs across 138
// of 204 brands over the collection window; the top-8 brands cover 59% of
// URLs (Figure 5); 70% of reported domains rank beyond the Alexa top 1M
// (Figure 6); ~91% of reported URLs use no squatting domain (Figure 7);
// and by crawl time only 43.2% of the top-8-brand pages still serve
// phishing (Table 5) — the feed outlives the pages it reports.
package phishtank

import (
	"sort"
	"strings"

	"squatphi/internal/simrand"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// Report is one feed entry.
type Report struct {
	URL    string
	Domain string
	// Brand is the feed's brand tag (the registrable name, e.g. "paypal").
	Brand string
	// Day is the submission day index within the collection window.
	Day int
	// Verified marks entries the community confirmed as phishing.
	Verified bool
	// AlexaRank is the reported domain's global rank; 0 means unranked
	// (beyond the top 1M).
	AlexaRank int
}

// Feed is the simulated crowdsourcing service.
type Feed struct {
	Reports []Report
}

// CollectionDays is the length of the paper's collection window
// (February 2 to April 10).
const CollectionDays = 68

// Build derives the feed from the world: every non-squatting phishing host
// is reported, plus the small squatting minority that does surface on the
// feed (Figure 7). Some reports are unverified noise.
func Build(w *webworld.World, seed uint64) *Feed {
	r := simrand.New(seed).Split("phishtank")
	f := &Feed{}

	add := func(domain string, brand string, verified bool) {
		path := "/" + r.Letters(6)
		if r.Bool(0.3) {
			path += "/" + r.Letters(4) + ".html"
		}
		f.Reports = append(f.Reports, Report{
			URL:       "http://" + domain + path,
			Domain:    domain,
			Brand:     brand,
			Day:       r.Intn(CollectionDays),
			Verified:  verified,
			AlexaRank: alexaRank(r, domain),
		})
	}

	for _, d := range w.NonSquattingPhish {
		site := w.Sites[d]
		add(d, site.Brand.Name, true)
	}
	// The squatting minority on the feed: ~9% of verified reports, almost
	// all combo (the paper found hundreds of combo reports but only one
	// homograph and one typo, and no bits/wrongTLD). The squatting
	// phishing population is small, so the feed additionally surfaces
	// benign-by-now combo *squatting domains* users mistook for phishing —
	// matching how the real feed over-reports suspicious-looking domains.
	want := len(w.NonSquattingPhish) / 10
	got := 0
	for _, s := range w.PhishingSites() {
		if got >= want {
			break
		}
		if s.SquatType == squat.Combo {
			add(s.Domain, s.Brand.Name, true)
			got++
		}
	}
	for _, d := range w.SquattingDomains {
		if got >= want {
			break
		}
		s := w.Sites[d]
		if s.SquatType == squat.Combo && s.Kind == webworld.Benign && r.Bool(0.25) {
			add(d, s.Brand.Name, true)
			got++
		}
	}
	// Unverified noise submissions (random URLs users mistook).
	for i := 0; i < len(w.NonSquattingPhish)/20+1; i++ {
		add(r.Letters(9)+".com", "other", false)
	}

	sort.SliceStable(f.Reports, func(i, j int) bool { return f.Reports[i].Day < f.Reports[j].Day })
	return f
}

// alexaRank models Figure 6: ~70% of phishing URLs rank beyond the top 1M
// (rank 0 here); web-hosting domains rank high.
func alexaRank(r *simrand.RNG, domain string) int {
	if strings.Contains(domain, "000webhostapp") || strings.Contains(domain, "drive-share") {
		return 1000 + r.Intn(9000)
	}
	x := r.Float64()
	switch {
	case x < 0.70:
		return 0 // beyond 1M
	case x < 0.74:
		return 50 + r.Intn(950)
	case x < 0.89:
		return 1000 + r.Intn(9000)
	case x < 0.96:
		return 10000 + r.Intn(90000)
	default:
		return 100000 + r.Intn(900000)
	}
}

// Verified returns only the community-verified reports.
func (f *Feed) Verified() []Report {
	var out []Report
	for _, rep := range f.Reports {
		if rep.Verified {
			out = append(out, rep)
		}
	}
	return out
}

// BrandCounts tallies verified reports per brand tag.
func (f *Feed) BrandCounts() map[string]int {
	out := map[string]int{}
	for _, rep := range f.Verified() {
		out[rep.Brand]++
	}
	return out
}

// TopBrands returns the n brands with the most verified reports, by count
// descending (ties alphabetical), with their counts.
func (f *Feed) TopBrands(n int) []struct {
	Brand string
	Count int
} {
	counts := f.BrandCounts()
	type bc struct {
		Brand string
		Count int
	}
	var list []bc
	for b, c := range counts {
		list = append(list, bc{b, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Count != list[j].Count {
			return list[i].Count > list[j].Count
		}
		return list[i].Brand < list[j].Brand
	})
	if n > len(list) {
		n = len(list)
	}
	out := make([]struct {
		Brand string
		Count int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Brand string
			Count int
		}{list[i].Brand, list[i].Count}
	}
	return out
}

// SquattingDistribution classifies verified report domains with the given
// matcher, returning counts per squatting type plus the non-squatting
// count under squat.None (Figure 7).
func (f *Feed) SquattingDistribution(m *squat.Matcher) map[squat.Type]int {
	out := map[squat.Type]int{}
	for _, rep := range f.Verified() {
		if c, ok := m.Match(rep.Domain); ok {
			out[c.Type]++
		} else {
			out[squat.None]++
		}
	}
	return out
}
