package phishtank

import (
	"strings"
	"testing"

	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

func testWorld(t testing.TB) *webworld.World {
	t.Helper()
	return webworld.Build(webworld.Config{SquattingDomains: 3000, NonSquattingPhish: 800, Seed: 21})
}

func TestBuildDeterministic(t *testing.T) {
	w := testWorld(t)
	a := Build(w, 5)
	b := Build(w, 5)
	if len(a.Reports) != len(b.Reports) {
		t.Fatal("report counts differ")
	}
	for i := range a.Reports {
		if a.Reports[i] != b.Reports[i] {
			t.Fatalf("report %d differs", i)
		}
	}
}

func TestFeedCoversNonSquattingPhish(t *testing.T) {
	w := testWorld(t)
	f := Build(w, 5)
	domains := map[string]bool{}
	for _, rep := range f.Verified() {
		domains[rep.Domain] = true
	}
	for _, d := range w.NonSquattingPhish {
		if !domains[d] {
			t.Fatalf("non-squatting phishing host %s missing from feed", d)
		}
	}
}

func TestReportsSortedByDay(t *testing.T) {
	f := Build(testWorld(t), 5)
	for i := 1; i < len(f.Reports); i++ {
		if f.Reports[i].Day < f.Reports[i-1].Day {
			t.Fatal("reports not sorted by day")
		}
	}
}

func TestMostReportsNotSquatting(t *testing.T) {
	w := testWorld(t)
	f := Build(w, 5)
	m := squat.NewMatcher(w.Brands.SquatBrands())
	dist := f.SquattingDistribution(m)
	total := 0
	for _, c := range dist {
		total += c
	}
	nonSquat := float64(dist[squat.None]) / float64(total)
	if nonSquat < 0.75 {
		t.Fatalf("non-squatting fraction = %.2f, want ~0.91 (Fig. 7)", nonSquat)
	}
	// Among squatting reports, combo dominates.
	for _, typ := range []squat.Type{squat.Bits, squat.WrongTLD} {
		if dist[typ] > dist[squat.Combo] {
			t.Fatalf("type %v exceeds combo in feed", typ)
		}
	}
}

func TestTopBrandSkew(t *testing.T) {
	f := Build(testWorld(t), 5)
	top := f.TopBrands(8)
	if len(top) < 8 {
		t.Fatalf("only %d brands in feed", len(top))
	}
	topSum := 0
	for _, b := range top {
		topSum += b.Count
	}
	frac := float64(topSum) / float64(len(f.Verified()))
	if frac < 0.40 {
		t.Fatalf("top-8 coverage = %.2f, want majority (Fig. 5: 59%%)", frac)
	}
	// Counts must be sorted descending.
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("TopBrands not sorted")
		}
	}
}

func TestAlexaRankDistribution(t *testing.T) {
	f := Build(testWorld(t), 5)
	unranked, total := 0, 0
	for _, rep := range f.Verified() {
		total++
		if rep.AlexaRank == 0 {
			unranked++
		}
	}
	frac := float64(unranked) / float64(total)
	if frac < 0.35 || frac > 0.85 {
		t.Fatalf("beyond-1M fraction = %.2f, want ~0.70 (Fig. 6)", frac)
	}
}

func TestURLsWellFormed(t *testing.T) {
	f := Build(testWorld(t), 5)
	for _, rep := range f.Reports {
		if !strings.HasPrefix(rep.URL, "http://"+rep.Domain+"/") {
			t.Fatalf("malformed URL %q for domain %q", rep.URL, rep.Domain)
		}
		if rep.Day < 0 || rep.Day >= CollectionDays {
			t.Fatalf("day %d out of window", rep.Day)
		}
	}
}

func TestUnverifiedNoisePresent(t *testing.T) {
	f := Build(testWorld(t), 5)
	if len(f.Verified()) == len(f.Reports) {
		t.Fatal("no unverified noise reports")
	}
}

func TestStillPhishingAtCrawlFraction(t *testing.T) {
	// Table 5: only ~43% of reported pages still phish when crawled.
	w := testWorld(t)
	f := Build(w, 5)
	still, total := 0, 0
	for _, rep := range f.Verified() {
		site, ok := w.Site(rep.Domain)
		if !ok {
			continue
		}
		total++
		if site.IsPhishingAt(0) {
			still++
		}
	}
	frac := float64(still) / float64(total)
	if frac < 0.25 || frac > 0.65 {
		t.Fatalf("still-phishing fraction = %.2f, want ~0.43", frac)
	}
}

func BenchmarkBuildFeed(b *testing.B) {
	w := webworld.Build(webworld.Config{SquattingDomains: 1000, NonSquattingPhish: 300, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(w, uint64(i))
	}
}
