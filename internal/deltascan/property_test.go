package deltascan

import (
	"fmt"
	"reflect"
	"testing"

	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

// TestPropertyIncrementalEqualsFull is the quick-check-style contract test
// of the delta engine: for random sequences of record add/remove/modify
// operations over many epochs, the incremental scan of each epoch's store
// must equal a cold full scan of the same store, byte for byte, at worker
// counts 1, 4 and 32 — and one engine driven across all epochs must agree
// with a fresh engine at every step.
func TestPropertyIncrementalEqualsFull(t *testing.T) {
	seeds := []uint64{1, 2026, 0xdeadbeef, 424242}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := simrand.New(seed)
			m := testMatcher()
			engines := map[int]*Engine{1: NewEngine(), 4: NewEngine(), 32: NewEngine()}
			model := seedModel(rng.Split("seed-model"), 200+rng.Intn(400))

			epochs := 8
			for epoch := 0; epoch < epochs; epoch++ {
				mutate(model, rng.Split(fmt.Sprintf("mutate-%d", epoch)))
				store := buildStore(model, rng.Split(fmt.Sprintf("build-%d", epoch)))
				want := fullScan(store, m)
				for workers, e := range engines {
					got := e.Scan(store, m, workers)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("epoch %d workers %d: incremental %d candidates != full %d",
							epoch, workers, len(got), len(want))
					}
				}
			}
		})
	}
}

// mutate applies a random batch of add/remove/modify operations to the
// model, including occasional squat-shaped additions so the candidate set
// itself churns (not just the noise).
func mutate(model map[string][4]byte, rng *simrand.RNG) {
	domains := make([]string, 0, len(model))
	for d := range model {
		domains = append(domains, d)
	}
	sortStrings(domains)

	removes := rng.Intn(10)
	for i := 0; i < removes && len(domains) > 0; i++ {
		j := rng.Intn(len(domains))
		delete(model, domains[j])
		domains = append(domains[:j], domains[j+1:]...)
	}
	modifies := rng.Intn(15)
	for i := 0; i < modifies && len(domains) > 0; i++ {
		d := domains[rng.Intn(len(domains))]
		if _, ok := model[d]; !ok {
			continue
		}
		model[d] = [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	adds := rng.Intn(12)
	for i := 0; i < adds; i++ {
		var d string
		switch rng.Intn(4) {
		case 0: // squat-shaped: combo of a real brand
			d = "paypal-" + rng.Letters(4) + ".com"
		case 1: // wrongTLD
			d = "facebook." + simrand.Pick(rng, []string{"net", "org", "biz", "info"})
		default: // noise
			d = rng.Letters(9) + ".com"
		}
		model[d] = [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
}

// TestPropertyMatcherSwapMidSequence interleaves matcher-config changes
// with snapshot churn: the engine must always answer with the current
// matcher's verdicts, never a cached predecessor's.
func TestPropertyMatcherSwapMidSequence(t *testing.T) {
	rng := simrand.New(77)
	matchers := []*squat.Matcher{
		testMatcher(),
		squat.NewMatcher([]squat.Brand{squat.NewBrand("paypal.com")}),
		squat.NewMatcher([]squat.Brand{squat.NewBrand("citibank.com"), squat.NewBrand("paypal.com")}),
	}
	e := NewEngine()
	model := seedModel(rng.Split("m"), 300)
	for epoch := 0; epoch < 9; epoch++ {
		mutate(model, rng.Split(fmt.Sprintf("mu-%d", epoch)))
		store := buildStore(model, rng.Split(fmt.Sprintf("b-%d", epoch)))
		m := matchers[epoch%len(matchers)]
		got := e.Scan(store, m, 1+epoch%4)
		if want := fullScan(store, m); !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d (matcher %d): %d candidates != full %d", epoch, epoch%len(matchers), len(got), len(want))
		}
	}
}
