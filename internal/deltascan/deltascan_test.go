package deltascan

import (
	"bytes"
	"reflect"
	"testing"

	"squatphi/internal/dnsx"
	"squatphi/internal/obs"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

// fullScan is the serial reference the engine must reproduce byte for
// byte: match every record, sort by domain. It mirrors core.ScanStore
// (not imported to keep the package dependency-light).
func fullScan(store *dnsx.Store, m *squat.Matcher) []squat.Candidate {
	var out []squat.Candidate
	store.Range(func(r dnsx.Record) bool {
		if c, ok := m.Match(r.Domain); ok {
			out = append(out, c)
		}
		return true
	})
	sortCandidates(out)
	return out
}

func testMatcher() *squat.Matcher {
	return squat.NewMatcher([]squat.Brand{
		squat.NewBrand("paypal.com"),
		squat.NewBrand("facebook.com"),
		squat.NewBrand("google.com"),
	})
}

// buildStore populates a store from a model map in seeded-random insertion
// order, so equal models always produce equal stores (and checksums) even
// though insertion order varies run to run.
func buildStore(model map[string][4]byte, rng *simrand.RNG) *dnsx.Store {
	s := dnsx.NewStore()
	domains := make([]string, 0, len(model))
	for d := range model {
		domains = append(domains, d)
	}
	// Deterministic base order, then a seeded shuffle: checksum and scan
	// results must not care.
	sortStrings(domains)
	rng.Shuffle(len(domains), func(i, j int) { domains[i], domains[j] = domains[j], domains[i] })
	for _, d := range domains {
		s.Add(d, model[d])
	}
	return s
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// seedModel plants squats and noise.
func seedModel(rng *simrand.RNG, n int) map[string][4]byte {
	model := make(map[string][4]byte, n)
	squats := []string{
		"paypal-login.com", "paypa1.com", "xn--pypal-4ve.com", "paypal.net",
		"faceb00k.com", "facebook-security.com", "gooogle.com", "google.org",
	}
	ip := func() [4]byte {
		return [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	for _, d := range squats {
		model[d] = ip()
	}
	for len(model) < n {
		model[rng.Letters(10)+".com"] = ip()
	}
	return model
}

func TestScanMatchesFullScanColdAndWarm(t *testing.T) {
	rng := simrand.New(42)
	model := seedModel(rng, 500)
	m := testMatcher()
	e := NewEngine()

	for epoch := 0; epoch < 5; epoch++ {
		store := buildStore(model, rng.Split("build"))
		want := fullScan(store, m)
		got := e.Scan(store, m, 1+epoch%3*3) // workers 1, 4, 7, 1, 4
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d: incremental scan diverged: %d vs %d candidates", epoch, len(got), len(want))
		}
		// Mutate ~2% of the model for the next epoch.
		for i := 0; i < 5; i++ {
			model[rng.Letters(10)+".com"] = [4]byte{1, 2, 3, byte(i)}
		}
		model["paypal-epoch.com"] = [4]byte{9, 9, 9, byte(epoch)}
	}
}

func TestUnchangedEpochSkipsEveryShard(t *testing.T) {
	rng := simrand.New(7)
	model := seedModel(rng, 400)
	m := testMatcher()
	e := NewEngine()

	s1 := buildStore(model, rng.Split("a"))
	first := e.Scan(s1, m, 4)
	if st := e.LastStats(); !st.FullScan || st.ShardsSkipped != 0 {
		t.Fatalf("first scan stats = %+v, want full scan with no skips", st)
	}

	// Same content, different insertion order: every shard must be skipped
	// and the result slice identical.
	s2 := buildStore(model, rng.Split("b"))
	second := e.Scan(s2, m, 4)
	st := e.LastStats()
	if st.ShardsSkipped != s2.NumShards() || st.ShardsRescanned != 0 {
		t.Fatalf("identical epoch stats = %+v, want all %d shards skipped", st, s2.NumShards())
	}
	if st.RecordsWalked != 0 || st.CacheMisses != 0 {
		t.Fatalf("identical epoch walked %d records, missed %d", st.RecordsWalked, st.CacheMisses)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("skipped-epoch scan diverged from first epoch")
	}
}

func TestSingleRecordChangeRescansOneShard(t *testing.T) {
	rng := simrand.New(9)
	model := seedModel(rng, 600)
	m := testMatcher()
	e := NewEngine()

	s1 := buildStore(model, rng.Split("a"))
	e.Scan(s1, m, 2)

	model["paypa1-fresh.com"] = [4]byte{8, 8, 8, 8}
	s2 := buildStore(model, rng.Split("b"))
	got := e.Scan(s2, m, 2)
	st := e.LastStats()
	if st.ShardsRescanned != 1 || st.ShardsSkipped != s2.NumShards()-1 {
		t.Fatalf("one-record change stats = %+v, want exactly one shard rescanned", st)
	}
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (only the new domain)", st.CacheMisses)
	}
	if !reflect.DeepEqual(got, fullScan(s2, m)) {
		t.Fatal("one-record-change scan diverged from full scan")
	}
}

func TestIPOnlyChurnHitsCacheEverywhere(t *testing.T) {
	rng := simrand.New(11)
	model := seedModel(rng, 300)
	m := testMatcher()
	e := NewEngine()
	e.Scan(buildStore(model, rng.Split("a")), m, 1)

	// Re-point every record: matching depends only on the name, so every
	// walked record must be a cache hit.
	for d := range model {
		ip := model[d]
		ip[3] ^= 0xff
		model[d] = ip
	}
	s2 := buildStore(model, rng.Split("b"))
	got := e.Scan(s2, m, 1)
	st := e.LastStats()
	if st.CacheMisses != 0 || st.CacheHits != s2.Len() {
		t.Fatalf("IP churn stats = %+v, want all %d walks to hit", st, s2.Len())
	}
	if !reflect.DeepEqual(got, fullScan(s2, m)) {
		t.Fatal("IP-churn scan diverged from full scan")
	}
}

func TestMatcherChangeInvalidatesCache(t *testing.T) {
	rng := simrand.New(13)
	model := seedModel(rng, 200)
	e := NewEngine()
	reg := obs.NewRegistry()
	e.InstrumentMetrics(reg)

	m1 := testMatcher()
	s := buildStore(model, rng.Split("a"))
	e.Scan(s, m1, 2)

	// A different brand universe must force a full re-scan, not serve the
	// old matcher's verdicts.
	m2 := squat.NewMatcher([]squat.Brand{squat.NewBrand("citibank.com")})
	if m1.Fingerprint() == m2.Fingerprint() {
		t.Fatal("distinct brand sets share a fingerprint")
	}
	got := e.Scan(s, m2, 2)
	st := e.LastStats()
	if !st.FullScan || !st.Invalidated {
		t.Fatalf("post-config-change stats = %+v, want an invalidated full scan", st)
	}
	if !reflect.DeepEqual(got, fullScan(s, m2)) {
		t.Fatal("post-invalidation scan diverged from full scan with the new matcher")
	}
	snap := reg.Snapshot()
	if snap.Counters["deltascan.invalidations"] != 1 {
		t.Errorf("deltascan.invalidations = %d, want 1", snap.Counters["deltascan.invalidations"])
	}
	if snap.Counters["deltascan.full_scans"] != 2 {
		t.Errorf("deltascan.full_scans = %d, want 2", snap.Counters["deltascan.full_scans"])
	}
}

func TestShardCountChangeDegradesToFullScan(t *testing.T) {
	rng := simrand.New(17)
	model := seedModel(rng, 200)
	m := testMatcher()
	e := NewEngine()
	e.Scan(buildStore(model, rng.Split("a")), m, 2)

	wide := dnsx.NewShardedStore(8)
	for d, ip := range model {
		wide.Add(d, ip)
	}
	got := e.Scan(wide, m, 2)
	if st := e.LastStats(); !st.FullScan || !st.Invalidated {
		t.Fatalf("shard-count change stats = %+v, want an invalidated full scan", st)
	}
	if !reflect.DeepEqual(got, fullScan(wide, m)) {
		t.Fatal("scan over re-sharded store diverged from full scan")
	}
}

func TestMetricsCounters(t *testing.T) {
	rng := simrand.New(19)
	model := seedModel(rng, 300)
	m := testMatcher()
	e := NewEngine()
	reg := obs.NewRegistry()
	e.InstrumentMetrics(reg)

	s := buildStore(model, rng.Split("a"))
	e.Scan(s, m, 2)
	e.Scan(buildStore(model, rng.Split("b")), m, 2)

	snap := reg.Snapshot()
	if snap.Counters["deltascan.scans"] != 2 {
		t.Errorf("scans = %d, want 2", snap.Counters["deltascan.scans"])
	}
	if got := snap.Counters["deltascan.shards_skipped"]; got != int64(s.NumShards()) {
		t.Errorf("shards_skipped = %d, want %d", got, s.NumShards())
	}
	if got := snap.Gauges["deltascan.shard_skip_ratio"]; got != 1 {
		t.Errorf("shard_skip_ratio = %v, want 1", got)
	}
	if got := snap.Counters["deltascan.records_walked"]; got != int64(s.Len()) {
		t.Errorf("records_walked = %d, want %d (first scan only)", got, s.Len())
	}
	if snap.Histograms["deltascan.scan_ms"].Count != 2 {
		t.Errorf("scan_ms observations = %d, want 2", snap.Histograms["deltascan.scan_ms"].Count)
	}
}

func TestDiffMatchesGlobalDiff(t *testing.T) {
	rng := simrand.New(23)
	model := seedModel(rng, 400)
	oldS := buildStore(model, rng.Split("a"))

	model["brand-new.com"] = [4]byte{1, 1, 1, 1}
	delete(model, pickDomain(model, "brand-new.com"))
	for d := range model {
		ip := model[d]
		ip[0] ^= 1
		model[d] = ip
		break
	}
	newS := buildStore(model, rng.Split("b"))

	want := dnsx.Diff(oldS, newS)
	got, st := DiffWithStats(oldS, newS)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shard diff = %+v, global diff = %+v", got, want)
	}
	if st.ShardsSkipped+st.ShardsCompared != newS.NumShards() {
		t.Fatalf("diff stats don't cover all shards: %+v", st)
	}
	if st.ShardsSkipped == 0 {
		t.Fatalf("diff skipped no shards on a 3-record delta: %+v", st)
	}

	// Mismatched shard counts fall back to the global diff.
	wide := dnsx.NewShardedStore(8)
	for d, ip := range model {
		wide.Add(d, ip)
	}
	if got := Diff(oldS, wide); !reflect.DeepEqual(got, dnsx.Diff(oldS, wide)) {
		t.Fatal("fallback diff diverged from dnsx.Diff")
	}
}

// pickDomain returns a deterministic non-excluded domain from the model.
func pickDomain(model map[string][4]byte, exclude string) string {
	best := ""
	for d := range model {
		if d != exclude && (best == "" || d < best) {
			best = d
		}
	}
	return best
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := simrand.New(29)
	model := seedModel(rng, 300)
	m := testMatcher()
	e := NewEngine()
	e.Scan(buildStore(model, rng.Split("a")), m, 2)

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch() != e.Epoch() {
		t.Fatalf("loaded epoch = %d, want %d", loaded.Epoch(), e.Epoch())
	}

	// The loaded engine must behave exactly like the live one: an
	// identical epoch skips everything, a config change degrades.
	s2 := buildStore(model, rng.Split("b"))
	got := loaded.Scan(s2, m, 2)
	st := loaded.LastStats()
	if st.ShardsSkipped != s2.NumShards() || st.CacheMisses != 0 {
		t.Fatalf("loaded-engine warm scan stats = %+v, want all shards skipped", st)
	}
	if !reflect.DeepEqual(got, fullScan(s2, m)) {
		t.Fatal("loaded-engine scan diverged from full scan")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("Load accepted raw garbage")
	}
}

func TestCachePruneDropsStaleEntries(t *testing.T) {
	rng := simrand.New(31)
	m := testMatcher()
	e := NewEngine()

	// Epoch 1: a large population confined to one shard's key space is
	// impractical to construct; instead shrink the whole model so every
	// shard's cache is dominated by stale entries, and verify pruning.
	model := seedModel(rng, 9000)
	e.Scan(buildStore(model, rng.Split("a")), m, 2)

	small := map[string][4]byte{}
	n := 0
	for d, ip := range model {
		small[d] = ip
		if n++; n >= 100 {
			break
		}
	}
	// Nudge one IP so at least the affected shards rescan (others skip and
	// keep their caches — pruning only runs on rescanned shards).
	for d := range small {
		ip := small[d]
		ip[2] ^= 0x55
		small[d] = ip
	}
	e.Scan(buildStore(small, rng.Split("b")), m, 2)

	entries := 0
	for _, sh := range e.shards {
		entries += len(sh.cache)
	}
	if entries >= 9000 {
		t.Fatalf("cache kept %d entries after the population shrank to 100", entries)
	}
}
