package deltascan

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"squatphi/internal/fsx"
	"squatphi/internal/squat"
)

// persistVersion versions the on-disk spill layout.
const persistVersion = 1

// header is the first JSONL line of a spill: enough to decide on load
// whether the state is usable at all.
type header struct {
	Kind        string `json:"kind"` // "deltascan-cache"
	Version     int    `json:"version"`
	Fingerprint uint64 `json:"fingerprint"`
	Epoch       int    `json:"epoch"`
	Shards      int    `json:"shards"`
}

// shardLine carries one shard's epoch state: its checksum and candidate
// list. Cache verdicts follow as separate entry lines so a huge cache
// streams instead of building one giant JSON value.
type shardLine struct {
	Kind  string      `json:"kind"` // "shard"
	Shard int         `json:"shard"`
	Csum  uint64      `json:"csum"`
	Valid bool        `json:"valid"`
	Seen  int         `json:"seen"`
	Cands []candidate `json:"cands,omitempty"`
}

// entryLine is one cached verdict. Epoch is the provenance stamp of the
// verdict's computing scan; omitempty keeps it backward compatible —
// spills written before the field existed load with epoch 0, which
// Provenance documents as "predates epoch stamping".
type entryLine struct {
	Kind   string `json:"kind"` // "entry"
	Shard  int    `json:"shard"`
	Domain string `json:"domain"`
	Match  bool   `json:"match"`
	Type   int    `json:"type,omitempty"`
	Brand  string `json:"brand,omitempty"`
	TLD    string `json:"tld,omitempty"`
	Epoch  int    `json:"epoch,omitempty"`
}

// candidate is the serialised form of squat.Candidate.
type candidate struct {
	Domain string `json:"domain"`
	Type   int    `json:"type"`
	Brand  string `json:"brand"`
	TLD    string `json:"tld"`
}

func toWire(c squat.Candidate) candidate {
	return candidate{Domain: c.Domain, Type: int(c.Type), Brand: c.Brand.Name, TLD: c.Brand.TLD}
}

func fromWire(c candidate) squat.Candidate {
	return squat.Candidate{Domain: c.Domain, Type: squat.Type(c.Type), Brand: squat.Brand{Name: c.Brand, TLD: c.TLD}}
}

// Save spills the engine's full epoch state — fingerprint, per-shard
// checksums and candidate lists, and the verdict cache — as a gzipped
// JSON-lines stream (the crawlstore archive idiom). A later process can
// Load it and continue incrementally from the same epoch, provided the
// matcher fingerprint still matches; otherwise the loaded engine degrades
// to a full scan on first use, exactly like an in-memory config change.
//
// The byte stream is canonical: shards in index order, candidate lists in
// their (deterministic) scan order, and cache entries sorted by domain.
// Two Saves of identical engine state produce identical bytes, so spill
// artifacts can be content-compared, deduplicated, and checked into golden
// tests like every other deterministic output of the scan spine.
func (e *Engine) Save(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{
		Kind: "deltascan-cache", Version: persistVersion,
		Fingerprint: e.fp, Epoch: e.epoch, Shards: len(e.shards),
	}); err != nil {
		return err
	}
	for i, sh := range e.shards {
		sl := shardLine{Kind: "shard", Shard: i, Csum: sh.csum, Valid: sh.valid, Seen: sh.seen}
		for _, c := range sh.cands {
			sl.Cands = append(sl.Cands, toWire(c))
		}
		if err := enc.Encode(sl); err != nil {
			return err
		}
		// Map iteration order is randomised per range; sort the cache
		// domains so the spill is byte-deterministic.
		doms := make([]string, 0, len(sh.cache))
		for dom := range sh.cache {
			doms = append(doms, dom)
		}
		sort.Strings(doms)
		for _, dom := range doms {
			v := sh.cache[dom]
			el := entryLine{Kind: "entry", Shard: i, Domain: dom, Match: v.ok, Epoch: v.epoch}
			if v.ok {
				el.Type, el.Brand, el.TLD = int(v.cand.Type), v.cand.Brand.Name, v.cand.Brand.TLD
			}
			if err := enc.Encode(el); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return gz.Close()
}

// SaveFile persists the spill to path atomically (temp file in the same
// directory + fsync + rename, see internal/fsx): a crash mid-save leaves
// the previous spill intact instead of a truncated gzip that would poison
// the next Load.
func (e *Engine) SaveFile(path string) error {
	return fsx.WriteFile(path, e.Save)
}

// Load reconstructs an engine from a Save spill. The engine resumes at
// the saved epoch; its next Scan skips shards and hits the cache exactly
// as the saving process would have.
func Load(r io.Reader) (*Engine, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("deltascan: load: %w", err)
	}
	defer gz.Close()
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 1<<20), 64<<20)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("deltascan: load: %w", err)
		}
		return nil, fmt.Errorf("deltascan: load: empty spill")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("deltascan: load header: %w", err)
	}
	if h.Kind != "deltascan-cache" || h.Version != persistVersion {
		return nil, fmt.Errorf("deltascan: load: unsupported spill (kind %q version %d)", h.Kind, h.Version)
	}
	if h.Shards < 0 || h.Shards > 1<<20 {
		return nil, fmt.Errorf("deltascan: load: implausible shard count %d", h.Shards)
	}
	e := &Engine{fp: h.Fingerprint, haveFP: true, epoch: h.Epoch, shards: make([]*shardState, h.Shards)}
	for i := range e.shards {
		e.shards[i] = &shardState{cache: make(map[string]verdict)}
	}
	line := 1
	for sc.Scan() {
		line++
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
			return nil, fmt.Errorf("deltascan: load line %d: %w", line, err)
		}
		switch kind.Kind {
		case "shard":
			var sl shardLine
			if err := json.Unmarshal(sc.Bytes(), &sl); err != nil {
				return nil, fmt.Errorf("deltascan: load line %d: %w", line, err)
			}
			if sl.Shard < 0 || sl.Shard >= len(e.shards) {
				return nil, fmt.Errorf("deltascan: load line %d: shard %d out of range", line, sl.Shard)
			}
			sh := e.shards[sl.Shard]
			sh.csum, sh.valid, sh.seen = sl.Csum, sl.Valid, sl.Seen
			sh.cands = sh.cands[:0]
			for _, c := range sl.Cands {
				sh.cands = append(sh.cands, fromWire(c))
			}
		case "entry":
			var el entryLine
			if err := json.Unmarshal(sc.Bytes(), &el); err != nil {
				return nil, fmt.Errorf("deltascan: load line %d: %w", line, err)
			}
			if el.Shard < 0 || el.Shard >= len(e.shards) {
				return nil, fmt.Errorf("deltascan: load line %d: shard %d out of range", line, el.Shard)
			}
			v := verdict{ok: el.Match, epoch: el.Epoch}
			if el.Match {
				v.cand = fromWire(candidate{Domain: el.Domain, Type: el.Type, Brand: el.Brand, TLD: el.TLD})
			}
			e.shards[el.Shard].cache[el.Domain] = v
		default:
			return nil, fmt.Errorf("deltascan: load line %d: unknown kind %q", line, kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("deltascan: load: %w", err)
	}
	return e, nil
}

// LoadFile reads a spill written by SaveFile.
func LoadFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Recover is the restart entry point of a long-running process: it loads
// the spill at path if it is present and intact, and otherwise returns a
// fresh engine whose first Scan is a transparent full scan. A missing,
// truncated, or corrupt spill therefore costs one full scan — never a
// startup failure — mirroring how a fingerprint mismatch degrades. The
// second result reports whether saved state was actually recovered; err
// carries the load failure (nil when the file simply does not exist) so
// callers can log why state was discarded.
func Recover(path string) (e *Engine, recovered bool, err error) {
	e, err = LoadFile(path)
	if err == nil {
		return e, true, nil
	}
	if os.IsNotExist(err) {
		err = nil
	}
	return NewEngine(), false, err
}
