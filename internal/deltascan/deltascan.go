// Package deltascan is the incremental scan engine behind SquatPhi's
// longitudinal measurement (paper §3, §7): instead of re-matching every
// record of a fresh DNS snapshot from scratch, it diffs the snapshot
// against the previous epoch per store shard and re-matches only what
// changed.
//
// Two mechanisms make re-scans cheap:
//
//   - Shard skipping. dnsx.Store maintains a rolling content checksum per
//     FNV shard (a commutative sum of per-record hashes, independent of
//     insertion order). A shard whose checksum equals the previous epoch's
//     is skipped wholesale — its candidate list from last epoch is reused
//     verbatim.
//   - A content-addressed match cache. Within rescanned shards, per-domain
//     match verdicts are cached across epochs, so a shard that changed by
//     one record re-matches one record; every other record is a map hit.
//     Matching depends only on the domain name, so IP-only churn always
//     hits the cache.
//
// The cache is versioned by the matcher's Fingerprint (brand-universe hash
// plus rule/index fingerprint, squat.Matcher.Fingerprint): scanning with a
// matcher whose fingerprint differs from the cached one transparently
// degrades to a full scan and rebuilds the cache, so a config change can
// never serve stale verdicts.
//
// The engine's output contract is strict: Scan returns a candidate slice
// byte-identical to core.ScanStore's full scan of the same store with the
// same matcher, at every worker count. The property and golden tests pin
// this equivalence.
package deltascan

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"squatphi/internal/dnsx"
	"squatphi/internal/obs"
	"squatphi/internal/squat"
)

// verdict is one cached match result for a domain. epoch records when
// the matcher actually ran (the engine epoch of the computing Scan) —
// pure provenance, never consulted for cache validity, which rests on
// the fingerprint and checksums alone.
type verdict struct {
	cand  squat.Candidate
	ok    bool
	epoch int
}

// shardState is the engine's memory of one store shard: the checksum the
// shard had when last scanned, the candidates it produced, and the
// per-domain verdict cache. Shard states are only ever touched by the one
// worker that owns the shard during a scan, so they need no locks.
type shardState struct {
	csum  uint64
	valid bool
	cands []squat.Candidate
	cache map[string]verdict
	// seen is the record count of the shard at its last rescan; it drives
	// cache pruning (stale entries for long-gone domains).
	seen int
}

// Stats describes one Scan call.
type Stats struct {
	// Epoch counts Scan calls on this engine (1-based).
	Epoch int
	// FullScan reports that no prior epoch state was usable: a first scan,
	// a fingerprint invalidation, or a shard-count change.
	FullScan bool
	// Invalidated reports that prior state existed but was discarded
	// because the matcher fingerprint or the store's shard count changed.
	Invalidated bool
	// ShardsSkipped / ShardsRescanned partition the store's shards.
	ShardsSkipped, ShardsRescanned int
	// RecordsWalked is the number of records visited in rescanned shards;
	// CacheHits of them were answered from the verdict cache and
	// CacheMisses went through the matcher.
	RecordsWalked, CacheHits, CacheMisses int
	// CandidatesReused counts candidates taken verbatim from skipped
	// shards' previous-epoch lists.
	CandidatesReused int
	// Duration is the wall time of the Scan call.
	Duration time.Duration
}

// SkipRatio is the fraction of shards skipped wholesale.
func (s Stats) SkipRatio() float64 {
	if n := s.ShardsSkipped + s.ShardsRescanned; n > 0 {
		return float64(s.ShardsSkipped) / float64(n)
	}
	return 0
}

// metrics holds the engine's registry handles (see InstrumentMetrics).
type metrics struct {
	scans, fullScans, invalidations     *obs.Counter
	shardsSkipped, shardsRescanned      *obs.Counter
	cacheHits, cacheMisses, cachePrunes *obs.Counter
	recordsWalked                       *obs.Counter
	skipRatio, cacheEntries             *obs.Gauge
	scanMS                              *obs.Histogram
}

// Engine is a persistent incremental scanner. It is bound to one logical
// snapshot lineage (successive epochs of "the DNS") and one matcher
// configuration at a time; feed it successive stores via Scan. An Engine
// serialises its own Scan calls; Scan results are plain value slices and
// safe to retain.
type Engine struct {
	mu     sync.Mutex
	fp     uint64
	haveFP bool
	shards []*shardState
	epoch  int
	last   Stats
	met    *metrics
}

// NewEngine returns an empty engine; its first Scan is a full scan.
func NewEngine() *Engine { return &Engine{} }

// InstrumentMetrics points the engine's counters at reg: deltascan.scans,
// .full_scans, .invalidations, .shards_skipped, .shards_rescanned,
// .cache_hits, .cache_misses, .cache_prunes, .records_walked, the gauges
// .shard_skip_ratio and .cache_entries, and the .scan_ms histogram.
func (e *Engine) InstrumentMetrics(reg *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.met = &metrics{
		scans:           reg.Counter("deltascan.scans"),
		fullScans:       reg.Counter("deltascan.full_scans"),
		invalidations:   reg.Counter("deltascan.invalidations"),
		shardsSkipped:   reg.Counter("deltascan.shards_skipped"),
		shardsRescanned: reg.Counter("deltascan.shards_rescanned"),
		cacheHits:       reg.Counter("deltascan.cache_hits"),
		cacheMisses:     reg.Counter("deltascan.cache_misses"),
		cachePrunes:     reg.Counter("deltascan.cache_prunes"),
		recordsWalked:   reg.Counter("deltascan.records_walked"),
		skipRatio:       reg.Gauge("deltascan.shard_skip_ratio"),
		cacheEntries:    reg.Gauge("deltascan.cache_entries"),
		scanMS:          reg.Histogram("deltascan.scan_ms", obs.MillisBuckets),
	}
}

// LastStats returns the statistics of the most recent Scan.
func (e *Engine) LastStats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// Epoch returns the number of Scan calls absorbed so far.
func (e *Engine) Epoch() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// Provenance explains how a domain's verdict relates to the engine's
// scan history — the "cache hit vs fresh" half of a verdict's evidence
// trail.
type Provenance struct {
	// Epoch is the engine's current epoch (Scan calls absorbed).
	Epoch int
	// ComputedEpoch is the epoch whose Scan actually ran the matcher for
	// this domain. 0 means the verdict predates epoch stamping (state
	// loaded from a spill written before the epoch field existed).
	ComputedEpoch int
	// Cached reports that the latest scan answered this domain without
	// re-running the matcher — a verdict-cache hit inside a rescanned
	// shard, or wholesale reuse of a skipped shard's candidate list.
	Cached bool
	// Matched is the cached verdict itself.
	Matched bool
}

// Provenance looks a domain up across all shard verdict caches. The
// second result is false when the engine has never matched the domain
// (not yet scanned, or the record left the snapshot and was pruned).
func (e *Engine) Provenance(domain string) (Provenance, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, sh := range e.shards {
		if v, ok := sh.cache[domain]; ok {
			return Provenance{
				Epoch:         e.epoch,
				ComputedEpoch: v.epoch,
				Cached:        v.epoch < e.epoch,
				Matched:       v.ok,
			}, true
		}
	}
	return Provenance{Epoch: e.epoch}, false
}

// Reset discards all epoch state; the next Scan is a full scan.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.shards, e.haveFP, e.fp = nil, false, 0
}

// Scan matches every record of store against m, reusing the previous
// epoch's work wherever the store is provably unchanged. The returned
// slice is sorted by domain and byte-identical to a cold full scan
// (core.ScanStore) of the same store with the same matcher, at any workers
// value (<= 0 means GOMAXPROCS, 1 forces the serial path).
func (e *Engine) Scan(store *dnsx.Store, m *squat.Matcher, workers int) []squat.Candidate {
	e.mu.Lock()
	defer e.mu.Unlock()
	sw := obs.StartStopwatch()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	st := Stats{Epoch: e.epoch + 1}
	fp := m.Fingerprint()
	n := store.NumShards()
	if e.shards == nil || !e.haveFP || e.fp != fp || len(e.shards) != n {
		st.FullScan = true
		st.Invalidated = e.shards != nil
		e.shards = make([]*shardState, n)
		for i := range e.shards {
			e.shards[i] = &shardState{cache: make(map[string]verdict)}
		}
		e.fp, e.haveFP = fp, true
	}

	// Partition shards into skips and rescans by comparing the store's
	// rolling checksums against the previous epoch's.
	rescan := make([]int, 0, n)
	for i := 0; i < n; i++ {
		cs := store.ShardChecksum(i)
		if e.shards[i].valid && e.shards[i].csum == cs {
			st.ShardsSkipped++
			st.CandidatesReused += len(e.shards[i].cands)
			continue
		}
		e.shards[i].csum = cs
		rescan = append(rescan, i)
	}
	st.ShardsRescanned = len(rescan)

	// Rescan changed shards on a worker pool. Each shard is owned by
	// exactly one worker, so shard states are mutated without locks; the
	// per-worker counters are merged below.
	if len(rescan) > 0 {
		if workers > len(rescan) {
			workers = len(rescan)
		}
		counters := make([][3]int, workers) // walked, hits, misses
		prunes := make([]int, workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					ri := int(next.Add(1)) - 1
					if ri >= len(rescan) {
						return
					}
					walked, hits, pruned := e.shards[rescan[ri]].rescan(store, rescan[ri], m, st.Epoch)
					counters[w][0] += walked
					counters[w][1] += hits
					counters[w][2] += walked - hits
					if pruned {
						prunes[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		for w := range counters {
			st.RecordsWalked += counters[w][0]
			st.CacheHits += counters[w][1]
			st.CacheMisses += counters[w][2]
		}
		for _, p := range prunes {
			if e.met != nil {
				e.met.cachePrunes.Add(int64(p))
			}
		}
	}

	// Merge: concatenate per-shard candidate lists and sort by domain.
	// Candidate domains are unique across shards, so the order is total
	// and identical to the serial full scan's — including nil (not empty)
	// output when nothing matched, like core.ScanStore.
	var out []squat.Candidate
	for _, sh := range e.shards {
		out = append(out, sh.cands...)
	}
	sortCandidates(out)

	st.Duration = sw.Elapsed()
	e.epoch++
	e.last = st
	e.report(st)
	return out
}

// report publishes one scan's statistics to the metrics registry.
func (e *Engine) report(st Stats) {
	if e.met == nil {
		return
	}
	e.met.scans.Inc()
	if st.FullScan {
		e.met.fullScans.Inc()
	}
	if st.Invalidated {
		e.met.invalidations.Inc()
	}
	e.met.shardsSkipped.Add(int64(st.ShardsSkipped))
	e.met.shardsRescanned.Add(int64(st.ShardsRescanned))
	e.met.cacheHits.Add(int64(st.CacheHits))
	e.met.cacheMisses.Add(int64(st.CacheMisses))
	e.met.recordsWalked.Add(int64(st.RecordsWalked))
	e.met.skipRatio.Set(st.SkipRatio())
	e.met.scanMS.Observe(float64(st.Duration) / float64(time.Millisecond))
	entries := 0
	for _, sh := range e.shards {
		entries += len(sh.cache)
	}
	e.met.cacheEntries.Set(float64(entries))
}

// rescan rebuilds one shard's candidate list from the store, answering
// from the verdict cache where possible. It returns the records walked,
// the cache hits among them, and whether the cache was pruned. epoch
// stamps fresh verdicts for provenance.
func (sh *shardState) rescan(store *dnsx.Store, shard int, m *squat.Matcher, epoch int) (walked, hits int, pruned bool) {
	cands := make([]squat.Candidate, 0, len(sh.cands))
	var sc squat.Scratch
	store.RangeShard(shard, func(r dnsx.Record) bool {
		walked++
		v, ok := sh.cache[r.Domain]
		if ok {
			hits++
		} else {
			v.cand, v.ok = m.MatchString(r.Domain, &sc)
			v.epoch = epoch
			sh.cache[r.Domain] = v
		}
		if v.ok {
			cands = append(cands, v.cand)
		}
		return true
	})
	sh.cands, sh.seen, sh.valid = cands, walked, true

	// The cache accumulates verdicts for domains that have since left the
	// snapshot. Once stale entries dominate (and the shard is non-trivial),
	// rebuild the cache from the live record set.
	if len(sh.cache) > 2*walked && len(sh.cache) > 256 {
		fresh := make(map[string]verdict, walked)
		store.RangeShard(shard, func(r dnsx.Record) bool {
			if v, ok := sh.cache[r.Domain]; ok {
				fresh[r.Domain] = v
			}
			return true
		})
		sh.cache = fresh
		pruned = true
	}
	return walked, hits, pruned
}

// sortCandidates sorts by domain (unique within a store) — the output
// order contract shared with core.ScanStore.
func sortCandidates(cs []squat.Candidate) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Domain < cs[j].Domain })
}
