package deltascan

import (
	"bytes"
	"testing"

	"squatphi/internal/simrand"
)

// TestProvenanceEpochs pins the cache-provenance semantics: a verdict is
// "fresh" in the epoch whose scan ran the matcher for it and "cached"
// afterwards, across both reuse mechanisms (verdict-cache hit and
// wholesale shard skip).
func TestProvenanceEpochs(t *testing.T) {
	rng := simrand.New(11)
	model := seedModel(rng, 400)
	m := testMatcher()
	e := NewEngine()

	if _, ok := e.Provenance("paypa1.com"); ok {
		t.Fatal("provenance before any scan")
	}

	e.Scan(buildStore(model, rng.Split("b1")), m, 4)
	pr, ok := e.Provenance("paypa1.com")
	if !ok {
		t.Fatal("no provenance for scanned squat domain")
	}
	if pr.Epoch != 1 || pr.ComputedEpoch != 1 || pr.Cached || !pr.Matched {
		t.Fatalf("epoch 1 provenance = %+v, want fresh matched at epoch 1", pr)
	}
	if pr, ok = e.Provenance("this-was-never-scanned.com"); ok {
		t.Fatalf("provenance for unseen domain: %+v", pr)
	}

	// Epoch 2, unchanged store: every shard skips, the verdict must now
	// read as cached with its compute epoch intact.
	e.Scan(buildStore(model, rng.Split("b2")), m, 4)
	if st := e.LastStats(); st.ShardsRescanned != 0 {
		t.Fatalf("unchanged store rescanned %d shards", st.ShardsRescanned)
	}
	pr, _ = e.Provenance("paypa1.com")
	if pr.Epoch != 2 || pr.ComputedEpoch != 1 || !pr.Cached || !pr.Matched {
		t.Fatalf("epoch 2 provenance = %+v, want cached from epoch 1", pr)
	}

	// Epoch 3, add one record: its shard rescans, existing verdicts hit
	// the cache (ComputedEpoch stays 1), the new domain is fresh at 3.
	model["paypal-fresh3.com"] = [4]byte{1, 2, 3, 4}
	e.Scan(buildStore(model, rng.Split("b3")), m, 4)
	pr, _ = e.Provenance("paypa1.com")
	if pr.Epoch != 3 || pr.ComputedEpoch != 1 || !pr.Cached {
		t.Fatalf("epoch 3 old-domain provenance = %+v", pr)
	}
	pr, ok = e.Provenance("paypal-fresh3.com")
	if !ok || pr.ComputedEpoch != 3 || pr.Cached || !pr.Matched {
		t.Fatalf("epoch 3 new-domain provenance = %+v (ok=%t)", pr, ok)
	}

	// Non-matching domains carry provenance too — "the matcher saw it and
	// said no" is evidence.
	var noise string
	for d := range model {
		if _, matched := m.Match(d); !matched {
			noise = d
			break
		}
	}
	if pr, ok = e.Provenance(noise); !ok || pr.Matched {
		t.Fatalf("noise-domain provenance = %+v (ok=%t)", pr, ok)
	}
}

// TestProvenanceSurvivesSaveLoad checks that epoch stamps round-trip
// through the spill format.
func TestProvenanceSurvivesSaveLoad(t *testing.T) {
	rng := simrand.New(13)
	model := seedModel(rng, 300)
	m := testMatcher()
	e := NewEngine()
	e.Scan(buildStore(model, rng.Split("b1")), m, 2)
	model["paypal-late.com"] = [4]byte{5, 5, 5, 5}
	e.Scan(buildStore(model, rng.Split("b2")), m, 2)

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, dom := range []string{"paypa1.com", "paypal-late.com"} {
		want, ok1 := e.Provenance(dom)
		got, ok2 := loaded.Provenance(dom)
		if !ok1 || !ok2 || want != got {
			t.Errorf("%s: provenance %+v (ok=%t) != loaded %+v (ok=%t)", dom, want, ok1, got, ok2)
		}
	}
}
