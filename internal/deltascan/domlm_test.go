package deltascan

import (
	"reflect"
	"testing"

	"squatphi/internal/domlm"
	"squatphi/internal/simrand"
)

// TestLMChangeInvalidatesCache pins the fingerprint contract of the
// brand-language model: attaching a model (or changing its training set
// or threshold) alters the matcher fingerprint, so a warm delta-scan
// cache built without it degrades to a full re-scan instead of serving
// five-type verdicts for domains the model would now promote.
func TestLMChangeInvalidatesCache(t *testing.T) {
	rng := simrand.New(29)
	model := seedModel(rng, 200)
	s := buildStore(model, rng.Split("a"))
	e := NewEngine()

	plain := testMatcher()
	e.Scan(s, plain, 2)
	if st := e.LastStats(); !st.FullScan {
		t.Fatalf("cold scan stats = %+v, want a full scan", st)
	}

	// Same brand universe, same rules — only the language model differs.
	lm := testMatcher()
	lm.AttachLM(domlm.Train([]string{"paypal", "facebook", "google"}, domlm.DefaultConfig()), 0)
	if plain.Fingerprint() == lm.Fingerprint() {
		t.Fatal("attaching the language model left the matcher fingerprint unchanged")
	}
	got := e.Scan(s, lm, 2)
	if st := e.LastStats(); !st.FullScan || !st.Invalidated {
		t.Fatalf("post-attach stats = %+v, want an invalidated full scan", st)
	}
	if !reflect.DeepEqual(got, fullScan(s, lm)) {
		t.Fatal("post-invalidation scan diverged from full scan with the LM matcher")
	}

	// A threshold change alone re-invalidates: the cache must never mix
	// verdicts across promotion thresholds.
	strict := testMatcher()
	strict.AttachLM(domlm.Train([]string{"paypal", "facebook", "google"}, domlm.DefaultConfig()), 0.95)
	if strict.Fingerprint() == lm.Fingerprint() {
		t.Fatal("threshold change left the matcher fingerprint unchanged")
	}
	e.Scan(s, strict, 2)
	if st := e.LastStats(); !st.FullScan || !st.Invalidated {
		t.Fatalf("post-threshold-change stats = %+v, want an invalidated full scan", st)
	}

	// Re-scanning with the identical model is a cache hit again: the
	// fingerprint fold is a pure function of model bytes and threshold.
	same := testMatcher()
	same.AttachLM(domlm.Train([]string{"paypal", "facebook", "google"}, domlm.DefaultConfig()), 0.95)
	if same.Fingerprint() != strict.Fingerprint() {
		t.Fatal("identical model+threshold produced a different matcher fingerprint")
	}
	e.Scan(s, same, 2)
	if st := e.LastStats(); st.FullScan || st.Invalidated || st.ShardsRescanned != 0 {
		t.Fatalf("unchanged LM re-scan stats = %+v, want every shard skipped", st)
	}
}
