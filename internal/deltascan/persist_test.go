package deltascan

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"squatphi/internal/simrand"
)

// TestSaveIsByteDeterministic pins the serving-lifecycle fix: two Saves of
// identical engine state must produce identical bytes. The verdict cache
// is a map, so an unsorted encoder leaks Go's per-range map iteration
// order into the spill — the determinism invariant squatvet enforces on
// scan outputs would not have held for spill artifacts.
func TestSaveIsByteDeterministic(t *testing.T) {
	rng := simrand.New(91)
	model := seedModel(rng, 800)
	m := testMatcher()
	e := NewEngine()
	e.Scan(buildStore(model, rng.Split("b1")), m, 4)
	// A second epoch with churn populates caches with mixed epochs.
	for i := 0; i < 7; i++ {
		model[rng.Letters(10)+".com"] = [4]byte{8, 8, 8, byte(i)}
	}
	e.Scan(buildStore(model, rng.Split("b2")), m, 4)

	var a, b bytes.Buffer
	if err := e.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("double Save of identical state diverged: %d vs %d bytes", a.Len(), b.Len())
	}

	// A loaded engine re-saves to the same bytes too: Load preserves the
	// canonical state, not just the semantic state.
	loaded, err := Load(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := loaded.Save(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("Save after Load diverged from original spill bytes")
	}
}

// TestSaveFileAtomicReplace exercises the fsx adoption: SaveFile over an
// existing spill yields a loadable file, and the previous artifact is
// fully replaced (no append, no truncation).
func TestSaveFileAtomicReplace(t *testing.T) {
	rng := simrand.New(17)
	model := seedModel(rng, 300)
	m := testMatcher()
	e := NewEngine()
	e.Scan(buildStore(model, rng.Split("b")), m, 2)

	path := filepath.Join(t.TempDir(), "delta.spill.gz")
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	e.Scan(buildStore(model, rng.Split("b2")), m, 2)
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch() != e.Epoch() {
		t.Fatalf("loaded epoch %d, want %d", loaded.Epoch(), e.Epoch())
	}
}

// TestRecoverTruncatedSpillDegradesToFullScan is the crash-recovery
// contract: a spill cut off mid-gzip (the exact artifact a non-atomic
// writer leaves after a crash) must not error the restart. Recover hands
// back a fresh engine whose first Scan is a full scan with results
// identical to the cold serial reference.
func TestRecoverTruncatedSpillDegradesToFullScan(t *testing.T) {
	rng := simrand.New(23)
	model := seedModel(rng, 400)
	m := testMatcher()
	e := NewEngine()
	store := buildStore(model, rng.Split("b"))
	e.Scan(store, m, 3)

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "delta.spill.gz")
	// Truncate mid-stream: enough bytes for a valid gzip header, not
	// enough to decode the state.
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted a truncated spill")
	}
	rec, recovered, err := Recover(path)
	if recovered {
		t.Fatal("Recover claimed to restore state from a truncated spill")
	}
	if err == nil {
		t.Fatal("Recover of a corrupt spill should surface the load error")
	}
	got := rec.Scan(store, m, 1)
	if !rec.LastStats().FullScan {
		t.Fatal("first scan after corrupt-spill recovery was not a full scan")
	}
	if want := fullScan(store, m); !reflect.DeepEqual(got, want) {
		t.Fatalf("degraded scan diverged from cold reference: %d vs %d candidates", len(got), len(want))
	}
}

// TestRecoverMissingSpill: a first boot (no spill yet) is not an error.
func TestRecoverMissingSpill(t *testing.T) {
	rec, recovered, err := Recover(filepath.Join(t.TempDir(), "nope.gz"))
	if err != nil {
		t.Fatalf("missing spill reported error: %v", err)
	}
	if recovered {
		t.Fatal("Recover claimed to restore nonexistent state")
	}
	if rec == nil || rec.Epoch() != 0 {
		t.Fatal("expected a fresh engine")
	}
}

// TestRecoverIntactSpillResumes: the happy path restores the epoch and
// the next scan is incremental, not full.
func TestRecoverIntactSpillResumes(t *testing.T) {
	rng := simrand.New(29)
	model := seedModel(rng, 400)
	m := testMatcher()
	e := NewEngine()
	store := buildStore(model, rng.Split("b"))
	e.Scan(store, m, 2)

	path := filepath.Join(t.TempDir(), "delta.spill.gz")
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	rec, recovered, err := Recover(path)
	if err != nil || !recovered {
		t.Fatalf("Recover = (recovered=%v, err=%v), want intact restore", recovered, err)
	}
	rec.Scan(store, m, 2)
	st := rec.LastStats()
	if st.FullScan {
		t.Fatal("scan after intact recovery degraded to a full scan")
	}
	if st.ShardsRescanned != 0 {
		t.Fatalf("unchanged store rescanned %d shards after recovery", st.ShardsRescanned)
	}
}
