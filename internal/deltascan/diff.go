package deltascan

import (
	"sort"

	"squatphi/internal/dnsx"
)

// DiffStats describes one shard-aware diff: how many shards the checksum
// comparison proved unchanged (skipped wholesale) and how many had to be
// compared record by record.
type DiffStats struct {
	ShardsSkipped, ShardsCompared int
}

// Diff computes the epoch delta between two snapshots — added, removed and
// IP-changed domains — with the same output as dnsx.Diff but per shard:
// shards whose rolling checksums match are skipped without touching a
// single record, so the cost of a quiet epoch is ~NumShards checksum
// loads. Stores with differing shard counts fall back to the global diff.
func Diff(oldSnap, newSnap *dnsx.Store) dnsx.Delta {
	d, _ := DiffWithStats(oldSnap, newSnap)
	return d
}

// DiffWithStats is Diff plus the shard-skip accounting.
func DiffWithStats(oldSnap, newSnap *dnsx.Store) (dnsx.Delta, DiffStats) {
	if oldSnap.NumShards() != newSnap.NumShards() {
		return dnsx.Diff(oldSnap, newSnap), DiffStats{ShardsCompared: newSnap.NumShards()}
	}
	var d dnsx.Delta
	var st DiffStats
	for i := 0; i < newSnap.NumShards(); i++ {
		if oldSnap.ShardChecksum(i) == newSnap.ShardChecksum(i) {
			st.ShardsSkipped++
			continue
		}
		st.ShardsCompared++
		old := map[string][4]byte{}
		oldSnap.RangeShard(i, func(r dnsx.Record) bool {
			old[r.Domain] = r.IP
			return true
		})
		newSnap.RangeShard(i, func(r dnsx.Record) bool {
			oldIP, ok := old[r.Domain]
			switch {
			case !ok:
				d.Added = append(d.Added, r.Domain)
			case oldIP != r.IP:
				d.Changed = append(d.Changed, r.Domain)
			}
			delete(old, r.Domain)
			return true
		})
		for dom := range old {
			d.Removed = append(d.Removed, dom)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	return d, st
}
