package whois

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"squatphi/internal/obs"
	"squatphi/internal/retry"
)

// hungServer accepts connections and holds them open without ever
// responding or closing — the wire behaviour of an overloaded registry.
func hungServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, conn)
		}
	}()
	return ln.Addr().String()
}

// TestLookupHungServerTimesOut is the regression test for the whois
// deadline fix: a server that accepts and never answers must cost at most
// the attempt timeout and be accounted as a timeout, not stall the caller.
func TestLookupHungServerTimesOut(t *testing.T) {
	reg := obs.NewRegistry()
	c := &Client{Timeout: 80 * time.Millisecond, Retries: -1, Metrics: reg}
	start := time.Now()
	_, err := c.Lookup(context.Background(), hungServer(t), "mobile-adp.com")
	if err == nil || errors.Is(err, ErrNoMatch) {
		t.Fatalf("hung server returned %v, want a transport error", err)
	}
	if !retry.IsTimeout(err) {
		t.Fatalf("hung-server error %v is not a timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("lookup took %v, the deadline did not bound the attempt", d)
	}
	s := reg.Snapshot()
	if s.Counters["whois.timeouts"] != 1 || s.Counters["whois.neterrors"] != 0 {
		t.Errorf("timeouts=%d neterrors=%d, want 1/0", s.Counters["whois.timeouts"], s.Counters["whois.neterrors"])
	}
	if s.Counters["whois.lookups"] != 1 {
		t.Errorf("lookups = %d, want 1", s.Counters["whois.lookups"])
	}
}

// TestLookupPartialRecordIsAnError is the regression test for the
// mid-record failure fix: a connection that delivers half a record and
// then stalls must surface as a transport error — the old client treated
// any read error as end-of-record and silently parsed the fragment.
func TestLookupPartialRecordIsAnError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_, _ = bufio.NewReader(conn).ReadString('\n')
				_, _ = conn.Write([]byte("Domain Name: MOBILE-ADP.COM\nCreation Date: 2017-01-01"))
				// Hold the connection open — no close, no more data — until
				// the test ends, so the client's read deadline must fire.
				<-done
			}(conn)
		}
	}()

	c := &Client{Timeout: 80 * time.Millisecond, Retries: -1}
	rec, err := c.Lookup(context.Background(), ln.Addr().String(), "mobile-adp.com")
	if err == nil {
		t.Fatalf("truncated record silently parsed as %+v", rec)
	}
	if errors.Is(err, ErrNoMatch) {
		t.Fatalf("truncated record misreported as no-match: %v", err)
	}
}

// TestLookupRetryThenSuccess resets the first connection (RST via
// SetLinger(0)) and serves the record on the second: the client must
// classify the reset as a network error, retry once, and succeed.
func TestLookupRetryThenSuccess(t *testing.T) {
	want := Record{Domain: "mobile-adp.com", Created: 2017, Registrar: "godaddy.com"}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	first := true
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			reset := first
			first = false
			mu.Unlock()
			if reset {
				if tc, ok := conn.(*net.TCPConn); ok {
					_ = tc.SetLinger(0) // close sends RST, not FIN
				}
				conn.Close()
				continue
			}
			go func(conn net.Conn) {
				defer conn.Close()
				line, _ := bufio.NewReader(conn).ReadString('\n')
				if strings.TrimSpace(line) != want.Domain {
					return
				}
				_, _ = conn.Write([]byte(Format(want)))
			}(conn)
		}
	}()

	reg := obs.NewRegistry()
	c := &Client{Timeout: time.Second, Metrics: reg}
	rec, err := c.Lookup(context.Background(), ln.Addr().String(), want.Domain)
	if err != nil {
		t.Fatalf("lookup after one reset: %v", err)
	}
	if rec != want {
		t.Fatalf("rec = %+v, want %+v", rec, want)
	}
	s := reg.Snapshot()
	if s.Counters["whois.retries"] != 1 {
		t.Errorf("retries = %d, want 1", s.Counters["whois.retries"])
	}
	if s.Counters["whois.neterrors"] != 1 || s.Counters["whois.timeouts"] != 0 {
		t.Errorf("neterrors=%d timeouts=%d, want 1/0: a reset is not a timeout",
			s.Counters["whois.neterrors"], s.Counters["whois.timeouts"])
	}
}

// TestLookupBreakerOpensAndFastFails arms the breaker at one failure
// against a hung registry: the second lookup must fast-fail with ErrOpen
// without opening a connection.
func TestLookupBreakerOpensAndFastFails(t *testing.T) {
	reg := obs.NewRegistry()
	c := &Client{
		Timeout: 60 * time.Millisecond,
		Retries: -1,
		Policy:  retry.Policy{BreakerThreshold: 1, BreakerCooldown: time.Hour},
		Metrics: reg,
	}
	addr := hungServer(t)
	if _, err := c.Lookup(context.Background(), addr, "a.com"); err == nil {
		t.Fatal("first lookup against a hung server succeeded")
	}
	_, err := c.Lookup(context.Background(), addr, "b.com")
	if !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("second lookup error = %v, want retry.ErrOpen", err)
	}
	s := reg.Snapshot()
	if s.Counters["whois.breaker.opens"] != 1 {
		t.Errorf("breaker opens = %d, want 1", s.Counters["whois.breaker.opens"])
	}
	if s.Counters["whois.breaker.rejected"] != 1 {
		t.Errorf("breaker rejections = %d, want 1", s.Counters["whois.breaker.rejected"])
	}
	if st := c.Retrier().State(addr); st != retry.Open {
		t.Errorf("breaker state = %v, want open", st)
	}
}
