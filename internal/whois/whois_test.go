package whois

import (
	"strings"
	"sync"
	"testing"
)

type mapDir map[string]Record

func (m mapDir) WhoisRecord(domain string) (Record, bool) {
	r, ok := m[domain]
	return r, ok
}

func TestFormatParseRoundTrip(t *testing.T) {
	recs := []Record{
		{Domain: "mobile-adp.com", Created: 2017, Registrar: "godaddy.com"},
		{Domain: "faceb00k.pw", Created: 2018, Registrar: ""},
	}
	for _, rec := range recs {
		got, err := Parse(Format(rec))
		if err != nil {
			t.Fatalf("Parse(Format(%+v)): %v", rec, err)
		}
		if got != rec {
			t.Fatalf("round trip %+v != %+v", got, rec)
		}
	}
}

func TestParseNoMatch(t *testing.T) {
	if _, err := Parse("gibberish text\nwith no fields\n"); err != ErrNoMatch {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}
}

func TestParseToleratesExtraFields(t *testing.T) {
	text := "Domain Name: EXAMPLE.COM\nRegistry Domain ID: 123\nCreation Date: 2016-05-04T00:00:00Z\nRegistrar: namecheap.com\nDNSSEC: unsigned\n"
	rec, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Domain != "example.com" || rec.Created != 2016 || rec.Registrar != "namecheap.com" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestServerLookup(t *testing.T) {
	dir := mapDir{
		"mobile-adp.com": {Domain: "mobile-adp.com", Created: 2017, Registrar: "godaddy.com"},
		"redacted.net":   {Domain: "redacted.net", Created: 2015},
	}
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec, err := Lookup(srv.Addr(), "MOBILE-ADP.COM")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Registrar != "godaddy.com" || rec.Created != 2017 {
		t.Fatalf("rec = %+v", rec)
	}

	rec, err = Lookup(srv.Addr(), "redacted.net")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Registrar != "" {
		t.Fatalf("redacted registrar leaked: %+v", rec)
	}

	if _, err := Lookup(srv.Addr(), "missing.example"); err != ErrNoMatch {
		t.Fatalf("missing domain err = %v, want ErrNoMatch", err)
	}
}

func TestServerConcurrentLookups(t *testing.T) {
	dir := mapDir{}
	for _, d := range []string{"a.com", "b.com", "c.com", "d.com"} {
		dir[d] = Record{Domain: d, Created: 2018, Registrar: "godaddy.com"}
	}
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := []string{"a.com", "b.com", "c.com", "d.com"}[i%4]
			rec, err := Lookup(srv.Addr(), d)
			if err != nil {
				errs <- err
				return
			}
			if rec.Domain != d {
				errs <- ErrNoMatch
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFormatRedactsEmptyRegistrar(t *testing.T) {
	text := Format(Record{Domain: "x.com", Created: 2018})
	if strings.Contains(text, "Registrar:") {
		t.Fatal("empty registrar emitted")
	}
}
