// Package whois implements the domain-registration-intelligence substrate:
// an RFC 3912-style WHOIS server serving the synthetic world's registration
// records over TCP, a client, and the record text format.
//
// The paper pulls whois records for the 1,175 verified phishing domains to
// study registration times and registrars (Figure 16: most registered in
// the recent four years; godaddy.com the most common of 121 registrars, but
// only 738 domains expose registrar data). The reproduction serves the same
// fields — including the partial-data behaviour — over the real protocol:
// the client connects, writes the query line, and reads the record until
// EOF.
package whois

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"squatphi/internal/faultx"
	"squatphi/internal/obs"
	"squatphi/internal/retry"
)

// Record is one domain registration entry.
type Record struct {
	Domain    string
	Created   int    // registration year
	Registrar string // empty when the registry redacts it
}

// ErrNoMatch is returned when the server has no record for a domain.
var ErrNoMatch = errors.New("whois: no match")

// Format renders a record in classic whois key-value style.
func Format(r Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Domain Name: %s\n", strings.ToUpper(r.Domain))
	fmt.Fprintf(&b, "Creation Date: %d-01-01T00:00:00Z\n", r.Created)
	if r.Registrar != "" {
		fmt.Fprintf(&b, "Registrar: %s\n", r.Registrar)
	}
	b.WriteString(">>> Last update of whois database <<<\n")
	return b.String()
}

// Parse extracts a record from whois response text.
func Parse(text string) (Record, error) {
	var r Record
	found := false
	for _, line := range strings.Split(text, "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "domain name":
			r.Domain = strings.ToLower(val)
			found = true
		case "creation date":
			if len(val) >= 4 {
				if y, err := strconv.Atoi(val[:4]); err == nil {
					r.Created = y
				}
			}
		case "registrar":
			r.Registrar = val
		}
	}
	if !found {
		return Record{}, ErrNoMatch
	}
	return r, nil
}

// Directory answers whois queries; the webworld adapter implements it.
type Directory interface {
	// WhoisRecord returns the record for a domain, or false if unknown.
	WhoisRecord(domain string) (Record, bool)
}

// Server is a whois server over TCP (RFC 3912: one query line per
// connection, response terminated by close).
type Server struct {
	dir Directory
	ln  net.Listener
}

// NewServer starts a whois server on a free loopback port.
func NewServer(dir Directory) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("whois: listen: %w", err)
	}
	s := &Server{dir: dir, ln: ln}
	go s.serve()
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.ln.Close() }

func (s *Server) serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		return
	}
	domain := strings.ToLower(strings.TrimSpace(line))
	rec, ok := s.dir.WhoisRecord(domain)
	if !ok {
		fmt.Fprintf(conn, "No match for %q.\n", domain)
		return
	}
	_, _ = conn.Write([]byte(Format(rec)))
}

// Client queries whois servers with per-attempt deadlines, classified
// error accounting, and the shared retry/backoff/circuit-breaker policy
// (keyed by server address). A hung registry server costs at most Timeout
// per attempt instead of stalling a worker indefinitely, and a connection
// that dies mid-record surfaces as an error instead of being silently
// parsed as a (partial) record.
type Client struct {
	// Timeout bounds each lookup attempt end to end: dial, query write,
	// and the read-until-close loop share one deadline. Default 5s.
	Timeout time.Duration
	// Retries is the number of re-attempts after a transport error
	// (repository retry convention: negative disables, 0 selects the
	// default of 1, positive as given). A served record or a clean
	// "No match" answer is definitive and never retried.
	Retries int
	// Policy configures backoff, the per-server retry budget, and the
	// per-server circuit breaker (see internal/retry).
	Policy retry.Policy
	// Dial opens the TCP connection of one lookup attempt; nil selects
	// faultx.DialTimeout. Chaos tests interpose fault-injecting conn
	// wrappers here — the repository forbids direct net.Dial* outside
	// the transport layer (squatvet's transport analyzer) precisely so
	// this seam sees every outbound connection.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Metrics, when set, receives whois.* accounting: lookups, retries,
	// timeouts vs other network errors, no-match answers, and an RTT
	// histogram; the retry layer reports under whois.breaker.* and
	// whois.retry.*.
	Metrics *obs.Registry

	once sync.Once
	m    *clientMetrics
	rt   *retry.Retrier
}

type clientMetrics struct {
	lookups, retries, timeouts, neterrors, nomatch *obs.Counter
	rttMS                                          *obs.Histogram
}

func (c *Client) init() {
	c.once.Do(func() {
		reg := c.Metrics // nil-safe: handles stay live but unregistered
		c.m = &clientMetrics{
			lookups:   reg.Counter("whois.lookups"),
			retries:   reg.Counter("whois.retries"),
			timeouts:  reg.Counter("whois.timeouts"),
			neterrors: reg.Counter("whois.neterrors"),
			nomatch:   reg.Counter("whois.nomatch"),
			rttMS:     reg.Histogram("whois.rtt_ms", obs.MillisBuckets),
		}
		c.rt = retry.New(c.Policy, "whois", c.Metrics)
	})
}

// Retrier returns the client's shared retry/breaker state, built lazily
// from Policy (tests use it to assert breaker transitions).
func (c *Client) Retrier() *retry.Retrier {
	c.init()
	return c.rt
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 5 * time.Second
	}
	return c.Timeout
}

// Lookup queries the whois server at addr for one domain, retrying
// transport failures per the client's policy.
func (c *Client) Lookup(ctx context.Context, addr, domain string) (Record, error) {
	c.init()
	c.m.lookups.Inc()
	retries := retry.Resolve(c.Retries, 1)
	for attempt := 0; ; attempt++ {
		if err := c.rt.Allow(addr); err != nil {
			return Record{}, fmt.Errorf("whois %s: %w", addr, err)
		}
		start := time.Now()
		rec, err := c.lookupOnce(addr, domain)
		if err == nil || errors.Is(err, ErrNoMatch) {
			c.rt.Report(addr, true)
			c.m.rttMS.ObserveSince(start)
			if err != nil {
				c.m.nomatch.Inc()
			}
			return rec, err
		}
		if retry.IsTimeout(err) {
			c.m.timeouts.Inc()
		} else {
			c.m.neterrors.Inc()
		}
		c.rt.Report(addr, false)
		if attempt >= retries || ctx.Err() != nil || !c.rt.GrantRetry(addr) {
			return Record{}, err
		}
		c.m.retries.Inc()
		if werr := c.rt.Wait(ctx, addr+"/"+domain, attempt+1); werr != nil {
			return Record{}, err
		}
	}
}

// lookupOnce performs one RFC 3912 exchange under a single deadline. Only
// a clean close (EOF) terminates the read; a timeout or reset mid-record
// is a transport failure, never silently parsed as partial data.
func (c *Client) lookupOnce(addr, domain string) (Record, error) {
	timeout := c.timeout()
	dial := c.Dial
	if dial == nil {
		dial = faultx.DialTimeout
	}
	conn, err := dial("tcp", addr, timeout)
	if err != nil {
		return Record{}, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\r\n", domain); err != nil {
		return Record{}, err
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := conn.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) {
				return Record{}, rerr
			}
			break
		}
	}
	text := sb.String()
	if strings.HasPrefix(text, "No match") {
		return Record{}, ErrNoMatch
	}
	return Parse(text)
}

// Lookup queries a whois server for one domain with default client
// settings (5s attempt deadline, one retry, no budget or breaker).
func Lookup(addr, domain string) (Record, error) {
	var c Client
	return c.Lookup(context.Background(), addr, domain)
}
