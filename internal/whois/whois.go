// Package whois implements the domain-registration-intelligence substrate:
// an RFC 3912-style WHOIS server serving the synthetic world's registration
// records over TCP, a client, and the record text format.
//
// The paper pulls whois records for the 1,175 verified phishing domains to
// study registration times and registrars (Figure 16: most registered in
// the recent four years; godaddy.com the most common of 121 registrars, but
// only 738 domains expose registrar data). The reproduction serves the same
// fields — including the partial-data behaviour — over the real protocol:
// the client connects, writes the query line, and reads the record until
// EOF.
package whois

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Record is one domain registration entry.
type Record struct {
	Domain    string
	Created   int    // registration year
	Registrar string // empty when the registry redacts it
}

// ErrNoMatch is returned when the server has no record for a domain.
var ErrNoMatch = errors.New("whois: no match")

// Format renders a record in classic whois key-value style.
func Format(r Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Domain Name: %s\n", strings.ToUpper(r.Domain))
	fmt.Fprintf(&b, "Creation Date: %d-01-01T00:00:00Z\n", r.Created)
	if r.Registrar != "" {
		fmt.Fprintf(&b, "Registrar: %s\n", r.Registrar)
	}
	b.WriteString(">>> Last update of whois database <<<\n")
	return b.String()
}

// Parse extracts a record from whois response text.
func Parse(text string) (Record, error) {
	var r Record
	found := false
	for _, line := range strings.Split(text, "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "domain name":
			r.Domain = strings.ToLower(val)
			found = true
		case "creation date":
			if len(val) >= 4 {
				if y, err := strconv.Atoi(val[:4]); err == nil {
					r.Created = y
				}
			}
		case "registrar":
			r.Registrar = val
		}
	}
	if !found {
		return Record{}, ErrNoMatch
	}
	return r, nil
}

// Directory answers whois queries; the webworld adapter implements it.
type Directory interface {
	// WhoisRecord returns the record for a domain, or false if unknown.
	WhoisRecord(domain string) (Record, bool)
}

// Server is a whois server over TCP (RFC 3912: one query line per
// connection, response terminated by close).
type Server struct {
	dir Directory
	ln  net.Listener
}

// NewServer starts a whois server on a free loopback port.
func NewServer(dir Directory) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("whois: listen: %w", err)
	}
	s := &Server{dir: dir, ln: ln}
	go s.serve()
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.ln.Close() }

func (s *Server) serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		return
	}
	domain := strings.ToLower(strings.TrimSpace(line))
	rec, ok := s.dir.WhoisRecord(domain)
	if !ok {
		fmt.Fprintf(conn, "No match for %q.\n", domain)
		return
	}
	_, _ = conn.Write([]byte(Format(rec)))
}

// Lookup queries a whois server for one domain.
func Lookup(addr, domain string) (Record, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return Record{}, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\r\n", domain); err != nil {
		return Record{}, err
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	text := sb.String()
	if strings.HasPrefix(text, "No match") {
		return Record{}, ErrNoMatch
	}
	return Parse(text)
}
