// Package brands builds the target-brand universe the paper monitors
// (§3.1): the top websites of 17 Alexa categories merged with the brands
// that PhishTank reports phishing against, de-duplicated by registrable
// domain — 702 unique brands in the paper's data, and by construction here.
//
// The universe mixes the real brand names that appear in the paper's tables
// (so the case studies are reproducible verbatim) with deterministic
// synthetic brands that fill out the long tail.
package brands

import (
	"sort"
	"strings"

	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

// Brand is a monitored target with selection metadata.
type Brand struct {
	squat.Brand
	// Category is the Alexa category the brand was selected from.
	Category string
	// Rank is the global popularity rank (1 = most popular).
	Rank int
	// PhishTarget marks brands on the PhishTank-style target list.
	PhishTarget bool
}

// Categories are the 17 Alexa-style categories (paper: "Alexa provides 17
// categories such as business, games, health, finance").
var Categories = []string{
	"business", "finance", "games", "health", "news", "shopping",
	"social", "sports", "technology", "travel", "education", "arts",
	"science", "computers", "home", "recreation", "society",
}

// corePhishTargets are real-world brands that the paper's tables and case
// studies reference; they are always included and always PhishTank targets.
var corePhishTargets = []string{
	"paypal.com", "facebook.com", "microsoft.com", "santander.co.uk",
	"google.com", "ebay.com", "adobe.com", "dropbox.com", "apple.com",
	"amazon.com", "uber.com", "youtube.com", "citi.com", "twitter.com",
	"github.com", "adp.com", "bitcoin.org", "netflix.com", "linkedin.com",
	"instagram.com", "chase.com", "wellsfargo.com", "bankofamerica.com",
	"hsbc.co.uk", "barclays.co.uk", "alliancebank.com", "rabobank.com",
	"comerica.com", "verizon.com", "zocdoc.com", "shutterfly.com",
	"priceline.com", "carfax.com", "citizenslc.com", "steam.com",
	"blizzard.com", "yahoo.com", "outlook.com", "office.com", "icloud.com",
	"whatsapp.com", "telegram.org", "skype.com", "zoom.us", "spotify.com",
	"coinbase.com", "blockchain.com", "binance.com", "kraken.com",
	"usbank.com", "capitalone.com", "amex.com", "discover.com", "visa.com",
	"mastercard.com", "westernunion.com", "moneygram.com", "venmo.com",
	"stripe.com", "square.com",
}

// coreAlexaTop are additional highly-ranked real domains from the paper's
// measurement (vice, porn, bt, ford generated the most squatting matches).
var coreAlexaTop = []string{
	"vice.com", "porn.com", "bt.com", "ford.com", "archive.org",
	"europa.eu", "cisco.com", "samsung.com", "intel.com", "target.com",
	"android.com", "realtor.com", "usda.gov", "nih.gov", "xbox.com",
	"delta.com", "blogger.com", "pandora.com", "cnet.com", "bing.com",
	"cnn.com", "nike.com", "pinterest.com", "msn.com", "chess.com",
	"nyu.edu", "nationwide.com", "cua.edu", "fifa.com", "columbia.edu",
	"tsn.ca", "bodybuilding.com", "weather.com", "slate.com", "tsb.co.uk",
	"skyscanner.net", "motorsport.com", "battle.net", "healthcare.gov",
	"smile.com", "history.com", "compass.com", "poste.it", "visa.co.uk",
	"patient.info", "arena.com", "mint.com", "discovery.com", "cams.com",
	"gq.com", "sina.com.cn", "bbb.org", "credit-agricole.fr",
}

// syllables build pronounceable synthetic brand names for the long tail.
var syllables = []string{
	"bel", "cor", "dan", "fin", "gal", "hub", "jet", "kal", "lum", "mer",
	"nor", "oak", "pex", "quo", "riv", "sol", "tor", "umb", "vex", "wil",
	"zen", "ark", "bay", "cen", "dex", "eco", "fab", "gro", "hex", "ion",
}

var synthTLDs = []string{"com", "com", "com", "com", "net", "org", "io", "co"}

// Universe is the selected brand set with lookup indexes.
type Universe struct {
	Brands []Brand
	byName map[string]*Brand
}

// Config controls universe construction.
type Config struct {
	// PerCategory is the number of top sites taken per Alexa category
	// (paper: 50, giving 850 domains).
	PerCategory int
	// PhishTargets is the size of the PhishTank-style target list
	// (paper: 204).
	PhishTargets int
	// IncludeInstitutions extends the scope to government agencies,
	// military institutions, universities and hospitals — the extension
	// the paper proposes as future work (§7).
	IncludeInstitutions bool
	// Seed drives synthetic name generation.
	Seed uint64
}

// institutionDomains seed the future-work scope extension: high-value
// organisations whose squats enable targeted (spear) phishing.
var institutionDomains = []string{
	"irs.gov", "ssa.gov", "medicare.gov", "state.gov", "treasury.gov",
	"defense.mil", "army.mil", "navy.mil", "va.gov", "uscis.gov",
	"mit.edu", "stanford.edu", "harvard.edu", "berkeley.edu", "cmu.edu",
	"mayoclinic.org", "clevelandclinic.org", "hopkinsmedicine.org",
	"nhs.uk", "cdc.gov", "fda.gov", "nasa.gov", "noaa.gov", "ed.gov",
}

// DefaultConfig reproduces the paper's selection sizes.
func DefaultConfig() Config {
	return Config{PerCategory: 50, PhishTargets: 204, Seed: 2018}
}

// Select builds the brand universe: per-category Alexa lists merged with
// the phishing-target list, de-duplicated by registrable domain.
func Select(cfg Config) *Universe {
	if cfg.PerCategory <= 0 {
		cfg.PerCategory = 50
	}
	if cfg.PhishTargets <= 0 {
		cfg.PhishTargets = 204
	}
	r := simrand.New(cfg.Seed).Split("brands")

	u := &Universe{byName: map[string]*Brand{}}
	add := func(domain, category string, rank int, phishTarget bool) {
		b := squat.NewBrand(domain)
		if prev, ok := u.byName[b.Name]; ok {
			// Same registrable name: merge (paper merges niams.nih.gov and
			// nichd.nih.gov into nih.gov, and co-listed Alexa/PhishTank
			// entries).
			if phishTarget {
				prev.PhishTarget = true
			}
			if rank < prev.Rank {
				prev.Rank = rank
			}
			return
		}
		u.Brands = append(u.Brands, Brand{Brand: b, Category: category, Rank: rank, PhishTarget: phishTarget})
		u.byName[b.Name] = &u.Brands[len(u.Brands)-1]
	}

	// Deterministically spread the curated real domains over categories,
	// then fill each category to PerCategory with synthetic brands.
	curated := append(append([]string(nil), corePhishTargets...), coreAlexaTop...)
	rank := 1
	for i, domain := range curated {
		add(domain, Categories[i%len(Categories)], rank, i < len(corePhishTargets))
		rank++
	}
	if cfg.IncludeInstitutions {
		for _, domain := range institutionDomains {
			add(domain, "institutions", rank, true)
			rank++
		}
	}
	perCat := map[string]int{}
	for _, b := range u.Brands {
		perCat[b.Category]++
	}
	for _, cat := range Categories {
		cr := r.Split(cat)
		for perCat[cat] < cfg.PerCategory {
			name := syntheticName(cr)
			tld := simrand.Pick(cr, synthTLDs)
			if _, dup := u.byName[name]; dup {
				continue
			}
			add(name+"."+tld, cat, rank, false)
			rank++
			perCat[cat]++
		}
	}

	// Extend the phishing-target list to cfg.PhishTargets entries: all core
	// targets plus the most popular remaining brands (finance and social
	// first, matching which brands phishers actually target).
	targets := 0
	for i := range u.Brands {
		if u.Brands[i].PhishTarget {
			targets++
		}
	}
	pref := func(b Brand) int {
		switch b.Category {
		case "finance":
			return 0
		case "social":
			return 1
		case "business", "shopping":
			return 2
		}
		return 3
	}
	order := make([]int, len(u.Brands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ba, bb := u.Brands[order[a]], u.Brands[order[b]]
		if pref(ba) != pref(bb) {
			return pref(ba) < pref(bb)
		}
		return ba.Rank < bb.Rank
	})
	for _, i := range order {
		if targets >= cfg.PhishTargets {
			break
		}
		if !u.Brands[i].PhishTarget {
			u.Brands[i].PhishTarget = true
			targets++
		}
	}
	return u
}

func syntheticName(r *simrand.RNG) string {
	n := 2 + r.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(simrand.Pick(r, syllables))
	}
	return b.String()
}

// Lookup returns the brand with the given registrable name.
func (u *Universe) Lookup(name string) (Brand, bool) {
	b, ok := u.byName[strings.ToLower(name)]
	if !ok {
		return Brand{}, false
	}
	return *b, true
}

// SquatBrands returns the underlying squat.Brand list for matcher
// construction, in universe order.
func (u *Universe) SquatBrands() []squat.Brand {
	out := make([]squat.Brand, len(u.Brands))
	for i, b := range u.Brands {
		out[i] = b.Brand
	}
	return out
}

// PhishTargetBrands returns only the PhishTank-style target brands.
func (u *Universe) PhishTargetBrands() []Brand {
	var out []Brand
	for _, b := range u.Brands {
		if b.PhishTarget {
			out = append(out, b)
		}
	}
	return out
}

// Names returns every brand's registrable name, in universe order.
func (u *Universe) Names() []string {
	out := make([]string, len(u.Brands))
	for i, b := range u.Brands {
		out[i] = b.Name
	}
	return out
}
