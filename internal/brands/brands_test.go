package brands

import (
	"testing"

	"squatphi/internal/squat"
)

func TestSelectSizes(t *testing.T) {
	u := Select(DefaultConfig())
	// 17 categories x 50 = 850 slots, de-duplicated to a 702-ish universe;
	// the exact count is deterministic, so pin the invariants instead of a
	// magic number: at least 600 unique brands, each category populated.
	if len(u.Brands) < 600 {
		t.Fatalf("universe = %d brands, want >= 600", len(u.Brands))
	}
	perCat := map[string]int{}
	for _, b := range u.Brands {
		perCat[b.Category]++
	}
	for _, cat := range Categories {
		if perCat[cat] < 40 {
			t.Errorf("category %s has only %d brands", cat, perCat[cat])
		}
	}
	targets := len(u.PhishTargetBrands())
	if targets != 204 {
		t.Errorf("phish targets = %d, want 204", targets)
	}
}

func TestSelectDeterministic(t *testing.T) {
	a := Select(DefaultConfig())
	b := Select(DefaultConfig())
	if len(a.Brands) != len(b.Brands) {
		t.Fatal("sizes differ across runs")
	}
	for i := range a.Brands {
		if a.Brands[i] != b.Brands[i] {
			t.Fatalf("brand %d differs: %+v vs %+v", i, a.Brands[i], b.Brands[i])
		}
	}
}

func TestCoreBrandsPresent(t *testing.T) {
	u := Select(DefaultConfig())
	for _, name := range []string{"paypal", "facebook", "google", "uber", "adp", "citizenslc", "vice", "ford", "bt"} {
		b, ok := u.Lookup(name)
		if !ok {
			t.Errorf("core brand %s missing", name)
			continue
		}
		if name == "paypal" && !b.PhishTarget {
			t.Error("paypal not a phish target")
		}
	}
}

func TestNoDuplicateNames(t *testing.T) {
	u := Select(DefaultConfig())
	seen := map[string]bool{}
	for _, b := range u.Brands {
		if seen[b.Name] {
			t.Fatalf("duplicate brand name %s", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestLookupMissing(t *testing.T) {
	u := Select(DefaultConfig())
	if _, ok := u.Lookup("definitely-not-a-brand-xyz"); ok {
		t.Fatal("Lookup returned a missing brand")
	}
}

func TestSquatBrandsAlignment(t *testing.T) {
	u := Select(DefaultConfig())
	sb := u.SquatBrands()
	if len(sb) != len(u.Brands) {
		t.Fatal("SquatBrands length mismatch")
	}
	for i := range sb {
		if sb[i] != u.Brands[i].Brand {
			t.Fatal("SquatBrands order mismatch")
		}
	}
}

func TestMultiLabelTLDBrands(t *testing.T) {
	u := Select(DefaultConfig())
	b, ok := u.Lookup("santander")
	if !ok || b.TLD != "co.uk" {
		t.Fatalf("santander = %+v, ok=%v; want co.uk TLD", b, ok)
	}
}

func TestMatcherIntegration(t *testing.T) {
	u := Select(DefaultConfig())
	m := squat.NewMatcher(u.SquatBrands())
	c, ok := m.Match("paypal-login.net")
	if !ok || c.Brand.Name != "paypal" || c.Type != squat.Combo {
		t.Fatalf("Match(paypal-login.net) = %+v ok=%v", c, ok)
	}
	if _, ok := m.Match("paypal.com"); ok {
		t.Fatal("original brand domain flagged")
	}
}

func TestNames(t *testing.T) {
	u := Select(DefaultConfig())
	names := u.Names()
	if len(names) != len(u.Brands) || names[0] != u.Brands[0].Name {
		t.Fatal("Names misaligned")
	}
}

func BenchmarkSelect(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		_ = Select(cfg)
	}
}

func TestIncludeInstitutions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IncludeInstitutions = true
	u := Select(cfg)
	for _, name := range []string{"irs", "mit", "mayoclinic", "defense"} {
		b, ok := u.Lookup(name)
		if !ok {
			t.Errorf("institution brand %s missing", name)
			continue
		}
		if !b.PhishTarget {
			t.Errorf("institution %s not marked as phish target", name)
		}
	}
	base := Select(DefaultConfig())
	if _, ok := base.Lookup("irs"); ok {
		t.Error("institutions leaked into the default universe")
	}
}

func TestInstitutionsMatchable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IncludeInstitutions = true
	u := Select(cfg)
	m := squat.NewMatcher(u.SquatBrands())
	c, ok := m.Match("irs-refund.com")
	if !ok || c.Brand.Name != "irs" {
		t.Fatalf("Match(irs-refund.com) = %+v ok=%v", c, ok)
	}
}
