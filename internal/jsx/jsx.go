// Package jsx implements a JavaScript tokenizer and a lightweight syntactic
// analysis used to detect code obfuscation in phishing pages (paper §4.2).
//
// The paper parses JavaScript into an AST and extracts well-known
// obfuscation indicators (borrowed from FrameHanger and earlier studies):
// string-construction functions (fromCharCode, charCodeAt), dynamic
// evaluation (eval), and heavy use of special characters / escape
// sequences. This package tokenizes scripts from scratch and reports those
// indicators; it aims for robust indicator extraction, not full ECMA-262
// parsing.
package jsx

import (
	"strings"
	"unicode"
)

// TokenKind classifies JS lexical tokens.
type TokenKind int

const (
	// Ident is an identifier or keyword.
	Ident TokenKind = iota
	// Number is a numeric literal.
	Number
	// Str is a string literal (quotes stripped, escapes kept raw).
	Str
	// Punct is an operator or punctuation sequence.
	Punct
	// Comment is a // or /* */ comment body.
	Comment
	// Regex is a regular-expression literal.
	Regex
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
}

// Tokenize lexes JavaScript source. It never fails; unrecognised bytes are
// emitted as single-character Punct tokens, since the analyzer only needs
// reliable identifier/string/comment extraction.
func Tokenize(src string) []Token {
	var toks []Token
	i := 0
	prevSignificant := func() *Token {
		for j := len(toks) - 1; j >= 0; j-- {
			if toks[j].Kind != Comment {
				return &toks[j]
			}
		}
		return nil
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			end := strings.IndexByte(src[i:], '\n')
			if end < 0 {
				end = len(src) - i
			}
			toks = append(toks, Token{Comment, src[i+2 : i+end]})
			i += end
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				toks = append(toks, Token{Comment, src[i+2:]})
				i = len(src)
			} else {
				toks = append(toks, Token{Comment, src[i+2 : i+2+end]})
				i += end + 4
			}
		case c == '"' || c == '\'' || c == '`':
			lit, n := lexString(src[i:], c)
			toks = append(toks, Token{Str, lit})
			i += n
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (isNumByte(src[i])) {
				i++
			}
			toks = append(toks, Token{Number, src[start:i]})
		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentPart(rune(src[i])) {
				i++
			}
			toks = append(toks, Token{Ident, src[start:i]})
		case c == '/':
			// Regex if the previous significant token cannot end an
			// expression; otherwise a division operator.
			if p := prevSignificant(); p == nil || p.Kind == Punct && p.Text != ")" && p.Text != "]" {
				lit, n, ok := lexRegex(src[i:])
				if ok {
					toks = append(toks, Token{Regex, lit})
					i += n
					continue
				}
			}
			toks = append(toks, Token{Punct, "/"})
			i++
		default:
			toks = append(toks, Token{Punct, string(c)})
			i++
		}
	}
	return toks
}

func lexString(src string, quote byte) (string, int) {
	var b strings.Builder
	i := 1
	for i < len(src) {
		if src[i] == '\\' && i+1 < len(src) {
			b.WriteByte(src[i])
			b.WriteByte(src[i+1])
			i += 2
			continue
		}
		if src[i] == quote {
			return b.String(), i + 1
		}
		b.WriteByte(src[i])
		i++
	}
	return b.String(), len(src)
}

func lexRegex(src string) (string, int, bool) {
	i := 1
	inClass := false
	for i < len(src) {
		switch src[i] {
		case '\\':
			i++
		case '[':
			inClass = true
		case ']':
			inClass = false
		case '/':
			if !inClass {
				// consume flags
				j := i + 1
				for j < len(src) && isIdentPart(rune(src[j])) {
					j++
				}
				return src[1:i], j, true
			}
		case '\n':
			return "", 0, false
		}
		i++
	}
	return "", 0, false
}

func isNumByte(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == 'x' || c == 'X' ||
		c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == 'o' || c == 'O'
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool { return isIdentStart(r) || unicode.IsDigit(r) }

// Report summarises the obfuscation indicators found in one script.
type Report struct {
	// Tokens is the total token count.
	Tokens int
	// EvalCalls counts eval / Function constructor uses.
	EvalCalls int
	// StringFuncCalls counts fromCharCode / charCodeAt / unescape / atob /
	// decodeURIComponent uses.
	StringFuncCalls int
	// DocumentWrites counts document.write calls (dynamic content loading).
	DocumentWrites int
	// EscapeDensity is the fraction of string-literal bytes that belong to
	// \x.. / \u.... escape sequences.
	EscapeDensity float64
	// LongStringLiterals counts string literals over 256 bytes (packed
	// payloads).
	LongStringLiterals int
	// SpecialCharDensity is the fraction of punctuation tokens among all
	// tokens, a coarse "looks like packed code" signal.
	SpecialCharDensity float64
}

// indicator identifiers checked against Ident tokens.
var stringFuncs = map[string]bool{
	"fromCharCode": true, "charCodeAt": true, "unescape": true,
	"atob": true, "decodeURIComponent": true, "escape": true,
}

// Analyze tokenizes src and extracts the obfuscation indicators.
func Analyze(src string) Report {
	toks := Tokenize(src)
	var rep Report
	rep.Tokens = len(toks)

	punct := 0
	var strBytes, escBytes int
	for ti, tok := range toks {
		switch tok.Kind {
		case Ident:
			switch {
			case tok.Text == "eval" || tok.Text == "Function":
				if followedByCall(toks, ti) {
					rep.EvalCalls++
				}
			case stringFuncs[tok.Text]:
				rep.StringFuncCalls++
			case tok.Text == "write" || tok.Text == "writeln":
				if ti >= 2 && toks[ti-1].Text == "." && toks[ti-2].Text == "document" {
					rep.DocumentWrites++
				}
			}
		case Str:
			strBytes += len(tok.Text)
			escBytes += countEscapeBytes(tok.Text)
			if len(tok.Text) > 256 {
				rep.LongStringLiterals++
			}
		case Punct:
			punct++
		}
	}
	if strBytes > 0 {
		rep.EscapeDensity = float64(escBytes) / float64(strBytes)
	}
	if len(toks) > 0 {
		rep.SpecialCharDensity = float64(punct) / float64(len(toks))
	}
	return rep
}

func followedByCall(toks []Token, i int) bool {
	for j := i + 1; j < len(toks); j++ {
		if toks[j].Kind == Comment {
			continue
		}
		return toks[j].Kind == Punct && toks[j].Text == "("
	}
	return false
}

func countEscapeBytes(s string) int {
	n := 0
	for i := 0; i+1 < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		switch s[i+1] {
		case 'x':
			n += 4
			i += 3
		case 'u':
			n += 6
			i += 5
		}
	}
	return n
}

// Obfuscated applies the paper's "strong and well-known indicators only"
// rule: a script is flagged when it dynamically evaluates code, builds
// strings character-by-character, or is dominated by escape sequences.
func (r Report) Obfuscated() bool {
	if r.EvalCalls > 0 && r.StringFuncCalls > 0 {
		return true
	}
	if r.StringFuncCalls >= 3 {
		return true
	}
	if r.EscapeDensity > 0.3 && r.Tokens > 10 {
		return true
	}
	if r.LongStringLiterals > 0 && (r.EvalCalls > 0 || r.DocumentWrites > 0) {
		return true
	}
	return false
}

// AnalyzeAll merges the reports of several scripts (one page may embed
// many) and reports whether any is obfuscated.
func AnalyzeAll(scripts []string) (Report, bool) {
	var merged Report
	obfuscated := false
	totalStr := 0.0
	for _, s := range scripts {
		rep := Analyze(s)
		merged.Tokens += rep.Tokens
		merged.EvalCalls += rep.EvalCalls
		merged.StringFuncCalls += rep.StringFuncCalls
		merged.DocumentWrites += rep.DocumentWrites
		merged.LongStringLiterals += rep.LongStringLiterals
		merged.EscapeDensity += rep.EscapeDensity
		totalStr++
		if rep.Obfuscated() {
			obfuscated = true
		}
	}
	if totalStr > 0 {
		merged.EscapeDensity /= totalStr
	}
	return merged, obfuscated
}
