package jsx

import "testing"

// FuzzAnalyze drives the JS tokenizer and indicator analysis with
// arbitrary input: no panics, no negative counters, bounded densities.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"",
		"var x = 1;",
		`eval(String.fromCharCode(104,105));`,
		`document.write("<div>");`,
		`"unterminated`,
		"/* unterminated",
		"a = /regex/g; b = x / y;",
		"`template ${x}`",
		"\\u0041\\x41",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rep := Analyze(src)
		if rep.Tokens < 0 || rep.EvalCalls < 0 || rep.StringFuncCalls < 0 {
			t.Fatalf("negative counters: %+v", rep)
		}
		if rep.SpecialCharDensity < 0 || rep.SpecialCharDensity > 1 {
			t.Fatalf("density out of range: %+v", rep)
		}
		if rep.EscapeDensity < 0 {
			t.Fatalf("negative escape density: %+v", rep)
		}
	})
}
