package jsx

import (
	"strings"
	"testing"

	"squatphi/internal/simrand"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize(`var x = 42; // answer`)
	want := []struct {
		kind TokenKind
		text string
	}{
		{Ident, "var"}, {Ident, "x"}, {Punct, "="}, {Number, "42"},
		{Punct, ";"}, {Comment, " answer"},
	}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %+v", toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %+v, want %+v", i, toks[i], w)
		}
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks := Tokenize(`a("it's", 'he said "hi"', ` + "`tpl`" + `)`)
	var strs []string
	for _, tok := range toks {
		if tok.Kind == Str {
			strs = append(strs, tok.Text)
		}
	}
	if len(strs) != 3 || strs[0] != "it's" || strs[1] != `he said "hi"` || strs[2] != "tpl" {
		t.Fatalf("strings = %q", strs)
	}
}

func TestTokenizeStringEscapes(t *testing.T) {
	toks := Tokenize(`x = "a\"b\\"`)
	if toks[2].Kind != Str || toks[2].Text != `a\"b\\` {
		t.Fatalf("escaped string = %+v", toks[2])
	}
}

func TestTokenizeBlockComment(t *testing.T) {
	toks := Tokenize(`/* multi
line */ x`)
	if toks[0].Kind != Comment || !strings.Contains(toks[0].Text, "multi") {
		t.Fatalf("comment = %+v", toks[0])
	}
	if toks[1].Kind != Ident || toks[1].Text != "x" {
		t.Fatalf("after comment = %+v", toks[1])
	}
}

func TestTokenizeRegexVsDivision(t *testing.T) {
	toks := Tokenize(`a = b / c;`)
	for _, tok := range toks {
		if tok.Kind == Regex {
			t.Fatalf("division lexed as regex: %+v", toks)
		}
	}
	toks = Tokenize(`a = /fo+o/g;`)
	found := false
	for _, tok := range toks {
		if tok.Kind == Regex && tok.Text == "fo+o" {
			found = true
		}
	}
	if !found {
		t.Fatalf("regex literal missed: %+v", toks)
	}
}

func TestTokenizeUnterminated(t *testing.T) {
	// Must not panic or loop.
	for _, src := range []string{`"abc`, "`tpl", "/* never", "// eof", `a = /re`} {
		_ = Tokenize(src)
	}
}

func TestAnalyzeCleanCode(t *testing.T) {
	rep := Analyze(`
		function greet(name) {
			document.getElementById("x").textContent = "hello " + name;
		}
		greet("world");
	`)
	if rep.Obfuscated() {
		t.Fatalf("clean code flagged: %+v", rep)
	}
	if rep.EvalCalls != 0 || rep.StringFuncCalls != 0 {
		t.Fatalf("false indicators: %+v", rep)
	}
}

func TestAnalyzeEvalFromCharCode(t *testing.T) {
	rep := Analyze(`var s=""; for(var i=0;i<c.length;i++){s+=String.fromCharCode(c[i]^7);} eval(s);`)
	if rep.EvalCalls != 1 {
		t.Fatalf("EvalCalls = %d", rep.EvalCalls)
	}
	if rep.StringFuncCalls != 1 {
		t.Fatalf("StringFuncCalls = %d", rep.StringFuncCalls)
	}
	if !rep.Obfuscated() {
		t.Fatalf("obfuscated sample not flagged: %+v", rep)
	}
}

func TestAnalyzeEvalIdentifierOnlyNotCall(t *testing.T) {
	rep := Analyze(`var evaluation = eval2; var x = "eval";`)
	if rep.EvalCalls != 0 {
		t.Fatalf("EvalCalls = %d for non-call uses", rep.EvalCalls)
	}
}

func TestAnalyzeEscapeDensity(t *testing.T) {
	rep := Analyze(`var p = "\x68\x74\x74\x70\x3a\x2f\x2f\x65\x76\x69\x6c"; var a=1; var b=2; var c=3;`)
	if rep.EscapeDensity < 0.9 {
		t.Fatalf("EscapeDensity = %f, want ~1", rep.EscapeDensity)
	}
	if !rep.Obfuscated() {
		t.Fatalf("hex-packed string not flagged: %+v", rep)
	}
}

func TestAnalyzeDocumentWrite(t *testing.T) {
	longStr := strings.Repeat("Z", 300)
	rep := Analyze(`document.write("` + longStr + `");`)
	if rep.DocumentWrites != 1 {
		t.Fatalf("DocumentWrites = %d", rep.DocumentWrites)
	}
	if rep.LongStringLiterals != 1 {
		t.Fatalf("LongStringLiterals = %d", rep.LongStringLiterals)
	}
	if !rep.Obfuscated() {
		t.Fatalf("packed document.write not flagged: %+v", rep)
	}
}

func TestAnalyzeChurnedStringFuncs(t *testing.T) {
	rep := Analyze(`a.charCodeAt(0); b.charCodeAt(1); unescape(x);`)
	if rep.StringFuncCalls != 3 || !rep.Obfuscated() {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestAnalyzeAll(t *testing.T) {
	scripts := []string{
		`console.log("benign");`,
		`eval(String.fromCharCode(104,105));`,
	}
	merged, obf := AnalyzeAll(scripts)
	if !obf {
		t.Fatal("AnalyzeAll missed the obfuscated script")
	}
	if merged.EvalCalls != 1 || merged.StringFuncCalls != 1 {
		t.Fatalf("merged = %+v", merged)
	}
	_, obf = AnalyzeAll([]string{`var x = 1;`})
	if obf {
		t.Fatal("AnalyzeAll flagged clean scripts")
	}
}

func TestAnalyzeNeverPanics(t *testing.T) {
	r := simrand.New(55)
	pieces := []string{`"`, `'`, "`", `\`, "/", "/*", "*/", "//", "eval", "(", ")", "{", "}", "\n", "fromCharCode", "1e9", "0x", "$"}
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		for j := 0; j < r.Intn(24); j++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
		}
		_ = Analyze(b.String())
	}
}

func BenchmarkAnalyze(b *testing.B) {
	src := `var s=""; for(var i=0;i<c.length;i++){s+=String.fromCharCode(c[i]^7);} eval(s); document.write("<div>x</div>");`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Analyze(src)
	}
}
