package serve

import (
	"reflect"
	"testing"
	"time"

	"squatphi/internal/core"
	"squatphi/internal/obs"
	"squatphi/internal/retry"
	"squatphi/internal/simrand"
)

// TestChaosShardKillExactCounters kills a shard mid-traffic and pins
// the failure posture exactly: every request routed to the dead shard
// is answered degraded (with the correct stateless verdict), the
// breaker opens after precisely BreakerThreshold failures and
// fast-fails the rest, one half-open probe closes it after restart,
// and the post-recovery hot state is byte-identical to a cold serial
// scan of the (mutated) store. Deterministic end to end: seeded
// request schedule, injected clock for the breaker cooldown.
func TestChaosShardKillExactCounters(t *testing.T) {
	store, m, cands := testWorld(t, 3000, 8, 47)
	reg := obs.NewRegistry()

	clock := time.Unix(1000, 0)
	const threshold = 3
	const cooldown = 30 * time.Second
	c := New(Config{
		Shards:  store.NumShards(),
		Matcher: m,
		Metrics: reg,
		Breaker: retry.Policy{
			BreakerThreshold: threshold,
			BreakerCooldown:  cooldown,
			Now:              func() time.Time { return clock },
		},
	})
	if err := c.Warm(store, cands); err != nil {
		t.Fatal(err)
	}

	// The victim: the shard holding the first planted candidate.
	victim := c.ShardFor(cands[0].Domain)

	rng := simrand.New(301)
	domains := store.Domains()
	const (
		steps     = 2400
		killAt    = 800  // StopShard(victim)
		restartAt = 1600 // RestartShard(victim) + clock past cooldown
	)
	down := false
	victimOpsDown := 0 // ops routed to the victim while it was down
	expDegraded := 0

	for step := 0; step < steps; step++ {
		if step == killAt {
			c.StopShard(victim)
			down = true
		}
		if step == restartAt {
			if err := c.RestartShard(victim); err != nil {
				t.Fatal(err)
			}
			clock = clock.Add(cooldown + time.Second)
			down = false
		}

		var d string
		var v Verdict
		switch {
		case rng.Float64() < 0.10: // streaming update
			d = rng.Letters(9) + ".com"
			v = c.Apply(d, [4]byte{10, 8, byte(step >> 8), byte(step)})
		case rng.Float64() < 0.15: // lookup miss
			d = rng.Letters(12) + ".net"
			v = c.Lookup(d)
		default: // lookup of a snapshot domain
			d = domains[rng.Intn(len(domains))]
			v = c.Lookup(d)
		}

		hitVictim := c.ShardFor(d) == victim
		if down && hitVictim {
			victimOpsDown++
			expDegraded++
			if !v.Degraded {
				t.Fatalf("step %d: op on dead shard not degraded: %+v", step, v)
			}
			// Degraded answers are still correct verdicts.
			_, want := m.Match(v.Domain)
			if v.Matched != want {
				t.Fatalf("step %d: degraded verdict wrong: %+v, matcher says %v", step, v, want)
			}
			if v.Known {
				t.Fatalf("step %d: degraded answer claims snapshot knowledge: %+v", step, v)
			}
		} else if v.Degraded {
			t.Fatalf("step %d: healthy-path op degraded: %+v (shard %d, victim %d, down %v)",
				step, v, c.ShardFor(d), victim, down)
		}
	}
	if victimOpsDown <= threshold {
		t.Fatalf("schedule routed only %d ops to the dead shard; need > %d for the breaker to open", victimOpsDown, threshold)
	}

	// Exact breaker accounting: the first `threshold` ops on the dead
	// shard probe it and fail (opening the circuit on the last), every
	// later one is fast-failed by the open breaker, and recovery costs
	// exactly one half-open probe which closes the circuit.
	snap := reg.Snapshot()
	wantCounters := map[string]int64{
		"serve.breaker.opens":            1,
		"serve.breaker.closes":           1,
		"serve.breaker.half_open_probes": 1,
		"serve.breaker.rejected":         int64(victimOpsDown - threshold),
		"core.degraded.serve":            int64(expDegraded),
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Counters["serve.lookups"] + snap.Counters["serve.updates"]; got != steps {
		t.Errorf("op accounting: lookups+updates = %d, want %d", got, steps)
	}

	// Post-recovery equivalence: the hot sweep must be byte-identical
	// to a cold serial scan of the store, which absorbed every update —
	// including the ones applied while the victim shard was down.
	got := c.Candidates()
	want := core.ScanStore(store, m, 1, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery sweep diverged from cold scan: %d vs %d candidates", len(got), len(want))
	}
	if down := c.Down(); len(down) != 0 {
		t.Fatalf("shards still down after recovery: %v", down)
	}
}
