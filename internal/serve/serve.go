// Package serve is SquatPhi's verdict-serving layer: the long-running
// daemon half of the paper's deployment posture (§7). Where the scan
// pipeline answers "which of these N hundred million records are
// squatting domains" as a batch, serve answers "is THIS domain a
// squatting domain" interactively, at lookup rates, from hot per-shard
// state warmed out of a snapshot scan.
//
// The coordinator partitions the domain space into shards with the
// repository-wide convention (dnsx.ShardIndex over the normalised
// domain), the exact partition the store and the delta-scan engine use,
// so a warmed shard corresponds one-to-one to a store shard and state
// hands off between the systems shard by shard.
//
// Failure posture: each shard is fronted by a circuit breaker
// (internal/retry). A lookup routed to a downed shard is never an
// error — it degrades to a stateless matcher answer (the verdict is
// still correct; what is lost is the "known in snapshot" bit and the
// cached-epoch provenance), counted under core.degraded.serve exactly
// like the pipeline's degraded stages. Once the breaker opens, lookups
// fast-fail to the degraded path without touching the shard until the
// cooldown admits a half-open probe.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"squatphi/internal/dnsx"
	"squatphi/internal/obs"
	"squatphi/internal/retry"
	"squatphi/internal/squat"
)

// Verdict is one serving-layer answer.
type Verdict struct {
	// Domain is the normalised form the verdict applies to.
	Domain string `json:"domain"`
	// Known reports the domain is present in the warmed snapshot shard.
	// Degraded answers cannot know this and leave it false.
	Known bool `json:"known"`
	// Matched reports the domain is a squatting candidate.
	Matched bool `json:"matched"`
	// Type/Brand/TLD describe the match (empty when !Matched).
	Type  string `json:"type,omitempty"`
	Brand string `json:"brand,omitempty"`
	TLD   string `json:"tld,omitempty"`
	// Shard is the shard the domain routes to (dnsx.ShardIndex).
	Shard int `json:"shard"`
	// Epoch is the warm epoch of the answering shard (0 for degraded
	// answers: no shard state was consulted).
	Epoch int `json:"epoch,omitempty"`
	// Degraded marks a stateless fallback answer served while the
	// domain's shard was down or its breaker open.
	Degraded bool `json:"degraded,omitempty"`
}

// Config configures a Coordinator.
type Config struct {
	// Shards is the shard count; it must equal the NumShards of every
	// store warmed into the coordinator (<= 0 selects dnsx.DefaultShards).
	Shards int
	// Matcher answers both warmed and degraded lookups. Required.
	Matcher *squat.Matcher
	// Metrics receives serve.* and core.degraded.serve metrics (nil-tolerant).
	Metrics *obs.Registry
	// Breaker is the per-shard circuit policy (retry.Policy). A zero
	// policy disables the breaker: downed shards are probed on every
	// lookup. BreakerThreshold/BreakerCooldown/Now behave as in retry.
	Breaker retry.Policy
}

// entry is one warmed verdict: the domain is in the snapshot, and it
// either matched (cand set) or did not.
type entry struct {
	cand squat.Candidate
	ok   bool
}

// shard is one lock domain of hot verdict state. A shard being "down"
// models its worker having died (chaos) or being mid-handoff; the
// coordinator answers for it statelessly until it is restarted.
type shard struct {
	mu       sync.RWMutex
	verdicts map[string]entry
	up       bool
	epoch    int
}

// Coordinator routes lookups and updates to per-shard hot state.
// All methods are safe for concurrent use.
type Coordinator struct {
	shards  []*shard
	matcher *squat.Matcher
	breaker *retry.Retrier

	mu    sync.Mutex  // guards store
	store *dnsx.Store // source of truth for updates; set by Warm

	lookups, bulk, updates, degraded *obs.Counter
	lookupUS, bulkMS, updateUS       *obs.Histogram
}

// New builds a Coordinator with all shards down; call Warm to bring
// them up from a scanned store.
func New(cfg Config) *Coordinator {
	if cfg.Matcher == nil {
		panic("serve: Config.Matcher is required")
	}
	n := cfg.Shards
	if n <= 0 {
		n = dnsx.DefaultShards
	}
	reg := cfg.Metrics
	c := &Coordinator{
		shards:   make([]*shard, n),
		matcher:  cfg.Matcher,
		breaker:  retry.New(cfg.Breaker, "serve", reg),
		lookups:  reg.Counter("serve.lookups"),
		bulk:     reg.Counter("serve.lookups.bulk"),
		updates:  reg.Counter("serve.updates"),
		degraded: reg.Counter("core.degraded.serve"),
		lookupUS: reg.Histogram("serve.lookup_us", obs.MicrosBuckets),
		bulkMS:   reg.Histogram("serve.bulk_ms", obs.MillisBuckets),
		updateUS: reg.Histogram("serve.update_us", obs.MicrosBuckets),
	}
	for i := range c.shards {
		c.shards[i] = &shard{}
	}
	return c
}

// NumShards returns the coordinator's shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// ShardFor returns the shard a domain routes to: the repository-wide
// convention, dnsx.ShardIndex over the normalised domain.
func (c *Coordinator) ShardFor(domain string) int {
	return dnsx.ShardIndex(dnsx.Normalize(domain), len(c.shards))
}

// shardHost is the breaker key for shard i.
func shardHost(i int) string { return fmt.Sprintf("shard-%d", i) }

// Warm loads hot state for every shard from a store and its scan
// result (e.g. deltascan.Engine.Scan or core.ScanStore output — the
// two are byte-identical). The store's shard partition must equal the
// coordinator's. Warm is the reload path too: each shard's replacement
// map is built off-lock and swapped in under the write lock, so
// in-flight readers drain on the RWMutex and the handoff is atomic per
// shard — a reader sees entirely old or entirely new state, never a mix.
func (c *Coordinator) Warm(store *dnsx.Store, cands []squat.Candidate) error {
	if store.NumShards() != len(c.shards) {
		return fmt.Errorf("serve: store has %d shards, coordinator %d; the shard partitions must agree for handoff",
			store.NumShards(), len(c.shards))
	}
	c.mu.Lock()
	c.store = store
	c.mu.Unlock()
	byShard := make([][]squat.Candidate, len(c.shards))
	for _, cand := range cands {
		i := dnsx.ShardIndex(cand.Domain, len(c.shards))
		byShard[i] = append(byShard[i], cand)
	}
	for i := range c.shards {
		c.warmShard(i, store, byShard[i])
	}
	return nil
}

// warmShard rebuilds shard i's verdict map from the store shard and the
// candidates that hash to it, then swaps it live.
func (c *Coordinator) warmShard(i int, store *dnsx.Store, cands []squat.Candidate) {
	m := make(map[string]entry)
	store.RangeShard(i, func(r dnsx.Record) bool {
		m[r.Domain] = entry{}
		return true
	})
	for _, cand := range cands {
		m[cand.Domain] = entry{cand: cand, ok: true}
	}
	sh := c.shards[i]
	sh.mu.Lock()
	sh.verdicts = m
	sh.up = true
	sh.epoch++
	sh.mu.Unlock()
}

// StopShard marks shard i down, as if its worker died. Lookups routed
// to it degrade; its breaker opens after the policy's threshold.
func (c *Coordinator) StopShard(i int) {
	sh := c.shards[i]
	sh.mu.Lock()
	sh.up = false
	sh.verdicts = nil
	sh.mu.Unlock()
}

// RestartShard rewarms shard i from the coordinator's store (the source
// of truth, which keeps absorbing updates while the shard is down) and
// brings it back up. The next admitted lookup is the breaker's
// half-open probe; its success closes the circuit.
func (c *Coordinator) RestartShard(i int) error {
	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	if store == nil {
		return fmt.Errorf("serve: RestartShard(%d) before Warm: no store to rewarm from", i)
	}
	// Re-derive the shard's candidates statelessly: the store shard is
	// the authority, the matcher is deterministic.
	var cands []squat.Candidate
	store.RangeShard(i, func(r dnsx.Record) bool {
		if cand, ok := c.matcher.Match(r.Domain); ok {
			cands = append(cands, cand)
		}
		return true
	})
	c.warmShard(i, store, cands)
	return nil
}

// Lookup answers for one domain. It never fails: a downed or
// breaker-open shard yields a degraded (stateless) answer.
func (c *Coordinator) Lookup(domain string) Verdict {
	sw := obs.StartStopwatch()
	c.lookups.Inc()
	d := dnsx.Normalize(domain)
	v := c.lookup(d)
	c.lookupUS.Observe(sw.Micros())
	return v
}

func (c *Coordinator) lookup(d string) Verdict {
	i := dnsx.ShardIndex(d, len(c.shards))
	host := shardHost(i)
	if err := c.breaker.Allow(host); err != nil {
		// Open circuit: fast-fail to the stateless path without
		// touching the shard (retry counts this under
		// serve.breaker.rejected).
		return c.degradedAnswer(i, d)
	}
	sh := c.shards[i]
	sh.mu.RLock()
	up := sh.up
	e, known := sh.verdicts[d]
	epoch := sh.epoch
	sh.mu.RUnlock()
	if !up {
		c.breaker.Report(host, false)
		return c.degradedAnswer(i, d)
	}
	c.breaker.Report(host, true)
	v := Verdict{Domain: d, Known: known, Shard: i, Epoch: epoch}
	if !known {
		// Not in the snapshot: answer Matched statelessly, the same way
		// the degraded path and Apply do, so a domain's Matched bit never
		// depends on which path answered or whether its shard was up.
		e.cand, e.ok = c.matcher.Match(d)
	}
	if e.ok {
		v.Matched = true
		v.Type = e.cand.Type.String()
		v.Brand = e.cand.Brand.Name
		v.TLD = e.cand.Brand.TLD
	}
	return v
}

// degradedAnswer is the stateless fallback: run the matcher directly.
// The verdict is correct (the matcher is the same one that warmed the
// shards); what is lost is Known and the epoch provenance.
func (c *Coordinator) degradedAnswer(i int, d string) Verdict {
	c.degraded.Inc()
	v := Verdict{Domain: d, Shard: i, Degraded: true}
	if cand, ok := c.matcher.Match(d); ok {
		v.Matched = true
		v.Type = cand.Type.String()
		v.Brand = cand.Brand.Name
		v.TLD = cand.Brand.TLD
	}
	return v
}

// LookupBatch answers for many domains in input order.
func (c *Coordinator) LookupBatch(domains []string) []Verdict {
	sw := obs.StartStopwatch()
	c.bulk.Inc()
	out := make([]Verdict, len(domains))
	for i, d := range domains {
		c.lookups.Inc()
		out[i] = c.lookup(dnsx.Normalize(d))
	}
	c.bulkMS.Observe(sw.Millis())
	return out
}

// Apply absorbs one streaming record update (a new registration or a
// changed resolution). The store — the source of truth — is always
// updated, so a later rewarm recovers the record even if its shard is
// down right now; the hot shard state is updated only when the shard is
// up (a downed shard counts the miss under core.degraded.serve and its
// breaker, and RestartShard reconciles it from the store).
func (c *Coordinator) Apply(domain string, ip [4]byte) Verdict {
	sw := obs.StartStopwatch()
	c.updates.Inc()
	d := dnsx.Normalize(domain)
	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	if store != nil {
		store.Add(d, ip)
	}
	i := dnsx.ShardIndex(d, len(c.shards))
	host := shardHost(i)
	v := Verdict{Domain: d, Known: true, Shard: i}
	cand, ok := c.matcher.Match(d)
	if ok {
		v.Matched = true
		v.Type = cand.Type.String()
		v.Brand = cand.Brand.Name
		v.TLD = cand.Brand.TLD
	}
	if err := c.breaker.Allow(host); err != nil {
		c.degraded.Inc()
		v.Known, v.Degraded = false, true
		c.updateUS.Observe(sw.Micros())
		return v
	}
	sh := c.shards[i]
	sh.mu.Lock()
	up := sh.up
	if up {
		sh.verdicts[d] = entry{cand: cand, ok: ok}
		v.Epoch = sh.epoch
	}
	sh.mu.Unlock()
	c.breaker.Report(host, up)
	if !up {
		c.degraded.Inc()
		v.Known, v.Degraded = false, true
	}
	c.updateUS.Observe(sw.Micros())
	return v
}

// Candidates sweeps all shards and returns the warmed squatting
// candidates sorted by domain — the same order core.ScanStore and
// deltascan.Engine.Scan produce, so a post-recovery sweep can be
// compared byte-for-byte against a cold scan of the store.
func (c *Coordinator) Candidates() []squat.Candidate {
	var out []squat.Candidate
	for _, sh := range c.shards {
		sh.mu.RLock()
		for _, e := range sh.verdicts {
			if e.ok {
				out = append(out, e.cand)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Down returns the indices of downed shards (empty = all up).
func (c *Coordinator) Down() []int {
	var down []int
	for i, sh := range c.shards {
		sh.mu.RLock()
		up := sh.up
		sh.mu.RUnlock()
		if !up {
			down = append(down, i)
		}
	}
	return down
}
