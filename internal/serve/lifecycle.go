package serve

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
)

// Lifecycle is the shared shutdown path of the repo's long-running
// binaries (squatd, squatmond, squatphi): it turns SIGINT/SIGTERM into
// context cancellation and runs registered flush hooks exactly once, in
// LIFO order, so state written late (a deltascan spill, a trace store,
// a metrics snapshot) is flushed before the resources it depends on are
// torn down.
//
// The signal source is an injectable channel (Deliver), so tests drive
// the full signal path deterministically without sending real signals
// to the test process.
type Lifecycle struct {
	mu    sync.Mutex
	hooks []hook
	ran   bool
	err   error

	sig  chan os.Signal
	got  os.Signal
	done chan struct{} // closed once a signal (or Deliver) arrives
}

type hook struct {
	name string
	fn   func(context.Context) error
}

// NewLifecycle returns an unarmed lifecycle; call Watch to arm signal
// handling and OnShutdown to register flush hooks.
func NewLifecycle() *Lifecycle {
	return &Lifecycle{
		sig:  make(chan os.Signal, 1),
		done: make(chan struct{}),
	}
}

// OnShutdown registers fn to run during Shutdown. Hooks run in reverse
// registration order (LIFO), mirroring defer: register a resource's
// flush right after acquiring it.
func (l *Lifecycle) OnShutdown(name string, fn func(context.Context) error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hooks = append(l.hooks, hook{name: name, fn: fn})
}

// Watch arms signal handling: the returned context is cancelled when
// any of sigs arrives (or parent is cancelled). The caller still runs
// Shutdown itself — typically after its serve loop observes the
// cancellation — so flushes happen on the main goroutine, not a signal
// handler.
func (l *Lifecycle) Watch(parent context.Context, sigs ...os.Signal) context.Context {
	ctx, cancel := context.WithCancel(parent)
	if len(sigs) > 0 {
		signal.Notify(l.sig, sigs...)
	}
	go func() {
		defer cancel()
		select {
		case s := <-l.sig:
			l.mu.Lock()
			l.got = s
			l.mu.Unlock()
			close(l.done)
			signal.Stop(l.sig)
		case <-parent.Done():
			signal.Stop(l.sig)
		}
	}()
	return ctx
}

// Deliver injects a signal as if the OS had sent it. Tests use it to
// drive the Watch/Shutdown path deterministically; it is also how a
// binary can request its own graceful exit.
func (l *Lifecycle) Deliver(s os.Signal) {
	select {
	case l.sig <- s:
	default: // a signal is already pending; one is enough to exit
	}
}

// Signal returns the signal that triggered cancellation (nil if the
// context fell for another reason or Watch was never armed).
func (l *Lifecycle) Signal() os.Signal {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.got
}

// Shutdown runs the registered hooks once, newest first, each bounded
// by ctx. Every hook runs even if an earlier one fails; the first
// error is returned (and returned again by repeat calls).
func (l *Lifecycle) Shutdown(ctx context.Context) error {
	l.mu.Lock()
	if l.ran {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.ran = true
	hooks := make([]hook, len(l.hooks))
	copy(hooks, l.hooks)
	l.mu.Unlock()

	var first error
	for i := len(hooks) - 1; i >= 0; i-- {
		if err := hooks[i].fn(ctx); err != nil && first == nil {
			first = fmt.Errorf("serve: shutdown hook %s: %w", hooks[i].name, err)
		}
	}
	l.mu.Lock()
	l.err = first
	l.mu.Unlock()
	return first
}
