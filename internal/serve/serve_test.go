package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"squatphi/internal/core"
	"squatphi/internal/dnsx"
	"squatphi/internal/obs"
	"squatphi/internal/retry"
	"squatphi/internal/squat"
)

// testWorld builds the standard fixture: a snapshot store with planted
// squatting candidates, the matcher that finds them, and the cold-scan
// reference verdict list.
func testWorld(t *testing.T, noise, shards int, seed uint64) (*dnsx.Store, *squat.Matcher, []squat.Candidate) {
	t.Helper()
	brands := []squat.Brand{squat.NewBrand("paypal.com"), squat.NewBrand("facebook.com")}
	gen := squat.NewGenerator()
	var planted []string
	for _, b := range brands {
		for i, c := range gen.Generate(b) {
			if i%4 == 0 {
				planted = append(planted, c.Domain)
			}
		}
	}
	store := dnsx.GenerateSnapshot(dnsx.SnapshotSpec{
		Planted: planted, NoiseRecords: noise, Seed: seed, Shards: shards,
	})
	m := squat.NewMatcher(brands)
	return store, m, core.ScanStore(store, m, 1, nil)
}

func TestWarmLookup(t *testing.T) {
	store, m, cands := testWorld(t, 3000, 8, 41)
	if len(cands) == 0 {
		t.Fatal("fixture planted no candidates")
	}
	reg := obs.NewRegistry()
	c := New(Config{Shards: store.NumShards(), Matcher: m, Metrics: reg})
	if err := c.Warm(store, cands); err != nil {
		t.Fatal(err)
	}

	// Every planted candidate answers Known+Matched from its shard.
	for _, cand := range cands {
		v := c.Lookup(cand.Domain)
		if !v.Known || !v.Matched || v.Degraded {
			t.Fatalf("Lookup(%s) = %+v, want known matched", cand.Domain, v)
		}
		if v.Shard != c.ShardFor(cand.Domain) {
			t.Fatalf("Lookup(%s) routed to shard %d, ShardFor says %d", cand.Domain, v.Shard, v.Shard)
		}
		if v.Type != cand.Type.String() || v.Brand != cand.Brand.Name {
			t.Fatalf("Lookup(%s) = %+v, want type %s brand %s", cand.Domain, v, cand.Type, cand.Brand.Name)
		}
	}

	// A noise record: known, not matched.
	var noiseDom string
	store.Range(func(r dnsx.Record) bool {
		if _, ok := m.Match(r.Domain); !ok {
			noiseDom = r.Domain
			return false
		}
		return true
	})
	if v := c.Lookup(noiseDom); !v.Known || v.Matched {
		t.Fatalf("Lookup(noise %s) = %+v, want known unmatched", noiseDom, v)
	}

	// An absent domain: unknown, unmatched, not degraded.
	if v := c.Lookup("definitely-not-in-snapshot.example"); v.Known || v.Matched || v.Degraded {
		t.Fatalf("Lookup(absent) = %+v", v)
	}

	// Lookup normalises like the store: case and trailing dot.
	d := cands[0].Domain
	if v := c.Lookup("  " + d); v.Known { // leading junk is NOT trimmed — only case/dot
		t.Fatalf("Lookup with junk prefix unexpectedly known: %+v", v)
	}
	up := []byte(d)
	for i, ch := range up {
		if ch >= 'a' && ch <= 'z' {
			up[i] = ch - 'a' + 'A'
		}
	}
	if v := c.Lookup(string(up) + "."); !v.Known || !v.Matched {
		t.Fatalf("Lookup(%q) not normalised: %+v", string(up)+".", v)
	}

	// The warmed sweep equals the cold scan byte-for-byte.
	if got := c.Candidates(); !reflect.DeepEqual(got, cands) {
		t.Fatalf("Candidates() diverged from cold scan: %d vs %d", len(got), len(cands))
	}
}

func TestWarmShardMismatch(t *testing.T) {
	store, m, cands := testWorld(t, 200, 8, 42)
	c := New(Config{Shards: 4, Matcher: m})
	if err := c.Warm(store, cands); err == nil {
		t.Fatal("Warm accepted a store with a different shard partition")
	}
}

func TestApplyUpdatesHotState(t *testing.T) {
	store, m, cands := testWorld(t, 500, 8, 43)
	c := New(Config{Shards: store.NumShards(), Matcher: m})
	if err := c.Warm(store, cands); err != nil {
		t.Fatal(err)
	}

	// A fresh squatting registration streams in and is immediately known.
	v := c.Apply("paypa1.com", [4]byte{10, 0, 0, 1})
	if !v.Known || !v.Matched || v.Degraded {
		t.Fatalf("Apply = %+v, want known matched", v)
	}
	if got := c.Lookup("paypa1.com"); !got.Known || !got.Matched {
		t.Fatalf("Lookup after Apply = %+v", got)
	}
	// The store (source of truth) absorbed it too.
	if _, ok := store.Lookup("paypa1.com"); !ok {
		t.Fatal("Apply did not reach the store")
	}
	// The sweep now equals a cold scan of the mutated store.
	if got, want := c.Candidates(), core.ScanStore(store, m, 1, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("Candidates() after Apply diverged from cold scan: %d vs %d", len(got), len(want))
	}
}

func TestDegradedAnswerWhenShardDown(t *testing.T) {
	store, m, cands := testWorld(t, 1000, 8, 44)
	reg := obs.NewRegistry()
	c := New(Config{Shards: store.NumShards(), Matcher: m, Metrics: reg})
	if err := c.Warm(store, cands); err != nil {
		t.Fatal(err)
	}
	target := cands[0].Domain
	k := c.ShardFor(target)
	c.StopShard(k)

	v := c.Lookup(target)
	if !v.Degraded || !v.Matched || v.Known {
		t.Fatalf("downed-shard Lookup = %+v, want degraded matched unknown", v)
	}
	if got := reg.Counter("core.degraded.serve").Value(); got != 1 {
		t.Fatalf("core.degraded.serve = %d, want 1", got)
	}
	if down := c.Down(); len(down) != 1 || down[0] != k {
		t.Fatalf("Down() = %v, want [%d]", down, k)
	}

	if err := c.RestartShard(k); err != nil {
		t.Fatal(err)
	}
	if v := c.Lookup(target); v.Degraded || !v.Known || !v.Matched {
		t.Fatalf("post-restart Lookup = %+v", v)
	}
	if got, want := c.Candidates(), core.ScanStore(store, m, 1, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restart Candidates() diverged from cold scan")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	store, m, cands := testWorld(t, 800, 8, 45)
	reg := obs.NewRegistry()
	c := New(Config{Shards: store.NumShards(), Matcher: m, Metrics: reg})
	if err := c.Warm(store, cands); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	for _, rt := range c.Routes() {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	t.Run("verdict", func(t *testing.T) {
		var v Verdict
		getJSON(t, srv.URL+"/verdict?domain="+cands[0].Domain, &v)
		if !v.Known || !v.Matched {
			t.Fatalf("GET /verdict = %+v", v)
		}
		resp, err := http.Get(srv.URL + "/verdict")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("missing domain: status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("bulk", func(t *testing.T) {
		domains := []string{cands[0].Domain, "nope.example", cands[1].Domain}
		body, _ := json.Marshal(domains)
		resp, err := http.Post(srv.URL+"/verdicts", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []Verdict
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if len(out) != 3 || !out[0].Matched || out[1].Matched || !out[2].Matched {
			t.Fatalf("POST /verdicts = %+v", out)
		}
	})

	t.Run("update", func(t *testing.T) {
		body, _ := json.Marshal([]UpdateRecord{{Domain: "faceb00k.com", IP: "10.1.2.3"}})
		resp, err := http.Post(srv.URL+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []Verdict
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || !out[0].Known {
			t.Fatalf("POST /update = %+v", out)
		}
		var v Verdict
		getJSON(t, srv.URL+"/verdict?domain=faceb00k.com", &v)
		if !v.Known {
			t.Fatalf("verdict after update = %+v", v)
		}

		body, _ = json.Marshal([]UpdateRecord{{Domain: "x.com", IP: "999.1.2.3"}})
		resp2, err := http.Post(srv.URL+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad IP: status %d, want 400", resp2.StatusCode)
		}
	})

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz all-up: status %d", resp.StatusCode)
		}
		c.StopShard(3)
		resp, err = http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz with downed shard: status %d, want 503", resp.StatusCode)
		}
		var h struct {
			Shards int   `json:"shards"`
			Down   []int `json:"down"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if h.Shards != 8 || len(h.Down) != 1 || h.Down[0] != 3 {
			t.Fatalf("healthz body = %+v", h)
		}
		if err := c.RestartShard(3); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConcurrentLookupDuringReload hammers lookups and updates while
// Warm swaps every shard — the reload/handoff path — and while one
// shard bounces. Run under -race this is the data-race gate for the
// serving layer.
func TestConcurrentLookupDuringReload(t *testing.T) {
	store, m, cands := testWorld(t, 2000, 8, 46)
	c := New(Config{Shards: store.NumShards(), Matcher: m,
		Breaker: retry.Policy{BreakerThreshold: 3}})
	if err := c.Warm(store, cands); err != nil {
		t.Fatal(err)
	}
	domains := store.Domains()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Lookup(domains[i%len(domains)])
				if i%7 == 0 {
					c.Apply(domains[i%len(domains)], [4]byte{8, 8, byte(w), byte(i)})
				}
				i += 13
			}
		}(w)
	}
	for r := 0; r < 5; r++ {
		if err := c.Warm(store, c.Candidates()); err != nil {
			t.Fatal(err)
		}
		c.StopShard(r % 8)
		if err := c.RestartShard(r % 8); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestParseIPv4(t *testing.T) {
	good := map[string][4]byte{
		"0.0.0.0":         {0, 0, 0, 0},
		"10.1.2.3":        {10, 1, 2, 3},
		"255.255.255.255": {255, 255, 255, 255},
	}
	for s, want := range good {
		got, err := parseIPv4(s)
		if err != nil || got != want {
			t.Errorf("parseIPv4(%q) = %v, %v", s, got, err)
		}
	}
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", ".1.2.3", "1.2.3."} {
		if _, err := parseIPv4(s); err == nil {
			t.Errorf("parseIPv4(%q) accepted", s)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
