package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"squatphi/internal/obs"
)

// maxBulkBody bounds a bulk POST body; combined with obs.ReadTimeout it
// keeps one slow client from holding a handler goroutine indefinitely.
const maxBulkBody = 8 << 20

// Routes returns the coordinator's HTTP surface, mountable on the
// hardened obs listener (obs.Serve) so squatd's port shares the debug
// endpoint's timeout policy:
//
//	GET  /verdict?domain=D   one verdict (JSON)
//	POST /verdicts           JSON array of domains -> array of verdicts
//	POST /update             JSON array of {"domain","ip"} records
//	GET  /healthz            shard health (503 when any shard is down)
func (c *Coordinator) Routes() []obs.Route {
	return []obs.Route{
		{Pattern: "/verdict", Handler: http.HandlerFunc(c.handleVerdict)},
		{Pattern: "/verdicts", Handler: http.HandlerFunc(c.handleBulk)},
		{Pattern: "/update", Handler: http.HandlerFunc(c.handleUpdate)},
		{Pattern: "/healthz", Handler: http.HandlerFunc(c.handleHealthz)},
	}
}

func (c *Coordinator) handleVerdict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	d := r.URL.Query().Get("domain")
	if d == "" {
		http.Error(w, "missing ?domain=", http.StatusBadRequest)
		return
	}
	writeJSON(w, c.Lookup(d))
}

func (c *Coordinator) handleBulk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var domains []string
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBulkBody)).Decode(&domains); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, c.LookupBatch(domains))
}

// UpdateRecord is one streaming record update on the wire.
type UpdateRecord struct {
	Domain string `json:"domain"`
	IP     string `json:"ip"` // dotted quad
}

func (c *Coordinator) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var recs []UpdateRecord
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBulkBody)).Decode(&recs); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	out := make([]Verdict, 0, len(recs))
	for _, rec := range recs {
		ip, err := parseIPv4(rec.IP)
		if err != nil {
			http.Error(w, fmt.Sprintf("record %q: %v", rec.Domain, err), http.StatusBadRequest)
			return
		}
		out = append(out, c.Apply(rec.Domain, ip))
	}
	writeJSON(w, out)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	down := c.Down()
	status := http.StatusOK
	if len(down) > 0 {
		status = http.StatusServiceUnavailable
	}
	if down == nil {
		down = []int{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"shards": len(c.shards),
		"down":   down,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// parseIPv4 parses a dotted-quad address without net.ParseIP (whose
// net.IP form would need a conversion back to the store's [4]byte).
func parseIPv4(s string) ([4]byte, error) {
	var ip [4]byte
	part, idx := 0, 0
	seen := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if !seen || idx > 3 {
				return ip, fmt.Errorf("bad IPv4 %q", s)
			}
			ip[idx] = byte(part)
			idx++
			part, seen = 0, false
			continue
		}
		ch := s[i]
		if ch < '0' || ch > '9' {
			return ip, fmt.Errorf("bad IPv4 %q", s)
		}
		part = part*10 + int(ch-'0')
		if part > 255 {
			return ip, fmt.Errorf("bad IPv4 %q", s)
		}
		seen = true
	}
	if idx != 4 {
		return ip, fmt.Errorf("bad IPv4 %q", s)
	}
	return ip, nil
}
