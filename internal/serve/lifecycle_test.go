package serve

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"
)

// TestLifecycleSignalPath drives the full signal path with an injected
// signal: Watch's context falls, the caller runs Shutdown, hooks run
// LIFO exactly once.
func TestLifecycleSignalPath(t *testing.T) {
	l := NewLifecycle()
	ctx := l.Watch(context.Background(), syscall.SIGINT, syscall.SIGTERM)

	var order []string
	l.OnShutdown("first-registered", func(context.Context) error {
		order = append(order, "first")
		return nil
	})
	l.OnShutdown("second-registered", func(context.Context) error {
		order = append(order, "second")
		return nil
	})

	l.Deliver(syscall.SIGTERM)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after injected signal")
	}
	if got := l.Signal(); got != syscall.SIGTERM {
		t.Fatalf("Signal() = %v, want SIGTERM", got)
	}

	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("hooks ran %v, want LIFO [second first]", order)
	}

	// Shutdown is idempotent: hooks do not run again.
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("hooks re-ran on second Shutdown: %v", order)
	}
}

// TestLifecycleHookErrors: every hook runs even when one fails; the
// first (i.e. newest-registered) failure is reported, and repeat
// Shutdown calls return the same error.
func TestLifecycleHookErrors(t *testing.T) {
	l := NewLifecycle()
	boom := errors.New("flush failed")
	ran := 0
	l.OnShutdown("older", func(context.Context) error { ran++; return nil })
	l.OnShutdown("newer", func(context.Context) error { ran++; return boom })

	err := l.Shutdown(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Shutdown err = %v, want wrapped flush failure", err)
	}
	if ran != 2 {
		t.Fatalf("ran %d hooks, want 2 (later hooks must still run)", ran)
	}
	if err2 := l.Shutdown(context.Background()); !errors.Is(err2, boom) {
		t.Fatalf("second Shutdown err = %v, want the first error again", err2)
	}
}

// TestLifecycleParentCancel: a cancelled parent tears the watch down
// without a signal.
func TestLifecycleParentCancel(t *testing.T) {
	l := NewLifecycle()
	parent, cancel := context.WithCancel(context.Background())
	ctx := l.Watch(parent, syscall.SIGINT)
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("watch context did not follow parent cancellation")
	}
	if l.Signal() != nil {
		t.Fatalf("Signal() = %v, want nil (no signal arrived)", l.Signal())
	}
}

// TestLifecycleDeliverNonBlocking: a second Deliver while one signal is
// pending must not block (real SIGINT mashing).
func TestLifecycleDeliverNonBlocking(t *testing.T) {
	l := NewLifecycle()
	done := make(chan struct{})
	go func() {
		l.Deliver(syscall.SIGINT)
		l.Deliver(syscall.SIGINT)
		l.Deliver(syscall.SIGTERM)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Deliver blocked with a pending signal")
	}
}
