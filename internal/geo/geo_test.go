package geo

import (
	"testing"

	"squatphi/internal/dnsx"
	"squatphi/internal/simrand"
)

func TestCountryDeterministic(t *testing.T) {
	ip := [4]byte{93, 184, 216, 34}
	if Country(ip) != Country(ip) {
		t.Fatal("Country not deterministic")
	}
}

func TestPrefixClustering(t *testing.T) {
	// All addresses within a /16 share a country.
	base := [4]byte{52, 31, 0, 0}
	want := Country(base)
	r := simrand.New(5)
	for i := 0; i < 100; i++ {
		ip := base
		ip[2], ip[3] = byte(r.Intn(256)), byte(r.Intn(256))
		if Country(ip) != want {
			t.Fatalf("addresses within /16 map to different countries")
		}
	}
}

func TestDistributionShape(t *testing.T) {
	// US must dominate and DE come second-ish (Figure 15); country spread
	// should be wide.
	r := simrand.New(9)
	hist := map[string]int{}
	for i := 0; i < 30000; i++ {
		hist[Country(dnsx.RandomIP(r))]++
	}
	if hist["US"] < hist["DE"] || hist["DE"] < hist["RU"] {
		t.Fatalf("distribution shape off: US=%d DE=%d RU=%d", hist["US"], hist["DE"], hist["RU"])
	}
	usFrac := float64(hist["US"]) / 30000
	if usFrac < 0.35 || usFrac > 0.60 {
		t.Fatalf("US fraction = %f, want ~0.48", usFrac)
	}
	if len(hist) < 40 {
		t.Fatalf("only %d countries seen, want wide spread", len(hist))
	}
}

func TestHistogram(t *testing.T) {
	ips := [][4]byte{{1, 2, 3, 4}, {1, 2, 9, 9}, {200, 100, 1, 1}}
	h := Histogram(ips)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 3 {
		t.Fatalf("histogram total = %d", total)
	}
	if h[Country([4]byte{1, 2, 3, 4})] < 2 {
		t.Fatal("same-prefix IPs not aggregated")
	}
}

func TestCountries(t *testing.T) {
	if Countries() != 53 {
		t.Fatalf("Countries() = %d, want 53 (paper)", Countries())
	}
}

func BenchmarkCountry(b *testing.B) {
	ip := [4]byte{93, 184, 216, 34}
	for i := 0; i < b.N; i++ {
		_ = Country(ip)
	}
}
