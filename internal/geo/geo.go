// Package geo implements the IP-geolocation substrate used to map phishing
// hosts to countries (paper §6.1, Figure 15: 1,021 resolvable phishing IPs
// across 53 countries, led by the US and Germany).
//
// Real geolocation databases are proprietary; this synthetic equivalent
// assigns each /16 prefix a country drawn from a distribution calibrated to
// the paper's figure. Assignment is deterministic: an IP always maps to the
// same country, and nearby addresses cluster like real allocations do.
package geo

// countryWeights approximates Figure 15 (counts out of 1,021), with a tail
// bucket spread over further country codes to reach 53 countries total.
var countryWeights = []struct {
	code   string
	weight int
}{
	{"US", 494}, {"DE", 106}, {"GB", 77}, {"FR", 44}, {"IE", 39},
	{"CA", 34}, {"JP", 32}, {"NL", 29}, {"CH", 13}, {"RU", 9},
	{"AU", 9}, {"SG", 9}, {"BR", 8}, {"IN", 8}, {"IT", 8},
	{"ES", 7}, {"SE", 7}, {"PL", 6}, {"CZ", 6}, {"DK", 5},
	{"FI", 5}, {"NO", 5}, {"AT", 4}, {"BE", 4}, {"PT", 4},
	{"RO", 4}, {"BG", 3}, {"UA", 3}, {"TR", 3}, {"HK", 3},
	{"KR", 3}, {"TW", 3}, {"CN", 3}, {"MX", 2}, {"AR", 2},
	{"CL", 2}, {"CO", 2}, {"ZA", 2}, {"EG", 1}, {"NG", 1},
	{"KE", 1}, {"IL", 1}, {"AE", 1}, {"SA", 1}, {"TH", 1},
	{"VN", 1}, {"ID", 1}, {"MY", 1}, {"PH", 1}, {"NZ", 1},
	{"GR", 1}, {"HU", 1}, {"SK", 1},
}

var totalWeight int

func init() {
	for _, cw := range countryWeights {
		totalWeight += cw.weight
	}
}

// Country returns the ISO country code hosting the given IPv4 address.
func Country(ip [4]byte) string {
	// Hash the /16 so whole prefixes land in one country, like real
	// allocations.
	h := uint64(14695981039346656037)
	h = (h ^ uint64(ip[0])) * 1099511628211
	h = (h ^ uint64(ip[1])) * 1099511628211
	x := int(h % uint64(totalWeight))
	for _, cw := range countryWeights {
		x -= cw.weight
		if x < 0 {
			return cw.code
		}
	}
	return countryWeights[0].code
}

// Countries returns the number of distinct country codes the database can
// produce.
func Countries() int { return len(countryWeights) }

// Histogram tallies countries for a set of IPs, a convenience for the
// Figure 15 experiment.
func Histogram(ips [][4]byte) map[string]int {
	out := map[string]int{}
	for _, ip := range ips {
		out[Country(ip)]++
	}
	return out
}
