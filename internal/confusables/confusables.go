// Package confusables provides a homoglyph (visually confusable character)
// table and a skeleton transform in the style of Unicode UTS #39.
//
// The paper (§3.1) found that existing tools like DNSTwist map only part of
// the confusable space — e.g. 13 of the 23 characters that resemble "a" —
// and missed homograph squatting domains as a result. This package keeps a
// single table that serves both directions:
//
//   - generation: Variants(r) lists characters an attacker could substitute
//     for r when minting a homograph domain;
//   - detection: Skeleton(s) folds every confusable to a canonical ASCII
//     prototype, so a homograph and its target produce the same skeleton.
//
// The table is a curated subset of the Unicode confusables data covering the
// Latin, Cyrillic and Greek lookalikes relevant to domain labels, plus the
// ASCII-internal confusions (0/o, 1/l, rn/m, vv/w, ...) used by real
// squatters.
package confusables

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// toASCII maps each confusable rune to the ASCII prototype it imitates.
// Multi-rune prototypes (e.g. æ -> "ae") are allowed.
var toASCII = map[rune]string{
	// --- Latin letters with diacritics ---
	'à': "a", 'á': "a", 'â': "a", 'ã': "a", 'ä': "a", 'å': "a", 'ā': "a", 'ă': "a", 'ą': "a", 'ǎ': "a",
	'ạ': "a", 'ả': "a", 'ấ': "a", 'ầ': "a", 'ậ': "a", 'ắ': "a", 'ằ': "a", 'ǻ': "a", 'ɑ': "a",
	'è': "e", 'é': "e", 'ê': "e", 'ë': "e", 'ē': "e", 'ĕ': "e", 'ė': "e", 'ę': "e", 'ě': "e",
	'ì': "i", 'í': "i", 'î': "i", 'ï': "i", 'ī': "i", 'ĭ': "i", 'į': "i", 'ı': "i",
	'ò': "o", 'ó': "o", 'ô': "o", 'õ': "o", 'ö': "o", 'ō': "o", 'ŏ': "o", 'ő': "o", 'ǒ': "o", 'ø': "o",
	'ù': "u", 'ú': "u", 'û': "u", 'ü': "u", 'ū': "u", 'ŭ': "u", 'ů': "u", 'ű': "u", 'ų': "u",
	'ý': "y", 'ÿ': "y", 'ŷ': "y",
	'ç': "c", 'ć': "c", 'ĉ': "c", 'ċ': "c", 'č': "c",
	'ñ': "n", 'ń': "n", 'ņ': "n", 'ň': "n",
	'ś': "s", 'ŝ': "s", 'ş': "s", 'š': "s",
	'ź': "z", 'ż': "z", 'ž': "z",
	'ĝ': "g", 'ğ': "g", 'ġ': "g", 'ģ': "g",
	'ĺ': "l", 'ļ': "l", 'ľ': "l", 'ŀ': "l", 'ł': "l",
	'ŕ': "r", 'ŗ': "r", 'ř': "r",
	'ť': "t", 'ţ': "t", 'ŧ': "t",
	'ď': "d", 'đ': "d",
	'ĥ': "h", 'ħ': "h",
	'ĵ': "j", 'ķ': "k", 'ŵ': "w",
	// --- Cyrillic lookalikes ---
	'а': "a", 'е': "e", 'о': "o", 'р': "p", 'с': "c", 'х': "x", 'у': "y",
	'і': "i", 'ј': "j", 'ѕ': "s", 'һ': "h", 'ԁ': "d", 'ԛ': "q", 'ԝ': "w",
	'в': "b", 'к': "k", 'м': "m", 'н': "h", 'т': "t", 'ь': "b", 'г': "r",
	'п': "n", 'и': "u", 'л': "n", 'д': "d", 'б': "b", 'з': "3", 'ч': "4",
	'ж': "x", 'ф': "f", 'ц': "u", 'ш': "w", 'щ': "w", 'э': "e", 'ю': "io", 'я': "r", 'ы': "bi", 'й': "u", 'ъ': "b",
	// --- Greek lookalikes ---
	'α': "a", 'β': "b", 'ε': "e", 'η': "n", 'ι': "i", 'κ': "k", 'ν': "v",
	'ο': "o", 'ρ': "p", 'τ': "t", 'υ': "u", 'χ': "x", 'ω': "w", 'γ': "y",
	'μ': "u", 'σ': "o", 'ϲ': "c", 'ϳ': "j", 'π': "n", 'δ': "d", 'λ': "l",
	'θ': "o", 'φ': "o", 'ψ': "y", 'ξ': "e", 'ζ': "z", 'ς': "s", 'ά': "a", 'έ': "e", 'ί': "i", 'ό': "o", 'ύ': "u", 'ή': "n", 'ώ': "w",
	// --- ASCII-internal confusions ---
	'0': "o", '1': "l", '3': "e", '5': "s",
	// --- Ligatures / composites ---
	'æ': "ae", 'œ': "oe", 'ß': "ss", 'ĳ': "ij",
}

// multiSeq maps multi-character ASCII sequences to the single character they
// imitate visually (and vice versa during generation).
var multiSeq = map[string]string{
	"rn": "m",
	"vv": "w",
	"cl": "d",
	"nn": "m", // at small font sizes
}

// variants is the reverse index: ASCII prototype -> confusable substitutes.
// It is built from the raw curated table, so generation keeps offering 'з'
// as a substitute for "3" even though detection folds both to "e".
var variants map[string][]rune

// fold is toASCII transitively closed: when a prototype character is itself
// confusable ('з' -> "3" and '3' -> "e"), the chain is followed to a fixed
// point. Skeleton uses this closed table — without the closure it was not
// idempotent (Skeleton("з") == "3" but Skeleton("3") == "e").
var fold map[rune]string

// multiSeqKeys is the deterministic application order of the multiSeq
// collapse: the map's keys, sorted once at init. Skeleton previously
// rebuilt and re-sorted this slice on every call — at DNS-scan volume that
// alone was two allocations and a sort per record.
var multiSeqKeys []string

// seqPair is one byte-level multiSeq rule: the two-byte sequence ab
// collapses to rep. All curated sequences are ASCII pairs with single-byte
// replacements; init asserts this so the byte fast path stays exact.
type seqPair struct{ a, b, rep byte }

// seqPairs mirrors multiSeq in multiSeqKeys order for the byte path.
var seqPairs []seqPair

// asciiFold is the byte fast path of the closed fold table: asciiFold[c]
// is the single-byte prototype for an ASCII byte the table folds, or 0
// when c folds to itself. Built at init; init asserts that every ASCII
// fold in the curated table really is single-byte-to-single-byte.
var asciiFold [128]byte

// seqSecond marks bytes that can end a multiSeq pair, so the per-byte
// cleanliness scan pays one table load before touching the pair list.
var seqSecond [128]bool

// dirtyFlags fuses the two per-byte cleanliness predicates — "folds to
// another byte" and "can end a multiSeq pair" — into one table, so
// DirtyASCII answers the common clean byte with a single load.
var dirtyFlags [128]byte

const (
	dirtyFold      = 1 << 0
	dirtySeqSecond = 1 << 1
)

func init() {
	variants = make(map[string][]rune)
	for r, proto := range toASCII {
		variants[proto] = append(variants[proto], r)
	}
	for proto := range variants {
		rs := variants[proto]
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		variants[proto] = rs
	}

	fold = make(map[rune]string, len(toASCII))
	for r, proto := range toASCII {
		// Chains in the curated data are at most two hops; the bound turns
		// an accidental future cycle into a visible test failure (Skeleton
		// idempotence) rather than an infinite loop here.
		for hop := 0; hop < 4; hop++ {
			var b strings.Builder
			changed := false
			for _, pr := range proto {
				if p, ok := toASCII[pr]; ok {
					b.WriteString(p)
					changed = true
				} else {
					b.WriteRune(pr)
				}
			}
			if !changed {
				break
			}
			proto = b.String()
		}
		fold[r] = proto
	}

	multiSeqKeys = make([]string, 0, len(multiSeq))
	for k := range multiSeq {
		multiSeqKeys = append(multiSeqKeys, k)
	}
	sort.Strings(multiSeqKeys)
	for _, k := range multiSeqKeys {
		rep := multiSeq[k]
		if len(k) != 2 || len(rep) != 1 || k[0] >= 0x80 || k[1] >= 0x80 || rep[0] >= 0x80 {
			panic("confusables: multiSeq entries must be ASCII pair -> ASCII byte: " + k)
		}
		seqPairs = append(seqPairs, seqPair{a: k[0], b: k[1], rep: rep[0]})
		seqSecond[k[1]] = true
		dirtyFlags[k[1]] |= dirtySeqSecond
	}
	for r, proto := range fold {
		if r < 0x80 {
			if len(proto) != 1 || proto[0] >= 0x80 {
				panic("confusables: ASCII fold entries must map to one ASCII byte")
			}
			asciiFold[byte(r)] = proto[0]
			dirtyFlags[byte(r)] |= dirtyFold
		}
	}
}

// Variants returns the confusable substitutes for an ASCII character, in a
// deterministic order. The returned slice must not be modified.
func Variants(ascii rune) []rune {
	return variants[string(ascii)]
}

// SequenceVariants returns visually confusable ASCII sequence substitutions
// for a character: e.g. 'm' -> ["rn", "nn"]. Deterministic order.
func SequenceVariants(ascii rune) []string {
	var out []string
	for seq, target := range multiSeq {
		if target == string(ascii) {
			out = append(out, seq)
		}
	}
	sort.Strings(out)
	return out
}

// IsConfusable reports whether r is a known confusable for some ASCII
// character (excluding identity).
func IsConfusable(r rune) bool {
	_, ok := toASCII[r]
	return ok
}

// Fold returns the ASCII prototype for r, or r itself if none is known.
// Prototypes are fully folded themselves: Fold('з') is "e", not "3",
// because '3' in turn imitates "e".
func Fold(r rune) string {
	if p, ok := fold[r]; ok {
		return p
	}
	return string(r)
}

// Skeleton folds every confusable character of s to its ASCII prototype and
// collapses multi-character visual sequences ("rn" -> "m"), producing a
// canonical form: a homograph domain and its target share a skeleton.
// The transform is idempotent: Skeleton(Skeleton(s)) == Skeleton(s).
func Skeleton(s string) string {
	if selfSkeleton(s) {
		return s
	}
	return string(AppendSkeleton(nil, []byte(s)))
}

// AppendSkeleton appends Skeleton(string(src)) to dst and returns the
// extended slice. It is the allocation-free form of Skeleton for hot
// loops: with a reused dst buffer of sufficient capacity it performs no
// allocations on ASCII input.
//
//squat:hot
func AppendSkeleton(dst, src []byte) []byte {
	start := len(dst)
	ascii := true
	for i := 0; i < len(src); i++ {
		if src[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if ascii {
		for i := 0; i < len(src); i++ {
			c := src[i]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if f := asciiFold[c]; f != 0 {
				c = f
			}
			dst = append(dst, c)
		}
	} else {
		// Mirror strings.ToLower + Fold rune by rune; invalid UTF-8 decodes
		// to RuneError exactly as strings.Map replaces it.
		for i := 0; i < len(src); {
			r, size := utf8.DecodeRune(src[i:])
			i += size
			r = unicode.ToLower(r)
			if p, ok := fold[r]; ok {
				dst = append(dst, p...)
			} else {
				dst = utf8.AppendRune(dst, r)
			}
		}
	}
	return collapseSeqs(dst, start)
}

// collapseSeqs applies the multiSeq pair collapse to buf[start:] in place,
// in deterministic key order until fixpoint — byte-for-byte the semantics
// of repeated strings.ReplaceAll over the sorted keys (left-to-right,
// non-overlapping per key; replacements may cascade, e.g. "rnn" -> "mn"
// then the next round's "nn" never re-forms, while "rrn" -> "rm").
//
//squat:hot
func collapseSeqs(buf []byte, start int) []byte {
	for {
		// One combined pass first: if no pair occurs anywhere (the common
		// case), skip the per-key replacement passes entirely.
		found := false
	scan:
		for i := start + 1; i < len(buf); i++ {
			if c := buf[i]; c < utf8.RuneSelf && seqSecond[c] {
				for _, p := range seqPairs {
					if buf[i-1] == p.a && buf[i] == p.b {
						found = true
						break scan
					}
				}
			}
		}
		if !found {
			return buf
		}
		for _, p := range seqPairs {
			w := start
			for r := start; r < len(buf); {
				if r+1 < len(buf) && buf[r] == p.a && buf[r+1] == p.b {
					buf[w] = p.rep
					w++
					r += 2
				} else {
					buf[w] = buf[r]
					w++
					r++
				}
			}
			buf = buf[:w]
		}
	}
}

// SelfSkeletonASCII reports whether b is pure ASCII and already its own
// skeleton: no byte the fold table touches, no upper-case letter, and no
// multiSeq pair. For such labels a matcher can reuse the label bytes as
// the skeleton without computing anything — the common case for the
// overwhelmingly-ASCII background of a DNS snapshot.
//
//squat:hot
func SelfSkeletonASCII(b []byte) bool { return selfSkeleton(b) }

// selfSkeleton is SelfSkeletonASCII generic over both byte views, so the
// string-keyed cold paths (Skeleton, matcher construction) share the exact
// predicate without a conversion.
//
//squat:hot
func selfSkeleton[T string | []byte](b T) bool {
	var prev byte
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= utf8.RuneSelf || asciiFold[c] != 0 || ('A' <= c && c <= 'Z') {
			return false
		}
		if i > 0 && seqSecond[c] {
			for _, p := range seqPairs {
				if prev == p.a && c == p.b {
					return false
				}
			}
		}
		prev = c
	}
	return true
}

// DirtyASCII reports whether lowercase-ASCII byte c — preceded by prev —
// breaks the self-skeleton property: the fold table maps c to another
// byte (e.g. '1' -> 'l'), or (prev, c) forms a multiSeq confusable pair
// (e.g. 'r','n' -> 'm'). Both bytes must be < 128. Callers fuse it into
// an existing byte scan; the common (clean) case costs one table load.
//
//squat:hot
func DirtyASCII(prev, c byte) bool {
	f := dirtyFlags[c]
	if f == 0 {
		return false
	}
	if f&dirtyFold != 0 {
		return true
	}
	for _, p := range seqPairs {
		if prev == p.a && c == p.b {
			return true
		}
	}
	return false
}

// SkeletonEqual reports whether two strings are visually confusable with
// each other under the skeleton transform.
func SkeletonEqual(a, b string) bool { return Skeleton(a) == Skeleton(b) }

// CountVariants returns the number of confusable substitutes known for the
// ASCII character c. Used to compare table completeness against legacy tools
// (ablation in DESIGN.md §4).
func CountVariants(c rune) int { return len(Variants(c)) }
