// Package confusables provides a homoglyph (visually confusable character)
// table and a skeleton transform in the style of Unicode UTS #39.
//
// The paper (§3.1) found that existing tools like DNSTwist map only part of
// the confusable space — e.g. 13 of the 23 characters that resemble "a" —
// and missed homograph squatting domains as a result. This package keeps a
// single table that serves both directions:
//
//   - generation: Variants(r) lists characters an attacker could substitute
//     for r when minting a homograph domain;
//   - detection: Skeleton(s) folds every confusable to a canonical ASCII
//     prototype, so a homograph and its target produce the same skeleton.
//
// The table is a curated subset of the Unicode confusables data covering the
// Latin, Cyrillic and Greek lookalikes relevant to domain labels, plus the
// ASCII-internal confusions (0/o, 1/l, rn/m, vv/w, ...) used by real
// squatters.
package confusables

import (
	"sort"
	"strings"
)

// toASCII maps each confusable rune to the ASCII prototype it imitates.
// Multi-rune prototypes (e.g. æ -> "ae") are allowed.
var toASCII = map[rune]string{
	// --- Latin letters with diacritics ---
	'à': "a", 'á': "a", 'â': "a", 'ã': "a", 'ä': "a", 'å': "a", 'ā': "a", 'ă': "a", 'ą': "a", 'ǎ': "a",
	'ạ': "a", 'ả': "a", 'ấ': "a", 'ầ': "a", 'ậ': "a", 'ắ': "a", 'ằ': "a", 'ǻ': "a", 'ɑ': "a",
	'è': "e", 'é': "e", 'ê': "e", 'ë': "e", 'ē': "e", 'ĕ': "e", 'ė': "e", 'ę': "e", 'ě': "e",
	'ì': "i", 'í': "i", 'î': "i", 'ï': "i", 'ī': "i", 'ĭ': "i", 'į': "i", 'ı': "i",
	'ò': "o", 'ó': "o", 'ô': "o", 'õ': "o", 'ö': "o", 'ō': "o", 'ŏ': "o", 'ő': "o", 'ǒ': "o", 'ø': "o",
	'ù': "u", 'ú': "u", 'û': "u", 'ü': "u", 'ū': "u", 'ŭ': "u", 'ů': "u", 'ű': "u", 'ų': "u",
	'ý': "y", 'ÿ': "y", 'ŷ': "y",
	'ç': "c", 'ć': "c", 'ĉ': "c", 'ċ': "c", 'č': "c",
	'ñ': "n", 'ń': "n", 'ņ': "n", 'ň': "n",
	'ś': "s", 'ŝ': "s", 'ş': "s", 'š': "s",
	'ź': "z", 'ż': "z", 'ž': "z",
	'ĝ': "g", 'ğ': "g", 'ġ': "g", 'ģ': "g",
	'ĺ': "l", 'ļ': "l", 'ľ': "l", 'ŀ': "l", 'ł': "l",
	'ŕ': "r", 'ŗ': "r", 'ř': "r",
	'ť': "t", 'ţ': "t", 'ŧ': "t",
	'ď': "d", 'đ': "d",
	'ĥ': "h", 'ħ': "h",
	'ĵ': "j", 'ķ': "k", 'ŵ': "w",
	// --- Cyrillic lookalikes ---
	'а': "a", 'е': "e", 'о': "o", 'р': "p", 'с': "c", 'х': "x", 'у': "y",
	'і': "i", 'ј': "j", 'ѕ': "s", 'һ': "h", 'ԁ': "d", 'ԛ': "q", 'ԝ': "w",
	'в': "b", 'к': "k", 'м': "m", 'н': "h", 'т': "t", 'ь': "b", 'г': "r",
	'п': "n", 'и': "u", 'л': "n", 'д': "d", 'б': "b", 'з': "3", 'ч': "4",
	'ж': "x", 'ф': "f", 'ц': "u", 'ш': "w", 'щ': "w", 'э': "e", 'ю': "io", 'я': "r", 'ы': "bi", 'й': "u", 'ъ': "b",
	// --- Greek lookalikes ---
	'α': "a", 'β': "b", 'ε': "e", 'η': "n", 'ι': "i", 'κ': "k", 'ν': "v",
	'ο': "o", 'ρ': "p", 'τ': "t", 'υ': "u", 'χ': "x", 'ω': "w", 'γ': "y",
	'μ': "u", 'σ': "o", 'ϲ': "c", 'ϳ': "j", 'π': "n", 'δ': "d", 'λ': "l",
	'θ': "o", 'φ': "o", 'ψ': "y", 'ξ': "e", 'ζ': "z", 'ς': "s", 'ά': "a", 'έ': "e", 'ί': "i", 'ό': "o", 'ύ': "u", 'ή': "n", 'ώ': "w",
	// --- ASCII-internal confusions ---
	'0': "o", '1': "l", '3': "e", '5': "s",
	// --- Ligatures / composites ---
	'æ': "ae", 'œ': "oe", 'ß': "ss", 'ĳ': "ij",
}

// multiSeq maps multi-character ASCII sequences to the single character they
// imitate visually (and vice versa during generation).
var multiSeq = map[string]string{
	"rn": "m",
	"vv": "w",
	"cl": "d",
	"nn": "m", // at small font sizes
}

// variants is the reverse index: ASCII prototype -> confusable substitutes.
// It is built from the raw curated table, so generation keeps offering 'з'
// as a substitute for "3" even though detection folds both to "e".
var variants map[string][]rune

// fold is toASCII transitively closed: when a prototype character is itself
// confusable ('з' -> "3" and '3' -> "e"), the chain is followed to a fixed
// point. Skeleton uses this closed table — without the closure it was not
// idempotent (Skeleton("з") == "3" but Skeleton("3") == "e").
var fold map[rune]string

func init() {
	variants = make(map[string][]rune)
	for r, proto := range toASCII {
		variants[proto] = append(variants[proto], r)
	}
	for proto := range variants {
		rs := variants[proto]
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		variants[proto] = rs
	}

	fold = make(map[rune]string, len(toASCII))
	for r, proto := range toASCII {
		// Chains in the curated data are at most two hops; the bound turns
		// an accidental future cycle into a visible test failure (Skeleton
		// idempotence) rather than an infinite loop here.
		for hop := 0; hop < 4; hop++ {
			var b strings.Builder
			changed := false
			for _, pr := range proto {
				if p, ok := toASCII[pr]; ok {
					b.WriteString(p)
					changed = true
				} else {
					b.WriteRune(pr)
				}
			}
			if !changed {
				break
			}
			proto = b.String()
		}
		fold[r] = proto
	}
}

// Variants returns the confusable substitutes for an ASCII character, in a
// deterministic order. The returned slice must not be modified.
func Variants(ascii rune) []rune {
	return variants[string(ascii)]
}

// SequenceVariants returns visually confusable ASCII sequence substitutions
// for a character: e.g. 'm' -> ["rn", "nn"]. Deterministic order.
func SequenceVariants(ascii rune) []string {
	var out []string
	for seq, target := range multiSeq {
		if target == string(ascii) {
			out = append(out, seq)
		}
	}
	sort.Strings(out)
	return out
}

// IsConfusable reports whether r is a known confusable for some ASCII
// character (excluding identity).
func IsConfusable(r rune) bool {
	_, ok := toASCII[r]
	return ok
}

// Fold returns the ASCII prototype for r, or r itself if none is known.
// Prototypes are fully folded themselves: Fold('з') is "e", not "3",
// because '3' in turn imitates "e".
func Fold(r rune) string {
	if p, ok := fold[r]; ok {
		return p
	}
	return string(r)
}

// Skeleton folds every confusable character of s to its ASCII prototype and
// collapses multi-character visual sequences ("rn" -> "m"), producing a
// canonical form: a homograph domain and its target share a skeleton.
// The transform is idempotent: Skeleton(Skeleton(s)) == Skeleton(s).
func Skeleton(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range strings.ToLower(s) {
		b.WriteString(Fold(r))
	}
	folded := b.String()
	// Collapse multi-character sequences. Longest-first is irrelevant here
	// since all sequences are length 2, but replacements may cascade
	// ("rnn" is ambiguous); apply in deterministic key order until fixpoint.
	keys := make([]string, 0, len(multiSeq))
	for k := range multiSeq {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for {
		prev := folded
		for _, k := range keys {
			folded = strings.ReplaceAll(folded, k, multiSeq[k])
		}
		if folded == prev {
			return folded
		}
	}
}

// SkeletonEqual reports whether two strings are visually confusable with
// each other under the skeleton transform.
func SkeletonEqual(a, b string) bool { return Skeleton(a) == Skeleton(b) }

// CountVariants returns the number of confusable substitutes known for the
// ASCII character c. Used to compare table completeness against legacy tools
// (ablation in DESIGN.md §4).
func CountVariants(c rune) int { return len(Variants(c)) }
