package confusables

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzSkeleton checks the documented contract on arbitrary input: the
// transform never panics and is idempotent. The "з" seed is the regression
// for the unclosed fold table (Skeleton("з") used to yield "3", whose own
// skeleton is "e"); testdata/fuzz/FuzzSkeleton pins it too.
func FuzzSkeleton(f *testing.F) {
	seeds := []string{
		"",
		"paypal.com",
		"pаypаl.com", // Cyrillic а
		"fàcebook",
		"з", "ч", "зз3", // prototypes that are themselves confusable
		"rn", "rnn", "rrn", "vvv", "clcl", // cascading sequence collapses
		"ΑΒΓαβγ",
		"ыюя",
		"æœßĳ",
		"0123456789",
		"xn--fcebook-8va.com",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sk := Skeleton(s)
		if again := Skeleton(sk); again != sk {
			t.Fatalf("Skeleton not idempotent on %q: %q -> %q", s, sk, again)
		}
		if strings.ContainsAny(s, "зч") && strings.ContainsAny(sk, "зч") {
			t.Fatalf("confusable survived folding: %q -> %q", s, sk)
		}
	})
}

// FuzzFold checks that folding any rune yields a string that is a fixed
// point of further folding — the transitive-closure property of the table.
func FuzzFold(f *testing.F) {
	f.Add(int32('з'))
	f.Add(int32('3'))
	f.Add(int32('a'))
	f.Add(int32('ю'))
	f.Fuzz(func(t *testing.T, r rune) {
		if !utf8.ValidRune(r) {
			return
		}
		p := Fold(r)
		var again strings.Builder
		for _, pr := range p {
			again.WriteString(Fold(pr))
		}
		if again.String() != p {
			t.Fatalf("Fold(%q) = %q is not fully folded (refolds to %q)", r, p, again.String())
		}
	})
}
