package confusables

import (
	"sort"
	"strings"
	"testing"
)

// skeletonReference is the pre-optimization Skeleton implementation,
// verbatim: per-call builder, per-call key slice and sort, ReplaceAll
// fixpoint. The fast paths (precomputed keys, AppendSkeleton, the
// SelfSkeletonASCII shortcut) must agree with it byte for byte.
func skeletonReference(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range strings.ToLower(s) {
		b.WriteString(Fold(r))
	}
	folded := b.String()
	keys := make([]string, 0, len(multiSeq))
	for k := range multiSeq {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for {
		prev := folded
		for _, k := range keys {
			folded = strings.ReplaceAll(folded, k, multiSeq[k])
		}
		if folded == prev {
			return folded
		}
	}
}

// skeletonCorpus mixes the hot-path shapes (plain ASCII labels) with every
// edge the byte path special-cases: folds, pairs, cascades, case, IDN
// text, invalid UTF-8.
var skeletonCorpus = []string{
	"", "paypal", "facebook", "google", "citibank", "amazon",
	"cloud-fresh", "smartlabs", "designstudio",
	"paypa1", "faceb00k", "g0ogle", "c1t1bank", "amaz0n", "5hop", "3xample",
	"rn", "rnn", "rrn", "nnn", "vvv", "clcl", "cl0ud", "learn", "corner",
	"PayPal", "FACEBOOK", "MiXeD-Case",
	"pаypаl", "fàcebook", "зз3", "ыюя", "æœßĳ", "ΑΒΓαβγ",
	"xn--fcebook-8va", "0123456789",
	"a.b.c", "trailing.", "-hyphen-", "\xff\xfe broken \x80utf8",
	"İstanbul", "ǅungla", // special-case Unicode lowering
}

func TestSkeletonMatchesReference(t *testing.T) {
	for _, s := range skeletonCorpus {
		want := skeletonReference(s)
		if got := Skeleton(s); got != want {
			t.Errorf("Skeleton(%q) = %q, reference %q", s, got, want)
		}
		if got := string(AppendSkeleton(nil, []byte(s))); got != want {
			t.Errorf("AppendSkeleton(%q) = %q, reference %q", s, got, want)
		}
		// Appending after existing content must leave the prefix alone.
		buf := AppendSkeleton([]byte("prefix|"), []byte(s))
		if got := string(buf); got != "prefix|"+want {
			t.Errorf("AppendSkeleton with prefix on %q = %q, want %q", s, got, "prefix|"+want)
		}
	}
}

func TestSelfSkeletonASCIIAgreesWithSkeleton(t *testing.T) {
	for _, s := range skeletonCorpus {
		self := SelfSkeletonASCII([]byte(s))
		if self && Skeleton(s) != s {
			t.Errorf("SelfSkeletonASCII(%q) = true but Skeleton differs: %q", s, Skeleton(s))
		}
		// The predicate must never claim false for a string whose skeleton
		// is itself AND is pure lowercase ASCII without foldables — spot
		// check the known-clean shapes.
	}
	for _, clean := range []string{"", "paypal", "shop-fresh", "qwertyuiop", "a2b4c6"} {
		if !SelfSkeletonASCII([]byte(clean)) {
			t.Errorf("SelfSkeletonASCII(%q) = false, want true", clean)
		}
	}
	for _, dirty := range []string{"paypa1", "g0ogle", "corn", "clip", "Upper", "pаypаl", "5x", "3x"} {
		if SelfSkeletonASCII([]byte(dirty)) {
			t.Errorf("SelfSkeletonASCII(%q) = true, want false", dirty)
		}
	}
}

// TestAppendSkeletonZeroAlloc pins the hot-loop contract: folding an ASCII
// label into a reused buffer allocates nothing.
func TestAppendSkeletonZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, 64)
	src := []byte("faceb00k-login")
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendSkeleton(buf[:0], src)
	}); n != 0 {
		t.Errorf("AppendSkeleton allocated %.1f times per run, want 0", n)
	}
}

func BenchmarkSkeletonReference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		skeletonReference("cloudfresh-market")
	}
}

func BenchmarkSkeletonFast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Skeleton("cloudfresh-market")
	}
}

func BenchmarkAppendSkeleton(b *testing.B) {
	b.ReportAllocs()
	buf := make([]byte, 0, 64)
	src := []byte("cloudfresh-market")
	for i := 0; i < b.N; i++ {
		buf = AppendSkeleton(buf[:0], src)
	}
}

// FuzzSkeletonParity drives the byte fast path against the reference
// implementation on arbitrary input.
func FuzzSkeletonParity(f *testing.F) {
	for _, s := range skeletonCorpus {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		want := skeletonReference(s)
		if got := Skeleton(s); got != want {
			t.Fatalf("Skeleton(%q) = %q, reference %q", s, got, want)
		}
		if got := string(AppendSkeleton(nil, []byte(s))); got != want {
			t.Fatalf("AppendSkeleton(%q) = %q, reference %q", s, got, want)
		}
		if SelfSkeletonASCII([]byte(s)) && want != s {
			t.Fatalf("SelfSkeletonASCII(%q) = true but skeleton is %q", s, want)
		}
	})
}
