package confusables

import (
	"testing"
	"testing/quick"
)

func TestFoldKnown(t *testing.T) {
	cases := []struct {
		in   rune
		want string
	}{
		{'à', "a"}, {'0', "o"}, {'1', "l"}, {'а', "a"}, {'κ', "k"},
		{'æ', "ae"}, {'ß', "ss"}, {'x', "x"}, {'q', "q"},
	}
	for _, c := range cases {
		if got := Fold(c.in); got != c.want {
			t.Errorf("Fold(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSkeletonHomographs(t *testing.T) {
	cases := []struct{ a, b string }{
		{"fàcebook.com", "facebook.com"},
		{"faceb00k.pw", "facebook.pw"},   // paper Table 1
		{"gооgle.com", "google.com"},     // Cyrillic о
		{"facebooκ.com", "facebook.com"}, // paper Table 10, Greek κ
		{"paypa1.com", "paypal.com"},
		{"rnicrosoft.com", "microsoft.com"},
		{"vvikipedia.org", "wikipedia.org"},
	}
	for _, c := range cases {
		if !SkeletonEqual(c.a, c.b) {
			t.Errorf("SkeletonEqual(%q, %q) = false: %q vs %q", c.a, c.b, Skeleton(c.a), Skeleton(c.b))
		}
	}
}

func TestSkeletonDistinguishes(t *testing.T) {
	cases := []struct{ a, b string }{
		{"facebook.com", "faceboak.com"},
		{"google.com", "goggle.com"},
		{"paypal.com", "paypals.com"},
	}
	for _, c := range cases {
		if SkeletonEqual(c.a, c.b) {
			t.Errorf("SkeletonEqual(%q, %q) = true, want false", c.a, c.b)
		}
	}
}

func TestSkeletonIdempotent(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		once := Skeleton(s)
		return Skeleton(once) == once
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSkeletonCaseInsensitive(t *testing.T) {
	if Skeleton("FaceBook") != Skeleton("facebook") {
		t.Error("Skeleton is case sensitive")
	}
}

func TestVariantsRoundTrip(t *testing.T) {
	// Every variant of an ASCII letter must fold back to that letter.
	for c := 'a'; c <= 'z'; c++ {
		for _, v := range Variants(c) {
			if Fold(v) != string(c) {
				t.Errorf("Variants(%q) includes %q which folds to %q", c, v, Fold(v))
			}
		}
	}
}

func TestVariantsDeterministic(t *testing.T) {
	a := Variants('a')
	b := Variants('a')
	if len(a) != len(b) {
		t.Fatal("Variants length unstable")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Variants order unstable")
		}
	}
}

func TestVariantCoverageBeatsLegacyTools(t *testing.T) {
	// The paper notes DNSTwist knows only 13 of the lookalikes for 'a'.
	// Our curated table must cover more than that legacy baseline for the
	// hot vowels, and at least a few options for every ASCII letter that
	// real squatters target.
	if n := CountVariants('a'); n <= 13 {
		t.Errorf("CountVariants('a') = %d, want > 13 (DNSTwist baseline)", n)
	}
	for _, c := range "aeiou" {
		if CountVariants(c) < 5 {
			t.Errorf("CountVariants(%q) = %d, want >= 5", c, CountVariants(c))
		}
	}
}

func TestSequenceVariants(t *testing.T) {
	m := SequenceVariants('m')
	found := false
	for _, s := range m {
		if s == "rn" {
			found = true
		}
	}
	if !found {
		t.Errorf("SequenceVariants('m') = %v, want to include \"rn\"", m)
	}
	if len(SequenceVariants('z')) != 0 {
		t.Error("SequenceVariants('z') should be empty")
	}
}

func TestIsConfusable(t *testing.T) {
	if !IsConfusable('а') { // Cyrillic
		t.Error("IsConfusable missed Cyrillic а")
	}
	if IsConfusable('a') { // plain ASCII
		t.Error("IsConfusable flagged plain ASCII a")
	}
	if !IsConfusable('0') {
		t.Error("IsConfusable missed digit 0")
	}
}

func TestSkeletonASCIIOutput(t *testing.T) {
	// Skeletons of domain-ish strings must be pure ASCII so they can be
	// compared against brand domains directly.
	for _, s := range []string{"fàcebook.com", "пример.com", "παράδειγμα.org"} {
		for _, r := range Skeleton(s) {
			if r >= 0x80 {
				// Not all of Unicode is in the curated table; but the
				// curated scripts must fold fully.
				t.Errorf("Skeleton(%q) contains non-ASCII %q", s, r)
			}
		}
	}
}

func BenchmarkSkeleton(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Skeleton("xn--fcebook-8va.com resolved fàcebook.com")
	}
}
