// Package simrand provides a deterministic, splittable pseudo-random number
// generator used by every synthetic-data generator in this repository.
//
// Determinism matters here: the paper's experiments run against a fixed
// snapshot of the Internet, and ours run against a fixed synthetic world.
// Splitting lets independent subsystems (DNS snapshot, web world, PhishTank
// feed, ...) derive uncorrelated streams from one root seed without sharing
// mutable state, so concurrent generators stay reproducible.
//
// The generator is SplitMix64 (Steele et al., "Fast Splittable Pseudorandom
// Number Generators"), which has a trivially splittable state and passes
// BigCrush for the 64-bit outputs we need.
package simrand

import "math"

// RNG is a splittable SplitMix64 generator. The zero value is a valid
// generator seeded with 0; prefer New to make the seed explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from r, keyed by label, without
// disturbing r's own stream. Two splits with different labels produce
// uncorrelated streams; the same label always produces the same stream.
func (r *RNG) Split(label string) *RNG {
	h := r.state + 0x9e3779b97f4a7c15
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	return &RNG{state: mix(h)}
}

// SplitN derives an independent generator keyed by an index, for fan-out
// over numbered shards.
func (r *RNG) SplitN(n uint64) *RNG {
	return &RNG{state: mix(r.state ^ (n+1)*0xbf58476d1ce4e5b9)}
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill for
	// simulation workloads; modulo bias is negligible for n << 2^64.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0) by nudging u1 off zero.
	u1 := r.Float64()
	if u1 == 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Zipf returns an integer in [0, n) drawn from a Zipf-like distribution with
// exponent s (s > 0). Small ranks are heavily favoured, matching the skewed
// per-brand distributions the paper measures (Figures 3, 5, 11).
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("simrand: Zipf with non-positive n")
	}
	// Inverse-CDF sampling over the harmonic weights. For simulation sizes
	// (n up to a few thousand brands) a linear scan is fine and allocation
	// free when the caller caches nothing.
	target := r.Float64() * harmonic(n, s)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		if sum >= target {
			return k - 1
		}
	}
	return n - 1
}

func harmonic(n int, s float64) float64 {
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
	}
	return sum
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Letters returns an n-character lowercase ASCII letter string.
func (r *RNG) Letters(n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}
