package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	s1 := root.Split("dns")
	s2 := root.Split("web")
	s1again := New(7).Split("dns")
	if s1.Uint64() != s1again.Uint64() {
		t.Fatal("Split is not deterministic for the same label")
	}
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("splits with different labels correlate")
	}
	// Splitting must not disturb the parent stream.
	p1 := New(7)
	p2 := New(7)
	_ = p2.Split("anything")
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split mutated the parent stream")
	}
}

func TestSplitNDeterminism(t *testing.T) {
	a := New(9).SplitN(3)
	b := New(9).SplitN(3)
	c := New(9).SplitN(4)
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitN not deterministic")
	}
	if New(9).SplitN(3).Uint64() == c.Uint64() {
		t.Fatal("SplitN streams for different indices correlate")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		v := New(seed).Float64()
		return v >= 0 && v < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %f, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(17)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[r.Zipf(100, 1.0)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Head mass: top-10 ranks should dominate at s=1.
	head := 0
	for _, c := range counts[:10] {
		head += c
	}
	if head < 50000 {
		t.Fatalf("Zipf head mass %d/100000, want majority in top-10", head)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 5000; i++ {
		v := r.Zipf(7, 1.2)
		if v < 0 || v >= 7 {
			t.Fatalf("Zipf(7) = %d out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d != %d", got, sum)
	}
}

func TestLetters(t *testing.T) {
	s := New(29).Letters(64)
	if len(s) != 64 {
		t.Fatalf("Letters(64) length = %d", len(s))
	}
	for _, c := range s {
		if c < 'a' || c > 'z' {
			t.Fatalf("Letters produced non-letter %q", c)
		}
	}
}

func TestPick(t *testing.T) {
	r := New(31)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick over 100 draws saw %d/3 elements", len(seen))
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %f", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Zipf(702, 1.1)
	}
}
