package blacklist

import (
	"testing"

	"squatphi/internal/webworld"
)

func populations(t testing.TB) (squatPhish, nonSquatPhish []*webworld.Site) {
	t.Helper()
	w := webworld.Build(webworld.Config{SquattingDomains: 60000, NonSquattingPhish: 1500, Seed: 33})
	squatPhish = w.PhishingSites()
	for _, d := range w.NonSquattingPhish {
		nonSquatPhish = append(nonSquatPhish, w.Sites[d])
	}
	return
}

func TestSquattingPhishingEvadesBlacklists(t *testing.T) {
	sq, _ := populations(t)
	if len(sq) < 80 {
		t.Fatalf("only %d squatting phishing sites", len(sq))
	}
	svc := NewService()
	sum := svc.Summarize(sq, 30)
	undetectedFrac := float64(sum.Undetect) / float64(sum.Total)
	if undetectedFrac < 0.85 {
		t.Fatalf("undetected = %.2f, want >= 0.85 (paper: 91.5%%)", undetectedFrac)
	}
	// VT should catch the most among the groups (Table 12).
	if sum.ByVT < sum.ByFeed || sum.ByVT < sum.ByECrimeX {
		t.Fatalf("VT=%d feed=%d ecx=%d: VT should dominate", sum.ByVT, sum.ByFeed, sum.ByECrimeX)
	}
}

func TestOrdinaryPhishingIsCaught(t *testing.T) {
	_, ns := populations(t)
	svc := NewService()
	sum := svc.Summarize(ns, 30)
	caughtFrac := 1 - float64(sum.Undetect)/float64(sum.Total)
	if caughtFrac < 0.80 {
		t.Fatalf("ordinary phishing caught = %.2f, want high", caughtFrac)
	}
}

func TestLatencyMonotonic(t *testing.T) {
	_, ns := populations(t)
	svc := NewService()
	early := svc.Summarize(ns, 0)
	late := svc.Summarize(ns, 30)
	if early.Undetect < late.Undetect {
		t.Fatal("detections decreased over time")
	}
	if early.Undetect == late.Undetect {
		t.Fatal("latency model has no effect")
	}
}

func TestBenignNeverListed(t *testing.T) {
	w := webworld.Build(webworld.Config{SquattingDomains: 2000, NonSquattingPhish: 100, Seed: 9})
	svc := NewService()
	for _, d := range w.SquattingDomains {
		s := w.Sites[d]
		if s.Kind != webworld.Phishing && svc.Detected(s, 60) {
			t.Fatalf("benign site %s blacklisted", d)
		}
	}
	if svc.Detected(nil, 60) {
		t.Fatal("nil site detected")
	}
}

func TestCheckDeterministic(t *testing.T) {
	sq, _ := populations(t)
	svc := NewService()
	for _, s := range sq[:10] {
		a := svc.Check(s, 30)
		b := svc.Check(s, 30)
		if len(a) != len(b) {
			t.Fatal("Check not deterministic")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("Check hit order unstable")
			}
		}
	}
}

func TestEngineCount(t *testing.T) {
	svc := NewService()
	if len(svc.Engines) != 72 {
		t.Fatalf("engines = %d, want 72 (70 VT + feed + eCrimeX)", len(svc.Engines))
	}
	names := map[string]bool{}
	for _, e := range svc.Engines {
		if names[e.Name] {
			t.Fatalf("duplicate engine name %s", e.Name)
		}
		names[e.Name] = true
	}
}

func BenchmarkSummarize(b *testing.B) {
	w := webworld.Build(webworld.Config{SquattingDomains: 20000, NonSquattingPhish: 500, Seed: 3})
	sites := w.PhishingSites()
	svc := NewService()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = svc.Summarize(sites, 30)
	}
}
