package blacklist

import (
	"testing"

	"squatphi/internal/webworld"
)

func firstUndetectedPhish(t *testing.T, svc *Service) *webworld.Site {
	t.Helper()
	w := webworld.Build(webworld.Config{SquattingDomains: 30000, NonSquattingPhish: 200, Seed: 51})
	for _, s := range w.PhishingSites() {
		if !svc.Detected(s, 60) {
			return s
		}
	}
	t.Fatal("no undetected phishing site found")
	return nil
}

func TestReportListsAfterLatency(t *testing.T) {
	svc := NewService()
	site := firstUndetectedPhish(t, svc)

	svc.Report(site.Domain, 10)
	if svc.Detected(site, 10) {
		t.Fatal("listed immediately, want review latency")
	}
	if svc.Detected(site, 10+reportLatencyDays-1) {
		t.Fatal("listed before latency elapsed")
	}
	if !svc.Detected(site, 10+reportLatencyDays) {
		t.Fatal("not listed after review latency")
	}
	hits := svc.Check(site, 30)
	if len(hits) != 1 || hits[0] != "phishtank-list" {
		t.Fatalf("hits = %v, want the feed only", hits)
	}
}

func TestReportEarlierSubmissionWins(t *testing.T) {
	svc := NewService()
	site := firstUndetectedPhish(t, svc)
	svc.Report(site.Domain, 20)
	svc.Report(site.Domain, 5)
	if !svc.Detected(site, 5+reportLatencyDays) {
		t.Fatal("earlier submission not honoured")
	}
	svc.Report(site.Domain, 25) // later re-report must not delay listing
	if !svc.Detected(site, 5+reportLatencyDays) {
		t.Fatal("re-report delayed the listing")
	}
}

func TestReportNoDuplicateFeedHit(t *testing.T) {
	// A domain that the feed catches organically AND is reported must not
	// produce duplicate "phishtank-list" entries.
	svc := NewService()
	w := webworld.Build(webworld.Config{SquattingDomains: 1000, NonSquattingPhish: 400, Seed: 8})
	for _, d := range w.NonSquattingPhish {
		site := w.Sites[d]
		svc.Report(d, 0)
		hits := svc.Check(site, 30)
		seen := map[string]bool{}
		for _, h := range hits {
			if seen[h] {
				t.Fatalf("duplicate hit %q for %s", h, d)
			}
			seen[h] = true
		}
	}
}

func TestReportDoesNotAffectOthers(t *testing.T) {
	svc := NewService()
	w := webworld.Build(webworld.Config{SquattingDomains: 30000, NonSquattingPhish: 100, Seed: 51})
	var a, b *webworld.Site
	for _, s := range w.PhishingSites() {
		if svc.Detected(s, 60) {
			continue
		}
		if a == nil {
			a = s
		} else {
			b = s
			break
		}
	}
	if a == nil || b == nil {
		t.Skip("need two undetected sites")
	}
	svc.Report(a.Domain, 0)
	if svc.Detected(b, 30) {
		t.Fatal("reporting one domain listed another")
	}
}
