// Package blacklist simulates the phishing blacklist ecosystem the paper
// evaluates evasion against (§6.3, Table 12): the crowdsourced feed list,
// a VirusTotal-style aggregator of 70+ engines, and an APWG eCrimeX-style
// industry list.
//
// Calibration: the blacklists collectively flag only ~8.5% of squatting
// phishing domains within a month (VT engines 8.5%, feed ~0.1%, eCrimeX
// ~0.2%), while ordinary phishing on compromised hosts is blacklisted
// within ~10 days (Han et al., cited in §6.3). Detection is deterministic
// per domain so repeated queries agree.
package blacklist

import (
	"sort"
	"sync"

	"squatphi/internal/webworld"
)

// Engine is one blacklist source.
type Engine struct {
	Name string
	// SquatProb is the probability a squatting phishing domain is listed
	// within the measurement month.
	SquatProb float64
	// NonSquatProb is the probability an ordinary (non-squatting) phishing
	// page is listed within the month.
	NonSquatProb float64
	// LatencyDays is the typical listing delay for pages it does catch.
	LatencyDays int
}

// Service aggregates the engines.
type Service struct {
	Engines []Engine

	mu sync.RWMutex
	// reported holds manually-submitted domains and the day they were
	// accepted (paper §7: the authors reported 1,015 URLs one by one).
	reported map[string]int
}

// NewService builds the calibrated ecosystem: the crowdsourced feed,
// eCrimeX, and 70 VirusTotal engines of varying quality.
func NewService() *Service {
	s := &Service{}
	s.Engines = append(s.Engines,
		Engine{Name: "phishtank-list", SquatProb: 0.001, NonSquatProb: 0.80, LatencyDays: 6},
		Engine{Name: "ecrimex", SquatProb: 0.002, NonSquatProb: 0.60, LatencyDays: 8},
	)
	// 70 VT engines: individually weak on squatting phishing; collectively
	// they reach ~8.5%. Per-engine probability p solves 1-(1-p)^70 = 0.085.
	const vtEngines = 70
	const perEngine = 0.00127
	for i := 0; i < vtEngines; i++ {
		s.Engines = append(s.Engines, Engine{
			Name:         vtName(i),
			SquatProb:    perEngine,
			NonSquatProb: 0.035, // collectively ~90% for ordinary phishing
			LatencyDays:  4 + i%10,
		})
	}
	return s
}

func vtName(i int) string {
	return "vt-engine-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// reportLatencyDays models the review delay between a manual submission
// and the domain appearing on the receiving list.
const reportLatencyDays = 3

// Report manually submits a phishing domain at the given day, as the paper
// did for its 1,015 undetected URLs. After the review latency the feed
// engine lists it regardless of its organic detection draw.
func (s *Service) Report(domain string, day int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reported == nil {
		s.reported = map[string]int{}
	}
	if prev, ok := s.reported[domain]; !ok || day < prev {
		s.reported[domain] = day
	}
}

// reportedListed reports whether a manual submission for domain has passed
// review by the given day.
func (s *Service) reportedListed(domain string, day int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	at, ok := s.reported[domain]
	return ok && day >= at+reportLatencyDays
}

// Check returns the engines listing the domain by the given day (day 0 is
// the first crawl snapshot). The site ground truth decides the detection
// regime; benign domains are never listed (the simulation models no
// blacklist false positives).
func (s *Service) Check(site *webworld.Site, day int) []string {
	if site == nil || site.Kind != webworld.Phishing {
		return nil
	}
	var hits []string
	if s.reportedListed(site.Domain, day) {
		hits = append(hits, "phishtank-list")
	}
	for _, e := range s.Engines {
		p := e.NonSquatProb
		if site.SquatType != 0 { // squatting phishing: the evasive regime
			p = e.SquatProb
		}
		if day < e.LatencyDays {
			continue
		}
		// Deterministic per (engine, domain) draw.
		h := hash(e.Name + "|" + site.Domain)
		if float64(h%1000000)/1000000 < p {
			if e.Name == "phishtank-list" && len(hits) > 0 && hits[0] == "phishtank-list" {
				continue // already listed via manual report
			}
			hits = append(hits, e.Name)
		}
	}
	sort.Strings(hits)
	return hits
}

// Detected reports whether any engine lists the domain by the given day.
func (s *Service) Detected(site *webworld.Site, day int) bool {
	return len(s.Check(site, day)) > 0
}

// Summary tallies, for a set of sites at a given day, how many are caught
// by each named group and how many evade everything (the Table 12 row).
type Summary struct {
	ByFeed    int // phishtank-list
	ByVT      int // any vt-engine-*
	ByECrimeX int
	Undetect  int
	Total     int
}

// Summarize evaluates the whole population at the given day.
func (s *Service) Summarize(sites []*webworld.Site, day int) Summary {
	var sum Summary
	for _, site := range sites {
		sum.Total++
		hits := s.Check(site, day)
		if len(hits) == 0 {
			sum.Undetect++
			continue
		}
		feed, vt, ecx := false, false, false
		for _, h := range hits {
			switch {
			case h == "phishtank-list":
				feed = true
			case h == "ecrimex":
				ecx = true
			default:
				vt = true
			}
		}
		if feed {
			sum.ByFeed++
		}
		if vt {
			sum.ByVT++
		}
		if ecx {
			sum.ByECrimeX++
		}
	}
	return sum
}

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// Final avalanche so low bits are well mixed for the modulo draw.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
