// Package crawler implements the distributed dynamic crawler of SquatPhi
// (paper §3.2): it visits each candidate domain with both a web and a
// mobile browser profile, follows and records redirections, saves the HTML
// content, fetches the image assets the page references, and "takes a
// screenshot" by rendering the page with the layout engine.
//
// The paper drives headless Chrome from a pool of worker processes
// balanced over shared memory; this reproduction uses a goroutine worker
// pool over net/http — the idiomatic Go equivalent of the same
// architecture. Each crawled site receives only 1-2 requests per scan,
// matching the paper's politeness note.
package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"squatphi/internal/htmlx"
	"squatphi/internal/render"
)

// Browser profiles (paper: Chrome 65 for web, iPhone 6 for mobile).
const (
	WebUA    = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/65.0.3325.181 Safari/537.36"
	MobileUA = "Mozilla/5.0 (iPhone; CPU iPhone OS 11_0 like Mac OS X) AppleWebKit/604.1.38 (KHTML, like Gecko) Version/11.0 Mobile/15A372 Safari/604.1"
)

// Capture is one profile's view of one domain.
type Capture struct {
	Domain string
	// Live reports whether a 200 HTML document was ultimately obtained.
	Live       bool
	StatusCode int
	// RedirectChain lists the hosts traversed, starting with the domain
	// itself; length 1 means no redirection.
	RedirectChain []string
	// FinalHost is the host that served the content.
	FinalHost string
	HTML      string
	// Assets maps image src paths to their text payloads.
	Assets map[string]string
	// Shot is the rendered screenshot (nil when not Live or rendering is
	// disabled).
	Shot *render.Raster
}

// Redirected reports whether the capture left its original host.
func (c *Capture) Redirected() bool {
	return c.Live && len(c.RedirectChain) > 1
}

// Result pairs the web and mobile captures of one domain.
type Result struct {
	Domain string
	Web    Capture
	Mobile Capture
}

// Crawler fetches and renders pages.
type Crawler struct {
	// Client performs the requests. Tests wire it to the world server.
	Client *http.Client
	// Workers is the worker-pool width (default 16).
	Workers int
	// MaxRedirects bounds redirect chains (default 5).
	MaxRedirects int
	// Render disables screenshots when false... inverted: screenshots are
	// taken unless SkipRender is set (ablation and redirect-only scans).
	SkipRender bool
	// NoiseLevel adds rendering noise, reproducing real-browser capture
	// imperfections the OCR must tolerate (default 0.002; negative
	// disables).
	NoiseLevel float64
	// MaxBodyBytes bounds response reads (default 1 MiB).
	MaxBodyBytes int64
}

func (c *Crawler) workers() int {
	if c.Workers <= 0 {
		return 16
	}
	return c.Workers
}

func (c *Crawler) maxRedirects() int {
	if c.MaxRedirects <= 0 {
		return 5
	}
	return c.MaxRedirects
}

func (c *Crawler) noise() float64 {
	if c.NoiseLevel < 0 {
		return 0
	}
	if c.NoiseLevel == 0 {
		return 0.002
	}
	return c.NoiseLevel
}

func (c *Crawler) bodyLimit() int64 {
	if c.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return c.MaxBodyBytes
}

// Crawl visits every domain with both profiles using the worker pool.
// Results are returned in input order.
func (c *Crawler) Crawl(ctx context.Context, domains []string) ([]Result, error) {
	results := make([]Result, len(domains))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				d := domains[i]
				results[i] = Result{
					Domain: d,
					Web:    c.CaptureProfile(ctx, d, false),
					Mobile: c.CaptureProfile(ctx, d, true),
				}
			}
		}()
	}
	for i := range domains {
		select {
		case jobs <- i:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return results, ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	return results, nil
}

// CaptureProfile fetches one domain with one profile, following redirects
// and rendering the screenshot.
func (c *Crawler) CaptureProfile(ctx context.Context, domain string, mobile bool) Capture {
	cap := Capture{Domain: domain, RedirectChain: []string{domain}}
	ua := WebUA
	if mobile {
		ua = MobileUA
	}

	url := "http://" + domain + "/"
	for hop := 0; ; hop++ {
		body, status, location, err := c.fetch(ctx, url, ua)
		cap.StatusCode = status
		if err != nil || status >= 400 {
			return cap
		}
		if status >= 300 && location != "" {
			if hop >= c.maxRedirects() {
				return cap
			}
			url = absoluteURL(url, location)
			host := hostOf(url)
			cap.RedirectChain = append(cap.RedirectChain, host)
			continue
		}
		cap.Live = true
		cap.HTML = body
		cap.FinalHost = hostOf(url)
		break
	}

	// Fetch referenced image assets from the final host (the crawler's
	// second round of requests, like a browser loading subresources).
	page := htmlx.Extract(cap.HTML)
	for _, img := range page.Images {
		if img.Src == "" || !strings.HasPrefix(img.Src, "/") {
			continue
		}
		body, status, _, err := c.fetch(ctx, "http://"+cap.FinalHost+img.Src, ua)
		if err != nil || status != 200 {
			continue
		}
		if cap.Assets == nil {
			cap.Assets = map[string]string{}
		}
		cap.Assets[img.Src] = body
	}

	if !c.SkipRender {
		opts := render.Options{Assets: cap.Assets}
		if n := c.noise(); n > 0 {
			opts.NoiseLevel = n
			// Per-(domain, profile) deterministic capture noise.
			seed := uint64(1)
			for i := 0; i < len(domain); i++ {
				seed = seed*1099511628211 ^ uint64(domain[i])
			}
			if mobile {
				seed ^= 0x5a5a
			}
			opts.NoiseSeed = seed
		}
		cap.Shot = render.RenderPage(page, opts)
	}
	return cap
}

// fetch performs one GET, returning body, status and redirect location.
func (c *Crawler) fetch(ctx context.Context, url, ua string) (body string, status int, location string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", 0, "", err
	}
	req.Header.Set("User-Agent", ua)
	resp, err := c.Client.Do(req)
	if err != nil {
		return "", 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, c.bodyLimit()))
	if err != nil {
		return "", resp.StatusCode, "", err
	}
	return string(b), resp.StatusCode, resp.Header.Get("Location"), nil
}

// hostOf extracts the host from an http URL.
func hostOf(url string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// absoluteURL resolves a Location header against the current URL.
func absoluteURL(current, location string) string {
	if strings.HasPrefix(location, "http://") || strings.HasPrefix(location, "https://") {
		return location
	}
	if strings.HasPrefix(location, "/") {
		return "http://" + hostOf(current) + location
	}
	return "http://" + hostOf(current) + "/" + location
}

// SnapshotDates are the paper's four crawl dates (§3.2).
var SnapshotDates = []string{"April 01", "April 08", "April 22", "April 29"}

// DayOfSnapshot converts a snapshot index to a day offset from the first
// crawl, used by the blacklist latency model.
func DayOfSnapshot(snap int) int {
	days := []int{0, 7, 21, 28}
	if snap < 0 || snap >= len(days) {
		return 0
	}
	return days[snap]
}

// String implements fmt.Stringer for quick logging.
func (r Result) String() string {
	return fmt.Sprintf("%s web(live=%v) mobile(live=%v)", r.Domain, r.Web.Live, r.Mobile.Live)
}
