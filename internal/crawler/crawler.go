// Package crawler implements the distributed dynamic crawler of SquatPhi
// (paper §3.2): it visits each candidate domain with both a web and a
// mobile browser profile, follows and records redirections, saves the HTML
// content, fetches the image assets the page references, and "takes a
// screenshot" by rendering the page with the layout engine.
//
// The paper drives headless Chrome from a pool of worker processes
// balanced over shared memory; this reproduction uses a goroutine worker
// pool over net/http — the idiomatic Go equivalent of the same
// architecture. Each crawled site receives only 1-2 requests per scan,
// matching the paper's politeness note.
package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"squatphi/internal/htmlx"
	"squatphi/internal/obs"
	"squatphi/internal/obs/trace"
	"squatphi/internal/render"
	"squatphi/internal/retry"
)

// Browser profiles (paper: Chrome 65 for web, iPhone 6 for mobile).
const (
	WebUA    = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/65.0.3325.181 Safari/537.36"
	MobileUA = "Mozilla/5.0 (iPhone; CPU iPhone OS 11_0 like Mac OS X) AppleWebKit/604.1.38 (KHTML, like Gecko) Version/11.0 Mobile/15A372 Safari/604.1"
)

// Capture is one profile's view of one domain.
type Capture struct {
	Domain string
	// Live reports whether a 200 HTML document was ultimately obtained.
	Live       bool
	StatusCode int
	// RedirectChain lists the hosts traversed, starting with the domain
	// itself; length 1 means no redirection.
	RedirectChain []string
	// FinalHost is the host that served the content.
	FinalHost string
	// FinalURL is the full URL that served the content, scheme included;
	// asset fetches resolve against it so an https redirect target keeps
	// being fetched over https.
	FinalURL string
	HTML     string
	// Assets maps image src paths to their text payloads.
	Assets map[string]string
	// Shot is the rendered screenshot (nil when not Live or rendering is
	// disabled).
	Shot *render.Raster
}

// Redirected reports whether the capture left its original host.
func (c *Capture) Redirected() bool {
	return c.Live && len(c.RedirectChain) > 1
}

// Result pairs the web and mobile captures of one domain.
type Result struct {
	Domain string
	Web    Capture
	Mobile Capture
}

// Crawler fetches and renders pages.
type Crawler struct {
	// Client performs the requests. Tests wire it to the world server.
	Client *http.Client
	// Workers is the worker-pool width (default 16).
	Workers int
	// MaxRedirects bounds redirect chains (default 5).
	MaxRedirects int
	// Render disables screenshots when false... inverted: screenshots are
	// taken unless SkipRender is set (ablation and redirect-only scans).
	SkipRender bool
	// NoiseLevel adds rendering noise, reproducing real-browser capture
	// imperfections the OCR must tolerate (default 0.002; negative
	// disables).
	NoiseLevel float64
	// MaxBodyBytes bounds response reads (default 1 MiB).
	MaxBodyBytes int64
	// Retries is the number of re-attempts after a transport error on a
	// fetch (repository retry convention: negative disables, 0 selects the
	// default of 1, positive as given). HTTP error statuses are not
	// retried — the server answered. Both page and asset fetches share
	// these semantics.
	Retries int
	// Policy configures backoff, per-host retry budgets, and the per-host
	// circuit breaker shared by every fetch (see internal/retry). The zero
	// value backs off at the default schedule with budget and breaker
	// disabled.
	Policy retry.Policy
	// Metrics, when set, receives crawl accounting: pages fetched, live
	// pages, retries, timeouts, failures, redirects followed, fetch
	// latency, and worker-pool depth. Per-host failure/retry maps are
	// exposed as registry values and via HostFailures/HostRetries; the
	// retry layer reports under crawler.retry.* and crawler.breaker.*.
	Metrics *obs.Registry
	// Events, when set, receives structured retry/failure events carrying
	// a "domain" attribute, which the provenance layer attributes to the
	// domain's evidence record (trace.Logger.AttachCollector). nil
	// disables event logging; nothing on the fetch path depends on it.
	Events *trace.Logger

	statsOnce sync.Once
	stats     *crawlStats

	retrierOnce sync.Once
	rt          *retry.Retrier
}

// Retrier returns the crawler's shared retry/breaker state, built lazily
// from Policy (tests use it to assert breaker transitions).
func (c *Crawler) Retrier() *retry.Retrier {
	c.retrierOnce.Do(func() { c.rt = retry.New(c.Policy, "crawler", c.Metrics) })
	return c.rt
}

// crawlStats is the crawler's mutable accounting, created lazily so the
// zero-value Crawler literal keeps working.
type crawlStats struct {
	pages, live, failures, retries, timeouts, redirects, assetErrs *obs.Counter
	fetchMS                                                        *obs.Histogram
	inflight, pending                                              *obs.Gauge

	mu           sync.Mutex
	hostFailures map[string]int64
	hostRetries  map[string]int64
}

func (c *Crawler) statsInit() *crawlStats {
	c.statsOnce.Do(func() {
		reg := c.Metrics // nil-safe: handles stay live but unregistered
		c.stats = &crawlStats{
			pages:        reg.Counter("crawler.pages"),
			live:         reg.Counter("crawler.live"),
			failures:     reg.Counter("crawler.fetch.failures"),
			retries:      reg.Counter("crawler.fetch.retries"),
			timeouts:     reg.Counter("crawler.fetch.timeouts"),
			redirects:    reg.Counter("crawler.redirects"),
			assetErrs:    reg.Counter("crawler.asset_errors"),
			fetchMS:      reg.Histogram("crawler.fetch_ms", obs.MillisBuckets),
			inflight:     reg.Gauge("crawler.inflight"),
			pending:      reg.Gauge("crawler.pending"),
			hostFailures: map[string]int64{},
			hostRetries:  map[string]int64{},
		}
		reg.RegisterFunc("crawler.host_failures", func() any { return c.HostFailures() })
		reg.RegisterFunc("crawler.host_retries", func() any { return c.HostRetries() })
	})
	return c.stats
}

func (s *crawlStats) recordHostFailure(host string) {
	s.failures.Inc()
	s.mu.Lock()
	s.hostFailures[host]++
	s.mu.Unlock()
}

func (s *crawlStats) recordHostRetry(host string) {
	s.retries.Inc()
	s.mu.Lock()
	s.hostRetries[host]++
	s.mu.Unlock()
}

// HostFailures returns a copy of the per-host page-fetch failure counts
// (transport errors after retries, or HTTP >= 400 on the initial page).
func (c *Crawler) HostFailures() map[string]int64 {
	s := c.statsInit()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.hostFailures))
	for k, v := range s.hostFailures {
		out[k] = v
	}
	return out
}

// HostRetries returns a copy of the per-host retry counts.
func (c *Crawler) HostRetries() map[string]int64 {
	s := c.statsInit()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.hostRetries))
	for k, v := range s.hostRetries {
		out[k] = v
	}
	return out
}

func (c *Crawler) workers() int {
	if c.Workers <= 0 {
		return 16
	}
	return c.Workers
}

func (c *Crawler) maxRedirects() int {
	if c.MaxRedirects <= 0 {
		return 5
	}
	return c.MaxRedirects
}

func (c *Crawler) noise() float64 {
	if c.NoiseLevel < 0 {
		return 0
	}
	if c.NoiseLevel == 0 {
		return 0.002
	}
	return c.NoiseLevel
}

func (c *Crawler) bodyLimit() int64 {
	if c.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return c.MaxBodyBytes
}

func (c *Crawler) retries() int { return retry.Resolve(c.Retries, 1) }

// Crawl visits every domain with both profiles using the worker pool.
// Results are returned in input order.
func (c *Crawler) Crawl(ctx context.Context, domains []string) ([]Result, error) {
	st := c.statsInit()
	ctx, span := obs.StartSpan(ctx, "crawler.crawl")
	span.SetAttr("domains", fmt.Sprint(len(domains)))
	start := time.Now()
	defer func() {
		span.SetAttr("elapsed", time.Since(start).Round(time.Millisecond).String())
		span.End()
	}()

	results := make([]Result, len(domains))
	jobs := make(chan int)
	var wg sync.WaitGroup
	st.pending.Set(float64(len(domains)))
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				st.inflight.Add(1)
				d := domains[i]
				results[i] = Result{
					Domain: d,
					Web:    c.CaptureProfile(ctx, d, false),
					Mobile: c.CaptureProfile(ctx, d, true),
				}
				st.inflight.Add(-1)
			}
		}()
	}
	for i := range domains {
		select {
		case jobs <- i:
			st.pending.Add(-1)
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			st.pending.Set(0)
			span.Fail(ctx.Err())
			return results, ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	return results, nil
}

// CaptureProfile fetches one domain with one profile, following redirects
// and rendering the screenshot.
func (c *Crawler) CaptureProfile(ctx context.Context, domain string, mobile bool) Capture {
	st := c.statsInit()
	st.pages.Inc()
	cap := Capture{Domain: domain, RedirectChain: []string{domain}}
	ua := WebUA
	if mobile {
		ua = MobileUA
	}

	url := "http://" + domain + "/"
	for hop := 0; ; hop++ {
		body, status, location, err := c.fetchPage(ctx, url, ua, st)
		cap.StatusCode = status
		if err != nil || status >= 400 {
			// One failure per page fetch, however many retries it took.
			st.recordHostFailure(hostOf(url))
			attrs := []trace.Attr{trace.String("domain", hostOf(url)), trace.Int("status", status)}
			if err != nil {
				attrs = append(attrs, trace.String("error", err.Error()))
			}
			c.Events.Warn("crawler.fetch.failed", attrs...)
			return cap
		}
		if status >= 300 && location != "" {
			if hop >= c.maxRedirects() {
				return cap
			}
			st.redirects.Inc()
			url = absoluteURL(url, location)
			host := hostOf(url)
			cap.RedirectChain = append(cap.RedirectChain, host)
			continue
		}
		cap.Live = true
		cap.HTML = body
		cap.FinalHost = hostOf(url)
		cap.FinalURL = url
		break
	}
	st.live.Inc()

	// Fetch referenced image assets from the final host (the crawler's
	// second round of requests, like a browser loading subresources).
	// Assets resolve against the final URL — preserving the scheme an
	// https redirect landed on — and go through the same retry and
	// accounting path as page fetches.
	page := htmlx.Extract(cap.HTML)
	for _, img := range page.Images {
		if img.Src == "" || !strings.HasPrefix(img.Src, "/") {
			continue
		}
		body, status, _, err := c.fetchPage(ctx, absoluteURL(cap.FinalURL, img.Src), ua, st)
		if err != nil || status != 200 {
			st.assetErrs.Inc()
			continue
		}
		if cap.Assets == nil {
			cap.Assets = map[string]string{}
		}
		cap.Assets[img.Src] = body
	}

	if !c.SkipRender {
		opts := render.Options{Assets: cap.Assets}
		if n := c.noise(); n > 0 {
			opts.NoiseLevel = n
			// Per-(domain, profile) deterministic capture noise.
			seed := uint64(1)
			for i := 0; i < len(domain); i++ {
				seed = seed*1099511628211 ^ uint64(domain[i])
			}
			if mobile {
				seed ^= 0x5a5a
			}
			opts.NoiseSeed = seed
		}
		cap.Shot = render.RenderPage(page, opts)
	}
	return cap
}

// fetchPage fetches one URL with retry-on-transport-error semantics: an
// HTTP response of any status is definitive, but a connection or timeout
// error is re-attempted up to Retries times — with capped, jittered
// backoff between attempts — subject to the host's retry budget and
// circuit breaker, with per-host retry/timeout accounting and a latency
// observation per attempt. HTTP >= 500 counts against the host's breaker
// (the host is unhealthy) but is still returned, not retried.
func (c *Crawler) fetchPage(ctx context.Context, url, ua string, st *crawlStats) (body string, status int, location string, err error) {
	host := hostOf(url)
	rt := c.Retrier()
	for attempt := 0; ; attempt++ {
		if err := rt.Allow(host); err != nil {
			return "", 0, "", fmt.Errorf("fetch %s: %w", host, err)
		}
		start := time.Now()
		body, status, location, err = c.fetch(ctx, url, ua)
		st.fetchMS.ObserveSince(start)
		if err == nil {
			rt.Report(host, status < 500)
			return body, status, location, nil
		}
		if retry.IsTimeout(err) {
			st.timeouts.Inc()
		}
		rt.Report(host, false)
		if attempt >= c.retries() || ctx.Err() != nil {
			return body, status, location, err
		}
		if !rt.GrantRetry(host) {
			return body, status, location, err
		}
		st.recordHostRetry(host)
		c.Events.Warn("crawler.fetch.retry",
			trace.String("domain", host), trace.Int("attempt", attempt+1), trace.String("error", err.Error()))
		if werr := rt.Wait(ctx, url, attempt+1); werr != nil {
			return body, status, location, err
		}
	}
}

// fetch performs one GET, returning body, status and redirect location.
func (c *Crawler) fetch(ctx context.Context, url, ua string) (body string, status int, location string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", 0, "", err
	}
	req.Header.Set("User-Agent", ua)
	resp, err := c.Client.Do(req)
	if err != nil {
		return "", 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, c.bodyLimit()))
	if err != nil {
		return "", resp.StatusCode, "", err
	}
	return string(b), resp.StatusCode, resp.Header.Get("Location"), nil
}

// hostOf extracts the host from an http URL.
func hostOf(url string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// schemeOf extracts the scheme of an http(s) URL.
func schemeOf(url string) string {
	if strings.HasPrefix(url, "https://") {
		return "https"
	}
	return "http"
}

// hostPortOf extracts host[:port] from an http URL, unlike hostOf keeping
// any port so resolved URLs stay routable.
func hostPortOf(url string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// absoluteURL resolves a Location header or asset path against the
// current URL, preserving the current scheme and port for relative
// targets (a relative redirect on an https page must stay https).
func absoluteURL(current, location string) string {
	if strings.HasPrefix(location, "http://") || strings.HasPrefix(location, "https://") {
		return location
	}
	base := schemeOf(current) + "://" + hostPortOf(current)
	if strings.HasPrefix(location, "/") {
		return base + location
	}
	return base + "/" + location
}

// SnapshotDates are the paper's four crawl dates (§3.2).
var SnapshotDates = []string{"April 01", "April 08", "April 22", "April 29"}

// DayOfSnapshot converts a snapshot index to a day offset from the first
// crawl, used by the blacklist latency model.
func DayOfSnapshot(snap int) int {
	days := []int{0, 7, 21, 28}
	if snap < 0 || snap >= len(days) {
		return 0
	}
	return days[snap]
}

// String implements fmt.Stringer for quick logging.
func (r Result) String() string {
	return fmt.Sprintf("%s web(live=%v) mobile(live=%v)", r.Domain, r.Web.Live, r.Mobile.Live)
}
