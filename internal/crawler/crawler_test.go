package crawler

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"squatphi/internal/obs"
	"squatphi/internal/ocr"
	"squatphi/internal/webworld"
)

// testEnv builds a small world and server shared by the tests.
func testEnv(t testing.TB) (*webworld.World, *webworld.Server, *Crawler) {
	t.Helper()
	w := webworld.Build(webworld.Config{SquattingDomains: 2000, NonSquattingPhish: 150, Seed: 41})
	srv, err := webworld.NewServer(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return w, srv, &Crawler{Client: srv.Client(), Workers: 8}
}

func TestCaptureOriginalBrandPage(t *testing.T) {
	_, _, c := testEnv(t)
	cap := c.CaptureProfile(context.Background(), "paypal.com", false)
	if !cap.Live || cap.StatusCode != 200 {
		t.Fatalf("capture = %+v", cap)
	}
	if !strings.Contains(cap.HTML, "Paypal") {
		t.Error("HTML missing brand")
	}
	if cap.Assets["/logo.png"] != "Paypal" {
		t.Errorf("assets = %v", cap.Assets)
	}
	if cap.Shot == nil || cap.Shot.InkRatio() == 0 {
		t.Error("screenshot missing or empty")
	}
	if cap.Redirected() {
		t.Error("original page reported as redirected")
	}
}

func TestCaptureFollowsRedirects(t *testing.T) {
	w, _, c := testEnv(t)
	var domain, target string
	for _, d := range w.SquattingDomains {
		if s := w.Sites[d]; s.Kind == webworld.RedirectOriginal {
			domain, target = d, s.RedirectTo
			break
		}
	}
	if domain == "" {
		t.Skip("no redirect domain in world")
	}
	cap := c.CaptureProfile(context.Background(), domain, false)
	if !cap.Live {
		t.Fatalf("redirect capture dead: %+v", cap)
	}
	if !cap.Redirected() || cap.FinalHost != target {
		t.Fatalf("chain = %v final = %s, want -> %s", cap.RedirectChain, cap.FinalHost, target)
	}
}

func TestCaptureDeadDomain(t *testing.T) {
	w, _, c := testEnv(t)
	var dead string
	for _, d := range w.SquattingDomains {
		if w.Sites[d].Kind == webworld.Dead {
			dead = d
			break
		}
	}
	if dead == "" {
		t.Skip("no dead domain")
	}
	cap := c.CaptureProfile(context.Background(), dead, false)
	if cap.Live {
		t.Fatalf("dead domain reported live: %+v", cap)
	}
}

func TestCaptureCloakedSiteDiffersByProfile(t *testing.T) {
	w, _, c := testEnv(t)
	var site *webworld.Site
	for _, s := range w.PhishingSites() {
		if s.Cloak == webworld.CloakMobileOnly && s.Alive[0] && s.ReplacedAt != 0 && s.ReplacedFrom != 0 {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no mobile-only site")
	}
	web := c.CaptureProfile(context.Background(), site.Domain, false)
	mob := c.CaptureProfile(context.Background(), site.Domain, true)
	if !web.Live || !mob.Live {
		t.Fatalf("cloaked site not live for both (web %v mobile %v)", web.Live, mob.Live)
	}
	// Every phishing page carries a data-submission form; the cloak filler
	// page does not.
	if strings.Contains(web.HTML, "<form") {
		t.Error("web profile saw the cloaked phishing form")
	}
	if !strings.Contains(mob.HTML, "<form") {
		t.Error("mobile profile missed the phishing form")
	}
}

func TestCrawlBulkStatistics(t *testing.T) {
	w, _, c := testEnv(t)
	domains := w.SquattingDomains
	if len(domains) > 400 {
		domains = domains[:400]
	}
	results, err := c.Crawl(context.Background(), domains)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(domains) {
		t.Fatalf("results = %d, want %d", len(results), len(domains))
	}
	live, redirected := 0, 0
	for i, r := range results {
		if r.Domain != domains[i] {
			t.Fatal("result order broken")
		}
		if r.Web.Live {
			live++
			if r.Web.Redirected() {
				redirected++
			}
		}
	}
	liveFrac := float64(live) / float64(len(results))
	if liveFrac < 0.35 || liveFrac > 0.75 {
		t.Errorf("live fraction = %.2f, want ~0.55 (Table 2)", liveFrac)
	}
	if redirected == 0 {
		t.Error("no redirections observed")
	}
}

func TestCrawlContextCancel(t *testing.T) {
	w, _, c := testEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Crawl(ctx, w.SquattingDomains[:50])
	if err == nil {
		t.Fatal("cancelled crawl returned nil error")
	}
}

func TestScreenshotOCRSeesImageText(t *testing.T) {
	// End-to-end: a string-obfuscated phishing page crawled over HTTP must
	// yield a screenshot from which OCR recovers the brand that is absent
	// from the HTML.
	w, _, c := testEnv(t)
	var site *webworld.Site
	for _, s := range w.PhishingSites() {
		if s.StringObf && s.Cloak != webworld.CloakMobileOnly && s.IsPhishingAt(0) {
			page, _ := w.PageFor(s, 0, false)
			if !strings.Contains(strings.ToLower(page.HTML), s.Brand.Name) {
				site = s
				break
			}
		}
	}
	if site == nil {
		t.Skip("no fully string-obfuscated page in world")
	}
	cap := c.CaptureProfile(context.Background(), site.Domain, false)
	if !cap.Live {
		t.Fatal("site not live")
	}
	if strings.Contains(strings.ToLower(cap.HTML), site.Brand.Name) {
		t.Fatal("HTML contains brand; test premise broken")
	}
	var e ocr.Engine
	text := strings.ToLower(e.Recognize(cap.Shot))
	if !strings.Contains(text, site.Brand.Name) {
		t.Errorf("OCR text %q missing brand %q", text, site.Brand.Name)
	}
}

func TestSkipRender(t *testing.T) {
	_, _, c := testEnv(t)
	c.SkipRender = true
	cap := c.CaptureProfile(context.Background(), "paypal.com", false)
	if cap.Shot != nil {
		t.Fatal("SkipRender still rendered")
	}
}

func TestHostOfAndAbsoluteURL(t *testing.T) {
	if hostOf("http://a.com:8080/x/y") != "a.com" {
		t.Error("hostOf with port/path")
	}
	if absoluteURL("http://a.com/x", "/y") != "http://a.com/y" {
		t.Error("absolute path resolution")
	}
	if absoluteURL("http://a.com/x", "http://b.com/") != "http://b.com/" {
		t.Error("full URL resolution")
	}
	if absoluteURL("http://a.com/x", "y") != "http://a.com/y" {
		t.Error("relative resolution")
	}
}

func TestDayOfSnapshot(t *testing.T) {
	if DayOfSnapshot(0) != 0 || DayOfSnapshot(3) != 28 || DayOfSnapshot(9) != 0 {
		t.Fatal("DayOfSnapshot mapping wrong")
	}
}

// errRT is a RoundTripper that always fails with the given error.
type errRT struct{ err error }

func (e errRT) RoundTrip(*http.Request) (*http.Response, error) { return nil, e.err }

// statusRT is a RoundTripper that always answers with the given status.
type statusRT struct{ code int }

func (s statusRT) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: s.code,
		Body:       io.NopCloser(strings.NewReader("")),
		Header:     http.Header{},
		Request:    req,
	}, nil
}

// fakeTimeout satisfies net.Error with Timeout() == true.
type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "fake timeout" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return true }

// TestFailingFetchCountsFailureOnce is the regression test for failure
// accounting: one failing page fetch must increment the failure counter
// exactly once, however many transport retries it took.
func TestFailingFetchCountsFailureOnce(t *testing.T) {
	reg := obs.NewRegistry()
	c := &Crawler{
		Client:     &http.Client{Transport: errRT{err: fakeTimeout{}}},
		Metrics:    reg,
		SkipRender: true,
	}
	cap := c.CaptureProfile(context.Background(), "down.test", false)
	if cap.Live {
		t.Fatalf("capture of erroring transport reported live: %+v", cap)
	}
	if got := reg.Counter("crawler.fetch.failures").Value(); got != 1 {
		t.Errorf("failure counter = %d, want exactly 1", got)
	}
	// Default policy is one retry, so two attempts and two timeouts.
	if got := reg.Counter("crawler.fetch.retries").Value(); got != 1 {
		t.Errorf("retry counter = %d, want 1", got)
	}
	if got := reg.Counter("crawler.fetch.timeouts").Value(); got != 2 {
		t.Errorf("timeout counter = %d, want 2", got)
	}
	if got := c.HostFailures()["down.test"]; got != 1 {
		t.Errorf("host failure count = %d, want 1 (map: %v)", got, c.HostFailures())
	}
	if got := c.HostRetries()["down.test"]; got != 1 {
		t.Errorf("host retry count = %d, want 1 (map: %v)", got, c.HostRetries())
	}
}

// TestErrorStatusNotRetried: an HTTP error status is a definitive answer —
// one failure, no retries.
func TestErrorStatusNotRetried(t *testing.T) {
	reg := obs.NewRegistry()
	c := &Crawler{
		Client:     &http.Client{Transport: statusRT{code: 503}},
		Metrics:    reg,
		SkipRender: true,
	}
	cap := c.CaptureProfile(context.Background(), "busy.test", false)
	if cap.Live || cap.StatusCode != 503 {
		t.Fatalf("capture = %+v, want dead with status 503", cap)
	}
	if got := reg.Counter("crawler.fetch.failures").Value(); got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}
	if got := reg.Counter("crawler.fetch.retries").Value(); got != 0 {
		t.Errorf("retry counter = %d, want 0 (server answered)", got)
	}
}

// TestRetriesDisabled: Retries < 0 turns retrying off entirely.
func TestRetriesDisabled(t *testing.T) {
	reg := obs.NewRegistry()
	c := &Crawler{
		Client:     &http.Client{Transport: errRT{err: fakeTimeout{}}},
		Metrics:    reg,
		Retries:    -1,
		SkipRender: true,
	}
	_ = c.CaptureProfile(context.Background(), "down.test", false)
	if got := reg.Counter("crawler.fetch.retries").Value(); got != 0 {
		t.Errorf("retry counter = %d, want 0", got)
	}
	if got := reg.Counter("crawler.fetch.failures").Value(); got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}
}

// TestCrawlMetrics checks the aggregate counters over a real crawl.
func TestCrawlMetrics(t *testing.T) {
	w, srv, _ := testEnv(t)
	reg := obs.NewRegistry()
	c := &Crawler{Client: srv.Client(), Workers: 8, Metrics: reg, SkipRender: true}
	domains := w.SquattingDomains
	if len(domains) > 100 {
		domains = domains[:100]
	}
	if _, err := c.Crawl(context.Background(), domains); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// Two profiles per domain.
	if got := snap.Counters["crawler.pages"]; got != int64(2*len(domains)) {
		t.Errorf("pages = %d, want %d", got, 2*len(domains))
	}
	if snap.Counters["crawler.live"] == 0 {
		t.Error("no live pages counted")
	}
	if snap.Histograms["crawler.fetch_ms"].Count == 0 {
		t.Error("no fetch latencies observed")
	}
	if snap.Gauges["crawler.inflight"] != 0 || snap.Gauges["crawler.pending"] != 0 {
		t.Errorf("pool gauges not drained: inflight=%v pending=%v",
			snap.Gauges["crawler.inflight"], snap.Gauges["crawler.pending"])
	}
	if _, ok := snap.Values["crawler.host_failures"]; !ok {
		t.Error("per-host failure map not exposed in snapshot")
	}
}

func BenchmarkCaptureProfile(b *testing.B) {
	_, _, c := testEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.CaptureProfile(ctx, "paypal.com", false)
	}
}

func BenchmarkCrawl100(b *testing.B) {
	w, _, c := testEnv(b)
	domains := w.SquattingDomains[:100]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Crawl(ctx, domains)
	}
}
