package crawler

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"squatphi/internal/faultx"
	"squatphi/internal/obs"
	"squatphi/internal/retry"
)

// chaosPage is what the chaos origin serves: a page referencing one asset.
const chaosPage = `<html><body><h1>Brand Login</h1><img src="/logo.png"></body></html>`

// chaosOrigin starts an HTTP origin answering any Host with the chaos
// page and its asset.
func chaosOrigin(t testing.TB) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, chaosPage)
	})
	mux.HandleFunc("/logo.png", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "LOGO")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// chaosClient builds an http.Client that dials the origin for every host
// and injects faults per f, reporting into reg.
func chaosClient(origin *httptest.Server, f faultx.Faults, reg *obs.Registry) *http.Client {
	addr := origin.Listener.Addr().String()
	inner := &http.Transport{
		DisableKeepAlives: true,
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
	}
	return &http.Client{Transport: faultx.NewTransport(inner, f, reg)}
}

// chaosCounts are the schedule-independent counters a chaos crawl must
// reproduce exactly at any worker count.
type chaosCounts struct {
	Drops, Resets, FiveXX, Slows                        int64
	Pages, Live, Retries, Timeouts, Failures, AssetErrs int64
}

// simulateCrawl is the oracle: it replays the fault plan through the
// same decision structure as CaptureProfile/fetchPage (budget and
// breaker disabled) and returns the exact counters the real crawl must
// produce.
func simulateCrawl(f faultx.Faults, domains []string, retries int) chaosCounts {
	var o chaosCounts
	attempts := map[string]int{}
	fetch := func(key string) (status int, ok bool) {
		for attempt := 0; ; attempt++ {
			n := attempts[key]
			attempts[key]++
			switch f.HTTPFault(key, n) {
			case "drop":
				o.Drops++
				o.Timeouts++
			case "reset":
				o.Resets++
			case "5xx":
				o.FiveXX++
				return 503, true
			case "slow_body":
				o.Slows++
				return 200, true
			default:
				return 200, true
			}
			if attempt >= retries {
				return 0, false
			}
			o.Retries++
		}
	}
	for _, d := range domains {
		for profile := 0; profile < 2; profile++ {
			o.Pages++
			status, ok := fetch(d + "/")
			if !ok || status >= 400 {
				o.Failures++
				continue
			}
			o.Live++
			if st, ok := fetch(d + "/logo.png"); !ok || st != 200 {
				o.AssetErrs++
			}
		}
	}
	return o
}

func snapshotCounts(reg *obs.Registry) chaosCounts {
	s := reg.Snapshot().Counters
	return chaosCounts{
		Drops:     s["faultx.http.drop"],
		Resets:    s["faultx.http.reset"],
		FiveXX:    s["faultx.http.5xx"],
		Slows:     s["faultx.http.slow_body"],
		Pages:     s["crawler.pages"],
		Live:      s["crawler.live"],
		Retries:   s["crawler.fetch.retries"],
		Timeouts:  s["crawler.fetch.timeouts"],
		Failures:  s["crawler.fetch.failures"],
		AssetErrs: s["crawler.asset_errors"],
	}
}

// TestChaosCrawlExactCountersAnyWorkerCount drives the crawler through a
// mixed fault plan at several seeds and worker counts and asserts the
// final counter snapshot equals the oracle's prediction exactly — the
// injected fault sequence is a pure function of (seed, key, attempt), so
// scheduling must not be able to change it.
func TestChaosCrawlExactCountersAnyWorkerCount(t *testing.T) {
	origin := chaosOrigin(t)
	domains := make([]string, 20)
	for i := range domains {
		domains[i] = fmt.Sprintf("d%02d.chaos.test", i)
	}
	const crawlRetries = 2
	for _, seed := range []uint64{1, 7, 42} {
		f := faultx.Faults{
			Seed: seed, DropProb: 0.3, ResetProb: 0.15, HTTP5xxProb: 0.15, SlowBodyProb: 0.1,
			SlowChunk: 512, SlowChunkDelay: 100 * time.Microsecond,
		}
		want := simulateCrawl(f, domains, crawlRetries)
		if want.Drops == 0 || want.FiveXX == 0 {
			t.Fatalf("seed %d: fault plan too quiet to be a useful test: %+v", seed, want)
		}
		for _, workers := range []int{1, 8} {
			reg := obs.NewRegistry()
			c := &Crawler{
				Client:     chaosClient(origin, f, reg),
				Workers:    workers,
				Retries:    crawlRetries,
				Policy:     retry.Policy{BaseDelay: -1},
				SkipRender: true,
				Metrics:    reg,
			}
			if _, err := c.Crawl(context.Background(), domains); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if got := snapshotCounts(reg); got != want {
				t.Errorf("seed %d workers %d:\n got  %+v\n want %+v", seed, workers, got, want)
			}
		}
	}
}

// TestChaosBreakerOpensAndFastFails starves one host completely and
// asserts the crawler's circuit breaker opens at the threshold and
// fast-fails the remaining work.
func TestChaosBreakerOpensAndFastFails(t *testing.T) {
	origin := chaosOrigin(t)
	reg := obs.NewRegistry()
	c := &Crawler{
		Client:  chaosClient(origin, faultx.Faults{Seed: 5, DropProb: 1}, reg),
		Workers: 1,
		Retries: 1,
		Policy: retry.Policy{
			BaseDelay:        -1,
			BreakerThreshold: 3,
			BreakerCooldown:  time.Hour,
		},
		SkipRender: true,
		Metrics:    reg,
	}
	// Web profile burns attempts 1-2, mobile's first attempt is failure 3:
	// the circuit opens and the mobile retry is rejected without a fetch.
	if _, err := c.Crawl(context.Background(), []string{"dead.chaos.test"}); err != nil {
		t.Fatal(err)
	}
	if st := c.Retrier().State("dead.chaos.test"); st != retry.Open {
		t.Fatalf("breaker state = %v, want open", st)
	}
	s := reg.Snapshot().Counters
	if s["crawler.breaker.opens"] != 1 {
		t.Errorf("opens = %d, want 1", s["crawler.breaker.opens"])
	}
	if s["crawler.breaker.rejected"] < 1 {
		t.Errorf("rejected = %d, want >= 1", s["crawler.breaker.rejected"])
	}
	if s["faultx.http.drop"] != 3 {
		t.Errorf("attempts reaching the transport = %d, want 3 (threshold)", s["faultx.http.drop"])
	}
}

// TestChaosHostRetryBudget bounds the total retries one host may consume.
func TestChaosHostRetryBudget(t *testing.T) {
	origin := chaosOrigin(t)
	reg := obs.NewRegistry()
	c := &Crawler{
		Client:     chaosClient(origin, faultx.Faults{Seed: 5, DropProb: 1}, reg),
		Workers:    1,
		Retries:    10,
		Policy:     retry.Policy{BaseDelay: -1, HostBudget: 3},
		SkipRender: true,
		Metrics:    reg,
	}
	if _, err := c.Crawl(context.Background(), []string{"dead.chaos.test"}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot().Counters
	if s["crawler.fetch.retries"] != 3 {
		t.Errorf("retries = %d, want 3 (budget)", s["crawler.fetch.retries"])
	}
	if s["crawler.retry.budget_exhausted"] < 1 {
		t.Errorf("budget_exhausted = %d, want >= 1", s["crawler.retry.budget_exhausted"])
	}
	// 2 page fetches: first spends 1+3 attempts draining the budget, the
	// second gets its initial attempt plus no retries.
	if s["faultx.http.drop"] != 5 {
		t.Errorf("transport attempts = %d, want 5", s["faultx.http.drop"])
	}
}

// TestAssetFetchKeepsSchemePortAndRetryPath is the regression test for
// the hardcoded-scheme asset bug: asset requests used to be rebuilt as
// "http://" + host-without-port + src, bypassing fetchPage entirely, so
// against a real origin on a non-80 port every asset fetch dialled the
// wrong address and no asset retry was ever accounted.
func TestAssetFetchKeepsSchemePortAndRetryPath(t *testing.T) {
	origin := chaosOrigin(t)
	reg := obs.NewRegistry()
	// Every key's first attempt is dropped, the retry succeeds: the asset
	// fetch only survives if it goes through fetchPage's retry semantics.
	f := faultx.Faults{Seed: 13, DropProb: 1, MaxFaultsPerKey: 1}
	c := &Crawler{
		Client:     &http.Client{Transport: faultx.NewTransport(origin.Client().Transport, f, reg)},
		Workers:    1,
		Retries:    2,
		Policy:     retry.Policy{BaseDelay: -1},
		SkipRender: true,
		Metrics:    reg,
	}
	domain := origin.Listener.Addr().String() // 127.0.0.1:PORT — port must survive
	cap := c.CaptureProfile(context.Background(), domain, false)
	if !cap.Live {
		t.Fatalf("capture dead: %+v", cap)
	}
	if cap.Assets["/logo.png"] != "LOGO" {
		t.Fatalf("asset not fetched (port or scheme lost): assets = %v", cap.Assets)
	}
	s := reg.Snapshot().Counters
	if s["crawler.fetch.retries"] != 2 {
		t.Errorf("retries = %d, want 2 (page + asset each retried once)", s["crawler.fetch.retries"])
	}
	if s["crawler.asset_errors"] != 0 {
		t.Errorf("asset_errors = %d, want 0", s["crawler.asset_errors"])
	}
}

func TestAbsoluteURLPreservesSchemeAndPort(t *testing.T) {
	cases := []struct{ current, location, want string }{
		{"https://h.test:8443/x", "/a", "https://h.test:8443/a"},
		{"https://h.test/x", "a", "https://h.test/a"},
		{"http://h.test:8080/", "/logo.png", "http://h.test:8080/logo.png"},
		{"http://h.test/", "https://other.test/y", "https://other.test/y"},
	}
	for _, c := range cases {
		if got := absoluteURL(c.current, c.location); got != c.want {
			t.Errorf("absoluteURL(%q, %q) = %q, want %q", c.current, c.location, got, c.want)
		}
	}
}

// TestCrawlerRetriesConvention: negative disables retries entirely.
func TestCrawlerRetriesConvention(t *testing.T) {
	origin := chaosOrigin(t)
	reg := obs.NewRegistry()
	c := &Crawler{
		Client:     chaosClient(origin, faultx.Faults{Seed: 2, DropProb: 1}, reg),
		Workers:    1,
		Retries:    -1,
		Policy:     retry.Policy{BaseDelay: -1},
		SkipRender: true,
		Metrics:    reg,
	}
	if _, err := c.Crawl(context.Background(), []string{"x.chaos.test"}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot().Counters
	if s["faultx.http.drop"] != 2 {
		t.Errorf("transport attempts = %d, want 2 (one per profile, zero retries)", s["faultx.http.drop"])
	}
	if s["crawler.fetch.retries"] != 0 {
		t.Errorf("retries = %d, want 0", s["crawler.fetch.retries"])
	}
}

// TestChaosBreakerRecoversViaHalfOpenProbe walks the breaker through
// open -> half-open -> closed using the policy's fake clock hook.
func TestChaosBreakerRecoversViaHalfOpenProbe(t *testing.T) {
	origin := chaosOrigin(t)
	reg := obs.NewRegistry()
	now := time.Unix(4000, 0)
	// First two transport attempts drop (opening the breaker at
	// threshold 2), everything after passes.
	f := faultx.Faults{Seed: 8, DropProb: 1, MaxFaultsPerKey: 2}
	c := &Crawler{
		Client:  chaosClient(origin, f, reg),
		Workers: 1,
		Retries: -1,
		Policy: retry.Policy{
			BaseDelay:        -1,
			BreakerThreshold: 2,
			BreakerCooldown:  10 * time.Second,
			Now:              func() time.Time { return now },
		},
		SkipRender: true,
		Metrics:    reg,
	}
	host := "flaky.chaos.test"
	cap := c.CaptureProfile(context.Background(), host, false)
	if cap.Live {
		t.Fatal("first capture unexpectedly live")
	}
	c.CaptureProfile(context.Background(), host, false) // second failure opens
	if st := c.Retrier().State(host); st != retry.Open {
		t.Fatalf("state = %v, want open", st)
	}
	// Within the cooldown the host is fast-failed without a fetch.
	drops := reg.Counter("faultx.http.drop").Value()
	if cap := c.CaptureProfile(context.Background(), host, false); cap.Live {
		t.Fatal("open breaker let a capture through")
	}
	if got := reg.Counter("faultx.http.drop").Value(); got != drops {
		t.Fatalf("open breaker still reached the transport (%d -> %d)", drops, got)
	}
	// After the cooldown the half-open probe succeeds and closes the
	// circuit (the fault cap has been spent).
	now = now.Add(11 * time.Second)
	if cap := c.CaptureProfile(context.Background(), host, false); !cap.Live {
		t.Fatalf("half-open probe failed: %+v", cap)
	}
	if st := c.Retrier().State(host); st != retry.Closed {
		t.Fatalf("state = %v, want closed after good probe", st)
	}
	s := reg.Snapshot().Counters
	if s["crawler.breaker.half_open_probes"] != 1 {
		t.Errorf("half_open_probes = %d, want 1", s["crawler.breaker.half_open_probes"])
	}
	if s["crawler.breaker.closes"] != 1 {
		t.Errorf("closes = %d, want 1", s["crawler.breaker.closes"])
	}
}
