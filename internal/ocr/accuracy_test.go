package ocr

import (
	"testing"

	"squatphi/internal/render"
	"squatphi/internal/simrand"
)

func TestCharErrorRateBasics(t *testing.T) {
	cases := []struct {
		ref, hyp string
		want     float64
	}{
		{"PASSWORD", "PASSWORD", 0},
		{"PASSWORD", "PASSWORD ", 0}, // whitespace normalised
		{"PASSWORD", "password", 0},  // case folded
		{"ABCD", "ABXD", 0.25},
		{"ABCD", "", 1},
		{"", "", 0},
		{"", "X", 1},
	}
	for _, c := range cases {
		if got := CharErrorRate(c.ref, c.hyp); got != c.want {
			t.Errorf("CER(%q, %q) = %f, want %f", c.ref, c.hyp, got, c.want)
		}
	}
}

func TestWordErrorRate(t *testing.T) {
	if got := WordErrorRate("log in now", "log on now"); got != 1.0/3 {
		t.Fatalf("WER = %f", got)
	}
	if got := WordErrorRate("a b", "a b"); got != 0 {
		t.Fatalf("identical WER = %f", got)
	}
}

// TestEngineErrorRateVsNoise sweeps capture noise and checks the engine's
// character error rate stays in a Tesseract-like band: ~0% clean, a few
// percent at realistic noise, degrading gracefully beyond.
func TestEngineErrorRateVsNoise(t *testing.T) {
	lines := []string{
		"PLEASE ENTER YOUR PASSWORD",
		"WELCOME TO THE PAYMENT CENTER",
		"VERIFY YOUR ACCOUNT DETAILS NOW",
		"SIGN IN WITH EMAIL OR PHONE",
	}
	var e Engine
	rates := map[float64]float64{}
	for _, noise := range []float64{0, 0.01, 0.03} {
		totalCER := 0.0
		for i, text := range lines {
			ra := render.NewRaster(render.TextWidth(text, 1)+20, render.GlyphH+10)
			render.DrawText(ra, 4, 4, text, 1)
			if noise > 0 {
				ra.AddNoise(simrand.New(uint64(i+1)), noise)
			}
			totalCER += CharErrorRate(text, e.Recognize(ra))
		}
		rates[noise] = totalCER / float64(len(lines))
	}
	if rates[0] != 0 {
		t.Errorf("clean CER = %f, want 0", rates[0])
	}
	if rates[0.01] > 0.05 {
		t.Errorf("CER at 1%% noise = %f, want <= 0.05 (Tesseract-like)", rates[0.01])
	}
	if rates[0.03] > 0.30 {
		t.Errorf("CER at 3%% noise = %f, want graceful degradation", rates[0.03])
	}
	if rates[0.03] < rates[0] {
		t.Error("error rate not monotone in noise")
	}
}

// TestSpellcheckReducesWER shows the paper's pipeline property: the spell
// checker recovers words the raw engine gets nearly right.
func TestSpellcheckReducesWER(t *testing.T) {
	text := "CONFIRM YOUR PASSWORD TO CONTINUE"
	sc := NewSpellchecker([]string{"confirm", "your", "password", "to", "continue"})
	var e Engine
	var rawWER, fixedWER float64
	const trials = 6
	for i := 0; i < trials; i++ {
		ra := render.NewRaster(render.TextWidth(text, 1)+20, render.GlyphH+10)
		render.DrawText(ra, 4, 4, text, 1)
		ra.AddNoise(simrand.New(uint64(100+i)), 0.02)
		raw := e.Recognize(ra)
		rawWER += WordErrorRate(text, raw)
		fixed := ""
		for _, w := range sc.CorrectAll(e.RecognizeWords(ra)) {
			fixed += w + " "
		}
		fixedWER += WordErrorRate(text, fixed)
	}
	if fixedWER > rawWER {
		t.Errorf("spellcheck raised WER: raw %f fixed %f", rawWER/trials, fixedWER/trials)
	}
}
