package ocr

import "strings"

// Spellchecker corrects OCR misreads against a dictionary, reproducing the
// paper's post-OCR spell-checking step ("passwod" -> "password", §5.2).
// Candidates within edit distance 1 (distance 2 for words of 6+ letters)
// are replaced by the highest-priority dictionary word; exact dictionary
// hits and unknown far-away words pass through unchanged.
type Spellchecker struct {
	words map[string]int // word -> priority (lower = preferred)
	order []string
}

// NewSpellchecker builds a checker; earlier dictionary words win ties.
func NewSpellchecker(dictionary []string) *Spellchecker {
	s := &Spellchecker{words: make(map[string]int, len(dictionary))}
	for i, w := range dictionary {
		w = strings.ToLower(w)
		if _, dup := s.words[w]; !dup {
			s.words[w] = i
			s.order = append(s.order, w)
		}
	}
	return s
}

// Correct returns the corrected form of one word.
func (s *Spellchecker) Correct(word string) string {
	w := strings.ToLower(word)
	if _, ok := s.words[w]; ok {
		return w
	}
	maxDist := 1
	if len(w) >= 6 {
		maxDist = 2
	}
	best := ""
	bestDist := maxDist + 1
	bestPrio := int(^uint(0) >> 1)
	for _, cand := range s.order {
		if abs(len(cand)-len(w)) > maxDist {
			continue
		}
		d := boundedEditDistance(w, cand, maxDist)
		if d < 0 {
			continue
		}
		if d < bestDist || d == bestDist && s.words[cand] < bestPrio {
			best, bestDist, bestPrio = cand, d, s.words[cand]
		}
	}
	if best != "" {
		return best
	}
	return w
}

// CorrectAll corrects a word list in place order, returning a new slice.
func (s *Spellchecker) CorrectAll(words []string) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = s.Correct(w)
	}
	return out
}

// boundedEditDistance returns the Levenshtein distance between a and b, or
// -1 if it exceeds bound. The band optimisation keeps the scan cheap for
// dictionary-wide lookups.
func boundedEditDistance(a, b string, bound int) int {
	if abs(len(a)-len(b)) > bound {
		return -1
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if v := prev[j] + 1; v < m {
				m = v
			}
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return -1
		}
		prev, cur = cur, prev
	}
	if prev[len(b)] > bound {
		return -1
	}
	return prev[len(b)]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
