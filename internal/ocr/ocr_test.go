package ocr

import (
	"strings"
	"testing"

	"squatphi/internal/render"
	"squatphi/internal/simrand"
)

func renderText(text string, scale int) *render.Raster {
	ra := render.NewRaster(render.TextWidth(text, scale)+20, render.GlyphH*scale+10)
	render.DrawText(ra, 4, 4, text, scale)
	return ra
}

func TestRecognizeSimpleText(t *testing.T) {
	var e Engine
	for _, text := range []string{"HELLO", "PAYPAL", "PASSWORD", "LOG IN", "EMAIL OR PHONE", "ACCOUNT 42"} {
		got := e.Recognize(renderText(text, 1))
		if got != text {
			t.Errorf("Recognize(%q) = %q", text, got)
		}
	}
}

func TestRecognizeScale2(t *testing.T) {
	var e Engine
	got := e.Recognize(renderText("WELCOME", 2))
	if got != "WELCOME" {
		t.Errorf("Recognize scale-2 = %q", got)
	}
}

func TestRecognizeLowercaseInputFoldsToUpper(t *testing.T) {
	var e Engine
	got := e.Recognize(renderText("paypal", 1))
	if got != "PAYPAL" {
		t.Errorf("Recognize = %q", got)
	}
}

func TestRecognizeMultiline(t *testing.T) {
	ra := render.NewRaster(300, 60)
	render.DrawText(ra, 4, 4, "FIRST LINE", 1)
	render.DrawText(ra, 4, 4+render.LineH*2, "SECOND", 1)
	var e Engine
	got := e.Recognize(ra)
	lines := strings.Split(got, "\n")
	if len(lines) != 2 || lines[0] != "FIRST LINE" || lines[1] != "SECOND" {
		t.Errorf("Recognize multiline = %q", got)
	}
}

func TestRecognizeInsideBox(t *testing.T) {
	// Text inside an input-box outline: border removal must not destroy it.
	ra := render.NewRaster(200, 30)
	ra.StrokeRect(2, 2, 180, 22, 100)
	render.DrawText(ra, 10, 9, "USERNAME", 1)
	var e Engine
	got := e.Recognize(ra)
	if got != "USERNAME" {
		t.Errorf("Recognize in box = %q", got)
	}
}

func TestRecognizeWithNoise(t *testing.T) {
	// ~1.5% salt-and-pepper noise: the engine should still get most
	// characters; with spell-check the word should be exact.
	rng := simrand.New(21)
	words := []string{"PASSWORD", "FACEBOOK", "SECURITY", "TRANSFER"}
	sc := NewSpellchecker([]string{"password", "facebook", "security", "transfer"})
	var e Engine
	good := 0
	for i, w := range words {
		ra := renderText(w, 1)
		ra.AddNoise(rng.SplitN(uint64(i)), 0.015)
		got := strings.Join(sc.CorrectAll(e.RecognizeWords(ra)), " ")
		if got == strings.ToLower(w) {
			good++
		}
	}
	if good < 3 {
		t.Errorf("only %d/4 noisy words recovered", good)
	}
}

func TestRecognizeWordsLowercases(t *testing.T) {
	var e Engine
	got := e.RecognizeWords(renderText("LOG IN NOW", 1))
	if len(got) != 3 || got[0] != "log" || got[2] != "now" {
		t.Errorf("RecognizeWords = %v", got)
	}
}

func TestRecognizeEmptyRaster(t *testing.T) {
	var e Engine
	if got := e.Recognize(render.NewRaster(100, 50)); got != "" {
		t.Errorf("Recognize(empty) = %q", got)
	}
}

func TestRecognizeFullScreenshot(t *testing.T) {
	html := `<html><head><title>PAYPAL</title></head><body>
		<form>
		<input type="text" placeholder="EMAIL">
		<input type="password" placeholder="PASSWORD">
		<input type="submit" value="LOG IN">
		</form></body></html>`
	ra := render.Screenshot(html, render.Options{})
	var e Engine
	got := strings.ToUpper(e.Recognize(ra))
	for _, want := range []string{"PAYPAL", "EMAIL", "PASSWORD", "LOG IN"} {
		if !strings.Contains(got, want) {
			t.Errorf("screenshot OCR missing %q in %q", want, got)
		}
	}
}

func TestOCRReadsTextHiddenInImages(t *testing.T) {
	// The string-obfuscation evasion: the brand name is nowhere in the
	// HTML, only painted inside an image. OCR must still recover it.
	html := `<html><body><img src="/logo.png"><p>SIGN IN TO CONTINUE</p></body></html>`
	if strings.Contains(strings.ToLower(html), "paypal") {
		t.Fatal("test HTML must not contain the brand")
	}
	ra := render.Screenshot(html, render.Options{Assets: map[string]string{"/logo.png": "PAYPAL"}})
	var e Engine
	got := strings.ToUpper(e.Recognize(ra))
	if !strings.Contains(got, "PAYPAL") {
		t.Errorf("OCR missed image-embedded brand: %q", got)
	}
}

func TestSpellcheckerExactHit(t *testing.T) {
	sc := NewSpellchecker([]string{"password", "email"})
	if sc.Correct("password") != "password" {
		t.Error("exact hit modified")
	}
	if sc.Correct("PASSWORD") != "password" {
		t.Error("case not folded")
	}
}

func TestSpellcheckerEditDistance1(t *testing.T) {
	sc := NewSpellchecker([]string{"password", "email", "login"})
	cases := map[string]string{
		"passwod":  "password", // omission (paper's example)
		"pessword": "password", // substitution
		"emails":   "email",    // insertion
		"lgoin":    "login",    // transposition = 2 edits, len 5 -> unchanged
	}
	for in, want := range cases {
		if in == "lgoin" {
			if got := sc.Correct(in); got != "lgoin" {
				t.Errorf("Correct(%q) = %q, want unchanged", in, got)
			}
			continue
		}
		if got := sc.Correct(in); got != want {
			t.Errorf("Correct(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSpellcheckerDistance2LongWords(t *testing.T) {
	sc := NewSpellchecker([]string{"microsoft"})
	if got := sc.Correct("micrsoft"); got != "microsoft" {
		t.Errorf("Correct = %q", got)
	}
	if got := sc.Correct("mircosfot"); got == "microsoft" {
		// 4 edits away; must NOT correct
		t.Errorf("overeager correction of %q", "mircosfot")
	}
}

func TestSpellcheckerUnknownPassesThrough(t *testing.T) {
	sc := NewSpellchecker([]string{"password"})
	if got := sc.Correct("zzzzz"); got != "zzzzz" {
		t.Errorf("Correct(zzzzz) = %q", got)
	}
}

func TestSpellcheckerPriority(t *testing.T) {
	// "cat" is distance 1 from both "cab" (priority 0) and "car" (1):
	// earlier dictionary word must win.
	sc := NewSpellchecker([]string{"cab", "car"})
	if got := sc.Correct("cat"); got != "cab" {
		t.Errorf("priority tie-break = %q, want cab", got)
	}
}

func TestBoundedEditDistance(t *testing.T) {
	cases := []struct {
		a, b  string
		bound int
		want  int
	}{
		{"abc", "abc", 2, 0},
		{"abc", "abd", 2, 1},
		{"abc", "abcd", 2, 1},
		{"abc", "xyz", 2, -1},
		{"kitten", "sitting", 3, 3},
		{"kitten", "sitting", 2, -1},
	}
	for _, c := range cases {
		if got := boundedEditDistance(c.a, c.b, c.bound); got != c.want {
			t.Errorf("boundedEditDistance(%q,%q,%d) = %d, want %d", c.a, c.b, c.bound, got, c.want)
		}
	}
}

func BenchmarkRecognizeScreenshot(b *testing.B) {
	html := `<html><head><title>PAYPAL LOGIN</title></head><body>
		<form><input placeholder="EMAIL"><input type=password placeholder="PASSWORD">
		<input type=submit value="LOG IN"></form></body></html>`
	ra := render.Screenshot(html, render.Options{})
	var e Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Recognize(ra)
	}
}

func BenchmarkSpellcheck(b *testing.B) {
	sc := NewSpellchecker([]string{"password", "email", "login", "account", "secure", "verify", "facebook", "paypal", "google", "microsoft"})
	for i := 0; i < b.N; i++ {
		_ = sc.Correct("passwod")
	}
}
