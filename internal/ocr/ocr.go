// Package ocr implements the optical character recognition substrate: it
// recovers text from rendered page rasters by template-matching the built-in
// bitmap font, after denoising and removing box borders.
//
// The paper uses Tesseract to extract text from page screenshots because
// evasive phishing pages remove brand keywords from their HTML and display
// them via images or obfuscated scripts (paper §5.1). The OCR features are
// the classifier's key novelty. This engine reproduces the property that
// matters: it reads pixels, not markup, so whatever the page *shows* is
// recovered regardless of how the HTML was obfuscated. A configurable
// pixel-noise model upstream (render.Options.NoiseLevel) gives it a
// realistic non-zero error rate, which the spell-checker then corrects —
// matching the paper's Tesseract + spell-check pipeline.
package ocr

import (
	"strings"

	"squatphi/internal/render"
)

// Engine recognises text in rasters. The zero value is ready to use.
type Engine struct {
	// MinScore is the minimum template agreement (fraction of the 35 glyph
	// cells) to accept a character. Default 0.72.
	MinScore float64
}

// Recognize extracts the text of a raster, top to bottom. Lines are
// separated by newlines; unrecognisable cells are dropped.
func (e *Engine) Recognize(ra *render.Raster) string {
	minScore := e.MinScore
	if minScore == 0 {
		minScore = 0.72
	}

	work := binarize(ra)
	denoise(work)
	removeBorders(work)

	var out []string
	for _, band := range findBands(work) {
		line := e.readBand(work, band, minScore)
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// RecognizeWords returns the recognised text split into lower-cased words.
func (e *Engine) RecognizeWords(ra *render.Raster) []string {
	return strings.Fields(strings.ToLower(e.Recognize(ra)))
}

// bitmap is a binarized work image.
type bitmap struct {
	w, h int
	pix  []bool // true = ink
}

func (b *bitmap) at(x, y int) bool {
	if x < 0 || y < 0 || x >= b.w || y >= b.h {
		return false
	}
	return b.pix[y*b.w+x]
}

func (b *bitmap) set(x, y int, v bool) {
	if x < 0 || y < 0 || x >= b.w || y >= b.h {
		return
	}
	b.pix[y*b.w+x] = v
}

func binarize(ra *render.Raster) *bitmap {
	b := &bitmap{w: ra.W, h: ra.H, pix: make([]bool, ra.W*ra.H)}
	for i, v := range ra.Pix {
		b.pix[i] = v < 128
	}
	return b
}

// denoise removes weakly-connected ink pixels and fills isolated holes — a
// cheap approximation of a median filter, enough to undo salt-and-pepper
// noise. Ink with at most one dark neighbour is treated as noise: glyph
// strokes are at least two pixels thick in their run direction, so at most
// a stroke endpoint is shaved, which the Dice matcher tolerates; noise
// pairs (common at a few percent noise, and destructive to line
// segmentation) are removed entirely.
func denoise(b *bitmap) {
	// Count dark neighbours for every pixel once.
	counts := make([]uint8, len(b.pix))
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			n := uint8(0)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if (dx != 0 || dy != 0) && b.at(x+dx, y+dy) {
						n++
					}
				}
			}
			counts[y*b.w+x] = n
		}
	}
	out := make([]bool, len(b.pix))
	copy(out, b.pix)
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			i := y*b.w + x
			switch {
			case b.pix[i] && counts[i] == 0:
				out[i] = false // lone speck
			case b.pix[i] && counts[i] == 1:
				// Remove only if the single neighbour is itself weakly
				// connected: isolated noise pairs vanish, while stroke
				// endpoints (whose neighbour sits inside a glyph stroke)
				// survive.
				if neighborMaxCount(b, counts, x, y) <= 1 {
					out[i] = false
				}
			case !b.pix[i] && counts[i] >= 7:
				out[i] = true // pinhole
			}
		}
	}
	b.pix = out
}

// neighborMaxCount returns the highest neighbour-count among the dark
// neighbours of (x, y).
func neighborMaxCount(b *bitmap, counts []uint8, x, y int) uint8 {
	max := uint8(0)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := x+dx, y+dy
			if nx < 0 || ny < 0 || nx >= b.w || ny >= b.h || !b.at(nx, ny) {
				continue
			}
			if c := counts[ny*b.w+nx]; c > max {
				max = c
			}
		}
	}
	return max
}

// removeBorders erases long straight ink runs (input-box outlines, button
// borders) that would otherwise merge text bands. Glyph strokes are at most
// 10px long (5px glyphs at 2x scale), so the thresholds are safe.
func removeBorders(b *bitmap) {
	// Both passes measure runs on the original image: erasing horizontal
	// borders first would shorten the vertical border runs below threshold
	// (and vice versa), leaving box corners behind.
	erase := make([]bool, len(b.pix))

	const maxGlyphRun = 12
	for y := 0; y < b.h; y++ {
		runStart := -1
		for x := 0; x <= b.w; x++ {
			if x < b.w && b.at(x, y) {
				if runStart < 0 {
					runStart = x
				}
				continue
			}
			if runStart >= 0 && x-runStart > maxGlyphRun {
				for xx := runStart; xx < x; xx++ {
					erase[y*b.w+xx] = true
				}
			}
			runStart = -1
		}
	}
	// Tallest glyph stroke is GlyphH*2 = 14 at 2x scale.
	const maxGlyphCol = 14
	for x := 0; x < b.w; x++ {
		runStart := -1
		for y := 0; y <= b.h; y++ {
			if y < b.h && b.at(x, y) {
				if runStart < 0 {
					runStart = y
				}
				continue
			}
			if runStart >= 0 && y-runStart > maxGlyphCol {
				for yy := runStart; yy < y; yy++ {
					erase[yy*b.w+x] = true
				}
			}
			runStart = -1
		}
	}
	for i, e := range erase {
		if e {
			b.pix[i] = false
		}
	}
}

// band is a horizontal strip containing one text line.
type band struct {
	top, height int
	scale       int
}

// findBands locates text lines by the row ink profile: maximal runs of
// inked rows whose height matches the font at scale 1 or 2.
func findBands(b *bitmap) []band {
	rowInk := make([]int, b.h)
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if b.at(x, y) {
				rowInk[y]++
			}
		}
	}
	var bands []band
	y := 0
	for y < b.h {
		if rowInk[y] == 0 {
			y++
			continue
		}
		top := y
		for y < b.h && rowInk[y] > 0 {
			y++
		}
		h := y - top
		switch {
		case h >= 4 && h <= render.GlyphH+2:
			bands = append(bands, band{top: top, height: h, scale: 1})
		case h >= render.GlyphH+3 && h <= 2*render.GlyphH+4:
			bands = append(bands, band{top: top, height: h, scale: 2})
		case h > 2*render.GlyphH+4:
			// Merged region (noise bridged two lines): split greedily at
			// the expected line pitch for scale 1.
			for t := top; t < y; t += render.LineH {
				bands = append(bands, band{top: t, height: render.GlyphH, scale: 1})
			}
		default:
			// height 1..3: stray ink; skip
		}
	}
	return bands
}

// readBand recognises one text line. Glyphs sit on a fixed-pitch grid, but
// the grid origin is the block's x coordinate, not the first ink column
// (glyphs like 'I' or '1' have blank leading columns). The reader therefore
// tries the three possible anchor offsets and keeps the alignment whose
// total match score over the line is highest.
func (e *Engine) readBand(b *bitmap, bd band, minScore float64) string {
	left, right := -1, -1
	for x := 0; x < b.w; x++ {
		for y := bd.top; y < bd.top+bd.height; y++ {
			if b.at(x, y) {
				if left < 0 {
					left = x
				}
				right = x
				break
			}
		}
	}
	if left < 0 {
		return ""
	}

	bestLine := ""
	bestTotal := -1.0
	for off := 0; off <= 2; off++ {
		line, total := e.readLineAt(b, bd, left-off*bd.scale, right, minScore)
		if total > bestTotal {
			bestTotal, bestLine = total, line
		}
	}
	return strings.TrimSpace(bestLine)
}

// readLineAt reads one line with the grid anchored at origin, returning the
// text and the summed match score used for anchor selection.
func (e *Engine) readLineAt(b *bitmap, bd band, origin, right int, minScore float64) (string, float64) {
	advance := render.AdvanceX * bd.scale
	var sb strings.Builder
	total := 0.0
	pendingSpace := false
	for cellX := origin; cellX <= right; cellX += advance {
		ch, score := e.matchCell(b, cellX, bd.top, bd.scale)
		switch {
		case ch == 0:
			pendingSpace = sb.Len() > 0
		case score >= minScore:
			if pendingSpace {
				sb.WriteByte(' ')
				pendingSpace = false
			}
			sb.WriteRune(ch)
			total += score
		default:
			total -= 0.5 // unknown cell: penalise this anchoring
			pendingSpace = false
		}
	}
	return sb.String(), total
}

// matchCell matches the glyph cell whose top-left is (x, y) against the
// font templates using the Dice overlap of ink pixels, searching a small
// vertical alignment window. A cell with no ink returns (0, 0): a space.
func (e *Engine) matchCell(b *bitmap, x, y, scale int) (rune, float64) {
	bestCh := rune(0)
	bestScore := -1.0
	anyInk := false
	for dy := -1; dy <= 1; dy++ {
		cell, ink := sampleCell(b, x, y+dy, scale)
		if ink == 0 {
			continue
		}
		anyInk = true
		for ch, g := range render.Glyphs() {
			if ch == ' ' {
				continue
			}
			tp, glyphInk := 0, 0
			for gy := 0; gy < render.GlyphH; gy++ {
				for gx := 0; gx < render.GlyphW; gx++ {
					if g[gy][gx] {
						glyphInk++
						if cell[gy][gx] {
							tp++
						}
					}
				}
			}
			// Dice coefficient over ink pixels: robust to the large
			// background majority that inflates plain pixel agreement.
			score := 2 * float64(tp) / float64(glyphInk+ink)
			if score > bestScore {
				bestScore = score
				bestCh = ch
			}
		}
	}
	if !anyInk {
		return 0, 0
	}
	return bestCh, bestScore
}

// sampleCell downsamples a glyph-sized region to 5x7 by majority vote and
// returns it with its ink count.
func sampleCell(b *bitmap, x, y, scale int) ([render.GlyphH][render.GlyphW]bool, int) {
	var cell [render.GlyphH][render.GlyphW]bool
	ink := 0
	for gy := 0; gy < render.GlyphH; gy++ {
		for gx := 0; gx < render.GlyphW; gx++ {
			dark := 0
			for sy := 0; sy < scale; sy++ {
				for sx := 0; sx < scale; sx++ {
					if b.at(x+gx*scale+sx, y+gy*scale+sy) {
						dark++
					}
				}
			}
			if dark*2 > scale*scale {
				cell[gy][gx] = true
				ink++
			}
		}
	}
	return cell, ink
}
