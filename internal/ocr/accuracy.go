package ocr

import "strings"

// CharErrorRate returns the character error rate of a hypothesis against a
// reference transcript: the Levenshtein distance divided by the reference
// length (the standard OCR accuracy metric; the paper accepts Tesseract on
// the strength of its reported <3% error rate).
// Comparison is case-insensitive with whitespace runs collapsed.
func CharErrorRate(reference, hypothesis string) float64 {
	ref := normalizeTranscript(reference)
	hyp := normalizeTranscript(hypothesis)
	if len(ref) == 0 {
		if len(hyp) == 0 {
			return 0
		}
		return 1
	}
	return float64(editDistance(ref, hyp)) / float64(len(ref))
}

// WordErrorRate is the word-level analogue.
func WordErrorRate(reference, hypothesis string) float64 {
	ref := strings.Fields(strings.ToUpper(reference))
	hyp := strings.Fields(strings.ToUpper(hypothesis))
	if len(ref) == 0 {
		if len(hyp) == 0 {
			return 0
		}
		return 1
	}
	return float64(wordEditDistance(ref, hyp)) / float64(len(ref))
}

func normalizeTranscript(s string) string {
	return strings.Join(strings.Fields(strings.ToUpper(s)), " ")
}

func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func wordEditDistance(a, b []string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
