// Package faultx is a deterministic, seeded fault-injection layer for the
// network substrate: an http.RoundTripper wrapper for the crawler side and
// UDP net.Conn / net.PacketConn wrappers for the DNS side.
//
// The paper's measurement loop (§3.2, §5.3) runs continuously against
// hostile, unreliable infrastructure — dead or slow phishing hosts, flaky
// resolvers, stale answers. faultx reproduces those failure modes on
// demand so the retry/backoff/circuit-breaker layer (internal/retry) can
// be tested instead of assumed:
//
//	HTTP: dropped requests (timeouts), connection resets, 5xx bursts,
//	      slow-loris bodies, injected latency.
//	UDP:  dropped datagrams, duplicates, stale-ID replays, truncation,
//	      corruption, injected latency.
//
// Every decision is a pure function of (seed, key, attempt): the key
// identifies the logical work item (URL host+path, DNS question name) and
// the attempt index counts how many times that key has been seen. Faults
// are therefore reproducible from the seed alone and — because they do not
// depend on goroutine scheduling — identical at any worker count, which is
// what lets chaos tests assert exact metric values.
package faultx

import (
	"time"

	"squatphi/internal/simrand"
)

// Faults configures the injected fault mix. All probabilities are in
// [0, 1] and are evaluated in a fixed order per (key, attempt); at most
// one fault kind (plus optional latency) fires per attempt.
type Faults struct {
	// Seed drives every decision; the same seed replays the same faults.
	Seed uint64

	// MaxFaultsPerKey suppresses all fault kinds once a key has been
	// attempted that many times (0 = no cap). With a cap of k, retry
	// attempts beyond k always pass through, so bounded retry policies
	// can be tested for eventual success.
	MaxFaultsPerKey int

	// DelayProb injects Delay of extra latency before the operation
	// (independent of the fault kinds below).
	DelayProb float64
	Delay     time.Duration

	// HTTP-side fault kinds (evaluated in this order; first match wins).
	DropProb     float64 // swallow the request: the client sees a timeout
	ResetProb    float64 // connection reset (a non-timeout transport error)
	HTTP5xxProb  float64 // synthesize an HTTP 503 answer
	SlowBodyProb float64 // deliver the body slow-loris style

	// SlowChunk/SlowChunkDelay shape slow-loris bodies (defaults 64 bytes
	// every 1ms).
	SlowChunk      int
	SlowChunkDelay time.Duration

	// UDP-side fault kinds (evaluated in this order after DropProb; first
	// match wins).
	DupProb      float64 // deliver the response datagram twice
	StaleIDProb  float64 // deliver an ID-corrupted copy before the real response
	TruncateProb float64 // deliver only the first half of the datagram
	CorruptProb  float64 // flip bytes in the datagram payload
}

// faultKind enumerates the exclusive fault outcomes.
type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	faultReset
	faultHTTP5xx
	faultSlowBody
	faultDup
	faultStaleID
	faultTruncate
	faultCorrupt
)

func (k faultKind) String() string {
	switch k {
	case faultDrop:
		return "drop"
	case faultReset:
		return "reset"
	case faultHTTP5xx:
		return "5xx"
	case faultSlowBody:
		return "slow_body"
	case faultDup:
		return "dup"
	case faultStaleID:
		return "stale_id"
	case faultTruncate:
		return "truncate"
	case faultCorrupt:
		return "corrupt"
	default:
		return "none"
	}
}

// decision is the reproducible outcome for one (key, attempt).
type decision struct {
	kind  faultKind
	delay bool
}

// rng derives the decision stream for one (key, attempt). The side prefix
// keeps HTTP and UDP streams of the same logical key uncorrelated.
func (f Faults) rng(side, key string, attempt int) *simrand.RNG {
	return simrand.New(f.Seed).Split(side + ":" + key).SplitN(uint64(attempt))
}

func (f Faults) capped(attempt int) bool {
	return f.MaxFaultsPerKey > 0 && attempt >= f.MaxFaultsPerKey
}

// httpDecide resolves the HTTP-side fault for (key, attempt).
func (f Faults) httpDecide(key string, attempt int) decision {
	rng := f.rng("http", key, attempt)
	d := decision{delay: rng.Bool(f.DelayProb)}
	if f.capped(attempt) {
		return d
	}
	switch {
	case rng.Bool(f.DropProb):
		d.kind = faultDrop
	case rng.Bool(f.ResetProb):
		d.kind = faultReset
	case rng.Bool(f.HTTP5xxProb):
		d.kind = faultHTTP5xx
	case rng.Bool(f.SlowBodyProb):
		d.kind = faultSlowBody
	}
	return d
}

// udpDecide resolves the UDP-side fault for (key, attempt).
func (f Faults) udpDecide(key string, attempt int) decision {
	rng := f.rng("udp", key, attempt)
	d := decision{delay: rng.Bool(f.DelayProb)}
	if f.capped(attempt) {
		return d
	}
	switch {
	case rng.Bool(f.DropProb):
		d.kind = faultDrop
	case rng.Bool(f.DupProb):
		d.kind = faultDup
	case rng.Bool(f.StaleIDProb):
		d.kind = faultStaleID
	case rng.Bool(f.TruncateProb):
		d.kind = faultTruncate
	case rng.Bool(f.CorruptProb):
		d.kind = faultCorrupt
	}
	return d
}

// HTTPFault returns the name of the HTTP-side fault that fires for
// (key, attempt): "drop", "reset", "5xx", "slow_body", or "none". It is
// the replay oracle chaos tests use to compute the exact counter values a
// run must produce, independent of worker count or scheduling.
func (f Faults) HTTPFault(key string, attempt int) string {
	return f.httpDecide(key, attempt).kind.String()
}

// UDPFault returns the name of the UDP-side fault that fires for
// (key, attempt): "drop", "dup", "stale_id", "truncate", "corrupt", or
// "none". See HTTPFault.
func (f Faults) UDPFault(key string, attempt int) string {
	return f.udpDecide(key, attempt).kind.String()
}

func (f Faults) slowChunk() int {
	if f.SlowChunk <= 0 {
		return 64
	}
	return f.SlowChunk
}

func (f Faults) slowChunkDelay() time.Duration {
	if f.SlowChunkDelay <= 0 {
		return time.Millisecond
	}
	return f.SlowChunkDelay
}
