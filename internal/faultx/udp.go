package faultx

import (
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"squatphi/internal/obs"
)

// udpMetrics bundles the injected-fault counters shared by the Conn and
// PacketConn wrappers.
type udpMetrics struct {
	drops, dups, stales, truncs, corrupts, delays *obs.Counter
}

func newUDPMetrics(reg *obs.Registry) udpMetrics {
	return udpMetrics{
		drops:    reg.Counter("faultx.udp.drop"),
		dups:     reg.Counter("faultx.udp.dup"),
		stales:   reg.Counter("faultx.udp.stale_id"),
		truncs:   reg.Counter("faultx.udp.truncate"),
		corrupts: reg.Counter("faultx.udp.corrupt"),
		delays:   reg.Counter("faultx.udp.delay"),
	}
}

// defaultKey keys a datagram by an FNV hash of its payload beyond the
// 2-byte ID prefix, so retransmissions of the same query (with the same
// ID) share a key without the caller having to parse the protocol.
func defaultKey(b []byte) string {
	h := fnv.New64a()
	if len(b) > 2 {
		_, _ = h.Write(b[2:])
	} else {
		_, _ = h.Write(b)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Conn wraps a client-side UDP net.Conn (as returned by net.Dial) with
// seeded fault injection. Outgoing datagrams may be dropped or delayed;
// the matching response may be duplicated, replayed with a corrupted
// (stale) ID, truncated, or corrupted, per the Faults decision for the
// datagram's (key, attempt).
//
// Injected extra datagrams (duplicates, the real response behind a stale
// replay) are queued inside the wrapper and served by subsequent Read
// calls before any socket read, so their delivery order is deterministic
// and independent of scheduling.
type Conn struct {
	net.Conn
	f   Faults
	key func([]byte) string
	met udpMetrics

	mu       sync.Mutex
	attempts map[string]int
	pending  faultKind // response fault armed by the last Write
	queue    [][]byte  // injected datagrams served before real reads
}

// WrapConn wraps conn with the given fault mix. keyFn derives the fault
// key from each outgoing datagram (nil selects a payload hash that
// ignores the leading 2-byte ID); reg (which may be nil) receives
// faultx.udp.* counters.
func WrapConn(conn net.Conn, f Faults, keyFn func([]byte) string, reg *obs.Registry) *Conn {
	if keyFn == nil {
		keyFn = defaultKey
	}
	return &Conn{
		Conn:     conn,
		f:        f,
		key:      keyFn,
		met:      newUDPMetrics(reg),
		attempts: map[string]int{},
	}
}

// Write sends one datagram, applying the (key, attempt) fault decision.
func (c *Conn) Write(b []byte) (int, error) {
	key := c.key(b)
	c.mu.Lock()
	n := c.attempts[key]
	c.attempts[key]++
	c.mu.Unlock()

	d := c.f.udpDecide(key, n)
	if d.delay && c.f.Delay > 0 {
		c.met.delays.Inc()
		time.Sleep(c.f.Delay)
	}
	if d.kind == faultDrop {
		c.met.drops.Inc()
		return len(b), nil // swallowed: the reader will hit its deadline
	}
	c.mu.Lock()
	c.pending = d.kind
	c.mu.Unlock()
	return c.Conn.Write(b)
}

// Read delivers queued injected datagrams first, then reads the socket
// and applies the response fault armed by the last Write.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if len(c.queue) > 0 {
		pkt := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		return copy(b, pkt), nil
	}
	c.mu.Unlock()

	n, err := c.Conn.Read(b)
	if err != nil {
		return n, err
	}

	c.mu.Lock()
	kind := c.pending
	c.pending = faultNone
	c.mu.Unlock()

	switch kind {
	case faultDup:
		// Deliver the response now and queue an identical late duplicate.
		c.met.dups.Inc()
		c.enqueue(b[:n])
	case faultStaleID:
		// Queue the real response and deliver an ID-corrupted copy first —
		// the wire shape of accepting a stale answer from an earlier query.
		c.met.stales.Inc()
		c.enqueue(b[:n])
		if n >= 2 {
			b[0] ^= 0xFF
			b[1] ^= 0x55
		}
	case faultTruncate:
		if n > 4 {
			c.met.truncs.Inc()
			return n / 2, nil
		}
	case faultCorrupt:
		c.met.corrupts.Inc()
		for i := 2; i < n; i += 5 {
			b[i] ^= 0xA5
		}
	}
	return n, nil
}

func (c *Conn) enqueue(pkt []byte) {
	cp := append([]byte(nil), pkt...)
	c.mu.Lock()
	c.queue = append(c.queue, cp)
	c.mu.Unlock()
}

// PacketConn wraps a server-side net.PacketConn with fault injection on
// outgoing datagrams (WriteTo): responses may be dropped, delayed,
// duplicated, truncated, corrupted, or preceded by a stale-ID replay.
type PacketConn struct {
	net.PacketConn
	f   Faults
	key func([]byte) string
	met udpMetrics

	mu       sync.Mutex
	attempts map[string]int
}

// WrapPacketConn wraps pc with the given fault mix; see WrapConn for the
// keyFn and reg semantics.
func WrapPacketConn(pc net.PacketConn, f Faults, keyFn func([]byte) string, reg *obs.Registry) *PacketConn {
	if keyFn == nil {
		keyFn = defaultKey
	}
	return &PacketConn{
		PacketConn: pc,
		f:          f,
		key:        keyFn,
		met:        newUDPMetrics(reg),
		attempts:   map[string]int{},
	}
}

// WriteTo sends one datagram, applying the (key, attempt) fault decision.
func (p *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	key := p.key(b)
	p.mu.Lock()
	n := p.attempts[key]
	p.attempts[key]++
	p.mu.Unlock()

	d := p.f.udpDecide(key, n)
	if d.delay && p.f.Delay > 0 {
		p.met.delays.Inc()
		time.Sleep(p.f.Delay)
	}
	switch d.kind {
	case faultDrop:
		p.met.drops.Inc()
		return len(b), nil
	case faultDup:
		p.met.dups.Inc()
		if n, err := p.PacketConn.WriteTo(b, addr); err != nil {
			return n, err
		}
		return p.PacketConn.WriteTo(b, addr)
	case faultStaleID:
		p.met.stales.Inc()
		stale := append([]byte(nil), b...)
		if len(stale) >= 2 {
			stale[0] ^= 0xFF
			stale[1] ^= 0x55
		}
		if n, err := p.PacketConn.WriteTo(stale, addr); err != nil {
			return n, err
		}
		return p.PacketConn.WriteTo(b, addr)
	case faultTruncate:
		if len(b) > 4 {
			p.met.truncs.Inc()
			return p.PacketConn.WriteTo(b[:len(b)/2], addr)
		}
	case faultCorrupt:
		p.met.corrupts.Inc()
		cp := append([]byte(nil), b...)
		for i := 2; i < len(cp); i += 5 {
			cp[i] ^= 0xA5
		}
		return p.PacketConn.WriteTo(cp, addr)
	}
	return p.PacketConn.WriteTo(b, addr)
}
