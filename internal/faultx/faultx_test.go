package faultx

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"squatphi/internal/obs"
)

func TestDecisionsDeterministic(t *testing.T) {
	f := Faults{Seed: 11, DropProb: 0.3, ResetProb: 0.2, HTTP5xxProb: 0.2, SlowBodyProb: 0.1,
		DupProb: 0.2, StaleIDProb: 0.2, TruncateProb: 0.1, CorruptProb: 0.1}
	g := Faults{Seed: 11, DropProb: 0.3, ResetProb: 0.2, HTTP5xxProb: 0.2, SlowBodyProb: 0.1,
		DupProb: 0.2, StaleIDProb: 0.2, TruncateProb: 0.1, CorruptProb: 0.1}
	for attempt := 0; attempt < 50; attempt++ {
		for _, key := range []string{"a.test/", "b.test/x", "c"} {
			if f.HTTPFault(key, attempt) != g.HTTPFault(key, attempt) {
				t.Fatalf("http decision for (%q, %d) not deterministic", key, attempt)
			}
			if f.UDPFault(key, attempt) != g.UDPFault(key, attempt) {
				t.Fatalf("udp decision for (%q, %d) not deterministic", key, attempt)
			}
		}
	}
}

func TestDecisionsVaryBySeedAndSide(t *testing.T) {
	a := Faults{Seed: 1, DropProb: 0.5}
	b := Faults{Seed: 2, DropProb: 0.5}
	diffSeed, diffSide := false, false
	for attempt := 0; attempt < 64; attempt++ {
		if a.HTTPFault("k", attempt) != b.HTTPFault("k", attempt) {
			diffSeed = true
		}
		if a.HTTPFault("k", attempt) != a.UDPFault("k", attempt) {
			diffSide = true
		}
	}
	if !diffSeed {
		t.Error("fault stream identical across seeds")
	}
	if !diffSide {
		t.Error("http and udp streams of the same key are correlated")
	}
}

func TestMaxFaultsPerKeyCapsInjection(t *testing.T) {
	f := Faults{Seed: 3, DropProb: 1, MaxFaultsPerKey: 2}
	for attempt := 0; attempt < 2; attempt++ {
		if got := f.HTTPFault("k", attempt); got != "drop" {
			t.Fatalf("attempt %d: fault = %q, want drop", attempt, got)
		}
	}
	for attempt := 2; attempt < 6; attempt++ {
		if got := f.HTTPFault("k", attempt); got != "none" {
			t.Fatalf("capped attempt %d: fault = %q, want none", attempt, got)
		}
	}
}

// stubRT answers every request with a fixed 200 body.
type stubRT struct{ calls int }

func (s *stubRT) RoundTrip(req *http.Request) (*http.Response, error) {
	s.calls++
	return &http.Response{
		StatusCode: 200, Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Body: io.NopCloser(strings.NewReader("hello fault injection body")), Request: req,
	}, nil
}

func mustReq(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestTransportDropIsTimeout(t *testing.T) {
	inner := &stubRT{}
	reg := obs.NewRegistry()
	tr := NewTransport(inner, Faults{Seed: 9, DropProb: 1}, reg)
	_, err := tr.RoundTrip(mustReq(t, "http://h.test/"))
	if err == nil {
		t.Fatal("dropped request returned a response")
	}
	if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("drop error %v is not a net.Error timeout", err)
	}
	if inner.calls != 0 {
		t.Error("dropped request reached the inner transport")
	}
	if reg.Counter("faultx.http.drop").Value() != 1 {
		t.Error("drop counter not incremented")
	}
	if tr.Attempts("h.test/") != 1 {
		t.Errorf("attempts = %d, want 1", tr.Attempts("h.test/"))
	}
}

func TestTransportResetIsNotTimeout(t *testing.T) {
	tr := NewTransport(&stubRT{}, Faults{Seed: 9, ResetProb: 1}, nil)
	_, err := tr.RoundTrip(mustReq(t, "http://h.test/"))
	if err == nil {
		t.Fatal("reset request returned a response")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("reset error %v reports Timeout(), must be a non-timeout transport error", err)
	}
}

func TestTransport5xxAndSlowBody(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTransport(&stubRT{}, Faults{Seed: 9, HTTP5xxProb: 1}, reg)
	resp, err := tr.RoundTrip(mustReq(t, "http://h.test/"))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("5xx fault: resp=%v err=%v", resp, err)
	}
	resp.Body.Close()

	tr = NewTransport(&stubRT{}, Faults{Seed: 9, SlowBodyProb: 1, SlowChunk: 4, SlowChunkDelay: time.Microsecond}, reg)
	resp, err = tr.RoundTrip(mustReq(t, "http://h.test/"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != "hello fault injection body" {
		t.Fatalf("slow body = %q err=%v, want full payload", body, err)
	}
	if reg.Counter("faultx.http.slow_body").Value() != 1 {
		t.Error("slow_body counter not incremented")
	}
}

// udpEchoPair starts a UDP echo server and returns a faulty client conn.
func udpEchoPair(t *testing.T, f Faults, reg *obs.Registry) *Conn {
	t.Helper()
	srv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	go func() {
		buf := make([]byte, 2048)
		for {
			n, addr, err := srv.ReadFrom(buf)
			if err != nil {
				return
			}
			_, _ = srv.WriteTo(buf[:n], addr)
		}
	}()
	raw, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	return WrapConn(raw, f, nil, reg)
}

var testPkt = []byte{0xAB, 0xCD, 'p', 'a', 'y', 'l', 'o', 'a', 'd', '0', '1', '2'}

func TestConnDropSwallowsDatagram(t *testing.T) {
	reg := obs.NewRegistry()
	c := udpEchoPair(t, Faults{Seed: 21, DropProb: 1}, reg)
	if _, err := c.Write(testPkt); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 2048)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read after dropped write returned data")
	}
	if reg.Counter("faultx.udp.drop").Value() != 1 {
		t.Error("drop counter not incremented")
	}
}

func TestConnStaleIDThenRealResponse(t *testing.T) {
	reg := obs.NewRegistry()
	c := udpEchoPair(t, Faults{Seed: 21, StaleIDProb: 1}, reg)
	if _, err := c.Write(testPkt); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 2048)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] == testPkt[0] && buf[1] == testPkt[1] {
		t.Fatalf("first datagram has the true ID %x, want corrupted", buf[:2])
	}
	if string(buf[2:n]) != string(testPkt[2:]) {
		t.Error("stale replay corrupted the payload beyond the ID")
	}
	n, err = c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != string(testPkt) {
		t.Fatalf("second datagram = %x, want the real response", buf[:n])
	}
	if reg.Counter("faultx.udp.stale_id").Value() != 1 {
		t.Error("stale counter not incremented")
	}
}

func TestConnDupTruncateCorrupt(t *testing.T) {
	reg := obs.NewRegistry()
	c := udpEchoPair(t, Faults{Seed: 21, DupProb: 1}, reg)
	if _, err := c.Write(testPkt); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	for i := 0; i < 2; i++ {
		n, err := c.Read(buf)
		if err != nil || string(buf[:n]) != string(testPkt) {
			t.Fatalf("dup read %d = %x err=%v", i, buf[:n], err)
		}
	}

	c = udpEchoPair(t, Faults{Seed: 21, TruncateProb: 1}, reg)
	if _, err := c.Write(testPkt); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	n, err := c.Read(buf)
	if err != nil || n != len(testPkt)/2 {
		t.Fatalf("truncated read n=%d err=%v, want %d", n, err, len(testPkt)/2)
	}

	c = udpEchoPair(t, Faults{Seed: 21, CorruptProb: 1}, reg)
	if _, err := c.Write(testPkt); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	n, err = c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) == string(testPkt) {
		t.Error("corrupt fault delivered an unmodified datagram")
	}
	if buf[0] != testPkt[0] || buf[1] != testPkt[1] {
		t.Error("corrupt fault touched the 2-byte ID prefix")
	}
}
