package faultx

import (
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"squatphi/internal/obs"
)

// timeoutError is the transport error produced by a dropped request. It
// satisfies net.Error with Timeout() == true, like a real client timeout,
// without spending the wall-clock wait.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultx: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var _ net.Error = timeoutError{}

// Transport wraps an http.RoundTripper with seeded fault injection. The
// fault key of a request is its URL host+path, so every retry of the same
// page advances that page's attempt counter deterministically.
type Transport struct {
	inner http.RoundTripper
	f     Faults

	drops, resets, fivexx, slows, delays *obs.Counter

	mu       sync.Mutex
	attempts map[string]int
}

// NewTransport wraps inner (nil selects http.DefaultTransport) with the
// given fault mix, reporting injected faults under faultx.http.* in reg
// (which may be nil).
func NewTransport(inner http.RoundTripper, f Faults, reg *obs.Registry) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:    inner,
		f:        f,
		drops:    reg.Counter("faultx.http.drop"),
		resets:   reg.Counter("faultx.http.reset"),
		fivexx:   reg.Counter("faultx.http.5xx"),
		slows:    reg.Counter("faultx.http.slow_body"),
		delays:   reg.Counter("faultx.http.delay"),
		attempts: map[string]int{},
	}
}

// Attempts returns how many times the given key (host+path) has been
// requested, for assertions in chaos tests.
func (t *Transport) Attempts(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts[key]
}

// RoundTrip implements http.RoundTripper with fault injection.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := req.URL.Host + req.URL.Path
	t.mu.Lock()
	n := t.attempts[key]
	t.attempts[key]++
	t.mu.Unlock()

	d := t.f.httpDecide(key, n)
	if d.delay && t.f.Delay > 0 {
		t.delays.Inc()
		time.Sleep(t.f.Delay)
	}
	switch d.kind {
	case faultDrop:
		t.drops.Inc()
		return nil, timeoutError{}
	case faultReset:
		t.resets.Inc()
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	case faultHTTP5xx:
		t.fivexx.Inc()
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Retry-After": []string{"1"}},
			Body:    io.NopCloser(strings.NewReader("injected 503 burst")),
			Request: req,
		}, nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err == nil && d.kind == faultSlowBody {
		t.slows.Inc()
		resp.Body = &slowBody{
			inner: resp.Body,
			chunk: t.f.slowChunk(),
			delay: t.f.slowChunkDelay(),
		}
	}
	return resp, err
}

// slowBody trickles reads chunk bytes at a time with a delay before each
// chunk: a bounded slow-loris response body.
type slowBody struct {
	inner io.ReadCloser
	chunk int
	delay time.Duration
}

func (s *slowBody) Read(p []byte) (int, error) {
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	time.Sleep(s.delay)
	return s.inner.Read(p)
}

func (s *slowBody) Close() error { return s.inner.Close() }
