package faultx

import (
	"net"
	"time"
)

// DialTimeout is the sanctioned raw TCP/UDP dialer for client components
// outside the transport layer. The repository convention (enforced by
// squatvet's transport analyzer) forbids direct net.Dial* calls outside
// internal/dnsx, internal/faultx and internal/retry, so that every
// outbound connection is opened at a seam where chaos harnesses can
// interpose fault-injecting wrappers: components expose a Dial hook and
// fall back to this function when the hook is nil (see whois.Client).
func DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout(network, addr, timeout)
}
