package core

import (
	"fmt"
	"sort"

	"squatphi/internal/crawler"
	"squatphi/internal/features"
	"squatphi/internal/ml"
	"squatphi/internal/obs/trace"
)

// This file assembles verdict-provenance records (internal/obs/trace)
// from the pipeline's own state: matcher evidence is recomputed on
// demand via squat.Matcher.Explain (deterministic, so nothing needs to
// be captured on the scan hot path), cache provenance comes from the
// delta engine's epoch stamps (or the pipeline's own scan-epoch counter
// on full scans), and crawl/ML evidence is reconstructed from the cached
// crawl results and the trained classifier. Everything here is
// observational: no verdict, ordering, or cache decision reads any of
// it, and a record's bytes are identical across serial, parallel, and
// delta runs of the same world.

// explainCtx carries the detection-run state one record assembly needs.
type explainCtx struct {
	clf      *Classifier
	results  map[string]*crawler.Result
	flagged  map[string][2]*Flagged // per domain: [web, mobile]
	retries  map[string]int64
	failures map[string]int64
}

// explainContext indexes a detection run for record assembly. clf, det
// and the snapshot's crawl results may each be absent; the evidence
// simply shrinks to what is known.
func (p *Pipeline) explainContext(clf *Classifier, det *Detection, snapshot int) *explainCtx {
	ec := &explainCtx{
		clf:      clf,
		results:  map[string]*crawler.Result{},
		flagged:  map[string][2]*Flagged{},
		retries:  p.crawlerByProfile.HostRetries(),
		failures: p.crawlerByProfile.HostFailures(),
	}
	if rs, ok := p.crawls[snapshot]; ok {
		for i := range rs {
			ec.results[rs[i].Domain] = &rs[i]
		}
	}
	if det != nil {
		for i := range det.FlaggedWeb {
			f := &det.FlaggedWeb[i]
			pair := ec.flagged[f.Domain]
			pair[0] = f
			ec.flagged[f.Domain] = pair
		}
		for i := range det.FlaggedMobile {
			f := &det.FlaggedMobile[i]
			pair := ec.flagged[f.Domain]
			pair[1] = f
			ec.flagged[f.Domain] = pair
		}
	}
	return ec
}

// cacheEvidence explains where the domain's scan verdict came from.
// Under incremental scanning the delta engine's epoch stamps decide
// fresh-vs-cached; on full scans every verdict is fresh at the
// pipeline's latest scan epoch — so a first scan reads "fresh, epoch 1"
// in both modes and explain output stays byte-identical across them.
func (p *Pipeline) cacheEvidence(domain string) *trace.CacheEvidence {
	ce := &trace.CacheEvidence{Fingerprint: fmt.Sprintf("%016x", p.Matcher.Fingerprint())}
	if p.delta != nil {
		if pr, ok := p.delta.Provenance(domain); ok {
			ce.Epoch = pr.ComputedEpoch
			ce.Source = "fresh"
			if pr.Cached {
				ce.Source = "cache"
			}
			return ce
		}
	}
	p.stageMu.Lock()
	ce.Epoch = p.scanEpoch
	p.stageMu.Unlock()
	ce.Source = "fresh"
	return ce
}

// mlEvidence scores one feature sample and explains the prediction:
// ensemble score, per-tree vote margin for forests, and the sparse
// feature vector. The score path is exactly the detection scan's
// (ClassifySample over sampleFor), so the reported score equals the one
// the verdict used.
func mlEvidence(clf *Classifier, s features.Sample) *trace.MLEvidence {
	vec := clf.Extractor.Vector(s)
	ev := &trace.MLEvidence{Dim: len(vec)}
	if rf, ok := clf.Model.(*ml.RandomForest); ok {
		d := rf.PredictVotes(vec)
		ev.Score, ev.Trees, ev.VotesFor, ev.Margin = d.Proba, d.Trees, d.VotesFor, d.Margin
	} else {
		ev.Score = clf.Model.PredictProba(vec)
	}
	for i, v := range vec {
		if v != 0 {
			ev.NonZero = append(ev.NonZero, trace.FeatureValue{Index: i, Value: v})
		}
	}
	return ev
}

// explainRecord assembles the full evidence record for one domain.
func (p *Pipeline) explainRecord(domain string, ec *explainCtx) *trace.Record {
	ex := p.Matcher.Explain(domain)
	rec := &trace.Record{
		Schema:  trace.SchemaVersion,
		Domain:  ex.Domain,
		Matcher: ex.Evidence(),
		Cache:   p.cacheEvidence(ex.Domain),
	}
	if r, ok := ec.results[ex.Domain]; ok {
		for pi, cap := range [2]crawler.Capture{r.Web, r.Mobile} {
			profile := "web"
			if pi == 1 {
				profile = "mobile"
			}
			pe := trace.ProfileEvidence{Profile: profile}
			hops := len(cap.RedirectChain) - 1
			if hops < 0 {
				hops = 0
			}
			pe.Crawl = &trace.CrawlEvidence{
				Live:       cap.Live,
				StatusCode: cap.StatusCode,
				Redirects:  hops,
				FinalHost:  cap.FinalHost,
				Retries:    ec.retries[ex.Domain],
				Failures:   ec.failures[ex.Domain],
			}
			verdict := &trace.VerdictEvidence{}
			if ec.clf != nil && cap.Live && !cap.Redirected() {
				pe.ML = mlEvidence(ec.clf, p.sampleFor(ex.Domain, cap))
				verdict.Score = pe.ML.Score
				verdict.Flagged = pe.ML.Score >= 0.5
			}
			if f := ec.flagged[ex.Domain][pi]; f != nil {
				verdict.Flagged = true
				verdict.Score = f.Score
				verdict.Confirmed = f.Confirmed
			}
			pe.Verdict = verdict
			rec.Profiles = append(rec.Profiles, pe)
		}
	}
	if evs := p.Prov.EventsFor(ex.Domain); len(evs) > 0 {
		rec.Events = evs
	}
	return rec
}

// Explain builds the evidence record for a domain against a detection
// run: matcher rule and derived forms, cache provenance, per-profile
// crawl and classifier evidence, and any attributed events. clf and det
// may be nil (e.g. before detection ran); the record then carries
// matcher and cache evidence only.
func (p *Pipeline) Explain(domain string, clf *Classifier, det *Detection, snapshot int) *trace.Record {
	return p.explainRecord(domain, p.explainContext(clf, det, snapshot))
}

// Lookup resolves a domain to its provenance record for the
// /debug/verdict handler: the always-on store of flagged verdicts first,
// falling back to on-demand matcher and cache evidence for any other
// domain. The bool mirrors trace.VerdictHandler's contract; it is always
// true because matcher evidence exists for every name.
func (p *Pipeline) Lookup(domain string) (*trace.Record, bool) {
	if rec, ok := p.Prov.Get(domain); ok {
		return rec, true
	}
	ex := p.Matcher.Explain(domain)
	rec := &trace.Record{
		Schema:  trace.SchemaVersion,
		Domain:  ex.Domain,
		Matcher: ex.Evidence(),
		Cache:   p.cacheEvidence(ex.Domain),
	}
	if evs := p.Prov.EventsFor(ex.Domain); len(evs) > 0 {
		rec.Events = evs
	}
	return rec, true
}

// recordFlagged stores an evidence record for every flagged verdict of a
// detection run (always-on provenance: flagged domains never depend on
// head sampling) and emits one event per flagged domain.
func (p *Pipeline) recordFlagged(clf *Classifier, det *Detection, snapshot int) {
	if det == nil {
		return
	}
	ec := p.explainContext(clf, det, snapshot)
	domains := make([]string, 0, len(ec.flagged))
	for d := range ec.flagged {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		pair := ec.flagged[d]
		attrs := []trace.Attr{trace.String("domain", d)}
		if f := pair[0]; f != nil {
			attrs = append(attrs, trace.Float("web_score", f.Score))
		}
		if f := pair[1]; f != nil {
			attrs = append(attrs, trace.Float("mobile_score", f.Score))
		}
		p.Events.Info("core.detect.flagged", attrs...)
		p.Prov.Put(p.explainRecord(d, ec))
	}
}
