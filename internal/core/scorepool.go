package core

import (
	"sync"
	"sync/atomic"
)

// scoreParallel runs fn(i) for every i in [0, n) on a bounded pool of
// Config.ScoreWorkers goroutines, the shared scoring pool behind page
// classification and feature extraction (image-hash/OCR scoring is the
// compute bottleneck of the pipeline, so it must scale with cores).
//
// In-flight work is tracked in the core.score.inflight gauge. fn must be
// safe for concurrent calls on distinct indices and should write its result
// to a per-index slot; callers then assemble outputs in index order, so the
// final artifacts are identical whatever the pool width.
func (p *Pipeline) scoreParallel(n int, fn func(i int)) {
	workers := p.scoreWorkers()
	if workers > n {
		workers = n
	}
	inflight := p.Obs.Gauge("core.score.inflight")
	if workers <= 1 {
		for i := 0; i < n; i++ {
			inflight.Add(1)
			fn(i)
			inflight.Add(-1)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				inflight.Add(1)
				fn(i)
				inflight.Add(-1)
			}
		}()
	}
	wg.Wait()
}
