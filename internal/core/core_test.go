package core

import (
	"context"
	"testing"

	"squatphi/internal/features"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// testPipeline builds a small but complete pipeline. The world is sized so
// that every stage has meaningful data while the test stays fast.
func testPipeline(t testing.TB) *Pipeline {
	t.Helper()
	cfg := Config{
		World:           webworld.Config{SquattingDomains: 1500, NonSquattingPhish: 250, Seed: 99},
		DNSNoiseRecords: 4000,
		ForestTrees:     15,
		CrawlWorkers:    16,
		Seed:            7,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestScanDNSFindsPlantedSquats(t *testing.T) {
	p := testPipeline(t)
	cands := p.ScanDNS()
	if len(cands) < len(p.World.SquattingDomains)*9/10 {
		t.Fatalf("scan found %d candidates, planted %d", len(cands), len(p.World.SquattingDomains))
	}
	// Every candidate should be a known site or combo noise; phishing
	// sites must all be found.
	found := map[string]bool{}
	for _, c := range cands {
		found[c.Domain] = true
	}
	for _, s := range p.World.PhishingSites() {
		if !found[s.Domain] {
			t.Errorf("phishing domain %s missed by DNS scan", s.Domain)
		}
	}
}

func TestScanDNSCached(t *testing.T) {
	p := testPipeline(t)
	a := p.ScanDNS()
	b := p.ScanDNS()
	if &a[0] != &b[0] {
		t.Fatal("ScanDNS not cached")
	}
}

func TestGroundTruthLabels(t *testing.T) {
	p := testPipeline(t)
	gt, err := p.BuildGroundTruth(context.Background(), 300)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := gt.Counts()
	if pos < 30 {
		t.Fatalf("positives = %d, want >= 30", pos)
	}
	if neg < 100 {
		t.Fatalf("negatives = %d, want >= 100", neg)
	}
	// Positives must carry forms (phishing pages always do).
	for _, s := range gt.Samples[:10] {
		if s.Sample.HTML == "" {
			t.Fatal("empty HTML in ground truth")
		}
	}
}

func TestEndToEndDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	p := testPipeline(t)
	ctx := context.Background()

	gt, err := p.BuildGroundTruth(ctx, 300)
	if err != nil {
		t.Fatal(err)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())

	// Table 7 shape: the classifier must be strong on ground truth.
	if clf.Eval.AUC < 0.85 {
		t.Errorf("CV AUC = %.3f, want >= 0.85 (paper: 0.97)", clf.Eval.AUC)
	}
	if fpr := clf.Eval.Confusion.FPR(); fpr > 0.15 {
		t.Errorf("CV FPR = %.3f, want small (paper: 0.03)", fpr)
	}

	det, err := p.DetectInWild(ctx, clf, 0)
	if err != nil {
		t.Fatal(err)
	}
	confirmed := det.ConfirmedUnion()
	truePhish := 0
	for _, s := range p.World.PhishingSites() {
		if s.IsPhishingAt(0) {
			truePhish++
		}
	}
	if truePhish == 0 {
		t.Fatal("world has no live phishing to find")
	}
	recall := float64(len(confirmed)) / float64(truePhish)
	if recall < 0.5 {
		t.Errorf("detection recall = %.2f (%d/%d), want >= 0.5", recall, len(confirmed), truePhish)
	}
	// Precision of flagging: the majority of flags should confirm
	// (paper: ~70%).
	flagged := len(det.FlaggedWeb) + len(det.FlaggedMobile)
	confirmedFlags := 0
	for _, f := range det.FlaggedWeb {
		if f.Confirmed {
			confirmedFlags++
		}
	}
	for _, f := range det.FlaggedMobile {
		if f.Confirmed {
			confirmedFlags++
		}
	}
	if flagged == 0 {
		t.Fatal("nothing flagged")
	}
	if prec := float64(confirmedFlags) / float64(flagged); prec < 0.4 {
		t.Errorf("confirmation rate = %.2f (%d/%d), want >= 0.4", prec, confirmedFlags, flagged)
	}
}

func TestDetectionSquatTypesCovered(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	p := testPipeline(t)
	ctx := context.Background()
	liveCombo := 0
	for _, s := range p.World.PhishingSites() {
		if s.SquatType == squat.Combo && s.IsPhishingAt(0) {
			liveCombo++
		}
	}
	if liveCombo == 0 {
		t.Skip("test world has no live combo phishing to confirm")
	}
	gt, err := p.BuildGroundTruth(ctx, 200)
	if err != nil {
		t.Fatal(err)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())
	det, err := p.DetectInWild(ctx, clf, 0)
	if err != nil {
		t.Fatal(err)
	}
	types := map[squat.Type]bool{}
	for _, f := range append(det.FlaggedWeb, det.FlaggedMobile...) {
		if f.Confirmed {
			types[f.SquatType] = true
		}
	}
	if !types[squat.Combo] {
		t.Error("no combo squatting phishing confirmed (should dominate)")
	}
}

func TestBlacklistSummaryIntegration(t *testing.T) {
	p := testPipeline(t)
	var phishDomains []string
	for _, s := range p.World.PhishingSites() {
		phishDomains = append(phishDomains, s.Domain)
	}
	sum := p.BlacklistSummary(phishDomains, 30)
	if sum.Total != len(phishDomains) {
		t.Fatalf("summary total = %d", sum.Total)
	}
	if float64(sum.Undetect)/float64(sum.Total) < 0.8 {
		t.Errorf("undetected = %d/%d, want >= 80%%", sum.Undetect, sum.Total)
	}
}

func TestEvasionStatsIntegration(t *testing.T) {
	p := testPipeline(t)
	var phishDomains []string
	for _, s := range p.World.PhishingSites() {
		if s.IsPhishingAt(0) {
			phishDomains = append(phishDomains, s.Domain)
		}
	}
	if len(phishDomains) == 0 {
		t.Skip("no live phishing")
	}
	stats, err := p.EvasionStatsFor(context.Background(), phishDomains, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.N == 0 {
		t.Fatal("no evasion reports collected")
	}
	if rate := stats.StringObfRate(); rate < 0.3 {
		t.Errorf("string obfuscation rate = %.2f, want substantial (~0.68)", rate)
	}
	mean, _ := stats.LayoutMeanStd()
	if mean <= 1 {
		t.Errorf("layout distance mean = %.1f, want > 1", mean)
	}
}

func TestOriginalShotCached(t *testing.T) {
	p := testPipeline(t)
	ctx := context.Background()
	a := p.OriginalShot(ctx, "paypal")
	b := p.OriginalShot(ctx, "paypal")
	if a == nil || a != b {
		t.Fatal("OriginalShot not cached or nil")
	}
	if p.OriginalShot(ctx, "not-a-brand") != nil {
		t.Fatal("unknown brand returned a shot")
	}
}
