// Package core implements SquatPhi, the paper's end-to-end measurement
// system: brand selection, squatting-domain detection over a DNS snapshot,
// distributed web+mobile crawling, ground-truth construction from the
// crowdsourced feed, classifier training with OCR/lexical/form features,
// detection of squatting phishing in the wild, and the follow-up analyses
// (evasion, blacklists, liveness).
//
// Each pipeline stage is an explicit method returning its artifact, so the
// experiment drivers (internal/experiments) can reproduce individual
// tables and figures without re-running the whole system, while cmd/
// binaries run it end to end.
package core

import (
	"context"
	"fmt"
	"sort"

	"squatphi/internal/blacklist"
	"squatphi/internal/crawler"
	"squatphi/internal/dnsx"
	"squatphi/internal/phishtank"
	"squatphi/internal/render"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// Config parameterises a pipeline run.
type Config struct {
	// World configures the synthetic Internet.
	World webworld.Config
	// DNSNoiseRecords is the number of unrelated background DNS records
	// mixed into the snapshot (the 224M-record haystack, scaled down).
	DNSNoiseRecords int
	// ForestTrees is the random-forest size (default 40).
	ForestTrees int
	// CrawlWorkers is the crawler pool width (default 16).
	CrawlWorkers int
	// Seed drives feed generation and training randomness.
	Seed uint64
}

// DefaultConfig is the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		World:           webworld.DefaultConfig(),
		DNSNoiseRecords: 30000,
		ForestTrees:     40,
		CrawlWorkers:    16,
		Seed:            3278532,
	}
}

// Pipeline is one instantiated SquatPhi system bound to a synthetic world.
type Pipeline struct {
	Cfg        Config
	World      *webworld.World
	Server     *webworld.Server
	Feed       *phishtank.Feed
	Matcher    *squat.Matcher
	Blacklists *blacklist.Service

	crawlerByProfile *crawler.Crawler

	// Caches.
	snapshot      *dnsx.Store
	candidates    []squat.Candidate
	crawls        map[int][]crawler.Result
	originalShots map[string]*render.Raster
}

// New builds the world, starts its HTTP server, and prepares the pipeline.
// Callers must Close it.
func New(cfg Config) (*Pipeline, error) {
	if cfg.ForestTrees <= 0 {
		cfg.ForestTrees = 40
	}
	if cfg.DNSNoiseRecords <= 0 {
		cfg.DNSNoiseRecords = 30000
	}
	world := webworld.Build(cfg.World)
	server, err := webworld.NewServer(world)
	if err != nil {
		return nil, fmt.Errorf("core: start world server: %w", err)
	}
	p := &Pipeline{
		Cfg:        cfg,
		World:      world,
		Server:     server,
		Feed:       phishtank.Build(world, cfg.Seed),
		Matcher:    squat.NewMatcher(world.Brands.SquatBrands()),
		Blacklists: blacklist.NewService(),
		crawls:     map[int][]crawler.Result{},
	}
	p.crawlerByProfile = &crawler.Crawler{Client: server.Client(), Workers: cfg.CrawlWorkers}
	return p, nil
}

// Close shuts down the world server.
func (p *Pipeline) Close() error { return p.Server.Close() }

// DNSSnapshot lazily builds the ActiveDNS-style snapshot: every resolving
// domain of the world planted among background noise.
func (p *Pipeline) DNSSnapshot() *dnsx.Store {
	if p.snapshot == nil {
		p.snapshot = dnsx.GenerateSnapshot(dnsx.SnapshotSpec{
			Planted:      p.World.DNSDomains(),
			NoiseRecords: p.Cfg.DNSNoiseRecords,
			Seed:         p.Cfg.Seed,
		})
	}
	return p.snapshot
}

// ScanDNS runs the squatting matcher over the whole snapshot and returns
// the candidate squatting domains (paper §3.1; Figure 2).
func (p *Pipeline) ScanDNS() []squat.Candidate {
	if p.candidates == nil {
		var out []squat.Candidate
		p.DNSSnapshot().Range(func(rec dnsx.Record) bool {
			if c, ok := p.Matcher.Match(rec.Domain); ok {
				out = append(out, c)
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
		p.candidates = out
	}
	return p.candidates
}

// CandidateDomains returns just the domain names from ScanDNS.
func (p *Pipeline) CandidateDomains() []string {
	cands := p.ScanDNS()
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Domain
	}
	return out
}

// Crawl crawls all candidate squatting domains (web + mobile) at the given
// snapshot date, with caching (paper §3.2).
func (p *Pipeline) Crawl(ctx context.Context, snapshot int) ([]crawler.Result, error) {
	if cached, ok := p.crawls[snapshot]; ok {
		return cached, nil
	}
	p.Server.SetSnapshot(snapshot)
	results, err := p.crawlerByProfile.Crawl(ctx, p.CandidateDomains())
	if err != nil {
		return nil, err
	}
	p.crawls[snapshot] = results
	return results, nil
}

// CrawlDomains crawls an arbitrary domain list at a snapshot (used for the
// feed's ground-truth collection and liveness re-checks).
func (p *Pipeline) CrawlDomains(ctx context.Context, snapshot int, domains []string) ([]crawler.Result, error) {
	p.Server.SetSnapshot(snapshot)
	return p.crawlerByProfile.Crawl(ctx, domains)
}
