// Package core implements SquatPhi, the paper's end-to-end measurement
// system: brand selection, squatting-domain detection over a DNS snapshot,
// distributed web+mobile crawling, ground-truth construction from the
// crowdsourced feed, classifier training with OCR/lexical/form features,
// detection of squatting phishing in the wild, and the follow-up analyses
// (evasion, blacklists, liveness).
//
// Each pipeline stage is an explicit method returning its artifact, so the
// experiment drivers (internal/experiments) can reproduce individual
// tables and figures without re-running the whole system, while cmd/
// binaries run it end to end.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"squatphi/internal/blacklist"
	"squatphi/internal/crawler"
	"squatphi/internal/deltascan"
	"squatphi/internal/dnsx"
	"squatphi/internal/domlm"
	"squatphi/internal/obs"
	"squatphi/internal/obs/trace"
	"squatphi/internal/phishtank"
	"squatphi/internal/render"
	"squatphi/internal/retry"
	"squatphi/internal/snapfmt"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// Config parameterises a pipeline run.
type Config struct {
	// World configures the synthetic Internet.
	World webworld.Config
	// DNSNoiseRecords is the number of unrelated background DNS records
	// mixed into the snapshot (the 224M-record haystack, scaled down).
	DNSNoiseRecords int
	// ForestTrees is the random-forest size (default 40).
	ForestTrees int
	// CrawlWorkers is the crawler pool width (default 16).
	CrawlWorkers int
	// ScanWorkers is the DNS scan and snapshot-generation parallelism:
	// store shards are scanned by this many goroutines. <= 0 means
	// GOMAXPROCS; 1 forces the serial reference path. The scan result is
	// identical for every value.
	ScanWorkers int
	// ScoreWorkers bounds the classifier-scoring pool used by detection,
	// liveness monitoring, and feature extraction (<= 0 means GOMAXPROCS;
	// 1 forces serial scoring). Results are identical for every value.
	ScoreWorkers int
	// DomLM trains a brand-language model (internal/domlm) over the
	// monitored brand universe and attaches it to the matcher: scan
	// misses are scored for brand-likeness and promoted to the Generated
	// squatting type at domlm.DefaultThreshold. The score also joins the
	// classifier feature vector (features.Options.UseDomLM) and every
	// Explain/provenance record. Off by default: the paper's five-type
	// system is the baseline configuration.
	DomLM bool
	// DomLMThreshold overrides the generated-squat promotion threshold
	// when DomLM is on (<= 0 means domlm.DefaultThreshold).
	DomLMThreshold float64
	// DNSBrandNoise mixes this many brand-adjacent hard negatives into
	// the DNS snapshot when DomLM is on (dnsx.SnapshotSpec.BrandNoise):
	// benign registrations scored just below the promotion threshold,
	// pressuring the precision of generated-squat detection. 0 = none.
	DNSBrandNoise int
	// Incremental routes the DNS scan through a persistent delta-scan
	// engine (internal/deltascan): successive scans of an evolving
	// snapshot skip unchanged store shards wholesale and answer repeated
	// domains from a fingerprint-versioned match cache. The candidate set
	// is byte-identical to the full scan at every worker count; only the
	// cost of re-scans changes. Detection (DetectInWild) and everything
	// downstream consume the incremental candidates transparently.
	Incremental bool
	// CrawlRetries is the crawler's retry count (repository retry
	// convention: negative disables, 0 selects the default of 1).
	CrawlRetries int
	// Retry is the shared retry/backoff/circuit-breaker policy handed to
	// the network components the pipeline owns (currently the crawler).
	// The zero value keeps budget and breaker disabled.
	Retry retry.Policy
	// Seed drives feed generation and training randomness.
	Seed uint64
	// Metrics, when set, is the registry every pipeline component reports
	// to; nil means the pipeline creates its own (always available via
	// Pipeline.Obs). Sharing one registry lets a command aggregate DNS,
	// matcher, crawler, and stage metrics behind one debug endpoint.
	Metrics *obs.Registry
	// TraceSampleEvery is the verdict-provenance head-sampling period: one
	// scanned domain in every TraceSampleEvery gets a scan-provenance
	// mark. Domains are selected by name hash, so the sampled set is
	// identical at any worker count. 0 selects the default (1 in 64);
	// negative disables scan sampling. Flagged verdicts always get a full
	// evidence record regardless of this setting.
	TraceSampleEvery int
	// Events, when set, receives the pipeline's structured event log (see
	// internal/obs/trace.Logger); events carrying a domain attribute are
	// also attributed into that domain's provenance record. nil disables
	// event logging; provenance records still accumulate.
	Events *trace.Logger
}

// DefaultConfig is the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		World:           webworld.DefaultConfig(),
		DNSNoiseRecords: 30000,
		ForestTrees:     40,
		CrawlWorkers:    16,
		Seed:            3278532,
	}
}

// Pipeline is one instantiated SquatPhi system bound to a synthetic world.
type Pipeline struct {
	Cfg        Config
	World      *webworld.World
	Server     *webworld.Server
	Feed       *phishtank.Feed
	Matcher    *squat.Matcher
	Blacklists *blacklist.Service
	// LM is the brand-language model attached to the matcher (nil unless
	// Config.DomLM). It is immutable and shared by every scan worker.
	LM *domlm.Model

	// Obs is the metrics registry all pipeline components report to and
	// Trace the ring-buffer recorder of recent stage-span trees; both are
	// always non-nil and ready to serve via obs.Serve.
	Obs   *obs.Registry
	Trace *obs.Recorder
	// Prov is the verdict-provenance collector: head-sampled scan marks
	// plus always-on evidence records for flagged verdicts. Always
	// non-nil; persist it with trace.Collector.WriteStore.
	Prov *trace.Collector
	// Events is the structured event log (Config.Events; nil-tolerant).
	Events *trace.Logger

	crawlerByProfile *crawler.Crawler

	// delta is the persistent incremental scanner (nil unless
	// Config.Incremental); RescanDNS feeds it fresh snapshot epochs.
	delta *deltascan.Engine

	// Caches.
	snapshot      *dnsx.Store
	candidates    []squat.Candidate
	crawls        map[int][]crawler.Result
	originalShots map[string]*render.Raster

	stageMu  sync.Mutex
	stageDur map[string]time.Duration
	// scanEpoch counts completed DNS scans (stageMu-guarded); it mirrors
	// deltascan's epoch so non-incremental runs report the same cache
	// provenance ("fresh at epoch N") as incremental ones.
	scanEpoch int
}

// New builds the world, starts its HTTP server, and prepares the pipeline.
// Callers must Close it.
func New(cfg Config) (*Pipeline, error) {
	if cfg.ForestTrees <= 0 {
		cfg.ForestTrees = 40
	}
	if cfg.DNSNoiseRecords <= 0 {
		cfg.DNSNoiseRecords = 30000
	}
	world := webworld.Build(cfg.World)
	server, err := webworld.NewServer(world)
	if err != nil {
		return nil, fmt.Errorf("core: start world server: %w", err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Pipeline{
		Cfg:        cfg,
		World:      world,
		Server:     server,
		Feed:       phishtank.Build(world, cfg.Seed),
		Matcher:    squat.NewMatcher(world.Brands.SquatBrands()),
		Blacklists: blacklist.NewService(),
		Obs:        reg,
		Trace:      obs.NewRecorder(32),
		Prov:       trace.NewCollector(cfg.TraceSampleEvery),
		Events:     cfg.Events,
		crawls:     map[int][]crawler.Result{},
		stageDur:   map[string]time.Duration{},
	}
	if cfg.DomLM {
		// Train deterministically over the brand universe and attach
		// before any instrumentation or sharing: AttachLM folds the model
		// fingerprint into the matcher fingerprint, which deltascan and
		// the provenance records key on.
		p.LM = domlm.Train(world.Brands.Names(), domlm.DefaultConfig())
		p.Matcher.AttachLM(p.LM, cfg.DomLMThreshold)
	}
	p.Matcher.InstrumentMetrics(reg)
	p.Matcher.InstrumentTrace(p.Prov)
	p.Events.AttachCollector(p.Prov)
	if cfg.Incremental {
		p.delta = deltascan.NewEngine()
		p.delta.InstrumentMetrics(reg)
	}
	p.crawlerByProfile = &crawler.Crawler{
		Client:  server.Client(),
		Workers: cfg.CrawlWorkers,
		Retries: cfg.CrawlRetries,
		Policy:  cfg.Retry,
		Metrics: reg,
		Events:  cfg.Events.Component("crawler"),
	}
	return p, nil
}

// Close shuts down the world server.
func (p *Pipeline) Close() error { return p.Server.Close() }

// stageSpan opens a span for a named pipeline stage, recording into the
// pipeline's tracer (as a child when ctx already carries a stage span) and
// into the "core.stage.<name>_ms" histogram. The returned func must be
// called when the stage ends, with the stage's error if any.
func (p *Pipeline) stageSpan(ctx context.Context, name string) (context.Context, func(error)) {
	ctx = obs.WithRecorder(ctx, p.Trace)
	ctx, span := obs.StartSpan(ctx, name)
	sw := obs.StartStopwatch()
	return ctx, func(err error) {
		d := sw.Elapsed()
		p.Obs.Histogram("core.stage."+name+"_ms", obs.MillisBuckets).
			Observe(float64(d) / float64(time.Millisecond))
		p.stageMu.Lock()
		p.stageDur[name] = d
		p.stageMu.Unlock()
		span.EndWith(err)
		attrs := []trace.Attr{trace.String("stage", name), trace.Float("ms", float64(d)/float64(time.Millisecond))}
		if err != nil {
			attrs = append(attrs, trace.String("error", err.Error()))
			p.Events.Error("core.stage.failed", attrs...)
			return
		}
		p.Events.Debug("core.stage.done", attrs...)
	}
}

// StageTimings returns the most recent wall time of each executed stage,
// the per-stage accounting surfaced in result artifacts (cmd/paperbench
// emits it into its JSON output).
func (p *Pipeline) StageTimings() map[string]time.Duration {
	p.stageMu.Lock()
	defer p.stageMu.Unlock()
	out := make(map[string]time.Duration, len(p.stageDur))
	for k, v := range p.stageDur {
		out[k] = v
	}
	return out
}

// scanWorkers resolves the configured DNS-scan parallelism.
func (p *Pipeline) scanWorkers() int {
	if p.Cfg.ScanWorkers > 0 {
		return p.Cfg.ScanWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// scoreWorkers resolves the configured scoring-pool width.
func (p *Pipeline) scoreWorkers() int {
	if p.Cfg.ScoreWorkers > 0 {
		return p.Cfg.ScoreWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// DNSSnapshot lazily builds the ActiveDNS-style snapshot: every resolving
// domain of the world planted among background noise.
func (p *Pipeline) DNSSnapshot() *dnsx.Store {
	if p.snapshot == nil {
		_, done := p.stageSpan(context.Background(), "dns_snapshot")
		spec := dnsx.SnapshotSpec{
			Planted:      p.World.DNSDomains(),
			NoiseRecords: p.Cfg.DNSNoiseRecords,
			Seed:         p.Cfg.Seed,
			Workers:      p.scanWorkers(),
		}
		if p.LM != nil && p.Cfg.DNSBrandNoise > 0 {
			spec.BrandNoise = p.LM
			spec.BrandNoiseRecords = p.Cfg.DNSBrandNoise
		}
		p.snapshot = dnsx.GenerateSnapshot(spec)
		p.Obs.Gauge("core.dns_snapshot.records").Set(float64(p.snapshot.Len()))
		done(nil)
	}
	return p.snapshot
}

// ScanStore runs the matcher over every record of store and returns the
// squatting candidates sorted by domain. workers > 1 scans store shards on
// a worker pool with per-worker candidate buffers; the merged, sorted
// result is identical to the serial (workers <= 1) path because candidate
// domains are unique within a store. reg (nil-tolerant) receives the scan
// throughput gauge core.scan_dns.records_per_sec and, on the parallel
// path, the per-shard scan-time histogram core.scan_dns.shard_ms.
func ScanStore(store *dnsx.Store, m *squat.Matcher, workers int, reg *obs.Registry) []squat.Candidate {
	sw := obs.StartStopwatch()
	var out []squat.Candidate
	if workers <= 1 {
		var sc squat.Scratch
		store.Range(func(rec dnsx.Record) bool {
			if c, ok := m.MatchString(rec.Domain, &sc); ok {
				out = append(out, c)
			}
			return true
		})
	} else {
		shardMS := reg.Histogram("core.scan_dns.shard_ms", obs.MillisBuckets)
		nShards := store.NumShards()
		if workers > nShards {
			workers = nShards
		}
		buffers := make([][]squat.Candidate, workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var buf []squat.Candidate
				var sc squat.Scratch
				for {
					shard := int(next.Add(1)) - 1
					if shard >= nShards {
						break
					}
					shardSW := obs.StartStopwatch()
					store.RangeShard(shard, func(rec dnsx.Record) bool {
						if c, ok := m.MatchString(rec.Domain, &sc); ok {
							buf = append(buf, c)
						}
						return true
					})
					shardMS.Observe(shardSW.Millis())
				}
				buffers[w] = buf
			}(w)
		}
		wg.Wait()
		for _, buf := range buffers {
			out = append(out, buf...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	if secs := sw.Seconds(); secs > 0 {
		reg.Gauge("core.scan_dns.records_per_sec").Set(float64(store.Len()) / secs)
	}
	return out
}

// ScanSnapshot runs the matcher over every record of an mmap'd binary
// snapshot (internal/snapfmt) and returns the squatting candidates sorted
// by domain — the scan path for paper-scale data, where records live in a
// file mapping and are classified via MatchBytes without materializing a
// string per record. The result is identical to ScanStore over a store
// holding the same records, at any worker count. reg (nil-tolerant)
// receives core.scan_snap.records_per_sec and, on the parallel path, the
// per-segment scan-time histogram core.scan_snap.segment_ms.
func ScanSnapshot(snap *snapfmt.Snapshot, m *squat.Matcher, workers int, reg *obs.Registry) ([]squat.Candidate, error) {
	sw := obs.StartStopwatch()
	var out []squat.Candidate
	nSegs := snap.NumShards()
	if workers <= 1 {
		var sc squat.Scratch
		for seg := 0; seg < nSegs; seg++ {
			err := snap.VisitShardDomains(seg, func(domain []byte) bool {
				if c, ok := m.MatchBytes(domain, &sc); ok {
					out = append(out, c)
				}
				return true
			})
			if err != nil {
				return nil, err
			}
		}
	} else {
		segMS := reg.Histogram("core.scan_snap.segment_ms", obs.MillisBuckets)
		if workers > nSegs {
			workers = nSegs
		}
		buffers := make([][]squat.Candidate, workers)
		errs := make([]error, workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var buf []squat.Candidate
				var sc squat.Scratch
				for {
					seg := int(next.Add(1)) - 1
					if seg >= nSegs {
						break
					}
					segSW := obs.StartStopwatch()
					err := snap.VisitShardDomains(seg, func(domain []byte) bool {
						if c, ok := m.MatchBytes(domain, &sc); ok {
							buf = append(buf, c)
						}
						return true
					})
					if err != nil {
						errs[w] = err
						break
					}
					segMS.Observe(segSW.Millis())
				}
				buffers[w] = buf
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, buf := range buffers {
			out = append(out, buf...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	if secs := sw.Seconds(); secs > 0 {
		reg.Gauge("core.scan_snap.records_per_sec").Set(float64(snap.Len()) / secs)
	}
	return out, nil
}

// ScanDNS runs the squatting matcher over the whole snapshot and returns
// the candidate squatting domains (paper §3.1; Figure 2). The scan is
// distributed over Config.ScanWorkers goroutines; its result is identical
// to the single-goroutine reference scan. Under Config.Incremental the
// scan goes through the pipeline's delta-scan engine: the first call is a
// full scan that warms the engine, and later epochs (RescanDNS after the
// snapshot evolved) reuse every shard and verdict the snapshot checksums
// prove unchanged.
func (p *Pipeline) ScanDNS() []squat.Candidate {
	if p.candidates == nil {
		snapshot := p.DNSSnapshot() // built under its own stage span
		_, done := p.stageSpan(context.Background(), "scan_dns")
		var out []squat.Candidate
		if p.delta != nil {
			sw := obs.StartStopwatch()
			out = p.delta.Scan(snapshot, p.Matcher, p.scanWorkers())
			if secs := sw.Seconds(); secs > 0 {
				p.Obs.Gauge("core.scan_dns.records_per_sec").Set(float64(snapshot.Len()) / secs)
			}
		} else {
			out = ScanStore(snapshot, p.Matcher, p.scanWorkers(), p.Obs)
		}
		p.candidates = out
		p.Obs.Gauge("core.scan_dns.candidates").Set(float64(len(out)))
		p.stageMu.Lock()
		p.scanEpoch++
		epoch := p.scanEpoch
		p.stageMu.Unlock()
		sampled, sampledHits := p.Prov.ScanStats()
		p.Events.Info("core.scan.done",
			trace.Int("epoch", epoch), trace.Int("candidates", len(out)),
			trace.Int64("prov_sampled", sampled), trace.Int64("prov_sampled_hits", sampledHits))
		done(nil)
	}
	return p.candidates
}

// RescanDNS invalidates the cached candidate set and re-runs ScanDNS —
// the per-epoch entry point for longitudinal callers that mutated the
// snapshot (new registrations, re-pointed records). With
// Config.Incremental the re-scan is a cheap delta pass; without it, a
// full scan.
func (p *Pipeline) RescanDNS() []squat.Candidate {
	p.candidates = nil
	return p.ScanDNS()
}

// DeltaEngine exposes the pipeline's incremental scanner (nil unless
// Config.Incremental), for callers that drive their own snapshot stores
// (cmd/squatmond's zone monitor) or want per-epoch Stats.
func (p *Pipeline) DeltaEngine() *deltascan.Engine { return p.delta }

// LMScore returns the brand-language-model score of a domain's
// registrable label in [0, 1], or 0 when Config.DomLM is off. It is the
// feature-extraction entry (features.Sample.LMScore): unlike the matcher
// hot path it splits the effective TLD itself.
func (p *Pipeline) LMScore(domain string) float64 {
	if p.LM == nil {
		return 0
	}
	label, _ := squat.SplitETLD(domain)
	return p.LM.ScoreLabel(label)
}

// CandidateDomains returns just the domain names from ScanDNS.
func (p *Pipeline) CandidateDomains() []string {
	cands := p.ScanDNS()
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Domain
	}
	return out
}

// Degraded records substrate-failure thinning for one stage: failed items
// out of total produced no usable output because the network layer gave
// nothing back after retries (or the circuit breaker fast-failed them).
// The counter core.degraded.<stage> and the fraction gauge make partial
// output visible in every metrics snapshot instead of the stage silently
// shrinking; downstream stages keep working on what survived.
func (p *Pipeline) Degraded(stage string, failed, total int) {
	if failed <= 0 || total <= 0 {
		return
	}
	p.Obs.Counter("core.degraded." + stage).Add(int64(failed))
	p.Obs.Gauge("core.degraded." + stage + ".fraction").Set(float64(failed) / float64(total))
}

// transportDead reports whether a capture got no HTTP answer at all —
// the substrate failed (timeouts, resets, open breaker), as opposed to a
// server that answered with an error status.
func transportDead(c crawler.Capture) bool { return !c.Live && c.StatusCode == 0 }

// countDegraded tallies results where both profiles were transport-dead.
func countDegraded(results []crawler.Result) int {
	n := 0
	for _, r := range results {
		if transportDead(r.Web) && transportDead(r.Mobile) {
			n++
		}
	}
	return n
}

// Crawl crawls all candidate squatting domains (web + mobile) at the given
// snapshot date, with caching (paper §3.2). Domains the substrate swallowed
// entirely are counted under core.degraded.crawl; the partial result set is
// returned (with the error, if the context was cancelled) rather than
// discarded.
func (p *Pipeline) Crawl(ctx context.Context, snapshot int) ([]crawler.Result, error) {
	if cached, ok := p.crawls[snapshot]; ok {
		return cached, nil
	}
	domains := p.CandidateDomains()
	ctx, done := p.stageSpan(ctx, "crawl")
	p.Server.SetSnapshot(snapshot)
	results, err := p.crawlerByProfile.Crawl(ctx, domains)
	done(err)
	p.Degraded("crawl", countDegraded(results), len(results))
	if err != nil {
		return results, err
	}
	p.crawls[snapshot] = results
	return results, nil
}

// CrawlDomains crawls an arbitrary domain list at a snapshot (used for the
// feed's ground-truth collection and liveness re-checks), with the same
// degraded-stage accounting as Crawl under core.degraded.crawl_domains.
func (p *Pipeline) CrawlDomains(ctx context.Context, snapshot int, domains []string) ([]crawler.Result, error) {
	ctx, done := p.stageSpan(ctx, "crawl_domains")
	p.Server.SetSnapshot(snapshot)
	results, err := p.crawlerByProfile.Crawl(ctx, domains)
	done(err)
	p.Degraded("crawl_domains", countDegraded(results), len(results))
	return results, err
}
