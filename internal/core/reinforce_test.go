package core

import (
	"context"
	"testing"

	"squatphi/internal/features"
)

func TestReinforceGrowsGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	p := testPipeline(t)
	ctx := context.Background()

	gt, err := p.BuildGroundTruth(ctx, 200)
	if err != nil {
		t.Fatal(err)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())
	det, err := p.DetectInWild(ctx, clf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.FlaggedWeb)+len(det.FlaggedMobile) == 0 {
		t.Skip("nothing flagged to reinforce with")
	}

	enlarged, clf2, err := p.Reinforce(ctx, gt, det, 0, features.AllFeatures())
	if err != nil {
		t.Fatal(err)
	}
	if len(enlarged.Samples) <= len(gt.Samples) {
		t.Fatalf("reinforced corpus %d <= original %d", len(enlarged.Samples), len(gt.Samples))
	}
	// No duplicate domains.
	seen := map[string]bool{}
	for _, s := range enlarged.Samples {
		if seen[s.Domain] {
			t.Fatalf("duplicate domain %s in reinforced corpus", s.Domain)
		}
		seen[s.Domain] = true
	}
	// The retrained classifier remains strong.
	if clf2.Eval.AUC < 0.80 {
		t.Errorf("reinforced AUC = %.3f, want >= 0.80", clf2.Eval.AUC)
	}
}

func TestReportConfirmedImprovesBlacklists(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	p := testPipeline(t)
	ctx := context.Background()
	gt, err := p.BuildGroundTruth(ctx, 200)
	if err != nil {
		t.Fatal(err)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())
	det, err := p.DetectInWild(ctx, clf, 0)
	if err != nil {
		t.Fatal(err)
	}
	confirmed := det.ConfirmedUnion()
	if len(confirmed) == 0 {
		t.Skip("nothing confirmed")
	}
	var domains []string
	for d := range confirmed {
		domains = append(domains, d)
	}
	before := p.BlacklistSummary(domains, 40)
	reported := p.ReportConfirmed(det, 30)
	after := p.BlacklistSummary(domains, 40)
	if reported == 0 {
		t.Skip("all confirmed domains already listed")
	}
	if after.Undetect >= before.Undetect {
		t.Fatalf("reporting did not reduce undetected: before %d after %d", before.Undetect, after.Undetect)
	}
	if after.Undetect != 0 {
		t.Errorf("after reporting, %d domains still unlisted (should all be on the feed)", after.Undetect)
	}
}
