package core

import (
	"context"
	"strings"
	"testing"

	"squatphi/internal/features"
	"squatphi/internal/ml"
	"squatphi/internal/webworld"
)

// TestOCRFeaturesRescueObfuscatedPhishing is the paper's central claim as
// an integration test (DESIGN.md shape invariant 7). String-obfuscated
// phishing pages keep the brand only in pixels; benign login pages under
// squatting domains share their lexical/form surface. A classifier with
// OCR features must therefore separate the two populations better than
// one without: only the pixel path still sees the impersonation.
func TestOCRFeaturesRescueObfuscatedPhishing(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	p := testPipeline(t)
	ctx := context.Background()
	gt, err := p.BuildGroundTruth(ctx, 250)
	if err != nil {
		t.Fatal(err)
	}
	withOCR := p.TrainClassifier(gt, features.AllFeatures())
	withoutOCR := p.TrainClassifier(gt, features.Options{UseLexical: true, UseForms: true})

	// Positives: live phishing pages whose HTML genuinely lacks the brand.
	var posDomains []string
	collect := func(s *webworld.Site) {
		if !s.StringObf || !s.IsPhishingAt(0) || s.Cloak == webworld.CloakMobileOnly {
			return
		}
		page, ok := p.World.PageFor(s, 0, false)
		if !ok || strings.Contains(strings.ToLower(page.HTML), s.Brand.Name) {
			return
		}
		posDomains = append(posDomains, s.Domain)
	}
	for _, s := range p.World.PhishingSites() {
		collect(s)
	}
	for _, d := range p.World.NonSquattingPhish {
		collect(p.World.Sites[d])
	}
	// Negatives: benign squatting pages with credential forms (member
	// logins, webmail, fan forums) — the lexical lookalikes.
	var negDomains []string
	for _, d := range p.World.SquattingDomains {
		s := p.World.Sites[d]
		if s.Kind != webworld.Benign {
			continue
		}
		page, ok := p.World.PageFor(s, 0, false)
		if !ok || !strings.Contains(page.HTML, `type="password"`) {
			continue
		}
		negDomains = append(negDomains, d)
		if len(negDomains) >= 60 {
			break
		}
	}
	if len(posDomains) < 5 || len(negDomains) < 5 {
		t.Skipf("thin populations: %d obfuscated phishing, %d benign logins", len(posDomains), len(negDomains))
	}

	scoreAll := func(clf *Classifier, domains []string, label int, truths *[]int, with, without *[]float64) {
		results, err := p.CrawlDomains(ctx, 0, domains)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			if !res.Web.Live {
				continue
			}
			*truths = append(*truths, label)
			*with = append(*with, ClassifyCapture(withOCR, res.Web))
			*without = append(*without, ClassifyCapture(withoutOCR, res.Web))
		}
		_ = clf
	}
	var truths []int
	var withScores, withoutScores []float64
	scoreAll(withOCR, posDomains, 1, &truths, &withScores, &withoutScores)
	scoreAll(withOCR, negDomains, 0, &truths, &withScores, &withoutScores)

	aucWith := ml.AUC(ml.ROC(truths, withScores))
	aucWithout := ml.AUC(ml.ROC(truths, withoutScores))
	t.Logf("obfuscated-vs-benign-login AUC: with OCR %.3f, without %.3f (pos=%d neg=%d)",
		aucWith, aucWithout, len(posDomains), len(truths)-len(posDomains))
	if aucWith < aucWithout-0.02 {
		t.Errorf("OCR features hurt separation: %.3f < %.3f", aucWith, aucWithout)
	}
	if aucWith < 0.75 {
		t.Errorf("with-OCR AUC %.3f too low on the obfuscated subset", aucWith)
	}
}
