package core

import (
	"context"
	"fmt"

	"squatphi/internal/features"
)

// Reinforce implements the improvement the paper proposes in §6.1: feed
// the newly confirmed phishing pages (and the flagged-but-rejected false
// positives) back into the training data and retrain the classifier.
// It returns the enlarged ground truth and the retrained classifier.
func (p *Pipeline) Reinforce(ctx context.Context, gt *GroundTruth, det *Detection, snapshot int, opts features.Options) (*GroundTruth, *Classifier, error) {
	results, err := p.Crawl(ctx, snapshot)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reinforce crawl: %w", err)
	}
	byDomain := map[string]int{}
	for i, r := range results {
		byDomain[r.Domain] = i
	}
	already := map[string]bool{}
	for _, s := range gt.Samples {
		already[s.Domain] = true
	}

	enlarged := &GroundTruth{Samples: append([]LabeledSample(nil), gt.Samples...)}
	add := func(f Flagged) {
		if already[f.Domain] {
			return
		}
		i, ok := byDomain[f.Domain]
		if !ok {
			return
		}
		cap := results[i].Web
		if f.Mobile {
			cap = results[i].Mobile
		}
		if !cap.Live {
			return
		}
		already[f.Domain] = true
		enlarged.Samples = append(enlarged.Samples, LabeledSample{
			Domain:   f.Domain,
			Sample:   p.sampleFor(f.Domain, cap),
			Phishing: f.Confirmed,
		})
	}
	for _, f := range det.FlaggedWeb {
		add(f)
	}
	for _, f := range det.FlaggedMobile {
		add(f)
	}
	clf := p.TrainClassifier(enlarged, opts)
	return enlarged, clf, nil
}

// ReportConfirmed submits the confirmed phishing domains to the blacklist
// ecosystem (paper §7: the authors manually reported the 1,015 undetected
// URLs). Returns how many were newly reported (not already listed).
func (p *Pipeline) ReportConfirmed(det *Detection, day int) int {
	reported := 0
	for domain := range det.ConfirmedUnion() {
		site, ok := p.World.Site(domain)
		if !ok {
			continue
		}
		if p.Blacklists.Detected(site, day) {
			continue // already on a list
		}
		p.Blacklists.Report(domain, day)
		reported++
	}
	return reported
}
