package core

import (
	"context"

	"squatphi/internal/blacklist"
	"squatphi/internal/evasion"
	"squatphi/internal/render"
	"squatphi/internal/webworld"
)

// OriginalShot crawls (once) and returns the screenshot of a brand's
// original page, or nil if the brand is unknown.
func (p *Pipeline) OriginalShot(ctx context.Context, brandName string) *render.Raster {
	if p.originalShots == nil {
		p.originalShots = map[string]*render.Raster{}
	}
	if shot, ok := p.originalShots[brandName]; ok {
		return shot
	}
	var shot *render.Raster
	if b, ok := p.World.Brands.Lookup(brandName); ok {
		cap := p.crawlerByProfile.CaptureProfile(ctx, b.Domain(), false)
		if cap.Live {
			shot = cap.Shot
		}
	}
	p.originalShots[brandName] = shot
	return shot
}

// EvasionStatsFor crawls the given phishing domains and aggregates their
// evasion reports against their target brands (Tables 6 and 11).
func (p *Pipeline) EvasionStatsFor(ctx context.Context, domains []string, snapshot int) (evasion.Stats, error) {
	var stats evasion.Stats
	results, err := p.CrawlDomains(ctx, snapshot, domains)
	if err != nil {
		return stats, err
	}
	for _, r := range results {
		cap := r.Web
		if !cap.Live {
			cap = r.Mobile
		}
		if !cap.Live {
			continue
		}
		site, ok := p.World.Site(r.Domain)
		if !ok {
			continue
		}
		orig := p.OriginalShot(ctx, site.Brand.Name)
		stats.Add(evasion.Analyze(cap.HTML, cap.Shot, site.Brand.Name, orig))
	}
	return stats, nil
}

// BlacklistSummary checks the given phishing domains against the blacklist
// ecosystem at the given day offset (Table 12).
func (p *Pipeline) BlacklistSummary(domains []string, day int) blacklist.Summary {
	var sites []*webworld.Site
	for _, d := range domains {
		if s, ok := p.World.Site(d); ok {
			sites = append(sites, s)
		}
	}
	return p.Blacklists.Summarize(sites, day)
}
