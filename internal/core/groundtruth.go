package core

import (
	"context"
	"fmt"

	"squatphi/internal/features"
	"squatphi/internal/ml"
	"squatphi/internal/simrand"
	"squatphi/internal/webworld"
)

// LabeledSample is one ground-truth page for classifier training.
type LabeledSample struct {
	Domain string
	Sample features.Sample
	// Phishing is the manual-verification label (the world's ground truth
	// stands in for the paper's human annotators).
	Phishing bool
}

// GroundTruth is the training corpus (paper §4.1/§5.3): verified feed
// pages that still serve phishing (positives), feed pages already taken
// down or replaced (hard negatives), and a sample of benign pages under
// squatting domains (the "easy-to-confuse" negatives).
type GroundTruth struct {
	Samples []LabeledSample
}

// Counts returns the number of positive and negative samples.
func (g *GroundTruth) Counts() (pos, neg int) {
	for _, s := range g.Samples {
		if s.Phishing {
			pos++
		} else {
			neg++
		}
	}
	return
}

// BuildGroundTruth crawls the feed's reported domains plus a benign sample
// of squatting domains and labels them with the verification oracle.
// maxBenignSquat bounds the extra negatives (paper: 1,565).
func (p *Pipeline) BuildGroundTruth(ctx context.Context, maxBenignSquat int) (*GroundTruth, error) {
	ctx, done := p.stageSpan(ctx, "ground_truth")
	gt, err := p.buildGroundTruth(ctx, maxBenignSquat)
	if gt != nil {
		pos, neg := gt.Counts()
		p.Obs.Gauge("core.ground_truth.positives").Set(float64(pos))
		p.Obs.Gauge("core.ground_truth.negatives").Set(float64(neg))
	}
	done(err)
	return gt, err
}

func (p *Pipeline) buildGroundTruth(ctx context.Context, maxBenignSquat int) (*GroundTruth, error) {
	gt := &GroundTruth{}

	// 1) Feed-reported domains, crawled immediately (snapshot 0).
	var feedDomains []string
	seen := map[string]bool{}
	for _, rep := range p.Feed.Verified() {
		if !seen[rep.Domain] {
			seen[rep.Domain] = true
			feedDomains = append(feedDomains, rep.Domain)
		}
	}
	results, err := p.CrawlDomains(ctx, 0, feedDomains)
	if err != nil {
		return nil, fmt.Errorf("core: crawl feed domains: %w", err)
	}
	sampled := map[string]bool{}
	for _, r := range results {
		cap := r.Web
		if !cap.Live {
			if !r.Mobile.Live {
				continue // page gone entirely: nothing to train on
			}
			cap = r.Mobile
		}
		site, ok := p.World.Site(r.Domain)
		label := ok && site.IsPhishingAt(0)
		sampled[r.Domain] = true
		gt.Samples = append(gt.Samples, LabeledSample{
			Domain:   r.Domain,
			Sample:   features.Sample{HTML: cap.HTML, Shot: cap.Shot, LMScore: p.LMScore(r.Domain)},
			Phishing: label,
		})
	}

	// 2) Benign pages under squatting domains: the hard negatives that
	// teach the classifier the difference between "suspicious domain" and
	// "phishing page".
	if maxBenignSquat > 0 {
		r := simrand.New(p.Cfg.Seed).Split("benign-sample")
		var pool []string
		for _, d := range p.World.SquattingDomains {
			if sampled[d] {
				continue // already labelled via the feed
			}
			if s := p.World.Sites[d]; s.Kind == webworld.Benign || s.Kind == webworld.Parked {
				pool = append(pool, d)
			}
		}
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if len(pool) > maxBenignSquat {
			pool = pool[:maxBenignSquat]
		}
		benignResults, err := p.CrawlDomains(ctx, 0, pool)
		if err != nil {
			return nil, fmt.Errorf("core: crawl benign sample: %w", err)
		}
		for _, res := range benignResults {
			if !res.Web.Live {
				continue
			}
			gt.Samples = append(gt.Samples, LabeledSample{
				Domain:   res.Domain,
				Sample:   features.Sample{HTML: res.Web.HTML, Shot: res.Web.Shot, LMScore: p.LMScore(res.Domain)},
				Phishing: false,
			})
		}
	}
	return gt, nil
}

// Classifier is the trained detection model plus its evaluation.
type Classifier struct {
	Extractor *features.Extractor
	Model     ml.Classifier
	// Eval holds the cross-validated metrics of the chosen model family
	// on the ground truth (the Table 7 Random Forest row).
	Eval ml.Evaluation
}

// extractVectors embeds every ground-truth sample on the scoring pool
// (feature extraction renders OCR over each screenshot, the training-side
// compute bottleneck) and returns the design matrix and label vector.
// Per-index slots keep the output identical to a serial extraction.
func (p *Pipeline) extractVectors(ex *features.Extractor, samples []LabeledSample) (X [][]float64, y []int) {
	X = make([][]float64, len(samples))
	y = make([]int, len(samples))
	p.scoreParallel(len(samples), func(i int) {
		X[i] = ex.Vector(samples[i].Sample)
		if samples[i].Phishing {
			y[i] = 1
		}
	})
	return X, y
}

// forestFactory builds the production random forest, trained across the
// scoring pool's worker budget (tree training is deterministic for a fixed
// seed at any parallelism).
func (p *Pipeline) forestFactory() func() ml.Classifier {
	return func() ml.Classifier {
		return &ml.RandomForest{NTrees: p.Cfg.ForestTrees, Seed: p.Cfg.Seed, Workers: p.scoreWorkers()}
	}
}

// TrainClassifier builds the feature extractor on the ground-truth corpus,
// cross-validates, and fits the final random forest on all samples
// (paper §5.2/§5.3).
func (p *Pipeline) TrainClassifier(gt *GroundTruth, opts features.Options) *Classifier {
	_, done := p.stageSpan(context.Background(), "train")
	defer done(nil)
	if p.LM != nil {
		opts.UseDomLM = true
	}
	corpus := make([]features.Sample, len(gt.Samples))
	for i, s := range gt.Samples {
		corpus[i] = s.Sample
	}
	ex := features.NewExtractor(opts, corpus, p.World.Brands.Names(), 3)

	X, y := p.extractVectors(ex, gt.Samples)
	factory := p.forestFactory()
	eval := ml.CrossValidate(factory, X, y, 10, p.Cfg.Seed)
	final := factory()
	final.Fit(X, y)
	return &Classifier{Extractor: ex, Model: final, Eval: eval}
}

// EvaluateModels cross-validates all three model families on the ground
// truth (the full Table 7 / Figure 10).
func (p *Pipeline) EvaluateModels(gt *GroundTruth, opts features.Options) map[string]ml.Evaluation {
	if p.LM != nil {
		opts.UseDomLM = true
	}
	corpus := make([]features.Sample, len(gt.Samples))
	for i, s := range gt.Samples {
		corpus[i] = s.Sample
	}
	ex := features.NewExtractor(opts, corpus, p.World.Brands.Names(), 3)
	X, y := p.extractVectors(ex, gt.Samples)
	out := map[string]ml.Evaluation{}
	out["NaiveBayes"] = ml.CrossValidate(func() ml.Classifier { return &ml.NaiveBayes{} }, X, y, 10, p.Cfg.Seed)
	out["KNN"] = ml.CrossValidate(func() ml.Classifier { return &ml.KNN{K: 5} }, X, y, 10, p.Cfg.Seed)
	out["RandomForest"] = ml.CrossValidate(p.forestFactory(), X, y, 10, p.Cfg.Seed)
	return out
}
