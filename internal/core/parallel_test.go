package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"squatphi/internal/dnsx"
	"squatphi/internal/features"
	"squatphi/internal/snapfmt"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// scanFixture builds a snapshot seeded with real squatting registrations of
// a few brands plus background noise, and a matcher for those brands —
// without the cost of a full pipeline.
func scanFixture(t testing.TB, noise int) (*dnsx.Store, *squat.Matcher) {
	t.Helper()
	brands := []squat.Brand{
		squat.NewBrand("paypal.com"),
		squat.NewBrand("facebook.com"),
		squat.NewBrand("google.com"),
	}
	gen := squat.NewGenerator()
	var planted []string
	for _, b := range brands {
		for i, c := range gen.Generate(b) {
			if i%4 == 0 { // a quarter of candidates are "registered"
				planted = append(planted, c.Domain)
			}
		}
	}
	store := dnsx.GenerateSnapshot(dnsx.SnapshotSpec{Planted: planted, NoiseRecords: noise, Seed: 1035})
	return store, squat.NewMatcher(brands)
}

// TestScanStoreParallelEquivalence is the tentpole's correctness contract:
// the parallel scan returns the exact candidate slice of the serial scan at
// every worker count.
func TestScanStoreParallelEquivalence(t *testing.T) {
	store, m := scanFixture(t, 5000)
	serial := ScanStore(store, m, 1, nil)
	if len(serial) == 0 {
		t.Fatal("serial scan found no candidates")
	}
	for _, workers := range []int{2, 4, 8, 64} {
		parallel := ScanStore(store, m, workers, nil)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel scan differs from serial (%d vs %d candidates)",
				workers, len(parallel), len(serial))
		}
	}
}

// TestScanSnapshotEquivalence extends the equivalence contract to the
// binary snapshot path: scanning the mmap-format serialisation of a store
// returns the exact candidate slice of ScanStore over the store itself,
// serial and at every worker count.
func TestScanSnapshotEquivalence(t *testing.T) {
	store, m := scanFixture(t, 5000)
	want := ScanStore(store, m, 1, nil)
	if len(want) == 0 {
		t.Fatal("store scan found no candidates")
	}
	var buf bytes.Buffer
	if _, err := snapfmt.WriteStore(&buf, store); err != nil {
		t.Fatal(err)
	}
	snap, err := snapfmt.OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 64} {
		got, err := ScanSnapshot(snap, m, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: snapshot scan differs from store scan (%d vs %d candidates)",
				workers, len(got), len(want))
		}
	}
}

// TestScanDNSMatchesSerialReference checks the pipeline-level wiring: a
// pipeline configured with many scan workers produces the same candidates
// as one forced onto the serial path, in the same world.
func TestScanDNSMatchesSerialReference(t *testing.T) {
	cfg := Config{
		World:           webworld.Config{SquattingDomains: 600, NonSquattingPhish: 100, Seed: 21},
		DNSNoiseRecords: 2500,
		ForestTrees:     10,
		Seed:            5,
	}
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.ScanWorkers = 1
	parallelCfg.ScanWorkers = 8

	build := func(c Config) []squat.Candidate {
		p, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		return p.ScanDNS()
	}
	serial := build(serialCfg)
	parallel := build(parallelCfg)
	if len(serial) == 0 {
		t.Fatal("serial pipeline scan found no candidates")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("ScanDNS differs across worker counts: %d vs %d candidates", len(serial), len(parallel))
	}
}

// TestScorePoolCoversAllIndices checks the bounded scoring pool invokes fn
// exactly once per index at any width (run under -race this is also the
// pool's thread-safety proof, together with the detection path tests).
func TestScorePoolCoversAllIndices(t *testing.T) {
	p := testPipeline(t)
	for _, workers := range []int{1, 3, 16} {
		p.Cfg.ScoreWorkers = workers
		const n = 500
		hits := make([]int, n)
		p.scoreParallel(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d scored %d times", workers, i, h)
			}
		}
	}
	if got := p.Obs.Gauge("core.score.inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge = %v after pools drained, want 0", got)
	}
}

// TestDetectionParallelDeterministic runs the classify-and-verify stage in
// two identical worlds, one scoring serially and one on a wide pool, and
// requires identical flag lists — the equivalence contract for the scoring
// side of the spine.
func TestDetectionParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full pipelines")
	}
	cfg := Config{
		World:           webworld.Config{SquattingDomains: 700, NonSquattingPhish: 120, Seed: 42},
		DNSNoiseRecords: 1500,
		ForestTrees:     10,
		Seed:            9,
	}
	run := func(scoreWorkers int) *Detection {
		c := cfg
		c.ScoreWorkers = scoreWorkers
		p, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		ctx := context.Background()
		gt, err := p.BuildGroundTruth(ctx, 150)
		if err != nil {
			t.Fatal(err)
		}
		clf := p.TrainClassifier(gt, features.AllFeatures())
		det, err := p.DetectInWild(ctx, clf, 0)
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("detection differs across scoring widths: serial %d+%d flags, parallel %d+%d",
			len(serial.FlaggedWeb), len(serial.FlaggedMobile),
			len(parallel.FlaggedWeb), len(parallel.FlaggedMobile))
	}
}
