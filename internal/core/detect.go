package core

import (
	"context"
	"fmt"

	"squatphi/internal/crawler"
	"squatphi/internal/features"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// Flagged is one page the classifier marked as phishing.
type Flagged struct {
	Domain    string
	Mobile    bool
	Score     float64
	SquatType squat.Type
	Brand     string
	// Confirmed is the manual-verification verdict (ground-truth oracle).
	Confirmed bool
}

// Detection is the outcome of scanning the wild (Table 8).
type Detection struct {
	// FlaggedWeb and FlaggedMobile are the classifier hits per profile.
	FlaggedWeb, FlaggedMobile []Flagged
}

// confirmedSet collects confirmed domains of one profile list.
func confirmedSet(fs []Flagged) map[string]bool {
	out := map[string]bool{}
	for _, f := range fs {
		if f.Confirmed {
			out[f.Domain] = true
		}
	}
	return out
}

// ConfirmedWeb returns the confirmed web phishing domains.
func (d *Detection) ConfirmedWeb() map[string]bool { return confirmedSet(d.FlaggedWeb) }

// ConfirmedMobile returns the confirmed mobile phishing domains.
func (d *Detection) ConfirmedMobile() map[string]bool { return confirmedSet(d.FlaggedMobile) }

// ConfirmedUnion returns all confirmed squatting phishing domains.
func (d *Detection) ConfirmedUnion() map[string]bool {
	out := d.ConfirmedWeb()
	for dom := range d.ConfirmedMobile() {
		out[dom] = true
	}
	return out
}

// DetectInWild applies the trained classifier to every live crawled page
// of both profiles and verifies the flagged ones against the oracle
// (paper §6.1: classify, then manually confirm).
func (p *Pipeline) DetectInWild(ctx context.Context, clf *Classifier, snapshot int) (*Detection, error) {
	ctx, done := p.stageSpan(ctx, "detect")
	det, err := p.detectInWild(ctx, clf, snapshot)
	if det != nil {
		p.Obs.Counter("core.detect.flagged").Add(int64(len(det.FlaggedWeb) + len(det.FlaggedMobile)))
		p.Obs.Counter("core.detect.confirmed").Add(int64(len(det.ConfirmedUnion())))
		// Always-on provenance: every flagged verdict gets a full evidence
		// record, independent of head sampling.
		p.recordFlagged(clf, det, snapshot)
	}
	done(err)
	return det, err
}

func (p *Pipeline) detectInWild(ctx context.Context, clf *Classifier, snapshot int) (*Detection, error) {
	results, err := p.Crawl(ctx, snapshot)
	if err != nil {
		return nil, fmt.Errorf("core: crawl for detection: %w", err)
	}
	// Score every live page on the bounded pool (feature extraction plus
	// forest inference is the compute bottleneck), then assemble the flag
	// lists serially in crawl order so the output is identical to the
	// serial path. A negative score marks a page that was skipped.
	scores := make([][2]float64, len(results))
	p.scoreParallel(len(results), func(i int) {
		for pi, cap := range [2]crawler.Capture{results[i].Web, results[i].Mobile} {
			scores[i][pi] = -1
			if cap.Live && !cap.Redirected() {
				scores[i][pi] = ClassifySample(clf, p.sampleFor(results[i].Domain, cap))
			}
		}
	})
	det := &Detection{}
	for i, r := range results {
		for pi, mobile := range []bool{false, true} {
			score := scores[i][pi]
			if score < 0 {
				continue // dead or redirected: someone else's content
			}
			if score < 0.5 {
				continue
			}
			site, _ := p.World.Site(r.Domain)
			f := Flagged{Domain: r.Domain, Mobile: mobile, Score: score}
			if site != nil {
				f.SquatType = site.SquatType
				f.Brand = site.Brand.Name
				// Manual verification: does the page truly impersonate the
				// brand with a credential form right now?
				f.Confirmed = site.IsPhishingAt(snapshot) &&
					(site.Cloak == webworld.CloakNone ||
						mobile && site.Cloak == webworld.CloakMobileOnly ||
						!mobile && site.Cloak == webworld.CloakWebOnly)
			}
			if mobile {
				det.FlaggedMobile = append(det.FlaggedMobile, f)
			} else {
				det.FlaggedWeb = append(det.FlaggedWeb, f)
			}
		}
	}
	return det, nil
}

// ClassifySample scores one feature sample with a trained classifier.
func ClassifySample(clf *Classifier, s features.Sample) float64 {
	return clf.Model.PredictProba(clf.Extractor.Vector(s))
}

// ClassifyCapture scores one capture with a trained classifier. It carries
// no domain-model score; pipeline scan paths use sampleFor so the LMScore
// feature is populated when Config.DomLM is on.
func ClassifyCapture(clf *Classifier, cap crawler.Capture) float64 {
	return ClassifySample(clf, features.Sample{HTML: cap.HTML, Shot: cap.Shot})
}

// sampleFor builds the feature sample of one capture, including the
// brand-language-model score of its domain when the model is attached.
func (p *Pipeline) sampleFor(domain string, cap crawler.Capture) features.Sample {
	return features.Sample{HTML: cap.HTML, Shot: cap.Shot, LMScore: p.LMScore(domain)}
}

// MonitorLiveness re-crawls the confirmed phishing domains at each
// snapshot and re-classifies them, returning per-snapshot live-phishing
// counts per profile (Figure 17).
func (p *Pipeline) MonitorLiveness(ctx context.Context, clf *Classifier, confirmed []string) (web, mobile []int, err error) {
	ctx, done := p.stageSpan(ctx, "liveness")
	defer func() { done(err) }()
	web = make([]int, webworld.Snapshots)
	mobile = make([]int, webworld.Snapshots)
	for snap := 0; snap < webworld.Snapshots; snap++ {
		results, err := p.CrawlDomains(ctx, snap, confirmed)
		if err != nil {
			return nil, nil, err
		}
		// Re-classification of each crawled page is independent; run it on
		// the scoring pool and tally the per-index verdicts afterwards.
		live := make([][2]bool, len(results))
		p.scoreParallel(len(results), func(i int) {
			r := results[i]
			live[i][0] = r.Web.Live && !r.Web.Redirected() && ClassifySample(clf, p.sampleFor(r.Domain, r.Web)) >= 0.5
			live[i][1] = r.Mobile.Live && !r.Mobile.Redirected() && ClassifySample(clf, p.sampleFor(r.Domain, r.Mobile)) >= 0.5
		})
		for _, l := range live {
			if l[0] {
				web[snap]++
			}
			if l[1] {
				mobile[snap]++
			}
		}
	}
	return web, mobile, nil
}
