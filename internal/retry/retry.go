// Package retry is the shared failure-handling policy of every component
// that talks to the (synthetic or real) network substrate: the crawler,
// the DNS prober, and the whois client.
//
// The paper's measurement loop (§3.2, §5.3) runs continuously against live
// phishing infrastructure — flaky resolvers, slow or dead hosts, stale
// answers — so retry behaviour must be uniform and testable rather than
// re-implemented ad hoc per component. This package centralises three
// mechanisms:
//
//   - capped exponential backoff with deterministic jitter (seeded via
//     simrand, so a chaos run replays the exact same delays);
//   - per-host retry budgets, bounding how much work a run will spend on
//     any one misbehaving host;
//   - a per-host circuit breaker: after a run of consecutive failures the
//     host is "open" and requests fast-fail until a cooldown elapses, then
//     a single half-open probe decides whether to close it again.
//
// Retry-count convention (shared by all components, see Resolve): a
// negative count disables retries entirely, zero selects the component's
// documented default, and a positive count is used as given.
package retry

import (
	"context"
	"errors"
	"sync"
	"time"

	"squatphi/internal/obs"
	"squatphi/internal/simrand"
)

// ErrOpen is returned by Allow when a host's circuit breaker is open (or
// half-open with a probe already in flight).
var ErrOpen = errors.New("retry: host circuit open")

// Resolve applies the repository-wide retry-count convention: negative
// disables (0 retries), zero selects def, positive is used as given.
func Resolve(n, def int) int {
	if n < 0 {
		return 0
	}
	if n == 0 {
		return def
	}
	return n
}

// Policy configures a Retrier. The zero value preserves pre-policy
// behaviour as closely as possible: backoff at the small default delays,
// no per-host budget, breaker disabled.
type Policy struct {
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it up to MaxDelay. Zero selects 100ms; negative disables
	// backoff entirely (zero-delay retries, the pre-policy behaviour).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 5s).
	MaxDelay time.Duration
	// JitterSeed seeds the deterministic jitter stream: backoff delays are
	// scaled by a factor in [0.5, 1.0) drawn from
	// simrand.New(JitterSeed).Split(key).SplitN(attempt), so the same
	// (seed, key, attempt) always yields the same delay regardless of
	// worker count or scheduling.
	JitterSeed uint64
	// HostBudget bounds the total retries granted per host over the
	// Retrier's lifetime (<= 0 means unlimited).
	HostBudget int
	// BreakerThreshold is the number of consecutive per-host failures that
	// open the circuit (<= 0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects requests before
	// allowing a half-open probe (default 30s).
	BreakerCooldown time.Duration
	// Now and Sleep are test hooks; nil selects time.Now and a
	// context-aware timer sleep.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) baseDelay() time.Duration {
	if p.BaseDelay < 0 {
		return 0
	}
	if p.BaseDelay == 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p Policy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return p.MaxDelay
}

func (p Policy) cooldown() time.Duration {
	if p.BreakerCooldown <= 0 {
		return 30 * time.Second
	}
	return p.BreakerCooldown
}

// BreakerState is the per-host circuit state.
type BreakerState int

const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// hostState is the per-host mutable record: budget spent, consecutive
// failures, and breaker state.
type hostState struct {
	budgetUsed  int
	consecFails int
	state       BreakerState
	openedAt    time.Time
	probing     bool // half-open probe in flight
}

// Retrier owns the per-host retry/breaker state for one component. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// Retrier allows everything and never sleeps), so components can make the
// policy strictly optional.
type Retrier struct {
	pol Policy

	opens, closes, rejected, probes, budgetExhausted *obs.Counter
	backoffMS                                        *obs.Histogram

	mu    sync.Mutex
	hosts map[string]*hostState
}

// New builds a Retrier reporting under the given metric prefix (for
// example "crawler" yields "crawler.breaker.opens"). reg may be nil.
func New(pol Policy, prefix string, reg *obs.Registry) *Retrier {
	r := &Retrier{
		pol:             pol,
		opens:           reg.Counter(prefix + ".breaker.opens"),
		closes:          reg.Counter(prefix + ".breaker.closes"),
		rejected:        reg.Counter(prefix + ".breaker.rejected"),
		probes:          reg.Counter(prefix + ".breaker.half_open_probes"),
		budgetExhausted: reg.Counter(prefix + ".retry.budget_exhausted"),
		backoffMS:       reg.Histogram(prefix+".retry.backoff_ms", obs.MillisBuckets),
		hosts:           map[string]*hostState{},
	}
	reg.RegisterFunc(prefix+".breaker.hosts", func() any { return r.UnhealthyHosts() })
	return r
}

func (r *Retrier) now() time.Time {
	if r.pol.Now != nil {
		return r.pol.Now()
	}
	return time.Now()
}

func (r *Retrier) host(h string) *hostState {
	s := r.hosts[h]
	if s == nil {
		s = &hostState{}
		r.hosts[h] = s
	}
	return s
}

// Allow reports whether a request to host may proceed. It returns ErrOpen
// when the host's circuit is open (and the cooldown has not elapsed) or
// half-open with a probe already in flight. When the cooldown has elapsed
// it admits exactly one half-open probe.
func (r *Retrier) Allow(host string) error {
	if r == nil || r.pol.BreakerThreshold <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.host(host)
	switch s.state {
	case Closed:
		return nil
	case Open:
		if r.now().Sub(s.openedAt) < r.pol.cooldown() {
			r.rejected.Inc()
			return ErrOpen
		}
		s.state = HalfOpen
		s.probing = true
		r.probes.Inc()
		return nil
	default: // HalfOpen
		if s.probing {
			r.rejected.Inc()
			return ErrOpen
		}
		s.probing = true
		r.probes.Inc()
		return nil
	}
}

// Report records the outcome of one request to host. A success resets the
// consecutive-failure run and closes a half-open circuit; a failure
// extends the run, opening the circuit at the threshold (and re-opening
// immediately when a half-open probe fails).
func (r *Retrier) Report(host string, ok bool) {
	if r == nil || r.pol.BreakerThreshold <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.host(host)
	if ok {
		s.consecFails = 0
		if s.state != Closed {
			s.state = Closed
			s.probing = false
			r.closes.Inc()
		}
		return
	}
	s.consecFails++
	switch {
	case s.state == HalfOpen:
		s.state = Open
		s.probing = false
		s.openedAt = r.now()
		r.opens.Inc()
	case s.state == Closed && s.consecFails >= r.pol.BreakerThreshold:
		s.state = Open
		s.openedAt = r.now()
		r.opens.Inc()
	}
}

// GrantRetry consumes one unit of host's retry budget, reporting whether
// another retry is permitted. With no budget configured it always grants.
func (r *Retrier) GrantRetry(host string) bool {
	if r == nil || r.pol.HostBudget <= 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.host(host)
	if s.budgetUsed >= r.pol.HostBudget {
		r.budgetExhausted.Inc()
		return false
	}
	s.budgetUsed++
	return true
}

// Backoff returns the deterministic backoff delay before retry number
// attempt (attempt >= 1) of the work item identified by key: capped
// exponential growth scaled by seeded jitter in [0.5, 1.0).
func (r *Retrier) Backoff(key string, attempt int) time.Duration {
	if r == nil {
		return 0
	}
	base := r.pol.baseDelay()
	if base == 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	maxD := r.pol.maxDelay()
	for i := 1; i < attempt && d < maxD; i++ {
		d *= 2
	}
	if d > maxD {
		d = maxD
	}
	jitter := simrand.New(r.pol.JitterSeed).Split(key).SplitN(uint64(attempt)).Float64()
	return time.Duration(float64(d) * (0.5 + 0.5*jitter))
}

// Wait sleeps the Backoff delay for (key, attempt), honouring ctx
// cancellation, and records the delay in the backoff histogram.
func (r *Retrier) Wait(ctx context.Context, key string, attempt int) error {
	if r == nil {
		return ctx.Err()
	}
	d := r.Backoff(key, attempt)
	r.backoffMS.Observe(float64(d) / float64(time.Millisecond))
	if d <= 0 {
		return ctx.Err()
	}
	if r.pol.Sleep != nil {
		return r.pol.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// State returns host's current breaker state.
func (r *Retrier) State(host string) BreakerState {
	if r == nil {
		return Closed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.hosts[host]; s != nil {
		return s.state
	}
	return Closed
}

// UnhealthyHosts returns the hosts whose circuit is not closed, mapped to
// their state name (exposed in metric snapshots).
func (r *Retrier) UnhealthyHosts() map[string]string {
	out := map[string]string{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for h, s := range r.hosts {
		if s.state != Closed {
			out[h] = s.state.String()
		}
	}
	return out
}
