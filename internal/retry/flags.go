package retry

import (
	"context"
	"errors"
	"flag"
	"net"
)

// RegisterFlags defines the repository-standard -retry-* / -breaker-*
// flags on fs (nil selects flag.CommandLine) and returns the Policy they
// populate when the flag set is parsed. Every binary that owns network
// components (squatphi, squatmond, paperbench) registers the same six
// flags, so one policy vocabulary covers the crawler, the DNS prober,
// and the whois client:
//
//	-retry-base-delay   backoff before the first retry
//	                    (0 = default 100ms, negative disables backoff)
//	-retry-max-delay    cap on the exponential backoff (0 = default 5s)
//	-retry-jitter-seed  seed of the deterministic jitter stream
//	-retry-budget       total retries allowed per host (0 = unlimited)
//	-breaker-threshold  consecutive per-host failures that open the
//	                    circuit (0 = breaker disabled)
//	-breaker-cooldown   open-circuit fast-fail window before a half-open
//	                    probe (0 = default 30s)
func RegisterFlags(fs *flag.FlagSet) *Policy {
	if fs == nil {
		fs = flag.CommandLine
	}
	p := &Policy{}
	fs.DurationVar(&p.BaseDelay, "retry-base-delay", 0,
		"backoff before the first retry (0 = default 100ms, negative disables backoff)")
	fs.DurationVar(&p.MaxDelay, "retry-max-delay", 0,
		"cap on exponential retry backoff (0 = default 5s)")
	fs.Uint64Var(&p.JitterSeed, "retry-jitter-seed", 0,
		"seed of the deterministic backoff jitter stream")
	fs.IntVar(&p.HostBudget, "retry-budget", 0,
		"total retries allowed per host over a run (0 = unlimited)")
	fs.IntVar(&p.BreakerThreshold, "breaker-threshold", 0,
		"consecutive per-host failures that open the circuit breaker (0 = breaker disabled)")
	fs.DurationVar(&p.BreakerCooldown, "breaker-cooldown", 0,
		"how long an open circuit fast-fails before a half-open probe (0 = default 30s)")
	return p
}

// IsTimeout reports whether err is a deadline-style failure (a net.Error
// timeout or context.DeadlineExceeded), as opposed to a connection-level
// error such as ECONNREFUSED. Components use it to split "the host is
// slow" from "the host is unreachable" in their metrics; conflating the
// two hid resolver outages behind timeout counters.
func IsTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
