package retry

import (
	"context"
	"testing"
	"time"

	"squatphi/internal/obs"
)

func TestResolveConvention(t *testing.T) {
	if Resolve(-1, 2) != 0 {
		t.Error("negative must disable retries")
	}
	if Resolve(0, 2) != 2 {
		t.Error("zero must select the default")
	}
	if Resolve(5, 2) != 5 {
		t.Error("positive must be used as given")
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	pol := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, JitterSeed: 7}
	a := New(pol, "t", nil)
	b := New(pol, "t", nil)
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := a.Backoff("host.test/", attempt)
		d2 := b.Backoff("host.test/", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v != %v", attempt, d1, d2)
		}
		if d1 > 80*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v exceeds cap", attempt, d1)
		}
		if d1 < 5*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v below base/2 jitter floor", attempt, d1)
		}
		if d1 > prevMax {
			prevMax = d1
		}
	}
	// Different keys draw different jitter.
	if a.Backoff("x", 1) == a.Backoff("y", 1) && a.Backoff("x", 2) == a.Backoff("y", 2) {
		t.Error("jitter does not vary by key")
	}
	// A different seed yields a different schedule.
	c := New(Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, JitterSeed: 8}, "t", nil)
	if a.Backoff("host.test/", 1) == c.Backoff("host.test/", 1) &&
		a.Backoff("host.test/", 2) == c.Backoff("host.test/", 2) {
		t.Error("jitter does not vary by seed")
	}
}

func TestBackoffDisabled(t *testing.T) {
	r := New(Policy{BaseDelay: -1}, "t", nil)
	if d := r.Backoff("k", 3); d != 0 {
		t.Fatalf("negative BaseDelay must disable backoff, got %v", d)
	}
}

func TestHostBudget(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Policy{HostBudget: 2}, "t", reg)
	if !r.GrantRetry("a") || !r.GrantRetry("a") {
		t.Fatal("budget denied within limit")
	}
	if r.GrantRetry("a") {
		t.Fatal("budget granted beyond limit")
	}
	if !r.GrantRetry("b") {
		t.Fatal("budget must be per-host")
	}
	if got := reg.Counter("t.retry.budget_exhausted").Value(); got != 1 {
		t.Fatalf("budget_exhausted = %d, want 1", got)
	}
}

// fakeClock is a manually advanced clock for breaker-transition tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	reg := obs.NewRegistry()
	r := New(Policy{
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second,
		Now:              clock.now,
	}, "t", reg)
	host := "flaky.test"

	// Closed: failures below the threshold keep the circuit closed.
	for i := 0; i < 2; i++ {
		if err := r.Allow(host); err != nil {
			t.Fatal(err)
		}
		r.Report(host, false)
	}
	if r.State(host) != Closed {
		t.Fatalf("state = %v, want closed", r.State(host))
	}
	// A success resets the consecutive-failure run.
	r.Report(host, true)
	r.Report(host, false)
	r.Report(host, false)
	if r.State(host) != Closed {
		t.Fatal("success did not reset the failure run")
	}
	// Third consecutive failure opens the circuit.
	r.Report(host, false)
	if r.State(host) != Open {
		t.Fatalf("state = %v, want open", r.State(host))
	}
	if err := r.Allow(host); err != ErrOpen {
		t.Fatalf("open circuit allowed a request (err = %v)", err)
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clock.advance(11 * time.Second)
	if err := r.Allow(host); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if r.State(host) != HalfOpen {
		t.Fatalf("state = %v, want half-open", r.State(host))
	}
	if err := r.Allow(host); err != ErrOpen {
		t.Fatal("second concurrent half-open probe admitted")
	}

	// Failed probe re-opens immediately.
	r.Report(host, false)
	if r.State(host) != Open {
		t.Fatalf("state after failed probe = %v, want open", r.State(host))
	}

	// Next cooldown: successful probe closes the circuit.
	clock.advance(11 * time.Second)
	if err := r.Allow(host); err != nil {
		t.Fatal(err)
	}
	r.Report(host, true)
	if r.State(host) != Closed {
		t.Fatalf("state after good probe = %v, want closed", r.State(host))
	}
	if err := r.Allow(host); err != nil {
		t.Fatal("closed circuit rejecting requests")
	}

	snap := reg.Snapshot()
	if snap.Counters["t.breaker.opens"] != 2 {
		t.Errorf("opens = %d, want 2", snap.Counters["t.breaker.opens"])
	}
	if snap.Counters["t.breaker.closes"] != 1 {
		t.Errorf("closes = %d, want 1", snap.Counters["t.breaker.closes"])
	}
	if snap.Counters["t.breaker.half_open_probes"] != 2 {
		t.Errorf("probes = %d, want 2", snap.Counters["t.breaker.half_open_probes"])
	}
	if snap.Counters["t.breaker.rejected"] < 2 {
		t.Errorf("rejected = %d, want >= 2", snap.Counters["t.breaker.rejected"])
	}
}

func TestBreakerDisabledByDefault(t *testing.T) {
	r := New(Policy{}, "t", nil)
	for i := 0; i < 100; i++ {
		r.Report("h", false)
	}
	if err := r.Allow("h"); err != nil {
		t.Fatal("disabled breaker rejected a request")
	}
}

func TestUnhealthyHostsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Policy{BreakerThreshold: 1}, "t", reg)
	r.Report("bad.test", false)
	m := r.UnhealthyHosts()
	if m["bad.test"] != "open" {
		t.Fatalf("UnhealthyHosts = %v", m)
	}
	snap := reg.Snapshot()
	v, ok := snap.Values["t.breaker.hosts"].(map[string]string)
	if !ok || v["bad.test"] != "open" {
		t.Fatalf("breaker host map not in snapshot: %v", snap.Values)
	}
}

func TestNilRetrierIsInert(t *testing.T) {
	var r *Retrier
	if err := r.Allow("h"); err != nil {
		t.Fatal("nil retrier rejected")
	}
	r.Report("h", false)
	if !r.GrantRetry("h") {
		t.Fatal("nil retrier denied retry")
	}
	if r.Backoff("h", 3) != 0 {
		t.Fatal("nil retrier backoff nonzero")
	}
	if err := r.Wait(context.Background(), "h", 1); err != nil {
		t.Fatal(err)
	}
	if r.State("h") != Closed {
		t.Fatal("nil retrier state not closed")
	}
}

func TestWaitHonoursContext(t *testing.T) {
	r := New(Policy{BaseDelay: time.Hour}, "t", nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Wait(ctx, "k", 1); err == nil {
		t.Fatal("cancelled Wait returned nil")
	}
}
