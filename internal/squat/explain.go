package squat

import (
	"fmt"
	"strings"

	"squatphi/internal/confusables"
	"squatphi/internal/obs/trace"
	"squatphi/internal/punycode"
)

// Rule names for each classification path, in the precedence order of
// classify. These are provenance identifiers (DESIGN.md §9): stable
// strings an analyst can grep for, versioned implicitly by
// matchRulesVersion.
const (
	RuleExactName      = "wrongtld.exact_name"
	RuleSkeleton       = "homograph.skeleton"
	RuleBitsEdit       = "bits.edit_table"
	RuleTypoEdit       = "typo.edit_table"
	RuleBrandSubstring = "combo.brand_substring"
	RuleGenerated      = "generated.lm_score"
	RuleNone           = "none"
)

// Explanation is the full evidence behind one Match verdict: which rule
// fired, against which brand, and the derived forms (IDN decode,
// confusable skeleton, edit distance) the rule compared. It is computed
// by re-running the classification, so it is exactly as deterministic as
// Match itself and can be produced after the fact for any domain —
// including verdicts answered from the deltascan cache, where the
// matcher never ran during the scan.
type Explanation struct {
	// Domain is the normalised subject (lowercase, no trailing dot).
	Domain string
	// Label and TLD are the registrable split of the observed domain.
	Label string
	TLD   string
	// Matched mirrors Match's verdict; Type/Brand the candidate fields.
	Matched bool
	Type    Type
	Brand   Brand
	// Rule names the classification path that decided (Rule* constants).
	Rule string
	// Unicode is the IDN-decoded label when the observed label is ACE
	// ("" for plain ASCII labels).
	Unicode string
	// Skeleton is the confusable skeleton of the (decoded) label;
	// BrandSkeleton that of the matched brand's name ("" when unmatched).
	Skeleton      string
	BrandSkeleton string
	// EditDistance is the Levenshtein distance between the (decoded)
	// label and the matched brand's name; -1 when unmatched.
	EditDistance int
	// LMScore is the brand-language-model score of the label (0 when no
	// model is attached); LMModel the scoring model's fingerprint in
	// fixed-width hex ("" when no model is attached). Present on every
	// explanation — not just Generated hits — so analysts can see how
	// close a rule-matched or unmatched label sat to the threshold.
	LMScore float64
	LMModel string
}

// Explain classifies domain like Match and returns the full evidence
// trail. It is not a hot-path API: the scan loop records verdicts only,
// and evidence is reconstructed here on demand (debug handler, explain
// CLI, flagged-verdict provenance).
func (m *Matcher) Explain(domain string) Explanation {
	c, ok := m.classify(domain)
	label, tld := SplitETLD(domain)
	ex := Explanation{
		Domain:       strings.ToLower(strings.TrimSuffix(domain, ".")),
		Label:        label,
		TLD:          tld,
		Matched:      ok,
		Rule:         RuleNone,
		EditDistance: -1,
	}
	uni := label
	if punycode.IsACE(label) {
		uni, _ = SplitETLD(punycode.ToUnicode(domain))
		ex.Unicode = uni
	}
	ex.Skeleton = confusables.Skeleton(uni)
	if m.lm != nil {
		ex.LMScore = m.lm.ScoreLabel(uni)
		ex.LMModel = fmt.Sprintf("%016x", m.lm.Fingerprint())
	}
	if !ok {
		return ex
	}
	ex.Type, ex.Brand = c.Type, c.Brand
	if c.Brand.Name != "" {
		ex.BrandSkeleton = confusables.Skeleton(c.Brand.Name)
		ex.EditDistance = levenshtein(uni, c.Brand.Name)
	}
	switch c.Type {
	case WrongTLD:
		ex.Rule = RuleExactName
	case Homograph:
		ex.Rule = RuleSkeleton
	case Bits:
		ex.Rule = RuleBitsEdit
	case Typo:
		ex.Rule = RuleTypoEdit
	case Combo:
		ex.Rule = RuleBrandSubstring
	case Generated:
		ex.Rule = RuleGenerated
	}
	return ex
}

// Evidence converts the explanation to its provenance-record form.
func (ex Explanation) Evidence() *trace.MatcherEvidence {
	ev := &trace.MatcherEvidence{
		Rule:          ex.Rule,
		Type:          ex.Type.String(),
		Label:         ex.Label,
		TLD:           ex.TLD,
		Unicode:       ex.Unicode,
		Skeleton:      ex.Skeleton,
		BrandSkeleton: ex.BrandSkeleton,
		EditDistance:  ex.EditDistance,
		LMScore:       ex.LMScore,
		LMModel:       ex.LMModel,
	}
	if ex.Matched && ex.Brand.Name != "" {
		ev.Brand = ex.Brand.Domain()
	}
	return ev
}

// levenshtein computes the edit distance between two strings by rune,
// with unit costs. Labels are short (tens of runes), so the O(len*len)
// two-row form is plenty.
func levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			sub := prev[j-1] + cost
			min := del
			if ins < min {
				min = ins
			}
			if sub < min {
				min = sub
			}
			cur[j] = min
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
