package squat

import (
	"strings"
	"testing"
	"testing/quick"

	"squatphi/internal/simrand"
)

var testBrands = []Brand{
	NewBrand("facebook.com"),
	NewBrand("google.com"),
	NewBrand("paypal.com"),
	NewBrand("uber.com"),
	NewBrand("apple.com"),
	NewBrand("microsoft.com"),
	NewBrand("dropbox.com"),
	NewBrand("adp.com"),
	NewBrand("citizenslc.com"),
	NewBrand("bbc.co.uk"),
}

func TestSplitETLD(t *testing.T) {
	cases := []struct{ in, name, tld string }{
		{"facebook.com", "facebook", "com"},
		{"mail.google-app.de", "google-app", "de"},
		{"news.bbc.co.uk", "bbc", "co.uk"},
		{"google.com.ua", "google", "com.ua"},
		{"FACEBOOK.COM.", "facebook", "com"},
		{"localhost", "localhost", ""},
		{"a.b.c.d.example.org", "example", "org"},
	}
	for _, c := range cases {
		name, tld := SplitETLD(c.in)
		if name != c.name || tld != c.tld {
			t.Errorf("SplitETLD(%q) = (%q, %q), want (%q, %q)", c.in, name, tld, c.name, c.tld)
		}
	}
}

func TestBrandDomain(t *testing.T) {
	b := NewBrand("google.com.ua")
	if b.Domain() != "google.com.ua" {
		t.Errorf("Domain() = %q", b.Domain())
	}
}

func TestTypeString(t *testing.T) {
	if Homograph.String() != "homograph" || WrongTLD.String() != "wrongTLD" {
		t.Error("Type.String mismatch")
	}
	if Type(99).String() != "invalid" {
		t.Error("out-of-range Type.String")
	}
}

// Paper Table 1: examples of each squatting type for the facebook brand.
func TestMatchPaperTable1Examples(t *testing.T) {
	m := NewMatcher(testBrands)
	cases := []struct {
		domain string
		typ    Type
		brand  string
	}{
		{"faceb00k.pw", Homograph, "facebook"},
		{"xn--fcebook-8va.com", Homograph, "facebook"}, // fàcebook.com
		{"facebnok.tk", Bits, "facebook"},
		{"facebo0ok.com", Typo, "facebook"},
		{"fcaebook.org", Typo, "facebook"},
		{"facebook-story.de", Combo, "facebook"},
		{"facebook.audi", WrongTLD, "facebook"},
	}
	for _, c := range cases {
		got, ok := m.Match(c.domain)
		if !ok {
			t.Errorf("Match(%q) found nothing, want %v", c.domain, c.typ)
			continue
		}
		if got.Type != c.typ || got.Brand.Name != c.brand {
			t.Errorf("Match(%q) = (%v, %s), want (%v, %s)", c.domain, got.Type, got.Brand.Name, c.typ, c.brand)
		}
	}
}

// Paper Table 10: observed squatting phishing domains across brands.
func TestMatchPaperTable10Examples(t *testing.T) {
	m := NewMatcher(testBrands)
	cases := []struct {
		domain string
		typ    Type
		brand  string
	}{
		{"goog1e.nl", Homograph, "google"},
		{"googl4.nl", Typo, "google"},
		{"ggoogle.in", Typo, "google"},
		{"facebouk.net", Homograph, "facebook"}, // paper labels homograph; 'u' for 'o' is visually close — ours may classify differently, checked below
		{"faceboook.top", Typo, "facebook"},
		{"face-book.online", Combo, "facebook"}, // hyphenated split: contains "face"? matcher needs full brand -> see TestComboRequiresFullBrand
		{"facecook.mobi", Bits, "facebook"},
		{"facebook-c.com", Combo, "facebook"},
		{"apple-prizeuk.com", Combo, "apple"},
		{"go-uberfreight.com", Combo, "uber"},
		{"paypal-cash.com", Combo, "paypal"},
		{"ebay-selling.net", None, ""}, // ebay not in test brand set
		{"live-microsoftsupport.com", Combo, "microsoft"},
		{"dropbox-com.com", Combo, "dropbox"},
		{"mobile-adp.com", Combo, "adp"},
		{"securemail-citizenslc.com", Combo, "citizenslc"},
	}
	for _, c := range cases {
		got, ok := m.Match(c.domain)
		switch {
		case c.typ == None && ok:
			t.Errorf("Match(%q) = %v/%s, want no match", c.domain, got.Type, got.Brand.Name)
		case c.typ == None:
			// correctly unmatched
		case c.domain == "facebouk.net" || c.domain == "face-book.online":
			// These two are genuinely ambiguous across taxonomies; accept
			// any squatting type as long as the brand is right.
			if !ok || got.Brand.Name != c.brand {
				t.Errorf("Match(%q) = ok=%v brand=%s, want brand %s", c.domain, ok, got.Brand.Name, c.brand)
			}
		case !ok:
			t.Errorf("Match(%q) found nothing, want %v/%s", c.domain, c.typ, c.brand)
		case got.Type != c.typ || got.Brand.Name != c.brand:
			t.Errorf("Match(%q) = (%v, %s), want (%v, %s)", c.domain, got.Type, got.Brand.Name, c.typ, c.brand)
		}
	}
}

func TestOriginalDomainIsNotSquatting(t *testing.T) {
	m := NewMatcher(testBrands)
	for _, d := range []string{"facebook.com", "www.facebook.com", "google.com", "mail.google.com", "bbc.co.uk"} {
		if c, ok := m.Match(d); ok {
			t.Errorf("Match(%q) = %v/%s, want original (no match)", d, c.Type, c.Brand.Name)
		}
	}
}

func TestUnrelatedDomainsDoNotMatch(t *testing.T) {
	m := NewMatcher(testBrands)
	for _, d := range []string{"example.com", "weather.org", "zzz-qqq.net", "applied.com", "snapple.com"} {
		if c, ok := m.Match(d); ok {
			t.Errorf("Match(%q) = %v/%s, want no match", d, c.Type, c.Brand.Name)
		}
	}
}

func TestSubdomainsIgnored(t *testing.T) {
	m := NewMatcher(testBrands)
	c, ok := m.Match("mail.google-app.de")
	if !ok || c.Type != Combo || c.Brand.Name != "google" {
		t.Errorf("Match(mail.google-app.de) = %+v ok=%v, want combo/google", c, ok)
	}
}

func TestComboRequiresHyphen(t *testing.T) {
	m := NewMatcher(testBrands)
	// "facebooklogin.com" contains the brand but has no hyphen; the paper
	// restricts combo squatting to hyphenated concatenation.
	if c, ok := m.Match("facebooklogin.com"); ok && c.Type == Combo {
		t.Errorf("Match(facebooklogin.com) classified combo without hyphen")
	}
}

func TestWrongTLDAcrossMultiLabelSuffix(t *testing.T) {
	m := NewMatcher(testBrands)
	c, ok := m.Match("facebook.com.ua")
	if !ok || c.Type != WrongTLD {
		t.Errorf("Match(facebook.com.ua) = %+v ok=%v, want wrongTLD", c, ok)
	}
}

func TestGenerateMatchDuality(t *testing.T) {
	// Every generated candidate must be recognised by the matcher as a
	// squatting domain for the same brand with the same type.
	m := NewMatcher(testBrands)
	g := NewGenerator()
	for _, b := range testBrands {
		for _, cand := range g.Generate(b) {
			got, ok := m.Match(cand.Domain)
			if !ok {
				t.Errorf("generated %s (%v for %s) not matched", cand.Domain, cand.Type, b.Name)
				continue
			}
			// Cross-brand captures are possible (a typo of one brand may be
			// a combo of another); require agreement only when the matched
			// brand is the generating brand.
			if got.Brand.Name == b.Name && got.Type != cand.Type {
				// Precedence may reclassify: e.g. a typo that folds to the
				// brand skeleton is homograph. Accept homograph upgrades
				// and bits/typo overlap, reject anything else.
				if !precedenceCompatible(cand.Type, got.Type) {
					t.Errorf("generated %s as %v, matched as %v", cand.Domain, cand.Type, got.Type)
				}
			}
		}
	}
}

// precedenceCompatible reports whether a generated type may legitimately be
// reported as a different type under the matcher's precedence rules.
func precedenceCompatible(gen, matched Type) bool {
	if gen == matched {
		return true
	}
	switch {
	case matched == Homograph: // skeleton-equal edits are upgraded
		return true
	case gen == Typo && matched == Bits, gen == Bits && matched == Typo:
		return true // single-char substitutions can satisfy both definitions
	}
	return false
}

func TestGenerateCountsReasonable(t *testing.T) {
	g := NewGenerator()
	b := NewBrand("facebook.com")
	counts := map[Type]int{}
	for _, c := range g.Generate(b) {
		counts[c.Type]++
	}
	if counts[Typo] < 100 {
		t.Errorf("typo candidates = %d, want >= 100", counts[Typo])
	}
	if counts[Homograph] < 20 {
		t.Errorf("homograph candidates = %d, want >= 20", counts[Homograph])
	}
	if counts[Bits] < 10 {
		t.Errorf("bits candidates = %d, want >= 10", counts[Bits])
	}
	if counts[Combo] < 50 {
		t.Errorf("combo candidates = %d, want >= 50", counts[Combo])
	}
	if counts[WrongTLD] < 10 {
		t.Errorf("wrongTLD candidates = %d, want >= 10", counts[WrongTLD])
	}
}

func TestGenerateNoDuplicates(t *testing.T) {
	g := NewGenerator()
	seen := map[string]bool{}
	for _, c := range g.Generate(NewBrand("paypal.com")) {
		if seen[c.Domain] {
			t.Errorf("duplicate candidate %s", c.Domain)
		}
		seen[c.Domain] = true
	}
}

func TestGeneratedDomainsAreValidASCII(t *testing.T) {
	g := NewGenerator()
	for _, c := range g.Generate(NewBrand("google.com")) {
		for i := 0; i < len(c.Domain); i++ {
			ch := c.Domain[i]
			if !(ch >= 'a' && ch <= 'z' || ch >= '0' && ch <= '9' || ch == '-' || ch == '.') {
				t.Fatalf("candidate %q contains illegal byte %q", c.Domain, ch)
			}
		}
		label, _ := SplitETLD(c.Domain)
		if strings.HasPrefix(label, "-") || strings.HasSuffix(label, "-") {
			t.Fatalf("candidate %q has hyphen at label edge", c.Domain)
		}
	}
}

func TestBitFlipProperty(t *testing.T) {
	// Property: every bits candidate differs from the brand name in exactly
	// one position, and that position differs by exactly one bit.
	g := NewGenerator()
	for _, b := range testBrands {
		for _, c := range g.BitFlips(b) {
			label, _ := SplitETLD(c.Domain)
			if len(label) != len(b.Name) {
				t.Fatalf("bits candidate %q length differs from %q", label, b.Name)
			}
			diff := 0
			for i := range label {
				if label[i] != b.Name[i] {
					diff++
					if x := label[i] ^ b.Name[i]; x&(x-1) != 0 {
						t.Fatalf("bits candidate %q differs from %q by more than one bit at %d", label, b.Name, i)
					}
				}
			}
			if diff != 1 {
				t.Fatalf("bits candidate %q differs from %q in %d positions", label, b.Name, diff)
			}
		}
	}
}

func TestTypoEditDistanceProperty(t *testing.T) {
	g := NewGenerator()
	for _, c := range g.Typos(NewBrand("google.com")) {
		label, _ := SplitETLD(c.Domain)
		if d := editDistance(label, "google"); d == 0 || d > 2 {
			t.Fatalf("typo candidate %q has edit distance %d from google", label, d)
		}
	}
}

func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func TestAhoCorasickFindsAllOccurrences(t *testing.T) {
	ac := newAhoCorasick([]string{"he", "she", "his", "hers"})
	var hits []string
	ac.match("ushers", func(pat int32, end int) bool {
		hits = append(hits, ac.pats[pat])
		return true
	})
	want := map[string]bool{"she": true, "he": true, "hers": true}
	if len(hits) != 3 {
		t.Fatalf("hits = %v, want she/he/hers", hits)
	}
	for _, h := range hits {
		if !want[h] {
			t.Fatalf("unexpected hit %q", h)
		}
	}
}

func TestAhoCorasickEarlyStop(t *testing.T) {
	ac := newAhoCorasick([]string{"a"})
	n := 0
	ac.match("aaaa", func(pat int32, end int) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop scanned %d matches", n)
	}
}

func TestAhoCorasickAgainstContains(t *testing.T) {
	// Property: automaton hit iff strings.Contains hit, on random inputs.
	pats := []string{"face", "book", "pay", "goo", "drop"}
	ac := newAhoCorasick(pats)
	if err := quick.Check(func(seed uint64) bool {
		r := simrand.New(seed)
		s := r.Letters(3) + pats[r.Intn(len(pats))][:2] + r.Letters(4)
		found := map[string]bool{}
		ac.match(s, func(pat int32, end int) bool {
			found[pats[pat]] = true
			return true
		})
		for _, p := range pats {
			if strings.Contains(s, p) != found[p] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatcherConcurrentUse(t *testing.T) {
	m := NewMatcher(testBrands)
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(seed uint64) {
			r := simrand.New(seed)
			for i := 0; i < 2000; i++ {
				m.Match(r.Letters(10) + ".com")
				m.Match("facebook-" + r.Letters(4) + ".net")
			}
			done <- true
		}(uint64(w))
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func BenchmarkMatcherMiss(b *testing.B) {
	m := NewMatcher(testBrands)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match("unrelated-domain-name.org")
	}
}

func BenchmarkMatcherComboHit(b *testing.B) {
	m := NewMatcher(testBrands)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match("secure-paypal-login.com")
	}
}

func BenchmarkGenerate(b *testing.B) {
	g := NewGenerator()
	brand := NewBrand("facebook.com")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Generate(brand)
	}
}
