package squat

import (
	"testing"
	"testing/quick"

	"squatphi/internal/obs/trace"
)

func TestExplainAgreesWithMatch(t *testing.T) {
	m := NewMatcher(testBrands)
	domains := []string{
		"facebook.net", "xn--fcebook-8va.com", "paypa1.com", "pypal.com",
		"facebook-login.com", "facebook.com", "unrelated.org", "google.com.ua",
	}
	for _, d := range domains {
		c, ok := m.Match(d)
		ex := m.Explain(d)
		if ex.Matched != ok || ex.Type != c.Type || (ok && ex.Brand != c.Brand) {
			t.Errorf("Explain(%q) = {matched:%t type:%v brand:%v}, Match said {%t %v %v}",
				d, ex.Matched, ex.Type, ex.Brand, ok, c.Type, c.Brand)
		}
	}
}

func TestExplainRulesAndDerivedForms(t *testing.T) {
	m := NewMatcher(testBrands)
	cases := []struct {
		domain string
		rule   string
		dist   int
	}{
		{"facebook.net", RuleExactName, 0},
		{"xn--fcebook-8va.com", RuleSkeleton, 1}, // fácebook vs facebook
		{"pypal.com", RuleTypoEdit, 1},
		{"facebook-login.com", RuleBrandSubstring, 6},
		{"unrelated.org", RuleNone, -1},
	}
	for _, tc := range cases {
		ex := m.Explain(tc.domain)
		if ex.Rule != tc.rule {
			t.Errorf("Explain(%q).Rule = %q, want %q", tc.domain, ex.Rule, tc.rule)
		}
		if ex.EditDistance != tc.dist {
			t.Errorf("Explain(%q).EditDistance = %d, want %d", tc.domain, ex.EditDistance, tc.dist)
		}
	}

	ex := m.Explain("xn--fcebook-8va.com")
	if ex.Unicode == "" || ex.Skeleton != ex.BrandSkeleton {
		t.Errorf("homograph explanation lacks IDN evidence: unicode=%q skeleton=%q brand_skeleton=%q",
			ex.Unicode, ex.Skeleton, ex.BrandSkeleton)
	}
	if ev := ex.Evidence(); ev.Rule != RuleSkeleton || ev.Brand != "facebook.com" {
		t.Errorf("Evidence() = %+v", ev)
	}
	if ev := m.Explain("unrelated.org").Evidence(); ev.Brand != "" || ev.EditDistance != -1 {
		t.Errorf("unmatched Evidence() = %+v", ev)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0}, {"abc", "", 3}, {"", "abc", 3},
		{"paypal", "paypal", 0}, {"pypal", "paypal", 1}, {"paypa1", "paypal", 1},
		{"kitten", "sitting", 3}, {"fácebook", "facebook", 1},
	}
	for _, tc := range cases {
		if got := levenshtein(tc.a, tc.b); got != tc.d {
			t.Errorf("levenshtein(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.d)
		}
	}
	// Symmetry property.
	if err := quick.Check(func(a, b string) bool {
		return levenshtein(a, b) == levenshtein(b, a)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchFeedsTraceCollector(t *testing.T) {
	m := NewMatcher(testBrands)
	col := trace.NewCollector(1) // sample everything
	m.InstrumentTrace(col)

	if _, ok := m.Match("pypal.com"); !ok {
		t.Fatal("pypal.com should match")
	}
	m.Match("unrelated.org")
	sampled, matched := col.ScanStats()
	if sampled != 2 || matched != 1 {
		t.Errorf("ScanStats = (%d, %d), want (2, 1)", sampled, matched)
	}
	marks := col.ScanMarks()
	if len(marks) != 2 || marks[0].Domain != "pypal.com" || !marks[0].Matched {
		t.Errorf("marks = %+v", marks)
	}

	m.InstrumentTrace(nil) // detach must be safe
	m.Match("pypal.com")
	if s, _ := col.ScanStats(); s != 2 {
		t.Error("detached collector still observed scans")
	}
}
