package squat

import (
	"testing"

	"squatphi/internal/obs"
)

// TestMatcherMetrics verifies the per-type candidate counters and scan
// accounting of an instrumented matcher.
func TestMatcherMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMatcher(testBrands)
	m.InstrumentMetrics(reg)

	cases := []struct {
		domain string
		hit    bool
	}{
		{"facebook.net", true},       // wrongTLD
		{"faceboook.com", true},      // typo (repetition)
		{"facebook-login.com", true}, // combo
		{"totally-unrelated.org", false},
		{"facebook.com", false}, // the original site is not a candidate
	}
	for _, c := range cases {
		if _, ok := m.Match(c.domain); ok != c.hit {
			t.Fatalf("Match(%q) = %v, want %v", c.domain, ok, c.hit)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["squat.match.scanned"]; got != int64(len(cases)) {
		t.Errorf("scanned = %d, want %d", got, len(cases))
	}
	if got := snap.Counters["squat.match.candidates"]; got != 3 {
		t.Errorf("candidates = %d, want 3", got)
	}
	for name, want := range map[string]int64{
		"squat.match.candidates.wrongTLD": 1,
		"squat.match.candidates.typo":     1,
		"squat.match.candidates.combo":    1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Scan timing is sampled 1-in-scanSampleEvery (the first call of each
	// period is timed), so 5 matches yield exactly one observation...
	if got := snap.Histograms["squat.match.scan_us"].Count; got != 1 {
		t.Errorf("scan time observations = %d, want 1 (sampled)", got)
	}

	// ...and pushing past two more sampling periods yields two more, while
	// the scanned counter stays exact.
	for i := 0; i < 2*scanSampleEvery; i++ {
		m.Match("totally-unrelated.org")
	}
	snap = reg.Snapshot()
	if got := snap.Counters["squat.match.scanned"]; got != int64(len(cases)+2*scanSampleEvery) {
		t.Errorf("scanned = %d, want %d", got, len(cases)+2*scanSampleEvery)
	}
	if got := snap.Histograms["squat.match.scan_us"].Count; got != 3 {
		t.Errorf("scan time observations after %d matches = %d, want 3", len(cases)+2*scanSampleEvery, got)
	}
}

// TestMatcherUninstrumented ensures the metrics path is optional.
func TestMatcherUninstrumented(t *testing.T) {
	m := NewMatcher(testBrands)
	if _, ok := m.Match("facebook.net"); !ok {
		t.Fatal("uninstrumented matcher stopped matching")
	}
}
