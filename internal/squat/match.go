package squat

import (
	"math"
	"sync/atomic"

	"squatphi/internal/confusables"
	"squatphi/internal/domlm"
	"squatphi/internal/obs"
	"squatphi/internal/obs/trace"
)

// Matcher classifies observed DNS domains against a set of target brands.
// It is built once per brand set and then shared by any number of
// goroutines: all internal state is immutable after construction.
//
// Classification applies the five squatting rules in precedence order
// (wrongTLD for exact-name matches, then homograph, bits, typo, combo) so
// the resulting categories are disjoint, matching the paper's methodology.
type Matcher struct {
	brands []Brand

	// byName maps a brand's registrable label to its index in brands.
	byName map[string]int
	// bySkeleton maps the confusable skeleton of each brand name to its
	// index; an observed label whose skeleton hits this map (and whose raw
	// label differs from the brand) is a homograph.
	bySkeleton map[string]int
	// edits maps every generated bits/typo label to (brand index, type).
	edits map[string]editEntry
	// fast folds byName, bySkeleton and edits into one combined map for
	// labels that are their own skeleton — the hot-loop common case, which
	// then costs a single lookup instead of three. fastLens is the bitmask
	// of key lengths present, letting labels of unindexed lengths skip the
	// lookup entirely. See classifyBytes.
	fast     map[string]fastEntry
	fastLens uint64
	// ac finds brand names inside hyphenated labels for combo detection.
	ac *ahoCorasick

	// met is nil until InstrumentMetrics; all handles are atomic so Match
	// stays shareable across goroutines.
	met *matcherMetrics

	// trace is nil until InstrumentTrace; it receives head-sampled scan
	// provenance marks (1-in-N by domain hash, worker-count invariant).
	trace *trace.Collector

	// lm is the attached brand-language model (nil until AttachLM). When
	// present, labels that miss all five rule-based types are scored for
	// brand-likeness and promoted to Generated at lmThreshold.
	lm          *domlm.Model
	lmThreshold float64

	// brandHash and fp are computed once at construction; see BrandHash
	// and Fingerprint.
	brandHash uint64
	fp        uint64
}

// matchRulesVersion versions the classification rules themselves. Bump it
// whenever classify's behaviour changes for an unchanged brand set (new
// squatting type, different precedence, confusables-table change), so
// caches keyed on Fingerprint are invalidated even though the brand
// universe is identical.
const matchRulesVersion = 1

// scanSampleEvery is the sampling period of the scan_us histogram: one
// classification in every scanSampleEvery is timed. A classification costs
// on the order of a microsecond, so two stopwatch reads per record would
// dominate the DNS-scale hot loop; sampling keeps the latency distribution
// while the scanned/candidate counters stay exact.
const scanSampleEvery = 64

// matcherMetrics holds the matcher's registry handles: domains scanned,
// candidates per squatting type, and the sampled per-classification scan
// time (which includes the Aho-Corasick combo pass).
type matcherMetrics struct {
	scanned *obs.Counter
	hits    *obs.Counter
	byType  map[Type]*obs.Counter
	scanUS  *obs.Histogram
	calls   atomic.Uint64 // drives 1-in-scanSampleEvery timing
}

// InstrumentMetrics points the matcher's counters at reg. Call it after
// NewMatcher and before sharing the matcher across goroutines.
func (m *Matcher) InstrumentMetrics(reg *obs.Registry) {
	met := &matcherMetrics{
		scanned: reg.Counter("squat.match.scanned"),
		hits:    reg.Counter("squat.match.candidates"),
		byType:  make(map[Type]*obs.Counter, len(MatchTypes)),
		scanUS:  reg.Histogram("squat.match.scan_us", obs.MicrosBuckets),
	}
	for _, t := range MatchTypes {
		met.byType[t] = reg.Counter("squat.match.candidates." + t.String())
	}
	m.met = met
}

// InstrumentTrace points the matcher's scan-provenance sink at col (nil
// detaches). Like InstrumentMetrics, call it before sharing the matcher
// across goroutines. The hot-path cost for unsampled domains is one FNV
// hash — see the scanbench provenance entry for the measured overhead.
func (m *Matcher) InstrumentTrace(col *trace.Collector) { m.trace = col }

type editEntry struct {
	brand int
	typ   Type
}

// NewMatcher indexes the given brands for bulk classification.
func NewMatcher(brands []Brand) *Matcher {
	m := &Matcher{
		brands:     brands,
		byName:     make(map[string]int, len(brands)),
		bySkeleton: make(map[string]int, len(brands)),
		edits:      make(map[string]editEntry),
	}
	gen := NewGenerator()
	names := make([]string, len(brands))
	for i, b := range brands {
		names[i] = b.Name
		m.byName[b.Name] = i
		m.bySkeleton[confusables.Skeleton(b.Name)] = i
	}
	for i, b := range brands {
		for _, c := range gen.BitFlips(b) {
			label, _ := SplitETLD(c.Domain)
			m.addEdit(label, i, Bits)
		}
		for _, c := range gen.Typos(b) {
			label, _ := SplitETLD(c.Domain)
			m.addEdit(label, i, Typo)
		}
	}
	m.ac = newAhoCorasick(names)
	m.buildFast()

	// Brand-universe hash: FNV-1a over the ordered brand domains. The brand
	// order is part of the universe on purpose — combo matching prefers the
	// longest brand, but equal-length ties resolve by index.
	bh := uint64(14695981039346656037)
	mixIn := func(s string) {
		for i := 0; i < len(s); i++ {
			bh ^= uint64(s[i])
			bh *= 1099511628211
		}
		bh ^= '\n'
		bh *= 1099511628211
	}
	for _, b := range brands {
		mixIn(b.Domain())
	}
	m.brandHash = bh
	// Config fingerprint: the brand hash plus the derived index shape and
	// the rules version. Any change to the generator's edit tables or the
	// skeleton fold shows up in the index sizes; rule-logic changes must
	// bump matchRulesVersion.
	fp := bh ^ matchRulesVersion*0x9e3779b97f4a7c15
	fp ^= uint64(len(m.edits)) * 0xbf58476d1ce4e5b9
	fp ^= uint64(len(m.bySkeleton)) * 0x94d049bb133111eb
	m.fp = fp
	return m
}

// BrandHash identifies the brand universe this matcher was built over. Two
// matchers over the same ordered brand list share a BrandHash.
func (m *Matcher) BrandHash() uint64 { return m.brandHash }

// Fingerprint identifies the matcher's full classification configuration:
// the brand universe plus the derived match indexes, the rules version,
// and — once AttachLM has run — the attached language model and its
// promotion threshold. Caches of Match results (internal/deltascan) key
// their validity on it — a differing fingerprint means cached verdicts
// may be stale and the cache must degrade to a full re-scan.
func (m *Matcher) Fingerprint() uint64 { return m.fp }

// AttachLM attaches a brand-language model: labels missing all five
// rule-based types are scored for brand-likeness and classified Generated
// at or above threshold (<= 0 means domlm.DefaultThreshold). Call before
// sharing the matcher across goroutines — like the instrumentation hooks,
// attachment is construction-time configuration, not runtime state.
//
// The model fingerprint and the threshold bits are folded into the
// matcher fingerprint, so attaching a model — or attaching a retrained
// or re-thresholded one — changes Fingerprint exactly like a brand-set
// change does: deltascan verdict caches degrade to a full re-scan
// instead of serving verdicts computed under a different model.
func (m *Matcher) AttachLM(model *domlm.Model, threshold float64) {
	if threshold <= 0 {
		threshold = domlm.DefaultThreshold
	}
	m.lm = model
	m.lmThreshold = threshold
	if model != nil {
		m.fp ^= model.Fingerprint() * 0x2545f4914f6cdd1d
		m.fp ^= math.Float64bits(threshold) * 0x9e3779b97f4a7c15
	}
}

// LM returns the attached brand-language model and its promotion
// threshold (nil, 0 when none is attached).
func (m *Matcher) LM() (*domlm.Model, float64) { return m.lm, m.lmThreshold }

// addEdit records a generated label unless it collides with a real brand
// name (e.g. the omission typo of "apples" would be "apple") or an existing
// entry of an earlier-precedence type.
func (m *Matcher) addEdit(label string, brand int, typ Type) {
	if _, isBrand := m.byName[label]; isBrand {
		return
	}
	if prev, ok := m.edits[label]; ok && prev.typ <= typ {
		return
	}
	m.edits[label] = editEntry{brand: brand, typ: typ}
}

// Brands returns the indexed brand set.
func (m *Matcher) Brands() []Brand { return m.brands }

// Match classifies a single observed domain. The bool result reports
// whether the domain is a squatting domain of any indexed brand. Domains
// equal to a brand's own domain (or a subdomain of it) return false.
//
// Match borrows scratch buffers from a pool; scan loops that own a
// per-worker Scratch should call MatchString or MatchBytes directly.
func (m *Matcher) Match(domain string) (Candidate, bool) {
	s := scratchPool.Get().(*Scratch)
	c, ok := m.MatchString(domain, s)
	scratchPool.Put(s)
	return c, ok
}

// classify applies the five squatting rules in precedence order. It is the
// uninstrumented core shared by Match and Explain.
func (m *Matcher) classify(domain string) (Candidate, bool) {
	s := scratchPool.Get().(*Scratch)
	_, clean, _, _ := prescan(domain)
	s.norm = appendNormalized(s.norm[:0], domain)
	d1, d2 := lastTwoDots(s.norm)
	c, ok := m.classifyBytes(s.norm, clean, d1, d2, s)
	scratchPool.Put(s)
	return c, ok
}

// MatchAll classifies a batch of domains, returning only the squatting hits.
func (m *Matcher) MatchAll(domains []string) []Candidate {
	var out []Candidate
	for _, d := range domains {
		if c, ok := m.Match(d); ok {
			out = append(out, c)
		}
	}
	return out
}
