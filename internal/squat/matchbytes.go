package squat

import (
	"bytes"
	"sync"
	"unicode"
	"unicode/utf8"

	"squatphi/internal/confusables"
	"squatphi/internal/domlm"
	"squatphi/internal/obs"
	"squatphi/internal/punycode"
)

// Scratch holds the reusable buffers of one matcher worker. The
// allocation-free match path (MatchString, MatchBytes) normalizes the
// observed domain and derives its confusable skeleton into these buffers
// instead of allocating per record; after a few records the buffers reach
// steady-state capacity and the miss path performs zero allocations.
//
// A Scratch must not be shared between concurrent goroutines. The zero
// value is ready to use.
type Scratch struct {
	norm []byte // normalized domain: lowercase, no trailing dot
	skel []byte // confusable skeleton of the registrable label
	lm   domlm.Scratch
}

// scratchPool backs the scratch-less convenience entry points (Match,
// MatchAll, Explain) so they stay allocation-light without forcing every
// caller to thread a Scratch.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// fastEntry folds the three label indexes — exact brand name, brand
// skeleton, bits/typo edit table — into one map entry. For a label that
// is already its own skeleton (the overwhelming majority of a DNS
// snapshot), a single lookup in the fast map answers the first three
// classification rules in precedence order; only hyphenated labels go on
// to the combo automaton.
type fastEntry struct {
	name     int32 // brand index for an exact-name match, -1 if none
	skel     int32 // brand index for a skeleton match, -1 if none
	edit     int32 // brand index for an edit-table match, -1 if none
	editType Type
}

// lenBit maps a label length to its bit in the fastLens mask (lengths
// beyond 63 share the top bit).
//
//squat:hot
func lenBit(n int) uint64 {
	if n > 63 {
		n = 63
	}
	return 1 << uint(n)
}

// buildFast derives the combined fast map from the three per-rule indexes.
// Keys that can never be reached through the fast path (e.g. edit labels
// containing digit substitutions, which classify as "dirty") are harmless:
// dirty labels consult the per-rule maps directly.
func (m *Matcher) buildFast() {
	m.fast = make(map[string]fastEntry, len(m.byName)+len(m.bySkeleton)+len(m.edits))
	get := func(k string) fastEntry {
		if e, ok := m.fast[k]; ok {
			return e
		}
		return fastEntry{name: -1, skel: -1, edit: -1}
	}
	for k, i := range m.byName {
		e := get(k)
		e.name = int32(i)
		m.fast[k] = e
	}
	for k, i := range m.bySkeleton {
		e := get(k)
		e.skel = int32(i)
		m.fast[k] = e
	}
	for k, ee := range m.edits {
		e := get(k)
		e.edit = int32(ee.brand)
		e.editType = ee.typ
		m.fast[k] = e
	}
	for k := range m.fast {
		m.fastLens |= lenBit(len(k))
	}
}

// byteClass drives prescan: one table load classifies a raw input byte as
// ordinary (0), a label separator, in need of normalization (uppercase or
// non-ASCII), self-skeleton-breaking after lowering (a fold byte), or a
// possible second byte of a confusable pair. Built at init from the
// confusables tables so the two stay in lockstep by construction.
var byteClass [256]byte

const (
	classDot   = 1 << iota // '.': label separator, tracked for splitETLD
	classNorm              // uppercase or non-ASCII: needs normalization
	classDirty             // folds to another byte once lowered
	classSeq               // can end a multiSeq pair once lowered
)

func init() {
	for i := 0; i < 256; i++ {
		c := byte(i)
		if c >= utf8.RuneSelf {
			byteClass[i] = classNorm | classDirty
			continue
		}
		if c == '.' {
			byteClass[i] = classDot
			continue
		}
		if 'A' <= c && c <= 'Z' {
			byteClass[i] |= classNorm
			c += 'a' - 'A'
		}
		// DirtyASCII with a never-pairing prev isolates the fold predicate;
		// probing every prev finds the pair-second bytes.
		if confusables.DirtyASCII(0, c) {
			byteClass[i] |= classDirty
			continue
		}
		for prev := byte(1); prev < utf8.RuneSelf; prev++ {
			if confusables.DirtyASCII(prev, c) {
				byteClass[i] |= classSeq
				break
			}
		}
	}
}

// prescan walks a raw domain once and answers the questions of the match
// entry: does it need normalization (upper-case byte, trailing dot, or
// non-ASCII), is its normalized form pure ASCII that is its own
// confusable skeleton, and where are its last two '.' separators (-1 when
// absent; valid only when needNorm is false, since normalization shifts
// positions). The clean answer is conservative over the whole domain — a
// fold byte in the subdomain or TLD sends a clean label down the dirty
// path, which computes the same verdict, just slower.
//
//squat:hot
func prescan[T string | []byte](domain T) (needNorm, clean bool, d1, d2 int) {
	n := len(domain)
	if n > 0 && domain[n-1] == '.' {
		needNorm = true
	}
	clean = true
	d1, d2 = -1, -1
	var prev byte
	for i := 0; i < n; i++ {
		c := domain[i]
		f := byteClass[c]
		if f == 0 {
			prev = c
			continue
		}
		if f == classDot {
			d2, d1 = d1, i
			prev = c
			continue
		}
		if c >= utf8.RuneSelf {
			return true, false, 0, 0
		}
		if f&classNorm != 0 {
			needNorm = true
			c += 'a' - 'A'
		}
		if f&classDirty != 0 || (f&classSeq != 0 && confusables.DirtyASCII(prev, c)) {
			clean = false
			if needNorm {
				return true, false, 0, 0 // nothing left to learn
			}
		}
		prev = c
	}
	return needNorm, clean, d1, d2
}

// lastTwoDots recomputes the dot positions prescan could not carry across
// normalization.
//
//squat:hot
func lastTwoDots(norm []byte) (d1, d2 int) {
	d1 = bytes.LastIndexByte(norm, '.')
	if d1 < 0 {
		return -1, -1
	}
	return d1, bytes.LastIndexByte(norm[:d1], '.')
}

// MatchString classifies one observed domain using caller-owned scratch
// buffers. It is Match with the per-call scratch pool round trip factored
// out: a scan worker that owns a Scratch performs no allocations on the
// miss path (uninstrumented matcher; see BenchmarkMatchMiss and the
// bench-check gate).
//
//squat:hot
func (m *Matcher) MatchString(domain string, s *Scratch) (Candidate, bool) {
	needNorm, clean, d1, d2 := prescan(domain)
	if needNorm {
		s.norm = appendNormalized(s.norm[:0], domain)
		d1, d2 = lastTwoDots(s.norm)
	} else {
		s.norm = append(s.norm[:0], domain...)
	}
	met := m.met
	if met == nil {
		c, ok := m.classifyBytes(s.norm, clean, d1, d2, s)
		m.trace.ObserveScan(domain, ok)
		return c, ok
	}
	sampled := met.calls.Add(1)%scanSampleEvery == 1
	var sw obs.Stopwatch
	if sampled {
		sw = obs.StartStopwatch()
	}
	c, ok := m.classifyBytes(s.norm, clean, d1, d2, s)
	if sampled {
		met.scanUS.Observe(sw.Micros())
	}
	met.scanned.Inc()
	if ok {
		met.hits.Inc()
		met.byType[c.Type].Inc()
	}
	m.trace.ObserveScan(domain, ok)
	return c, ok
}

// MatchBytes classifies one observed domain given as raw bytes — the
// entry point for scanning mmap-backed snapshots (internal/snapfmt),
// where domains are byte slices into a file mapping and never exist as
// strings. Verdicts, metrics and trace sampling are identical to Match on
// the equivalent string; a string is materialized only at hit time (for
// the Candidate) or when the domain falls into the provenance head
// sample.
//
//squat:hot
func (m *Matcher) MatchBytes(domain []byte, s *Scratch) (Candidate, bool) {
	// Already-normalized input (every store record and generated snapshot
	// domain) is classified in place — no copy at all on the miss path.
	needNorm, clean, d1, d2 := prescan(domain)
	norm := domain
	if needNorm {
		s.norm = appendNormalized(s.norm[:0], domain)
		norm = s.norm
		d1, d2 = lastTwoDots(norm)
	}
	met := m.met
	if met == nil {
		c, ok := m.classifyBytes(norm, clean, d1, d2, s)
		m.trace.ObserveScanBytes(domain, ok)
		return c, ok
	}
	sampled := met.calls.Add(1)%scanSampleEvery == 1
	var sw obs.Stopwatch
	if sampled {
		sw = obs.StartStopwatch()
	}
	c, ok := m.classifyBytes(norm, clean, d1, d2, s)
	if sampled {
		met.scanUS.Observe(sw.Micros())
	}
	met.scanned.Inc()
	if ok {
		met.hits.Inc()
		met.byType[c.Type].Inc()
	}
	m.trace.ObserveScanBytes(domain, ok)
	return c, ok
}

// classifyBytes applies the five squatting rules in precedence order over
// a normalized domain. norm must be lowercase without a trailing dot;
// clean reports that the whole of norm is ASCII that is its own skeleton
// (a conservative prescan result — false only costs the slower dirty
// path, never a different verdict); d1, d2 are the positions of the last
// two '.' bytes of norm (-1 when absent), carried over from prescan so
// the eTLD split costs no second pass. The returned Candidate copies norm
// at hit time only.
//
//squat:hot
func (m *Matcher) classifyBytes(norm []byte, clean bool, d1, d2 int, s *Scratch) (Candidate, bool) {
	label, tld := splitETLDAt(norm, d1, d2)
	if len(label) == 0 {
		return Candidate{}, false
	}

	if clean && !isACELabel(label) {
		// Fast path: the label is plain ASCII and its own skeleton, so one
		// combined lookup answers exact-name, homograph and edit-table in
		// precedence order without computing anything. Labels whose length
		// no fast-map key has (checked against a 2ns bitmask) skip even
		// that lookup.
		if m.fastLens&lenBit(len(label)) != 0 {
			if e, ok := m.fast[string(label)]; ok {
				switch {
				case e.name >= 0:
					if eqBytesString(tld, m.brands[e.name].TLD) {
						return Candidate{}, false // the original site
					}
					return m.hit(norm, WrongTLD, int(e.name))
				case e.skel >= 0:
					return m.hit(norm, Homograph, int(e.skel))
				default:
					return m.hit(norm, e.editType, int(e.edit))
				}
			}
		}
		return m.comboOrLM(norm, label, s)
	}

	// Dirty path: the label carries case-folds, confusable bytes, pair
	// sequences or an ACE prefix; walk the rules one by one.
	if bi, ok := m.byName[string(label)]; ok {
		if eqBytesString(tld, m.brands[bi].TLD) {
			return Candidate{}, false // the original site
		}
		return m.hit(norm, WrongTLD, bi)
	}
	if isACELabel(label) {
		if c, ok := m.aceHomograph(norm); ok {
			return c, ok
		}
	} else {
		s.skel = confusables.AppendSkeleton(s.skel[:0], label)
		if bi, ok := m.bySkeleton[string(s.skel)]; ok {
			return m.hit(norm, Homograph, bi)
		}
	}
	if e, ok := m.edits[string(label)]; ok {
		return m.hit(norm, e.typ, e.brand)
	}
	return m.comboOrLM(norm, label, s)
}

// aceHomograph applies the IDN homograph rule to an ACE (xn--) label:
// decode and re-split through the string path. ACE labels are
// ~per-million events in a real snapshot, so this is a deliberate hot-path
// boundary — the punycode/skeleton string machinery behind it allocates,
// and that cost is off the 0-allocs/op miss budget by construction
// (TestMatchMissZeroAlloc and make bench-check gate it dynamically).
//
//squat:cold
func (m *Matcher) aceHomograph(norm []byte) (Candidate, bool) {
	uni, _ := SplitETLD(punycode.ToUnicode(string(norm)))
	if bi, ok := m.bySkeleton[confusables.Skeleton(uni)]; ok {
		return m.hit(norm, Homograph, bi)
	}
	return Candidate{}, false
}

// combo applies the final rule: a hyphenated label containing a brand
// name.
//
//squat:hot
func (m *Matcher) combo(norm, label []byte) (Candidate, bool) {
	if bytes.IndexByte(label, '-') < 0 {
		return Candidate{}, false
	}
	if best := m.ac.bestMatch(label); best >= 0 {
		return m.hit(norm, Combo, int(best))
	}
	return Candidate{}, false
}

// comboOrLM is the shared tail of both classification paths: the combo
// rule, then — when a brand-language model is attached — the Generated
// promotion for labels the five rule-based types all missed. The model
// scores into the worker's scratch, so the (overwhelmingly common) miss
// outcome stays at zero allocations (BenchmarkMatchMissLM and the
// bench-check gate pin this).
//
//squat:hot
func (m *Matcher) comboOrLM(norm, label []byte, s *Scratch) (Candidate, bool) {
	if c, ok := m.combo(norm, label); ok {
		return c, ok
	}
	if m.lm != nil && len(label) >= domlm.MinLabelLen {
		if m.lm.ScoreLabelBytes(label, &s.lm) >= m.lmThreshold {
			return m.lmHit(norm)
		}
	}
	return Candidate{}, false
}

// lmHit materializes a Generated candidate (hit time, like hit — the
// conversion allocation is deferred off the miss path). Generated hits
// carry no brand attribution: the model scores against the whole brand
// universe, not any one name.
//
//squat:cold
func (m *Matcher) lmHit(norm []byte) (Candidate, bool) {
	return Candidate{Domain: string(norm), Type: Generated}, true
}

// hit materializes a Candidate — the only allocation of the match path,
// deferred to hit time (hits are ~per-million events in a real snapshot).
//
//squat:cold
func (m *Matcher) hit(norm []byte, t Type, brand int) (Candidate, bool) {
	return Candidate{Domain: string(norm), Type: t, Brand: m.brands[brand]}, true
}

// appendNormalized appends the normalized form of domain — lowercase with
// one trailing dot removed, exactly strings.ToLower(strings.TrimSuffix(d,
// ".")) — to dst. Generic over both byte views so the string and []byte
// entry points share one implementation.
//
//squat:hot
func appendNormalized[T string | []byte](dst []byte, domain T) []byte {
	n := len(domain)
	if n > 0 && domain[n-1] == '.' {
		n--
	}
	for i := 0; i < n; i++ {
		c := domain[i]
		if c >= utf8.RuneSelf {
			return appendLowerRunes(dst, string(domain[i:n]))
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// appendLowerRunes is appendNormalized's non-ASCII tail: rune-by-rune
// Unicode lowering, mirroring strings.ToLower (invalid UTF-8 decodes to
// RuneError exactly as strings.Map replaces it).
//
//squat:hot
func appendLowerRunes(dst []byte, rest string) []byte {
	for _, r := range rest {
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
	}
	return dst
}

// splitETLDAt is SplitETLD over an already-normalized domain whose last
// two '.' positions (d1, d2; -1 when absent) are already known, returning
// subslices instead of allocating: the registrable label and the
// effective TLD (nil for a bare label).
//
//squat:hot
func splitETLDAt(norm []byte, d1, d2 int) (label, tld []byte) {
	if d1 < 0 {
		return norm, nil
	}
	if d2 >= 0 && multiLabelSuffixes[string(norm[d2+1:])] {
		d3 := bytes.LastIndexByte(norm[:d2], '.')
		return norm[d3+1 : d2], norm[d2+1:]
	}
	return norm[d2+1 : d1], norm[d1+1:]
}

// splitETLDBytes is splitETLDAt with the dot positions computed here —
// the entry for callers without a prescan in hand.
func splitETLDBytes(norm []byte) (label, tld []byte) {
	d1, d2 := lastTwoDots(norm)
	return splitETLDAt(norm, d1, d2)
}

// isACELabel reports whether a normalized label carries the IDN "xn--"
// ACE prefix.
//
//squat:hot
func isACELabel(label []byte) bool {
	return len(label) >= 4 && label[0] == 'x' && label[1] == 'n' && label[2] == '-' && label[3] == '-'
}

// eqBytesString compares a byte slice to a string without conversion.
//
//squat:hot
func eqBytesString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}
