package squat

// ahoCorasick is a byte-level Aho-Corasick automaton used to find brand
// names inside domain labels in a single pass. Scanning 702 brand names
// against hundreds of millions of DNS labels with strings.Contains would be
// quadratic in practice; the automaton makes the combo-squatting check
// linear in the label length regardless of how many brands are indexed.
type ahoCorasick struct {
	next   [][256]int32 // goto function; -1 means undefined before build
	fail   []int32      // failure links
	output [][]int32    // pattern indices terminating at each state
	pats   []string

	// lead is bestMatch's bigram prefilter: lead[a] has bit b set when
	// some pattern starts with bytes a,b. Any occurrence of a pattern
	// necessarily contains that pattern's leading bigram, so a text none
	// of whose adjacent byte pairs is in the set cannot contain any
	// pattern — the 8KB table (cache-resident, unlike the transition
	// rows) rejects it without walking the automaton. noPrefilter
	// disables the check when a pattern shorter than two bytes exists.
	lead        [256][4]uint64
	noPrefilter bool
}

func newAhoCorasick(patterns []string) *ahoCorasick {
	ac := &ahoCorasick{pats: patterns}
	ac.addState() // root
	for pi, p := range patterns {
		s := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			if ac.next[s][c] == 0 {
				ac.next[s][c] = ac.addState()
			}
			s = ac.next[s][c]
		}
		ac.output[s] = append(ac.output[s], int32(pi))
		if len(p) < 2 {
			ac.noPrefilter = true
		} else {
			ac.lead[p[0]][p[1]>>6] |= 1 << (p[1] & 63)
		}
	}
	ac.build()
	return ac
}

func (ac *ahoCorasick) addState() int32 {
	ac.next = append(ac.next, [256]int32{})
	ac.fail = append(ac.fail, 0)
	ac.output = append(ac.output, nil)
	return int32(len(ac.next) - 1)
}

// build computes failure links breadth-first and converts the goto function
// into a full transition function (state 0 self-loops on undefined bytes).
func (ac *ahoCorasick) build() {
	queue := make([]int32, 0, len(ac.next))
	for c := 0; c < 256; c++ {
		if s := ac.next[0][c]; s != 0 {
			ac.fail[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			v := ac.next[u][c]
			if v == 0 {
				ac.next[u][c] = ac.next[ac.fail[u]][c]
				continue
			}
			ac.fail[v] = ac.next[ac.fail[u]][c]
			ac.output[v] = append(ac.output[v], ac.output[ac.fail[v]]...)
			queue = append(queue, v)
		}
	}
}

// match invokes fn for each (patternIndex, endOffset) occurrence in text.
// Returning false from fn stops the scan early.
func (ac *ahoCorasick) match(text string, fn func(pat int32, end int) bool) {
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = ac.next[s][text[i]]
		for _, pi := range ac.output[s] {
			if !fn(pi, i+1) {
				return
			}
		}
	}
}

// bestMatch returns the index of the preferred pattern occurring in text:
// scanning occurrence by occurrence, a pattern replaces the current best
// only when strictly longer, so the result is the first-seen longest
// occurrence — the combo-rule preference ("facebook-login" matches
// facebook, never a hypothetical brand "face"). Returns -1 when no
// pattern occurs. Allocation-free: the automaton is walked with no
// callback, so the hot scan loop needs no closure.
//
//squat:hot
func (ac *ahoCorasick) bestMatch(text []byte) int32 {
	if !ac.noPrefilter {
		hit := false
		for i := 1; i < len(text); i++ {
			if ac.lead[text[i-1]][text[i]>>6]&(1<<(text[i]&63)) != 0 {
				hit = true
				break
			}
		}
		if !hit {
			return -1
		}
	}
	s := int32(0)
	best := int32(-1)
	for i := 0; i < len(text); i++ {
		s = ac.next[s][text[i]]
		for _, pi := range ac.output[s] {
			if best == -1 || len(ac.pats[pi]) > len(ac.pats[best]) {
				best = pi
			}
		}
	}
	return best
}
