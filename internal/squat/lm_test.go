package squat

import (
	"strings"
	"testing"

	"squatphi/internal/domlm"
	"squatphi/internal/obs"
	"squatphi/internal/simrand"
)

// lmNames is the brand vocabulary the test model trains over: the parity
// matcher's brands plus enough of the wider universe for the model to
// generalize (a 7-name model can only reproduce its inputs verbatim).
var lmNames = []string{
	"paypal", "facebook", "google", "citibank", "bbc", "amazon", "cloud",
	"netflix", "microsoft", "dropbox", "linkedin", "spotify", "airbnb",
	"coinbase", "binance", "wellsfargo", "santander", "alibaba", "tencent",
	"youtube", "whatsapp", "instagram", "telegram", "shopify", "stripe",
}

// lmModel trains a brand-language model the way core.New does when DomLM
// is enabled: default config over the brand-name vocabulary.
func lmModel() *domlm.Model {
	return domlm.Train(lmNames, domlm.DefaultConfig())
}

// generatedProbe rejection-samples the model for a label that the five
// rule-based types all miss but the model scores at or above thr — the
// shape the webworld generated-squat scenario plants.
func generatedProbe(t *testing.T, m *Matcher, model *domlm.Model, thr float64) string {
	t.Helper()
	r := simrand.New(1234).Split("probe")
	base := NewMatcher(m.Brands()) // same rules, no LM attached
	for i := 0; i < 5000; i++ {
		label := model.SampleLabel(r)
		if len(label) < domlm.MinLabelLen || model.ScoreLabel(label) < thr {
			continue
		}
		if _, isBrand := base.byName[label]; isBrand {
			continue // sampled a brand name verbatim: that's the original site
		}
		d := label + ".com"
		if _, ok := base.Match(d); ok {
			continue
		}
		return d
	}
	t.Fatal("no generated probe found in 5000 samples")
	return ""
}

func TestAttachLMFingerprint(t *testing.T) {
	model := lmModel()
	base := parityMatcher().Fingerprint()

	m1 := parityMatcher()
	m1.AttachLM(model, 0)
	if m1.Fingerprint() == base {
		t.Error("attaching a model did not change the matcher fingerprint")
	}
	m2 := parityMatcher()
	m2.AttachLM(model, 0)
	if m2.Fingerprint() != m1.Fingerprint() {
		t.Error("same model + threshold produced different fingerprints")
	}
	m3 := parityMatcher()
	m3.AttachLM(model, 0.95)
	if m3.Fingerprint() == m1.Fingerprint() {
		t.Error("changing the threshold did not change the fingerprint")
	}
	retrained := domlm.Train([]string{"paypal", "facebook"}, domlm.DefaultConfig())
	m4 := parityMatcher()
	m4.AttachLM(retrained, 0)
	if m4.Fingerprint() == m1.Fingerprint() {
		t.Error("retraining the model did not change the fingerprint")
	}
}

func TestMatchGenerated(t *testing.T) {
	model := lmModel()
	m := parityMatcher()
	m.AttachLM(model, 0)
	reg := obs.NewRegistry()
	m.InstrumentMetrics(reg)

	d := generatedProbe(t, m, model, domlm.DefaultThreshold)
	c, ok := m.Match(d)
	if !ok || c.Type != Generated {
		t.Fatalf("Match(%q) = (%+v, %v), want a Generated hit", d, c, ok)
	}
	if c.Brand.Name != "" {
		t.Errorf("Generated hit carries brand attribution %q, want none", c.Brand.Name)
	}
	var s Scratch
	if cb, okb := m.MatchBytes([]byte(d), &s); okb != ok || cb != c {
		t.Errorf("MatchBytes(%q) = (%+v, %v), MatchString gave (%+v, %v)", d, cb, okb, c, ok)
	}
	if got := reg.Snapshot().Counters["squat.match.candidates.generated"]; got == 0 {
		t.Error("generated hits were not counted under squat.match.candidates.generated")
	}

	// The five rule-based types keep precedence over the LM: a typo of an
	// indexed brand classifies as Typo even with a model attached.
	if c, ok := m.Match("paypol.com"); !ok || c.Type != Typo {
		t.Errorf("Match(paypol.com) = (%+v, %v), want a Typo hit", c, ok)
	}
	// Ordinary registrations stay misses.
	for _, d := range []string{"example.com", "shop-fresh-market.io", "smartlabs42.co.uk"} {
		if c, ok := m.Match(d); ok {
			t.Errorf("Match(%q) = %+v, want a miss with the LM attached", d, c)
		}
	}
	// Labels below MinLabelLen never promote, whatever they score.
	if c, ok := m.Match("payp.net"); ok {
		t.Errorf("Match(payp.net) = %+v, want a miss (below MinLabelLen)", c)
	}
}

func TestExplainGenerated(t *testing.T) {
	model := lmModel()
	m := parityMatcher()
	m.AttachLM(model, 0)

	d := generatedProbe(t, m, model, domlm.DefaultThreshold)
	ex := m.Explain(d)
	if !ex.Matched || ex.Type != Generated || ex.Rule != RuleGenerated {
		t.Fatalf("Explain(%q) = %+v, want a %s match", d, ex, RuleGenerated)
	}
	if ex.LMScore < domlm.DefaultThreshold {
		t.Errorf("Explain(%q).LMScore = %v, below the promotion threshold", d, ex.LMScore)
	}
	if len(ex.LMModel) != 16 {
		t.Errorf("Explain(%q).LMModel = %q, want 16 hex digits", d, ex.LMModel)
	}
	if ex.EditDistance != -1 || ex.BrandSkeleton != "" {
		t.Errorf("Explain(%q) carries brand-relative evidence %+v, want none", d, ex)
	}
	ev := ex.Evidence()
	if ev.Rule != RuleGenerated || ev.LMScore != ex.LMScore || ev.LMModel != ex.LMModel || ev.Brand != "" {
		t.Errorf("Evidence() = %+v, does not mirror the explanation", ev)
	}

	// Misses expose the score too, so analysts can see the margin.
	exMiss := m.Explain("example.com")
	if exMiss.Matched || exMiss.LMModel == "" {
		t.Errorf("Explain(example.com) = %+v, want an unmatched explanation with LM evidence", exMiss)
	}
	if !strings.HasPrefix(RuleGenerated, Generated.String()) {
		t.Errorf("rule name %q does not carry the type name %q", RuleGenerated, Generated.String())
	}
}

// TestMatchMissZeroAllocLM extends the zero-allocation miss-path contract
// to a matcher with a language model attached: every miss now pays one
// ScoreLabelBytes call, which must stay allocation-free.
func TestMatchMissZeroAllocLM(t *testing.T) {
	m := parityMatcher()
	m.AttachLM(lmModel(), 0)
	var s Scratch
	for _, d := range missCorpus {
		if c, ok := m.MatchBytes(d, &s); ok {
			t.Fatalf("miss corpus entry %q matched %+v with the LM attached", d, c)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, d := range missCorpus {
			m.MatchBytes(d, &s)
		}
	}); n != 0 {
		t.Errorf("LM-attached MatchBytes miss path allocated %.1f times per run, want 0", n)
	}
}

// BenchmarkMatchMissLM measures the miss path with the LM attached — the
// per-record cost of generated-squat detection at scan scale. Picked up
// by the bench-check allocation gate alongside BenchmarkMatchMiss.
func BenchmarkMatchMissLM(b *testing.B) {
	m := parityMatcher()
	m.AttachLM(lmModel(), 0)
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchBytes(missCorpus[i%len(missCorpus)], &s)
	}
}
