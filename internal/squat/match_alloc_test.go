package squat

import (
	"strings"
	"testing"

	"squatphi/internal/confusables"
	"squatphi/internal/obs"
	"squatphi/internal/punycode"
)

// classifyReference is the pre-optimization string classify, verbatim: it
// re-splits (and re-lowercases) per rule and allocates freely. The byte
// path must agree with it on every normalized domain.
func classifyReference(m *Matcher, domain string) (Candidate, bool) {
	label, tld := SplitETLD(domain)
	if label == "" {
		return Candidate{}, false
	}
	if bi, ok := m.byName[label]; ok {
		if m.brands[bi].TLD == tld {
			return Candidate{}, false
		}
		return referenceCandidate(m, domain, WrongTLD, bi), true
	}
	uni := label
	if punycode.IsACE(label) {
		uni, _ = SplitETLD(punycode.ToUnicode(domain))
	}
	if bi, ok := m.bySkeleton[confusables.Skeleton(uni)]; ok {
		return referenceCandidate(m, domain, Homograph, bi), true
	}
	if e, ok := m.edits[label]; ok {
		return referenceCandidate(m, domain, e.typ, e.brand), true
	}
	if strings.Contains(label, "-") {
		found := -1
		m.ac.match(label, func(pat int32, end int) bool {
			if found == -1 || len(m.brands[pat].Name) > len(m.brands[found].Name) {
				found = int(pat)
			}
			return true
		})
		if found >= 0 {
			return referenceCandidate(m, domain, Combo, found), true
		}
	}
	return Candidate{}, false
}

func referenceCandidate(m *Matcher, domain string, t Type, brand int) Candidate {
	return Candidate{Domain: strings.ToLower(strings.TrimSuffix(domain, ".")), Type: t, Brand: m.brands[brand]}
}

func parityMatcher() *Matcher {
	return NewMatcher([]Brand{
		NewBrand("paypal.com"),
		NewBrand("facebook.com"),
		NewBrand("google.com"),
		NewBrand("citibank.com"),
		NewBrand("bbc.co.uk"),
		NewBrand("amazon.com"),
		NewBrand("cloud.io"), // skeleton("cloud") = "doud": non-self-skeleton brand
	})
}

// matchParityCorpus hits every branch of classifyBytes: clean fast-path
// labels (miss, exact, wrongTLD, homograph via skeleton-keyed brand, edit
// hits, combo), dirty labels (digits, case, pairs, unicode, ACE),
// multi-label TLDs, subdomains, trailing dots, and degenerate shapes.
var matchParityCorpus = []string{
	// clean misses
	"example.com", "somedomain.net", "deep.sub.domain.org", "bare",
	"shop-fresh.io", "designstudio.dev", "a.b.c.d.e",
	// exact brand / wrongTLD
	"paypal.com", "paypal.net", "paypal.org", "www.paypal.com",
	"bbc.co.uk", "bbc.com", "bbc.org.uk", "facebook.com.br",
	// homograph: skeleton-keyed brand "cloud" -> "doud"
	"cloud.io", "cloud.com", "doud.com", "doud.io", "c1oud.com",
	// edits (typo/bits), both clean and dirty spellings
	"paypol.com", "paypa1.com", "faceb00k.com", "g0ogle.net",
	"paypall.com", "aypal.com", "paypak.com",
	// combo
	"paypal-login.com", "secure-facebook.net", "my-google-docs.org",
	"facebook-paypal.com", "login-amazon.co.uk", "no-brand-here.com",
	// dirty non-hits
	"PayPal.COM", "FACEBOOK.net", "corn.com", "clip.org", "learn.io",
	// IDN / ACE
	"xn--pypal-4ve.com", "xn--fcebook-8va.com", "xn--invalid!!.com",
	"pаypаl.com", "fàcebook.net",
	// degenerate
	"", ".", "..", "...", "a..com", ".com", "com.", "paypal.com.",
	"-", "-.com", "xn--.com", "trailing.dot.", "\xff\xfe.com",
}

// trimExtraDots collapses a run of trailing dots to a single one. The
// reference oracle below re-normalizes internally (SplitETLD lowercases
// and trims one trailing dot), so composing it with the harness's own
// one-dot trim is only faithful when that reaches reference's fixpoint —
// i.e. when the input does not end in "..". Multi-trailing-dot inputs are
// invalid DNS names; the match path keeps the old trim-once behavior for
// them (pinned by the degenerate corpus entries, which all miss).
func trimExtraDots(raw string) string {
	for strings.HasSuffix(raw, "..") {
		raw = raw[:len(raw)-1]
	}
	return raw
}

// TestMatchBytesParity drives MatchString, MatchBytes and Match against
// the reference classify on normalized inputs (normalization happens once
// at scan entry now — the sanctioned behavior change of this refactor).
func TestMatchBytesParity(t *testing.T) {
	m := parityMatcher()
	var s Scratch
	for _, raw := range matchParityCorpus {
		raw := trimExtraDots(raw)
		norm := strings.ToLower(strings.TrimSuffix(raw, "."))
		wantC, wantOK := classifyReference(m, norm)

		gotC, gotOK := m.MatchString(raw, &s)
		if gotOK != wantOK || gotC != wantC {
			t.Errorf("MatchString(%q) = (%+v, %v), reference (%+v, %v)", raw, gotC, gotOK, wantC, wantOK)
		}
		gotC, gotOK = m.MatchBytes([]byte(raw), &s)
		if gotOK != wantOK || gotC != wantC {
			t.Errorf("MatchBytes(%q) = (%+v, %v), reference (%+v, %v)", raw, gotC, gotOK, wantC, wantOK)
		}
		gotC, gotOK = m.Match(raw)
		if gotOK != wantOK || gotC != wantC {
			t.Errorf("Match(%q) = (%+v, %v), reference (%+v, %v)", raw, gotC, gotOK, wantC, wantOK)
		}
	}
}

// FuzzMatchBytesParity extends the parity check to arbitrary inputs.
func FuzzMatchBytesParity(f *testing.F) {
	for _, s := range matchParityCorpus {
		f.Add(s)
	}
	m := parityMatcher()
	f.Fuzz(func(t *testing.T, raw string) {
		raw = trimExtraDots(raw)
		norm := strings.ToLower(strings.TrimSuffix(raw, "."))
		wantC, wantOK := classifyReference(m, norm)
		var s Scratch
		gotC, gotOK := m.MatchBytes([]byte(raw), &s)
		if gotOK != wantOK || gotC != wantC {
			t.Fatalf("MatchBytes(%q) = (%+v, %v), reference (%+v, %v)", raw, gotC, gotOK, wantC, wantOK)
		}
	})
}

// missCorpus holds the shapes the 224M-record scan spends its time on:
// domains that match nothing. All of them must classify without a single
// allocation.
var missCorpus = [][]byte{
	[]byte("example.com"),
	[]byte("somedomain.net"),
	[]byte("deep.sub.domain.org"),
	[]byte("shop-fresh-market.io"),     // hyphens: exercises the combo automaton
	[]byte("smartlabs42.co.uk"),        // multi-label eTLD
	[]byte("MiXeD-Case-Domain.COM"),    // ASCII case folding
	[]byte("faceb00k-ish-but-not.xyz"), // fold digits: dirty path + skeleton scratch
	[]byte("trailing.dot."),
}

// TestMatchMissZeroAlloc pins the tentpole contract: the classification
// miss path performs zero allocations per record once scratch buffers
// reach steady state. Gated again, with -benchmem, by make bench-check.
func TestMatchMissZeroAlloc(t *testing.T) {
	m := parityMatcher()
	var s Scratch
	for _, d := range missCorpus {
		if _, ok := m.MatchBytes(d, &s); ok {
			t.Fatalf("miss corpus entry %q unexpectedly matched", d)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, d := range missCorpus {
			m.MatchBytes(d, &s)
		}
	}); n != 0 {
		t.Errorf("MatchBytes miss path allocated %.1f times per run over %d domains, want 0", n, len(missCorpus))
	}
	if n := testing.AllocsPerRun(200, func() {
		m.MatchString("plain-miss-domain.example.net", &s)
	}); n != 0 {
		t.Errorf("MatchString miss path allocated %.1f times per run, want 0", n)
	}
}

// TestMatchMissZeroAllocInstrumented extends the zero-alloc guarantee to
// the metrics-instrumented matcher: counters and the sampled stopwatch
// must not push allocations onto the miss path either.
func TestMatchMissZeroAllocInstrumented(t *testing.T) {
	m := parityMatcher()
	m.InstrumentMetrics(obs.NewRegistry())
	var s Scratch
	if n := testing.AllocsPerRun(200, func() {
		for _, d := range missCorpus {
			m.MatchBytes(d, &s)
		}
	}); n != 0 {
		t.Errorf("instrumented MatchBytes miss path allocated %.1f times per run, want 0", n)
	}
}

func BenchmarkMatchMiss(b *testing.B) {
	m := parityMatcher()
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchBytes(missCorpus[i%len(missCorpus)], &s)
	}
}

// BenchmarkMatchMissClean isolates the dominant shape — a clean ASCII
// label that is its own skeleton — which resolves in one fast-map lookup.
func BenchmarkMatchMissClean(b *testing.B) {
	m := parityMatcher()
	var s Scratch
	d := []byte("somedomain.net")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchBytes(d, &s)
	}
}

func BenchmarkMatchHit(b *testing.B) {
	m := parityMatcher()
	var s Scratch
	d := []byte("paypal-login.com")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchBytes(d, &s)
	}
}

// BenchmarkMatchReference measures the pre-optimization string classify
// for the speedup comparison in DESIGN.md §5.
func BenchmarkMatchReference(b *testing.B) {
	m := parityMatcher()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classifyReference(m, "somedomain.net")
	}
}
