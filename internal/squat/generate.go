package squat

import (
	"strings"

	"squatphi/internal/confusables"
	"squatphi/internal/punycode"
)

// domainAlphabet lists the characters legal in a DNS label body.
const domainAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"

// alternateTLDs are the TLDs used by the wrongTLD generator and by the
// typo/bits/homograph generators when varying the suffix, mirroring the
// cheap and brand-style TLDs the paper observes (.pw, .tk, .top, .audi, ...).
var alternateTLDs = []string{
	"net", "org", "info", "biz", "pw", "tk", "ml", "ga", "cf", "top",
	"bid", "online", "site", "link", "download", "mobi", "audi", "es",
	"de", "in", "it", "nl", "pl", "io", "cc", "eu", "us", "co",
}

// comboAffixes are the concatenation words used by the combo generator,
// drawn from the attack categories in the paper's case studies: login
// harvesting, support scams, payroll scams, freight scams, giveaways.
var comboAffixes = []string{
	"login", "secure", "support", "online", "account", "verify", "signin",
	"security", "service", "help", "update", "mail", "app", "store",
	"pay", "payment", "wallet", "cash", "prize", "gift", "bonus", "promo",
	"freight", "drive", "jobs", "careers", "team", "portal", "mobile",
	"auth", "id", "my", "go", "get", "new", "official", "live", "web",
	"us", "uk", "int", "group", "learning", "grants", "selling", "auction",
	"story", "c",
}

// Generator mints candidate squatting domains for a brand. It is the
// repository's equivalent of DNSTwist/URLCrazy, extended per the paper with
// a complete homograph table, a wrongTLD module, and a combo module.
type Generator struct {
	// TLDs used for suffix variation. Defaults to alternateTLDs.
	TLDs []string
	// Affixes used for combo squatting. Defaults to comboAffixes.
	Affixes []string
	// MaxHomographSubstitutions bounds how many positions are substituted
	// simultaneously when generating IDN homographs (default 1; the matcher
	// detects any number via skeleton folding).
	MaxHomographSubstitutions int
}

// NewGenerator returns a Generator with the default wordlists.
func NewGenerator() *Generator {
	return &Generator{TLDs: alternateTLDs, Affixes: comboAffixes, MaxHomographSubstitutions: 1}
}

// Generate returns candidates of every squatting type for brand,
// deduplicated, with deterministic ordering within each type.
func (g *Generator) Generate(brand Brand) []Candidate {
	var out []Candidate
	out = append(out, g.Homographs(brand)...)
	out = append(out, g.BitFlips(brand)...)
	out = append(out, g.Typos(brand)...)
	out = append(out, g.Combos(brand)...)
	out = append(out, g.WrongTLDs(brand)...)
	return dedupe(out)
}

// Homographs generates homograph squatting candidates: ASCII lookalikes
// (faceb00k, rn for m) and IDN substitutions encoded with punycode
// (xn--fcebook-8va.com).
func (g *Generator) Homographs(brand Brand) []Candidate {
	name := brand.Name
	seen := map[string]bool{}
	var out []Candidate
	add := func(label string) {
		ascii, err := punycode.ToASCII(label + "." + brand.TLD)
		if err != nil || seen[ascii] {
			return
		}
		lbl, _ := SplitETLD(ascii)
		if lbl == name {
			return
		}
		seen[ascii] = true
		out = append(out, Candidate{Domain: ascii, Type: Homograph, Brand: brand})
	}

	for i, r := range name {
		if r == '-' {
			continue
		}
		// Single-rune confusable substitutions (ASCII digits and IDN runes).
		for _, v := range confusables.Variants(r) {
			add(name[:i] + string(v) + name[i+len(string(r)):])
		}
		// Visual sequence substitutions: m -> rn, w -> vv, ...
		for _, seq := range confusables.SequenceVariants(r) {
			add(name[:i] + seq + name[i+len(string(r)):])
		}
	}
	// Double-substitution of the same letter everywhere it appears
	// (faceb00k substitutes both 'o's); cheap and matches observed attacks.
	for _, target := range "aeiou1l0" {
		if !strings.ContainsRune(name, target) {
			continue
		}
		for _, v := range confusables.Variants(target) {
			if v < 0x80 { // ASCII-only bulk substitution (e.g. o->0)
				add(strings.ReplaceAll(name, string(target), string(v)))
			}
		}
	}
	return out
}

// BitFlips generates bits squatting candidates: domains whose name differs
// from the brand by a single flipped bit that still yields a legal
// domain character (Nikiforakis et al., paper §3.1).
func (g *Generator) BitFlips(brand Brand) []Candidate {
	name := brand.Name
	seen := map[string]bool{}
	var out []Candidate
	for i := 0; i < len(name); i++ {
		for bit := uint(0); bit < 8; bit++ {
			c := name[i] ^ (1 << bit)
			if !isDomainChar(c) || c == name[i] {
				continue
			}
			label := name[:i] + string(c) + name[i+1:]
			if label == name || strings.HasPrefix(label, "-") || strings.HasSuffix(label, "-") {
				continue
			}
			d := label + "." + brand.TLD
			if !seen[d] {
				seen[d] = true
				out = append(out, Candidate{Domain: d, Type: Bits, Brand: brand})
			}
		}
	}
	return out
}

// Typos generates typo squatting candidates using the four mutations from
// the paper: insertion, omission, repetition, and vowel swap (reordering
// two consecutive characters).
func (g *Generator) Typos(brand Brand) []Candidate {
	name := brand.Name
	seen := map[string]bool{}
	var out []Candidate
	add := func(label string) {
		if label == name || label == "" || strings.HasPrefix(label, "-") || strings.HasSuffix(label, "-") {
			return
		}
		d := label + "." + brand.TLD
		if !seen[d] {
			seen[d] = true
			out = append(out, Candidate{Domain: d, Type: Typo, Brand: brand})
		}
	}
	// Insertion: add one character at any position. Hyphen insertion inside
	// the label (face-book) counts as typo, not combo, since no word is
	// concatenated (paper Table 10).
	for i := 0; i <= len(name); i++ {
		for _, c := range "abcdefghijklmnopqrstuvwxyz0123456789-" {
			add(name[:i] + string(c) + name[i:])
		}
	}
	// Replacement: substitute one character (googl4 for google). Substitutions
	// that are confusable or one bit away are reclassified by the matcher's
	// precedence as homograph or bits respectively.
	for i := 0; i < len(name); i++ {
		for _, c := range "abcdefghijklmnopqrstuvwxyz0123456789" {
			if byte(c) != name[i] {
				add(name[:i] + string(c) + name[i+1:])
			}
		}
	}
	// Omission: delete one character.
	for i := 0; i < len(name); i++ {
		add(name[:i] + name[i+1:])
	}
	// Repetition: duplicate one character.
	for i := 0; i < len(name); i++ {
		add(name[:i+1] + string(name[i]) + name[i+1:])
	}
	// Vowel swap / transposition: reorder two consecutive characters.
	for i := 0; i+1 < len(name); i++ {
		if name[i] == name[i+1] {
			continue
		}
		add(name[:i] + string(name[i+1]) + string(name[i]) + name[i+2:])
	}
	return out
}

// Combos generates combo squatting candidates: the brand name concatenated
// with an affix via a hyphen, attached at the head or the tail.
func (g *Generator) Combos(brand Brand) []Candidate {
	affixes := g.Affixes
	if affixes == nil {
		affixes = comboAffixes
	}
	var out []Candidate
	for _, a := range affixes {
		if a == brand.Name {
			continue
		}
		out = append(out,
			Candidate{Domain: brand.Name + "-" + a + "." + brand.TLD, Type: Combo, Brand: brand},
			Candidate{Domain: a + "-" + brand.Name + "." + brand.TLD, Type: Combo, Brand: brand},
		)
	}
	return out
}

// WrongTLDs generates wrongTLD candidates: the brand name unchanged under a
// different effective TLD.
func (g *Generator) WrongTLDs(brand Brand) []Candidate {
	tlds := g.TLDs
	if tlds == nil {
		tlds = alternateTLDs
	}
	var out []Candidate
	for _, tld := range tlds {
		if tld == brand.TLD {
			continue
		}
		out = append(out, Candidate{Domain: brand.Name + "." + tld, Type: WrongTLD, Brand: brand})
	}
	return out
}

func isDomainChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-'
}

func dedupe(cs []Candidate) []Candidate {
	seen := make(map[string]bool, len(cs))
	out := cs[:0]
	for _, c := range cs {
		if !seen[c.Domain] {
			seen[c.Domain] = true
			out = append(out, c)
		}
	}
	return out
}
