// Package squat implements the squatting-domain component of SquatPhi
// (paper §3.1): generation of candidate squatting domains for a target brand
// and classification of observed DNS domains into the five squatting types —
// homograph, typo, bits, combo, and wrongTLD.
//
// The five types are defined to be orthogonal (each domain is assigned at
// most one type), matching the paper's measurement methodology. The package
// serves two callers: a dnstwist-style candidate generator (cmd/squatgen)
// and a bulk matcher that scans hundreds of millions of DNS records
// (internal/core pipeline, Figure 2).
package squat

import "strings"

// Type identifies one of the five squatting techniques from the paper,
// or None for domains that match no technique.
type Type int

// Squatting types in the paper's precedence order. When a domain could be
// labelled with several types, the matcher assigns the first that applies,
// keeping the measurement categories disjoint.
const (
	None Type = iota
	Homograph
	Bits
	Typo
	Combo
	WrongTLD
	// Generated marks a domain flagged by the attached brand-language
	// model (internal/domlm): statistically brand-charged names that match
	// none of the paper's five rule-based types. It exists only when a
	// model is attached (Matcher.AttachLM) and carries no single brand
	// attribution — the model scores against the whole brand universe.
	Generated
)

var typeNames = [...]string{"none", "homograph", "bits", "typo", "combo", "wrongTLD", "generated"}

func (t Type) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return "invalid"
	}
	return typeNames[t]
}

// AllTypes lists the five squatting types from the paper in presentation
// order (Figure 2). Generated is deliberately absent: the paper's
// measurement categories are the five rule-based types, and the
// experiments that iterate AllTypes pin that universe.
var AllTypes = []Type{Homograph, Bits, Typo, Combo, WrongTLD}

// MatchTypes lists every type the matcher can emit: the five paper types
// plus Generated (only produced when a brand-language model is
// attached). Instrumentation and verdict logging iterate this set.
var MatchTypes = []Type{Homograph, Bits, Typo, Combo, WrongTLD, Generated}

// Brand is a protected target: a registrable domain an attacker may
// impersonate. Name is the registrable label ("facebook"), TLD the
// effective top-level domain ("com", "com.ua").
type Brand struct {
	Name string
	TLD  string
}

// Domain returns the brand's full domain name.
func (b Brand) Domain() string { return b.Name + "." + b.TLD }

// NewBrand parses a domain like "facebook.com" or "google.com.ua" into a
// Brand using the effective-TLD list.
func NewBrand(domain string) Brand {
	name, tld := SplitETLD(domain)
	return Brand{Name: name, TLD: tld}
}

// multiLabelSuffixes lists effective TLDs that span two labels. A compact
// curated set is enough for the synthetic world; real deployments would load
// the full public-suffix list.
var multiLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.ua": true, "com.br": true, "com.au": true, "com.cn": true,
	"com.mx": true, "com.tr": true, "com.uy": true, "com.ar": true,
	"co.jp": true, "co.kr": true, "co.in": true, "co.za": true, "co.nz": true,
	"com.sg": true, "com.hk": true, "com.tw": true, "net.cn": true,
	"org.br": true, "gov.br": true, "nih.gov": true,
}

// SplitETLD splits a fully-qualified domain into its registrable label and
// effective TLD, dropping any subdomains. "mail.google-app.de" yields
// ("google-app", "de"); "news.bbc.co.uk" yields ("bbc", "co.uk").
// A bare label yields ("label", "").
func SplitETLD(domain string) (name, tld string) {
	domain = strings.TrimSuffix(strings.ToLower(domain), ".")
	labels := strings.Split(domain, ".")
	if len(labels) == 1 {
		return labels[0], ""
	}
	// Try a two-label effective TLD first.
	if len(labels) >= 3 {
		two := labels[len(labels)-2] + "." + labels[len(labels)-1]
		if multiLabelSuffixes[two] {
			return labels[len(labels)-3], two
		}
	}
	return labels[len(labels)-2], labels[len(labels)-1]
}

// Candidate is a generated or matched squatting domain for a brand.
type Candidate struct {
	Domain string // ASCII form, e.g. "xn--fcebook-8va.com"
	Type   Type
	Brand  Brand
}
