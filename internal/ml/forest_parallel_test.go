package ml

import (
	"testing"

	"squatphi/internal/simrand"
)

// TestForestFitWorkersDeterministic checks the parallel-training contract:
// for a fixed seed, the fitted ensemble predicts identically at any worker
// count (every tree derives its RNG from the seed and its index alone).
func TestForestFitWorkersDeterministic(t *testing.T) {
	r := simrand.New(123)
	const n, dim = 240, 30
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		if r.Bool(0.5) {
			y[i] = 1
			row[0] += 2 // separable-ish signal
		}
		X[i] = row
	}

	fit := func(workers int) *RandomForest {
		rf := &RandomForest{NTrees: 30, Seed: 77, Workers: workers}
		rf.Fit(X, y)
		return rf
	}
	serial := fit(1)
	for _, workers := range []int{2, 8} {
		parallel := fit(workers)
		for i, row := range X {
			a, b := serial.PredictProba(row), parallel.PredictProba(row)
			if a != b {
				t.Fatalf("workers=%d: prediction %d differs: %v vs %v", workers, i, a, b)
			}
		}
	}
}
