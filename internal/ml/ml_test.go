package ml

import (
	"math"
	"testing"
	"testing/quick"

	"squatphi/internal/simrand"
)

// synthDataset builds a separable-but-noisy binary dataset: positives have
// elevated counts in the first features, negatives in the last, with label
// noise to keep accuracy below 1.
func synthDataset(n, dims int, noise float64, seed uint64) ([][]float64, []int) {
	r := simrand.New(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		label := i % 2
		row := make([]float64, dims)
		for j := range row {
			base := 0.3
			if label == 1 && j < dims/3 || label == 0 && j >= 2*dims/3 {
				base = 2.5
			}
			v := base + r.NormFloat64()*0.8
			if v < 0 {
				v = 0
			}
			row[j] = math.Round(v)
		}
		if r.Float64() < noise {
			label = 1 - label
		}
		X[i] = row
		y[i] = label
	}
	return X, y
}

func TestNaiveBayesLearnsSeparableData(t *testing.T) {
	X, y := synthDataset(400, 12, 0, 1)
	var nb NaiveBayes
	nb.Fit(X, y)
	correct := 0
	for i := range X {
		if Predict(&nb, X[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.9 {
		t.Fatalf("NB training accuracy = %f", acc)
	}
}

func TestKNNLearnsSeparableData(t *testing.T) {
	X, y := synthDataset(300, 12, 0, 2)
	knn := KNN{K: 5}
	knn.Fit(X, y)
	correct := 0
	for i := range X {
		if Predict(&knn, X[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Fatalf("KNN training accuracy = %f", acc)
	}
}

func TestTreeLearnsXOR(t *testing.T) {
	// XOR is not linearly separable; a depth>=2 tree must solve it.
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	tr := Tree{MaxDepth: 4}
	tr.Fit(X, y)
	for i := range X {
		if Predict(&tr, X[i]) != y[i] {
			t.Fatalf("tree failed XOR at %v", X[i])
		}
	}
}

func TestForestLearnsNoisyData(t *testing.T) {
	X, y := synthDataset(400, 20, 0.05, 3)
	rf := RandomForest{NTrees: 30, Seed: 7}
	rf.Fit(X, y)
	correct := 0
	for i := range X {
		if Predict(&rf, X[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.9 {
		t.Fatalf("forest training accuracy = %f", acc)
	}
}

func TestForestDeterministicForSeed(t *testing.T) {
	X, y := synthDataset(200, 10, 0.05, 4)
	a := RandomForest{NTrees: 10, Seed: 42}
	b := RandomForest{NTrees: 10, Seed: 42}
	a.Fit(X, y)
	b.Fit(X, y)
	for i := 0; i < 20; i++ {
		if a.PredictProba(X[i]) != b.PredictProba(X[i]) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestPredictProbaBounds(t *testing.T) {
	X, y := synthDataset(200, 8, 0.1, 5)
	classifiers := []Classifier{&NaiveBayes{}, &KNN{K: 3}, &RandomForest{NTrees: 10, Seed: 1}, &Tree{}}
	for _, c := range classifiers {
		c.Fit(X, y)
	}
	if err := quick.Check(func(seed uint64) bool {
		r := simrand.New(seed)
		x := make([]float64, 8)
		for j := range x {
			x[j] = r.Float64() * 5
		}
		for _, c := range classifiers {
			p := c.PredictProba(x)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUntrainedClassifiersNeutral(t *testing.T) {
	x := []float64{1, 2, 3}
	for _, c := range []Classifier{&NaiveBayes{}, &KNN{}, &RandomForest{}, &Tree{}} {
		if p := c.PredictProba(x); p != 0.5 {
			t.Errorf("%T untrained proba = %f, want 0.5", c, p)
		}
	}
}

func TestConfusionRates(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 4 TN, 2 FN
	pairs := [][2]int{{1, 1}, {1, 1}, {1, 1}, {0, 1}, {0, 0}, {0, 0}, {0, 0}, {0, 0}, {1, 0}, {1, 0}}
	for _, p := range pairs {
		c.Add(p[0], p[1])
	}
	if c.TP != 3 || c.FP != 1 || c.TN != 4 || c.FN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.FPR(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("FPR = %f", got)
	}
	if got := c.FNR(); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("FNR = %f", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("ACC = %f", got)
	}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("Precision = %f", got)
	}
}

func TestConfusionEmptyDenominators(t *testing.T) {
	var c Confusion
	if c.FPR() != 0 || c.FNR() != 0 || c.Accuracy() != 0 || c.Precision() != 0 {
		t.Fatal("empty confusion produced NaN-ish rates")
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	truths := []int{1, 1, 0, 0}
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	curve := ROC(truths, scores)
	if auc := AUC(curve); math.Abs(auc-1.0) > 1e-9 {
		t.Fatalf("perfect AUC = %f", auc)
	}
}

func TestROCRandomClassifier(t *testing.T) {
	r := simrand.New(11)
	n := 4000
	truths := make([]int, n)
	scores := make([]float64, n)
	for i := range truths {
		truths[i] = r.Intn(2)
		scores[i] = r.Float64()
	}
	if auc := AUC(ROC(truths, scores)); math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC = %f, want ~0.5", auc)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	truths := []int{1, 1, 0, 0}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if auc := AUC(ROC(truths, scores)); math.Abs(auc) > 1e-9 {
		t.Fatalf("inverted AUC = %f, want 0", auc)
	}
}

func TestROCEndpointsAndMonotonic(t *testing.T) {
	X, y := synthDataset(200, 8, 0.2, 6)
	var nb NaiveBayes
	nb.Fit(X, y)
	scores := make([]float64, len(y))
	for i := range X {
		scores[i] = nb.PredictProba(X[i])
	}
	curve := ROC(y, scores)
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Fatal("ROC does not start at origin")
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatal("ROC does not end at (1,1)")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatal("ROC not monotone")
		}
	}
}

func TestAUCTiedScores(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 (single diagonal segment).
	truths := []int{1, 0, 1, 0}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	if auc := AUC(ROC(truths, scores)); math.Abs(auc-0.5) > 1e-9 {
		t.Fatalf("tied AUC = %f", auc)
	}
}

func TestCrossValidateStratification(t *testing.T) {
	X, y := synthDataset(300, 10, 0.05, 7)
	ev := CrossValidate(func() Classifier { return &RandomForest{NTrees: 15, Seed: 3} }, X, y, 10, 9)
	if ev.Confusion.Accuracy() < 0.85 {
		t.Fatalf("CV accuracy = %f", ev.Confusion.Accuracy())
	}
	if ev.AUC < 0.9 {
		t.Fatalf("CV AUC = %f", ev.AUC)
	}
	if len(ev.Scores) != len(y) {
		t.Fatal("pooled scores wrong length")
	}
}

func TestCrossValidateModelOrdering(t *testing.T) {
	// The paper's Table 7 ordering: RF >= KNN on AUC, both well above a
	// deliberately-mismatched NB (we verify RF is not the worst).
	X, y := synthDataset(300, 16, 0.1, 8)
	rf := CrossValidate(func() Classifier { return &RandomForest{NTrees: 20, Seed: 1} }, X, y, 5, 2)
	nb := CrossValidate(func() Classifier { return &NaiveBayes{} }, X, y, 5, 2)
	if rf.AUC < nb.AUC-0.05 {
		t.Fatalf("RF AUC %f worse than NB AUC %f", rf.AUC, nb.AUC)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	X, y := synthDataset(150, 8, 0.1, 9)
	a := CrossValidate(func() Classifier { return &RandomForest{NTrees: 8, Seed: 5} }, X, y, 5, 4)
	b := CrossValidate(func() Classifier { return &RandomForest{NTrees: 8, Seed: 5} }, X, y, 5, 4)
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatal("CV not deterministic")
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	X, y := synthDataset(400, 50, 0.05, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := RandomForest{NTrees: 20, Seed: uint64(i)}
		rf.Fit(X, y)
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := synthDataset(400, 50, 0.05, 11)
	rf := RandomForest{NTrees: 50, Seed: 1}
	rf.Fit(X, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rf.PredictProba(X[i%len(X)])
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	X, y := synthDataset(1000, 50, 0.05, 12)
	knn := KNN{K: 5}
	knn.Fit(X, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = knn.PredictProba(X[i%len(X)])
	}
}
