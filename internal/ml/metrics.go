package ml

import (
	"sort"

	"squatphi/internal/simrand"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add tallies one (truth, predicted) pair.
func (c *Confusion) Add(truth, pred int) {
	switch {
	case truth == 1 && pred == 1:
		c.TP++
	case truth == 0 && pred == 1:
		c.FP++
	case truth == 0 && pred == 0:
		c.TN++
	default:
		c.FN++
	}
}

// FPR returns the false positive rate FP / (FP + TN).
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// FNR returns the false negative rate FN / (FN + TP).
func (c Confusion) FNR() float64 {
	if c.FN+c.TP == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.FN+c.TP)
}

// TPR returns the true positive rate (recall).
func (c Confusion) TPR() float64 { return 1 - c.FNR() }

// Accuracy returns (TP + TN) / total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP / (TP + FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// ROC computes the ROC curve for scores against truths, sorted by
// descending threshold, beginning at (0,0) and ending at (1,1).
func ROC(truths []int, scores []float64) []ROCPoint {
	type sc struct {
		s float64
		y int
	}
	pairs := make([]sc, len(scores))
	pos, neg := 0, 0
	for i := range scores {
		pairs[i] = sc{scores[i], truths[i]}
		if truths[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })

	curve := []ROCPoint{{0, 0, 1.01}}
	tp, fp := 0, 0
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].s == pairs[i].s {
			if pairs[j].y == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		pt := ROCPoint{Threshold: pairs[i].s}
		if neg > 0 {
			pt.FPR = float64(fp) / float64(neg)
		}
		if pos > 0 {
			pt.TPR = float64(tp) / float64(pos)
		}
		curve = append(curve, pt)
		i = j
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		curve = append(curve, ROCPoint{1, 1, -0.01})
	}
	return curve
}

// AUC integrates a ROC curve with the trapezoid rule.
func AUC(curve []ROCPoint) float64 {
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// Evaluation summarises a cross-validated classifier run (one Table 7 row).
type Evaluation struct {
	Confusion Confusion
	AUC       float64
	ROC       []ROCPoint
	// Scores and Truths are the pooled out-of-fold predictions.
	Scores []float64
	Truths []int
}

// CrossValidate runs stratified k-fold cross validation, training a fresh
// classifier from factory for each fold, and pools the out-of-fold
// predictions into a single evaluation — the paper's 10-fold protocol.
func CrossValidate(factory func() Classifier, X [][]float64, y []int, folds int, seed uint64) Evaluation {
	if folds < 2 {
		folds = 2
	}
	rng := simrand.New(seed).Split("cv")

	// Stratify: shuffle positives and negatives separately, then deal them
	// round-robin so every fold has both classes.
	var posIdx, negIdx []int
	for i, label := range y {
		if label == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	rng.Shuffle(len(posIdx), func(i, j int) { posIdx[i], posIdx[j] = posIdx[j], posIdx[i] })
	rng.Shuffle(len(negIdx), func(i, j int) { negIdx[i], negIdx[j] = negIdx[j], negIdx[i] })
	fold := make([]int, len(y))
	for i, idx := range posIdx {
		fold[idx] = i % folds
	}
	for i, idx := range negIdx {
		fold[idx] = i % folds
	}

	scores := make([]float64, len(y))
	for f := 0; f < folds; f++ {
		var trX [][]float64
		var trY []int
		for i := range y {
			if fold[i] != f {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		clf := factory()
		clf.Fit(trX, trY)
		for i := range y {
			if fold[i] == f {
				scores[i] = clf.PredictProba(X[i])
			}
		}
	}

	var ev Evaluation
	ev.Scores = scores
	ev.Truths = y
	for i := range y {
		pred := 0
		if scores[i] >= 0.5 {
			pred = 1
		}
		ev.Confusion.Add(y[i], pred)
	}
	ev.ROC = ROC(y, scores)
	ev.AUC = AUC(ev.ROC)
	return ev
}
